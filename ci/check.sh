#!/usr/bin/env bash
# Full verification sweep, four trees:
#   1. release            — the complete ctest suite
#   2. ASan/UBSan         — the complete suite under address+UB sanitizers
#   3. release, forced-scalar crypto (MAPSEC_FORCE_SCALAR=1) — portable
#      kernels stay green where the dispatcher would otherwise hide them
#      (the sanitizer tree covers the accelerated path)
#   4. TSan               — the concurrency-bearing subset (pipeline,
#      server, chaos campaigns, wire fuzzing) under ThreadSanitizer
# This is the gate a change must pass before it lands.
#
# Finally, re-records the benchmark baselines from the release tree and
# diffs them against the committed BENCH_*.json, failing on >20%
# throughput regressions. On by default — the release tree the suite
# just built is exactly the tree the baselines describe. Set
# MAPSEC_BENCH_COMPARE=0 to skip (e.g. on loaded or throttled hosts
# where wall-clock throughput is meaningless).
#
# Usage: ci/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== release tree =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== socket smoke (real loopback TCP) =="
# The sim suite above exercises the socket bearer's logic; this stage
# re-proves the flagship sim-vs-socket outcome-equality test on real
# sockets as its own named stage, so a sandbox without loopback TCP
# skips VISIBLY instead of the coverage quietly evaporating into
# GTEST_SKIP lines.
if ./build/bench/bench_socket_load_gen --probe; then
  ctest --test-dir build --output-on-failure -j "${JOBS}" \
    -R 'SocketFleetTest|SocketBearer'
else
  echo "SKIP: loopback sockets unavailable in this sandbox"
fi

echo "== sanitizer tree (MAPSEC_SANITIZE=ON) =="
cmake -B build-asan -S . -DMAPSEC_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== release tree, forced-scalar crypto (MAPSEC_FORCE_SCALAR=1) =="
MAPSEC_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== forced-scalar batched differential sweep =="
# The batched data plane (BatchModExp, multi-buffer SHA-256/CCM, batched
# offload windows) must prove bit-identity with the scalar-interleaved
# fallback too, not just with the ISA kernels; this names the sweep
# explicitly so a filter change in the full run can never silently drop
# it from the scalar tree.
MAPSEC_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -j "${JOBS}" \
  -R 'BatchModExp|RsaBatch|Sha256Many|CcmBatch|BatchWidth|BatchWindow|MidBatch|WholeWindow'

echo "== forced-scalar ticket + renegotiation + sharded + failover sweep =="
# Session tickets seal/open through AES-CCM and the renegotiation matrix
# crosses cipher suites mid-session; both must be bit-identical on the
# scalar kernels (a ticket minted by an accelerated server MUST open on a
# scalar one — deterministic key ring plus portable CCM). The sharded
# tier's digest-invariance matrix rides here too: the fleet transcript
# must stay byte-identical across shard counts on the scalar kernels as
# well. The failover determinism matrix joins them: the crash ->
# reconnect -> ticket-resume -> rejoin cycle must replay byte-identically
# (and match the undisturbed run) on the scalar kernels, since the
# tickets a victim resumes with cross the accelerated/scalar boundary.
# Named here so a filter change elsewhere can never silently drop them
# from this tree.
MAPSEC_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -j "${JOBS}" \
  -R 'Ticket|Renegotiat|ChaosTest|CampaignSoak|Shard|Failover|HangLatch'

echo "== thread-sanitizer tree (MAPSEC_SANITIZE=thread) =="
# TSan covers the concurrency surface: the PacketPipeline's worker pool
# and everything that drives it (server, chaos campaigns, wire fuzzing),
# plus the ticket and renegotiation lifecycles whose record-path drains
# ride the pipeline, and the sharded serving tier whose shard threads
# hand the world back and forth with the coordinator at epoch barriers.
# The failover suite is the sharpest of these: hang latches park shard
# threads mid-slice, the wall-clock watchdog releases them from another
# thread, and supervised kills tear worlds down between slices — exactly
# the handoffs TSan exists to vet.
cmake -B build-tsan -S . -DMAPSEC_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'Pipeline|pipeline|Server|server|Chaos|chaos|Campaign|WireFuzz|net_|Ticket|Renegotiat|Shard|Failover|HangLatch'

if [[ "${MAPSEC_BENCH_COMPARE:-1}" != "0" ]]; then
  echo "== benchmark baseline comparison =="
  BENCH_DIR="$(mktemp -d)"
  trap 'rm -rf "${BENCH_DIR}"' EXIT
  record_crypto() {
    ./build/bench/bench_crypto_primitives \
      --benchmark_format=json --benchmark_min_time=0.2 \
      --benchmark_out="${BENCH_DIR}/BENCH_crypto.json" \
      --benchmark_out_format=json
  }
  record_engine() {
    ./build/bench/bench_pipeline_throughput \
      --benchmark_format=json --benchmark_min_time=0.2 \
      --benchmark_out="${BENCH_DIR}/BENCH_engine.json" \
      --benchmark_out_format=json
  }
  record_server() {
    ./build/bench/bench_server_load "${BENCH_DIR}/BENCH_server.json"
  }
  # One wall-clock sample on a shared host can dip >20% without any code
  # change; a real regression also reproduces in a second sample. Each
  # report therefore gets a single re-measure before the gate fails.
  compare() {  # compare BASELINE.json record_fn
    "$2"
    if ! python3 ci/bench_compare.py "$1" "${BENCH_DIR}/$1"; then
      echo "-- $1 regressed in one sample; re-measuring to rule out host noise --"
      "$2"
      python3 ci/bench_compare.py "$1" "${BENCH_DIR}/$1"
    fi
  }
  compare BENCH_crypto.json record_crypto
  compare BENCH_engine.json record_engine
  compare BENCH_server.json record_server
fi

echo "== OK: all configurations green =="
