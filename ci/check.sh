#!/usr/bin/env bash
# Full verification sweep: a release tree and an ASan/UBSan tree, with
# the complete ctest suite run in both. This is the gate a change must
# pass before it lands.
#
# Usage: ci/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== release tree =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== sanitizer tree (MAPSEC_SANITIZE=ON) =="
cmake -B build-asan -S . -DMAPSEC_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== OK: both trees green =="
