#!/usr/bin/env python3
"""Compare a fresh benchmark JSON report against a committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [--threshold 0.20]

Two input formats are understood:

  * google-benchmark reports (BENCH_crypto.json, BENCH_engine.json):
    benchmarks matched by name (batched variants like
    BM_Rsa1024PrivateCrtBatched/4 are distinct names, so every batch
    width is compared per-width), throughput taken from bytes_per_second
    or items_per_second when present, otherwise inverse real_time.
  * mapsec scenario reports (BENCH_server.json, any doc with a top-level
    "scenarios" key): nested dicts of named scenarios holding mixed
    metric fields. Only throughput-like numeric leaves (keys ending in
    "_per_s" or "_mbps") are compared; every other field — counters,
    energy figures, metrics added by future experiments — is ignored by
    construction, so extending a report never breaks comparison against
    an older baseline. The E23 "ticket_scale" block follows that
    convention: its cache_/ticket_sessions_per_s and *_record_mbps pairs
    are compared (the cache-vs-stateless-ticket throughput parity the
    bench itself gates at ±10%), while throughput_droop, the
    state-bytes-per-user figures and the 10k/100k/1M extrapolation rows
    are descriptive and skipped. The E24 "shard_sweep" block gets one
    extra structural gate on the FRESH report: the sharded tier must
    still scale the aggregate handshake rate >= 3x from 1 to 4 shards
    with byte-identical fleet digests — a topology property, so it is
    checked absolutely rather than against the baseline's value. The
    E25 "failover_slo" block gets the same treatment: a shard crash may
    lose zero honest sessions, every failover reconnect must resume by
    ticket, the blackout p99 must stay under the report's own budget,
    and the recovery transcript must be byte-identical across reruns
    and against the undisturbed run. The E26 "socket_wallclock" block
    inverts the split: its rates are real wall-clock figures, named
    with _wall suffixes precisely so they are NEVER baseline-compared
    (loopback throughput is a property of the host, not the code),
    while the outcome-equality/conservation/zero-allocation booleans
    are gated absolutely.

Exits non-zero if any benchmark regressed by more than the threshold.
Improvements and new/removed benchmarks are reported but never fail the
run — a baseline recorded on different hardware or a different dispatch
backend (see the report's "crypto_dispatch" context) is expected to move
in both directions. ci/check.sh runs this comparison by default against
the release tree it just validated; set MAPSEC_BENCH_COMPARE=0 there to
skip it on hosts whose wall-clock throughput is not trustworthy.

Only python3 stdlib; no third-party imports.
"""

import argparse
import json
import sys


def _walk_throughput(node, prefix, out):
    """Collect throughput-like numeric leaves from a scenario report."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            _walk_throughput(value, f"{prefix}/{key}" if prefix else key, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if prefix.endswith(("_per_s", "_mbps")) and node > 0:
            out[prefix] = ("throughput", float(node))


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    if "scenarios" in doc:
        out = {}
        _walk_throughput(doc, "", out)
        ctx = {"mapsec_build_type": doc.get("mapsec_build_type",
                                            doc.get("build_type")),
               "crypto_dispatch": doc.get("crypto_dispatch")}
        return ctx, out
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if "bytes_per_second" in b:
            out[name] = ("bytes_per_second", float(b["bytes_per_second"]))
        elif "items_per_second" in b:
            # Batched benchmarks report per-item throughput (e.g. RSA ops/s
            # across a batch width); compare that, not wall time per batch.
            out[name] = ("items_per_second", float(b["items_per_second"]))
        elif float(b.get("real_time", 0)) > 0:
            # Throughput proxy: ops per unit real time.
            out[name] = ("1/real_time", 1.0 / float(b["real_time"]))
    return doc.get("context", {}), out


def check_shard_sweep(path):
    """Structural gate on the fresh report's E24 shard_sweep block.

    Scaling across shard counts is a property of the sharded tier, not
    of the host the baseline was recorded on, so it is gated absolutely:
    aggregate full-handshake rate must grow >= 3x from 1 to 4 shards and
    the fleet digests must have matched byte-for-byte. Reports without a
    shard_sweep block (older baselines, other benches) pass vacuously.
    """
    with open(path) as f:
        doc = json.load(f)
    sweep = doc.get("shard_sweep")
    if not isinstance(sweep, dict):
        return True
    failures = []
    one = sweep.get("shards_1", {}).get("full_handshakes_per_s", 0)
    four = sweep.get("shards_4", {}).get("full_handshakes_per_s", 0)
    if one > 0 and four > 0:
        scaling = four / one
        if scaling < 3.0:
            failures.append(
                f"1->4 shard handshake scaling {scaling:.2f}x < 3x")
    else:
        failures.append("shards_1/shards_4 rates missing or non-positive")
    if sweep.get("digests_match") is not True:
        failures.append("fleet digests diverged across shard counts")
    if sweep.get("soak_conserved") is False:
        failures.append("soak per-shard sums diverged from fleet totals")
    for msg in failures:
        print(f"  [SHARD]   {msg}")
    return not failures


def check_failover_slo(path):
    """Structural gate on the fresh report's E25 failover_slo block.

    Availability SLOs are absolute properties of the supervised tier —
    a crash may lose ZERO honest sessions, every failover reconnect must
    resume by ticket (no public-key op for the survivor), the client
    blackout p99 must stay under the report's own budget, and the
    crash/recovery transcript must be byte-identical to both a rerun and
    the undisturbed run. None of this depends on the baseline host, so
    the gate never compares against the baseline. Reports without a
    failover_slo block (older baselines, other benches) pass vacuously.
    """
    with open(path) as f:
        doc = json.load(f)
    slo = doc.get("failover_slo")
    if not isinstance(slo, dict):
        return True
    failures = []
    if slo.get("sessions_lost", 0) != 0:
        failures.append(
            f"{slo.get('sessions_lost')} honest session(s) lost to the crash")
    if slo.get("sessions_completed") != slo.get("sessions_attempted"):
        failures.append("not every attempted session completed")
    reconnects = slo.get("client_reconnects", 0)
    if reconnects <= 0:
        failures.append("crash produced no failover reconnects "
                        "(the fault did not land mid-flood)")
    if slo.get("failover_resumes") != reconnects:
        failures.append(
            f"{slo.get('failover_resumes')}/{reconnects} failover "
            "reconnects resumed by ticket (the rest paid a full handshake)")
    budget = slo.get("blackout_budget_ms", 0)
    p99 = slo.get("blackout_p99_ms", 0)
    if budget > 0 and p99 > budget:
        failures.append(
            f"blackout p99 {p99:.1f} ms over the {budget:.0f} ms budget")
    if slo.get("digest_match_rerun") is not True:
        failures.append("crash/recovery transcript diverged across reruns")
    if slo.get("digest_match_undisturbed") is not True:
        failures.append(
            "crashed run's fleet digest differs from the undisturbed run")
    if slo.get("missed_heartbeats", 0) != 0:
        failures.append(
            f"{slo.get('missed_heartbeats')} live-shard heartbeat(s) missed")
    for msg in failures:
        print(f"  [FAILOVER] {msg}")
    return not failures


def check_socket_wallclock(path):
    """Structural gate on the fresh report's E26 socket_wallclock block.

    Wall-clock socket rates are host-dependent by nature, and the bench
    deliberately names them with _wall suffixes so the throughput walk
    above never compares them against a baseline. What IS absolute is
    correctness: the loopback socket-fleet run must have reproduced the
    sim run's session outcomes exactly (handshake mix, byte-exact
    echoes via the refolded fleet digest), kept the conservation books
    balanced, and never allocated past the arena pre-reserve on the
    record path. Reports without the block, or runs that skipped it
    because the sandbox has no loopback sockets, pass vacuously — the
    skip is already visible in the bench output.
    """
    with open(path) as f:
        doc = json.load(f)
    sw = doc.get("socket_wallclock")
    if not isinstance(sw, dict) or sw.get("skipped") is True:
        return True
    failures = []
    if sw.get("outcome_equal") is not True:
        failures.append("socket-fleet session outcomes diverged from the "
                        "sim run for the same seed")
    if sw.get("digest_match") is not True:
        failures.append("refolded socket fleet digest differs from the "
                        "sim fleet digest")
    if sw.get("conserved") is not True:
        failures.append("conservation books did not balance across the "
                        "socket fleet")
    if sw.get("zero_steady_state_alloc") is not True:
        failures.append("record path allocated past the arena pre-reserve")
    if sw.get("echo_mismatches", 0) != 0:
        failures.append(f"{sw.get('echo_mismatches')} echo mismatch(es) "
                        "over the socket bearer")
    for msg in failures:
        print(f"  [SOCKET]  {msg}")
    return not failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional regression that fails the run")
    args = ap.parse_args()

    base_ctx, base = load_benchmarks(args.baseline)
    fresh_ctx, fresh = load_benchmarks(args.fresh)

    for key in ("mapsec_build_type", "crypto_dispatch"):
        b, f = base_ctx.get(key), fresh_ctx.get(key)
        if b and f and b != f:
            print(f"note: {key} differs: baseline={b!r} fresh={f!r}")

    regressions = []
    for name, (metric, base_v) in sorted(base.items()):
        if name not in fresh:
            print(f"  [gone]    {name} (in baseline only)")
            continue
        fresh_metric, fresh_v = fresh[name]
        if fresh_metric != metric or base_v <= 0:
            continue
        ratio = fresh_v / base_v
        if ratio < 1.0 - args.threshold:
            regressions.append((name, metric, ratio))
            print(f"  [REGRESS] {name}: {metric} at {ratio:.2f}x baseline")
        elif ratio > 1.0 + args.threshold:
            print(f"  [faster]  {name}: {metric} at {ratio:.2f}x baseline")
        else:
            print(f"  [ok]      {name}: {ratio:.2f}x")
    for name in sorted(set(fresh) - set(base)):
        print(f"  [new]     {name} (no baseline)")

    if not check_shard_sweep(args.fresh):
        print(f"shard_sweep structural gate failed in {args.fresh}")
        return 1
    if not check_failover_slo(args.fresh):
        print(f"failover_slo structural gate failed in {args.fresh}")
        return 1
    if not check_socket_wallclock(args.fresh):
        print(f"socket_wallclock structural gate failed in {args.fresh}")
        return 1
    if regressions:
        print(f"{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}")
        return 1
    print(f"no regressions beyond {args.threshold:.0%} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
