// Platform models: paper-anchor checks (the Section 3.2 / 3.3 numbers) and
// model invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "mapsec/platform/accelerator.hpp"
#include "mapsec/platform/energy.hpp"
#include "mapsec/platform/gap.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/platform/workload.hpp"

namespace mapsec::platform {
namespace {

// ---- processors -------------------------------------------------------------

TEST(ProcessorTest, PaperCatalogueRatings) {
  EXPECT_NEAR(Processor::pentium4().mips, 2890, 1e-9);
  EXPECT_NEAR(Processor::strongarm_sa1100().mips, 235, 1e-9);
  EXPECT_NEAR(Processor::dragonball().mips, 2.7, 1e-9);
  const double arm7 = Processor::arm7().mips;
  EXPECT_GE(arm7, 15.0);  // paper: "15 to 20 MIPS"
  EXPECT_LE(arm7, 20.0);
}

TEST(ProcessorTest, TimeAndEnergyScale) {
  const Processor p = Processor::strongarm_sa1100();
  EXPECT_NEAR(p.seconds_for(235e6), 1.0, 1e-9);
  EXPECT_NEAR(p.millijoules_for(1e6), p.mj_per_mi, 1e-12);
}

TEST(ProcessorTest, CatalogueOrderedByMips) {
  const auto cat = Processor::catalogue();
  for (std::size_t i = 1; i < cat.size(); ++i)
    EXPECT_LT(cat[i - 1].mips, cat[i].mips);
}

// ---- workload anchors --------------------------------------------------------

TEST(WorkloadTest, Anchor651MipsAt10Mbps) {
  // Section 3.2: "total processing requirements for a security protocol
  // that uses 3DES ... and SHA ... at 10 Mbps is around 651.3 MIPS".
  const auto m = WorkloadModel::paper_calibrated();
  EXPECT_NEAR(m.bulk_mips(Primitive::kDes3, Primitive::kSha1, 10.0), 651.3,
              0.1);
}

TEST(WorkloadTest, AnchorHandshakeFeasibility) {
  // Section 3.2: a 235-MIPS processor can establish connections at 0.5 s
  // or 1 s latency, but not at 0.1 s.
  const auto m = WorkloadModel::paper_calibrated();
  const double sa1100 = Processor::strongarm_sa1100().mips;
  EXPECT_LE(m.handshake_mips(Primitive::kRsa1024Private, 0.5), sa1100);
  EXPECT_LE(m.handshake_mips(Primitive::kRsa1024Private, 1.0), sa1100);
  EXPECT_GT(m.handshake_mips(Primitive::kRsa1024Private, 0.1), sa1100);
}

TEST(WorkloadTest, Des3IsTripleDes) {
  const auto m = WorkloadModel::paper_calibrated();
  EXPECT_NEAR(m.instr_per_byte(Primitive::kDes3),
              3 * m.instr_per_byte(Primitive::kDes), 1e-9);
}

TEST(WorkloadTest, RsaScalesCubically) {
  const auto m = WorkloadModel::paper_calibrated();
  EXPECT_NEAR(m.instr_per_op(Primitive::kRsa2048Private) /
                  m.instr_per_op(Primitive::kRsa1024Private),
              8.0, 1e-9);
  EXPECT_NEAR(m.instr_per_op(Primitive::kRsa1024Private) /
                  m.instr_per_op(Primitive::kRsa512Private),
              8.0, 1e-9);
}

TEST(WorkloadTest, AesCheaperThanDes3) {
  // The Figure 2 story: AES replaced DES/3DES partly on efficiency.
  const auto m = WorkloadModel::paper_calibrated();
  EXPECT_LT(m.instr_per_byte(Primitive::kAes128),
            m.instr_per_byte(Primitive::kDes3) / 5);
}

TEST(WorkloadTest, RequiredMipsDecomposes) {
  const auto m = WorkloadModel::paper_calibrated();
  const double total = m.required_mips(0.5, 10.0);
  EXPECT_NEAR(total,
              m.handshake_mips(Primitive::kRsa1024Private, 0.5) +
                  m.bulk_mips(Primitive::kDes3, Primitive::kSha1, 10.0),
              1e-9);
}

TEST(WorkloadTest, ErrorsOnMissingCostsAndBadArgs) {
  const auto m = WorkloadModel::paper_calibrated();
  EXPECT_THROW(m.instr_per_byte(Primitive::kRsa1024Private),
               std::invalid_argument);
  EXPECT_THROW(m.instr_per_op(Primitive::kDes3), std::invalid_argument);
  EXPECT_THROW(m.handshake_mips(Primitive::kRsa1024Private, 0.0),
               std::invalid_argument);
}

TEST(WorkloadTest, OverridesApply) {
  auto m = WorkloadModel::paper_calibrated();
  m.set_instr_per_byte(Primitive::kAes128, 99.0);
  EXPECT_NEAR(m.instr_per_byte(Primitive::kAes128), 99.0, 1e-12);
}

// ---- energy / battery (Figure 4) ---------------------------------------------

TEST(EnergyTest, PaperConstants) {
  const auto e = EnergyModel::paper_sensor_node();
  EXPECT_NEAR(e.tx_mj_per_kb, 21.5, 1e-12);
  EXPECT_NEAR(e.rx_mj_per_kb, 14.3, 1e-12);
  EXPECT_NEAR(e.crypto_mj_per_kb, 42.0, 1e-12);
}

TEST(EnergyTest, Figure4SecureModeHalvesTransactions) {
  // The paper's claim: secure-mode transactions are "less than half" the
  // unencrypted count on a 26 KJ battery.
  const auto e = EnergyModel::paper_sensor_node();
  const double plain = transactions_per_charge(e, 26.0, 1.0, false);
  const double secure = transactions_per_charge(e, 26.0, 1.0, true);
  EXPECT_LT(secure, plain / 2);
  EXPECT_GT(secure, plain / 3);  // but not catastrophically less
  EXPECT_NEAR(plain, 26e6 / 35.8, 1.0);
  EXPECT_NEAR(secure, 26e6 / 77.8, 1.0);
}

TEST(BatteryTest, ConsumeAndDeplete) {
  Battery b(0.001);  // 1 J = 1000 mJ
  EXPECT_NEAR(b.capacity_mj(), 1000.0, 1e-9);
  EXPECT_TRUE(b.consume_mj(400));
  EXPECT_NEAR(b.state_of_charge(), 0.6, 1e-9);
  EXPECT_TRUE(b.consume_mj(600));
  EXPECT_TRUE(b.depleted());
  EXPECT_FALSE(b.consume_mj(1));
  b.recharge();
  EXPECT_NEAR(b.remaining_mj(), 1000.0, 1e-9);
}

TEST(BatteryTest, StepSimulationMatchesClosedForm) {
  const auto e = EnergyModel::paper_sensor_node();
  Battery b(0.01);  // 10 J, small enough to loop
  std::size_t count = 0;
  while (b.consume_mj(e.transaction_mj(1.0, true))) ++count;
  EXPECT_EQ(count, static_cast<std::size_t>(
                       transactions_per_charge(e, 0.01, 1.0, true)));
}

TEST(BatteryTest, InvalidArguments) {
  EXPECT_THROW(Battery(0), std::invalid_argument);
  Battery b(1);
  EXPECT_THROW(b.consume_mj(-1), std::invalid_argument);
}

// ---- rate-capacity battery -------------------------------------------------------

TEST(RateCapacityBatteryTest, IdealCellAtOrBelowReferenceRate) {
  const RateCapacityBattery b(26.0, 100.0, 1.2);
  EXPECT_NEAR(b.effective_capacity_mj(100.0), 26e6, 1.0);
  // Slower than reference: rated capacity, no bonus.
  EXPECT_NEAR(b.effective_capacity_mj(10.0), 26e6, 1.0);
}

TEST(RateCapacityBatteryTest, HighRateCostsCapacity) {
  const RateCapacityBattery b(26.0, 100.0, 1.2);
  const double at_ref = b.effective_capacity_mj(100.0);
  const double at_10x = b.effective_capacity_mj(1000.0);
  EXPECT_LT(at_10x, at_ref);
  // Peukert 1.2 at 10x rate: factor 10^-0.2 ~ 0.63.
  EXPECT_NEAR(at_10x / at_ref, std::pow(10.0, -0.2), 1e-9);
}

TEST(RateCapacityBatteryTest, PeukertOneIsIdeal) {
  const RateCapacityBattery b(26.0, 100.0, 1.0);
  EXPECT_NEAR(b.effective_capacity_mj(100.0),
              b.effective_capacity_mj(5000.0), 1.0);
}

TEST(RateCapacityBatteryTest, LifetimeScalesInversely) {
  const RateCapacityBattery b(26.0, 100.0, 1.0);  // ideal for clean math
  EXPECT_NEAR(b.lifetime_hours(100.0), 26e6 / 100.0 / 3600.0, 1e-6);
  EXPECT_NEAR(b.lifetime_hours(200.0), b.lifetime_hours(100.0) / 2, 1e-6);
}

TEST(RateCapacityBatteryTest, SmoothBeatsBurstyAtEqualAverage) {
  // Same average power (200 mW), delivered either smoothly or as 10%-duty
  // 2 W bursts: the bursty profile must live strictly shorter on a
  // rate-sensitive cell — the argument for offloading crypto to
  // low-power engines rather than sprinting on the CPU.
  const RateCapacityBattery b(26.0, 200.0, 1.2);
  const double smooth = b.lifetime_hours(200.0);
  const double bursty = b.lifetime_hours_duty_cycle(2000.0, 0.0, 0.1);
  EXPECT_LT(bursty, smooth);
  // With an ideal cell the two are identical.
  const RateCapacityBattery ideal(26.0, 200.0, 1.0);
  EXPECT_NEAR(ideal.lifetime_hours_duty_cycle(2000.0, 0.0, 0.1),
              ideal.lifetime_hours(200.0), 1e-6);
}

TEST(RateCapacityBatteryTest, Validation) {
  EXPECT_THROW(RateCapacityBattery(0, 100, 1.2), std::invalid_argument);
  EXPECT_THROW(RateCapacityBattery(26, 100, 0.9), std::invalid_argument);
  const RateCapacityBattery b(26.0, 100.0, 1.2);
  EXPECT_THROW(b.effective_capacity_mj(0), std::invalid_argument);
  EXPECT_THROW(b.lifetime_hours_duty_cycle(100, 0, 1.5),
               std::invalid_argument);
  EXPECT_THROW(b.lifetime_hours_duty_cycle(0, 0, 0.5),
               std::invalid_argument);
}

// ---- gap analysis (Figure 3) ---------------------------------------------------

TEST(GapTest, SurfaceShape) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto points =
      gap.surface(GapAnalysis::default_latencies(), GapAnalysis::default_rates());
  EXPECT_EQ(points.size(), 30u);
  // Requirement decreases with latency, increases with rate.
  for (const auto& p : points) {
    EXPECT_NEAR(p.required_mips, p.handshake_mips + p.bulk_mips, 1e-9);
    EXPECT_GT(p.required_mips, 0);
  }
}

TEST(GapTest, MonotonicInAxes) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto pts = gap.surface({0.1, 1.0}, {1.0, 10.0});
  // pts: (0.1,1), (0.1,10), (1,1), (1,10)
  EXPECT_GT(pts[0].required_mips, pts[2].required_mips);  // lower latency costs more
  EXPECT_GT(pts[1].required_mips, pts[0].required_mips);  // higher rate costs more
}

TEST(GapTest, PaperGapExistsFor300MipsPlane) {
  // Figure 3's qualitative content: a large region of the surface lies
  // above the 300-MIPS plane (the gap), but not all of it.
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto points = gap.surface(GapAnalysis::default_latencies(),
                                  GapAnalysis::default_rates());
  const auto summary = gap.summarise(Processor::embedded300(), points);
  EXPECT_GT(summary.feasible_points, 0u);
  EXPECT_LT(summary.feasible_points, summary.total_points);
}

TEST(GapTest, DesktopClosesMostOfTheGap) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto points = gap.surface(GapAnalysis::default_latencies(),
                                  GapAnalysis::default_rates());
  const auto p4 = gap.summarise(Processor::pentium4(), points);
  const auto dragonball = gap.summarise(Processor::dragonball(), points);
  EXPECT_GT(p4.feasible_points, points.size() * 3 / 4);
  EXPECT_EQ(dragonball.feasible_points, 0u);  // 2.7 MIPS: hopeless
}

TEST(GapTest, MaxRateInversion) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const Processor sa = Processor::strongarm_sa1100();
  const double max_rate = gap.max_rate_mbps(sa, 1.0);
  EXPECT_GT(max_rate, 0);
  // At that rate the requirement equals the processor's MIPS.
  const auto pts = gap.surface({1.0}, {max_rate});
  EXPECT_NEAR(pts[0].required_mips, sa.mips, 0.01);
  // Handshake-infeasible latency yields zero achievable rate.
  EXPECT_EQ(gap.max_rate_mbps(Processor::dragonball(), 0.1), 0.0);
}

// ---- gap trend projection ---------------------------------------------------------

TEST(GapTrendTest, GapWidensUnderPaperAssumptions) {
  // Section 3.2: data-rate and crypto-strength growth outpace embedded
  // processor improvement, so the gap ratio increases year over year.
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto trend = project_gap_trend(gap, Processor::strongarm_sa1100(),
                                       2.0, 2003, 7);
  ASSERT_EQ(trend.size(), 8u);
  EXPECT_EQ(trend.front().year, 2003);
  EXPECT_EQ(trend.back().year, 2010);
  for (std::size_t i = 1; i < trend.size(); ++i)
    EXPECT_GT(trend[i].gap_ratio, trend[i - 1].gap_ratio) << i;
}

TEST(GapTrendTest, FasterProcessorsCanCloseIt) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  GapTrendAssumptions optimistic;
  optimistic.processor_growth = 2.0;  // outruns rates * strength
  const auto trend = project_gap_trend(gap, Processor::strongarm_sa1100(),
                                       2.0, 2003, 7, optimistic);
  EXPECT_LT(trend.back().gap_ratio, trend.front().gap_ratio);
}

TEST(GapTrendTest, PointArithmetic) {
  const GapAnalysis gap(WorkloadModel::paper_calibrated());
  const auto trend =
      project_gap_trend(gap, Processor::embedded300(), 10.0, 2003, 0);
  ASSERT_EQ(trend.size(), 1u);
  EXPECT_NEAR(trend[0].available_mips, 300.0, 1e-9);
  EXPECT_NEAR(trend[0].required_mips,
              gap.model().required_mips(1.0, 10.0), 1e-9);
  EXPECT_NEAR(trend[0].gap_ratio,
              trend[0].required_mips / 300.0, 1e-12);
}

// ---- acceleration tiers (Section 4.2) -----------------------------------------

TEST(AccelTest, TiersStrictlyImprove) {
  auto model = WorkloadModel::paper_calibrated();
  model.set_protocol_instr_per_byte(25.0);
  const Processor host = Processor::strongarm_sa1100();
  double prev_rate = 0;
  double prev_energy = 1e18;
  for (const auto& profile : AccelProfile::all_tiers()) {
    const SecurityPlatform plat(host, profile, model);
    const double rate =
        plat.achievable_mbps(Primitive::kDes3, Primitive::kSha1);
    const double energy =
        plat.bulk_energy_mj(Primitive::kDes3, Primitive::kSha1, 1e6);
    EXPECT_GT(rate, prev_rate) << accel_tier_name(profile.tier);
    EXPECT_LT(energy, prev_energy) << accel_tier_name(profile.tier);
    prev_rate = rate;
    prev_energy = energy;
  }
}

TEST(AccelTest, SoftwareTierMatchesWorkloadModel) {
  const auto model = WorkloadModel::paper_calibrated();
  const SecurityPlatform plat(Processor::strongarm_sa1100(),
                              AccelProfile::software(), model);
  // Achievable rate inverts bulk_mips: at that rate, required == MIPS.
  const double rate = plat.achievable_mbps(Primitive::kDes3, Primitive::kSha1);
  EXPECT_NEAR(model.bulk_mips(Primitive::kDes3, Primitive::kSha1, rate),
              235.0, 0.01);
}

TEST(AccelTest, ProtocolEngineBeatsAcceleratorOnProtocolBoundWorkload) {
  // Section 4.2.3's argument: once ciphers are accelerated, protocol
  // processing dominates; only the protocol engine removes it.
  auto model = WorkloadModel::paper_calibrated();
  model.set_protocol_instr_per_byte(50.0);
  const Processor host = Processor::strongarm_sa1100();
  const SecurityPlatform accel(host, AccelProfile::crypto_accelerator(),
                               model);
  const SecurityPlatform engine(host, AccelProfile::protocol_engine(), model);
  const double r_accel = accel.achievable_mbps(Primitive::kRc4, Primitive::kMd5);
  const double r_engine =
      engine.achievable_mbps(Primitive::kRc4, Primitive::kMd5);
  EXPECT_GT(r_engine, r_accel * 3);  // dominated by protocol offload
}

TEST(AccelTest, DspTierSitsBetweenIsaAndAccelerator) {
  // The OMAP dual-core story: better than instruction tweaks, short of
  // dedicated silicon.
  const auto model = WorkloadModel::paper_calibrated();
  const Processor host = Processor::strongarm_sa1100();
  const SecurityPlatform isa(host, AccelProfile::isa_extension(), model);
  const SecurityPlatform dsp(host, AccelProfile::dsp_offload(), model);
  const SecurityPlatform acc(host, AccelProfile::crypto_accelerator(), model);
  const auto rate = [&](const SecurityPlatform& p) {
    return p.achievable_mbps(Primitive::kDes3, Primitive::kSha1);
  };
  EXPECT_GT(rate(dsp), rate(isa));
  EXPECT_LT(rate(dsp), rate(acc));
  EXPECT_EQ(accel_tier_name(AccelTier::kDspOffload), "DSP-offload");
}

TEST(AccelTest, HandshakeLatencyImproves) {
  const auto model = WorkloadModel::paper_calibrated();
  const Processor host = Processor::strongarm_sa1100();
  const SecurityPlatform sw(host, AccelProfile::software(), model);
  const SecurityPlatform hw(host, AccelProfile::crypto_accelerator(), model);
  const double sw_lat = sw.handshake_latency_s(Primitive::kRsa1024Private);
  const double hw_lat = hw.handshake_latency_s(Primitive::kRsa1024Private);
  EXPECT_NEAR(sw_lat, 56e6 / 235e6, 1e-6);
  EXPECT_LT(hw_lat, sw_lat / 10);
}

TEST(AccelTest, UtilisationScalesLinearly) {
  const auto model = WorkloadModel::paper_calibrated();
  const SecurityPlatform plat(Processor::strongarm_sa1100(),
                              AccelProfile::software(), model);
  const double full = plat.achievable_mbps(Primitive::kAes128, Primitive::kSha1, 1.0);
  const double half = plat.achievable_mbps(Primitive::kAes128, Primitive::kSha1, 0.5);
  EXPECT_NEAR(half, full / 2, 1e-9);
}

TEST(AccelTest, AcceleratedModelScalesCostsByClass) {
  const auto base = WorkloadModel::paper_calibrated();
  const AccelProfile accel = AccelProfile::isa_dispatch(6.0, 4.0, 1.2);
  const auto fast = accelerated_model(base, accel);
  EXPECT_NEAR(fast.instr_per_byte(Primitive::kAes128),
              base.instr_per_byte(Primitive::kAes128) / 6.0, 1e-9);
  EXPECT_NEAR(fast.instr_per_byte(Primitive::kSha1),
              base.instr_per_byte(Primitive::kSha1) / 4.0, 1e-9);
  EXPECT_NEAR(fast.instr_per_op(Primitive::kRsa1024Private),
              base.instr_per_op(Primitive::kRsa1024Private) / 1.2, 1e-6);
  // ISA dispatch does not offload the per-packet protocol component.
  EXPECT_NEAR(fast.protocol_instr_per_byte(), base.protocol_instr_per_byte(),
              1e-9);
  // Software profile is the identity.
  const auto same = accelerated_model(base, AccelProfile::software());
  EXPECT_NEAR(same.instr_per_byte(Primitive::kDes3),
              base.instr_per_byte(Primitive::kDes3), 1e-9);
}

TEST(AccelTest, AcceleratedServingGapNarrowsAndSavesEnergy) {
  const auto model = WorkloadModel::paper_calibrated();
  const Processor proc = Processor::strongarm_sa1100();
  ServedLoad load;
  load.full_handshakes_per_s = 2.0;
  load.resumed_handshakes_per_s = 6.0;
  load.bulk_mbps = 4.0;
  load.sessions_per_s = 8.0;
  load.avg_session_kb = 64.0;

  const ServingGapReport base = serving_gap(model, proc, load);
  const ServingGapReport fast =
      serving_gap(model, AccelProfile::isa_dispatch(), proc, load);
  EXPECT_GT(base.gap_ratio, 0);
  EXPECT_LT(fast.gap_ratio, base.gap_ratio);
  EXPECT_LT(fast.bulk_mips, base.bulk_mips);
  EXPECT_LT(fast.handshake_mips, base.handshake_mips);
  EXPECT_LT(fast.session_mj, base.session_mj);
  EXPECT_GT(fast.sessions_per_charge, base.sessions_per_charge);
  EXPECT_EQ(fast.available_mips, base.available_mips);

  // A tier that accelerates nothing must reproduce the base report.
  const ServingGapReport same =
      serving_gap(model, AccelProfile::software(), proc, load);
  EXPECT_NEAR(same.gap_ratio, base.gap_ratio, 1e-12);
  EXPECT_NEAR(same.session_mj, base.session_mj, 1e-12);
}

TEST(AccelTest, ShardedServingGapSplitsLoadAndChargesBarrierTax) {
  const auto model = WorkloadModel::paper_calibrated();
  const Processor proc = Processor::strongarm_sa1100();
  ServedLoad load;
  load.full_handshakes_per_s = 20.0;
  load.bulk_mbps = 8.0;
  load.sessions_per_s = 24.0;
  load.avg_session_kb = 64.0;

  // 1000 merges/s at 2000 instr each = 2 MIPS of barrier tax per shard.
  const ShardedGapReport four =
      serving_gap_sharded(model, proc, load, 4, /*slice_us=*/1'000);
  EXPECT_NEAR(four.merge_overhead_mips, 2.0, 1e-9);
  EXPECT_NEAR(four.per_shard_required_mips,
              four.fleet.required_mips / 4.0 + 2.0, 1e-9);
  EXPECT_NEAR(four.shard_utilisation,
              four.per_shard_required_mips / proc.mips, 1e-12);

  // One shard pays the same tax but carries the whole fleet.
  const ShardedGapReport one =
      serving_gap_sharded(model, proc, load, 1, 1'000);
  EXPECT_NEAR(one.per_shard_required_mips,
              one.fleet.required_mips + 2.0, 1e-9);
  EXPECT_GT(one.shard_utilisation, four.shard_utilisation);

  // min_shards: ceil(required / (mips - tax)), at least 1.
  const double headroom = proc.mips - 2.0;
  EXPECT_NEAR(four.min_shards,
              std::ceil(four.fleet.required_mips / headroom), 1e-9);
  EXPECT_GE(four.min_shards, 1.0);

  // Coarser slices shrink the tax.
  const ShardedGapReport coarse =
      serving_gap_sharded(model, proc, load, 4, 10'000);
  EXPECT_NEAR(coarse.merge_overhead_mips, 0.2, 1e-9);
  EXPECT_LT(coarse.per_shard_required_mips, four.per_shard_required_mips);
}

}  // namespace
}  // namespace mapsec::platform
