// Cross-module integration: the full device lifecycle in one test file —
// verified boot gating the key store, stored credentials driving a
// mutually-authenticated TLS session, the platform models pricing it,
// and the attack modules probing the running configuration.
#include <gtest/gtest.h>

#include "mapsec/attack/bleichenbacher.hpp"
#include "mapsec/attack/spa.hpp"
#include "mapsec/crypto/pbkdf2.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/platform/accelerator.hpp"
#include "mapsec/protocol/esp.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/secureplat/keystore.hpp"
#include "mapsec/secureplat/secure_boot.hpp"
#include "mapsec/secureplat/user_auth.hpp"

namespace mapsec {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;

TEST(IntegrationTest, DeviceLifecycleBootToSecureSession) {
  crypto::HmacDrbg rng(0x1F7E);

  // -- 1. Verified boot gates everything else.
  const crypto::RsaKeyPair oem = crypto::rsa_generate(rng, 512);
  secureplat::BootRom rom(oem.pub);
  const auto report = rom.boot({
      secureplat::make_boot_image("loader", to_bytes("ldr"), 1, oem.priv),
      secureplat::make_boot_image("os", to_bytes("os"), 1, oem.priv),
  });
  ASSERT_TRUE(report.booted);

  // -- 2. The user's PIN, stretched with PBKDF2, unlocks the key store
  //       master secret (modelling the PIN->storage-key path).
  secureplat::PinAuthenticator pin(to_bytes("4711"), &rng);
  ASSERT_EQ(pin.verify(to_bytes("4711")), secureplat::AuthResult::kGranted);
  const Bytes master = crypto::pbkdf2_hmac_sha256(
      to_bytes("4711"), to_bytes("device-serial-0042"), 100, 32);
  secureplat::KeyStore store(master, &rng);

  // -- 3. Client TLS credentials live sealed in flash.
  const crypto::RsaKeyPair client_key = crypto::rsa_generate(rng, 512);
  const Bytes client_key_der = client_key.priv.d.to_bytes_be();
  const auto sealed = store.seal("tls-client-key", client_key_der);
  Bytes unsealed;
  ASSERT_EQ(store.unseal(sealed, unsealed),
            secureplat::UnsealStatus::kOk);
  ASSERT_EQ(unsealed, client_key_der);

  // -- 4. Mutually-authenticated TLS session using the unsealed identity.
  const crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng, 512);
  const crypto::RsaKeyPair server_key = crypto::rsa_generate(rng, 512);
  protocol::CertificateAuthority ca("Root", ca_key, 0, kNow * 2);
  const auto server_cert = ca.issue("srv", server_key.pub, 0, kNow * 2);
  const auto client_cert = ca.issue("dev-0042", client_key.pub, 0, kNow * 2);

  crypto::HmacDrbg crng(1), srng(2);
  protocol::HandshakeConfig ccfg;
  ccfg.rng = &crng;
  ccfg.now = kNow;
  ccfg.trusted_roots = {ca.root()};
  ccfg.client_cert_chain = {client_cert};
  ccfg.client_private_key = &client_key.priv;
  protocol::HandshakeConfig scfg;
  scfg.rng = &srng;
  scfg.now = kNow;
  scfg.cert_chain = {server_cert};
  scfg.private_key = &server_key.priv;
  scfg.request_client_auth = true;
  scfg.require_client_auth = true;
  scfg.trusted_roots = {ca.root()};

  protocol::TlsClient client(ccfg);
  protocol::TlsServer server(scfg, nullptr);
  protocol::run_handshake(client, server);
  ASSERT_TRUE(server.established());
  EXPECT_TRUE(server.summary().client_authenticated);

  const auto got =
      server.recv_data(client.send_data(to_bytes("device telemetry")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("device telemetry"));

  // -- 5. The platform model prices exactly what just happened: the
  //       client did one RSA private op (CertificateVerify) plus public
  //       ops; on the DragonBall that handshake alone blows a 1 s budget,
  //       on the StrongARM it fits.
  const auto model = platform::WorkloadModel::paper_calibrated();
  const double handshake_instr =
      model.instr_per_op(platform::Primitive::kRsa1024Private);
  EXPECT_GT(platform::Processor::dragonball().seconds_for(handshake_instr),
            1.0);
  EXPECT_LT(
      platform::Processor::strongarm_sa1100().seconds_for(handshake_instr),
      1.0);
}

TEST(IntegrationTest, AttackSurfaceOfTheRunningConfiguration) {
  crypto::HmacDrbg rng(0x1F7F);
  const crypto::RsaKeyPair key = crypto::rsa_generate(rng, 256);

  // A server that decrypts ClientKeyExchange with a leaky error path is
  // Bleichenbacher-recoverable...
  const Bytes premaster = to_bytes("premaster-secret");
  const Bytes ct = crypto::rsa_encrypt_pkcs1(key.pub, premaster, rng);
  attack::PaddingOracle oracle(key.priv,
                               attack::PaddingOracle::Strictness::kPrefixOnly);
  const auto bb = attack::bleichenbacher_attack(key.pub, ct, oracle);
  ASSERT_TRUE(bb.success);
  EXPECT_EQ(bb.recovered_message, premaster);

  // ...and a device signing with unprotected square-and-multiply loses
  // its key to one SPA trace; the ladder build of the *same* key does not.
  const crypto::BigInt m = crypto::BigInt::random_below(rng, key.pub.n);
  attack::SpaOracle leaky(key.priv,
                          attack::SpaOracle::Strategy::kSquareAndMultiply);
  EXPECT_TRUE(attack::spa_attack(key.pub, m, leaky.sign(m)).verified);
  attack::SpaOracle fixed(key.priv,
                          attack::SpaOracle::Strategy::kMontgomeryLadder);
  EXPECT_FALSE(attack::spa_attack(key.pub, m, fixed.sign(m)).verified);
}

TEST(IntegrationTest, EngineCarriesEspTrafficFromTheProtocolStack) {
  // The programmable engine (src/engine) drops into the datapath of the
  // hand-written ESP stack (src/protocol) without either knowing the
  // other: same SA material, interoperable packets.
  crypto::HmacDrbg rng(0x1F80);
  protocol::EspSa sa;
  sa.spi = 77;
  sa.cipher = protocol::BulkCipher::kAes128;
  sa.enc_key = rng.bytes(16);
  sa.mac_key = rng.bytes(20);
  protocol::EspSender sender(sa, &rng);

  engine::EngineSa esa;
  esa.spi = sa.spi;
  esa.cipher = sa.cipher;
  esa.enc_key = sa.enc_key;
  esa.mac_key = sa.mac_key;
  engine::ProtocolEngine eng(engine::EngineProfile{}, &rng);
  eng.load_program("esp-in", engine::esp_inbound_program());

  for (int i = 0; i < 20; ++i) {
    const Bytes payload = rng.bytes(1 + rng.below(200));
    const auto r = eng.run("esp-in", esa, sender.protect(payload));
    ASSERT_TRUE(r.accepted) << r.drop_reason;
    EXPECT_EQ(r.payload, payload);
  }
}

}  // namespace
}  // namespace mapsec
