// The Section 3.4 attack suite: each attack must succeed against the
// unprotected implementation and fail against the countermeasure.
#include <gtest/gtest.h>

#include <cmath>

#include "mapsec/attack/bleichenbacher.hpp"
#include "mapsec/attack/cbc_iv.hpp"
#include "mapsec/attack/dpa.hpp"
#include "mapsec/attack/fault.hpp"
#include "mapsec/attack/spa.hpp"
#include "mapsec/attack/timing.hpp"
#include "mapsec/attack/wep_attack.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::attack {
namespace {

using crypto::BigInt;
using crypto::Bytes;
using crypto::to_bytes;

// ---- timing attack -------------------------------------------------------------

class TimingAttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x71A1);
    key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 128));
  }
  static void TearDownTestSuite() { delete key_; }
  static crypto::RsaKeyPair* key_;
};

crypto::RsaKeyPair* TimingAttackTest::key_ = nullptr;

TEST_F(TimingAttackTest, RecoversKeyFromLeakyExponentiation) {
  TimingModel model;
  model.noise_stddev = 20.0;
  TimingOracle oracle(key_->priv, model, ExpStrategy::kSquareAndMultiply, 1);
  crypto::HmacDrbg rng(2);
  const auto result =
      timing_attack(oracle, rng, 8000, key_->priv.d.bit_length());
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.recovered_d, key_->priv.d);
  EXPECT_EQ(result.correct_bit_fraction, 1.0);
}

TEST_F(TimingAttackTest, MontgomeryLadderDefeatsAttack) {
  TimingModel model;
  model.noise_stddev = 20.0;
  TimingOracle oracle(key_->priv, model, ExpStrategy::kMontgomeryLadder, 3);
  crypto::HmacDrbg rng(4);
  const auto result =
      timing_attack(oracle, rng, 8000, key_->priv.d.bit_length());
  EXPECT_FALSE(result.verified);
  // Recovered bits should be near chance level against the true key.
  EXPECT_LT(result.correct_bit_fraction, 0.75);
}

TEST_F(TimingAttackTest, BlindingDefeatsAttack) {
  TimingModel model;
  model.noise_stddev = 20.0;
  TimingOracle oracle(key_->priv, model, ExpStrategy::kBlinded, 5);
  crypto::HmacDrbg rng(6);
  const auto result =
      timing_attack(oracle, rng, 8000, key_->priv.d.bit_length());
  EXPECT_FALSE(result.verified);
  EXPECT_LT(result.correct_bit_fraction, 0.75);
}

TEST_F(TimingAttackTest, OracleSignaturesAreCorrect) {
  TimingModel model;
  TimingOracle oracle(key_->priv, model, ExpStrategy::kSquareAndMultiply, 7);
  crypto::HmacDrbg rng(8);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const auto obs = oracle.sign(m);
  EXPECT_EQ(obs.signature, crypto::rsa_private_op(key_->priv, m));
  EXPECT_GT(obs.time_cycles, 0.0);
  // All three strategies compute the same function.
  TimingOracle ladder(key_->priv, model, ExpStrategy::kMontgomeryLadder, 9);
  TimingOracle blinded(key_->priv, model, ExpStrategy::kBlinded, 10);
  EXPECT_EQ(ladder.sign(m).signature, obs.signature);
  EXPECT_EQ(blinded.sign(m).signature, obs.signature);
}

TEST_F(TimingAttackTest, LadderTimingIsInputIndependent) {
  // With noise off, ladder times collapse to a single value per key.
  TimingModel model;
  model.noise_stddev = 0;
  model.cycles_per_extra_reduction = 0;
  TimingOracle oracle(key_->priv, model, ExpStrategy::kMontgomeryLadder, 11);
  crypto::HmacDrbg rng(12);
  const double t0 = oracle.sign(BigInt::random_below(rng, key_->pub.n)).time_cycles;
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(
        oracle.sign(BigInt::random_below(rng, key_->pub.n)).time_cycles, t0);
  }
}

// ---- SPA -----------------------------------------------------------------------

TEST_F(TimingAttackTest, SpaReadsKeyFromSingleTrace) {
  SpaOracle oracle(key_->priv, SpaOracle::Strategy::kSquareAndMultiply);
  crypto::HmacDrbg rng(20);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const auto trace = oracle.sign(m);
  const SpaResult result = spa_attack(key_->pub, m, trace);
  EXPECT_TRUE(result.parsed);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.recovered_d, key_->priv.d);
}

TEST_F(TimingAttackTest, SpaDefeatedByLadder) {
  SpaOracle oracle(key_->priv, SpaOracle::Strategy::kMontgomeryLadder);
  crypto::HmacDrbg rng(21);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const auto trace = oracle.sign(m);
  const SpaResult result = spa_attack(key_->pub, m, trace);
  EXPECT_FALSE(result.parsed);
  EXPECT_FALSE(result.verified);
}

TEST_F(TimingAttackTest, SpaTraceShapes) {
  // S&M trace length is keyed; ladder trace is 2 ops/bit regardless.
  SpaOracle sm(key_->priv, SpaOracle::Strategy::kSquareAndMultiply);
  SpaOracle ladder(key_->priv, SpaOracle::Strategy::kMontgomeryLadder);
  crypto::HmacDrbg rng(22);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const std::size_t bits = key_->priv.d.bit_length();
  std::size_t ones = 0;
  for (std::size_t i = 0; i + 1 < bits; ++i)
    if (key_->priv.d.bit(i)) ++ones;
  EXPECT_EQ(sm.sign(m).ops.size(), (bits - 1) + ones);
  EXPECT_EQ(ladder.sign(m).ops.size(), 2 * bits);
}

// ---- DPA -----------------------------------------------------------------------

TEST(DpaAttackTest, RecoversFullDesKey) {
  crypto::HmacDrbg key_rng(0xDE5);
  const Bytes key = key_rng.bytes(8);
  PowerModel model;
  model.noise_stddev = 0.5;
  DesPowerOracle oracle(key, model, /*masked=*/false, 1);
  crypto::HmacDrbg rng(2);
  const auto result = dpa_attack(oracle, rng, 600);
  EXPECT_EQ(result.correct_chunks, 8);
  ASSERT_TRUE(result.full_key_recovered);
  // The recovered key equals the true key up to parity bits: verify by
  // comparing key schedules via encryption.
  Bytes pt = to_bytes("8bytes!!");
  Bytes ct_true(8), ct_rec(8);
  crypto::Des(key).encrypt_block(pt.data(), ct_true.data());
  crypto::Des(result.recovered_key).encrypt_block(pt.data(), ct_rec.data());
  EXPECT_EQ(ct_true, ct_rec);
}

TEST(DpaAttackTest, NoisyTracesStillRecoverWithMoreData) {
  crypto::HmacDrbg key_rng(0xDE6);
  const Bytes key = key_rng.bytes(8);
  PowerModel model;
  model.noise_stddev = 2.0;  // SNR well below 1
  DesPowerOracle oracle(key, model, /*masked=*/false, 3);
  crypto::HmacDrbg rng(4);
  const auto result = dpa_attack(oracle, rng, 12000);
  EXPECT_EQ(result.correct_chunks, 8);
  EXPECT_TRUE(result.full_key_recovered);
}

TEST(DpaAttackTest, MaskingDefeatsFirstOrderDpa) {
  crypto::HmacDrbg key_rng(0xDE7);
  const Bytes key = key_rng.bytes(8);
  PowerModel model;
  model.noise_stddev = 0.5;
  DesPowerOracle oracle(key, model, /*masked=*/true, 5);
  crypto::HmacDrbg rng(6);
  const auto result = dpa_attack(oracle, rng, 2000);
  EXPECT_FALSE(result.full_key_recovered);
  EXPECT_LT(result.correct_chunks, 4);  // chance level is 8/64 ~ 0
}

TEST(DpaAttackTest, OracleLeaksHammingWeight) {
  // Noise-free trace equals the Hamming weight of the S-box outputs.
  const Bytes key = crypto::from_hex("133457799BBCDFF1");
  PowerModel model;
  model.noise_stddev = 0;
  DesPowerOracle oracle(key, model, /*masked=*/false, 7);
  const auto trace = oracle.encrypt(crypto::from_hex("0123456789ABCDEF"));
  for (const double s : trace.samples) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 4.0);
    EXPECT_DOUBLE_EQ(s, std::round(s));
  }
  // Ciphertext matches plain DES.
  EXPECT_EQ(crypto::to_hex(trace.ciphertext), "85e813540f0ab405");
}

// ---- fault attack ----------------------------------------------------------------

class FaultAttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xFA17);
    key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() { delete key_; }
  static crypto::RsaKeyPair* key_;
};

crypto::RsaKeyPair* FaultAttackTest::key_ = nullptr;

TEST_F(FaultAttackTest, SingleFaultFactorsModulus) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(1);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const BigInt faulty = signer.sign_faulty(m, FaultTarget::kExpModP, 10);
  const auto result = bdl_factor(key_->pub, m, faulty);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.factor * result.cofactor, key_->pub.n);
  EXPECT_TRUE(result.factor == key_->priv.p || result.factor == key_->priv.q);
}

TEST_F(FaultAttackTest, WorksOnEitherHalf) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(2);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const auto rp = bdl_factor(key_->pub, m,
                             signer.sign_faulty(m, FaultTarget::kExpModP, 3));
  const auto rq = bdl_factor(key_->pub, m,
                             signer.sign_faulty(m, FaultTarget::kExpModQ, 3));
  ASSERT_TRUE(rp.success);
  ASSERT_TRUE(rq.success);
  // Faulting mod-p leaves the mod-q half correct, so gcd gives q (and
  // vice versa).
  EXPECT_EQ(rp.factor, key_->priv.q);
  EXPECT_EQ(rq.factor, key_->priv.p);
}

TEST_F(FaultAttackTest, ManyBitPositionsAllWork) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(3);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  for (std::size_t bit : {0u, 1u, 17u, 100u, 200u}) {
    const auto r = bdl_factor(key_->pub, m,
                              signer.sign_faulty(m, FaultTarget::kExpModQ, bit));
    EXPECT_TRUE(r.success) << "bit " << bit;
  }
}

TEST_F(FaultAttackTest, CorrectSignatureDoesNotFactor) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(4);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const auto r = bdl_factor(key_->pub, m, signer.sign(m));
  EXPECT_FALSE(r.success);
}

TEST_F(FaultAttackTest, VerifyBeforeReleaseDefeatsAttack) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(5);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  const BigInt s = signer.sign_protected(m, FaultTarget::kExpModP, 10);
  // The released signature is correct...
  EXPECT_EQ(s, signer.sign(m));
  // ...so the BDL computation finds nothing.
  EXPECT_FALSE(bdl_factor(key_->pub, m, s).success);
}

TEST_F(FaultAttackTest, SignerMatchesLibraryRsa) {
  FaultySigner signer(key_->priv);
  crypto::HmacDrbg rng(6);
  const BigInt m = BigInt::random_below(rng, key_->pub.n);
  EXPECT_EQ(signer.sign(m), crypto::rsa_private_op_crt(key_->priv, m));
}

// ---- chained-IV CBC attack ----------------------------------------------------

class CbcIvAttackTest : public ::testing::Test {
 protected:
  CbcIvAttackTest() : rng_(0xCBC1) {}
  crypto::HmacDrbg rng_;
};

TEST_F(CbcIvAttackTest, DictionaryAttackRecoversPinUnderChainedIvs) {
  CbcChannelOracle oracle(rng_.bytes(16),
                          CbcChannelOracle::IvMode::kChained, &rng_);
  // Some unrelated traffic, then the device sends its PIN record.
  oracle.send_block(to_bytes("GET /index.html "));
  const Bytes secret_iv_snapshot = [&] {
    // The IV that will protect the next record is public (chained).
    return *oracle.predict_next_iv();
  }();
  const Bytes secret_ct = oracle.transmit_secret(pin_block(4711));
  oracle.send_block(to_bytes("more traffic...."));

  const auto result = cbc_iv_dictionary_attack(
      oracle, secret_iv_snapshot, secret_ct, pin_candidate_blocks());
  ASSERT_TRUE(result.recovered);
  EXPECT_EQ(result.secret, pin_block(4711));
  EXPECT_LE(result.guesses_tried, 10000u);
}

TEST_F(CbcIvAttackTest, UnpredictableIvsDefeatTheAttack) {
  CbcChannelOracle oracle(rng_.bytes(16),
                          CbcChannelOracle::IvMode::kUnpredictable, &rng_);
  oracle.send_block(to_bytes("GET /index.html "));
  const Bytes secret_ct = oracle.transmit_secret(pin_block(4711));
  const Bytes secret_iv = oracle.last_record_iv();
  const auto result = cbc_iv_dictionary_attack(oracle, secret_iv, secret_ct,
                                               pin_candidate_blocks());
  EXPECT_FALSE(result.recovered);
  // The attack aborts immediately: the next IV is unknowable.
  EXPECT_EQ(result.guesses_tried, 1u);
  EXPECT_FALSE(oracle.predict_next_iv().has_value());
}

TEST_F(CbcIvAttackTest, WrongCandidateSetFindsNothing) {
  CbcChannelOracle oracle(rng_.bytes(16),
                          CbcChannelOracle::IvMode::kChained, &rng_);
  const Bytes secret_iv = *oracle.predict_next_iv();
  const Bytes secret_ct = oracle.transmit_secret(
      to_bytes("not a pin block!"));  // outside the dictionary
  auto result = cbc_iv_dictionary_attack(oracle, secret_iv, secret_ct,
                                         pin_candidate_blocks());
  EXPECT_FALSE(result.recovered);
  EXPECT_EQ(result.guesses_tried, 10000u);
}

TEST_F(CbcIvAttackTest, OracleValidation) {
  EXPECT_THROW(CbcChannelOracle(Bytes(8),
                                CbcChannelOracle::IvMode::kChained, &rng_),
               std::invalid_argument);
  CbcChannelOracle oracle(rng_.bytes(16),
                          CbcChannelOracle::IvMode::kChained, &rng_);
  EXPECT_THROW(oracle.send_block(Bytes(8)), std::invalid_argument);
}

// ---- Bleichenbacher padding oracle -----------------------------------------------

class BleichenbacherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xB1E1);
    key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 256));
  }
  static void TearDownTestSuite() { delete key_; }
  static crypto::RsaKeyPair* key_;
};

crypto::RsaKeyPair* BleichenbacherTest::key_ = nullptr;

TEST_F(BleichenbacherTest, RecoversPremasterFromPrefixOracle) {
  crypto::HmacDrbg rng(1);
  const Bytes secret = to_bytes("48-byte premaster");
  const Bytes ct = crypto::rsa_encrypt_pkcs1(key_->pub, secret, rng);
  PaddingOracle oracle(key_->priv, PaddingOracle::Strictness::kPrefixOnly);
  const auto result = bleichenbacher_attack(key_->pub, ct, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.recovered_message, secret);
  EXPECT_GT(result.oracle_queries, 100u);     // not free...
  EXPECT_LT(result.oracle_queries, 200000u);  // ...but only one bit/query
}

TEST_F(BleichenbacherTest, StrictOracleIsHarderToSatisfy) {
  // The full-padding oracle accepts strictly less than the prefix oracle
  // (which is why attacks against it need more queries — measured by
  // bench_attack_bleichenbacher; the full attack run is too slow for a
  // unit test). Crafted encryption blocks hit each distinguishing case.
  PaddingOracle prefix(key_->priv, PaddingOracle::Strictness::kPrefixOnly);
  PaddingOracle full(key_->priv, PaddingOracle::Strictness::kFull);
  const std::size_t k = key_->pub.modulus_bytes();

  const auto encrypt_em = [&](const Bytes& em) {
    return crypto::rsa_public_op(key_->pub, BigInt::from_bytes_be(em));
  };

  // Properly padded: both accept.
  Bytes good(k, 0xAA);
  good[0] = 0x00;
  good[1] = 0x02;
  good[12] = 0x00;  // separator after 10 nonzero padding bytes
  EXPECT_TRUE(prefix.conforming(encrypt_em(good)));
  EXPECT_TRUE(full.conforming(encrypt_em(good)));

  // 00 02 but no zero separator: prefix accepts, full rejects.
  Bytes no_sep(k, 0x55);
  no_sep[0] = 0x00;
  no_sep[1] = 0x02;
  EXPECT_TRUE(prefix.conforming(encrypt_em(no_sep)));
  EXPECT_FALSE(full.conforming(encrypt_em(no_sep)));

  // 00 02 with a separator too early (padding < 8): full rejects.
  Bytes short_pad = good;
  short_pad[4] = 0x00;
  EXPECT_TRUE(prefix.conforming(encrypt_em(short_pad)));
  EXPECT_FALSE(full.conforming(encrypt_em(short_pad)));

  // Wrong type byte: both reject.
  Bytes wrong = good;
  wrong[1] = 0x01;
  EXPECT_FALSE(prefix.conforming(encrypt_em(wrong)));
  EXPECT_FALSE(full.conforming(encrypt_em(wrong)));
}

TEST_F(BleichenbacherTest, QueryBudgetRespected) {
  crypto::HmacDrbg rng(3);
  const Bytes ct =
      crypto::rsa_encrypt_pkcs1(key_->pub, to_bytes("secret"), rng);
  PaddingOracle oracle(key_->priv, PaddingOracle::Strictness::kPrefixOnly);
  const auto result = bleichenbacher_attack(key_->pub, ct, oracle, 50);
  EXPECT_FALSE(result.success);
  EXPECT_LE(result.oracle_queries, 51u);
}

TEST_F(BleichenbacherTest, OracleBehaviour) {
  crypto::HmacDrbg rng(4);
  PaddingOracle oracle(key_->priv, PaddingOracle::Strictness::kFull);
  const Bytes good =
      crypto::rsa_encrypt_pkcs1(key_->pub, to_bytes("ok"), rng);
  EXPECT_TRUE(oracle.conforming(BigInt::from_bytes_be(good)));
  // A random ciphertext is (overwhelmingly) non-conforming.
  EXPECT_FALSE(
      oracle.conforming(BigInt::random_below(rng, key_->pub.n)));
  EXPECT_FALSE(oracle.conforming(key_->pub.n));  // out of range
  EXPECT_EQ(oracle.queries(), 3u);
}

// ---- WEP attacks --------------------------------------------------------------

TEST(WepAttackTest, KeystreamReuseDecryptsSecondFrame) {
  crypto::HmacDrbg rng(1);
  const Bytes key = rng.bytes(13);
  const std::array<std::uint8_t, 3> iv{0x42, 0x42, 0x42};
  const Bytes p1 = to_bytes("known broadcast announcement!");
  const Bytes p2 = to_bytes("secret user credentials here!");
  const auto f1 = protocol::wep_encapsulate(key, iv, p1);
  const auto f2 = protocol::wep_encapsulate(key, iv, p2);
  const Bytes recovered = keystream_reuse_decrypt(f1, p1, f2);
  EXPECT_TRUE(std::equal(p2.begin(), p2.end(), recovered.begin()));
}

TEST(WepAttackTest, IvCollisionFoundUnderSequentialPolicyWrap) {
  // Sequential IVs collide exactly at 2^24 frames; simulate a small IV
  // space by reusing low counter bits directly.
  std::vector<protocol::WepFrame> frames;
  crypto::HmacDrbg rng(2);
  const Bytes key = rng.bytes(5);
  for (int i = 0; i < 300; ++i) {
    const std::uint8_t c = static_cast<std::uint8_t>(i);  // wraps at 256
    frames.push_back(protocol::wep_encapsulate(
        key, {c, 0, 0}, to_bytes("frame payload")));
  }
  const auto collision = find_iv_collision(frames);
  ASSERT_TRUE(collision.has_value());
  EXPECT_EQ(collision->second - collision->first, 256u);
}

TEST(WepAttackTest, FmsRecoversWep40Key) {
  crypto::HmacDrbg rng(3);
  const Bytes key = rng.bytes(5);
  FmsAttack attack(5);
  protocol::WepFrame check;

  // Traffic: for each key byte, the canonical weak IVs (B+3, 255, x).
  const Bytes payload = [&] {
    Bytes p = to_bytes("AAAA-SNAP-payload");
    p[0] = kSnapHeaderByte;
    return p;
  }();
  for (std::size_t b = 0; b < 5; ++b) {
    for (int x = 0; x < 256; ++x) {
      const auto frame = protocol::wep_encapsulate(
          key,
          {static_cast<std::uint8_t>(b + 3), 255,
           static_cast<std::uint8_t>(x)},
          payload);
      if (b == 0 && x == 0) check = frame;
      attack.observe(frame);
    }
  }
  EXPECT_EQ(attack.resolved_count(0), 256u);
  const auto recovered = attack.try_recover(check);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);
}

TEST(WepAttackTest, FmsFailsWithoutWeakIvs) {
  crypto::HmacDrbg rng(4);
  const Bytes key = rng.bytes(5);
  FmsAttack attack(5);
  protocol::WepFrame check;
  Bytes payload = to_bytes("Xnormal traffic");
  payload[0] = kSnapHeaderByte;
  // Only strong IVs (second byte != 255).
  for (int i = 0; i < 2000; ++i) {
    const auto frame = protocol::wep_encapsulate(
        key,
        {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8), 7},
        payload);
    if (i == 0) check = frame;
    attack.observe(frame);
  }
  EXPECT_FALSE(attack.try_recover(check).has_value());
}

TEST(WepAttackTest, FmsRejectsBadKeyLength) {
  EXPECT_THROW(FmsAttack(8), std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::attack
