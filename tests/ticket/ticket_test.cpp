// Unit tests for mapsec::ticket — the stateless-resumption codec and the
// rotating key ring, independent of any protocol machinery.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/ticket/ticket.hpp"

namespace mapsec::ticket {
namespace {

SessionTicket make_ticket(crypto::Rng& rng, std::uint64_t issued_at_us) {
  SessionTicket t;
  t.master_secret = rng.bytes(48);
  t.suite = 0x000A;
  t.issued_at_us = issued_at_us;
  t.client_binding = client_binding_for(t.master_secret);
  return t;
}

TEST(TicketCodec, SealOpenRoundTrip) {
  TicketKeyRing ring(0xA11CE, {});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);

  const SessionTicket t = make_ticket(rng, 1000);
  const crypto::Bytes wire = codec.seal(t, rng);
  EXPECT_GE(wire.size(), kKeyIdLen + 13 + kTagLen);

  OpenFailure why = OpenFailure::kMacFailure;
  const auto opened = codec.open(wire, 2000, &why);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(why, OpenFailure::kNone);
  EXPECT_EQ(opened->master_secret, t.master_secret);
  EXPECT_EQ(opened->suite, t.suite);
  EXPECT_EQ(opened->issued_at_us, t.issued_at_us);
  EXPECT_EQ(opened->client_binding, t.client_binding);
  EXPECT_EQ(codec.stats().sealed, 1u);
  EXPECT_EQ(codec.stats().opened, 1u);
  EXPECT_EQ(codec.stats().open_failures(), 0u);
}

TEST(TicketCodec, DistinctNoncesGiveDistinctWires) {
  TicketKeyRing ring(0xA11CE, {});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  const SessionTicket t = make_ticket(rng, 0);
  EXPECT_NE(codec.seal(t, rng), codec.seal(t, rng));
}

TEST(TicketCodec, DeterministicKeysFromSeed) {
  TicketKeyRing a(0xDEED, {}), b(0xDEED, {}), c(0xFEED, {});
  EXPECT_EQ(a.sealing_key().key, b.sealing_key().key);
  EXPECT_NE(a.sealing_key().key, c.sealing_key().key);
  // A ticket sealed by one server instance opens on a twin with the same
  // seed (deterministic replay across simulation runs).
  TicketCodec ca(a), cb(b);
  crypto::HmacDrbg rng(9);
  const crypto::Bytes wire = ca.seal(make_ticket(rng, 5), rng);
  EXPECT_TRUE(cb.open(wire, 10).has_value());
}

TEST(TicketCodec, TamperedByteFailsMac) {
  TicketKeyRing ring(1, {});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  crypto::Bytes wire = codec.seal(make_ticket(rng, 0), rng);

  // Flip one bit in every position past the key id: nonce, body, or tag —
  // all must fail authentication (nonce feeds the CCM computation).
  for (std::size_t i = kKeyIdLen; i < wire.size(); ++i) {
    crypto::Bytes mutated = wire;
    mutated[i] ^= 0x01;
    OpenFailure why = OpenFailure::kNone;
    EXPECT_FALSE(codec.open(mutated, 0, &why).has_value()) << "byte " << i;
    EXPECT_EQ(why, OpenFailure::kMacFailure) << "byte " << i;
  }
  EXPECT_EQ(codec.stats().mac_failures, wire.size() - kKeyIdLen);
}

TEST(TicketCodec, TruncatedAndOversizeRefused) {
  TicketKeyRing ring(1, {});
  TicketCodec codec(ring, TicketCodec::Config{0, 128});
  crypto::HmacDrbg rng(7);
  const crypto::Bytes wire = codec.seal(make_ticket(rng, 0), rng);

  OpenFailure why = OpenFailure::kNone;
  EXPECT_FALSE(codec.open({}, 0, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kMalformed);

  const crypto::Bytes tiny(wire.begin(), wire.begin() + 8);
  EXPECT_FALSE(codec.open(tiny, 0, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kMalformed);

  crypto::Bytes huge(200, 0xAA);
  EXPECT_FALSE(codec.open(huge, 0, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kOversize);
  EXPECT_EQ(codec.stats().oversize, 1u);
  EXPECT_EQ(codec.stats().malformed, 2u);
}

TEST(TicketCodec, WrongBindingRefused) {
  TicketKeyRing ring(1, {});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  SessionTicket t = make_ticket(rng, 0);
  t.client_binding = rng.bytes(kBindingLen);  // splice: binding != master
  const crypto::Bytes wire = codec.seal(t, rng);
  OpenFailure why = OpenFailure::kNone;
  EXPECT_FALSE(codec.open(wire, 0, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kBadBinding);
}

TEST(TicketCodec, LifetimeExpiry) {
  TicketKeyRing ring(1, {});
  TicketCodec codec(ring, TicketCodec::Config{1'000'000, 512});
  crypto::HmacDrbg rng(7);
  const crypto::Bytes wire = codec.seal(make_ticket(rng, 500), rng);
  EXPECT_TRUE(codec.open(wire, 1'000'000).has_value());  // within lifetime
  OpenFailure why = OpenFailure::kNone;
  EXPECT_FALSE(codec.open(wire, 1'000'501 + 1).has_value());
  EXPECT_FALSE(codec.open(wire, 5'000'000, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kExpired);
  EXPECT_EQ(codec.stats().expired, 2u);
}

TEST(TicketKeyRing, RotationKeepsWindowThenStrands) {
  TicketKeyRing ring(1, TicketKeyRing::Config{3, 0});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  const crypto::Bytes wire = codec.seal(make_ticket(rng, 0), rng);

  // Two rotations: old key still within the 3-deep window.
  ring.rotate(100);
  ring.rotate(200);
  EXPECT_EQ(ring.depth(), 3u);
  EXPECT_TRUE(codec.open(wire, 300).has_value());

  // Third rotation retires the sealing key the ticket used.
  ring.rotate(300);
  OpenFailure why = OpenFailure::kNone;
  EXPECT_FALSE(codec.open(wire, 400, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kStaleKey);
  EXPECT_EQ(ring.stats().stale_key_lookups, 1u);
  EXPECT_EQ(ring.stats().rotations, 3u);
}

TEST(TicketKeyRing, MaybeRotateFollowsInterval) {
  TicketKeyRing ring(1, TicketKeyRing::Config{3, 1000}, 0);
  EXPECT_EQ(ring.maybe_rotate(999), 0u);
  EXPECT_EQ(ring.maybe_rotate(1000), 1u);
  EXPECT_EQ(ring.maybe_rotate(1001), 0u);
  EXPECT_EQ(ring.maybe_rotate(3000), 2u);  // catch-up, one per interval
  // Quiet gap far beyond window * interval: bounded catch-up, schedule
  // snaps forward instead of looping per missed interval.
  EXPECT_EQ(ring.maybe_rotate(1'000'000), 3u);
  EXPECT_EQ(ring.maybe_rotate(1'000'500), 0u);
  EXPECT_EQ(ring.depth(), 3u);
}

TEST(TicketKeyRing, StateBytesIndependentOfTicketCount) {
  TicketKeyRing ring(1, TicketKeyRing::Config{4, 0});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  ring.rotate(1);
  ring.rotate(2);
  ring.rotate(3);
  const std::size_t before = ring.state_bytes();
  for (int i = 0; i < 1000; ++i) codec.seal(make_ticket(rng, i), rng);
  // Sealing a thousand tickets pins zero additional server state.
  EXPECT_EQ(ring.state_bytes(), before);
  EXPECT_EQ(ring.depth(), 4u);
}

TEST(TicketKeyRing, ZeroWindowRejected) {
  EXPECT_THROW(TicketKeyRing(1, TicketKeyRing::Config{0, 0}),
               std::invalid_argument);
}

TEST(TicketCodec, StaleKeyIdRefusedBeforeCrypto) {
  TicketKeyRing ring(1, {});
  TicketCodec codec(ring);
  crypto::HmacDrbg rng(7);
  crypto::Bytes wire = codec.seal(make_ticket(rng, 0), rng);
  // Forge a never-issued key id; CCM is never attempted (AAD binds the id,
  // so even a correct guess of the key couldn't relabel a blob).
  wire[0] = 0xFF;
  OpenFailure why = OpenFailure::kNone;
  EXPECT_FALSE(codec.open(wire, 0, &why).has_value());
  EXPECT_EQ(why, OpenFailure::kStaleKey);
  EXPECT_EQ(codec.stats().mac_failures, 0u);
}

}  // namespace
}  // namespace mapsec::ticket
