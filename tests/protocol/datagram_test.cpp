// Datagram (WTLS-style) record protection: loss, reorder, replay.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/datagram.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

class DatagramTest : public ::testing::Test {
 protected:
  DatagramTest() {
    crypto::HmacDrbg rng(0xDA7A);
    const SuiteInfo& suite = suite_info(CipherSuite::kRsaAes128CbcSha);
    const Bytes enc = rng.bytes(suite.key_len);
    const Bytes mac = rng.bytes(suite.mac_len);
    const Bytes iv = rng.bytes(16);
    tx_.activate(suite, enc, mac, iv);
    rx_.activate(suite, enc, mac, iv);
  }

  Bytes seal(const std::string& s) {
    return tx_.seal(RecordType::kApplicationData, ProtocolVersion::kWtls1,
                    to_bytes(s));
  }

  DatagramRecordCodec tx_, rx_;
};

TEST_F(DatagramTest, RoundTrip) {
  for (int i = 0; i < 5; ++i) {
    const auto rec = rx_.open(seal("datagram " + std::to_string(i)));
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->payload, to_bytes("datagram " + std::to_string(i)));
  }
  EXPECT_EQ(rx_.stats().accepted, 5u);
}

TEST_F(DatagramTest, ToleratesLoss) {
  // Records 1 and 3 are lost in transit; 2, 4, 5 still open. The stream
  // codec would desynchronise here — the datagram codec must not.
  const Bytes r1 = seal("one");
  const Bytes r2 = seal("two");
  const Bytes r3 = seal("three");
  const Bytes r4 = seal("four");
  (void)r1;
  (void)r3;
  EXPECT_TRUE(rx_.open(r2).has_value());
  EXPECT_TRUE(rx_.open(r4).has_value());
  EXPECT_TRUE(rx_.open(seal("five")).has_value());
}

TEST_F(DatagramTest, ToleratesReorder) {
  const Bytes r1 = seal("one");
  const Bytes r2 = seal("two");
  const Bytes r3 = seal("three");
  EXPECT_EQ(rx_.open(r3)->payload, to_bytes("three"));
  EXPECT_EQ(rx_.open(r1)->payload, to_bytes("one"));
  EXPECT_EQ(rx_.open(r2)->payload, to_bytes("two"));
}

TEST_F(DatagramTest, RejectsReplay) {
  const Bytes r = seal("once");
  EXPECT_TRUE(rx_.open(r).has_value());
  EXPECT_FALSE(rx_.open(r).has_value());
  EXPECT_EQ(rx_.stats().replayed, 1u);
}

TEST_F(DatagramTest, RejectsTamper) {
  Bytes r = seal("genuine");
  r[r.size() - 2] ^= 1;
  EXPECT_FALSE(rx_.open(r).has_value());
  EXPECT_GE(rx_.stats().bad_mac, 1u);
}

TEST_F(DatagramTest, ForgeryCannotPoisonReplayWindow) {
  // A forged record with a huge sequence number must not advance the
  // window (authentication precedes the replay update), so genuine
  // records still arrive afterwards.
  Bytes forged = seal("real payload");
  crypto::store_be64(forged.data() + 3, 1'000'000);  // fake seq, bad MAC now
  EXPECT_FALSE(rx_.open(forged).has_value());
  EXPECT_TRUE(rx_.open(seal("still fine")).has_value());
}

TEST_F(DatagramTest, TooOldOutsideWindowRejected) {
  const Bytes first = seal("first");
  for (int i = 0; i < 70; ++i) EXPECT_TRUE(rx_.open(seal("x")).has_value());
  EXPECT_FALSE(rx_.open(first).has_value());
}

TEST_F(DatagramTest, MalformedHandled) {
  EXPECT_FALSE(rx_.open(Bytes(5)).has_value());
  Bytes r = seal("trunc");
  r.pop_back();
  EXPECT_FALSE(rx_.open(r).has_value());
  EXPECT_GE(rx_.stats().malformed, 2u);
}

TEST_F(DatagramTest, StreamSuitesRejected) {
  DatagramRecordCodec codec;
  crypto::HmacDrbg rng(1);
  EXPECT_THROW(codec.activate(suite_info(CipherSuite::kRsaRc4128Sha),
                              rng.bytes(16), rng.bytes(20), rng.bytes(16)),
               std::invalid_argument);
}

// ---- handshake -> datagram handoff (the WTLS deployment shape) -----------------

TEST(DatagramHandoffTest, NegotiatedKeysDriveDatagramTraffic) {
  // Handshake over a reliable channel, then application data over an
  // unreliable bearer with loss and reordering — WTLS's split.
  constexpr std::uint64_t kNow = 1'050'000'000;
  crypto::HmacDrbg krng(0xD46);
  const crypto::RsaKeyPair ca_key = crypto::rsa_generate(krng, 512);
  const crypto::RsaKeyPair srv_key = crypto::rsa_generate(krng, 512);
  CertificateAuthority ca("Root", ca_key, 0, kNow * 2);
  const Certificate cert = ca.issue("srv", srv_key.pub, 0, kNow * 2);

  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg;
  ccfg.rng = &crng;
  ccfg.now = kNow;
  ccfg.trusted_roots = {ca.root()};
  ccfg.offered_suites = {CipherSuite::kRsaAes128CbcSha};
  ccfg.version = ProtocolVersion::kWtls1;
  HandshakeConfig scfg;
  scfg.rng = &srng;
  scfg.now = kNow;
  scfg.cert_chain = {cert};
  scfg.private_key = &srv_key.priv;
  scfg.version = ProtocolVersion::kWtls1;

  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);

  DatagramRecordCodec c_tx, c_rx, s_tx, s_rx;
  client.setup_datagram(c_tx, c_rx);
  server.setup_datagram(s_tx, s_rx);

  // Client sends three datagrams; the middle one is lost, the other two
  // arrive swapped.
  const Bytes d1 = c_tx.seal(RecordType::kApplicationData,
                             ProtocolVersion::kWtls1, to_bytes("one"));
  (void)c_tx.seal(RecordType::kApplicationData, ProtocolVersion::kWtls1,
                  to_bytes("two (lost)"));
  const Bytes d3 = c_tx.seal(RecordType::kApplicationData,
                             ProtocolVersion::kWtls1, to_bytes("three"));
  EXPECT_EQ(s_rx.open(d3)->payload, to_bytes("three"));
  EXPECT_EQ(s_rx.open(d1)->payload, to_bytes("one"));
  // Replay across directions fails too (distinct keys per direction).
  EXPECT_FALSE(c_rx.open(d1).has_value());
  // Server replies.
  const Bytes r = s_tx.seal(RecordType::kApplicationData,
                            ProtocolVersion::kWtls1, to_bytes("ack"));
  EXPECT_EQ(c_rx.open(r)->payload, to_bytes("ack"));
}

TEST(DatagramHandoffTest, RequiresEstablishedBlockSuite) {
  constexpr std::uint64_t kNow = 1'050'000'000;
  crypto::HmacDrbg krng(0xD47);
  const crypto::RsaKeyPair ca_key = crypto::rsa_generate(krng, 512);
  const crypto::RsaKeyPair srv_key = crypto::rsa_generate(krng, 512);
  CertificateAuthority ca("Root", ca_key, 0, kNow * 2);
  const Certificate cert = ca.issue("srv", srv_key.pub, 0, kNow * 2);

  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg;
  ccfg.rng = &crng;
  ccfg.now = kNow;
  ccfg.trusted_roots = {ca.root()};
  DatagramRecordCodec tx, rx;
  {
    TlsClient unestablished(ccfg);
    EXPECT_THROW(unestablished.setup_datagram(tx, rx), HandshakeError);
  }
  {
    // Stream suite: refuse the handoff.
    HandshakeConfig c2 = ccfg;
    c2.offered_suites = {CipherSuite::kRsaRc4128Sha};
    HandshakeConfig scfg;
    scfg.rng = &srng;
    scfg.now = kNow;
    scfg.cert_chain = {cert};
    scfg.private_key = &srv_key.priv;
    TlsClient client(c2);
    TlsServer server(scfg);
    run_handshake(client, server);
    EXPECT_THROW(client.setup_datagram(tx, rx), HandshakeError);
  }
}

TEST_F(DatagramTest, InactiveCodecThrows) {
  DatagramRecordCodec codec;
  EXPECT_THROW(codec.seal(RecordType::kApplicationData,
                          ProtocolVersion::kWtls1, to_bytes("x")),
               std::runtime_error);
}

}  // namespace
}  // namespace mapsec::protocol
