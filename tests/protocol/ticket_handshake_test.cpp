// End-to-end stateless-resumption tests: NewSessionTicket issuance,
// ticket-based abbreviated handshakes with zero server cache bytes, key
// rotation windows, expiry fallback, and degraded-mode interplay.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/ticket/ticket.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003 (cert clock)

class TicketHandshakeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x7157);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new CertificateAuthority("TestRoot", *ca_key_, 0, kNow * 2);
    server_cert_ = new Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  HandshakeConfig client_config(crypto::Rng& rng) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.trusted_roots = {ca_->root()};
    cfg.request_session_ticket = true;
    return cfg;
  }

  HandshakeConfig server_config(crypto::Rng& rng,
                                ticket::TicketCodec* codec,
                                std::uint64_t ticket_now_us = 0) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.cert_chain = {*server_cert_};
    cfg.private_key = &server_key_->priv;
    cfg.ticket_codec = codec;
    cfg.ticket_now_us = ticket_now_us;
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static CertificateAuthority* ca_;
  static Certificate* server_cert_;
};

crypto::RsaKeyPair* TicketHandshakeTest::ca_key_ = nullptr;
crypto::RsaKeyPair* TicketHandshakeTest::server_key_ = nullptr;
CertificateAuthority* TicketHandshakeTest::ca_ = nullptr;
Certificate* TicketHandshakeTest::server_cert_ = nullptr;

TEST_F(TicketHandshakeTest, FullHandshakeIssuesTicket) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng, &codec));

  run_handshake(client, server);
  ASSERT_TRUE(client.established());
  EXPECT_TRUE(client.has_session_ticket());
  EXPECT_FALSE(client.summary().resumed);
  EXPECT_EQ(codec.stats().sealed, 1u);

  // The blob round-trips through the codec: it carries the master secret.
  const auto t = codec.open(client.session_ticket(), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->master_secret, client.master_secret());
}

TEST_F(TicketHandshakeTest, NoTicketWithoutRequest) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.request_session_ticket = false;
  TlsClient client(ccfg);
  TlsServer server(server_config(srng, &codec));

  run_handshake(client, server);
  ASSERT_TRUE(client.established());
  EXPECT_FALSE(client.has_session_ticket());
  EXPECT_EQ(codec.stats().sealed, 0u);
}

TEST_F(TicketHandshakeTest, TicketResumesWithZeroCacheAndNoPkOp) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);
  const Bytes blob = first.session_ticket();
  const Bytes master = first.master_secret();
  const CipherSuite suite = first.summary().suite;

  // Second connection: no SessionCache at all — the server's only
  // resumption state is the key ring.
  TlsClient second(client_config(crng));
  second.set_resume_ticket(blob, master, suite);
  TlsServer server(server_config(srng, &codec), /*cache=*/nullptr);
  run_handshake(second, server);

  ASSERT_TRUE(second.established());
  EXPECT_TRUE(second.summary().resumed);
  EXPECT_TRUE(second.summary().ticket_resumed);
  EXPECT_TRUE(server.summary().ticket_resumed);
  EXPECT_EQ(server.summary().rsa_private_ops, 0);
  EXPECT_EQ(second.summary().rsa_public_ops, 0);  // no cert chain verified
  EXPECT_EQ(second.summary().suite, suite);
  EXPECT_EQ(second.master_secret(), master);
  EXPECT_EQ(server.master_secret(), master);
  EXPECT_EQ(codec.stats().opened, 1u);

  // Fresh key block still works end to end.
  const Bytes wire = second.send_data(to_bytes("over ticket"));
  const auto got = server.recv_data(wire);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("over ticket"));
}

TEST_F(TicketHandshakeTest, TicketReissuedOnTicketResumption) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);
  const Bytes blob = first.session_ticket();

  ring.rotate(100);  // fresh sealing key between the connections

  TlsClient second(client_config(crng));
  second.set_resume_ticket(blob, first.master_secret(),
                           first.summary().suite);
  TlsServer server(server_config(srng, &codec));
  run_handshake(second, server);
  ASSERT_TRUE(second.summary().ticket_resumed);
  // Re-issued under the ring's CURRENT key: the new blob differs and
  // outlives further rotations the old one would not.
  ASSERT_TRUE(second.has_session_ticket());
  EXPECT_NE(second.session_ticket(), blob);
  EXPECT_EQ(codec.stats().sealed, 2u);
}

TEST_F(TicketHandshakeTest, RotationWithinWindowResumesBeyondFallsBack) {
  ticket::TicketKeyRing ring(0x11, ticket::TicketKeyRing::Config{2, 0});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);
  const Bytes blob = first.session_ticket();
  const Bytes master = first.master_secret();
  const CipherSuite suite = first.summary().suite;

  // One rotation: the issuing key is still in the 2-deep window.
  ring.rotate(100);
  {
    TlsClient c(client_config(crng));
    c.set_resume_ticket(blob, master, suite);
    TlsServer s(server_config(srng, &codec));
    run_handshake(c, s);
    EXPECT_TRUE(c.summary().ticket_resumed);
  }

  // Second rotation retires it: silent fallback to a full handshake.
  ring.rotate(200);
  {
    TlsClient c(client_config(crng));
    c.set_resume_ticket(blob, master, suite);
    TlsServer s(server_config(srng, &codec));
    run_handshake(c, s);
    ASSERT_TRUE(c.established());
    EXPECT_FALSE(c.summary().resumed);
    EXPECT_FALSE(c.summary().ticket_resumed);
    EXPECT_GT(s.summary().rsa_private_ops, 0);
    // ... and the full handshake issued a NEW ticket under the new key.
    EXPECT_TRUE(c.has_session_ticket());
    EXPECT_NE(c.session_ticket(), blob);
  }
  EXPECT_EQ(codec.stats().stale_key, 1u);
}

TEST_F(TicketHandshakeTest, ExpiredTicketFallsBackToFullHandshake) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring, ticket::TicketCodec::Config{1'000, 512});
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec, /*ticket_now_us=*/0));
  run_handshake(first, fs);

  TlsClient c(client_config(crng));
  c.set_resume_ticket(first.session_ticket(), first.master_secret(),
                      first.summary().suite);
  // 5000us later: past the 1000us lifetime.
  TlsServer s(server_config(srng, &codec, /*ticket_now_us=*/5'000));
  run_handshake(c, s);
  ASSERT_TRUE(c.established());
  EXPECT_FALSE(c.summary().resumed);
  EXPECT_EQ(codec.stats().expired, 1u);
}

TEST_F(TicketHandshakeTest, TamperedTicketFallsBackToFullHandshake) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);

  Bytes blob = first.session_ticket();
  blob.back() ^= 0x80;  // break the CCM tag
  TlsClient c(client_config(crng));
  c.set_resume_ticket(blob, first.master_secret(), first.summary().suite);
  TlsServer s(server_config(srng, &codec));
  run_handshake(c, s);
  ASSERT_TRUE(c.established());
  EXPECT_FALSE(c.summary().resumed);
  EXPECT_EQ(codec.stats().mac_failures, 1u);
}

TEST_F(TicketHandshakeTest, TicketResumptionSurvivesDegradedMode) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);

  // Overloaded server: resumption_only sheds full handshakes...
  HandshakeConfig scfg = server_config(srng, &codec);
  scfg.resumption_only = true;
  {
    TlsClient fresh(client_config(crng));
    TlsServer s(scfg);
    EXPECT_THROW(run_handshake(fresh, s), HandshakeError);
  }
  // ...but a ticket holder still gets the cheap abbreviated handshake.
  {
    TlsClient c(client_config(crng));
    c.set_resume_ticket(first.session_ticket(), first.master_secret(),
                        first.summary().suite);
    TlsServer s(scfg);
    run_handshake(c, s);
    EXPECT_TRUE(c.summary().ticket_resumed);
  }
}

TEST_F(TicketHandshakeTest, AsyncPkServerNeverSuspendsOnTicketResume) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);

  HandshakeConfig scfg = server_config(srng, &codec);
  scfg.async_pk = true;
  TlsClient c(client_config(crng));
  c.set_resume_ticket(first.session_ticket(), first.master_secret(),
                      first.summary().suite);
  TlsServer s(scfg);

  // Drive by hand so a suspension would be visible as pk_pending().
  Bytes flight = c.process({});
  while (!s.established()) {
    ASSERT_FALSE(s.pk_pending());
    flight = s.process(flight);
    ASSERT_FALSE(s.pk_pending());
    if (!c.established()) flight = c.process(flight);
  }
  EXPECT_TRUE(s.summary().ticket_resumed);
  EXPECT_EQ(s.summary().rsa_private_ops, 0);
}

TEST_F(TicketHandshakeTest, TicketPreferredOverSessionCache) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  SessionCache cache;
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec), &cache);
  run_handshake(first, fs);
  EXPECT_EQ(cache.size(), 1u);

  // Client offers BOTH the cached session id and the ticket; the server
  // takes the stateless path (no cache lookup cost, same master).
  TlsClient c(client_config(crng));
  c.set_resume_session(first.summary().session_id, first.master_secret(),
                       first.summary().suite);
  c.set_resume_ticket(first.session_ticket(), first.master_secret(),
                      first.summary().suite);
  TlsServer s(server_config(srng, &codec), &cache);
  run_handshake(c, s);
  EXPECT_TRUE(s.summary().ticket_resumed);
}

TEST_F(TicketHandshakeTest, ServerWithoutCodecIgnoresTicketExtension) {
  ticket::TicketKeyRing ring(0x11, {});
  ticket::TicketCodec codec(ring);
  crypto::HmacDrbg crng(1), srng(2);

  TlsClient first(client_config(crng));
  TlsServer fs(server_config(srng, &codec));
  run_handshake(first, fs);

  // A ticket-bearing ClientHello against a plain server: full handshake,
  // no error, no ticket issued (backward compatibility).
  TlsClient c(client_config(crng));
  c.set_resume_ticket(first.session_ticket(), first.master_secret(),
                      first.summary().suite);
  HandshakeConfig scfg = server_config(srng, /*codec=*/nullptr);
  TlsServer s(scfg);
  run_handshake(c, s);
  ASSERT_TRUE(c.established());
  EXPECT_FALSE(c.summary().resumed);
  EXPECT_FALSE(c.has_session_ticket());
}

}  // namespace
}  // namespace mapsec::protocol
