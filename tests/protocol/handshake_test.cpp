// End-to-end handshake tests: negotiation over the Section 3.1 suite
// space, data transfer, resumption, and failure modes.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

/// Shared PKI fixture: one CA, one server identity (RSA-512 for speed).
class HandshakeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x7157);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new CertificateAuthority("TestRoot", *ca_key_, 0, kNow * 2);
    server_cert_ = new Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  HandshakeConfig client_config(crypto::Rng& rng) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.trusted_roots = {ca_->root()};
    return cfg;
  }

  HandshakeConfig server_config(crypto::Rng& rng) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.cert_chain = {*server_cert_};
    cfg.private_key = &server_key_->priv;
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static CertificateAuthority* ca_;
  static Certificate* server_cert_;
};

crypto::RsaKeyPair* HandshakeTest::ca_key_ = nullptr;
crypto::RsaKeyPair* HandshakeTest::server_key_ = nullptr;
CertificateAuthority* HandshakeTest::ca_ = nullptr;
Certificate* HandshakeTest::server_cert_ = nullptr;

// Parameterized over every cipher suite.
class HandshakeSuiteTest
    : public HandshakeTest,
      public ::testing::WithParamInterface<CipherSuite> {};

TEST_P(HandshakeSuiteTest, FullHandshakeAndBidirectionalData) {
  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {GetParam()};
  TlsClient client(ccfg);
  TlsServer server(server_config(srng));

  run_handshake(client, server);
  ASSERT_TRUE(client.established());
  ASSERT_TRUE(server.established());
  EXPECT_EQ(client.summary().suite, GetParam());
  EXPECT_EQ(server.summary().suite, GetParam());
  EXPECT_FALSE(client.summary().resumed);
  EXPECT_EQ(client.master_secret(), server.master_secret());

  // Client -> server.
  const Bytes ping = to_bytes("GET /secure HTTP/1.0");
  const auto got = server.recv_data(client.send_data(ping));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], ping);
  // Server -> client.
  const Bytes pong = to_bytes("HTTP/1.0 200 OK");
  const auto got2 = client.recv_data(server.send_data(pong));
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(got2[0], pong);
}

TEST_P(HandshakeSuiteTest, ResumptionWorksOnEverySuite) {
  crypto::HmacDrbg crng(70), srng(71);
  SessionCache cache;
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {GetParam()};
  TlsClient first(ccfg);
  TlsServer first_server(server_config(srng), &cache);
  run_handshake(first, first_server);

  TlsClient second(ccfg);
  second.set_resume_session(first.summary().session_id,
                            first.master_secret(), first.summary().suite);
  TlsServer second_server(server_config(srng), &cache);
  run_handshake(second, second_server);
  ASSERT_TRUE(second.established());
  EXPECT_TRUE(second.summary().resumed);
  EXPECT_EQ(second.summary().suite, GetParam());
  EXPECT_EQ(second.summary().rsa_public_ops, 0);
  EXPECT_EQ(second_server.summary().rsa_private_ops, 0);
  EXPECT_EQ(second_server.summary().dh_ops, 0);  // DHE skipped too
  const auto got =
      second_server.recv_data(second.send_data(to_bytes("resumed!")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("resumed!"));
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, HandshakeSuiteTest, ::testing::ValuesIn(all_suites()),
    [](const ::testing::TestParamInfo<CipherSuite>& info) {
      return suite_info(info.param).name;
    });

TEST_F(HandshakeTest, ServerPrefersItsOwnSuiteOrder) {
  crypto::HmacDrbg crng(3), srng(4);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {CipherSuite::kRsaRc4128Md5,
                         CipherSuite::kRsa3DesEdeCbcSha};
  HandshakeConfig scfg = server_config(srng);
  scfg.offered_suites = {CipherSuite::kRsa3DesEdeCbcSha,
                         CipherSuite::kRsaRc4128Md5};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  EXPECT_EQ(client.summary().suite, CipherSuite::kRsa3DesEdeCbcSha);
}

TEST_F(HandshakeTest, NoCommonSuiteFails) {
  crypto::HmacDrbg crng(5), srng(6);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {CipherSuite::kRsaRc4128Md5};
  HandshakeConfig scfg = server_config(srng);
  scfg.offered_suites = {CipherSuite::kRsaAes128CbcSha};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(HandshakeTest, UntrustedCaRejected) {
  crypto::HmacDrbg crng(7), srng(8), karng(9);
  // Client trusts a different root.
  const crypto::RsaKeyPair other = crypto::rsa_generate(karng, 512);
  CertificateAuthority other_ca("OtherRoot", other, 0, kNow * 2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.trusted_roots = {other_ca.root()};
  TlsClient client(ccfg);
  TlsServer server(server_config(srng));
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(HandshakeTest, ExpiredCertificateRejected) {
  crypto::HmacDrbg crng(10), srng(11);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.now = kNow * 3;  // long after expiry
  HandshakeConfig scfg = server_config(srng);
  TlsClient client(ccfg);
  TlsServer server(scfg);
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(HandshakeTest, VersionMismatchRejected) {
  crypto::HmacDrbg crng(12), srng(13);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.version = ProtocolVersion::kSsl30;
  TlsClient client(ccfg);
  TlsServer server(server_config(srng));  // TLS 1.0
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(HandshakeTest, WtlsProfileHandshake) {
  // The WTLS adaptation: same machinery under the WTLS version constant.
  crypto::HmacDrbg crng(14), srng(15);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.version = ProtocolVersion::kWtls1;
  HandshakeConfig scfg = server_config(srng);
  scfg.version = ProtocolVersion::kWtls1;
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  EXPECT_TRUE(client.established());
  EXPECT_EQ(client.summary().version, ProtocolVersion::kWtls1);
}

TEST_F(HandshakeTest, TamperedFlightDetected) {
  crypto::HmacDrbg crng(16), srng(17);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  Bytes hello = client.process({});
  Bytes server_flight = server.process(hello);
  Bytes client_flight = client.process(server_flight);
  client_flight[client_flight.size() - 3] ^= 0x80;  // corrupt Finished
  EXPECT_THROW(server.process(client_flight), std::runtime_error);
}

TEST_F(HandshakeTest, RsaOpAccounting) {
  crypto::HmacDrbg crng(18), srng(19);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  run_handshake(client, server);
  // Client: 1 chain signature check + 1 premaster encryption.
  EXPECT_EQ(client.summary().rsa_public_ops, 2);
  EXPECT_EQ(client.summary().rsa_private_ops, 0);
  // Server: 1 premaster decryption.
  EXPECT_EQ(server.summary().rsa_private_ops, 1);
  EXPECT_GT(client.summary().bytes_sent, 0u);
  EXPECT_EQ(client.summary().bytes_sent, server.summary().bytes_received);
  EXPECT_EQ(server.summary().bytes_sent, client.summary().bytes_received);
}

TEST_F(HandshakeTest, ResumptionSkipsRsa) {
  crypto::HmacDrbg crng(20), srng(21);
  SessionCache cache;

  // First connection: full handshake, server caches the session.
  TlsClient client1(client_config(crng));
  TlsServer server1(server_config(srng), &cache);
  run_handshake(client1, server1);
  EXPECT_EQ(cache.size(), 1u);
  const Bytes sid = client1.summary().session_id;
  const Bytes master(client1.master_secret());
  const CipherSuite suite = client1.summary().suite;

  // Second connection: abbreviated handshake.
  TlsClient client2(client_config(crng));
  client2.set_resume_session(sid, master, suite);
  TlsServer server2(server_config(srng), &cache);
  run_handshake(client2, server2);
  ASSERT_TRUE(client2.established());
  EXPECT_TRUE(client2.summary().resumed);
  EXPECT_TRUE(server2.summary().resumed);
  // No RSA at all on the resumed handshake — the whole point for a
  // MIPS-constrained handset.
  EXPECT_EQ(client2.summary().rsa_public_ops, 0);
  EXPECT_EQ(server2.summary().rsa_private_ops, 0);
  // Fewer wire bytes too.
  EXPECT_LT(client2.summary().bytes_received,
            client1.summary().bytes_received);

  // And data still flows.
  const auto got = server2.recv_data(client2.send_data(to_bytes("resumed")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("resumed"));
}

TEST_F(HandshakeTest, UnknownSessionIdFallsBackToFull) {
  crypto::HmacDrbg crng(22), srng(23);
  SessionCache cache;
  TlsClient client(client_config(crng));
  client.set_resume_session(to_bytes("bogus-session-id"), Bytes(48, 1),
                            CipherSuite::kRsa3DesEdeCbcSha);
  TlsServer server(server_config(srng), &cache);
  run_handshake(client, server);
  EXPECT_TRUE(client.established());
  EXPECT_FALSE(client.summary().resumed);
  EXPECT_EQ(server.summary().rsa_private_ops, 1);
}

TEST_F(HandshakeTest, ResumedSessionsDeriveFreshKeys) {
  // Same master secret, new randoms -> different record keys. Verify by
  // checking that wire bytes for the same plaintext differ across the two
  // connections.
  crypto::HmacDrbg crng(24), srng(25);
  SessionCache cache;
  TlsClient c1(client_config(crng));
  TlsServer s1(server_config(srng), &cache);
  run_handshake(c1, s1);

  TlsClient c2(client_config(crng));
  c2.set_resume_session(c1.summary().session_id, c1.master_secret(),
                        c1.summary().suite);
  TlsServer s2(server_config(srng), &cache);
  run_handshake(c2, s2);

  EXPECT_NE(c1.send_data(to_bytes("same plaintext")),
            c2.send_data(to_bytes("same plaintext")));
}

// ---- DHE key exchange ----------------------------------------------------------

TEST_F(HandshakeTest, DheHandshakeAgreesAndTransfersData) {
  crypto::HmacDrbg crng(40), srng(41), grng(42);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {CipherSuite::kDheRsaAes128CbcSha};
  HandshakeConfig scfg = server_config(srng);
  // Small generated group keeps the test fast; production uses Oakley 2.
  const crypto::DhGroup group = crypto::DhGroup::generate(grng, 160);
  ccfg.dhe_group = group;  // (client takes the group from SKE anyway)
  scfg.dhe_group = group;
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  ASSERT_TRUE(client.established());
  EXPECT_EQ(client.summary().key_exchange, KeyExchange::kDheRsa);
  EXPECT_EQ(client.master_secret(), server.master_secret());
  EXPECT_GE(client.summary().dh_ops, 2);
  EXPECT_GE(server.summary().dh_ops, 2);
  // Server signed the ephemeral params.
  EXPECT_EQ(server.summary().rsa_private_ops, 1);
  const auto got = server.recv_data(client.send_data(to_bytes("via DHE")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("via DHE"));
}

TEST_F(HandshakeTest, DheEphemeralsDifferAcrossConnections) {
  // Forward secrecy's mechanism: fresh ephemerals => fresh master secret.
  crypto::HmacDrbg grng(43);
  const crypto::DhGroup group = crypto::DhGroup::generate(grng, 160);
  crypto::Bytes first_master;
  for (int i = 0; i < 2; ++i) {
    crypto::HmacDrbg crng(44 + i), srng(46 + i);
    HandshakeConfig ccfg = client_config(crng);
    ccfg.offered_suites = {CipherSuite::kDheRsa3DesEdeCbcSha};
    HandshakeConfig scfg = server_config(srng);
    scfg.dhe_group = group;
    TlsClient client(ccfg);
    TlsServer server(scfg);
    run_handshake(client, server);
    if (i == 0) {
      first_master = client.master_secret();
    } else {
      EXPECT_NE(client.master_secret(), first_master);
    }
  }
}

TEST_F(HandshakeTest, TamperedSkeSignatureRejected) {
  crypto::HmacDrbg crng(48), srng(49), grng(50);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {CipherSuite::kDheRsaAes128CbcSha};
  HandshakeConfig scfg = server_config(srng);
  scfg.dhe_group = crypto::DhGroup::generate(grng, 160);
  TlsClient client(ccfg);
  TlsServer server(scfg);
  crypto::Bytes hello = client.process({});
  crypto::Bytes flight = server.process(hello);
  // Flip a bit near the end of the flight: lands in SKE signature /
  // later messages; the client must reject rather than proceed.
  flight[flight.size() - 60] ^= 0x10;
  EXPECT_THROW(client.process(flight), std::runtime_error);
}

// ---- client authentication -------------------------------------------------------

class ClientAuthTest : public HandshakeTest {
 protected:
  static void SetUpTestSuite() {
    HandshakeTest::SetUpTestSuite();
    crypto::HmacDrbg rng(0xC11E);
    client_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    client_cert_ = new Certificate(
        ca_->issue("phone.user", client_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete client_cert_;
    delete client_key_;
    HandshakeTest::TearDownTestSuite();
  }
  static crypto::RsaKeyPair* client_key_;
  static Certificate* client_cert_;
};

crypto::RsaKeyPair* ClientAuthTest::client_key_ = nullptr;
Certificate* ClientAuthTest::client_cert_ = nullptr;

TEST_F(ClientAuthTest, MutualAuthentication) {
  crypto::HmacDrbg crng(60), srng(61);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.client_cert_chain = {*client_cert_};
  ccfg.client_private_key = &client_key_->priv;
  HandshakeConfig scfg = server_config(srng);
  scfg.request_client_auth = true;
  scfg.require_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  ASSERT_TRUE(server.established());
  EXPECT_TRUE(server.summary().client_authenticated);
  // The client signed once (CertificateVerify).
  EXPECT_EQ(client.summary().rsa_private_ops, 1);
}

TEST_F(ClientAuthTest, RequiredButAbsentFails) {
  crypto::HmacDrbg crng(62), srng(63);
  HandshakeConfig ccfg = client_config(crng);  // no client credentials
  HandshakeConfig scfg = server_config(srng);
  scfg.request_client_auth = true;
  scfg.require_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(ClientAuthTest, RequestedButOptionalSucceedsUnauthenticated) {
  crypto::HmacDrbg crng(64), srng(65);
  HandshakeConfig ccfg = client_config(crng);  // no client credentials
  HandshakeConfig scfg = server_config(srng);
  scfg.request_client_auth = true;
  scfg.require_client_auth = false;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  EXPECT_TRUE(server.established());
  EXPECT_FALSE(server.summary().client_authenticated);
}

TEST_F(ClientAuthTest, UntrustedClientCertRejected) {
  crypto::HmacDrbg crng(66), srng(67), rrng(68);
  // Client cert from a CA the server does not trust.
  const crypto::RsaKeyPair rogue_key = crypto::rsa_generate(rrng, 512);
  CertificateAuthority rogue("RogueRoot", rogue_key, 0, kNow * 2);
  const Certificate rogue_cert =
      rogue.issue("phone.user", client_key_->pub, 0, kNow * 2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.client_cert_chain = {rogue_cert};
  ccfg.client_private_key = &client_key_->priv;
  HandshakeConfig scfg = server_config(srng);
  scfg.request_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(ClientAuthTest, StolenCertWithoutKeyRejected) {
  // An attacker presenting someone else's certificate cannot produce the
  // CertificateVerify signature.
  crypto::HmacDrbg crng(69), srng(70), wrng(71);
  const crypto::RsaKeyPair wrong_key = crypto::rsa_generate(wrng, 512);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.client_cert_chain = {*client_cert_};  // victim's cert
  ccfg.client_private_key = &wrong_key.priv; // attacker's key
  HandshakeConfig scfg = server_config(srng);
  scfg.request_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  EXPECT_THROW(run_handshake(client, server), HandshakeError);
}

TEST_F(ClientAuthTest, MutualAuthOverDhe) {
  crypto::HmacDrbg crng(72), srng(73), grng(74);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {CipherSuite::kDheRsa3DesEdeCbcSha};
  ccfg.client_cert_chain = {*client_cert_};
  ccfg.client_private_key = &client_key_->priv;
  HandshakeConfig scfg = server_config(srng);
  scfg.dhe_group = crypto::DhGroup::generate(grng, 160);
  scfg.request_client_auth = true;
  scfg.require_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);
  EXPECT_TRUE(server.summary().client_authenticated);
  EXPECT_EQ(server.summary().key_exchange, KeyExchange::kDheRsa);
  const auto got =
      client.recv_data(server.send_data(to_bytes("mutually authed")));
  ASSERT_EQ(got.size(), 1u);
}

TEST_F(HandshakeTest, DataBeforeEstablishmentThrows) {
  crypto::HmacDrbg crng(26);
  TlsClient client(client_config(crng));
  EXPECT_THROW(client.send_data(to_bytes("early")), HandshakeError);
  EXPECT_THROW(client.recv_data(to_bytes("early")), HandshakeError);
}

TEST_F(HandshakeTest, EavesdropperSeesNoPlaintext) {
  crypto::HmacDrbg crng(27), srng(28);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  std::vector<TappedFlight> tap;
  run_handshake(client, server, &tap);
  EXPECT_GE(tap.size(), 3u);

  const Bytes secret = to_bytes("4111-1111-1111-1111");  // card number
  const Bytes wire = client.send_data(secret);
  const auto it =
      std::search(wire.begin(), wire.end(), secret.begin(), secret.end());
  EXPECT_EQ(it, wire.end());
}

TEST_F(HandshakeTest, ServerConfigValidation) {
  crypto::HmacDrbg rng(29);
  HandshakeConfig cfg;
  cfg.rng = &rng;
  EXPECT_THROW(TlsServer{cfg}, std::invalid_argument);
  HandshakeConfig no_rng = server_config(rng);
  no_rng.rng = nullptr;
  EXPECT_THROW(TlsServer{no_rng}, std::invalid_argument);
}

// step_handshake is the single-flight primitive run_handshake is built
// on; an event-driven caller pumps it once per arriving flight.
TEST_F(HandshakeTest, StepHandshakeDrivesOneFlightAtATime) {
  crypto::HmacDrbg crng(90), srng(91);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));

  // Kick: the ClientHello needs no input.
  HandshakeStep to_server = step_handshake(client, {});
  ASSERT_FALSE(to_server.output.empty());
  ASSERT_FALSE(to_server.established);

  int flights = 0;
  while (!(client.established() && server.established())) {
    ASSERT_LT(++flights, 10);
    const HandshakeStep to_client = step_handshake(server, to_server.output);
    if (client.established() && to_client.output.empty()) break;
    to_server = step_handshake(client, to_client.output);
  }

  EXPECT_TRUE(client.established());
  EXPECT_TRUE(server.established());
  EXPECT_EQ(client.master_secret(), server.master_secret());

  // On an established endpoint the step is a no-op, not an error.
  const HandshakeStep idle = step_handshake(client, {});
  EXPECT_TRUE(idle.established);
  EXPECT_TRUE(idle.output.empty());
}

// ---- asynchronous public-key offload (async_pk) ---------------------------

// The async continuation must be a pure re-timing of the sync handshake:
// identical flights byte for byte, identical counters — only WHO runs the
// private-key op changes. This is the determinism contract the server's
// OffloadEngine integration relies on.
TEST_F(HandshakeTest, AsyncPkRsaTranscriptByteIdentical) {
  // Sync reference run.
  crypto::HmacDrbg crng_s(101), srng_s(102);
  TlsClient sync_client(client_config(crng_s));
  TlsServer sync_server(server_config(srng_s));
  const Bytes hello_s = sync_client.process({});
  const Bytes f1_s = sync_server.process(hello_s);
  const Bytes f2_s = sync_client.process(f1_s);
  const Bytes f3_s = sync_server.process(f2_s);
  const Bytes f4_s = sync_client.process(f3_s);
  ASSERT_TRUE(sync_server.established());

  // Async twin with identical seeds.
  crypto::HmacDrbg crng_a(101), srng_a(102);
  HandshakeConfig scfg = server_config(srng_a);
  scfg.async_pk = true;
  TlsClient client(client_config(crng_a));
  TlsServer server(scfg);
  const Bytes hello = client.process({});
  EXPECT_EQ(hello, hello_s);
  const Bytes f1 = server.process(hello);  // RSA suite: no pk op here
  EXPECT_EQ(f1, f1_s);
  EXPECT_FALSE(server.pk_pending());
  const Bytes f2 = client.process(f1);
  EXPECT_EQ(f2, f2_s);

  // The client flight carries the ClientKeyExchange: the server suspends
  // instead of decrypting inline.
  const HandshakeStep step = step_handshake(server, f2);
  ASSERT_TRUE(step.pk_pending);
  EXPECT_TRUE(step.output.empty());
  EXPECT_FALSE(step.established);
  ASSERT_TRUE(server.pk_pending());
  EXPECT_EQ(server.pending_pk_job().kind, PkJob::Kind::kRsaDecrypt);

  // A new flight while suspended is a protocol violation.
  EXPECT_THROW(server.process(f2), HandshakeError);

  // Service the job (as the OffloadEngine worker would) and resume.
  const PkResult result = run_pk_job(server.pending_pk_job());
  const Bytes f3 = server.resume_pk(result);
  EXPECT_EQ(f3, f3_s);
  ASSERT_TRUE(server.established());
  EXPECT_FALSE(server.pk_pending());
  const Bytes f4 = client.process(f3);
  EXPECT_EQ(f4, f4_s);
  ASSERT_TRUE(client.established());
  EXPECT_EQ(client.master_secret(), server.master_secret());
  EXPECT_EQ(server.summary().rsa_private_ops,
            sync_server.summary().rsa_private_ops);

  // The data path is live after an async establishment.
  const auto got = server.recv_data(client.send_data(to_bytes("async")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], to_bytes("async"));
}

TEST_F(HandshakeTest, AsyncPkDheSuspendsMidServerFlight) {
  crypto::HmacDrbg grng(0xD4E);
  const crypto::DhGroup group = crypto::DhGroup::generate(grng, 160);

  crypto::HmacDrbg crng_s(103), srng_s(104);
  HandshakeConfig ccfg_s = client_config(crng_s);
  ccfg_s.offered_suites = {CipherSuite::kDheRsaAes128CbcSha};
  HandshakeConfig scfg_s = server_config(srng_s);
  scfg_s.dhe_group = group;
  TlsClient sync_client(ccfg_s);
  TlsServer sync_server(scfg_s);
  const Bytes hello_s = sync_client.process({});
  const Bytes f1_s = sync_server.process(hello_s);

  crypto::HmacDrbg crng_a(103), srng_a(104);
  HandshakeConfig ccfg = client_config(crng_a);
  ccfg.offered_suites = {CipherSuite::kDheRsaAes128CbcSha};
  HandshakeConfig scfg = server_config(srng_a);
  scfg.dhe_group = group;
  scfg.async_pk = true;
  TlsClient client(ccfg);
  TlsServer server(scfg);
  const Bytes hello = client.process({});
  EXPECT_EQ(hello, hello_s);

  // The ServerKeyExchange signature suspends the server's OWN flight.
  const HandshakeStep step = step_handshake(server, hello);
  ASSERT_TRUE(step.pk_pending);
  EXPECT_TRUE(step.output.empty());
  ASSERT_EQ(server.pending_pk_job().kind, PkJob::Kind::kRsaSign);
  const Bytes f1 = server.resume_pk(run_pk_job(server.pending_pk_job()));
  EXPECT_EQ(f1, f1_s);

  // A DHE ClientKeyExchange needs no RSA decrypt: the rest is synchronous.
  const Bytes f2 = client.process(f1);
  const Bytes f3 = server.process(f2);
  ASSERT_TRUE(server.established());
  client.process(f3);
  ASSERT_TRUE(client.established());
  EXPECT_EQ(client.master_secret(), server.master_secret());
}

TEST_F(HandshakeTest, AsyncPkResumeWithoutPendingJobThrows) {
  crypto::HmacDrbg srng(107);
  HandshakeConfig scfg = server_config(srng);
  scfg.async_pk = true;
  TlsServer server(scfg);
  EXPECT_THROW(server.resume_pk(PkResult{}), HandshakeError);
}

TEST_F(HandshakeTest, RunHandshakeServicesAsyncServer) {
  crypto::HmacDrbg crng(108), srng(109);
  HandshakeConfig scfg = server_config(srng);
  scfg.async_pk = true;
  TlsClient client(client_config(crng));
  TlsServer server(scfg);
  run_handshake(client, server);
  EXPECT_TRUE(client.established());
  EXPECT_TRUE(server.established());
  EXPECT_EQ(client.master_secret(), server.master_secret());
}

TEST_F(ClientAuthTest, AsyncPkDoubleSuspensionCkeThenCertVerify) {
  // Sync reference.
  crypto::HmacDrbg crng_s(110), srng_s(111);
  HandshakeConfig ccfg_s = client_config(crng_s);
  ccfg_s.client_cert_chain = {*client_cert_};
  ccfg_s.client_private_key = &client_key_->priv;
  HandshakeConfig scfg_s = server_config(srng_s);
  scfg_s.request_client_auth = true;
  scfg_s.require_client_auth = true;
  scfg_s.trusted_roots = {ca_->root()};
  TlsClient sync_client(ccfg_s);
  TlsServer sync_server(scfg_s);
  const Bytes f1_s = sync_server.process(sync_client.process({}));
  const Bytes f2_s = sync_client.process(f1_s);
  const Bytes f3_s = sync_server.process(f2_s);
  ASSERT_TRUE(sync_server.established());

  // Async twin: the one client flight costs TWO suspensions — the
  // ClientKeyExchange decrypt, then the CertificateVerify check.
  crypto::HmacDrbg crng_a(110), srng_a(111);
  HandshakeConfig ccfg = client_config(crng_a);
  ccfg.client_cert_chain = {*client_cert_};
  ccfg.client_private_key = &client_key_->priv;
  HandshakeConfig scfg = server_config(srng_a);
  scfg.request_client_auth = true;
  scfg.require_client_auth = true;
  scfg.trusted_roots = {ca_->root()};
  scfg.async_pk = true;
  TlsClient client(ccfg);
  TlsServer server(scfg);
  const Bytes f1 = server.process(client.process({}));
  EXPECT_EQ(f1, f1_s);
  const Bytes f2 = client.process(f1);
  EXPECT_EQ(f2, f2_s);

  const HandshakeStep step = step_handshake(server, f2);
  ASSERT_TRUE(step.pk_pending);
  ASSERT_EQ(server.pending_pk_job().kind, PkJob::Kind::kRsaDecrypt);
  Bytes out = server.resume_pk(run_pk_job(server.pending_pk_job()));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(server.pk_pending());
  ASSERT_EQ(server.pending_pk_job().kind, PkJob::Kind::kRsaVerify);
  out = server.resume_pk(run_pk_job(server.pending_pk_job()));
  EXPECT_EQ(out, f3_s);
  ASSERT_TRUE(server.established());
  EXPECT_TRUE(server.summary().client_authenticated);
  EXPECT_EQ(server.summary().rsa_private_ops,
            sync_server.summary().rsa_private_ops);
  client.process(out);
  ASSERT_TRUE(client.established());
  EXPECT_EQ(client.master_secret(), server.master_secret());
}

}  // namespace
}  // namespace mapsec::protocol
