// WEP encapsulation, ESP transform with anti-replay, and the evolution
// registry.
#include <gtest/gtest.h>

#include "mapsec/crypto/crc32.hpp"
#include "mapsec/protocol/ccmp.hpp"
#include "mapsec/protocol/esp.hpp"
#include "mapsec/protocol/evolution.hpp"
#include "mapsec/protocol/wep.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

// ---- WEP ---------------------------------------------------------------------

TEST(WepTest, RoundTripWep40AndWep104) {
  for (std::size_t key_len : {5u, 13u}) {
    crypto::HmacDrbg rng(key_len);
    const Bytes key = rng.bytes(key_len);
    const std::array<std::uint8_t, 3> iv{0x01, 0x02, 0x03};
    const Bytes payload = to_bytes("802.11 data frame payload");
    const WepFrame frame = wep_encapsulate(key, iv, payload);
    const auto got = wep_decapsulate(key, frame);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
}

TEST(WepTest, WrongKeyFailsIcv) {
  crypto::HmacDrbg rng(1);
  const Bytes key = rng.bytes(5);
  const Bytes wrong = rng.bytes(5);
  const WepFrame frame =
      wep_encapsulate(key, {0, 0, 1}, to_bytes("payload"));
  EXPECT_FALSE(wep_decapsulate(wrong, frame).has_value());
}

TEST(WepTest, BitFlipWithCrcFixupIsAccepted) {
  // The Borisov-Goldberg-Wagner observation [22]: CRC-32 is linear, so an
  // attacker can flip plaintext bits through the ciphertext and patch the
  // encrypted ICV so the frame still verifies. This is the designed-in
  // flaw the paper's Section 2 points at; the test documents that our
  // faithful implementation inherits it.
  crypto::HmacDrbg rng(2);
  const Bytes key = rng.bytes(13);
  const Bytes payload = to_bytes("PAY 0001 EUR to Alice");
  WepFrame frame = wep_encapsulate(key, {9, 9, 9}, payload);

  // Flip "Alice"[0] 'A' -> 'B' at payload offset 16.
  Bytes delta(payload.size(), 0);
  delta[16] = 'A' ^ 'B';
  // CRC of the delta pattern, with the linearity correction term.
  const std::uint32_t crc_delta =
      crypto::crc32(delta) ^ crypto::crc32(Bytes(delta.size(), 0));
  for (std::size_t i = 0; i < delta.size(); ++i) frame.body[i] ^= delta[i];
  frame.body[payload.size() + 0] ^= static_cast<std::uint8_t>(crc_delta);
  frame.body[payload.size() + 1] ^= static_cast<std::uint8_t>(crc_delta >> 8);
  frame.body[payload.size() + 2] ^= static_cast<std::uint8_t>(crc_delta >> 16);
  frame.body[payload.size() + 3] ^= static_cast<std::uint8_t>(crc_delta >> 24);

  const auto got = wep_decapsulate(key, frame);
  ASSERT_TRUE(got.has_value());  // forgery accepted!
  EXPECT_EQ(*got, to_bytes("PAY 0001 EUR to Blice"));
}

TEST(WepTest, SequentialIvPolicyWraps) {
  crypto::HmacDrbg rng(3);
  WepSender sender(rng.bytes(5), WepIvPolicy::kSequential, nullptr);
  const WepFrame f0 = sender.send(to_bytes("a"));
  const WepFrame f1 = sender.send(to_bytes("b"));
  EXPECT_EQ(f0.iv[0], 0);
  EXPECT_EQ(f1.iv[0], 1);
}

TEST(WepTest, SameIvSameKeystream) {
  // The keystream-reuse hazard: identical IV + key => identical keystream.
  crypto::HmacDrbg rng(4);
  const Bytes key = rng.bytes(5);
  const Bytes p1 = to_bytes("first message!!");
  const Bytes p2 = to_bytes("second message!");
  const WepFrame f1 = wep_encapsulate(key, {7, 7, 7}, p1);
  const WepFrame f2 = wep_encapsulate(key, {7, 7, 7}, p2);
  // c1 xor c2 == p1 xor p2 on the payload prefix.
  for (std::size_t i = 0; i < p1.size(); ++i)
    EXPECT_EQ(f1.body[i] ^ f2.body[i], p1[i] ^ p2[i]);
}

TEST(WepTest, RejectsBadKeySizes) {
  EXPECT_THROW(wep_encapsulate(Bytes(8), {0, 0, 0}, to_bytes("x")),
               std::invalid_argument);
  EXPECT_THROW(WepSender(Bytes(5), WepIvPolicy::kRandom, nullptr),
               std::invalid_argument);
}

// ---- ESP ---------------------------------------------------------------------

class EspTest : public ::testing::Test {
 protected:
  EspSa make_sa() {
    crypto::HmacDrbg rng(77);
    EspSa sa;
    sa.spi = 0x1001;
    sa.cipher = BulkCipher::kDes3;
    sa.enc_key = rng.bytes(24);
    sa.mac_key = rng.bytes(20);
    return sa;
  }
  crypto::HmacDrbg rng_{88};
};

TEST_F(EspTest, RoundTrip) {
  const EspSa sa = make_sa();
  EspSender tx(sa, &rng_);
  EspReceiver rx(sa);
  for (int i = 0; i < 10; ++i) {
    const Bytes payload = to_bytes("ip datagram " + std::to_string(i));
    const auto got = rx.unprotect(tx.protect(payload));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  EXPECT_EQ(rx.stats().accepted, 10u);
}

TEST_F(EspTest, ReplayRejected) {
  const EspSa sa = make_sa();
  EspSender tx(sa, &rng_);
  EspReceiver rx(sa);
  const Bytes packet = tx.protect(to_bytes("once only"));
  EXPECT_TRUE(rx.unprotect(packet).has_value());
  EXPECT_FALSE(rx.unprotect(packet).has_value());
  EXPECT_EQ(rx.stats().replayed, 1u);
}

TEST_F(EspTest, OutOfOrderWithinWindowAccepted) {
  const EspSa sa = make_sa();
  EspSender tx(sa, &rng_);
  EspReceiver rx(sa);
  const Bytes p1 = tx.protect(to_bytes("1"));
  const Bytes p2 = tx.protect(to_bytes("2"));
  const Bytes p3 = tx.protect(to_bytes("3"));
  EXPECT_TRUE(rx.unprotect(p3).has_value());
  EXPECT_TRUE(rx.unprotect(p1).has_value());  // late but within window
  EXPECT_TRUE(rx.unprotect(p2).has_value());
  EXPECT_FALSE(rx.unprotect(p2).has_value());  // now a replay
}

TEST_F(EspTest, TooOldRejected) {
  const EspSa sa = make_sa();
  EspSender tx(sa, &rng_);
  EspReceiver rx(sa);
  const Bytes first = tx.protect(to_bytes("first"));
  // Advance the window far beyond 64.
  for (int i = 0; i < 70; ++i) rx.unprotect(tx.protect(to_bytes("x")));
  EXPECT_FALSE(rx.unprotect(first).has_value());
  EXPECT_GE(rx.stats().replayed, 1u);
}

TEST_F(EspTest, TamperRejected) {
  const EspSa sa = make_sa();
  EspSender tx(sa, &rng_);
  EspReceiver rx(sa);
  Bytes packet = tx.protect(to_bytes("integrity matters"));
  packet[12] ^= 1;
  EXPECT_FALSE(rx.unprotect(packet).has_value());
  EXPECT_EQ(rx.stats().bad_icv, 1u);
}

TEST_F(EspTest, WrongSpiRejected) {
  const EspSa sa = make_sa();
  EspSa other = sa;
  other.spi = 0x2002;
  EspSender tx(sa, &rng_);
  EspReceiver rx(other);
  EXPECT_FALSE(rx.unprotect(tx.protect(to_bytes("hi"))).has_value());
  EXPECT_EQ(rx.stats().malformed, 1u);
}

TEST_F(EspTest, TruncatedRejected) {
  const EspSa sa = make_sa();
  EspReceiver rx(sa);
  EXPECT_FALSE(rx.unprotect(Bytes(10)).has_value());
  EXPECT_EQ(rx.stats().malformed, 1u);
}

// ESP over every block cipher the suite table offers.
class EspCipherTest : public ::testing::TestWithParam<BulkCipher> {};

TEST_P(EspCipherTest, RoundTripAndTamper) {
  crypto::HmacDrbg rng(99);
  const std::size_t key_len = [&] {
    switch (GetParam()) {
      case BulkCipher::kDes: return 8u;
      case BulkCipher::kDes3: return 24u;
      case BulkCipher::kAes128: return 16u;
      case BulkCipher::kRc2: return 16u;
      default: return 16u;
    }
  }();
  EspSa sa;
  sa.spi = 7;
  sa.cipher = GetParam();
  sa.enc_key = rng.bytes(key_len);
  sa.mac_key = rng.bytes(20);
  EspSender tx(sa, &rng);
  EspReceiver rx(sa);
  for (int i = 0; i < 3; ++i) {
    const Bytes payload = rng.bytes(1 + rng.below(100));
    const auto got = rx.unprotect(tx.protect(payload));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  Bytes bad = tx.protect(to_bytes("tamper me"));
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(rx.unprotect(bad).has_value());
}

INSTANTIATE_TEST_SUITE_P(BlockCiphers, EspCipherTest,
                         ::testing::Values(BulkCipher::kDes, BulkCipher::kDes3,
                                           BulkCipher::kAes128,
                                           BulkCipher::kRc2),
                         [](const ::testing::TestParamInfo<BulkCipher>& info) {
                           switch (info.param) {
                             case BulkCipher::kDes: return "DES";
                             case BulkCipher::kDes3: return "DES3";
                             case BulkCipher::kAes128: return "AES128";
                             case BulkCipher::kRc2: return "RC2";
                             default: return "other";
                           }
                         });

// ---- CCMP (the WEP fix) --------------------------------------------------------

class CcmpTest : public ::testing::Test {
 protected:
  CcmpTest() : rng_(0xCC) , key_(rng_.bytes(16)) {}
  crypto::HmacDrbg rng_;
  Bytes key_;
};

TEST_F(CcmpTest, RoundTrip) {
  CcmpSender tx(key_);
  CcmpReceiver rx(key_);
  for (int i = 0; i < 5; ++i) {
    const Bytes hdr = to_bytes("da:aa bb sa:cc dd");
    const Bytes payload = to_bytes("frame " + std::to_string(i));
    const auto got = rx.unprotect(tx.protect(hdr, payload));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  EXPECT_EQ(rx.stats().accepted, 5u);
}

TEST_F(CcmpTest, PnsNeverRepeat) {
  // The structural fix for WEP's IV reuse: PN is a strict counter.
  CcmpSender tx(key_);
  const auto f1 = tx.protect(to_bytes("h"), to_bytes("a"));
  const auto f2 = tx.protect(to_bytes("h"), to_bytes("a"));
  EXPECT_NE(f1.pn, f2.pn);
  // Same plaintext, different ciphertext (no keystream reuse).
  EXPECT_NE(f1.body, f2.body);
}

TEST_F(CcmpTest, ReplayRejected) {
  CcmpSender tx(key_);
  CcmpReceiver rx(key_);
  const auto frame = tx.protect(to_bytes("h"), to_bytes("once"));
  EXPECT_TRUE(rx.unprotect(frame).has_value());
  EXPECT_FALSE(rx.unprotect(frame).has_value());
  EXPECT_EQ(rx.stats().replayed, 1u);
}

TEST_F(CcmpTest, BitFlipRejectedUnlikeWep) {
  // The exact forgery that succeeds against WEP (CRC fix-up) is
  // impossible here: any body modification fails the MIC.
  CcmpSender tx(key_);
  CcmpReceiver rx(key_);
  auto frame = tx.protect(to_bytes("h"), to_bytes("PAY 0001 EUR to Alice"));
  frame.body[16] ^= 'A' ^ 'B';
  EXPECT_FALSE(rx.unprotect(frame).has_value());
  EXPECT_EQ(rx.stats().bad_mic, 1u);
}

TEST_F(CcmpTest, HeaderSpoofRejected) {
  // The header is AAD: altering the (cleartext) addresses invalidates the
  // frame — WEP's CRC never covered the header at all.
  CcmpSender tx(key_);
  CcmpReceiver rx(key_);
  auto frame = tx.protect(to_bytes("src=alice"), to_bytes("payload"));
  frame.header = to_bytes("src=malet");
  EXPECT_FALSE(rx.unprotect(frame).has_value());
}

TEST_F(CcmpTest, NonceEmbedsPn) {
  const Bytes n1 = ccmp_nonce(0x010203040506ull);
  EXPECT_EQ(n1.size(), crypto::kCcmNonceLen);
  EXPECT_EQ(n1[12], 0x06);
  EXPECT_EQ(n1[7], 0x01);
  EXPECT_NE(ccmp_nonce(1), ccmp_nonce(2));
}

TEST_F(CcmpTest, RejectsBadKeySize) {
  EXPECT_THROW(CcmpSender(Bytes(8)), std::invalid_argument);
  EXPECT_THROW(CcmpReceiver(Bytes(24)), std::invalid_argument);
}

// ---- evolution registry (Figure 2) --------------------------------------------

TEST(EvolutionTest, TimelineIsChronologicalWithinFamilies) {
  for (const auto& family : protocol_families()) {
    const auto history = family_history(family);
    ASSERT_FALSE(history.empty()) << family;
    for (std::size_t i = 1; i < history.size(); ++i) {
      const double prev = history[i - 1].year + history[i - 1].month / 12.0;
      const double cur = history[i].year + history[i].month / 12.0;
      EXPECT_LE(prev, cur) << family;
    }
  }
}

TEST(EvolutionTest, ContainsThePaperFamilies) {
  const auto fams = protocol_families();
  const auto has = [&](const char* f) {
    return std::find(fams.begin(), fams.end(), f) != fams.end();
  };
  EXPECT_TRUE(has("SSL/TLS"));
  EXPECT_TRUE(has("IPSec"));
  EXPECT_TRUE(has("WTLS"));
  EXPECT_TRUE(has("MET"));
}

TEST(EvolutionTest, TlsAesRevisionJune2002Present) {
  // The revision the paper singles out: "in June 2002, TLS was revised to
  // accommodate the proposed replacement to the DES standard, AES".
  bool found = false;
  for (const auto& m : family_history("SSL/TLS"))
    if (m.year == 2002 && m.month == 6) found = true;
  EXPECT_TRUE(found);
}

TEST(EvolutionTest, WirelessProtocolsEvolveFasterThanTls) {
  // Section 3.1: evolution is "much more pronounced ... in the wireless
  // domain".
  EXPECT_GT(revisions_per_year("WTLS"), revisions_per_year("SSL/TLS"));
}

TEST(EvolutionTest, RevisionsPerYearEdgeCases) {
  EXPECT_EQ(revisions_per_year("NoSuchProtocol"), 0.0);
}

}  // namespace
}  // namespace mapsec::protocol
