// Robustness: malformed and mutated wire input must produce clean,
// typed failures — never crashes, hangs, or silent acceptance. This is
// the Section 3.4 software-attack surface ("exploits weaknesses in ...
// the system implementation"): a parser that misbehaves on hostile input
// is the entry point.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/cert.hpp"
#include "mapsec/protocol/esp.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/protocol/record.hpp"
#include "mapsec/protocol/wep.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;

/// Apply `n_mutations` random byte mutations.
Bytes mutate(Bytes data, crypto::Rng& rng, int n_mutations) {
  if (data.empty()) return data;
  for (int i = 0; i < n_mutations; ++i) {
    const std::size_t pos = rng.below(data.size());
    switch (rng.below(3)) {
      case 0:
        data[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        break;
      case 1:
        data.erase(data.begin() + static_cast<std::ptrdiff_t>(pos));
        if (data.empty()) return data;
        break;
      default:
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::uint8_t>(rng.below(256)));
        break;
    }
  }
  return data;
}

class FuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xF22);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new CertificateAuthority("FuzzRoot", *ca_key_, 0, kNow * 2);
    server_cert_ = new Certificate(
        ca_->issue("server.fuzz", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static CertificateAuthority* ca_;
  static Certificate* server_cert_;
};

crypto::RsaKeyPair* FuzzTest::ca_key_ = nullptr;
crypto::RsaKeyPair* FuzzTest::server_key_ = nullptr;
CertificateAuthority* FuzzTest::ca_ = nullptr;
Certificate* FuzzTest::server_cert_ = nullptr;

TEST_F(FuzzTest, ServerSurvivesMutatedClientHello) {
  crypto::HmacDrbg fuzz_rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    crypto::HmacDrbg crng(static_cast<std::uint64_t>(trial)),
        srng(static_cast<std::uint64_t>(trial) + 1000);
    HandshakeConfig ccfg;
    ccfg.rng = &crng;
    ccfg.now = kNow;
    ccfg.trusted_roots = {ca_->root()};
    TlsClient client(ccfg);
    const Bytes hello = client.process({});

    HandshakeConfig scfg;
    scfg.rng = &srng;
    scfg.now = kNow;
    scfg.cert_chain = {*server_cert_};
    scfg.private_key = &server_key_->priv;
    TlsServer server(scfg);
    const Bytes bad = mutate(hello, fuzz_rng, 1 + static_cast<int>(
                                                  fuzz_rng.below(4)));
    try {
      const Bytes reply = server.process(bad);
      // Accepting a mutated hello is fine only if the mutation left the
      // message semantically valid; the server must not be established.
      EXPECT_FALSE(server.established());
      (void)reply;
    } catch (const std::exception&) {
      // Typed failure: exactly what we want.
    }
  }
}

TEST_F(FuzzTest, ClientSurvivesMutatedServerFlight) {
  crypto::HmacDrbg fuzz_rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    crypto::HmacDrbg crng(static_cast<std::uint64_t>(trial) + 7),
        srng(static_cast<std::uint64_t>(trial) + 2000);
    HandshakeConfig ccfg;
    ccfg.rng = &crng;
    ccfg.now = kNow;
    ccfg.trusted_roots = {ca_->root()};
    HandshakeConfig scfg;
    scfg.rng = &srng;
    scfg.now = kNow;
    scfg.cert_chain = {*server_cert_};
    scfg.private_key = &server_key_->priv;
    TlsClient client(ccfg);
    TlsServer server(scfg);
    const Bytes flight = server.process(client.process({}));
    const Bytes bad = mutate(flight, fuzz_rng, 1 + static_cast<int>(
                                                   fuzz_rng.below(6)));
    try {
      (void)client.process(bad);
      EXPECT_FALSE(client.established());
    } catch (const std::exception&) {
    }
  }
}

TEST_F(FuzzTest, RecordCodecSurvivesGarbage) {
  crypto::HmacDrbg rng(3);
  const SuiteInfo& suite = suite_info(CipherSuite::kRsaAes128CbcSha);
  RecordCodec codec;
  codec.activate(suite, rng.bytes(16), rng.bytes(20), rng.bytes(16));
  for (int trial = 0; trial < 500; ++trial) {
    const Bytes garbage = rng.bytes(rng.below(200));
    try {
      (void)codec.open(garbage);
    } catch (const std::exception&) {
    }
  }
  SUCCEED();
}

TEST_F(FuzzTest, CertificateDecoderSurvivesMutations) {
  crypto::HmacDrbg rng(4);
  const Bytes valid = server_cert_->encode();
  std::size_t decoded_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const Bytes bad = mutate(valid, rng, 1 + static_cast<int>(rng.below(8)));
    const auto cert = Certificate::decode(bad);  // must never throw
    if (cert.has_value()) {
      ++decoded_ok;
      // Structurally decodable mutants must still fail verification
      // unless the mutation missed every covered field.
      (void)verify_chain({*cert}, {ca_->root()}, kNow);
    }
  }
  // Most mutations break framing entirely.
  EXPECT_LT(decoded_ok, 400u);
}

TEST_F(FuzzTest, EspReceiverSurvivesGarbageAndTruncation) {
  crypto::HmacDrbg rng(5);
  EspSa sa;
  sa.spi = 1;
  sa.cipher = BulkCipher::kAes128;
  sa.enc_key = rng.bytes(16);
  sa.mac_key = rng.bytes(20);
  EspSender tx(sa, &rng);
  EspReceiver rx(sa);
  const Bytes good = tx.protect(to_bytes("payload"));
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes bad = mutate(good, rng, 1 + static_cast<int>(rng.below(5)));
    const auto out = rx.unprotect(bad);  // must never throw
    if (out.has_value()) {
      // Only acceptable if the mutation recreated a valid fresh packet —
      // with an HMAC tag that is computationally impossible; treat as
      // failure.
      ADD_FAILURE() << "mutated ESP packet accepted";
    }
  }
  EXPECT_EQ(rx.stats().accepted, 0u);
}

TEST_F(FuzzTest, WepDecapsulationNeverThrows) {
  crypto::HmacDrbg rng(6);
  const Bytes key = rng.bytes(13);
  for (int trial = 0; trial < 300; ++trial) {
    WepFrame frame;
    rng.fill(frame.iv);
    frame.body = rng.bytes(rng.below(64));
    (void)wep_decapsulate(key, frame);  // may reject, must not throw
  }
  SUCCEED();
}

TEST_F(FuzzTest, SplitRecordsNeverOverreads) {
  crypto::HmacDrbg rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const Bytes stream = rng.bytes(rng.below(100));
    std::vector<Bytes> records;
    const std::size_t used = split_records(stream, records);
    EXPECT_LE(used, stream.size());
    std::size_t total = 0;
    for (const auto& r : records) total += r.size();
    EXPECT_EQ(total, used);
  }
}

}  // namespace
}  // namespace mapsec::protocol
