// Certificate encoding and chain verification.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/cert.hpp"

namespace mapsec::protocol {
namespace {

class CertTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xCE27);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    leaf_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    other_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete ca_key_;
    delete leaf_key_;
    delete other_key_;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* leaf_key_;
  static crypto::RsaKeyPair* other_key_;

  static constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003
};

crypto::RsaKeyPair* CertTest::ca_key_ = nullptr;
crypto::RsaKeyPair* CertTest::leaf_key_ = nullptr;
crypto::RsaKeyPair* CertTest::other_key_ = nullptr;

TEST_F(CertTest, EncodeDecodeRoundTrip) {
  CertificateAuthority ca("MapSec Root", *ca_key_, kNow - 1000, kNow + 1000);
  const Certificate leaf =
      ca.issue("server.example", leaf_key_->pub, kNow - 10, kNow + 10);
  const auto decoded = Certificate::decode(leaf.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->subject, "server.example");
  EXPECT_EQ(decoded->issuer, "MapSec Root");
  EXPECT_EQ(decoded->public_key.n, leaf_key_->pub.n);
  EXPECT_EQ(decoded->serial, leaf.serial);
  EXPECT_EQ(decoded->signature, leaf.signature);
}

TEST_F(CertTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Certificate::decode(crypto::Bytes{}).has_value());
  EXPECT_FALSE(Certificate::decode(crypto::Bytes(7, 0xFF)).has_value());
  CertificateAuthority ca("CA", *ca_key_, 0, kNow * 2);
  crypto::Bytes enc = ca.root().encode();
  enc.push_back(0);  // trailing junk
  EXPECT_FALSE(Certificate::decode(enc).has_value());
}

TEST_F(CertTest, ValidChainVerifies) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  const Certificate leaf = ca.issue("leaf", leaf_key_->pub, 0, kNow * 2);
  EXPECT_EQ(verify_chain({leaf}, {ca.root()}, kNow), CertVerifyResult::kOk);
}

TEST_F(CertTest, SelfSignedRootVerifiesAgainstItself) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  EXPECT_TRUE(ca.root().is_self_signed());
  EXPECT_EQ(verify_chain({ca.root()}, {ca.root()}, kNow),
            CertVerifyResult::kOk);
}

TEST_F(CertTest, UnknownIssuerRejected) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  CertificateAuthority rogue("Rogue", *other_key_, 0, kNow * 2);
  const Certificate leaf = rogue.issue("leaf", leaf_key_->pub, 0, kNow * 2);
  EXPECT_EQ(verify_chain({leaf}, {ca.root()}, kNow),
            CertVerifyResult::kUnknownIssuer);
}

TEST_F(CertTest, ForgedSignatureRejected) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  Certificate leaf = ca.issue("leaf", leaf_key_->pub, 0, kNow * 2);
  leaf.subject = "attacker.example";  // content changed after signing
  EXPECT_EQ(verify_chain({leaf}, {ca.root()}, kNow),
            CertVerifyResult::kBadSignature);
}

TEST_F(CertTest, ExpiryAndNotYetValid) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  const Certificate expired =
      ca.issue("old", leaf_key_->pub, 0, kNow - 100);
  EXPECT_EQ(verify_chain({expired}, {ca.root()}, kNow),
            CertVerifyResult::kExpired);
  const Certificate future =
      ca.issue("future", leaf_key_->pub, kNow + 100, kNow + 200);
  EXPECT_EQ(verify_chain({future}, {ca.root()}, kNow),
            CertVerifyResult::kNotYetValid);
}

TEST_F(CertTest, EmptyChainRejected) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  EXPECT_EQ(verify_chain({}, {ca.root()}, kNow),
            CertVerifyResult::kEmptyChain);
}

TEST_F(CertTest, IntermediateChain) {
  // Root signs an intermediate CA cert; the intermediate's key signs the
  // leaf. The chain (leaf, intermediate) verifies against the root.
  CertificateAuthority root("Root", *ca_key_, 0, kNow * 2);
  const Certificate intermediate_cert =
      root.issue("Intermediate", other_key_->pub, 0, kNow * 2);
  CertificateAuthority intermediate("Intermediate", *other_key_, 0, kNow * 2);
  const Certificate leaf =
      intermediate.issue("leaf", leaf_key_->pub, 0, kNow * 2);
  EXPECT_EQ(verify_chain({leaf, intermediate_cert}, {root.root()}, kNow),
            CertVerifyResult::kOk);
  // Without the intermediate the leaf's issuer is unknown.
  EXPECT_EQ(verify_chain({leaf}, {root.root()}, kNow),
            CertVerifyResult::kUnknownIssuer);
}

TEST_F(CertTest, SerialNumbersIncrease) {
  CertificateAuthority ca("Root", *ca_key_, 0, kNow * 2);
  const Certificate a = ca.issue("a", leaf_key_->pub, 0, kNow * 2);
  const Certificate b = ca.issue("b", leaf_key_->pub, 0, kNow * 2);
  EXPECT_LT(a.serial, b.serial);
  EXPECT_GT(a.serial, ca.root().serial);
}

}  // namespace
}  // namespace mapsec::protocol
