// Table-driven renegotiation matrix: every
//   {initiator: client, server} x {resume basis} x {suite transition}
// cell, plus the lifecycle invariants (initiator send quiesce, in-flight
// drain under the old cipher, cumulative counters, policy refusals).
#include <gtest/gtest.h>

#include <string>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/ticket/ticket.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;

enum class Initiator { kClient, kServer };
// What the renegotiation offers as its resumption basis.
enum class Resume {
  kTicket,        // stateless: the ticket issued in the first handshake
  kSessionId,     // stateful: server session cache
  kNone,          // client declines to offer (attempt_resume = false)
  kPolicyDenied,  // offered, but server resume_on_renegotiate = false
};
// Suite movement across the renegotiation.
enum class Transition {
  kSame,       // rekey on the unchanged suite
  kCbcToAead,  // CBC+HMAC session rekeys onto the CCM AEAD suite
  kAeadToCbc,  // AEAD session rekeys back onto CBC+HMAC
  kDropOld,    // resume offered, but the new offer excludes the old suite:
               // the server must fall back to a FULL handshake on the new
               // suite even though the resumption basis was valid
};

struct Cell {
  const char* name;
  Initiator initiator;
  Resume resume;
  Transition transition;
};

// Server-initiated renegotiation replays the client's configured offer
// (the HelloRequest handler calls start_renegotiate with defaults), so
// suite transitions are driven from client-initiated cells; server cells
// cover every resume basis on the unchanged suite.
const Cell kCells[] = {
    {"client_ticket_same", Initiator::kClient, Resume::kTicket,
     Transition::kSame},
    {"client_sid_same", Initiator::kClient, Resume::kSessionId,
     Transition::kSame},
    {"client_full_same", Initiator::kClient, Resume::kNone,
     Transition::kSame},
    {"client_denied_same", Initiator::kClient, Resume::kPolicyDenied,
     Transition::kSame},
    {"client_full_cbc_to_aead", Initiator::kClient, Resume::kNone,
     Transition::kCbcToAead},
    {"client_full_aead_to_cbc", Initiator::kClient, Resume::kNone,
     Transition::kAeadToCbc},
    {"client_ticket_drop_old", Initiator::kClient, Resume::kTicket,
     Transition::kDropOld},
    {"client_sid_drop_old", Initiator::kClient, Resume::kSessionId,
     Transition::kDropOld},
    {"client_ticket_aead_same", Initiator::kClient, Resume::kTicket,
     Transition::kCbcToAead},  // see body: resume declined, AEAD reached,
                               // then a SECOND reneg ticket-resumes on AEAD
    {"server_ticket_same", Initiator::kServer, Resume::kTicket,
     Transition::kSame},
    {"server_sid_same", Initiator::kServer, Resume::kSessionId,
     Transition::kSame},
    {"server_denied_same", Initiator::kServer, Resume::kPolicyDenied,
     Transition::kSame},
};

class RenegotiateMatrixTest : public ::testing::TestWithParam<Cell> {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x7157);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new CertificateAuthority("TestRoot", *ca_key_, 0, kNow * 2);
    server_cert_ = new Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  HandshakeConfig client_config(crypto::Rng& rng) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.trusted_roots = {ca_->root()};
    cfg.allow_renegotiation = true;
    return cfg;
  }

  HandshakeConfig server_config(crypto::Rng& rng) const {
    HandshakeConfig cfg;
    cfg.rng = &rng;
    cfg.now = kNow;
    cfg.cert_chain = {*server_cert_};
    cfg.private_key = &server_key_->priv;
    cfg.allow_renegotiation = true;
    return cfg;
  }

  /// Ping-pong flights until neither side is renegotiating.
  static void pump(TlsClient& client, TlsServer& server, Bytes flight,
                   bool to_server) {
    while (client.renegotiating() || server.renegotiating() ||
           !flight.empty()) {
      if (to_server) {
        flight = server.process(flight);
      } else {
        flight = client.process(flight);
      }
      to_server = !to_server;
    }
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static CertificateAuthority* ca_;
  static Certificate* server_cert_;
};

crypto::RsaKeyPair* RenegotiateMatrixTest::ca_key_ = nullptr;
crypto::RsaKeyPair* RenegotiateMatrixTest::server_key_ = nullptr;
CertificateAuthority* RenegotiateMatrixTest::ca_ = nullptr;
Certificate* RenegotiateMatrixTest::server_cert_ = nullptr;

TEST_P(RenegotiateMatrixTest, Cell) {
  const Cell cell = GetParam();
  ticket::TicketKeyRing ring(0x33, {});
  ticket::TicketCodec codec(ring);
  SessionCache cache;
  crypto::HmacDrbg crng(1), srng(2);

  const CipherSuite kCbc = CipherSuite::kRsaAes128CbcSha;
  const CipherSuite kAead = CipherSuite::kRsaAes128Ccm8;
  const CipherSuite initial =
      cell.transition == Transition::kAeadToCbc ? kAead : kCbc;

  HandshakeConfig ccfg = client_config(crng);
  ccfg.offered_suites = {initial};
  const bool wants_ticket = cell.resume == Resume::kTicket ||
                            cell.resume == Resume::kPolicyDenied;
  ccfg.request_session_ticket = wants_ticket;

  HandshakeConfig scfg = server_config(srng);
  scfg.offered_suites = {kCbc, kAead};
  scfg.ticket_codec = wants_ticket ? &codec : nullptr;
  scfg.resume_on_renegotiate = cell.resume != Resume::kPolicyDenied;

  TlsClient client(ccfg);
  const bool use_cache = cell.resume == Resume::kSessionId ||
                         cell.resume == Resume::kPolicyDenied;
  TlsServer server(scfg, use_cache ? &cache : nullptr);
  run_handshake(client, server);
  ASSERT_TRUE(client.established());
  const Bytes master1 = client.master_secret();
  ASSERT_EQ(client.summary().suite, initial);

  // One application record each way under the first key block.
  ASSERT_EQ(server.recv_data(client.send_data(to_bytes("pre"))).size(), 1u);
  ASSERT_EQ(client.recv_data(server.send_data(to_bytes("erp"))).size(), 1u);

  // ---- renegotiate ----
  RenegotiateOptions opts;
  opts.attempt_resume = cell.resume != Resume::kNone;
  CipherSuite expect_suite = initial;
  switch (cell.transition) {
    case Transition::kSame:
      break;
    case Transition::kCbcToAead:
      opts.offered_suites = {kAead};
      expect_suite = kAead;
      break;
    case Transition::kAeadToCbc:
      opts.offered_suites = {kCbc};
      expect_suite = kCbc;
      break;
    case Transition::kDropOld:
      // Resumption basis is valid but the old suite is gone from the
      // offer: the server must ignore the resume and go full on AEAD.
      opts.offered_suites = {kAead};
      expect_suite = kAead;
      break;
  }

  if (cell.initiator == Initiator::kClient) {
    Bytes flight = client.start_renegotiate(opts);
    EXPECT_TRUE(client.renegotiating());
    pump(client, server, std::move(flight), /*to_server=*/true);
  } else {
    Bytes hello_req = server.request_renegotiate();
    // The server is not yet renegotiating — HelloRequest is an invitation;
    // its handshake state resets when the ClientHello arrives.
    EXPECT_FALSE(server.renegotiating());
    // The HelloRequest triggers the client's renegotiation in process().
    pump(client, server, std::move(hello_req), /*to_server=*/false);
  }

  ASSERT_TRUE(client.established());
  ASSERT_TRUE(server.established());
  EXPECT_FALSE(client.renegotiating());
  EXPECT_FALSE(server.renegotiating());
  EXPECT_EQ(client.summary().renegotiations, 1);
  EXPECT_EQ(server.summary().renegotiations, 1);
  EXPECT_EQ(client.summary().suite, expect_suite);
  EXPECT_EQ(server.summary().suite, expect_suite);

  const bool expect_resumed = (cell.resume == Resume::kTicket ||
                               cell.resume == Resume::kSessionId) &&
                              cell.transition != Transition::kDropOld &&
                              cell.transition == Transition::kSame;
  EXPECT_EQ(client.summary().resumed, expect_resumed) << cell.name;
  EXPECT_EQ(client.summary().ticket_resumed,
            expect_resumed && cell.resume == Resume::kTicket);
  if (expect_resumed) {
    // Pure rekey: same master secret, fresh key block.
    EXPECT_EQ(client.master_secret(), master1);
  } else {
    // Full handshake: fresh master secret.
    EXPECT_NE(client.master_secret(), master1);
  }
  EXPECT_EQ(client.master_secret(), server.master_secret());

  // The new key block carries data in both directions.
  const auto got_s = server.recv_data(client.send_data(to_bytes("post")));
  ASSERT_EQ(got_s.size(), 1u);
  EXPECT_EQ(got_s[0], to_bytes("post"));
  const auto got_c = client.recv_data(server.send_data(to_bytes("tsop")));
  ASSERT_EQ(got_c.size(), 1u);
  EXPECT_EQ(got_c[0], to_bytes("tsop"));

  // kTicket + kCbcToAead cell: the AEAD session now holds a ticket issued
  // on the new suite — a SECOND renegotiation ticket-resumes on AEAD
  // (aead->aead rekey), proving resumption works from an AEAD session.
  if (cell.resume == Resume::kTicket &&
      cell.transition == Transition::kCbcToAead) {
    ASSERT_TRUE(client.has_session_ticket());
    RenegotiateOptions again;
    again.offered_suites = {kAead};
    Bytes flight = client.start_renegotiate(again);
    pump(client, server, std::move(flight), /*to_server=*/true);
    EXPECT_TRUE(client.summary().ticket_resumed) << "aead ticket rekey";
    EXPECT_EQ(client.summary().suite, kAead);
    EXPECT_EQ(client.summary().renegotiations, 2);  // cumulative
    ASSERT_EQ(server.recv_data(client.send_data(to_bytes("x"))).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RenegotiateMatrixTest, ::testing::ValuesIn(kCells),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return std::string(info.param.name);
    });

// ---- lifecycle invariants outside the matrix ------------------------------

using RenegotiateLifecycleTest = RenegotiateMatrixTest;

TEST_F(RenegotiateLifecycleTest, InitiatorSendQuiescesButDrainsInFlight) {
  crypto::HmacDrbg crng(1), srng(2);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  run_handshake(client, server);

  // Two records leave the server under the OLD cipher before it learns of
  // the renegotiation.
  const Bytes w1 = server.send_data(to_bytes("in-flight 1"));
  const Bytes w2 = server.send_data(to_bytes("in-flight 2"));

  Bytes hello = client.start_renegotiate();
  // Initiator quiesce: no new app data while renegotiating...
  EXPECT_THROW(client.send_data(to_bytes("nope")), HandshakeError);
  // ...but in-order delivery means the old-cipher records arrive before
  // the server's renegotiation flight, and they still decrypt.
  EXPECT_EQ(client.recv_data(w1).at(0), to_bytes("in-flight 1"));

  Bytes server_flight = server.process(hello);
  // w2 was transmitted before that flight: drain it before the CCS inside
  // the flight swaps the client's read cipher.
  EXPECT_EQ(client.recv_data(w2).at(0), to_bytes("in-flight 2"));

  pump(client, server, std::move(server_flight), /*to_server=*/false);
  EXPECT_FALSE(client.renegotiating());
  // Quiesce lifts once the new key block is live.
  EXPECT_EQ(server.recv_data(client.send_data(to_bytes("after"))).size(),
            1u);
}

TEST_F(RenegotiateLifecycleTest, DisallowedByConfigThrows) {
  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.allow_renegotiation = false;
  HandshakeConfig scfg = server_config(srng);
  scfg.allow_renegotiation = false;
  TlsClient client(ccfg);
  TlsServer server(scfg);
  run_handshake(client, server);

  EXPECT_THROW(client.start_renegotiate(), HandshakeError);
  EXPECT_THROW(server.request_renegotiate(), HandshakeError);
}

TEST_F(RenegotiateLifecycleTest, HelloRequestRefusedWhenClientDisallows) {
  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg = client_config(crng);
  ccfg.allow_renegotiation = false;  // server allows, client does not
  TlsClient client(ccfg);
  TlsServer server(server_config(srng));
  run_handshake(client, server);

  const Bytes hello_req = server.request_renegotiate();
  EXPECT_THROW(client.process(hello_req), HandshakeError);
}

TEST_F(RenegotiateLifecycleTest, DoubleStartThrows) {
  crypto::HmacDrbg crng(1), srng(2);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  run_handshake(client, server);

  (void)client.start_renegotiate();
  EXPECT_THROW(client.start_renegotiate(), HandshakeError);
}

TEST_F(RenegotiateLifecycleTest, BeforeEstablishedThrows) {
  crypto::HmacDrbg crng(1), srng(2);
  TlsClient client(client_config(crng));
  TlsServer server(server_config(srng));
  EXPECT_THROW(client.start_renegotiate(), HandshakeError);
  EXPECT_THROW(server.request_renegotiate(), HandshakeError);
}

}  // namespace
}  // namespace mapsec::protocol
