// GSM bearer channel: what network-access-domain security does and does
// not provide.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/bearer.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

class BearerTest : public ::testing::Test {
 protected:
  BearerTest() : rng_(0x65), kc_(rng_.bytes(8)) {}
  crypto::HmacDrbg rng_;
  Bytes kc_;
};

TEST_F(BearerTest, AirInterfaceIsEncryptedUnderA51) {
  GsmLink link(kc_);
  const Bytes payload = to_bytes("voice/data frame payload");
  const auto trace =
      bearer_path_transfer(link, payload, GsmCipherMode::kA51);
  EXPECT_NE(trace.over_the_air, payload);          // radio eavesdropper: ct
  EXPECT_EQ(trace.at_base_station, payload);       // operator: plaintext!
  EXPECT_EQ(trace.delivered_to_server, payload);
}

TEST_F(BearerTest, ProtectionEndsAtBaseStation) {
  // The paper's core limitation: bearer security covers one hop. The
  // base-station view IS the plaintext — anything beyond (SS7 backhaul,
  // WAP gateway) handles user data unprotected.
  GsmLink link(kc_);
  const Bytes secret = to_bytes("card=5105105105105100");
  const auto trace = bearer_path_transfer(link, secret, GsmCipherMode::kA51);
  EXPECT_EQ(trace.at_base_station, secret);
}

TEST_F(BearerTest, NetworkCanDowngradeToNoEncryption) {
  GsmLink link(kc_);
  const Bytes payload = to_bytes("sensitive");
  const auto trace =
      bearer_path_transfer(link, payload, GsmCipherMode::kA50None);
  EXPECT_EQ(trace.over_the_air, payload);  // cleartext on the air
}

TEST_F(BearerTest, FrameCountersAdvanceAndRoundTrip) {
  GsmLink link(kc_);
  const Bytes p1 = to_bytes("frame one");
  const Bytes p2 = to_bytes("frame two");
  const GsmFrame f1 = link.send(p1, GsmCipherMode::kA51);
  const GsmFrame f2 = link.send(p2, GsmCipherMode::kA51);
  EXPECT_EQ(f2.frame_number, f1.frame_number + 1);
  EXPECT_EQ(link.receive(f1), p1);
  EXPECT_EQ(link.receive(f2), p2);
}

TEST_F(BearerTest, NoIntegrity) {
  // Corrupted frames decrypt to garbage without any error signal —
  // GSM's missing integrity protection, observable.
  GsmLink link(kc_);
  GsmFrame frame = link.send(to_bytes("AAAA"), GsmCipherMode::kA51);
  frame.body[0] ^= 0xFF;
  const Bytes out = link.receive(frame);  // no exception, no rejection
  EXPECT_NE(out, to_bytes("AAAA"));
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(BearerTest, FrameCounterWrapReusesKeystream) {
  // The 22-bit counter wraps; frames 2^22 apart share keystream under
  // the same Kc — a WEP-like exposure on long-lived sessions.
  GsmLink link(kc_);
  const Bytes p = to_bytes("probe");
  const GsmFrame first = link.send(p, GsmCipherMode::kA51);
  GsmFrame far_future = first;
  // Simulate the wrapped counter directly.
  far_future.frame_number = first.frame_number;  // same 22-bit value
  EXPECT_EQ(link.receive(far_future), p);
}

TEST_F(BearerTest, Validation) {
  EXPECT_THROW(GsmLink(Bytes(4)), std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::protocol
