// PRF and record-layer tests.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/prf.hpp"
#include "mapsec/protocol/record.hpp"
#include "mapsec/protocol/suites.hpp"

namespace mapsec::protocol {
namespace {

using crypto::Bytes;
using crypto::ConstBytes;
using crypto::to_bytes;

// ---- PRF ---------------------------------------------------------------------

TEST(PrfTest, DeterministicAndLengthExact) {
  const Bytes secret = to_bytes("secret");
  const Bytes seed = to_bytes("seed");
  for (std::size_t len : {1u, 12u, 20u, 48u, 104u, 200u}) {
    const Bytes a = tls_prf(secret, "label", seed, len);
    const Bytes b = tls_prf(secret, "label", seed, len);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a, b);
  }
}

TEST(PrfTest, LabelAndSeedSeparation) {
  const Bytes secret = to_bytes("secret");
  const Bytes seed = to_bytes("seed");
  const Bytes a = tls_prf(secret, "master secret", seed, 48);
  const Bytes b = tls_prf(secret, "key expansion", seed, 48);
  const Bytes c = tls_prf(secret, "master secret", to_bytes("other"), 48);
  const Bytes d = tls_prf(to_bytes("secret2"), "master secret", seed, 48);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(PrfTest, PHashExpansionsDiffer) {
  const Bytes s = to_bytes("s"), seed = to_bytes("x");
  EXPECT_NE(p_md5(s, seed, 32), p_sha1(s, seed, 32));
}

TEST(PrfTest, KeyBlockPartitionIsDisjointAndStable) {
  crypto::HmacDrbg rng(1);
  const Bytes master = rng.bytes(48);
  const Bytes cr = rng.bytes(32), sr = rng.bytes(32);
  const KeyBlock kb = derive_key_block(master, cr, sr, 20, 24, 8);
  EXPECT_EQ(kb.client_mac_key.size(), 20u);
  EXPECT_EQ(kb.server_mac_key.size(), 20u);
  EXPECT_EQ(kb.client_enc_key.size(), 24u);
  EXPECT_EQ(kb.server_enc_key.size(), 24u);
  EXPECT_EQ(kb.client_iv.size(), 8u);
  EXPECT_EQ(kb.server_iv.size(), 8u);
  EXPECT_NE(kb.client_enc_key, kb.server_enc_key);
  EXPECT_NE(kb.client_mac_key, kb.server_mac_key);
  // Same inputs -> same block.
  const KeyBlock kb2 = derive_key_block(master, cr, sr, 20, 24, 8);
  EXPECT_EQ(kb.client_enc_key, kb2.client_enc_key);
}

TEST(PrfTest, MasterSecretIs48Bytes) {
  crypto::HmacDrbg rng(2);
  const Bytes pm = rng.bytes(48);
  const Bytes ms = derive_master_secret(pm, rng.bytes(32), rng.bytes(32));
  EXPECT_EQ(ms.size(), 48u);
}

// ---- record codec -------------------------------------------------------------

class RecordSuiteTest : public ::testing::TestWithParam<CipherSuite> {
 protected:
  // A matched sender/receiver pair for the suite under test.
  void make_pair(RecordCodec& tx, RecordCodec& rx) {
    const SuiteInfo& suite = suite_info(GetParam());
    crypto::HmacDrbg rng(42);
    const Bytes enc_key = rng.bytes(suite.key_len);
    const Bytes mac_key = rng.bytes(suite.mac_len);
    const Bytes iv = rng.bytes(suite.block_len == 0 ? 16 : suite.block_len);
    tx.activate(suite, enc_key, mac_key, iv);
    rx.activate(suite, enc_key, mac_key, iv);
  }
};

TEST_P(RecordSuiteTest, SealOpenRoundTrip) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  for (int i = 0; i < 5; ++i) {
    const Bytes payload = to_bytes("application payload #" +
                                   std::to_string(i));
    const Bytes wire =
        tx.seal(RecordType::kApplicationData, ProtocolVersion::kTls10, payload);
    const Record rec = rx.open(wire);
    EXPECT_EQ(rec.type, RecordType::kApplicationData);
    EXPECT_EQ(rec.payload, payload);
  }
}

TEST_P(RecordSuiteTest, CiphertextHidesPlaintext) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  const Bytes payload = to_bytes("SECRET-SECRET-SECRET-SECRET");
  const Bytes wire =
      tx.seal(RecordType::kApplicationData, ProtocolVersion::kTls10, payload);
  // The plaintext must not appear in the wire bytes.
  const auto it = std::search(wire.begin(), wire.end(), payload.begin(),
                              payload.end());
  EXPECT_EQ(it, wire.end());
}

TEST_P(RecordSuiteTest, TamperDetected) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  Bytes wire = tx.seal(RecordType::kApplicationData, ProtocolVersion::kTls10,
                       to_bytes("authentic"));
  wire[wire.size() - 1] ^= 0x01;
  EXPECT_THROW(rx.open(wire), std::runtime_error);
}

TEST_P(RecordSuiteTest, ReorderDetected) {
  // Sequence numbers are implicit: swapping two records breaks the MAC
  // (or, for stream suites, the keystream alignment).
  RecordCodec tx, rx;
  make_pair(tx, rx);
  const Bytes w1 = tx.seal(RecordType::kApplicationData,
                           ProtocolVersion::kTls10, to_bytes("first"));
  const Bytes w2 = tx.seal(RecordType::kApplicationData,
                           ProtocolVersion::kTls10, to_bytes("second"));
  EXPECT_THROW(rx.open(w2), std::runtime_error);
}

TEST_P(RecordSuiteTest, ReplayDetected) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  const Bytes wire = tx.seal(RecordType::kApplicationData,
                             ProtocolVersion::kTls10, to_bytes("once"));
  EXPECT_EQ(rx.open(wire).payload, to_bytes("once"));
  EXPECT_THROW(rx.open(wire), std::runtime_error);
}

TEST_P(RecordSuiteTest, EmptyPayload) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  const Bytes wire =
      tx.seal(RecordType::kApplicationData, ProtocolVersion::kTls10, {});
  EXPECT_TRUE(rx.open(wire).payload.empty());
}

TEST_P(RecordSuiteTest, OverheadPrediction) {
  RecordCodec tx, rx;
  make_pair(tx, rx);
  for (std::size_t n : {0u, 1u, 7u, 8u, 100u}) {
    const Bytes payload(n, 0x61);
    RecordCodec probe, sink;
    make_pair(probe, sink);
    const Bytes wire = probe.seal(RecordType::kApplicationData,
                                  ProtocolVersion::kTls10, payload);
    EXPECT_EQ(wire.size(), n + probe.overhead(n)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, RecordSuiteTest, ::testing::ValuesIn(all_suites()),
    [](const ::testing::TestParamInfo<CipherSuite>& info) {
      return suite_info(info.param).name;
    });

TEST(RecordTest, NullCodecPassesThrough) {
  RecordCodec codec;
  const Bytes wire = codec.seal(RecordType::kHandshake,
                                ProtocolVersion::kTls10, to_bytes("hello"));
  RecordCodec reader;
  const Record rec = reader.open(wire);
  EXPECT_EQ(rec.type, RecordType::kHandshake);
  EXPECT_EQ(rec.payload, to_bytes("hello"));
}

TEST(RecordTest, SplitRecords) {
  RecordCodec codec;
  Bytes stream = codec.seal(RecordType::kHandshake, ProtocolVersion::kTls10,
                            to_bytes("one"));
  const Bytes second = codec.seal(RecordType::kAlert, ProtocolVersion::kTls10,
                                  to_bytes("two!"));
  stream.insert(stream.end(), second.begin(), second.end());
  stream.push_back(22);  // partial third record
  std::vector<Bytes> records;
  const std::size_t used = split_records(stream, records);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(used, stream.size() - 1);
}

TEST(RecordTest, MalformedInputs) {
  RecordCodec codec;
  EXPECT_THROW(codec.open(Bytes(3)), std::runtime_error);
  Bytes wire = codec.seal(RecordType::kHandshake, ProtocolVersion::kTls10,
                          to_bytes("x"));
  wire.pop_back();
  EXPECT_THROW(codec.open(wire), std::runtime_error);
}

TEST(RecordTest, SuiteTableConsistency) {
  for (const CipherSuite id : all_suites()) {
    const SuiteInfo& s = suite_info(id);
    EXPECT_EQ(s.id, id);
    EXPECT_FALSE(s.name.empty());
    EXPECT_EQ(s.mac_len, mac_length(s.mac));
    if (s.kind == BulkKind::kStream) {
      EXPECT_EQ(s.block_len, 0u);
    } else {
      EXPECT_GT(s.block_len, 0u);
    }
  }
  EXPECT_THROW(suite_info(static_cast<CipherSuite>(0x1234)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::protocol
