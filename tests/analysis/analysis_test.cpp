// Table rendering and the figure-report generators.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mapsec/analysis/csv.hpp"
#include "mapsec/analysis/report.hpp"
#include "mapsec/analysis/stats.hpp"
#include "mapsec/analysis/table.hpp"

namespace mapsec::analysis {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "123.45"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("123.45"), std::string::npos);
  // Three content lines + rule.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_eng(1234.0, 1), "1.2k");
  EXPECT_EQ(fmt_eng(2.5e6, 1), "2.5M");
  EXPECT_EQ(fmt_eng(3.0e9, 1), "3.0G");
  EXPECT_EQ(fmt_eng(12.0, 1), "12.0");
}

TEST(ReportTest, Figure2ContainsTheFamiliesAndAesRevision) {
  const std::string r = figure2_report();
  EXPECT_NE(r.find("SSL/TLS"), std::string::npos);
  EXPECT_NE(r.find("IPSec"), std::string::npos);
  EXPECT_NE(r.find("WTLS"), std::string::npos);
  EXPECT_NE(r.find("MET"), std::string::npos);
  EXPECT_NE(r.find("2002-06"), std::string::npos);  // the AES revision
  EXPECT_NE(r.find("revisions/year"), std::string::npos);
}

TEST(ReportTest, Figure3ContainsSurfaceAndPlanes) {
  const std::string r = figure3_report();
  EXPECT_NE(r.find("651.3"), std::string::npos);  // the 10 Mbps anchor row
  EXPECT_NE(r.find("StrongARM"), std::string::npos);
  EXPECT_NE(r.find("Pentium4"), std::string::npos);
  EXPECT_NE(r.find("DragonBall"), std::string::npos);
  EXPECT_NE(r.find("Embedded-300MIPS"), std::string::npos);
}

TEST(ReportTest, Section32AnchorsMatchPaper) {
  const std::string r = section32_anchor_report();
  EXPECT_NE(r.find("651.3"), std::string::npos);
  // Feasibility verdicts in latency order 0.1 / 0.5 / 1.0: no, yes, yes.
  const auto no_pos = r.find("no");
  ASSERT_NE(no_pos, std::string::npos);
  EXPECT_NE(r.find("yes", no_pos), std::string::npos);
}

TEST(ReportTest, Figure4RatioBelowHalf) {
  const std::string r = figure4_report();
  EXPECT_NE(r.find("less than half"), std::string::npos);
  // The computed ratio 0.460 appears.
  EXPECT_NE(r.find("0.46"), std::string::npos);
}

TEST(ReportTest, AccelTiersOrdered) {
  const std::string r = accel_tier_report();
  // All five tiers present, in efficiency order.
  const auto sw = r.find("software");
  const auto isa = r.find("ISA-extension");
  const auto dsp = r.find("DSP-offload");
  const auto acc = r.find("crypto-accelerator");
  const auto eng = r.find("protocol-engine");
  ASSERT_NE(sw, std::string::npos);
  ASSERT_NE(isa, std::string::npos);
  ASSERT_NE(dsp, std::string::npos);
  ASSERT_NE(acc, std::string::npos);
  ASSERT_NE(eng, std::string::npos);
  EXPECT_LT(sw, isa);
  EXPECT_LT(isa, dsp);
  EXPECT_LT(dsp, acc);
  EXPECT_LT(acc, eng);
}

TEST(CsvTest, QuotingAndStructure) {
  const std::string csv = to_csv({"a", "b"}, {{"1", "plain"},
                                              {"2", "has,comma"},
                                              {"3", "has\"quote"}});
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("2,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(csv.find("3,\"has\"\"quote\"\n"), std::string::npos);
}

TEST(CsvTest, GapSurfaceExport) {
  const platform::GapAnalysis gap(
      platform::WorkloadModel::paper_calibrated());
  const auto points = gap.surface({1.0}, {10.0});
  const std::string csv = gap_surface_csv(points);
  EXPECT_NE(csv.find("latency_s,mbps"), std::string::npos);
  EXPECT_NE(csv.find("651.3"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + 1 row
}

TEST(CsvTest, GapTrendExport) {
  const platform::GapAnalysis gap(
      platform::WorkloadModel::paper_calibrated());
  const auto trend = platform::project_gap_trend(
      gap, platform::Processor::strongarm_sa1100(), 2.0, 2003, 2);
  const std::string csv = gap_trend_csv(trend);
  EXPECT_NE(csv.find("2003,"), std::string::npos);
  EXPECT_NE(csv.find("2005,"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// --------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, PercentileMatchesHandComputation) {
  // Bucket width 10, samples one per bucket: {5, 15, 25, 35}.
  // target = q*count cumulative-walked with in-bucket interpolation:
  //   q=0.50 -> target 2.0 -> bucket [10,20) fully consumed -> 20
  //   q=0.25 -> target 1.0 -> bucket [0,10) fully consumed -> 10
  //   q=1.00 -> clamped to max = 35
  //   q=0.00 -> clamped to min = 5
  LatencyHistogram h(10.0, 64);
  for (double v : {5.0, 15.0, 25.0, 35.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.00), 35.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.00), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 35.0);
}

TEST(LatencyHistogramTest, OverflowSamplesClampToTrackedMax) {
  LatencyHistogram h(10.0, 4);  // covers [0, 40) + overflow
  h.record(5.0);
  h.record(1'000.0);  // overflow bin
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1'000.0);  // exact max, not a bucket edge
}

TEST(LatencyHistogramTest, MergeIsExactAggregation) {
  // Shard A holds {5,15}, shard B holds {25,35}: the merged histogram
  // must answer exactly as one histogram that saw all four — which a
  // p99-of-p99s style summary of the shards cannot.
  LatencyHistogram a(10.0, 64), b(10.0, 64), all(10.0, 64);
  a.record(5.0);
  a.record(15.0);
  b.record(25.0);
  b.record(35.0);
  for (double v : {5.0, 15.0, 25.0, 35.0}) all.record(v);

  merge(a, b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), all.percentile(0.5));
  EXPECT_DOUBLE_EQ(a.percentile(1.0), all.percentile(1.0));
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 35.0);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0);
}

TEST(LatencyHistogramTest, MergedPercentileLeavesInputsAlone) {
  std::vector<LatencyHistogram> shards(3, LatencyHistogram(10.0, 64));
  shards[0].record(5.0);
  shards[1].record(15.0);
  shards[2].record(25.0);
  EXPECT_DOUBLE_EQ(merged_percentile(shards, 1.0), 25.0);
  for (const auto& s : shards) EXPECT_EQ(s.count(), 1u);
}

TEST(LatencyHistogramTest, MergeRejectsMismatchedLayouts) {
  LatencyHistogram a(10.0, 64);
  LatencyHistogram narrower(5.0, 64);
  LatencyHistogram shorter(10.0, 32);
  EXPECT_THROW(merge(a, narrower), std::invalid_argument);
  EXPECT_THROW(merge(a, shorter), std::invalid_argument);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace mapsec::analysis
