// mapsec::chaos soak tests: seeded fault-injection campaigns against the
// hardened SecureSessionServer. Every campaign mixes at least two fault
// classes and must satisfy the survival invariants (no livelock, byte-
// exact surviving sessions, conserved connection accounting, bounded
// memory), and the same seed must produce a bit-identical outcome for
// any PacketPipeline worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mapsec/chaos/campaign.hpp"
#include "mapsec/chaos/exhaustible_rng.hpp"
#include "mapsec/chaos/wire_mutator.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/protocol/cert.hpp"

namespace mapsec::chaos {
namespace {

using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

// ----------------------------------------------------- ExhaustibleRng

TEST(ExhaustibleRngTest, ThrowsWhenDryAndRecoversOnRefill) {
  ExhaustibleRng rng(0x1234, 64);
  EXPECT_EQ(rng.bytes(32).size(), 32u);
  EXPECT_EQ(rng.remaining(), 32u);
  EXPECT_THROW(rng.bytes(33), RngExhaustedError);
  EXPECT_TRUE(rng.exhausted());          // failed draw drains the pool
  EXPECT_THROW(rng.bytes(1), RngExhaustedError);
  rng.refill(16);
  EXPECT_EQ(rng.bytes(16).size(), 16u);
  EXPECT_THROW(rng.bytes(1), RngExhaustedError);
}

TEST(ExhaustibleRngTest, MatchesPlainDrbgStreamWhileFunded) {
  ExhaustibleRng a(0x77, ExhaustibleRng::kUnlimited);
  crypto::HmacDrbg b(0x77);
  EXPECT_EQ(a.bytes(48), b.bytes(48));
}

TEST(ExhaustibleRngTest, ExhaustOnCommand) {
  ExhaustibleRng rng(0x9);
  rng.exhaust();
  EXPECT_THROW(rng.bytes(1), RngExhaustedError);
}

// -------------------------------------------------------- WireMutator

TEST(WireMutatorTest, DeterministicForSameSeedAndCorpus) {
  auto build = [] {
    WireMutator m(0xF00D);
    m.add_specimen({0x10, 1, 2, 3, 4, 5, 6, 7});
    m.add_specimen({0x11, 9, 9, 9});
    return m;
  };
  WireMutator a = build();
  WireMutator b = build();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(WireMutatorTest, NeverEmitsAValidSpecimenVerbatim) {
  WireMutator m(0xBEEF);
  const crypto::Bytes specimen{0x10, 22, 3, 1, 0, 4, 1, 2, 3, 4};
  m.add_specimen(specimen);
  for (int i = 0; i < 500; ++i) EXPECT_NE(m.next(), specimen);
}

// --------------------------------------------------- campaign fixture

/// Shared PKI: one CA, one server identity (RSA-512 for speed).
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xC405);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("ChaosRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.chaos", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  /// A hardened serving world on a clean bearer; campaigns perturb it.
  static CampaignConfig base_config(std::uint64_t seed) {
    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.honest_clients = 12;
    cfg.mean_interarrival_us = 3'000;

    cfg.server.handshake.now = kNow;
    cfg.server.handshake.cert_chain = {*server_cert_};
    cfg.server.handshake.private_key = &server_key_->priv;
    cfg.server.max_handshake_queue = 24;
    cfg.server.degraded_high_watermark = 16;
    cfg.server.pipeline_workers = 1;

    cfg.client.handshake.now = kNow;
    cfg.client.handshake.trusted_roots = {ca_->root()};
    cfg.client.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    cfg.client.retry_budget = 6;
    cfg.client.retry_backoff_us = 100'000;

    cfg.cache.capacity = 256;
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* ChaosTest::ca_key_ = nullptr;
crypto::RsaKeyPair* ChaosTest::server_key_ = nullptr;
protocol::CertificateAuthority* ChaosTest::ca_ = nullptr;
protocol::Certificate* ChaosTest::server_cert_ = nullptr;

struct Campaign {
  std::string name;
  CampaignConfig config;
  /// Floor on honest sessions that must still complete (faults may
  /// legitimately fail the rest — but they must fail CLEANLY).
  std::size_t min_completed = 1;
};

/// The campaign book: ten seeded scenarios, every one mixing at least
/// two fault classes.
std::vector<Campaign> campaign_book(const CampaignConfig& base) {
  std::vector<Campaign> book;
  auto add = [&](std::string name, std::uint64_t seed, FaultPlan faults,
                 auto&& tweak, std::size_t min_completed) {
    Campaign c{std::move(name), base, min_completed};
    c.config.seed = seed;
    c.config.faults = std::move(faults);
    tweak(c.config);
    book.push_back(std::move(c));
  };
  auto no_tweak = [](CampaignConfig&) {};

  add("blackout_plus_burst", 0xC1,
      {Blackout{.at_us = 50'000, .duration_us = 200'000},
       BurstLoss{.at_us = 0, .duration_us = 0, .loss_bad = 0.7}},
      no_tweak, 10);

  add("flap_plus_bandwidth_collapse", 0xC2,
      {BearerFlap{.at_us = 30'000,
                  .flaps = 3,
                  .period_us = 150'000,
                  .outage_us = 40'000},
       BandwidthCollapse{.at_us = 100'000,
                         .duration_us = 400'000,
                         .bytes_per_sec = 4'000}},
      no_tweak, 10);

  add("dispatch_failure_plus_worker_stall", 0xC3,
      {DispatchFailure{.at_us = 20'000, .duration_us = 0},
       WorkerStall{.at_us = 10'000,
                   .duration_us = 0,
                   .worker = 0,
                   .stall_ns = 20'000}},
      [](CampaignConfig& c) { c.server.pipeline_workers = 2; }, 12);

  add("rng_exhaustion_plus_blackout", 0xC4,
      {RngExhaustion{.at_us = 10'000, .duration_us = 100'000},
       Blackout{.at_us = 150'000, .duration_us = 100'000}},
      no_tweak, 10);

  add("flood_into_degraded_mode", 0xC5,
      {HandshakeFlood{.at_us = 20'000,
                      .attackers = 4,
                      .connections_each = 6,
                      .interarrival_us = 5'000,
                      .reach_key_exchange = true},
       MalformedTraffic{.at_us = 30'000,
                        .clients = 1,
                        .connections_each = 3,
                        .messages_per_connection = 3}},
      [](CampaignConfig& c) {
        c.client.sessions = 2;  // second session resumes under fire
        c.server.max_handshake_queue = 8;
        c.server.degraded_high_watermark = 5;
        c.server.degraded_low_watermark = 2;
      },
      8);

  add("malformed_plus_burst", 0xC6,
      {MalformedTraffic{.at_us = 10'000,
                        .clients = 2,
                        .connections_each = 5,
                        .messages_per_connection = 4},
       BurstLoss{.at_us = 0, .duration_us = 300'000, .loss_bad = 0.6}},
      no_tweak, 10);

  add("flood_plus_blackout", 0xC7,
      {HandshakeFlood{.at_us = 15'000,
                      .attackers = 3,
                      .connections_each = 5,
                      .interarrival_us = 8'000},
       Blackout{.at_us = 60'000, .duration_us = 150'000}},
      [](CampaignConfig& c) { c.server.max_handshake_queue = 10; }, 8);

  add("stall_plus_burst_plus_flap", 0xC8,
      {WorkerStall{.at_us = 0,
                   .duration_us = 0,
                   .worker = 1,
                   .stall_ns = 10'000},
       BurstLoss{.at_us = 20'000, .duration_us = 250'000, .loss_bad = 0.8},
       BearerFlap{.at_us = 40'000,
                  .flaps = 2,
                  .period_us = 200'000,
                  .outage_us = 50'000}},
      [](CampaignConfig& c) { c.server.pipeline_workers = 3; }, 9);

  add("rng_exhaustion_plus_dispatch_failure", 0xC9,
      {RngExhaustion{.at_us = 5'000, .duration_us = 80'000},
       DispatchFailure{.at_us = 40'000, .duration_us = 200'000}},
      no_tweak, 10);

  add("kitchen_sink", 0xCA,
      {Blackout{.at_us = 80'000, .duration_us = 120'000},
       BurstLoss{.at_us = 0, .duration_us = 0, .loss_bad = 0.5},
       HandshakeFlood{.at_us = 25'000,
                      .attackers = 2,
                      .connections_each = 4,
                      .interarrival_us = 10'000},
       MalformedTraffic{.at_us = 40'000,
                        .clients = 1,
                        .connections_each = 4,
                        .messages_per_connection = 2},
       WorkerStall{.at_us = 0,
                   .duration_us = 0,
                   .worker = 0,
                   .stall_ns = 15'000},
       DispatchFailure{.at_us = 100'000, .duration_us = 0},
       RngExhaustion{.at_us = 300'000, .duration_us = 50'000}},
      [](CampaignConfig& c) {
        c.server.pipeline_workers = 2;
        c.server.max_handshake_queue = 10;
        c.server.degraded_high_watermark = 7;
        c.server.degraded_low_watermark = 3;
      },
      6);

  return book;
}

class CampaignSoak : public ChaosTest,
                     public ::testing::WithParamInterface<std::size_t> {};

TEST_P(CampaignSoak, SurvivesWithInvariantsIntact) {
  const std::vector<Campaign> book = campaign_book(base_config(0));
  ASSERT_LT(GetParam(), book.size());
  const Campaign& campaign = book[GetParam()];
  SCOPED_TRACE(campaign.name);

  CampaignRunner runner(campaign.config);
  const CampaignReport report = runner.run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  EXPECT_EQ(report.sessions_attempted,
            campaign.config.honest_clients *
                static_cast<std::size_t>(campaign.config.client.sessions));
  // Every attempted session ends decisively: completed or cleanly failed.
  EXPECT_EQ(report.sessions_completed + report.sessions_failed,
            report.sessions_attempted);
  EXPECT_GE(report.sessions_completed, campaign.min_completed)
      << "too few sessions survived " << campaign.name;
  EXPECT_EQ(report.echo_mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(CampaignBook, CampaignSoak,
                         ::testing::Range<std::size_t>(0, 10));

// Same seed, different pipeline worker counts: the outcome must be
// bit-identical — including under injected dispatch failure and worker
// stalls (exercised by the chosen campaigns).
TEST_F(ChaosTest, SameSeedIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<Campaign> book = campaign_book(base_config(0));
  for (const std::size_t index : {std::size_t{0}, std::size_t{4},
                                  std::size_t{9}}) {
    const Campaign& campaign = book[index];
    SCOPED_TRACE(campaign.name);

    CampaignConfig one = campaign.config;
    one.server.pipeline_workers = 1;
    CampaignConfig three = campaign.config;
    three.server.pipeline_workers = 3;

    const CampaignReport a = CampaignRunner(one).run();
    const CampaignReport b = CampaignRunner(three).run();

    EXPECT_EQ(a.fleet_digest, b.fleet_digest);
    EXPECT_EQ(a.sessions_completed, b.sessions_completed);
    EXPECT_EQ(a.server.bytes_opened, b.server.bytes_opened);
    EXPECT_EQ(a.server.bytes_sealed, b.server.bytes_sealed);
    EXPECT_EQ(a.server.handshakes_completed, b.server.handshakes_completed);
    EXPECT_EQ(a.server.refused_connections, b.server.refused_connections);
    EXPECT_EQ(a.sim_duration_s, b.sim_duration_s);
    EXPECT_TRUE(a.invariants_ok()) << a.invariant_failures;
    EXPECT_TRUE(b.invariants_ok()) << b.invariant_failures;
  }
}

// Repeating the identical config must also be bit-identical (no hidden
// global state leaks between runs — dispatch forcing is restored).
TEST_F(ChaosTest, RepeatedRunsAreReproducible) {
  const std::vector<Campaign> book = campaign_book(base_config(0));
  const Campaign& campaign = book[9];  // kitchen sink touches everything
  const CampaignReport a = CampaignRunner(campaign.config).run();
  const CampaignReport b = CampaignRunner(campaign.config).run();
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.sessions_completed, b.sessions_completed);
  EXPECT_EQ(a.attack_bytes, b.attack_bytes);
  EXPECT_EQ(a.sim_duration_s, b.sim_duration_s);
}

// The flood story end to end: honest clients keep completing byte-exact
// sessions while a handshake flood is shed; the shedding shows up in the
// refusal/degraded counters and the attack's server-side energy bill is
// bounded by admission control.
TEST_F(ChaosTest, HonestClientsCompleteByteExactDuringFlood) {
  CampaignConfig cfg = base_config(0xF10D);
  cfg.honest_clients = 8;
  cfg.client.sessions = 2;
  cfg.server.max_handshake_queue = 6;
  cfg.server.degraded_high_watermark = 4;
  cfg.server.degraded_low_watermark = 2;
  cfg.faults = {HandshakeFlood{.at_us = 15'000,
                               .attackers = 6,
                               .connections_each = 8,
                               .interarrival_us = 3'000,
                               .reach_key_exchange = true}};

  const CampaignReport report = CampaignRunner(cfg).run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  EXPECT_EQ(report.echo_mismatches, 0u);
  EXPECT_EQ(report.sessions_completed, 16u)
      << "honest sessions must ride out the flood";
  EXPECT_EQ(report.attack_connections, 48u);
  // The defenses actually engaged.
  EXPECT_GT(report.server.refused_connections +
                report.server.degraded_refusals,
            0u);
  // Admission control bounds the RSA work the flood can buy: far fewer
  // private ops than attack connections.
  EXPECT_LT(report.server.handshake_rsa_private_ops,
            report.attack_connections + 2 * 16);
  EXPECT_GT(report.handshake_energy_mj, 0.0);
  EXPECT_GT(report.mj_per_attack_byte, 0.0);
}

// Ticket sealing-key rotations forced mid-flood (the panic key roll):
// honest ticket-holding clients either keep resuming (rotation within the
// decrypt window) or fall back to a full handshake and get a fresh
// ticket — ZERO honest failures either way, with the server holding no
// per-client resumption state at all (cache capacity 0).
TEST_F(ChaosTest, TicketKeyRotationMidFloodStrandsNoHonestClient) {
  CampaignConfig cfg = base_config(0x71C8);
  cfg.honest_clients = 10;
  cfg.client.sessions = 3;
  cfg.client.use_session_tickets = true;
  cfg.server.ticket.enabled = true;
  cfg.server.ticket.decrypt_window = 2;
  cfg.cache.capacity = 0;  // stateless: tickets are the only resumption
  cfg.faults = {HandshakeFlood{.at_us = 15'000,
                               .attackers = 3,
                               .connections_each = 5,
                               .interarrival_us = 8'000,
                               .reach_key_exchange = true},
                TicketKeyRotation{.at_us = 40'000,
                                  .rotations = 5,
                                  .period_us = 60'000}};

  const CampaignReport report = CampaignRunner(cfg).run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  EXPECT_EQ(report.echo_mismatches, 0u);
  EXPECT_EQ(report.sessions_completed, 30u)
      << "a key roll must never strand an honest ticket holder";
  EXPECT_EQ(report.sessions_failed, 0u);
  EXPECT_EQ(report.server.ticket_key_rotations, 5u);
  EXPECT_GT(report.server.ticket_resumptions, 0u);
  EXPECT_GT(report.server.tickets_issued, 0u);

  // The whole scenario — rotations included — replays bit-identically.
  const CampaignReport replay = CampaignRunner(cfg).run();
  EXPECT_EQ(report.fleet_digest, replay.fleet_digest);
  EXPECT_EQ(report.server.ticket_resumptions,
            replay.server.ticket_resumptions);
}

// RNG exhaustion must poison only the connections that drew from the dry
// pool — never the event loop — and service must recover after refill.
TEST_F(ChaosTest, RngExhaustionIsContainedAndRecovers)
{
  CampaignConfig cfg = base_config(0xD8);
  cfg.honest_clients = 10;
  cfg.faults = {RngExhaustion{.at_us = 8'000, .duration_us = 120'000},
                BurstLoss{.at_us = 0, .duration_us = 0, .loss_bad = 0.5}};

  const CampaignReport report = CampaignRunner(cfg).run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  // Some handshakes hit the dry pool and were contained...
  EXPECT_GT(report.server.poisoned_connections, 0u);
  // ...and every session still finished once the pool refilled.
  EXPECT_EQ(report.sessions_completed, 10u);
}

// An offload-worker stall mid-run must degrade gracefully: the steal
// path recomputes stalled jobs inline (bit-identically), so every honest
// session still completes byte-exactly with the same simulated timing as
// the unstalled run, the invariants hold, and the stall shows up in the
// stolen counter — never as a deadlock.
TEST_F(ChaosTest, OffloadWorkerStallIsStolenNotDeadlocked) {
  CampaignConfig cfg = base_config(0x0FF5);
  cfg.server.offload_workers = 2;
  cfg.server.offload_steal_timeout_ms = 20;

  CampaignConfig stalled = cfg;
  stalled.faults.push_back(OffloadStall{.at_us = 0,
                                        .duration_us = 0,
                                        .worker = 0,
                                        .all_workers = true,
                                        .stall_ns = 300'000'000});

  const CampaignReport clean = CampaignRunner(cfg).run();
  const CampaignReport report = CampaignRunner(stalled).run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  EXPECT_EQ(report.sessions_completed, report.sessions_attempted);
  EXPECT_EQ(report.fleet_digest, clean.fleet_digest);
  EXPECT_EQ(report.sim_duration_s, clean.sim_duration_s);
  EXPECT_GT(report.server.offload_stolen, 0u);
  EXPECT_EQ(report.server.offload_completed,
            report.server.offload_submitted);
  EXPECT_EQ(clean.server.offload_stolen, 0u);
}

// Offload determinism inside the chaos harness: same seed, inline vs 1
// vs 4 offload workers — identical fleet digest and serving outcome.
TEST_F(ChaosTest, SameSeedIsBitIdenticalAcrossOffloadWorkerCounts) {
  const CampaignConfig inline_cfg = base_config(0x0FF6);
  CampaignConfig one = inline_cfg;
  one.server.offload_workers = 1;
  CampaignConfig four = inline_cfg;
  four.server.offload_workers = 4;

  const CampaignReport a = CampaignRunner(inline_cfg).run();
  const CampaignReport b = CampaignRunner(one).run();
  const CampaignReport c = CampaignRunner(four).run();

  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(b.fleet_digest, c.fleet_digest);
  EXPECT_EQ(b.sessions_completed, c.sessions_completed);
  EXPECT_EQ(b.server.handshakes_completed, c.server.handshakes_completed);
  // Simulated timing legitimately differs (one lane queues, four do
  // not); the contract fixes the bytes, not the schedule.
  EXPECT_TRUE(b.invariants_ok()) << b.invariant_failures;
  EXPECT_TRUE(c.invariants_ok()) << c.invariant_failures;
}

// Batched lanes inside the chaos harness: same seed across batch widths
// {1,2,4,8} on a single queueing lane — identical fleet digest, identical
// serving outcome. Tight arrivals against the 4 ms lane service time
// guarantee windows actually fill at widths >= 2.
TEST_F(ChaosTest, SameSeedIsBitIdenticalAcrossOffloadBatchWidths) {
  CampaignReport baseline;
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    CampaignConfig cfg = base_config(0x0FF7);
    cfg.mean_interarrival_us = 1'000;
    cfg.server.offload_workers = 1;
    cfg.server.offload_batch_width = width;
    const CampaignReport r = CampaignRunner(cfg).run();
    EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
    if (width == 1) {
      EXPECT_EQ(r.server.offload_batched_jobs, 0u);
      baseline = r;
    } else {
      EXPECT_GT(r.server.offload_batched_jobs, 0u) << "width " << width;
      EXPECT_EQ(r.fleet_digest, baseline.fleet_digest) << "width " << width;
      EXPECT_EQ(r.sessions_completed, baseline.sessions_completed);
      EXPECT_EQ(r.server.bytes_opened, baseline.server.bytes_opened);
      EXPECT_EQ(r.server.bytes_sealed, baseline.server.bytes_sealed);
    }
  }
}

// An OffloadStall landing on multi-job windows exercises the whole-window
// steal: the event loop recomputes every job of the stalled window inline
// through the same batched path, so the digest matches the unstalled
// batched run AND the width-1 run — bit-identical twice over.
TEST_F(ChaosTest, OffloadStallMidBatchIsStolenWholeWindow) {
  CampaignConfig cfg = base_config(0x0FF8);
  cfg.mean_interarrival_us = 1'000;
  cfg.server.offload_workers = 1;
  cfg.server.offload_batch_width = 4;
  cfg.server.offload_steal_timeout_ms = 20;

  CampaignConfig stalled = cfg;
  stalled.faults.push_back(OffloadStall{.at_us = 0,
                                        .duration_us = 0,
                                        .worker = 0,
                                        .all_workers = true,
                                        .stall_ns = 300'000'000});
  CampaignConfig unbatched = cfg;
  unbatched.server.offload_batch_width = 1;

  const CampaignReport clean = CampaignRunner(cfg).run();
  const CampaignReport report = CampaignRunner(stalled).run();
  const CampaignReport width1 = CampaignRunner(unbatched).run();

  EXPECT_TRUE(report.invariants_ok()) << report.invariant_failures;
  EXPECT_EQ(report.sessions_completed, report.sessions_attempted);
  EXPECT_EQ(report.fleet_digest, clean.fleet_digest);
  EXPECT_EQ(report.fleet_digest, width1.fleet_digest);
  EXPECT_EQ(report.sim_duration_s, clean.sim_duration_s);
  EXPECT_GT(report.server.offload_stolen, 0u);
  EXPECT_GT(report.server.offload_batched_jobs, 0u);
  EXPECT_EQ(report.server.offload_completed, report.server.offload_submitted);
  EXPECT_EQ(clean.server.offload_stolen, 0u);
}

}  // namespace
}  // namespace mapsec::chaos
