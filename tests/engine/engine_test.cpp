// The programmable protocol engine: semantics (against the hand-written
// ESP implementation), flexibility (multiple protocols on one engine),
// and the cost model.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/protocol/esp.hpp"

namespace mapsec::engine {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : rng_(0xE9),
        engine_(EngineProfile{}, &rng_) {
    sa_.spi = 0x1001;
    sa_.cipher = protocol::BulkCipher::kDes3;
    sa_.enc_key = rng_.bytes(24);
    sa_.mac_key = rng_.bytes(20);
    engine_.load_program("esp-in", esp_inbound_program());
    engine_.load_program("esp-out", esp_outbound_program());
    engine_.load_program("wep-like-in", wep_inbound_like_program());
  }

  /// A real ESP packet from the hand-written sender, sharing keys.
  Bytes make_esp_packet(const Bytes& payload) {
    protocol::EspSa psa;
    psa.spi = sa_.spi;
    psa.cipher = sa_.cipher;
    psa.enc_key = sa_.enc_key;
    psa.mac_key = sa_.mac_key;
    if (!esp_sender_) esp_sender_ = std::make_unique<protocol::EspSender>(psa, &rng_);
    return esp_sender_->protect(payload);
  }

  crypto::HmacDrbg rng_;
  ProtocolEngine engine_;
  EngineSa sa_;
  std::unique_ptr<protocol::EspSender> esp_sender_;
};

TEST_F(EngineTest, EspInboundAcceptsRealEspPackets) {
  // Packets produced by the hand-written protocol::EspSender are accepted
  // and decrypted by the *programmed* engine — same protocol, expressed
  // as eight instructions.
  for (int i = 0; i < 5; ++i) {
    const Bytes payload = to_bytes("datagram " + std::to_string(i));
    const auto r = engine_.run("esp-in", sa_, make_esp_packet(payload));
    ASSERT_TRUE(r.accepted) << r.drop_reason;
    EXPECT_EQ(r.payload, payload);
    EXPECT_GT(r.cycles, 0);
  }
}

TEST_F(EngineTest, EspInboundMatchesHandWrittenDecisions) {
  // Decision-for-decision equivalence with protocol::EspReceiver on
  // good, tampered, and replayed packets.
  protocol::EspSa psa;
  psa.spi = sa_.spi;
  psa.cipher = sa_.cipher;
  psa.enc_key = sa_.enc_key;
  psa.mac_key = sa_.mac_key;
  protocol::EspReceiver reference(psa);

  const Bytes good = make_esp_packet(to_bytes("payload"));
  Bytes tampered = good;
  tampered[12] ^= 1;
  // Good packet: both accept.
  EXPECT_TRUE(engine_.run("esp-in", sa_, good).accepted);
  EXPECT_TRUE(reference.unprotect(good).has_value());
  // Replay: both reject.
  EXPECT_FALSE(engine_.run("esp-in", sa_, good).accepted);
  EXPECT_FALSE(reference.unprotect(good).has_value());
  // Tampered: both reject.
  EXPECT_FALSE(engine_.run("esp-in", sa_, tampered).accepted);
  EXPECT_FALSE(reference.unprotect(tampered).has_value());
}

TEST_F(EngineTest, DropReasonsAreSpecific) {
  EXPECT_EQ(engine_.run("esp-in", sa_, Bytes(4)).drop_reason, "short packet");

  Bytes wrong_spi = make_esp_packet(to_bytes("x"));
  wrong_spi[3] ^= 0xFF;
  EXPECT_EQ(engine_.run("esp-in", sa_, wrong_spi).drop_reason,
            "SPI mismatch");

  Bytes bad_mac = make_esp_packet(to_bytes("x"));
  bad_mac.back() ^= 1;
  EXPECT_EQ(engine_.run("esp-in", sa_, bad_mac).drop_reason, "MAC failure");
}

TEST_F(EngineTest, OutboundTheneInboundRoundTrip) {
  // Outbound program produces a packet the inbound program accepts.
  // Build the header (spi | seq) the way a host driver would.
  Bytes packet;
  packet.push_back(0x00);
  packet.push_back(0x00);
  packet.push_back(0x10);
  packet.push_back(0x01);  // spi 0x1001
  packet.push_back(0);
  packet.push_back(0);
  packet.push_back(0);
  packet.push_back(42);  // seq 42
  const Bytes payload = to_bytes("engine-protected data");
  packet.insert(packet.end(), payload.begin(), payload.end());

  const auto out = engine_.run("esp-out", sa_, packet);
  ASSERT_TRUE(out.accepted) << out.drop_reason;

  const Bytes wire = crypto::cat(out.header, out.payload);
  const auto in = engine_.run("esp-in", sa_, wire);
  ASSERT_TRUE(in.accepted) << in.drop_reason;
  EXPECT_EQ(in.payload, payload);
}

TEST_F(EngineTest, MultipleProtocolsOneEngine) {
  // The flexibility claim: three protocols resident simultaneously.
  EXPECT_EQ(engine_.program_count(), 3u);
  EXPECT_TRUE(engine_.has_program("wep-like-in"));
  // A fourth "standard revision" is a load_program call, not a redesign.
  Program esp_v2 = esp_inbound_program();
  esp_v2[3].operand = 10;  // revised ICV length
  engine_.load_program("esp-in-v2", std::move(esp_v2));
  EXPECT_EQ(engine_.program_count(), 4u);
}

TEST_F(EngineTest, UnknownProgramThrows) {
  EXPECT_THROW(engine_.run("nonexistent", sa_, Bytes(64)),
               std::invalid_argument);
}

TEST_F(EngineTest, CostModelChargesPerByte) {
  const Bytes small = make_esp_packet(Bytes(64, 1));
  const Bytes big = make_esp_packet(Bytes(1024, 2));
  EngineSa sa1 = sa_, sa2 = sa_;
  const double c_small = engine_.run("esp-in", sa1, small).cycles;
  const double c_big = engine_.run("esp-in", sa2, big).cycles;
  EXPECT_GT(c_big, c_small * 5);
}

TEST_F(EngineTest, EngineBeatsSoftwareBaselineByOrderOfMagnitude) {
  // The Section 4.2.3 comparison, run on identical programs/packets.
  crypto::HmacDrbg rng2(0xEA);
  ProtocolEngine sw(EngineProfile::software_baseline(), &rng2);
  sw.load_program("esp-in", esp_inbound_program());

  const Bytes packet = make_esp_packet(Bytes(512, 3));
  EngineSa sa1 = sa_, sa2 = sa_;
  const double hw_mbps = engine_.throughput_mbps("esp-in", sa1, packet);
  const double sw_mbps = sw.throughput_mbps("esp-in", sa2, packet);
  EXPECT_GT(hw_mbps, sw_mbps * 10);
}

TEST_F(EngineTest, ThroughputDoesNotDisturbReplayState) {
  const Bytes packet = make_esp_packet(to_bytes("x"));
  (void)engine_.throughput_mbps("esp-in", sa_, packet);
  // The same packet is still fresh for the live SA.
  EXPECT_TRUE(engine_.run("esp-in", sa_, packet).accepted);
}

TEST(EngineValidationTest, RequiresRng) {
  EXPECT_THROW(ProtocolEngine(EngineProfile{}, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::engine
