// Multi-threaded pipeline determinism: sharding by SA must not change the
// protocol's observable behaviour. Accept/drop decisions, output bytes
// and final anti-replay state are compared across worker counts.
#include <gtest/gtest.h>

#include <map>

#include "mapsec/engine/packet_pipeline.hpp"

namespace mapsec::engine {
namespace {

using crypto::Bytes;

constexpr std::size_t kNumSas = 6;
constexpr std::size_t kPacketsPerSa = 12;

Bytes make_header(std::uint32_t spi, std::uint32_t seq) {
  Bytes h(8);
  crypto::store_be32(h.data(), spi);
  crypto::store_be32(h.data() + 4, seq);
  return h;
}

bool sa_uses_ccmp(std::uint32_t sa_id) { return sa_id % 2 == 1; }

/// Build a pipeline with kNumSas SAs (alternating 3DES/ESP and AES/CCMP)
/// keyed deterministically, independent of worker count.
std::unique_ptr<PacketPipeline> make_pipeline(std::size_t workers) {
  auto p = std::make_unique<PacketPipeline>(EngineProfile{}, workers, 0xD5);
  p->load_program("esp-in", esp_inbound_program());
  p->load_program("esp-out", esp_outbound_program());
  p->load_program("ccmp-in", ccmp_inbound_program());
  p->load_program("ccmp-out", ccmp_outbound_program());
  for (std::uint32_t id = 0; id < kNumSas; ++id) {
    crypto::HmacDrbg keys(0x5A5A0000ull ^ id);
    EngineSa sa;
    sa.spi = 0x1000 + id;
    if (sa_uses_ccmp(id)) {
      sa.cipher = protocol::BulkCipher::kAes128;
      sa.enc_key = keys.bytes(16);
    } else {
      sa.cipher = protocol::BulkCipher::kDes3;
      sa.enc_key = keys.bytes(24);
    }
    sa.mac_key = keys.bytes(20);
    p->add_sa(id, sa);
  }
  return p;
}

std::vector<PipelineJob> outbound_jobs() {
  std::vector<PipelineJob> jobs;
  // Interleave SAs so neighbouring jobs land on different workers.
  for (std::size_t seq = 1; seq <= kPacketsPerSa; ++seq) {
    for (std::uint32_t id = 0; id < kNumSas; ++id) {
      PipelineJob j;
      j.sa_id = id;
      j.program = sa_uses_ccmp(id) ? "ccmp-out" : "esp-out";
      j.packet = make_header(0x1000 + id, static_cast<std::uint32_t>(seq));
      const Bytes body = crypto::to_bytes(
          "sa " + std::to_string(id) + " packet " + std::to_string(seq));
      j.packet.insert(j.packet.end(), body.begin(), body.end());
      jobs.push_back(std::move(j));
    }
  }
  return jobs;
}

struct Observation {
  std::vector<std::tuple<bool, Bytes, Bytes, std::string>> results;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>> replay;
};

bool operator==(const Observation& a, const Observation& b) {
  return a.results == b.results && a.replay == b.replay;
}

/// Protect a batch outbound, then run it inbound with a replayed
/// duplicate and a corrupted packet mixed in; observe everything.
Observation run_everything(std::size_t workers) {
  auto p = make_pipeline(workers);
  const auto out = p->run_batch(outbound_jobs());

  std::vector<PipelineJob> inbound;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].accepted) << out[i].drop_reason;
    const std::uint32_t id = static_cast<std::uint32_t>(i % kNumSas);
    PipelineJob j;
    j.sa_id = id;
    j.program = sa_uses_ccmp(id) ? "ccmp-in" : "esp-in";
    j.packet = out[i].header;
    j.packet.insert(j.packet.end(), out[i].payload.begin(),
                    out[i].payload.end());
    inbound.push_back(j);
    if (i == 7) inbound.push_back(j);  // replayed duplicate: must drop
    if (i == 9) {                      // corrupted body: must fail auth
      PipelineJob bad = j;
      bad.packet[12] ^= 0x40;
      inbound.push_back(std::move(bad));
    }
  }

  Observation obs;
  for (const auto& r : p->run_batch(inbound))
    obs.results.emplace_back(r.accepted, r.header, r.payload, r.drop_reason);
  for (std::uint32_t id = 0; id < kNumSas; ++id)
    obs.replay[id] = {p->sa(id).highest_seq, p->sa(id).window};
  return obs;
}

TEST(PipelineTest, WorkerCountDoesNotChangeBehaviour) {
  const Observation one = run_everything(1);
  // Sanity on the single-worker reference: duplicates and corruption
  // dropped, everything else accepted and decrypted.
  std::size_t accepted = 0, dropped = 0;
  for (const auto& [ok, header, payload, reason] : one.results)
    ok ? ++accepted : ++dropped;
  EXPECT_EQ(accepted, kNumSas * kPacketsPerSa);
  EXPECT_EQ(dropped, 2u);
  for (std::uint32_t id = 0; id < kNumSas; ++id)
    EXPECT_EQ(one.replay.at(id).first, kPacketsPerSa);

  EXPECT_TRUE(run_everything(2) == one);
  EXPECT_TRUE(run_everything(4) == one);
  EXPECT_TRUE(run_everything(5) == one);  // workers != SA count, coprime
}

TEST(PipelineTest, StatsAccountForEveryPacket) {
  auto p = make_pipeline(3);
  const auto jobs = outbound_jobs();
  const auto results = p->run_batch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  std::uint64_t packets = 0;
  double cycles = 0;
  for (const auto& st : p->stats()) {
    packets += st.packets;
    cycles += st.engine_cycles;
    EXPECT_EQ(st.batches, 1u);
  }
  EXPECT_EQ(packets, jobs.size());
  double result_cycles = 0;
  for (const auto& r : results) result_cycles += r.engine_cycles;
  EXPECT_DOUBLE_EQ(cycles, result_cycles);
}

TEST(PipelineTest, UnknownSaIsDroppedNotFatal) {
  auto p = make_pipeline(2);
  PipelineJob j;
  j.sa_id = 999;
  j.program = "esp-in";
  j.packet = Bytes(64, 0xAB);
  const auto r = p->run_batch({j});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_FALSE(r[0].accepted);
  EXPECT_EQ(r[0].drop_reason, "unknown SA");
}

TEST(PipelineTest, CcmpRejectsTamperedAad) {
  // Flipping a header (AAD) bit after sealing must fail the CCM open.
  auto p = make_pipeline(1);
  PipelineJob out;
  out.sa_id = 1;  // CCMP SA
  out.program = "ccmp-out";
  out.packet = make_header(0x1001, 1);
  const Bytes body = crypto::to_bytes("authenticate the header too");
  out.packet.insert(out.packet.end(), body.begin(), body.end());
  const auto sealed = p->run_batch({out});
  ASSERT_TRUE(sealed[0].accepted);

  PipelineJob in;
  in.sa_id = 1;
  in.program = "ccmp-in";
  in.packet = sealed[0].header;
  in.packet[7] ^= 0x01;  // tweak seq inside the AAD
  in.packet.insert(in.packet.end(), sealed[0].payload.begin(),
                   sealed[0].payload.end());
  const auto r = p->run_batch({in});
  EXPECT_FALSE(r[0].accepted);
  EXPECT_EQ(r[0].drop_reason, "CCM auth failure");
}

}  // namespace
}  // namespace mapsec::engine
