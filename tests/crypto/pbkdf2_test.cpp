// PBKDF2 (RFC 6070 known-answer vectors + properties).
#include <gtest/gtest.h>

#include "mapsec/crypto/pbkdf2.hpp"

namespace mapsec::crypto {
namespace {

TEST(Pbkdf2Test, Rfc6070Vectors) {
  EXPECT_EQ(to_hex(pbkdf2_hmac_sha1(to_bytes("password"), to_bytes("salt"),
                                    1, 20)),
            "0c60c80f961f0e71f3a9b524af6012062fe037a6");
  EXPECT_EQ(to_hex(pbkdf2_hmac_sha1(to_bytes("password"), to_bytes("salt"),
                                    2, 20)),
            "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957");
  EXPECT_EQ(to_hex(pbkdf2_hmac_sha1(to_bytes("password"), to_bytes("salt"),
                                    4096, 20)),
            "4b007901b765489abead49d926f721d065a429c1");
  EXPECT_EQ(
      to_hex(pbkdf2_hmac_sha1(to_bytes("passwordPASSWORDpassword"),
                              to_bytes("saltSALTsaltSALTsaltSALTsaltSALTsalt"),
                              4096, 25)),
      "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038");
}

TEST(Pbkdf2Test, MultiBlockOutput) {
  // dk_len > digest size exercises block chaining.
  const Bytes dk =
      pbkdf2_hmac_sha1(to_bytes("pw"), to_bytes("salt"), 10, 50);
  EXPECT_EQ(dk.size(), 50u);
  // Prefix property: a shorter derivation is a prefix of a longer one.
  const Bytes dk20 =
      pbkdf2_hmac_sha1(to_bytes("pw"), to_bytes("salt"), 10, 20);
  EXPECT_TRUE(std::equal(dk20.begin(), dk20.end(), dk.begin()));
}

TEST(Pbkdf2Test, SaltAndIterationSeparation) {
  const Bytes a = pbkdf2_hmac_sha1(to_bytes("pw"), to_bytes("salt1"), 10, 20);
  const Bytes b = pbkdf2_hmac_sha1(to_bytes("pw"), to_bytes("salt2"), 10, 20);
  const Bytes c = pbkdf2_hmac_sha1(to_bytes("pw"), to_bytes("salt1"), 11, 20);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Pbkdf2Test, Sha256VariantWorks) {
  const Bytes dk =
      pbkdf2_hmac_sha256(to_bytes("pin-4711"), to_bytes("device-id"), 100, 32);
  EXPECT_EQ(dk.size(), 32u);
  EXPECT_EQ(dk, pbkdf2_hmac_sha256(to_bytes("pin-4711"),
                                   to_bytes("device-id"), 100, 32));
}

TEST(Pbkdf2Test, Validation) {
  EXPECT_THROW(pbkdf2_hmac_sha1(to_bytes("p"), to_bytes("s"), 0, 20),
               std::invalid_argument);
}

TEST(Pbkdf2Test, IterationBudgetScalesWithMips) {
  // A DragonBall (2.7 MIPS) affords ~87x fewer iterations than the
  // StrongARM (235 MIPS) for the same 100 ms budget — the gap, again.
  const auto slow = pbkdf2_iterations_for_budget(2.7, 100);
  const auto fast = pbkdf2_iterations_for_budget(235, 100);
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow),
              235.0 / 2.7, 1.0);
  EXPECT_EQ(pbkdf2_iterations_for_budget(0.001, 0.001), 1u);  // floor
  EXPECT_THROW(pbkdf2_iterations_for_budget(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::crypto
