// Diffie-Hellman key agreement.
#include <gtest/gtest.h>

#include "mapsec/crypto/dh.hpp"
#include "mapsec/crypto/prime.hpp"

namespace mapsec::crypto {
namespace {

TEST(DhTest, Oakley2GroupParameters) {
  const DhGroup g = DhGroup::oakley_group2();
  EXPECT_EQ(g.p.bit_length(), 1024u);
  EXPECT_EQ(g.g.to_u64(), 2u);
  EXPECT_TRUE(g.p.is_odd());
}

TEST(DhTest, Modp2048GroupParameters) {
  const DhGroup g = DhGroup::modp2048();
  EXPECT_EQ(g.p.bit_length(), 2048u);
}

TEST(DhTest, AgreementOnSmallGroup) {
  HmacDrbg rng(1);
  const DhGroup group = DhGroup::generate(rng, 128);
  const DhKeyPair alice = dh_generate(group, rng);
  const DhKeyPair bob = dh_generate(group, rng);
  const BigInt s1 = dh_shared_secret(group, alice.private_key, bob.public_key);
  const BigInt s2 = dh_shared_secret(group, bob.private_key, alice.public_key);
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(s1.is_zero());
}

TEST(DhTest, AgreementOnOakley2) {
  HmacDrbg rng(2);
  const DhGroup group = DhGroup::oakley_group2();
  const DhKeyPair alice = dh_generate(group, rng);
  const DhKeyPair bob = dh_generate(group, rng);
  EXPECT_EQ(dh_shared_secret(group, alice.private_key, bob.public_key),
            dh_shared_secret(group, bob.private_key, alice.public_key));
}

TEST(DhTest, RejectsDegeneratePeerValues) {
  HmacDrbg rng(3);
  const DhGroup group = DhGroup::oakley_group2();
  const DhKeyPair alice = dh_generate(group, rng);
  EXPECT_THROW(dh_shared_secret(group, alice.private_key, BigInt(0)),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_secret(group, alice.private_key, BigInt(1)),
               std::invalid_argument);
  EXPECT_THROW(
      dh_shared_secret(group, alice.private_key, group.p - BigInt(1)),
      std::invalid_argument);
}

TEST(DhTest, DistinctEphemerals) {
  HmacDrbg rng(4);
  const DhGroup group = DhGroup::oakley_group2();
  EXPECT_NE(dh_generate(group, rng).public_key,
            dh_generate(group, rng).public_key);
}

}  // namespace
}  // namespace mapsec::crypto
