// RNG stack: DRBG determinism and the simulated TRNG's health tests.
#include <gtest/gtest.h>

#include <set>

#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {
namespace {

TEST(HmacDrbgTest, DeterministicForSameSeed) {
  HmacDrbg a(42), b(42);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(HmacDrbgTest, DifferentSeedsDiverge) {
  HmacDrbg a(1), b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, StreamAdvances) {
  HmacDrbg a(42);
  const Bytes first = a.bytes(32);
  const Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbgTest, ChunkingDoesNotChangeStream) {
  // Generating 64 bytes at once vs 2x32 differs per SP 800-90A (each
  // generate call re-keys); just pin the behaviour so protocol tests stay
  // reproducible.
  HmacDrbg a(7), b(7);
  const Bytes big = a.bytes(64);
  const Bytes c1 = b.bytes(64);
  EXPECT_EQ(big, c1);
}

TEST(HmacDrbgTest, ReseedChangesOutput) {
  HmacDrbg a(42), b(42);
  b.reseed(to_bytes("fresh entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, SeedFromBytes) {
  HmacDrbg a(to_bytes("seed material"));
  HmacDrbg b(to_bytes("seed material"));
  HmacDrbg c(to_bytes("other material"));
  EXPECT_EQ(a.bytes(16), b.bytes(16));
  EXPECT_NE(a.bytes(16), c.bytes(16));
}

TEST(HmacDrbgTest, BelowIsUniformish) {
  HmacDrbg rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 300 draws
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(SimTrngTest, HealthyUnderNormalOperation) {
  SimTrng trng(1234);
  trng.bytes(100000);
  EXPECT_TRUE(trng.healthy());
}

TEST(SimTrngTest, StuckAtFaultDetected) {
  SimTrng trng(1234);
  trng.bytes(1000);
  EXPECT_TRUE(trng.healthy());
  trng.inject_stuck_fault(0xAA);
  trng.bytes(16);  // two identical 32-bit blocks trip the continuous test
  EXPECT_FALSE(trng.healthy());
}

TEST(SimTrngTest, StuckAtZeroDetected) {
  SimTrng trng(99);
  trng.inject_stuck_fault(0x00);
  trng.bytes(64);
  EXPECT_FALSE(trng.healthy());
}

TEST(SimTrngTest, DeterministicSimulation) {
  SimTrng a(5), b(5);
  EXPECT_EQ(a.bytes(128), b.bytes(128));
}

TEST(SimTrngTest, ReasonableBitBalance) {
  SimTrng trng(77);
  const Bytes data = trng.bytes(12500);  // 100000 bits
  std::size_t ones = 0;
  for (const auto b : data) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / 100000.0;
  EXPECT_GT(frac, 0.49);
  EXPECT_LT(frac, 0.51);
}

}  // namespace
}  // namespace mapsec::crypto
