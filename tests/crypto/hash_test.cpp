// Known-answer and property tests for the hash / MAC / checksum primitives.
#include <gtest/gtest.h>

#include <string>

#include "mapsec/crypto/crc32.hpp"
#include "mapsec/crypto/hmac.hpp"
#include "mapsec/crypto/md5.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {
namespace {

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(to_hex(Md5::hash(to_bytes(""))),
            "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("a"))),
            "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("abc"))),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("message digest"))),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("abcdefghijklmnopqrstuvwxyz"))),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(to_hex(Md5::hash(to_bytes(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345678"
                "9"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// Streaming in arbitrary chunk sizes must equal the one-shot digest.
class HashStreamingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashStreamingTest, ChunkedEqualsOneShot) {
  const std::size_t chunk = GetParam();
  SimTrng rng(42);
  const Bytes msg = rng.bytes(1789);

  Sha1 s1;
  Md5 m5;
  Sha256 s256;
  for (std::size_t off = 0; off < msg.size(); off += chunk) {
    const std::size_t n = std::min(chunk, msg.size() - off);
    const ConstBytes piece{msg.data() + off, n};
    s1.update(piece);
    m5.update(piece);
    s256.update(piece);
  }
  EXPECT_EQ(s1.finish(), Sha1::hash(msg));
  EXPECT_EQ(m5.finish(), Md5::hash(msg));
  EXPECT_EQ(s256.finish(), Sha256::hash(msg));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, HashStreamingTest,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 128, 1000));

// Length-boundary sweep: messages straddling the 55/56/64-byte padding
// edges are where padding bugs live.
class HashPaddingBoundaryTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(HashPaddingBoundaryTest, DigestsStableAcrossSplitPoints) {
  const std::size_t len = GetParam();
  const Bytes msg(len, 0xA5);
  const Bytes ref1 = Sha1::hash(msg);
  const Bytes ref2 = Md5::hash(msg);
  const Bytes ref3 = Sha256::hash(msg);
  // Split at every position: same digest.
  for (std::size_t split : {std::size_t{0}, len / 2, len}) {
    Sha1 a;
    Md5 b;
    Sha256 c;
    a.update({msg.data(), split});
    a.update({msg.data() + split, len - split});
    b.update({msg.data(), split});
    b.update({msg.data() + split, len - split});
    c.update({msg.data(), split});
    c.update({msg.data() + split, len - split});
    EXPECT_EQ(a.finish(), ref1) << "len=" << len << " split=" << split;
    EXPECT_EQ(b.finish(), ref2);
    EXPECT_EQ(c.finish(), ref3);
  }
}

INSTANTIATE_TEST_SUITE_P(PaddingEdges, HashPaddingBoundaryTest,
                         ::testing::Values(54, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 129));

TEST(HmacTest, Rfc2202Sha1Vectors) {
  const Bytes key1(20, 0x0b);
  EXPECT_EQ(to_hex(HmacSha1::mac(key1, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");

  EXPECT_EQ(to_hex(HmacSha1::mac(to_bytes("Jefe"),
                                 to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");

  const Bytes key3(20, 0xaa);
  const Bytes data3(50, 0xdd);
  EXPECT_EQ(to_hex(HmacSha1::mac(key3, data3)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacTest, Rfc2202Md5Vectors) {
  const Bytes key1(16, 0x0b);
  EXPECT_EQ(to_hex(HmacMd5::mac(key1, to_bytes("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
  EXPECT_EQ(to_hex(HmacMd5::mac(to_bytes("Jefe"),
                                to_bytes("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacTest, Rfc4231Sha256Vector) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      to_hex(HmacSha256::mac(key, to_bytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 2202 test case 6: 80-byte key (> block size).
  const Bytes key(80, 0xaa);
  EXPECT_EQ(to_hex(HmacSha1::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash "
                              "Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacTest, VerifyAcceptsCorrectRejectsWrong) {
  const Bytes key = to_bytes("secret");
  const Bytes msg = to_bytes("message");
  Bytes tag = HmacSha1::mac(key, msg);
  EXPECT_TRUE(HmacSha1::verify(key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha1::verify(key, msg, tag));
  EXPECT_FALSE(HmacSha1::verify(key, to_bytes("messagf"),
                                HmacSha1::mac(key, msg)));
}

TEST(Crc32Test, CheckValue) {
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(to_bytes("")), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  std::uint32_t running = 0;
  running = crc32_update(running, ConstBytes{msg.data(), 10});
  running = crc32_update(running, ConstBytes{msg.data() + 10, msg.size() - 10});
  EXPECT_EQ(running, crc32(msg));
}

TEST(Crc32Test, LinearityUnderXor) {
  // The WEP-breaking property: crc(a xor b) == crc(a) xor crc(b) xor crc(0).
  SimTrng rng(7);
  for (int trial = 0; trial < 16; ++trial) {
    const Bytes a = rng.bytes(64);
    const Bytes b = rng.bytes(64);
    Bytes axb(64);
    for (int i = 0; i < 64; ++i)
      axb[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)];
    const Bytes zero(64, 0);
    EXPECT_EQ(crc32(axb), crc32(a) ^ crc32(b) ^ crc32(zero));
  }
}

TEST(CtEqualTest, Behaviour) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(HexTest, RoundTrip) {
  const Bytes data = from_hex("00ff10AB");
  EXPECT_EQ(data, (Bytes{0x00, 0xff, 0x10, 0xab}));
  EXPECT_EQ(to_hex(data), "00ff10ab");
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::crypto
