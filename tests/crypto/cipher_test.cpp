// Known-answer and property tests for the block/stream ciphers and modes.
#include <gtest/gtest.h>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/des.hpp"
#include "mapsec/crypto/rc2.hpp"
#include "mapsec/crypto/rc4.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {
namespace {

// ---- DES -------------------------------------------------------------------

TEST(DesTest, ClassicVector) {
  const Des des(from_hex("133457799BBCDFF1"));
  Bytes ct(8);
  const Bytes pt = from_hex("0123456789ABCDEF");
  des.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "85e813540f0ab405");
  Bytes back(8);
  des.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(DesTest, ZeroOutputVector) {
  const Des des(from_hex("0E329232EA6D0D73"));
  Bytes ct(8);
  const Bytes pt = from_hex("8787878787878787");
  des.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "0000000000000000");
}

TEST(DesTest, KeyParityBitsIgnored) {
  // Keys differing only in parity bits produce identical schedules.
  const Des a(from_hex("133457799BBCDFF1"));
  const Des b(from_hex("123456789ABCDEF0"));
  EXPECT_EQ(a.schedule(), b.schedule());
}

TEST(DesTest, RoundTripRandomBlocks) {
  SimTrng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const Des des(rng.bytes(8));
    const Bytes pt = rng.bytes(8);
    Bytes ct(8), back(8);
    des.encrypt_block(pt.data(), ct.data());
    des.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

TEST(DesTest, ComplementationProperty) {
  // DES(~k, ~p) == ~DES(k, p) — a structural identity of the cipher that
  // exercises every table.
  SimTrng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Bytes key = rng.bytes(8);
    const Bytes pt = rng.bytes(8);
    Bytes nkey(8), npt(8);
    for (int i = 0; i < 8; ++i) {
      nkey[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(~key[static_cast<std::size_t>(i)]);
      npt[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(~pt[static_cast<std::size_t>(i)]);
    }
    Bytes ct(8), nct(8);
    Des(key).encrypt_block(pt.data(), ct.data());
    Des(nkey).encrypt_block(npt.data(), nct.data());
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(nct[static_cast<std::size_t>(i)],
                static_cast<std::uint8_t>(~ct[static_cast<std::size_t>(i)]));
  }
}

TEST(Des3Test, DegeneratesToDesWithEqualKeys) {
  SimTrng rng(11);
  const Bytes k = rng.bytes(8);
  const Bytes key24 = cat(k, k, k);
  const Des des(k);
  const Des3 des3(key24);
  const Bytes pt = rng.bytes(8);
  Bytes a(8), b(8);
  des.encrypt_block(pt.data(), a.data());
  des3.encrypt_block(pt.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Des3Test, TwoKeyVariant) {
  SimTrng rng(12);
  const Bytes k16 = rng.bytes(16);
  const Bytes k24 = cat(k16, ConstBytes{k16.data(), 8});
  const Des3 two(k16);
  const Des3 three(k24);
  const Bytes pt = rng.bytes(8);
  Bytes a(8), b(8);
  two.encrypt_block(pt.data(), a.data());
  three.encrypt_block(pt.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Des3Test, RoundTrip) {
  SimTrng rng(13);
  const Des3 des3(rng.bytes(24));
  const Bytes pt = rng.bytes(8);
  Bytes ct(8), back(8);
  des3.encrypt_block(pt.data(), ct.data());
  des3.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
  EXPECT_NE(ct, pt);
}

TEST(Des3Test, RejectsBadKeySize) {
  EXPECT_THROW(Des3(Bytes(8)), std::invalid_argument);
  EXPECT_THROW(Des3(Bytes(23)), std::invalid_argument);
}

// ---- AES -------------------------------------------------------------------

TEST(AesTest, Fips197Aes128) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  Bytes back(16);
  aes.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(AesTest, Fips197Aes192) {
  const Aes aes(
      from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256) {
  const Aes aes(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, SboxSpotValues) {
  EXPECT_EQ(aes_detail::sbox(0x00), 0x63);
  EXPECT_EQ(aes_detail::sbox(0x53), 0xED);
  EXPECT_EQ(aes_detail::inv_sbox(0x63), 0x00);
  for (int x = 0; x < 256; ++x)
    EXPECT_EQ(aes_detail::inv_sbox(
                  aes_detail::sbox(static_cast<std::uint8_t>(x))),
              x);
}

class AesKeySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesKeySizeTest, RoundTripRandom) {
  SimTrng rng(GetParam());
  const Aes aes(rng.bytes(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes pt = rng.bytes(16);
    Bytes ct(16), back(16);
    aes.encrypt_block(pt.data(), ct.data());
    aes.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesKeySizeTest,
                         ::testing::Values(16, 24, 32));

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33)), std::invalid_argument);
}

// ---- RC4 -------------------------------------------------------------------

TEST(Rc4Test, ClassicVectors) {
  {
    Rc4 rc4(to_bytes("Key"));
    EXPECT_EQ(to_hex(rc4.process(to_bytes("Plaintext"))),
              "bbf316e8d940af0ad3");
  }
  {
    Rc4 rc4(to_bytes("Wiki"));
    EXPECT_EQ(to_hex(rc4.process(to_bytes("pedia"))), "1021bf0420");
  }
  {
    Rc4 rc4(to_bytes("Secret"));
    EXPECT_EQ(to_hex(rc4.process(to_bytes("Attack at dawn"))),
              "45a01f645fc35b383552544b9bf5");
  }
}

TEST(Rc4Test, EncryptDecryptSymmetry) {
  SimTrng rng(3);
  const Bytes key = rng.bytes(16);
  const Bytes pt = rng.bytes(333);
  Rc4 enc(key), dec(key);
  EXPECT_EQ(dec.process(enc.process(pt)), pt);
}

TEST(Rc4Test, SkipMatchesManualDrop) {
  const Bytes key = to_bytes("drop-test");
  Rc4 a(key), b(key);
  a.skip(256);
  b.keystream(256);
  EXPECT_EQ(a.keystream(32), b.keystream(32));
}

TEST(Rc4Test, RejectsBadKey) {
  EXPECT_THROW(Rc4(Bytes{}), std::invalid_argument);
  EXPECT_THROW(Rc4(Bytes(257)), std::invalid_argument);
}

// ---- RC2 -------------------------------------------------------------------

struct Rc2Vector {
  const char* key;
  int effective_bits;
  const char* plaintext;
  const char* ciphertext;
};

class Rc2VectorTest : public ::testing::TestWithParam<Rc2Vector> {};

TEST_P(Rc2VectorTest, Rfc2268KnownAnswer) {
  const auto& v = GetParam();
  const Rc2 rc2(from_hex(v.key), v.effective_bits);
  const Bytes pt = from_hex(v.plaintext);
  Bytes ct(8);
  rc2.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), v.ciphertext);
  Bytes back(8);
  rc2.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc2268, Rc2VectorTest,
    ::testing::Values(
        Rc2Vector{"0000000000000000", 63, "0000000000000000",
                  "ebb773f993278eff"},
        Rc2Vector{"ffffffffffffffff", 64, "ffffffffffffffff",
                  "278b27e42e2f0d49"},
        Rc2Vector{"3000000000000000", 64, "1000000000000001",
                  "30649edf9be7d2c2"},
        Rc2Vector{"88", 64, "0000000000000000", "61a8a244adacccf0"},
        Rc2Vector{"88bca90e90875a", 64, "0000000000000000",
                  "6ccf4308974c267f"},
        Rc2Vector{"88bca90e90875a7f0f79c384627bafb2", 64,
                  "0000000000000000", "1a807d272bbe5db1"},
        Rc2Vector{"88bca90e90875a7f0f79c384627bafb2", 128,
                  "0000000000000000", "2269552ab0f85ca6"}));

TEST(Rc2Test, RoundTripRandom) {
  SimTrng rng(17);
  const Rc2 rc2(rng.bytes(16));
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes pt = rng.bytes(8);
    Bytes ct(8), back(8);
    rc2.encrypt_block(pt.data(), ct.data());
    rc2.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

// ---- CBC mode --------------------------------------------------------------

class CbcModeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcModeTest, RoundTripAllLengths) {
  SimTrng rng(23);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(GetParam());
  const Bytes ct = cbc_encrypt(*cipher, iv, pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());  // padding always added
  EXPECT_EQ(cbc_decrypt(*cipher, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CbcModeTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100));

TEST(CbcModeTest, DesBlockSize) {
  SimTrng rng(29);
  const auto cipher = make_block_cipher(Des3(rng.bytes(24)));
  const Bytes iv = rng.bytes(8);
  const Bytes pt = to_bytes("CBC over a 64-bit block cipher");
  EXPECT_EQ(cbc_decrypt(*cipher, iv, cbc_encrypt(*cipher, iv, pt)), pt);
}

TEST(CbcModeTest, TamperedCiphertextFailsPaddingOrDiffers) {
  SimTrng rng(31);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(37);
  Bytes ct = cbc_encrypt(*cipher, iv, pt);
  ct[ct.size() - 1] ^= 0x40;  // corrupt final block
  // Either the padding check throws, or the plaintext comes back wrong.
  try {
    const Bytes out = cbc_decrypt(*cipher, iv, ct);
    EXPECT_NE(out, pt);
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(CbcModeTest, WrongIvCorruptsOnlyFirstBlock) {
  SimTrng rng(37);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  Bytes iv2 = iv;
  iv2[0] ^= 1;
  const Bytes pt = rng.bytes(48);
  const Bytes ct = cbc_encrypt(*cipher, iv, pt);
  const Bytes out = cbc_decrypt(*cipher, iv2, ct);
  ASSERT_EQ(out.size(), pt.size());
  // Blocks after the first decrypt correctly.
  EXPECT_TRUE(std::equal(out.begin() + 16, out.end(), pt.begin() + 16));
  EXPECT_FALSE(std::equal(out.begin(), out.begin() + 16, pt.begin()));
}

TEST(CbcModeTest, RejectsMalformedInput) {
  SimTrng rng(41);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  EXPECT_THROW(cbc_decrypt(*cipher, iv, Bytes(15)), std::runtime_error);
  EXPECT_THROW(cbc_decrypt(*cipher, iv, Bytes{}), std::runtime_error);
  EXPECT_THROW(cbc_encrypt(*cipher, Bytes(8), Bytes(16)),
               std::invalid_argument);
}

TEST(EcbModeTest, RoundTripAndBlockIndependence) {
  SimTrng rng(43);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  Bytes pt = rng.bytes(32);
  // Make both blocks identical: ECB leaks this (equal ciphertext blocks).
  std::copy(pt.begin(), pt.begin() + 16, pt.begin() + 16);
  const Bytes ct = ecb_encrypt(*cipher, pt);
  EXPECT_TRUE(std::equal(ct.begin(), ct.begin() + 16, ct.begin() + 16));
  EXPECT_EQ(ecb_decrypt(*cipher, ct), pt);
}

}  // namespace
}  // namespace mapsec::crypto
