// CTR mode, CBC-MAC and CCM authenticated encryption.
#include <gtest/gtest.h>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {
namespace {

TEST(CtrTest, EncryptDecryptSymmetry) {
  HmacDrbg rng(1);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes counter = rng.bytes(16);
  const Bytes pt = rng.bytes(100);  // not a block multiple
  const Bytes ct = ctr_crypt(*cipher, counter, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_NE(ct, pt);
  EXPECT_EQ(ctr_crypt(*cipher, counter, ct), pt);
}

TEST(CtrTest, CounterIncrementAcrossBlockBoundary) {
  // A counter block ending in 0xFF...FF must carry into higher bytes.
  HmacDrbg rng(2);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  Bytes counter(16, 0);
  counter[15] = 0xFF;
  counter[14] = 0xFF;
  const Bytes pt(48, 0);  // three blocks -> counters X, X+1, X+2
  const Bytes ks = ctr_crypt(*cipher, counter, pt);
  // Keystream blocks must be pairwise distinct.
  EXPECT_FALSE(std::equal(ks.begin(), ks.begin() + 16, ks.begin() + 16));
  EXPECT_FALSE(std::equal(ks.begin() + 16, ks.begin() + 32, ks.begin() + 32));
}

TEST(CtrTest, RejectsWrongCounterSize) {
  HmacDrbg rng(3);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  EXPECT_THROW(ctr_crypt(*cipher, Bytes(8), Bytes(16)),
               std::invalid_argument);
}

TEST(CbcMacTest, MatchesManualComputation) {
  HmacDrbg rng(4);
  const Bytes key = rng.bytes(16);
  const auto cipher = make_block_cipher(Aes(key));
  const Bytes msg = rng.bytes(32);  // exactly two blocks
  // Manual: E(E(m0) ^ m1)
  const Aes aes(key);
  Bytes b0(16), state(16);
  aes.encrypt_block(msg.data(), b0.data());
  for (int i = 0; i < 16; ++i)
    b0[static_cast<std::size_t>(i)] ^=
        msg[static_cast<std::size_t>(16 + i)];
  aes.encrypt_block(b0.data(), state.data());
  EXPECT_EQ(cbc_mac(*cipher, msg), state);
}

class CcmLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CcmLengthTest, SealOpenRoundTrip) {
  HmacDrbg rng(5);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  const Bytes aad = to_bytes("802.11 header");
  const Bytes pt = rng.bytes(GetParam());
  const Bytes sealed = ccm_seal(*cipher, nonce, aad, pt);
  EXPECT_EQ(sealed.size(), pt.size() + 8);
  const auto opened = ccm_open(*cipher, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

INSTANTIATE_TEST_SUITE_P(PayloadLengths, CcmLengthTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100,
                                           1000));

TEST(CcmTest, TamperedCiphertextRejected) {
  HmacDrbg rng(6);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  Bytes sealed = ccm_seal(*cipher, nonce, {}, to_bytes("authentic frame"));
  sealed[3] ^= 1;
  EXPECT_FALSE(ccm_open(*cipher, nonce, {}, sealed).has_value());
}

TEST(CcmTest, TamperedTagRejected) {
  HmacDrbg rng(7);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  Bytes sealed = ccm_seal(*cipher, nonce, {}, to_bytes("frame"));
  sealed.back() ^= 1;
  EXPECT_FALSE(ccm_open(*cipher, nonce, {}, sealed).has_value());
}

TEST(CcmTest, AadIsBound) {
  // Unlike WEP (whose CRC ignores the header), CCM binds the AAD: the
  // same sealed frame under a different header must not verify.
  HmacDrbg rng(8);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  const Bytes sealed =
      ccm_seal(*cipher, nonce, to_bytes("src=alice"), to_bytes("payload"));
  EXPECT_TRUE(
      ccm_open(*cipher, nonce, to_bytes("src=alice"), sealed).has_value());
  EXPECT_FALSE(
      ccm_open(*cipher, nonce, to_bytes("src=mallet"), sealed).has_value());
}

TEST(CcmTest, WrongNonceRejected) {
  HmacDrbg rng(9);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  Bytes nonce2 = nonce;
  nonce2[0] ^= 1;
  const Bytes sealed = ccm_seal(*cipher, nonce, {}, to_bytes("payload"));
  EXPECT_FALSE(ccm_open(*cipher, nonce2, {}, sealed).has_value());
}

TEST(CcmTest, TagLengths) {
  HmacDrbg rng(10);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  for (const std::size_t m : {4u, 8u, 12u, 16u}) {
    const Bytes sealed = ccm_seal(*cipher, nonce, {}, to_bytes("x"), m);
    EXPECT_EQ(sealed.size(), 1 + m);
    EXPECT_TRUE(ccm_open(*cipher, nonce, {}, sealed, m).has_value());
  }
  EXPECT_THROW(ccm_seal(*cipher, nonce, {}, to_bytes("x"), 3),
               std::invalid_argument);
  EXPECT_THROW(ccm_seal(*cipher, nonce, {}, to_bytes("x"), 7),
               std::invalid_argument);
}

TEST(CcmTest, ParameterValidation) {
  HmacDrbg rng(11);
  const auto aes = make_block_cipher(Aes(rng.bytes(16)));
  const auto des = make_block_cipher(Des3(rng.bytes(24)));
  EXPECT_THROW(ccm_seal(*des, Bytes(13), {}, Bytes(4)),
               std::invalid_argument);
  EXPECT_THROW(ccm_seal(*aes, Bytes(12), {}, Bytes(4)),
               std::invalid_argument);
  EXPECT_THROW(ccm_seal(*aes, Bytes(13), {}, Bytes(70000)),
               std::invalid_argument);
  EXPECT_FALSE(ccm_open(*aes, Bytes(13), {}, Bytes(4), 8).has_value());
}

TEST(CcmTest, Rfc3610PacketVector1) {
  // RFC 3610 Packet Vector #1: AES key C0..CF, 13-byte nonce, 8-byte AAD,
  // 23-byte payload, M=8.
  const auto cipher =
      make_block_cipher(Aes(from_hex("c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")));
  const Bytes nonce = from_hex("00000003020100a0a1a2a3a4a5");
  const Bytes aad = from_hex("0001020304050607");
  const Bytes payload =
      from_hex("08090a0b0c0d0e0f101112131415161718191a1b1c1d1e");
  const Bytes sealed = ccm_seal(*cipher, nonce, aad, payload, 8);
  EXPECT_EQ(to_hex(sealed),
            "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384"
            "17e8d12cfdf926e0");
  const auto opened = ccm_open(*cipher, nonce, aad, sealed, 8);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

}  // namespace
}  // namespace mapsec::crypto
