// Known-answer tests pinning the optimised primitives to their standards:
// FIPS-197 (AES, including the in-place block path), FIPS-180 / RFC 1321
// (streaming hash update()/finish_into()), RFC 2202 (HMAC context reuse),
// plus cross-checks of the zero-allocation cipher APIs and of the three
// modular-exponentiation strategies against each other.
#include <gtest/gtest.h>

#include <array>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/hmac.hpp"
#include "mapsec/crypto/md5.hpp"
#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/rc4.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {
namespace {

// ---- FIPS-197 appendix C: AES known answers ------------------------------------

const char* const kAesPlain = "00112233445566778899aabbccddeeff";

struct AesKat {
  const char* key;
  const char* ct;
};

const AesKat kAesKats[] = {
    // C.1 AES-128, C.2 AES-192, C.3 AES-256
    {"000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"},
    {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"},
};

TEST(AesKatTest, Fips197KnownAnswers) {
  const Bytes pt = from_hex(kAesPlain);
  for (const auto& kat : kAesKats) {
    const Aes aes(from_hex(kat.key));
    Bytes ct(16), back(16);
    aes.encrypt_block(pt.data(), ct.data());
    EXPECT_EQ(to_hex(ct), kat.ct);
    aes.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

TEST(AesKatTest, InPlaceBlockOperationsMatch) {
  // in == out must be safe for both directions (the CBC in-place paths
  // depend on it).
  for (const auto& kat : kAesKats) {
    const Aes aes(from_hex(kat.key));
    Bytes buf = from_hex(kAesPlain);
    aes.encrypt_block(buf.data(), buf.data());
    EXPECT_EQ(to_hex(buf), kat.ct);
    aes.decrypt_block(buf.data(), buf.data());
    EXPECT_EQ(to_hex(buf), kAesPlain);
  }
}

// ---- streaming hashes ----------------------------------------------------------

TEST(HashKatTest, Sha1Abc) {
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  std::array<std::uint8_t, Sha1::kDigestSize> d;
  Sha1::hash_into(to_bytes("abc"), d.data());
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(HashKatTest, Sha256Abc) {
  EXPECT_EQ(
      to_hex(Sha256::hash(to_bytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HashKatTest, Md5Abc) {
  EXPECT_EQ(to_hex(Md5::hash(to_bytes("abc"))),
            "900150983cd24fb0d6963f7d28e17f72");
}

TEST(HashKatTest, Sha1MillionA) {
  // FIPS-180 long-message vector, fed through update() in uneven chunks
  // to cross block boundaries at every offset.
  Sha1 h;
  const Bytes chunk(17, 'a');
  std::size_t fed = 0;
  while (fed + chunk.size() <= 1000000) {
    h.update(chunk);
    fed += chunk.size();
  }
  h.update(Bytes(1000000 - fed, 'a'));
  std::array<std::uint8_t, Sha1::kDigestSize> d;
  h.finish_into(d.data());
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

template <typename H>
void split_update_matches_oneshot() {
  HmacDrbg rng(0x5411);
  const Bytes msg = rng.bytes(300);
  const Bytes ref = H::hash(msg);
  for (const std::size_t split : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 200u}) {
    H h;
    h.update(ConstBytes{msg.data(), split});
    h.update(ConstBytes{msg.data() + split, msg.size() - split});
    std::array<std::uint8_t, H::kDigestSize> d;
    h.finish_into(d.data());
    EXPECT_EQ(Bytes(d.begin(), d.end()), ref) << "split at " << split;
  }
}

TEST(HashKatTest, SplitUpdatesMatchOneShot) {
  split_update_matches_oneshot<Sha1>();
  split_update_matches_oneshot<Sha256>();
  split_update_matches_oneshot<Md5>();
}

// ---- HMAC context reuse --------------------------------------------------------

TEST(HmacKatTest, Rfc2202Sha1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(HmacSha1::mac(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacKatTest, ResetReusesKeySchedule) {
  HmacDrbg rng(0x4A4A);
  const Bytes key = rng.bytes(20);
  HmacSha1 h(key);
  for (int i = 0; i < 4; ++i) {
    const Bytes msg = rng.bytes(10 + 50 * i);
    h.reset();
    h.update(msg);
    std::array<std::uint8_t, HmacSha1::kDigestSize> tag;
    h.finish_into(tag.data());
    EXPECT_EQ(Bytes(tag.begin(), tag.end()), HmacSha1::mac(key, msg));
  }
}

TEST(HmacKatTest, LongKeysAreHashedFirst) {
  const Bytes key(80, 0xaa);  // > block size: RFC 2202 test case 6 key
  const Bytes msg = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(HmacSha1::mac(key, msg)),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

// ---- zero-allocation cipher APIs -----------------------------------------------

TEST(CipherApiTest, Rc4InPlaceMatchesAllocating) {
  HmacDrbg rng(0xC4);
  const Bytes key = rng.bytes(16);
  const Bytes data = rng.bytes(333);

  Rc4 a(key), b(key);
  const Bytes ref = a.process(data);
  Bytes buf = data;
  b.process_inplace(buf);
  EXPECT_EQ(buf, ref);

  Rc4 c(key), d(key);
  const Bytes ks = c.keystream(77);
  Bytes ks2(77);
  d.keystream_into(ks2);
  EXPECT_EQ(ks2, ks);
}

TEST(CipherApiTest, CbcIntoAndInPlaceMatchAllocating) {
  HmacDrbg rng(0xCBC);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  for (const std::size_t n : {0u, 1u, 15u, 16u, 17u, 100u}) {
    const Bytes pt = rng.bytes(n);
    const Bytes ref = cbc_encrypt(*cipher, iv, pt);

    Bytes out(cbc_padded_len(n, 16));
    EXPECT_EQ(cbc_encrypt_into(*cipher, iv, pt, out), out.size());
    EXPECT_EQ(out, ref);

    Bytes buf = ref;
    const std::size_t len = cbc_decrypt_in_place(*cipher, iv, buf);
    buf.resize(len);
    EXPECT_EQ(buf, pt);
    EXPECT_EQ(cbc_decrypt(*cipher, iv, ref), pt);
  }
}

TEST(CipherApiTest, CbcEncryptExactAliasing) {
  // out may alias the plaintext exactly (same data pointer).
  HmacDrbg rng(0xA11A5);
  const auto cipher = make_block_cipher(Aes(rng.bytes(16)));
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(48);
  const Bytes ref = cbc_encrypt(*cipher, iv, pt);

  Bytes buf = pt;
  buf.resize(cbc_padded_len(pt.size(), 16));
  cbc_encrypt_into(*cipher, iv, ConstBytes{buf.data(), pt.size()}, buf);
  EXPECT_EQ(buf, ref);
}

// ---- modular exponentiation strategies -----------------------------------------

BigInt random_odd(HmacDrbg& rng, std::size_t bytes) {
  Bytes b = rng.bytes(bytes);
  b.front() |= 0x80;  // full bit length
  b.back() |= 0x01;   // odd
  return BigInt::from_bytes_be(b);
}

TEST(ModExpKatTest, FixedWindowMatchesSquareAndMultiply) {
  HmacDrbg rng(0xF1FE);
  for (const std::size_t bits : {512u, 1024u}) {
    const BigInt n = random_odd(rng, bits / 8);
    const Montgomery mont(n);
    for (int i = 0; i < 3; ++i) {
      const BigInt base = BigInt::random_below(rng, n);
      const BigInt e = BigInt::from_bytes_be(rng.bytes(bits / 8));
      const BigInt ref = mont.exp(base, e);
      EXPECT_EQ(mont.exp_fixed_window(base, e), ref) << bits << "-bit";
      EXPECT_EQ(mont.exp_ladder(base, e), ref) << bits << "-bit";
    }
  }
}

TEST(ModExpKatTest, EdgeExponents) {
  HmacDrbg rng(0xED6E);
  const BigInt n = random_odd(rng, 64);
  const Montgomery mont(n);
  const BigInt base = BigInt::random_below(rng, n);
  EXPECT_EQ(mont.exp_fixed_window(base, BigInt(0)), BigInt(1));
  EXPECT_EQ(mont.exp_fixed_window(base, BigInt(1)), base % n);
  EXPECT_EQ(mont.exp_fixed_window(base, BigInt(2)), (base * base) % n);
  // Exponent with long zero runs (exercises table[0] multiplies).
  Bytes sparse(64, 0);
  sparse.front() = 0x80;
  sparse.back() = 0x01;
  const BigInt e = BigInt::from_bytes_be(sparse);
  EXPECT_EQ(mont.exp_fixed_window(base, e), mont.exp(base, e));
}

TEST(ModExpKatTest, DispatchersAgree) {
  HmacDrbg rng(0xD15);
  const BigInt n = random_odd(rng, 48);
  const BigInt base = BigInt::random_below(rng, n);
  const BigInt e = BigInt::from_bytes_be(rng.bytes(48));
  EXPECT_EQ(mod_exp(base, e, n), mod_exp_ct(base, e, n));
}

TEST(ModExpKatTest, ExtraReductionCountsStayDataDependent) {
  // The timing side channel the attack module consumes: different bases
  // must (overwhelmingly) produce different extra-reduction counts.
  HmacDrbg rng(0x71D3);
  const BigInt n = random_odd(rng, 32);
  const Montgomery mont(n);
  const BigInt e = BigInt::from_bytes_be(rng.bytes(32));
  std::uint64_t first = 0;
  bool varies = false;
  for (int i = 0; i < 8; ++i) {
    MontStats stats;
    mont.exp(BigInt::random_below(rng, n), e, &stats);
    EXPECT_GT(stats.squares, 0u);
    if (i == 0)
      first = stats.extra_reductions;
    else if (stats.extra_reductions != first)
      varies = true;
  }
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace mapsec::crypto
