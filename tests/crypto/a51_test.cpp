// A5/1 GSM stream cipher: structure and behaviour. (Implementation
// follows the published Briceno/Goldberg/Wagner reference algorithm;
// tests pin the structural properties and the security-relevant
// behaviours the paper's GSM discussion relies on.)
#include <gtest/gtest.h>

#include "mapsec/crypto/a51.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {
namespace {

TEST(A51Test, DeterministicKeystream) {
  const Bytes key = from_hex("1223456789abcdef");
  A51 a(key, 0x134), b(key, 0x134);
  EXPECT_EQ(a.keystream(32), b.keystream(32));
}

TEST(A51Test, FrameNumberSeparatesKeystreams) {
  // GSM re-keys the generator per frame; different frames must give
  // unrelated keystreams under the same Kc.
  const Bytes key = from_hex("1223456789abcdef");
  A51 a(key, 0x134), b(key, 0x135);
  const Bytes ka = a.keystream(32);
  const Bytes kb = b.keystream(32);
  EXPECT_NE(ka, kb);
  // And roughly half the bits differ.
  std::size_t diff = 0;
  for (std::size_t i = 0; i < ka.size(); ++i)
    diff += static_cast<std::size_t>(__builtin_popcount(ka[i] ^ kb[i]));
  EXPECT_GT(diff, 80u);
  EXPECT_LT(diff, 176u);
}

TEST(A51Test, KeySensitivity) {
  A51 a(from_hex("1223456789abcdef"), 0x134);
  A51 b(from_hex("1223456789abcdee"), 0x134);  // one key bit flipped
  EXPECT_NE(a.keystream(32), b.keystream(32));
}

TEST(A51Test, EncryptDecryptSymmetry) {
  HmacDrbg rng(1);
  const Bytes key = rng.bytes(8);
  const Bytes voice = rng.bytes(200);
  const Bytes ct = a51_crypt(key, 42, voice);
  EXPECT_NE(ct, voice);
  EXPECT_EQ(a51_crypt(key, 42, ct), voice);
  // Decrypting under the wrong frame number fails.
  EXPECT_NE(a51_crypt(key, 43, ct), voice);
}

TEST(A51Test, FrameKeystreamShape) {
  const auto fk = A51::frame_keystream(from_hex("0011223344556677"), 7);
  ASSERT_EQ(fk.downlink.size(), 15u);
  ASSERT_EQ(fk.uplink.size(), 15u);
  // Bits 114..119 of each burst are unused -> low 6 bits of last byte 0.
  EXPECT_EQ(fk.downlink[14] & 0x3F, 0);
  EXPECT_EQ(fk.uplink[14] & 0x3F, 0);
  EXPECT_NE(fk.downlink, fk.uplink);
}

TEST(A51Test, KeystreamIsBalanced) {
  // Sanity: ~50% ones over a long stream.
  A51 gen(from_hex("0f1e2d3c4b5a6978"), 0x100);
  std::size_t ones = 0;
  constexpr std::size_t kBits = 20000;
  for (std::size_t i = 0; i < kBits; ++i)
    ones += static_cast<std::size_t>(gen.next_bit());
  const double frac = static_cast<double>(ones) / kBits;
  EXPECT_GT(frac, 0.47);
  EXPECT_LT(frac, 0.53);
}

TEST(A51Test, NoIntegrityProtection) {
  // The weakness the paper's bearer-security point rests on: A5/1 is a
  // pure keystream — bit flips pass through to the plaintext undetected
  // (same class of flaw as WEP, without even a checksum).
  HmacDrbg rng(2);
  const Bytes key = rng.bytes(8);
  const Bytes msg = to_bytes("TRANSFER 0001 EUR");
  Bytes ct = a51_crypt(key, 9, msg);
  ct[12] ^= '1' ^ '9';  // the amount digit
  const Bytes tampered = a51_crypt(key, 9, ct);
  EXPECT_EQ(tampered, to_bytes("TRANSFER 0009 EUR"));
}

TEST(A51Test, Validation) {
  EXPECT_THROW(A51(Bytes(7), 0), std::invalid_argument);
  EXPECT_THROW(A51(Bytes(8), 1u << 22), std::invalid_argument);
}

TEST(A51Test, SixtyFourBitKeySpaceNote) {
  // Kc is 64 bits (and in deployed GSM, 10 of them were often zeroed).
  // Nothing to execute here beyond the type: the key is 8 bytes, far
  // below the paper-era recommendation for long-term secrets — which is
  // why Section 2 pushes security to higher protocol layers.
  EXPECT_EQ(Bytes(8).size() * 8, 64u);
}

}  // namespace
}  // namespace mapsec::crypto
