// Differential tests for the runtime ISA dispatch layer: every primitive
// the dispatcher covers is swept over randomized inputs (sizes 0..~4 KiB,
// random keys/nonces/AAD, several modulus widths) and must produce
// byte-identical output under the accelerated and forced-scalar backends.
// KATs re-run under both backends pin the pair to the standards, not just
// to each other. On hardware without any ISA kernels both arms select the
// scalar backend and the comparisons degenerate to self-consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/batch_modexp.hpp"
#include "mapsec/crypto/bignum.hpp"
#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/crc32.hpp"
#include "mapsec/crypto/dispatch.hpp"
#include "mapsec/crypto/hmac.hpp"
#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/mont_cache.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {
namespace {

// Pins the dispatch mode for one scope and restores the previous mode on
// exit (so the suite behaves identically under MAPSEC_FORCE_SCALAR=1 runs
// apart from which backend the "accelerated" arm resolves to).
class ScopedBackend {
 public:
  explicit ScopedBackend(bool scalar)
      : prior_(dispatch::scalar_forced()) {
    dispatch::force_scalar(scalar);
  }
  ~ScopedBackend() { dispatch::force_scalar(prior_); }

 private:
  bool prior_;
};

Bytes random_bytes(std::mt19937& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// Run `fn` once under the forced-scalar backend and once under the
// auto-selected backend, returning both results.
template <typename Fn>
auto both_backends(Fn&& fn) {
  ScopedBackend scalar_scope(true);
  auto scalar = fn();
  dispatch::force_scalar(false);
  auto accel = fn();
  return std::pair(std::move(scalar), std::move(accel));
}

TEST(DispatchTest, CapabilitiesReportsEveryPrimitiveAndHonoursForce) {
  const auto caps = dispatch::capabilities();
  std::vector<std::string> names;
  for (const auto& p : caps.primitives) names.push_back(p.primitive);
  EXPECT_NE(std::find(names.begin(), names.end(), "aes"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sha1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sha256"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "crc32"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "modexp-cios"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "modexp-batch"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sha256-mb"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "aes-mb"), names.end());

  ScopedBackend scalar_scope(true);
  const auto forced = dispatch::capabilities();
  EXPECT_TRUE(forced.forced_scalar);
  for (const auto& p : forced.primitives) {
    EXPECT_EQ(p.backend, "scalar") << p.primitive;
    EXPECT_FALSE(p.accelerated) << p.primitive;
  }
  EXPECT_NE(dispatch::capabilities_summary().find("forced_scalar=on"),
            std::string::npos);
}

TEST(DispatchTest, AesBlockMatchesScalarAllKeySizes) {
  std::mt19937 rng(0xA15u);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    for (int iter = 0; iter < 200; ++iter) {
      const Bytes key = random_bytes(rng, key_len);
      const Bytes pt = random_bytes(rng, 16);
      const auto [s, a] = both_backends([&] {
        const Aes aes(key);
        Bytes ct(16), rt(16);
        aes.encrypt_block(pt.data(), ct.data());
        aes.decrypt_block(ct.data(), rt.data());
        EXPECT_EQ(rt, pt);
        return ct;
      });
      ASSERT_EQ(s, a) << "key_len=" << key_len << " iter=" << iter;
    }
  }
}

TEST(DispatchTest, AesKatBothBackends) {
  // FIPS-197 C.1: the same known answer must come out of both backends.
  const Bytes key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const Bytes pt = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const Bytes expect = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const auto [s, a] = both_backends([&] {
    const Aes aes(key);
    Bytes ct(16);
    aes.encrypt_block(pt.data(), ct.data());
    return ct;
  });
  EXPECT_EQ(s, expect);
  EXPECT_EQ(a, expect);
}

TEST(DispatchTest, CtrCryptMatchesScalarAcrossSizes) {
  std::mt19937 rng(0xC7Cu);
  for (int iter = 0; iter < 120; ++iter) {
    const std::size_t n = rng() % 4097;
    const Bytes key = random_bytes(rng, 16);
    const Bytes ctr = random_bytes(rng, 16);
    const Bytes data = random_bytes(rng, n);
    const auto [s, a] = both_backends([&] {
      const BlockCipherAdapter<Aes> cipher{Aes(key)};
      return ctr_crypt(cipher, ctr, data);
    });
    ASSERT_EQ(s, a) << "n=" << n;
  }
}

TEST(DispatchTest, CbcMacMatchesScalarAcrossSizes) {
  std::mt19937 rng(0xCBCu);
  for (int iter = 0; iter < 120; ++iter) {
    const std::size_t n = rng() % 4097;
    const Bytes key = random_bytes(rng, 16);
    const Bytes data = random_bytes(rng, n);
    const auto [s, a] = both_backends([&] {
      const BlockCipherAdapter<Aes> cipher{Aes(key)};
      return cbc_mac(cipher, data);
    });
    ASSERT_EQ(s, a) << "n=" << n;
  }
}

TEST(DispatchTest, CbcRoundTripMatchesScalarAcrossSizes) {
  std::mt19937 rng(0xCBDu);
  for (int iter = 0; iter < 120; ++iter) {
    const std::size_t n = rng() % 4097;
    const Bytes key = random_bytes(rng, 16);
    const Bytes iv = random_bytes(rng, 16);
    const Bytes pt = random_bytes(rng, n);
    const auto [s, a] = both_backends([&] {
      const BlockCipherAdapter<Aes> cipher{Aes(key)};
      Bytes ct = cbc_encrypt(cipher, iv, pt);
      const Bytes rt = cbc_decrypt(cipher, iv, ct);
      EXPECT_EQ(rt, pt);
      return ct;
    });
    ASSERT_EQ(s, a) << "n=" << n;
  }
}

TEST(DispatchTest, CcmSealOpenMatchesScalarAcrossSizes) {
  std::mt19937 rng(0xCC3u);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = rng() % 4097;
    const std::size_t aad_len = rng() % 64;
    const Bytes key = random_bytes(rng, 16);
    const Bytes nonce = random_bytes(rng, kCcmNonceLen);
    const Bytes aad = random_bytes(rng, aad_len);
    const Bytes pt = random_bytes(rng, n);
    const auto [s, a] = both_backends([&] {
      const BlockCipherAdapter<Aes> cipher{Aes(key)};
      Bytes sealed = ccm_seal(cipher, nonce, aad, pt);
      const auto opened = ccm_open(cipher, nonce, aad, sealed);
      EXPECT_TRUE(opened.has_value());
      EXPECT_EQ(*opened, pt);
      return sealed;
    });
    ASSERT_EQ(s, a) << "n=" << n << " aad=" << aad_len;
  }
}

TEST(DispatchTest, HashesMatchScalarAcrossSizesAndSplits) {
  std::mt19937 rng(0x5AAu);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t n = rng() % 4097;
    const Bytes data = random_bytes(rng, n);
    // Random split exercises the buffered-partial-block path too.
    const std::size_t split = n == 0 ? 0 : rng() % n;
    const auto [s1, a1] = both_backends([&] {
      Sha1 h;
      h.update(ConstBytes(data).subspan(0, split));
      h.update(ConstBytes(data).subspan(split));
      return h.finish();
    });
    ASSERT_EQ(s1, a1) << "sha1 n=" << n;
    const auto [s2, a2] = both_backends([&] {
      Sha256 h;
      h.update(ConstBytes(data).subspan(0, split));
      h.update(ConstBytes(data).subspan(split));
      return h.finish();
    });
    ASSERT_EQ(s2, a2) << "sha256 n=" << n;
  }
}

TEST(DispatchTest, ShaKatBothBackends) {
  // FIPS 180 "abc" vectors under both backends.
  const Bytes abc = {'a', 'b', 'c'};
  const Bytes sha1_expect = {0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81,
                             0x6a, 0xba, 0x3e, 0x25, 0x71, 0x78, 0x50,
                             0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d};
  const Bytes sha256_expect = {
      0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40,
      0xde, 0x5d, 0xae, 0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17,
      0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61, 0xf2, 0x00, 0x15, 0xad};
  const auto [s1, a1] = both_backends([&] { return Sha1::hash(abc); });
  EXPECT_EQ(s1, sha1_expect);
  EXPECT_EQ(a1, sha1_expect);
  const auto [s2, a2] = both_backends([&] { return Sha256::hash(abc); });
  EXPECT_EQ(s2, sha256_expect);
  EXPECT_EQ(a2, sha256_expect);
}

TEST(DispatchTest, HmacMatchesScalar) {
  std::mt19937 rng(0x43Au);
  for (int iter = 0; iter < 60; ++iter) {
    const Bytes key = random_bytes(rng, rng() % 100);
    const Bytes msg = random_bytes(rng, rng() % 4097);
    const auto [s, a] = both_backends([&] {
      HmacSha1 mac(key);
      mac.update(msg);
      return mac.finish();
    });
    ASSERT_EQ(s, a);
  }
}

TEST(DispatchTest, Crc32MatchesScalarAcrossSizes) {
  std::mt19937 rng(0xC3Cu);
  // Dense small sizes (fold-entry boundaries at 16/32/48/64 bytes), then
  // random large ones, including streamed updates.
  for (std::size_t n = 0; n < 160; ++n) {
    const Bytes data = random_bytes(rng, n);
    const auto [s, a] = both_backends([&] { return crc32(data); });
    ASSERT_EQ(s, a) << "n=" << n;
  }
  for (int iter = 0; iter < 80; ++iter) {
    const std::size_t n = rng() % 4097;
    const Bytes data = random_bytes(rng, n);
    const std::size_t split = n == 0 ? 0 : rng() % n;
    const auto [s, a] = both_backends([&] {
      std::uint32_t c = crc32_update(0, ConstBytes(data).subspan(0, split));
      return crc32_update(c, ConstBytes(data).subspan(split));
    });
    ASSERT_EQ(s, a) << "n=" << n;
  }
}

TEST(DispatchTest, Crc32Kat) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926, plus a
  // >64-byte vector so the folding path is on the hook for the KAT too.
  const char* s9 = "123456789";
  const Bytes v9(s9, s9 + 9);
  Bytes v100(100);
  for (std::size_t i = 0; i < v100.size(); ++i)
    v100[i] = static_cast<std::uint8_t>(i);
  const auto [s, a] = both_backends([&] {
    return std::pair(crc32(v9), crc32(v100));
  });
  EXPECT_EQ(s.first, 0xCBF43926u);
  EXPECT_EQ(a.first, 0xCBF43926u);
  EXPECT_EQ(s.second, a.second);
}

BigInt random_odd_modulus(std::mt19937& rng, std::size_t limbs32) {
  std::vector<std::uint32_t> w(limbs32);
  for (auto& l : w) l = rng();
  w.back() |= 0x80000000u;  // full width
  w.front() |= 1u;          // odd
  return BigInt::from_limbs(std::move(w));
}

BigInt random_below(std::mt19937& rng, const BigInt& n) {
  std::vector<std::uint32_t> w(n.limbs().size());
  for (auto& l : w) l = rng();
  return BigInt::from_limbs(std::move(w)) % n;
}

TEST(DispatchTest, ModExpMatchesScalarAcrossWidthsWithIdenticalStats) {
  std::mt19937 rng(0x40DU);
  // 8/16/32 32-bit limbs hit the unrolled kw=4/8/16 CIOS specializations
  // (256/512/1024-bit: the DH and RSA-CRT widths); 5 limbs exercises the
  // radix-32 fallback engine, 12 limbs the generic variable-width loop.
  for (const std::size_t limbs : {8u, 16u, 32u, 5u, 12u}) {
    for (int iter = 0; iter < 6; ++iter) {
      const BigInt n = random_odd_modulus(rng, limbs);
      const BigInt base = random_below(rng, n);
      const BigInt e = random_below(rng, n);
      const auto [s, a] = both_backends([&] {
        const Montgomery mont(n);
        MontStats stats;
        BigInt r = mont.exp(base, e, &stats);
        return std::pair(std::move(r), stats);
      });
      ASSERT_EQ(s.first, a.first) << "limbs=" << limbs;
      // The dispatched kernel must not change the data-dependent
      // extra-reduction behaviour the timing attack measures.
      EXPECT_EQ(s.second.extra_reductions, a.second.extra_reductions);
      EXPECT_EQ(s.second.squares, a.second.squares);
      EXPECT_EQ(s.second.mults, a.second.mults);

      const auto [sf, af] = both_backends([&] {
        const Montgomery mont(n);
        return mont.exp_fixed_window(base, e);
      });
      ASSERT_EQ(sf, af) << "fixed-window limbs=" << limbs;
    }
  }
}

// ---- batched data plane ---------------------------------------------------

TEST(DispatchTest, BatchModExpMatchesSequentialExpAcrossWidths) {
  std::mt19937 rng(0xBA7C4u);
  // Widths 1..9 cover the degenerate single-lane batch, the full 4-wide
  // kernel windows, and ragged tails; limb mixes put unrolled kw=4/8/16
  // CIOS widths, the generic variable-width loop (12 limbs) and the
  // radix-32 fallback (5 limbs) in the SAME batch so the width-grouping
  // path is exercised, not just homogeneous batches.
  const std::vector<std::size_t> limb_pool = {8, 16, 32, 5, 12};
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t width = 1 + rng() % 9;
    std::vector<BigInt> mods, bases, exps;
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t limbs = limb_pool[rng() % limb_pool.size()];
      BigInt n = random_odd_modulus(rng, limbs);
      bases.push_back(random_below(rng, n));
      // Occasional zero exponent hits the trivial path (result 1 % n).
      exps.push_back(rng() % 7 == 0 ? BigInt(0) : random_below(rng, n));
      mods.push_back(std::move(n));
    }
    const auto [s, a] = both_backends([&] {
      std::vector<Montgomery> monts;
      monts.reserve(width);
      for (const BigInt& n : mods) monts.emplace_back(n);
      std::vector<BatchModExp::Request> reqs(width);
      std::vector<MontStats> batch_stats(width);
      for (std::size_t i = 0; i < width; ++i)
        reqs[i] = {&monts[i], bases[i], exps[i], &batch_stats[i]};
      std::vector<BigInt> batched = BatchModExp::run(reqs);
      // The sequential reference inside the same backend scope.
      for (std::size_t i = 0; i < width; ++i) {
        MontStats seq_stats;
        const BigInt ref = monts[i].exp(bases[i], exps[i], &seq_stats);
        EXPECT_EQ(batched[i], ref) << "lane " << i;
        EXPECT_EQ(batch_stats[i].squares, seq_stats.squares) << "lane " << i;
        EXPECT_EQ(batch_stats[i].mults, seq_stats.mults) << "lane " << i;
        EXPECT_EQ(batch_stats[i].extra_reductions, seq_stats.extra_reductions)
            << "lane " << i;
      }
      return batched;
    });
    ASSERT_EQ(s, a) << "width=" << width << " iter=" << iter;
  }
}

TEST(DispatchTest, RsaBatchCrtMatchesSequential) {
  HmacDrbg keygen(0xBA7C5);
  const RsaKeyPair k1 = rsa_generate(keygen, 512);
  const RsaKeyPair k2 = rsa_generate(keygen, 512);
  std::mt19937 rng(0xBA7C6u);
  for (const std::size_t width : {1u, 2u, 4u, 7u}) {
    std::vector<const RsaPrivateKey*> keys;
    std::vector<BigInt> cts;
    for (std::size_t i = 0; i < width; ++i) {
      const RsaPrivateKey& key = (rng() % 2 == 0) ? k1.priv : k2.priv;
      keys.push_back(&key);
      cts.push_back(random_below(rng, key.n));
    }
    const auto [s, a] = both_backends([&] {
      std::vector<RsaPrivateBatchOp> ops(width);
      std::vector<MontStats> batch_stats(width);
      for (std::size_t i = 0; i < width; ++i)
        ops[i] = {keys[i], cts[i], &batch_stats[i]};
      MontCache cache;
      std::vector<BigInt> batched = rsa_private_op_crt_batch(ops, &cache);
      std::vector<BigInt> no_cache = rsa_private_op_crt_batch(ops);
      EXPECT_EQ(batched, no_cache);
      for (std::size_t i = 0; i < width; ++i) {
        MontStats seq_stats;
        EXPECT_EQ(batched[i],
                  rsa_private_op_crt(*keys[i], cts[i], &seq_stats))
            << "lane " << i;
        EXPECT_EQ(batch_stats[i].extra_reductions,
                  2 * seq_stats.extra_reductions)
            << "lane " << i;  // two batch runs above, one sequential
      }
      return batched;
    });
    ASSERT_EQ(s, a) << "width=" << width;
  }
  // Out-of-range ciphertexts are rejected exactly like the single op.
  std::vector<RsaPrivateBatchOp> bad(1);
  bad[0] = {&k1.priv, k1.priv.n, nullptr};
  EXPECT_THROW(rsa_private_op_crt_batch(bad), std::invalid_argument);
}

TEST(DispatchTest, Sha256ManyMatchesSingleLaneHash) {
  std::mt19937 rng(0x5AB8u);
  for (int iter = 0; iter < 30; ++iter) {
    // 0..19 lanes: empty batches, sub-width batches, ragged multi-pass
    // batches with wildly different lane lengths (0..~4 KiB).
    const std::size_t lanes = rng() % 20;
    std::vector<Bytes> msgs;
    for (std::size_t i = 0; i < lanes; ++i)
      msgs.push_back(random_bytes(rng, rng() % 4097));
    const auto [s, a] = both_backends([&] {
      std::vector<ConstBytes> views(msgs.begin(), msgs.end());
      std::vector<Bytes> out = sha256_many(views);
      EXPECT_EQ(out.size(), msgs.size());
      for (std::size_t i = 0; i < msgs.size(); ++i)
        EXPECT_EQ(out[i], Sha256::hash(msgs[i])) << "lane " << i;
      return out;
    });
    ASSERT_EQ(s, a) << "lanes=" << lanes;
  }
}

TEST(DispatchTest, CcmBatchMatchesSingleOpAndRejectsTamper) {
  std::mt19937 rng(0xCC4u);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t lanes = 1 + rng() % 9;
    std::vector<Bytes> keys, nonces, aads, pts;
    std::vector<std::size_t> tag_lens;
    for (std::size_t i = 0; i < lanes; ++i) {
      keys.push_back(random_bytes(rng, 16));
      nonces.push_back(random_bytes(rng, kCcmNonceLen));
      aads.push_back(random_bytes(rng, rng() % 48));
      pts.push_back(random_bytes(rng, rng() % 1025));
      tag_lens.push_back(std::vector<std::size_t>{4, 8, 16}[rng() % 3]);
    }
    const auto [s, a] = both_backends([&] {
      std::vector<BlockCipherAdapter<Aes>> ciphers;
      ciphers.reserve(lanes);
      for (const Bytes& key : keys)
        ciphers.push_back(BlockCipherAdapter<Aes>{Aes(key)});
      std::vector<CcmSealOp> seal_ops(lanes);
      for (std::size_t i = 0; i < lanes; ++i)
        seal_ops[i] = {&ciphers[i], nonces[i], aads[i], pts[i], tag_lens[i]};
      std::vector<Bytes> sealed = ccm_seal_batch(seal_ops);
      std::vector<CcmOpenOp> open_ops(lanes);
      for (std::size_t i = 0; i < lanes; ++i)
        open_ops[i] = {&ciphers[i], nonces[i], aads[i], sealed[i],
                       tag_lens[i]};
      const auto opened = ccm_open_batch(open_ops);
      for (std::size_t i = 0; i < lanes; ++i) {
        EXPECT_EQ(sealed[i], ccm_seal(ciphers[i], nonces[i], aads[i], pts[i],
                                      tag_lens[i]))
            << "lane " << i;
        EXPECT_TRUE(opened[i].has_value()) << "lane " << i;
        if (opened[i]) EXPECT_EQ(*opened[i], pts[i]) << "lane " << i;
      }
      // Flip one byte in one lane: only that lane fails, neighbours in
      // the same multi-buffer pass stay intact.
      const std::size_t victim = rng() % lanes;
      Bytes tampered = sealed[victim];
      tampered[rng() % tampered.size()] ^= 0x01;
      open_ops[victim].sealed = tampered;
      const auto reopened = ccm_open_batch(open_ops);
      for (std::size_t i = 0; i < lanes; ++i)
        EXPECT_EQ(reopened[i].has_value(), i != victim) << "lane " << i;
      return sealed;
    });
    ASSERT_EQ(s, a) << "lanes=" << lanes << " iter=" << iter;
  }
}

TEST(DispatchTest, RuntimeToggleAffectsExistingObjects) {
  // Dispatch is consulted per call: a cipher built while accelerated must
  // produce the same bytes after the process is pinned to scalar.
  std::mt19937 rng(0x706u);
  const Bytes key = random_bytes(rng, 16);
  const Bytes pt = random_bytes(rng, 16);
  const Aes aes(key);
  Bytes ct_auto(16), ct_scalar(16);
  aes.encrypt_block(pt.data(), ct_auto.data());
  {
    ScopedBackend scalar_scope(true);
    aes.encrypt_block(pt.data(), ct_scalar.data());
  }
  EXPECT_EQ(ct_auto, ct_scalar);
}

}  // namespace
}  // namespace mapsec::crypto
