// RSA: key generation invariants, private-op strategies, PKCS#1 padding.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/mont_cache.hpp"
#include "mapsec/crypto/rsa.hpp"

namespace mapsec::crypto {
namespace {

// Shared fixture: generating keys is the slow part, do it once per size.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HmacDrbg rng(0xA5A5);
    key512_ = new RsaKeyPair(rsa_generate(rng, 512));
    key1024_ = new RsaKeyPair(rsa_generate(rng, 1024));
  }
  static void TearDownTestSuite() {
    delete key512_;
    delete key1024_;
    key512_ = nullptr;
    key1024_ = nullptr;
  }

  static RsaKeyPair* key512_;
  static RsaKeyPair* key1024_;
};

RsaKeyPair* RsaTest::key512_ = nullptr;
RsaKeyPair* RsaTest::key1024_ = nullptr;

TEST_F(RsaTest, KeyStructure) {
  const auto& k = key1024_->priv;
  EXPECT_EQ(k.n.bit_length(), 1024u);
  EXPECT_EQ(k.p * k.q, k.n);
  EXPECT_GT(k.p, k.q);
  EXPECT_EQ((k.qinv * k.q) % k.p, BigInt(1));
  EXPECT_EQ(k.dp, k.d % (k.p - BigInt(1)));
  EXPECT_EQ(k.dq, k.d % (k.q - BigInt(1)));
  // e*d = 1 mod lcm is implied by e*d = 1 mod phi; check phi version.
  const BigInt phi = (k.p - BigInt(1)) * (k.q - BigInt(1));
  EXPECT_EQ((k.e * k.d) % phi, BigInt(1));
}

TEST_F(RsaTest, PublicPrivateRoundTrip) {
  HmacDrbg rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const BigInt m = BigInt::random_below(rng, key512_->pub.n);
    const BigInt c = rsa_public_op(key512_->pub, m);
    EXPECT_EQ(rsa_private_op(key512_->priv, c), m);
  }
}

TEST_F(RsaTest, CrtMatchesPlain) {
  HmacDrbg rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const BigInt c = BigInt::random_below(rng, key1024_->pub.n);
    EXPECT_EQ(rsa_private_op_crt(key1024_->priv, c),
              rsa_private_op(key1024_->priv, c));
  }
}

TEST_F(RsaTest, CrtCheckedMatches) {
  HmacDrbg rng(3);
  const BigInt c = BigInt::random_below(rng, key1024_->pub.n);
  EXPECT_EQ(rsa_private_op_crt_checked(key1024_->priv, c),
            rsa_private_op(key1024_->priv, c));
}

TEST_F(RsaTest, BlindedMatches) {
  HmacDrbg rng(4);
  for (int trial = 0; trial < 3; ++trial) {
    const BigInt c = BigInt::random_below(rng, key512_->pub.n);
    EXPECT_EQ(rsa_private_op_blinded(key512_->priv, c, rng),
              rsa_private_op(key512_->priv, c));
  }
}

TEST_F(RsaTest, CrtIsCheaperThanPlain) {
  // The CRT speedup claim (~4x): compare Montgomery multiply counts.
  HmacDrbg rng(5);
  const BigInt c = BigInt::random_below(rng, key1024_->pub.n);
  MontStats plain, crt;
  rsa_private_op(key1024_->priv, c, &plain);
  rsa_private_op_crt(key1024_->priv, c, &crt);
  // Each CRT half has ~half the exponent bits; with half-size operands
  // each multiply is ~4x cheaper, but in raw op counts CRT does about the
  // same number of multiplies; the win shows as halved operand size. Here
  // we check the op-count structure: crt ops ~= plain ops.
  EXPECT_GT(plain.squares, 1000u);
  EXPECT_GT(crt.squares, 900u);
  EXPECT_LT(crt.squares, plain.squares * 11 / 10);
}

TEST_F(RsaTest, Pkcs1EncryptDecryptRoundTrip) {
  HmacDrbg rng(6);
  const Bytes msg = to_bytes("premaster-secret-48-bytes-xxxxxxxxxxxxxxxxxxxx");
  const Bytes ct = rsa_encrypt_pkcs1(key1024_->pub, msg, rng);
  EXPECT_EQ(ct.size(), key1024_->pub.modulus_bytes());
  const auto pt = rsa_decrypt_pkcs1(key1024_->priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, Pkcs1RandomisedPadding) {
  HmacDrbg rng(7);
  const Bytes msg = to_bytes("same message");
  const Bytes c1 = rsa_encrypt_pkcs1(key1024_->pub, msg, rng);
  const Bytes c2 = rsa_encrypt_pkcs1(key1024_->pub, msg, rng);
  EXPECT_NE(c1, c2);  // type-2 padding must randomise
}

TEST_F(RsaTest, Pkcs1RejectsOversizeMessage) {
  HmacDrbg rng(8);
  const Bytes big(key512_->pub.modulus_bytes() - 10, 0x41);
  EXPECT_THROW(rsa_encrypt_pkcs1(key512_->pub, big, rng),
               std::invalid_argument);
}

TEST_F(RsaTest, Pkcs1DecryptRejectsGarbage) {
  HmacDrbg rng(9);
  Bytes garbage = rng.bytes(key1024_->pub.modulus_bytes());
  garbage[0] = 0;  // keep below modulus
  EXPECT_FALSE(rsa_decrypt_pkcs1(key1024_->priv, garbage).has_value());
  EXPECT_FALSE(rsa_decrypt_pkcs1(key1024_->priv, Bytes(5)).has_value());
}

TEST_F(RsaTest, Pkcs1DecryptRejectsTamperedCiphertext) {
  HmacDrbg rng(10);
  const Bytes msg = to_bytes("tamper me");
  Bytes ct = rsa_encrypt_pkcs1(key1024_->pub, msg, rng);
  ct[ct.size() / 2] ^= 1;
  const auto pt = rsa_decrypt_pkcs1(key1024_->priv, ct);
  if (pt.has_value()) {
    EXPECT_NE(*pt, msg);  // overwhelmingly likely: nullopt
  }
}

TEST_F(RsaTest, SignVerifySha1) {
  const Bytes msg = to_bytes("handshake transcript");
  const Bytes sig = rsa_sign_sha1(key1024_->priv, msg);
  EXPECT_TRUE(rsa_verify_sha1(key1024_->pub, msg, sig));
  EXPECT_FALSE(rsa_verify_sha1(key1024_->pub, to_bytes("other"), sig));
  Bytes bad = sig;
  bad[10] ^= 1;
  EXPECT_FALSE(rsa_verify_sha1(key1024_->pub, msg, bad));
}

TEST_F(RsaTest, SignVerifySha256) {
  const Bytes msg = to_bytes("boot image");
  const Bytes sig = rsa_sign_sha256(key1024_->priv, msg);
  EXPECT_TRUE(rsa_verify_sha256(key1024_->pub, msg, sig));
  EXPECT_FALSE(rsa_verify_sha256(key1024_->pub, msg,
                                 rsa_sign_sha256(key512_->priv, msg)));
}

TEST_F(RsaTest, SignatureIsDeterministic) {
  const Bytes msg = to_bytes("deterministic");
  EXPECT_EQ(rsa_sign_sha1(key1024_->priv, msg),
            rsa_sign_sha1(key1024_->priv, msg));
}

TEST_F(RsaTest, WrongKeyCannotVerify) {
  const Bytes msg = to_bytes("cross-key");
  const Bytes sig = rsa_sign_sha1(key512_->priv, msg);
  EXPECT_FALSE(rsa_verify_sha1(key1024_->pub, msg, sig));
}

TEST_F(RsaTest, RawOpsRejectOutOfRange) {
  EXPECT_THROW(rsa_public_op(key512_->pub, key512_->pub.n),
               std::invalid_argument);
  EXPECT_THROW(rsa_private_op(key512_->priv, key512_->priv.n),
               std::invalid_argument);
}

TEST(RsaGenerateTest, RejectsBadSizes) {
  HmacDrbg rng(11);
  EXPECT_THROW(rsa_generate(rng, 32), std::invalid_argument);
  EXPECT_THROW(rsa_generate(rng, 129), std::invalid_argument);
}

TEST(RsaGenerateTest, DistinctKeysFromDistinctSeeds) {
  HmacDrbg a(1), b(2);
  EXPECT_NE(rsa_generate(a, 256).pub.n, rsa_generate(b, 256).pub.n);
}

// ---- per-key Montgomery context cache -------------------------------------

TEST_F(RsaTest, MontCacheOutputsBitIdentical) {
  HmacDrbg rng(0xCAC4E);
  MontCache cache;
  for (int i = 0; i < 3; ++i) {
    const Bytes msg = rng.bytes(20 + i);
    const Bytes plain_sig = rsa_sign_sha1(key512_->priv, msg);
    const Bytes cached_sig = rsa_sign_sha1(key512_->priv, msg, &cache);
    EXPECT_EQ(plain_sig, cached_sig);
    EXPECT_TRUE(rsa_verify_sha1(key512_->pub, msg, cached_sig, &cache));
  }
  // The contexts (p and q for CRT signing, n for verification) are each
  // constructed exactly once; every later op under the same key hits.
  EXPECT_EQ(cache.misses(), cache.size());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GE(cache.size(), 2u);
}

TEST_F(RsaTest, MontCacheDecryptRoundTrip) {
  HmacDrbg rng(0xCAC4F);
  MontCache cache;
  const Bytes msg = rng.bytes(24);
  const Bytes ct = rsa_encrypt_pkcs1(key512_->pub, msg, rng);
  const auto plain = rsa_decrypt_pkcs1(key512_->priv, ct);
  const auto cached = rsa_decrypt_pkcs1(key512_->priv, ct, &cache);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*plain, *cached);
  EXPECT_EQ(*cached, msg);
}

TEST_F(RsaTest, MontCacheServesMultipleKeys) {
  HmacDrbg rng(0xCAC50);
  MontCache cache;
  const Bytes msg = rng.bytes(16);
  const Bytes sig512 = rsa_sign_sha1(key512_->priv, msg, &cache);
  const Bytes sig1024 = rsa_sign_sha1(key1024_->priv, msg, &cache);
  EXPECT_TRUE(rsa_verify_sha1(key512_->pub, msg, sig512, &cache));
  EXPECT_TRUE(rsa_verify_sha1(key1024_->pub, msg, sig1024, &cache));
  const std::size_t entries = cache.size();
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(entries, 3u);  // two keys' CRT primes + two public moduli
}

}  // namespace
}  // namespace mapsec::crypto
