// BigInt arithmetic: known answers, algebraic properties, and the
// Montgomery engine against the generic path.
#include <gtest/gtest.h>

#include "mapsec/crypto/bignum.hpp"
#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/prime.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {
namespace {

TEST(BigIntTest, ConstructionAndConversion) {
  EXPECT_TRUE(BigInt().is_zero());
  EXPECT_EQ(BigInt(0).to_u64(), 0u);
  EXPECT_EQ(BigInt(1).to_u64(), 1u);
  EXPECT_EQ(BigInt(0xFFFFFFFFFFFFFFFFull).to_u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(BigInt::from_hex("deadbeef").to_u64(), 0xdeadbeefu);
  EXPECT_EQ(BigInt::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("123456789abcdef0123").to_hex(),
            "123456789abcdef0123");
}

TEST(BigIntTest, BytesRoundTrip) {
  const Bytes b = from_hex("0102030405060708090a0b0c0d");
  const BigInt x = BigInt::from_bytes_be(b);
  EXPECT_EQ(x.to_bytes_be(), b);
  EXPECT_EQ(x.to_bytes_be(16).size(), 16u);
  EXPECT_EQ(x.to_bytes_be(16)[0], 0u);
  // Leading zeros in input are dropped in minimal output.
  EXPECT_EQ(BigInt::from_bytes_be(from_hex("0000ff")).to_bytes_be(),
            from_hex("ff"));
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt::from_hex("100000000"), BigInt(0xFFFFFFFFull));
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_LT(BigInt(), BigInt(1));
}

TEST(BigIntTest, AddSubKnownAnswers) {
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).to_hex(), "1000000000000000000000000");
  EXPECT_EQ((a - a).to_hex(), "0");
  EXPECT_EQ((BigInt::from_hex("1000000000000000000000000") - BigInt(1)),
            a);
  EXPECT_THROW(BigInt(1) - BigInt(2), std::underflow_error);
}

TEST(BigIntTest, MulKnownAnswers) {
  EXPECT_EQ((BigInt::from_hex("ffffffff") * BigInt::from_hex("ffffffff"))
                .to_hex(),
            "fffffffe00000001");
  EXPECT_EQ((BigInt::from_hex("123456789abcdef") *
             BigInt::from_hex("fedcba987654321"))
                .to_hex(),
            "121fa00ad77d7422236d88fe5618cf");
  EXPECT_TRUE((BigInt(0) * BigInt::from_hex("abc")).is_zero());
}

TEST(BigIntTest, DivModKnownAnswers) {
  BigInt q, r;
  BigInt::divmod(BigInt(100), BigInt(7), q, r);
  EXPECT_EQ(q.to_u64(), 14u);
  EXPECT_EQ(r.to_u64(), 2u);

  // Multi-limb divisor.
  const BigInt a = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  const BigInt b = BigInt::from_hex("fedcba9876543211");
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);

  EXPECT_THROW(BigInt::divmod(a, BigInt(), q, r), std::domain_error);
}

TEST(BigIntTest, DivModPropertyRandom) {
  HmacDrbg rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t abits = 1 + rng.below(512);
    const std::size_t bbits = 1 + rng.below(256);
    const BigInt a = BigInt::random_bits(rng, abits);
    const BigInt b = BigInt::random_bits(rng, bbits);
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a) << "a=" << a.to_hex() << " b=" << b.to_hex();
    EXPECT_LT(r, b);
  }
}

TEST(BigIntTest, KnuthD6CornerCase) {
  // A case forcing the rare "add back" branch of Algorithm D: divisor with
  // top limb 0x80000000 and dividend crafted so qhat overshoots.
  const BigInt a = BigInt::from_hex("7fffffff800000010000000000000000");
  const BigInt b = BigInt::from_hex("800000008000000200000005");
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigIntTest, Shifts) {
  const BigInt x = BigInt::from_hex("1234");
  EXPECT_EQ((x << 4).to_hex(), "12340");
  EXPECT_EQ((x << 32).to_hex(), "123400000000");
  EXPECT_EQ((x >> 4).to_hex(), "123");
  EXPECT_EQ((x >> 13).to_hex(), "0");
  EXPECT_EQ(((x << 100) >> 100), x);
}

TEST(BigIntTest, BitAccess) {
  const BigInt x = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(x.bit(0));
  EXPECT_FALSE(x.bit(1));
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(64));
  EXPECT_EQ(x.bit_length(), 64u);
  EXPECT_EQ(BigInt().bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
}

TEST(BigIntTest, DecimalOutput) {
  EXPECT_EQ(BigInt(0).to_dec(), "0");
  EXPECT_EQ(BigInt(1234567890123456789ull).to_dec(), "1234567890123456789");
  EXPECT_EQ(BigInt::from_hex("100000000000000000000000000000000").to_dec(),
            "340282366920938463463374607431768211456");  // 2^128
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
  // gcd(a*g, b*g) == g * gcd(a,b)
  const BigInt g = BigInt::from_hex("10001");
  EXPECT_EQ(BigInt::gcd(BigInt(12) * g, BigInt(18) * g), BigInt(6) * g);
}

TEST(BigIntTest, ModInverse) {
  EXPECT_EQ(BigInt::mod_inverse(BigInt(3), BigInt(7)).to_u64(), 5u);
  EXPECT_THROW(BigInt::mod_inverse(BigInt(2), BigInt(4)), std::domain_error);

  HmacDrbg rng(999);
  const BigInt m = generate_prime(rng, 128);
  for (int trial = 0; trial < 25; ++trial) {
    const BigInt a = BigInt(1) + BigInt::random_below(rng, m - BigInt(1));
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, RandomBitsExactLength) {
  HmacDrbg rng(7);
  for (std::size_t bits : {1u, 2u, 7u, 8u, 9u, 31u, 32u, 33u, 256u}) {
    for (int trial = 0; trial < 10; ++trial)
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  HmacDrbg rng(8);
  const BigInt bound = BigInt::from_hex("1000000000000001");
  for (int trial = 0; trial < 100; ++trial)
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
}

// Cross-check every operator against native 128-bit arithmetic on random
// small operands — an oracle the big-number path cannot share bugs with.
TEST(BigIntTest, CrossCheckAgainstNativeArithmetic) {
  HmacDrbg rng(0xCC01);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a64 = rng.next_u64() >> (rng.below(40));
    const std::uint64_t b64 = (rng.next_u64() >> (rng.below(40))) | 1;
    const BigInt a(a64), b(b64);

    const unsigned __int128 sum =
        static_cast<unsigned __int128>(a64) + b64;
    const BigInt s = a + b;
    EXPECT_EQ(s.to_u64(), static_cast<std::uint64_t>(sum));
    EXPECT_EQ((s >> 64).to_u64(), static_cast<std::uint64_t>(sum >> 64));

    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a64) * b64;
    const BigInt p = a * b;
    EXPECT_EQ(p.to_u64(), static_cast<std::uint64_t>(prod));
    EXPECT_EQ((p >> 64).to_u64(), static_cast<std::uint64_t>(prod >> 64));

    EXPECT_EQ((a / b).to_u64(), a64 / b64);
    EXPECT_EQ((a % b).to_u64(), a64 % b64);
    if (a64 >= b64) {
      EXPECT_EQ((a - b).to_u64(), a64 - b64);
    }
    EXPECT_EQ(a < b, a64 < b64);
    EXPECT_EQ(a == b, a64 == b64);
  }
}

TEST(BigIntTest, CrossCheckGcdAgainstEuclid64) {
  HmacDrbg rng(0xCC02);
  const auto gcd64 = [](std::uint64_t a, std::uint64_t b) {
    while (b) {
      const std::uint64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_u64() >> rng.below(32);
    const std::uint64_t b = rng.next_u64() >> rng.below(32);
    EXPECT_EQ(BigInt::gcd(BigInt(a), BigInt(b)).to_u64(), gcd64(a, b));
  }
}

TEST(BigIntTest, CrossCheckModExpAgainstNative) {
  HmacDrbg rng(0xCC03);
  const auto modexp64 = [](std::uint64_t base, std::uint64_t e,
                           std::uint64_t mod) {
    unsigned __int128 acc = 1;
    unsigned __int128 b = base % mod;
    while (e) {
      if (e & 1) acc = acc * b % mod;
      b = b * b % mod;
      e >>= 1;
    }
    return static_cast<std::uint64_t>(acc);
  };
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t mod = (rng.next_u64() >> 16) | 1;  // odd
    const std::uint64_t base = rng.next_u64() % mod;
    const std::uint64_t e = rng.next_u64() >> 40;
    EXPECT_EQ(mod_exp(BigInt(base), BigInt(e), BigInt(mod)).to_u64(),
              modexp64(base, e, mod));
    EXPECT_EQ(mod_exp_ct(BigInt(base), BigInt(e), BigInt(mod)).to_u64(),
              modexp64(base, e, mod));
  }
}

// ---- modular exponentiation -------------------------------------------------

TEST(ModExpTest, SmallKnownAnswers) {
  EXPECT_EQ(mod_exp(BigInt(2), BigInt(10), BigInt(1000)).to_u64(), 24u);
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(0), BigInt(7)).to_u64(), 1u);
  EXPECT_EQ(mod_exp(BigInt(5), BigInt(117), BigInt(19)).to_u64(), 1u);
  // Fermat: a^(p-1) = 1 mod p
  EXPECT_EQ(mod_exp(BigInt(7), BigInt(102), BigInt(103)).to_u64(), 1u);
}

TEST(ModExpTest, EvenModulusFallback) {
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(4), BigInt(100)).to_u64(), 81u % 100u);
  EXPECT_EQ(mod_exp_ct(BigInt(3), BigInt(5), BigInt(64)).to_u64(),
            243u % 64u);
}

TEST(MontgomeryTest, MulMatchesSchoolbook) {
  HmacDrbg rng(55);
  const BigInt n = generate_prime(rng, 256);
  const Montgomery mont(n);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt a = BigInt::random_below(rng, n);
    const BigInt b = BigInt::random_below(rng, n);
    const BigInt got =
        mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    EXPECT_EQ(got, (a * b) % n);
  }
}

TEST(MontgomeryTest, ExpMatchesGenericAndLadder) {
  HmacDrbg rng(66);
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt n = generate_prime(rng, 192);
    const Montgomery mont(n);
    const BigInt base = BigInt::random_below(rng, n);
    const BigInt e = BigInt::random_bits(rng, 96);
    const BigInt expected = [&] {
      BigInt acc = 1;
      for (std::size_t i = e.bit_length(); i-- > 0;) {
        acc = (acc * acc) % n;
        if (e.bit(i)) acc = (acc * base) % n;
      }
      return acc;
    }();
    EXPECT_EQ(mont.exp(base, e), expected);
    EXPECT_EQ(mont.exp_ladder(base, e), expected);
  }
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigInt(100)), std::invalid_argument);
  EXPECT_THROW(Montgomery(BigInt(1)), std::invalid_argument);
}

TEST(MontgomeryTest, StatsCountOperations) {
  HmacDrbg rng(77);
  const BigInt n = generate_prime(rng, 128);
  const Montgomery mont(n);
  const BigInt base = BigInt::random_below(rng, n);
  const BigInt e = BigInt::from_hex("ffffffffffffffff");  // 64 one-bits

  MontStats leaky;
  mont.exp(base, e, &leaky);
  // L2R square-and-multiply: bits-1 squares, (ones-1) multiplies.
  EXPECT_EQ(leaky.squares, 63u);
  EXPECT_EQ(leaky.mults, 63u);

  MontStats ladder;
  mont.exp_ladder(base, e, &ladder);
  // Ladder: one square and one multiply for every bit.
  EXPECT_EQ(ladder.squares, 64u);
  EXPECT_EQ(ladder.mults, 64u);
}

TEST(MontgomeryTest, LadderOperationCountIsKeyIndependent) {
  HmacDrbg rng(88);
  const BigInt n = generate_prime(rng, 128);
  const Montgomery mont(n);
  const BigInt base = BigInt::random_below(rng, n);
  const BigInt sparse = BigInt::from_hex("8000000000000001");
  const BigInt dense = BigInt::from_hex("ffffffffffffffff");
  MontStats a, b;
  mont.exp_ladder(base, sparse, &a);
  mont.exp_ladder(base, dense, &b);
  EXPECT_EQ(a.squares + a.mults, b.squares + b.mults);
}

// ---- primality ---------------------------------------------------------------

TEST(PrimeTest, KnownPrimesAndComposites) {
  HmacDrbg rng(99);
  EXPECT_TRUE(is_probably_prime(BigInt(2), rng));
  EXPECT_TRUE(is_probably_prime(BigInt(3), rng));
  EXPECT_TRUE(is_probably_prime(BigInt(65537), rng));
  EXPECT_TRUE(is_probably_prime(BigInt::from_hex("FFFFFFFFFFFFFFC5"), rng));
  EXPECT_FALSE(is_probably_prime(BigInt(1), rng));
  EXPECT_FALSE(is_probably_prime(BigInt(561), rng));    // Carmichael
  EXPECT_FALSE(is_probably_prime(BigInt(41041), rng));  // Carmichael
  EXPECT_FALSE(is_probably_prime(BigInt(1024), rng));
  // Product of two primes.
  EXPECT_FALSE(
      is_probably_prime(BigInt(65537) * BigInt(65539), rng));
}

TEST(PrimeTest, GeneratedPrimesHaveRequestedLength) {
  HmacDrbg rng(111);
  for (std::size_t bits : {64u, 128u, 256u}) {
    const BigInt p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.bit(bits - 2));  // second-top bit forced
  }
}

TEST(PrimeTest, SafePrimeStructure) {
  HmacDrbg rng(222);
  const BigInt p = generate_safe_prime(rng, 96);
  EXPECT_TRUE(is_probably_prime(p, rng));
  EXPECT_TRUE(is_probably_prime((p - BigInt(1)) >> 1, rng));
}

}  // namespace
}  // namespace mapsec::crypto
