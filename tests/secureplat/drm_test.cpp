// Content protection (DRM) and the signed app installer.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/secureplat/app_installer.hpp"
#include "mapsec/secureplat/drm.hpp"

namespace mapsec::secureplat {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

constexpr std::uint64_t kNow = 1'050'000'000;

// ---- DRM -------------------------------------------------------------------

class DrmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xD12);
    provider_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    device_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    other_device_key_ =
        new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete provider_key_;
    delete device_key_;
    delete other_device_key_;
  }

  DrmTest() : rng_(0xD13), provider_(*provider_key_, &rng_) {}

  DrmAgent make_agent(const std::string& id = "phone-1") {
    return DrmAgent(id, *device_key_, provider_key_->pub);
  }

  static crypto::RsaKeyPair* provider_key_;
  static crypto::RsaKeyPair* device_key_;
  static crypto::RsaKeyPair* other_device_key_;

  crypto::HmacDrbg rng_;
  ContentProvider provider_;
};

crypto::RsaKeyPair* DrmTest::provider_key_ = nullptr;
crypto::RsaKeyPair* DrmTest::device_key_ = nullptr;
crypto::RsaKeyPair* DrmTest::other_device_key_ = nullptr;

TEST_F(DrmTest, LicensedPlaybackRoundTrip) {
  const Bytes song = to_bytes("[] mp3 frames of a 2003 ringtone []");
  const PackagedContent content = provider_.package("song-1", song);
  // The package itself hides the content.
  const auto it = std::search(content.ciphertext.begin(),
                              content.ciphertext.end(), song.begin(),
                              song.end());
  EXPECT_EQ(it, content.ciphertext.end());

  DrmAgent agent = make_agent();
  const ContentLicense lic = provider_.issue_license(
      "song-1", "phone-1", device_key_->pub, UsageRights{});
  EXPECT_EQ(agent.install_license(lic), DrmStatus::kOk);

  Bytes out;
  EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kOk);
  EXPECT_EQ(out, song);
}

TEST_F(DrmTest, NoLicenseNoPlayback) {
  const PackagedContent content =
      provider_.package("song-2", to_bytes("content"));
  DrmAgent agent = make_agent();
  Bytes out;
  EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kNoLicense);
}

TEST_F(DrmTest, PlayCountEnforced) {
  const PackagedContent content =
      provider_.package("rental", to_bytes("3-play rental movie"));
  DrmAgent agent = make_agent();
  UsageRights rights;
  rights.max_plays = 3;
  agent.install_license(provider_.issue_license("rental", "phone-1",
                                                device_key_->pub, rights));
  Bytes out;
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kOk) << i;
  EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kPlayCountExhausted);
  EXPECT_EQ(agent.plays_used("rental"), 3u);
}

TEST_F(DrmTest, ExpiryEnforced) {
  const PackagedContent content =
      provider_.package("timed", to_bytes("weekend pass"));
  DrmAgent agent = make_agent();
  UsageRights rights;
  rights.not_after = kNow + 100;
  agent.install_license(provider_.issue_license("timed", "phone-1",
                                                device_key_->pub, rights));
  Bytes out;
  EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kOk);
  EXPECT_EQ(agent.play(content, kNow + 101, out), DrmStatus::kExpired);
}

TEST_F(DrmTest, ExportRequiresRight) {
  const PackagedContent content =
      provider_.package("locked", to_bytes("no copying"));
  DrmAgent agent = make_agent();
  agent.install_license(provider_.issue_license(
      "locked", "phone-1", device_key_->pub, UsageRights{}));
  Bytes out;
  EXPECT_EQ(agent.export_content(content, kNow, out),
            DrmStatus::kExportForbidden);

  // With the right granted, export works and does not consume plays.
  const PackagedContent portable =
      provider_.package("portable", to_bytes("copy allowed"));
  UsageRights rights;
  rights.allow_export = true;
  rights.max_plays = 1;
  agent.install_license(provider_.issue_license(
      "portable", "phone-1", device_key_->pub, rights));
  EXPECT_EQ(agent.export_content(portable, kNow, out), DrmStatus::kOk);
  EXPECT_EQ(out, to_bytes("copy allowed"));
  EXPECT_EQ(agent.plays_used("portable"), 0u);
}

TEST_F(DrmTest, ForgedLicenseRejected) {
  provider_.package("song-3", to_bytes("content"));
  DrmAgent agent = make_agent();
  ContentLicense lic = provider_.issue_license(
      "song-3", "phone-1", device_key_->pub, UsageRights{});
  lic.rights.max_plays = 0;  // try to upgrade a limited license
  lic.rights.allow_export = true;
  EXPECT_EQ(agent.install_license(lic), DrmStatus::kBadLicenseSignature);
}

TEST_F(DrmTest, LicenseBoundToDevice) {
  provider_.package("song-4", to_bytes("content"));
  // License for phone-2 presented to phone-1.
  const ContentLicense lic = provider_.issue_license(
      "song-4", "phone-2", other_device_key_->pub, UsageRights{});
  DrmAgent agent = make_agent("phone-1");
  EXPECT_EQ(agent.install_license(lic), DrmStatus::kWrongDevice);
}

TEST_F(DrmTest, WrongDeviceKeyCannotUnwrap) {
  // A license legitimately issued for phone-1's id but wrapped to a
  // different key (e.g. cloned id): unwrap fails.
  const PackagedContent content =
      provider_.package("song-5", to_bytes("content"));
  const ContentLicense lic = provider_.issue_license(
      "song-5", "phone-1", other_device_key_->pub, UsageRights{});
  DrmAgent agent = make_agent("phone-1");  // holds device_key_, not other
  EXPECT_EQ(agent.install_license(lic), DrmStatus::kOk);
  Bytes out;
  EXPECT_EQ(agent.play(content, kNow, out), DrmStatus::kDecryptFailed);
}

// ---- app installer ------------------------------------------------------------

class AppInstallerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xAB5);
    oem_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    indie_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    rogue_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete oem_key_;
    delete indie_key_;
    delete rogue_key_;
  }

  AppInstallerTest() {
    installer_.trust_publisher(
        "oem", oem_key_->pub,
        static_cast<PermissionMask>(
            permission_bit(Permission::kNetwork) |
            permission_bit(Permission::kUserData) |
            permission_bit(Permission::kCrypto) |
            permission_bit(Permission::kSecureStorage)));
    installer_.trust_publisher("indie", indie_key_->pub,
                               permission_bit(Permission::kNetwork));
  }

  static crypto::RsaKeyPair* oem_key_;
  static crypto::RsaKeyPair* indie_key_;
  static crypto::RsaKeyPair* rogue_key_;
  AppInstaller installer_;
};

crypto::RsaKeyPair* AppInstallerTest::oem_key_ = nullptr;
crypto::RsaKeyPair* AppInstallerTest::indie_key_ = nullptr;
crypto::RsaKeyPair* AppInstallerTest::rogue_key_ = nullptr;

TEST_F(AppInstallerTest, InstallLaunchAndPermissions) {
  const auto pkg = make_package(
      "wallet", "oem", 1,
      static_cast<PermissionMask>(permission_bit(Permission::kCrypto) |
                                  permission_bit(Permission::kSecureStorage)),
      to_bytes("wallet code"), oem_key_->priv);
  EXPECT_EQ(installer_.install(pkg), InstallStatus::kOk);
  EXPECT_TRUE(installer_.launch("wallet"));
  EXPECT_TRUE(installer_.has_permission("wallet", Permission::kSecureStorage));
  EXPECT_FALSE(installer_.has_permission("wallet", Permission::kNetwork));
  EXPECT_EQ(installer_.installed_version("wallet"), 1u);
}

TEST_F(AppInstallerTest, UnknownPublisherRejected) {
  const auto pkg = make_package("malware", "rogue", 1, 0,
                                to_bytes("evil"), rogue_key_->priv);
  EXPECT_EQ(installer_.install(pkg), InstallStatus::kUnknownPublisher);
}

TEST_F(AppInstallerTest, WrongKeyRejected) {
  // Rogue signs a package claiming to be from "oem".
  const auto pkg = make_package("trojan", "oem", 1, 0, to_bytes("evil"),
                                rogue_key_->priv);
  EXPECT_EQ(installer_.install(pkg), InstallStatus::kBadSignature);
}

TEST_F(AppInstallerTest, TamperedCodeRejected) {
  auto pkg = make_package("game", "indie", 1,
                          permission_bit(Permission::kNetwork),
                          to_bytes("game code"), indie_key_->priv);
  pkg.code.push_back(0xCC);  // injected payload after signing
  EXPECT_EQ(installer_.install(pkg), InstallStatus::kBadSignature);
}

TEST_F(AppInstallerTest, PermissionCeilingEnforced) {
  // Indie publisher asks for secure storage: signature is valid, but the
  // trust policy caps it.
  const auto pkg = make_package(
      "sneaky", "indie", 1,
      static_cast<PermissionMask>(permission_bit(Permission::kNetwork) |
                                  permission_bit(Permission::kSecureStorage)),
      to_bytes("sneaky code"), indie_key_->priv);
  EXPECT_EQ(installer_.install(pkg), InstallStatus::kPermissionExceedsTrust);
}

TEST_F(AppInstallerTest, DowngradeRejected) {
  EXPECT_EQ(installer_.install(make_package("app", "oem", 3, 0,
                                            to_bytes("v3"), oem_key_->priv)),
            InstallStatus::kOk);
  EXPECT_EQ(installer_.install(make_package("app", "oem", 2, 0,
                                            to_bytes("v2"), oem_key_->priv)),
            InstallStatus::kDowngrade);
  EXPECT_EQ(installer_.install(make_package("app", "oem", 3, 0,
                                            to_bytes("v3b"), oem_key_->priv)),
            InstallStatus::kDowngrade);  // same version: also refused
  EXPECT_EQ(installer_.install(make_package("app", "oem", 4, 0,
                                            to_bytes("v4"), oem_key_->priv)),
            InstallStatus::kOk);
  EXPECT_EQ(installer_.installed_version("app"), 4u);
}

TEST_F(AppInstallerTest, RuntimeIntegrityCheckCatchesFlashTamper) {
  installer_.install(make_package("browser", "oem", 1, 0,
                                  to_bytes("browser code"), oem_key_->priv));
  EXPECT_TRUE(installer_.launch("browser"));
  installer_.corrupt_installed_image("browser");
  EXPECT_FALSE(installer_.launch("browser"));  // run-time check trips
}

TEST_F(AppInstallerTest, LaunchUnknownAppFails) {
  EXPECT_FALSE(installer_.launch("ghost"));
  EXPECT_FALSE(installer_.has_permission("ghost", Permission::kNetwork));
}

}  // namespace
}  // namespace mapsec::secureplat
