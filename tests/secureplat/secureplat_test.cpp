// Secure-platform layer: boot chain, sealed storage, secure world, user
// authentication.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/sha256.hpp"
#include "mapsec/secureplat/keystore.hpp"
#include "mapsec/secureplat/secure_boot.hpp"
#include "mapsec/secureplat/secure_world.hpp"
#include "mapsec/secureplat/user_auth.hpp"

namespace mapsec::secureplat {
namespace {

using crypto::Bytes;
using crypto::to_bytes;

// ---- secure boot ---------------------------------------------------------------

class SecureBootTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xB007);
    root_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    rogue_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete root_;
    delete rogue_;
  }

  std::vector<BootImage> make_chain(std::uint32_t version = 1) const {
    return {
        make_boot_image("loader", to_bytes("loader-code"), version,
                        root_->priv),
        make_boot_image("kernel", to_bytes("kernel-code"), version,
                        root_->priv),
        make_boot_image("apps", to_bytes("application-bundle"), version,
                        root_->priv),
    };
  }

  static crypto::RsaKeyPair* root_;
  static crypto::RsaKeyPair* rogue_;
};

crypto::RsaKeyPair* SecureBootTest::root_ = nullptr;
crypto::RsaKeyPair* SecureBootTest::rogue_ = nullptr;

TEST_F(SecureBootTest, ValidChainBoots) {
  BootRom rom(root_->pub);
  const BootReport report = rom.boot(make_chain());
  EXPECT_TRUE(report.booted);
  EXPECT_EQ(report.stages.size(), 3u);
  for (const auto& s : report.stages)
    EXPECT_EQ(s.status, BootStageStatus::kOk);
}

TEST_F(SecureBootTest, TamperedPayloadHalts) {
  BootRom rom(root_->pub);
  auto chain = make_chain();
  chain[1].payload.push_back(0x90);  // patch the kernel
  const BootReport report = rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failed_stage, 1u);
  EXPECT_EQ(report.stages[1].status, BootStageStatus::kDigestMismatch);
}

TEST_F(SecureBootTest, ResignedManifestWithWrongKeyHalts) {
  BootRom rom(root_->pub);
  auto chain = make_chain();
  // Attacker replaces the loader with one signed by their own key.
  chain[0] =
      make_boot_image("loader", to_bytes("evil-loader"), 1, rogue_->priv);
  const BootReport report = rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failed_stage, 0u);
  EXPECT_EQ(report.stages[0].status, BootStageStatus::kBadSignature);
}

TEST_F(SecureBootTest, ForgedDigestStillBadSignature) {
  BootRom rom(root_->pub);
  auto chain = make_chain();
  chain[2].digest = crypto::Sha256::hash(chain[2].payload);  // unchanged
  chain[2].payload = to_bytes("swapped-apps");
  chain[2].digest = crypto::Sha256::hash(chain[2].payload);  // fixed up...
  // ...but the manifest signature no longer matches.
  const BootReport report = rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.stages[2].status, BootStageStatus::kBadSignature);
}

TEST_F(SecureBootTest, RollbackRejectedAfterUpgrade) {
  BootRom rom(root_->pub);
  EXPECT_TRUE(rom.boot(make_chain(1)).booted);
  EXPECT_TRUE(rom.boot(make_chain(3)).booted);  // upgrade
  EXPECT_EQ(rom.min_version(0), 3u);
  // Old (vulnerable) version no longer boots.
  const BootReport report = rom.boot(make_chain(2));
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.stages[0].status, BootStageStatus::kRollback);
}

TEST_F(SecureBootTest, FailedBootDoesNotRatchet) {
  BootRom rom(root_->pub);
  auto chain = make_chain(5);
  chain[2].payload.push_back(1);  // will fail at stage 2
  EXPECT_FALSE(rom.boot(chain).booted);
  EXPECT_EQ(rom.min_version(0), 0u);  // no partial ratchet
  EXPECT_TRUE(rom.boot(make_chain(1)).booted);
}

// ---- key store -----------------------------------------------------------------

class KeyStoreTest : public ::testing::Test {
 protected:
  KeyStoreTest() : rng_(0x5EA1), store_(rng_.bytes(32), &rng_) {}
  crypto::HmacDrbg rng_;
  KeyStore store_;
};

TEST_F(KeyStoreTest, SealUnsealRoundTrip) {
  const Bytes secret = to_bytes("wpa-passphrase");
  const SealedBlob blob = store_.seal("wifi", secret);
  Bytes out;
  EXPECT_EQ(store_.unseal(blob, out), UnsealStatus::kOk);
  EXPECT_EQ(out, secret);
}

TEST_F(KeyStoreTest, CiphertextHidesSecret) {
  const Bytes secret = to_bytes("SECRETSECRETSECRET");
  const SealedBlob blob = store_.seal("x", secret);
  const auto it = std::search(blob.ciphertext.begin(), blob.ciphertext.end(),
                              secret.begin(), secret.end());
  EXPECT_EQ(it, blob.ciphertext.end());
}

TEST_F(KeyStoreTest, TamperDetected) {
  SealedBlob blob = store_.seal("k", to_bytes("v"));
  blob.ciphertext[0] ^= 1;
  Bytes out;
  EXPECT_EQ(store_.unseal(blob, out), UnsealStatus::kBadTag);
  SealedBlob blob2 = store_.seal("k2", to_bytes("v2"));
  blob2.name = "k3";  // name swap also breaks the tag
  EXPECT_EQ(store_.unseal(blob2, out), UnsealStatus::kBadTag);
}

TEST_F(KeyStoreTest, RollbackDetected) {
  const SealedBlob old_blob = store_.seal("token", to_bytes("old"));
  const SealedBlob new_blob = store_.seal("token", to_bytes("new"));
  Bytes out;
  EXPECT_EQ(store_.unseal(new_blob, out), UnsealStatus::kOk);
  EXPECT_EQ(out, to_bytes("new"));
  // Replaying the stale flash image is caught.
  EXPECT_EQ(store_.unseal(old_blob, out), UnsealStatus::kRollback);
}

TEST_F(KeyStoreTest, DistinctStoresCannotReadEachOther) {
  crypto::HmacDrbg rng2(0x5EA2);
  KeyStore other(rng2.bytes(32), &rng2);
  const SealedBlob blob = store_.seal("k", to_bytes("v"));
  Bytes out;
  EXPECT_EQ(other.unseal(blob, out), UnsealStatus::kBadTag);
}

TEST_F(KeyStoreTest, CounterMonotone) {
  const auto before = store_.monotonic_counter();
  store_.seal("a", to_bytes("1"));
  store_.seal("b", to_bytes("2"));
  EXPECT_EQ(store_.monotonic_counter(), before + 2);
}

TEST_F(KeyStoreTest, Validation) {
  crypto::HmacDrbg rng(1);
  EXPECT_THROW(KeyStore(Bytes(8), &rng), std::invalid_argument);
  EXPECT_THROW(KeyStore(Bytes(32), nullptr), std::invalid_argument);
}

// ---- secure world ---------------------------------------------------------------

class SecureWorldTest : public ::testing::Test {
 protected:
  SecureWorldTest() : rng_(0x7E57) {
    memory_.add_region("secure_ram", 4096, /*secure=*/true);
    memory_.add_region("dram", 65536, /*secure=*/false);
  }
  crypto::HmacDrbg rng_;
  PartitionedMemory memory_;
};

TEST_F(SecureWorldTest, NormalWorldCannotTouchSecureRam) {
  EXPECT_TRUE(memory_.write(World::kSecure, "secure_ram", 0,
                            to_bytes("key material")));
  EXPECT_FALSE(memory_.read(World::kNormal, "secure_ram", 0, 4).has_value());
  EXPECT_FALSE(memory_.write(World::kNormal, "secure_ram", 0, to_bytes("x")));
  ASSERT_EQ(memory_.faults().size(), 2u);
  EXPECT_EQ(memory_.faults()[0].accessor, World::kNormal);
  EXPECT_FALSE(memory_.faults()[0].write);
  EXPECT_TRUE(memory_.faults()[1].write);
}

TEST_F(SecureWorldTest, SecureWorldSeesEverything) {
  EXPECT_TRUE(memory_.write(World::kSecure, "dram", 8, to_bytes("shared")));
  const auto data = memory_.read(World::kSecure, "secure_ram", 0, 16);
  EXPECT_TRUE(data.has_value());
  EXPECT_TRUE(memory_.faults().empty());
}

TEST_F(SecureWorldTest, BoundsAndUnknownRegions) {
  EXPECT_FALSE(memory_.read(World::kSecure, "nowhere", 0, 1).has_value());
  EXPECT_FALSE(memory_.read(World::kSecure, "dram", 65530, 100).has_value());
  EXPECT_THROW(memory_.add_region("dram", 16, false), std::invalid_argument);
}

TEST_F(SecureWorldTest, MonitorCryptoWithoutKeyExposure) {
  SecureWorld tee(&memory_, &rng_);
  EXPECT_TRUE(tee.call(MonitorCall::kGenerateKey, "session").ok);

  const Bytes msg = to_bytes("normal-world message");
  const auto enc = tee.call(MonitorCall::kEncrypt, "session", msg);
  ASSERT_TRUE(enc.ok);
  const auto dec = tee.call(MonitorCall::kDecrypt, "session", enc.data);
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(dec.data, msg);

  const auto mac1 = tee.call(MonitorCall::kMac, "session", msg);
  const auto mac2 = tee.call(MonitorCall::kMac, "session", msg);
  ASSERT_TRUE(mac1.ok);
  EXPECT_EQ(mac1.data, mac2.data);

  // The defining refusal.
  const auto leak = tee.call(MonitorCall::kGetKey, "session");
  EXPECT_FALSE(leak.ok);
  EXPECT_TRUE(leak.data.empty());
}

TEST_F(SecureWorldTest, UnknownKeyAndMalformedCiphertext) {
  SecureWorld tee(&memory_, &rng_);
  EXPECT_FALSE(tee.call(MonitorCall::kMac, "ghost", to_bytes("x")).ok);
  tee.call(MonitorCall::kGenerateKey, "k");
  EXPECT_FALSE(tee.call(MonitorCall::kDecrypt, "k", Bytes(8)).ok);
}

TEST_F(SecureWorldTest, WorldSwitchAccounting) {
  SecureWorld tee(&memory_, &rng_);
  tee.call(MonitorCall::kGenerateKey, "k");
  tee.call(MonitorCall::kMac, "k", to_bytes("m"));
  EXPECT_EQ(tee.world_switches(), 4u);  // two calls, entry+exit each
}

// ---- user auth -------------------------------------------------------------------

TEST(PinAuthTest, GrantAndDeny) {
  crypto::HmacDrbg rng(1);
  PinAuthenticator auth(to_bytes("1234"), &rng);
  EXPECT_EQ(auth.verify(to_bytes("0000")), AuthResult::kDenied);
  EXPECT_EQ(auth.verify(to_bytes("1234")), AuthResult::kGranted);
  EXPECT_EQ(auth.remaining_attempts(), 3);  // success resets the counter
}

TEST(PinAuthTest, LockoutAfterMaxAttempts) {
  crypto::HmacDrbg rng(2);
  PinAuthenticator auth(to_bytes("1234"), &rng, 3);
  EXPECT_EQ(auth.verify(to_bytes("a")), AuthResult::kDenied);
  EXPECT_EQ(auth.verify(to_bytes("b")), AuthResult::kDenied);
  EXPECT_EQ(auth.verify(to_bytes("c")), AuthResult::kLockedOut);
  // Even the correct PIN is refused once locked.
  EXPECT_EQ(auth.verify(to_bytes("1234")), AuthResult::kLockedOut);
  auth.reset(to_bytes("5678"));
  EXPECT_EQ(auth.verify(to_bytes("5678")), AuthResult::kGranted);
}

TEST(PinAuthTest, Validation) {
  crypto::HmacDrbg rng(3);
  EXPECT_THROW(PinAuthenticator(to_bytes("1"), nullptr),
               std::invalid_argument);
  EXPECT_THROW(PinAuthenticator(to_bytes("1"), &rng, 0),
               std::invalid_argument);
}

TEST(BiometricTest, GenuineMatchesImpostorDoesNot) {
  crypto::HmacDrbg rng(4);
  const auto tpl = BiometricMatcher::enroll(rng, 16);
  BiometricMatcher matcher(tpl, 0.5);
  // The enrolled template itself is distance 0.
  EXPECT_TRUE(matcher.match(tpl));
  // Slightly noisy genuine probe matches.
  EXPECT_TRUE(matcher.match(matcher.sample_genuine(rng, 0.02)));
  // A random impostor in 16 dims is far away w.h.p.
  EXPECT_FALSE(matcher.match(matcher.sample_impostor(rng)));
}

TEST(BiometricTest, ThresholdTradesFarAgainstFrr) {
  crypto::HmacDrbg rng(5);
  const auto tpl = BiometricMatcher::enroll(rng, 16);
  BiometricMatcher strict(tpl, 0.1);
  BiometricMatcher loose(tpl, 1.2);
  const auto strict_rates = strict.estimate_rates(rng, 400, 0.05);
  const auto loose_rates = loose.estimate_rates(rng, 400, 0.05);
  // Tightening the threshold lowers FAR and raises FRR.
  EXPECT_LE(strict_rates.far, loose_rates.far);
  EXPECT_GE(strict_rates.frr, loose_rates.frr);
}

TEST(BiometricTest, DimensionMismatchThrows) {
  crypto::HmacDrbg rng(6);
  BiometricMatcher matcher(BiometricMatcher::enroll(rng, 8), 0.5);
  EXPECT_THROW(matcher.match(BiometricTemplate(4, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(BiometricMatcher({}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace mapsec::secureplat
