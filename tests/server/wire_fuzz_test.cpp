// Deterministic malformed-wire fuzzing of SecureSessionServer.
//
// A seeded corpus of valid session-layer frames (handshake flights, TLS
// records, bulk frames, control frames) is mutated structure-aware
// (chaos::WireMutator) and thrown at a live server over the simulated
// transport. Every input — truncated records, corrupted length fields,
// spliced frames, raw garbage — must produce a clean fail_connection (or
// a timeout), never undefined behaviour and never a dead event loop.
// Runs identically under ASan/UBSan and TSan via ci/check.sh; the seeds
// make every crash reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mapsec/chaos/adversary.hpp"
#include "mapsec/chaos/wire_mutator.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/protocol/cert.hpp"
#include "mapsec/server/server.hpp"
#include "mapsec/server/session_cache.hpp"
#include "mapsec/server/wire.hpp"

namespace mapsec::server {
namespace {

constexpr std::uint64_t kNow = 1'050'000'000;

class WireFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0xF022);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("FuzzRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.fuzz", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    cfg.handshake_timeout_us = 500'000;  // keep fuzz runs short in sim time
    cfg.idle_timeout_us = 1'000'000;
    return cfg;
  }

  static protocol::HandshakeConfig client_handshake() {
    protocol::HandshakeConfig cfg;
    cfg.now = kNow;
    cfg.trusted_roots = {ca_->root()};
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* WireFuzzTest::ca_key_ = nullptr;
crypto::RsaKeyPair* WireFuzzTest::server_key_ = nullptr;
protocol::CertificateAuthority* WireFuzzTest::ca_ = nullptr;
protocol::Certificate* WireFuzzTest::server_cert_ = nullptr;

/// One server, many fuzzed connections: each connection gets a burst of
/// mutated frames, then the world runs to quiescence. The server must
/// account for every connection (conserved stats, nothing left open) and
/// the event loop must drain — i.e. each poisoned peer failed alone.
void fuzz_round(std::uint64_t seed, int connections, int frames_per_conn,
                const protocol::HandshakeConfig& client_handshake,
                const ServerConfig& server_cfg) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  net::EventQueue queue;
  BoundedSessionCache cache(queue, {.capacity = 64, .ttl_us = 0});
  std::vector<std::unique_ptr<net::DuplexChannel>> channels;
  std::vector<std::unique_ptr<net::ReliableLink>> links;

  crypto::HmacDrbg server_rng(seed ^ 0x5EED);
  ServerConfig cfg = server_cfg;
  cfg.handshake.rng = &server_rng;
  SecureSessionServer server(queue, cfg, &cache);

  chaos::WireMutator mutator =
      chaos::make_seeded_mutator(seed, client_handshake);

  net::SimTime start = 0;
  for (int c = 0; c < connections; ++c) {
    auto channel = std::make_unique<net::DuplexChannel>(
        queue, net::ChannelConfig{}, net::ChannelConfig{},
        seed ^ (0xC4A17 + static_cast<std::uint64_t>(c)));
    server.accept(channel->b_to_a(), channel->a_to_b());
    auto link = std::make_unique<net::ReliableLink>(
        queue, channel->a_to_b(), channel->b_to_a(), net::LinkConfig{});
    link->set_on_message([](crypto::ConstBytes) {});  // ignore replies

    std::vector<crypto::Bytes> frames;
    frames.reserve(static_cast<std::size_t>(frames_per_conn));
    for (int f = 0; f < frames_per_conn; ++f)
      frames.push_back(mutator.next());
    queue.schedule_at(start, [raw = link.get(),
                              frames = std::move(frames)] {
      for (const crypto::Bytes& frame : frames) raw->send_message(frame);
    });
    start += 1'000;

    channels.push_back(std::move(channel));
    links.push_back(std::move(link));
  }

  const std::size_t executed = queue.run_all(50'000'000);
  EXPECT_LT(executed, 50'000'000u) << "event loop failed to drain";
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_TRUE(server.stats_conserved());
  EXPECT_EQ(server.stats().connections_accepted,
            static_cast<std::uint64_t>(connections));
  // Nothing completed a handshake; every connection died cleanly.
  EXPECT_EQ(server.stats().handshakes_completed, 0u);
}

class WireFuzzSeeds : public WireFuzzTest,
                      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(WireFuzzSeeds, MutatedFramesNeverTakeDownTheServer) {
  fuzz_round(GetParam(), 60, 3, client_handshake(), server_config());
}

INSTANTIATE_TEST_SUITE_P(Corpus, WireFuzzSeeds,
                         ::testing::Values(0x1111u, 0x2222u, 0x3333u,
                                           0x4444u, 0x5555u));

// Garbage injected into an ESTABLISHED session: complete a real
// handshake on the attacker's link, then replay mutated application
// frames. The record layer must reject them and the server must fail
// only that connection.
TEST_F(WireFuzzTest, GarbageAfterHandshakeFailsOnlyThatConnection) {
  net::EventQueue queue;
  BoundedSessionCache cache(queue, {.capacity = 64, .ttl_us = 0});
  crypto::HmacDrbg server_rng(0xAB5EED);
  ServerConfig cfg = server_config();
  cfg.handshake.rng = &server_rng;
  SecureSessionServer server(queue, cfg, &cache);

  net::DuplexChannel channel(queue, {}, {}, 0xD00F);
  server.accept(channel.b_to_a(), channel.a_to_b());
  net::ReliableLink link(queue, channel.a_to_b(), channel.b_to_a(), {});

  crypto::HmacDrbg client_rng(0x7E57);
  protocol::HandshakeConfig hs = client_handshake();
  hs.rng = &client_rng;
  protocol::TlsClient tls(hs);
  link.set_on_message([&](crypto::ConstBytes msg) {
    if (msg.empty() ||
        static_cast<MsgKind>(msg[0]) != MsgKind::kHandshake ||
        tls.established())
      return;
    const protocol::HandshakeStep step =
        protocol::step_handshake(tls, msg.subspan(1));
    if (!step.output.empty())
      link.send_message(make_msg(MsgKind::kHandshake, step.output));
  });
  const protocol::HandshakeStep hello = protocol::step_handshake(tls, {});
  link.send_message(make_msg(MsgKind::kHandshake, hello.output));
  queue.run_until(200'000);
  ASSERT_TRUE(tls.established());
  ASSERT_EQ(server.stats().handshakes_completed, 1u);

  // Now speak garbage on the established connection.
  chaos::WireMutator mutator =
      chaos::make_seeded_mutator(0x6A3BA6E, client_handshake());
  for (int i = 0; i < 8; ++i) link.send_message(mutator.next());
  queue.run_all(50'000'000);

  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_TRUE(server.stats_conserved());
  EXPECT_GE(server.stats().failed_connections +
                server.stats().idle_closes,
            1u);
}

// Structure-aware ticket mutations: take a genuinely issued session
// ticket and corrupt it the ways an attacker (or a flaky bearer) would —
// truncation, a flipped MAC byte, a stale key-id, an oversize blob. Every
// mutant must be refused cleanly by the codec and the handshake must FALL
// BACK to a full exchange (the client is otherwise honest); the failed
// opens are counted, no connection is poisoned, and a valid ticket still
// resumes afterwards.
TEST_F(WireFuzzTest, MutatedTicketsFallBackCleanAndNeverPoisonThePool) {
  net::EventQueue queue;
  // capacity 0: no cache to hide behind — resumption is tickets or
  // nothing, so a fallback is visible as a full handshake.
  BoundedSessionCache cache(queue, {.capacity = 0, .ttl_us = 0});
  crypto::HmacDrbg server_rng(0x71CFE);
  ServerConfig cfg = server_config();
  cfg.handshake.rng = &server_rng;
  cfg.ticket.enabled = true;
  SecureSessionServer server(queue, cfg, &cache);

  std::vector<std::unique_ptr<net::DuplexChannel>> channels;
  std::vector<std::unique_ptr<net::ReliableLink>> links;
  std::vector<std::unique_ptr<crypto::HmacDrbg>> rngs;
  std::vector<std::unique_ptr<protocol::TlsClient>> tls_clients;
  std::uint64_t nonce = 0;

  // Drive one honest client handshake (optionally offering a ticket) and
  // return the established endpoint.
  auto connect = [&](const crypto::Bytes* ticket, const crypto::Bytes* master,
                     protocol::CipherSuite suite) -> protocol::TlsClient& {
    rngs.push_back(std::make_unique<crypto::HmacDrbg>(0x7E57 + nonce));
    protocol::HandshakeConfig hs = client_handshake();
    hs.rng = rngs.back().get();
    hs.request_session_ticket = true;
    tls_clients.push_back(std::make_unique<protocol::TlsClient>(hs));
    protocol::TlsClient& tls = *tls_clients.back();
    if (ticket) tls.set_resume_ticket(*ticket, *master, suite);

    auto channel = std::make_unique<net::DuplexChannel>(
        queue, net::ChannelConfig{}, net::ChannelConfig{},
        0xF1E1D + nonce++);
    server.accept(channel->b_to_a(), channel->a_to_b());
    auto link = std::make_unique<net::ReliableLink>(
        queue, channel->a_to_b(), channel->b_to_a(), net::LinkConfig{});
    net::ReliableLink* raw = link.get();
    raw->set_on_message([&tls, raw](crypto::ConstBytes msg) {
      if (msg.empty() ||
          static_cast<MsgKind>(msg[0]) != MsgKind::kHandshake ||
          tls.established())
        return;
      const protocol::HandshakeStep step =
          protocol::step_handshake(tls, msg.subspan(1));
      if (!step.output.empty())
        raw->send_message(make_msg(MsgKind::kHandshake, step.output));
    });
    const protocol::HandshakeStep hello = protocol::step_handshake(tls, {});
    raw->send_message(make_msg(MsgKind::kHandshake, hello.output));
    channels.push_back(std::move(channel));
    links.push_back(std::move(link));
    queue.run_until(queue.now() + 300'000);
    return tls;
  };

  // 1. Honest full handshake mints the specimen ticket.
  protocol::TlsClient& first = connect(nullptr, nullptr, {});
  ASSERT_TRUE(first.established());
  ASSERT_TRUE(first.has_session_ticket());
  const crypto::Bytes specimen = first.session_ticket();
  const crypto::Bytes master = first.master_secret();
  const protocol::CipherSuite suite = first.summary().suite;

  // 2. The mutation corpus.
  crypto::Bytes truncated(specimen.begin(),
                          specimen.begin() + specimen.size() / 2);
  crypto::Bytes flipped_mac = specimen;
  flipped_mac.back() ^= 0x01;  // last tag byte
  crypto::Bytes stale_key = specimen;
  for (int i = 0; i < 4; ++i) stale_key[static_cast<std::size_t>(i)] = 0xFF;
  crypto::Bytes oversize = specimen;
  oversize.resize(600, 0x00);  // past the codec's max_wire_len

  const std::vector<std::pair<const char*, const crypto::Bytes*>> corpus = {
      {"truncated", &truncated},
      {"flipped_mac", &flipped_mac},
      {"stale_key_id", &stale_key},
      {"oversize", &oversize},
  };
  for (const auto& [name, mutant] : corpus) {
    SCOPED_TRACE(name);
    protocol::TlsClient& tls = connect(mutant, &master, suite);
    // Refused ticket != refused client: the handshake completes in FULL.
    EXPECT_TRUE(tls.established());
    EXPECT_FALSE(tls.summary().resumed);
    EXPECT_FALSE(tls.summary().ticket_resumed);
  }
  EXPECT_EQ(server.stats().ticket_open_failures, corpus.size());

  // 3. The pool is not poisoned: the untouched specimen still resumes.
  protocol::TlsClient& valid = connect(&specimen, &master, suite);
  EXPECT_TRUE(valid.established());
  EXPECT_TRUE(valid.summary().ticket_resumed);

  queue.run_all(50'000'000);
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_TRUE(server.stats_conserved());
  EXPECT_EQ(server.stats().handshakes_completed, 6u);
  EXPECT_EQ(server.stats().failed_connections, 0u);
  EXPECT_EQ(server.stats().ticket_resumptions, 1u);
}

}  // namespace
}  // namespace mapsec::server
