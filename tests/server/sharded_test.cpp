// Sharded serving tier: routing stability, the {1,2,4,8}-shard
// determinism matrix (fleet transcript digest byte-identical for cache
// and ticket resumption, plain and under a chaos handshake flood),
// per-shard/fleet conservation, fleet-wide admission through the
// epoch-barrier FleetControl snapshot, and the modeled-core scaling that
// motivates the tier: N shards = N cores, so aggregate handshake rate
// rises with the shard count while the transcript stays fixed.
#include <gtest/gtest.h>

#include <set>

#include "mapsec/chaos/campaign.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/sharded_server.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::server {
namespace {

using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

// ------------------------------------------------------- shard routing

TEST(ShardRoutingTest, PureFunctionOfKeyAndShardCount) {
  for (std::uint32_t key : {0u, 1u, 7u, 0xF000u, 0xBAD3u, 0xFFFFFFFFu}) {
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      const std::size_t s = shard_for(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_for(key, shards));  // stable on re-ask
    }
    EXPECT_EQ(shard_for(key, 1), 0u);
  }
}

TEST(ShardRoutingTest, SpreadsKeysAcrossShards) {
  // FNV-1a over 256 consecutive keys must not pile onto one shard.
  std::size_t per_shard[8] = {};
  for (std::uint32_t key = 0; key < 256; ++key)
    ++per_shard[shard_for(key, 8)];
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(per_shard[s], 8u) << "shard " << s;
    EXPECT_LT(per_shard[s], 96u) << "shard " << s;
  }
}

TEST(ShardRoutingTest, WireIdsAreNonZeroAndDistinct) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t key = 0; key < 64; ++key)
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t id = make_wire_id(key, attempt);
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(seen.insert(id).second) << key << "/" << attempt;
    }
}

// ------------------------------------------------------- serving fixture

class ShardedServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x5E53);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("ShardRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    return cfg;
  }

  static ClientConfig client_config() {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    return cfg;
  }

  static ShardedLoadConfig sharded_load(std::size_t clients,
                                        std::size_t shards) {
    ShardedLoadConfig cfg;
    cfg.base.num_clients = clients;
    cfg.base.appliance = platform::Processor::strongarm_sa1100();
    cfg.shards = shards;
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* ShardedServerTest::ca_key_ = nullptr;
crypto::RsaKeyPair* ShardedServerTest::server_key_ = nullptr;
protocol::CertificateAuthority* ShardedServerTest::ca_ = nullptr;
protocol::Certificate* ShardedServerTest::server_cert_ = nullptr;

// ------------------------------------------- determinism matrix (digest)

/// One run of the sharded harness at a given shard count; `tickets`
/// selects stateless-ticket resumption over the session cache.
ShardedLoadReport run_fleet(const ShardedServerTest* /*tag*/,
                            ServerConfig server, ClientConfig client,
                            std::size_t clients, std::size_t shards,
                            bool tickets) {
  ShardedLoadConfig load;
  load.base.num_clients = clients;
  load.base.appliance = platform::Processor::strongarm_sa1100();
  load.base.channel.loss_rate = 0.02;  // a little weather: retries happen
  load.shards = shards;
  client.sessions = 2;  // second session resumes
  BoundedSessionCache::Config cache;
  if (tickets) {
    server.ticket.enabled = true;
    client.use_session_tickets = true;
    cache.capacity = 0;
  } else {
    cache.capacity = 4'096;
  }
  ShardedLoadGenerator gen(load, server, client, cache);
  return gen.run();
}

class ShardedDeterminismTest
    : public ShardedServerTest,
      public ::testing::WithParamInterface<bool> {};

TEST_P(ShardedDeterminismTest, DigestIdenticalForAnyShardCount) {
  const bool tickets = GetParam();
  const ShardedLoadReport base = run_fleet(
      this, server_config(), client_config(), 48, 1, tickets);
  ASSERT_EQ(base.fleet.sessions_completed, 96u);
  ASSERT_EQ(base.fleet.echo_mismatches, 0u);
  ASSERT_FALSE(base.fleet.fleet_digest.empty());
  EXPECT_TRUE(base.conserved);
  if (tickets)
    EXPECT_GT(base.fleet.server.ticket_resumptions, 0u);
  else
    EXPECT_GT(base.fleet.cache.hits, 0u);

  for (std::size_t shards : {2u, 4u, 8u}) {
    const ShardedLoadReport r = run_fleet(
        this, server_config(), client_config(), 48, shards, tickets);
    EXPECT_EQ(r.fleet.fleet_digest, base.fleet.fleet_digest)
        << shards << " shards, tickets=" << tickets;
    EXPECT_EQ(r.fleet.sessions_completed, base.fleet.sessions_completed);
    EXPECT_EQ(r.fleet.server.handshakes_completed,
              base.fleet.server.handshakes_completed);
    EXPECT_TRUE(r.conserved) << shards << " shards";
    EXPECT_EQ(r.shards.size(), shards);
  }
}

INSTANTIATE_TEST_SUITE_P(ResumptionModes, ShardedDeterminismTest,
                         ::testing::Values(false, true));

TEST_F(ShardedServerTest, RerunIsBitIdentical) {
  const ShardedLoadReport a = run_fleet(
      this, server_config(), client_config(), 24, 4, false);
  const ShardedLoadReport b = run_fleet(
      this, server_config(), client_config(), 24, 4, false);
  EXPECT_EQ(a.fleet.fleet_digest, b.fleet.fleet_digest);
  EXPECT_EQ(a.fleet.server.handshakes_completed,
            b.fleet.server.handshakes_completed);
  EXPECT_EQ(a.epochs, b.epochs);
}

// --------------------------------------------- per-shard sums (satellite)

TEST_F(ShardedServerTest, FleetTotalsEqualPerShardSumsInSoak) {
  ClientConfig client = client_config();
  client.sessions = 2;
  ShardedLoadConfig load = sharded_load(64, 4);
  ShardedLoadGenerator gen(load, server_config(), client,
                           {.capacity = 4'096});
  const ShardedLoadReport report = gen.run();

  ASSERT_EQ(report.shards.size(), 4u);
  ASSERT_TRUE(report.conserved);

  ServerStats sum;
  std::size_t cache_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::size_t latencies = 0;
  for (const ShardBreakdown& b : report.shards) {
    sum.connections_accepted += b.server.connections_accepted;
    sum.handshakes_completed += b.server.handshakes_completed;
    sum.full_handshakes += b.server.full_handshakes;
    sum.resumed_handshakes += b.server.resumed_handshakes;
    sum.bytes_opened += b.server.bytes_opened;
    sum.bytes_sealed += b.server.bytes_sealed;
    sum.graceful_closes += b.server.graceful_closes;
    cache_bytes += b.cache_state_bytes;
    cache_hits += b.cache.hits;
    latencies += b.server.handshake_latencies_us.size();
    EXPECT_EQ(b.handshake_histogram.count(),
              b.server.handshake_latencies_us.size());
  }
  const ServerStats& fleet = report.fleet.server;
  EXPECT_EQ(fleet.connections_accepted, sum.connections_accepted);
  EXPECT_EQ(fleet.handshakes_completed, sum.handshakes_completed);
  EXPECT_EQ(fleet.full_handshakes, sum.full_handshakes);
  EXPECT_EQ(fleet.resumed_handshakes, sum.resumed_handshakes);
  EXPECT_EQ(fleet.bytes_opened, sum.bytes_opened);
  EXPECT_EQ(fleet.bytes_sealed, sum.bytes_sealed);
  EXPECT_EQ(fleet.graceful_closes, sum.graceful_closes);
  EXPECT_EQ(report.fleet.cache_state_bytes, cache_bytes);
  EXPECT_EQ(report.fleet.cache.hits, cache_hits);
  EXPECT_EQ(fleet.handshake_latencies_us.size(), latencies);

  // Work actually spread: with 64 clients over 4 shards, no shard is idle.
  for (const ShardBreakdown& b : report.shards)
    EXPECT_GT(b.server.connections_accepted, 0u) << "shard " << b.shard;

  // Exact-aggregation satellite: merged-histogram p99 within one bucket
  // width of the sorted-sample fleet p99.
  EXPECT_NEAR(report.handshake_hist_p99_ms, report.fleet.handshake_p99_ms,
              0.250 + 1e-9);
}

// ------------------------------------------------ fleet admission control

TEST_F(ShardedServerTest, AdmissionWatermarksAreFleetWide) {
  // Fleet cap of 6 open connections across 4 shards: a per-shard
  // interpretation would admit up to 24. The modeled core makes each
  // handshake slow (5 ms per flight), so open connections pile up across
  // many slice barriers and the barrier-frozen snapshot starts refusing
  // fleet-wide.
  ServerConfig server = server_config();
  server.max_open_connections = 6;
  server.core.us_per_flight = 5'000.0;
  ClientConfig client = client_config();
  client.retry_budget = 1;  // refused = failed, no retry churn
  ShardedLoadConfig load = sharded_load(32, 4);
  load.base.mean_interarrival_us = 500;
  load.base.poisson_arrivals = false;
  load.slice_us = 1'000;
  ShardedLoadGenerator gen(load, server, client, {.capacity = 256});
  const ShardedLoadReport report = gen.run();

  EXPECT_GT(report.fleet.server.refused_connections, 0u);
  EXPECT_TRUE(report.conserved);
  // The refusals must be a fleet decision: the fleet cap (6) is below
  // what any per-shard interpretation (6 per shard x 4) would shed at.
  EXPECT_LT(report.fleet.sessions_completed, 32u);
  EXPECT_GT(report.fleet.sessions_completed, 0u);
}

// ------------------------------------------------- modeled-core scaling

TEST_F(ShardedServerTest, CoreModelScalesAggregateRateWithShards) {
  // Core-bound world: 2 ms of core per handshake flight, no think time,
  // one payload — the run's duration is the core backlog, so N shards
  // (= N modeled cores) drain it ~N times faster.
  ServerConfig server = server_config();
  server.core.us_per_flight = 2'000.0;
  ClientConfig client = client_config();
  client.think_time_us = 0;
  client.payloads_per_session = 1;

  double rate1 = 0;
  crypto::Bytes digest1;
  for (std::size_t shards : {1u, 4u}) {
    ShardedLoadConfig load = sharded_load(48, shards);
    load.base.mean_interarrival_us = 100;  // offered load beats one core
    load.base.poisson_arrivals = false;
    ShardedLoadGenerator gen(load, server, client, {.capacity = 256});
    const ShardedLoadReport report = gen.run();
    ASSERT_EQ(report.fleet.sessions_completed, 48u) << shards;
    ASSERT_GT(report.fleet.server.core_busy_us, 0.0) << shards;
    const double rate = report.fleet.full_handshakes_per_s;
    if (shards == 1) {
      rate1 = rate;
      digest1 = report.fleet.fleet_digest;
    } else {
      // Four cores drain the same offered load in less simulated time —
      // and the transcript still matches bit-for-bit.
      EXPECT_GT(rate, rate1 * 1.5);
      EXPECT_EQ(report.fleet.fleet_digest, digest1);
    }
  }
}

// ------------------------------------------------------ chaos integration

TEST_F(ShardedServerTest, FloodCampaignDigestIdenticalAcrossShardCounts) {
  chaos::CampaignConfig base;
  base.honest_clients = 16;
  base.server = server_config();
  base.server.max_handshake_queue = 12;
  base.client = client_config();
  base.cache.capacity = 256;
  chaos::HandshakeFlood flood;
  flood.at_us = 5'000;
  flood.attackers = 2;
  flood.connections_each = 10;
  flood.interarrival_us = 2'000;
  base.faults.push_back(flood);

  crypto::Bytes digest;
  std::uint64_t attack_connections = 0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    chaos::CampaignConfig cfg = base;
    cfg.shards = shards;
    chaos::CampaignRunner runner(cfg);
    const chaos::CampaignReport report = runner.run();
    ASSERT_TRUE(report.invariants_ok())
        << shards << " shards: " << report.invariant_failures;
    EXPECT_GT(report.attack_connections, 0u);
    if (shards == 1) {
      digest = report.fleet_digest;
      attack_connections = report.attack_connections;
      ASSERT_FALSE(digest.empty());
    } else {
      EXPECT_EQ(report.fleet_digest, digest) << shards << " shards";
      EXPECT_EQ(report.attack_connections, attack_connections);
    }
  }
}

TEST_F(ShardedServerTest, ShardedCampaignRejectsGlobalFaults) {
  chaos::CampaignConfig cfg;
  cfg.honest_clients = 2;
  cfg.server = server_config();
  cfg.client = client_config();
  cfg.shards = 2;
  cfg.faults.push_back(chaos::DispatchFailure{.at_us = 1'000});
  chaos::CampaignRunner runner(cfg);
  EXPECT_THROW(runner.run(), std::invalid_argument);
}

// ------------------------------------------------ ticket-rotation control

TEST_F(ShardedServerTest, TicketRotationAppliesToEveryShardInLockstep) {
  ServerConfig server = server_config();
  server.ticket.enabled = true;
  ClientConfig client = client_config();
  client.use_session_tickets = true;
  client.sessions = 2;

  for (std::size_t shards : {1u, 4u}) {
    ShardedServerConfig scfg;
    scfg.shards = shards;
    scfg.server = server;
    ShardedServer tier(scfg);
    tier.rotate_ticket_keys(10'000);
    tier.rotate_ticket_keys(20'000);
    const ShardedServer::RunStats rs = tier.run();
    EXPECT_EQ(rs.control_applied, 2u * shards);
    const ServerStats fleet = tier.fleet_stats();
    EXPECT_EQ(fleet.ticket_key_rotations, 2u * shards);
  }
}

}  // namespace
}  // namespace mapsec::server
