// mapsec::server tests: bounded resumption cache, handshakes over lossy
// channels, retry/backoff clean failure, backpressure, idle reaping, and
// the 1000-session soak whose transcript must be bit-identical for any
// PacketPipeline worker count.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::server {
namespace {

using crypto::Bytes;
using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

// ---------------------------------------------------- BoundedSessionCache

protocol::SessionCache::Entry entry(std::uint8_t tag) {
  protocol::SessionCache::Entry e;
  e.master_secret = Bytes(48, tag);
  e.suite = CipherSuite::kRsaAes128CbcSha;
  return e;
}

TEST(BoundedCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 3, .ttl_us = 0});
  cache.store(Bytes{1}, entry(1));
  cache.store(Bytes{2}, entry(2));
  cache.store(Bytes{3}, entry(3));
  ASSERT_NE(cache.lookup(Bytes{1}), nullptr);  // refresh {1}'s recency
  cache.store(Bytes{4}, entry(4));             // evicts {2}, not {1}

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.lookup(Bytes{2}), nullptr);
  EXPECT_NE(cache.lookup(Bytes{1}), nullptr);
  EXPECT_NE(cache.lookup(Bytes{4}), nullptr);
  EXPECT_EQ(cache.stats().lru_evictions, 1u);
  EXPECT_EQ(cache.stats().insertions, 4u);
}

TEST(BoundedCacheTest, TtlExpiresOnTheReadPathWithoutRefresh) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 8, .ttl_us = 1'000});
  cache.store(Bytes{1}, entry(1));

  clock.run_until(600);
  ASSERT_NE(cache.lookup(Bytes{1}), nullptr);  // alive, hit counted

  // A hit refreshes recency, not the deadline: at t=1200 the entry is
  // past its absolute lifetime even though it was read at t=600.
  clock.run_until(1'200);
  EXPECT_EQ(cache.lookup(Bytes{1}), nullptr);
  EXPECT_EQ(cache.stats().ttl_evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BoundedCacheTest, StoreRefreshesExistingEntryInPlace) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 2, .ttl_us = 0});
  cache.store(Bytes{1}, entry(1));
  cache.store(Bytes{2}, entry(2));
  cache.store(Bytes{1}, entry(9));  // overwrite, no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().lru_evictions, 0u);
  const auto* e = cache.lookup(Bytes{1});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->master_secret, Bytes(48, 9));
}

TEST(BoundedCacheTest, ZeroCapacityStoresNothing) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 0, .ttl_us = 0});
  cache.store(Bytes{1}, entry(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(Bytes{1}), nullptr);
}

TEST(BoundedCacheTest, HitAfterEvictMissesSeparateThrashFromStrangers) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 2, .ttl_us = 0});
  cache.store(Bytes{1}, entry(1));
  cache.store(Bytes{2}, entry(2));
  cache.store(Bytes{3}, entry(3));  // evicts {1}

  // {1} WAS cached: this miss is eviction thrash (a lost resumption).
  EXPECT_EQ(cache.lookup(Bytes{1}), nullptr);
  EXPECT_EQ(cache.stats().hit_after_evict_misses, 1u);
  // {9} was never stored: an ordinary miss, not thrash.
  EXPECT_EQ(cache.lookup(Bytes{9}), nullptr);
  EXPECT_EQ(cache.stats().hit_after_evict_misses, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Re-storing {1} clears its evicted mark: a later miss (after a fresh
  // eviction) is attributed to THAT eviction, counted once per loss.
  cache.store(Bytes{1}, entry(1));  // evicts {2}
  EXPECT_NE(cache.lookup(Bytes{1}), nullptr);
  EXPECT_EQ(cache.lookup(Bytes{2}), nullptr);
  EXPECT_EQ(cache.stats().hit_after_evict_misses, 2u);
}

TEST(BoundedCacheTest, TtlReapCountsAsThrashOnRetry) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 8, .ttl_us = 1'000});
  cache.store(Bytes{1}, entry(1));
  clock.run_until(2'000);
  EXPECT_EQ(cache.lookup(Bytes{1}), nullptr);  // TTL reap (miss #1)
  EXPECT_EQ(cache.stats().ttl_evictions, 1u);
  // The client retries with the same id: now a hit-after-evict miss.
  EXPECT_EQ(cache.lookup(Bytes{1}), nullptr);
  EXPECT_EQ(cache.stats().hit_after_evict_misses, 1u);
}

TEST(BoundedCacheTest, ResumptionStateBytesGrowWithUsers) {
  net::EventQueue clock;
  BoundedSessionCache cache(clock, {.capacity = 1'000, .ttl_us = 0});
  EXPECT_EQ(cache.resumption_state_bytes(), 0u);
  for (std::uint8_t i = 1; i <= 100; ++i)
    cache.store(Bytes{i}, entry(i));
  const std::size_t at100 = cache.resumption_state_bytes();
  EXPECT_GT(at100, 100u * 48u);  // at least the master secrets
  for (std::uint8_t i = 101; i <= 200; ++i)
    cache.store(Bytes{i}, entry(i));
  // O(users): double the entries, double the pinned state.
  EXPECT_EQ(cache.resumption_state_bytes(), 2 * at100);
}

// ------------------------------------------------------- serving fixture

/// Shared PKI: one CA, one server identity (RSA-512 for speed).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x5E53);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("SoakRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    return cfg;
  }

  static ClientConfig client_config() {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    return cfg;
  }

  static LoadConfig load_config(std::size_t clients) {
    LoadConfig cfg;
    cfg.num_clients = clients;
    cfg.appliance = platform::Processor::strongarm_sa1100();
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* ServerTest::ca_key_ = nullptr;
crypto::RsaKeyPair* ServerTest::server_key_ = nullptr;
protocol::CertificateAuthority* ServerTest::ca_ = nullptr;
protocol::Certificate* ServerTest::server_cert_ = nullptr;

// Loss sweep: sessions must complete (after retries if need be) at 0%,
// 5% and 20% frame loss with duplication and reordering on top.
class ServerLossTest : public ServerTest,
                       public ::testing::WithParamInterface<double> {};

TEST_P(ServerLossTest, SessionsCompleteUnderImpairments) {
  LoadConfig load = load_config(12);
  load.channel.loss_rate = GetParam();
  load.channel.dup_rate = GetParam() / 2;
  load.channel.reorder_rate = GetParam();
  load.seed = 0xB0A7 + static_cast<std::uint64_t>(GetParam() * 100);

  LoadGenerator gen(load, server_config(), client_config(), {});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_attempted, 12u);
  EXPECT_EQ(report.sessions_completed, 12u);
  EXPECT_EQ(report.sessions_failed, 0u);
  EXPECT_EQ(report.echo_mismatches, 0u);
  EXPECT_EQ(report.server.handshakes_completed, 12u);
  if (GetParam() == 0.0) {
    EXPECT_EQ(report.connection_attempts, 12u);  // no retries needed
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, ServerLossTest,
                         ::testing::Values(0.0, 0.05, 0.20));

TEST_F(ServerTest, SecondSessionResumesThroughTheCache) {
  ClientConfig client = client_config();
  client.sessions = 2;
  LoadGenerator gen(load_config(3), server_config(), client, {});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 6u);
  EXPECT_EQ(report.server.full_handshakes, 3u);
  EXPECT_EQ(report.server.resumed_handshakes, 3u);
  EXPECT_EQ(report.cache.hits, 3u);
  EXPECT_DOUBLE_EQ(report.server.resumption_rate(), 0.5);
  // Resumption skips the RSA exchange: it must be visibly cheaper.
  ASSERT_EQ(report.server.handshake_latencies_us.size(), 6u);
}

TEST_F(ServerTest, ClientGivesUpCleanlyAfterRetryBudget) {
  ClientConfig client = client_config();
  client.retry_budget = 3;
  client.handshake_timeout_us = 500'000;
  client.link.max_retries = 2;
  client.link.initial_rto_us = 20'000;

  LoadConfig load = load_config(1);
  load.channel.loss_rate = 1.0;  // black hole

  LoadGenerator gen(load, server_config(), client, {});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_attempted, 1u);
  EXPECT_EQ(report.sessions_completed, 0u);
  EXPECT_EQ(report.sessions_failed, 1u);
  EXPECT_EQ(report.connection_attempts, 3u);  // exactly the budget
  EXPECT_EQ(report.server.handshakes_completed, 0u);
  EXPECT_GT(report.server.handshakes_failed, 0u);  // server timed out too
}

TEST_F(ServerTest, BackpressureDefersInsteadOfDropping) {
  ClientConfig client = client_config();
  client.payloads_per_session = 8;
  client.payload_bytes = 256;
  client.think_time_us = 0;  // burst: all payloads in one flush window

  ServerConfig server = server_config();
  server.max_pending_echo_bytes = 300;  // < two payloads

  LoadGenerator gen(load_config(2), server, client, {});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 2u);
  EXPECT_EQ(report.echo_mismatches, 0u);
  EXPECT_GT(report.server.backpressure_deferrals, 0u);
  EXPECT_EQ(report.server.bytes_opened, 2u * 8u * 256u);
  EXPECT_EQ(report.server.bytes_sealed, 2u * 8u * 256u);
}

TEST_F(ServerTest, IdleTimeoutReapsLingeringClients) {
  ClientConfig client = client_config();
  client.linger = true;  // handshake, then silence

  ServerConfig server = server_config();
  server.idle_timeout_us = 2'000'000;

  LoadGenerator gen(load_config(2), server, client, {});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 2u);
  EXPECT_EQ(report.server.idle_closes, 2u);
  EXPECT_EQ(report.server.graceful_closes, 0u);
}

TEST_F(ServerTest, ReportPricesLoadAgainstTheAppliance) {
  LoadGenerator gen(load_config(4), server_config(), client_config(), {});
  const LoadReport report = gen.run();

  EXPECT_GT(report.sim_duration_s, 0.0);
  EXPECT_GT(report.full_handshakes_per_s, 0.0);
  EXPECT_GT(report.record_mbps, 0.0);
  EXPECT_LE(report.handshake_p50_ms, report.handshake_p99_ms);
  EXPECT_EQ(report.fleet_digest.size(), 32u);
  // Figure 3's point: required serving MIPS dwarfs the appliance budget.
  EXPECT_GT(report.gap.required_mips, 0.0);
  EXPECT_GT(report.gap.sessions_per_charge, 0.0);
}

// The acceptance soak: >= 1000 sessions through one server over a 5%-loss
// reordering channel. Every session completes (handshake + byte-exact
// echo) or fails cleanly inside its retry budget, and the entire run is
// bit-identical for any PacketPipeline worker count.
TEST_F(ServerTest, SoakIsBitIdenticalAcrossWorkerCounts) {
  auto run_with_workers = [&](std::size_t workers) {
    ClientConfig client = client_config();
    client.sessions = 2;
    client.payloads_per_session = 2;
    client.payload_bytes = 128;

    ServerConfig server = server_config();
    server.pipeline_workers = workers;

    LoadConfig load = load_config(500);  // 500 clients x 2 sessions
    load.channel.loss_rate = 0.05;
    load.channel.reorder_rate = 0.10;
    load.channel.dup_rate = 0.02;
    load.seed = 0x50AC;

    LoadGenerator gen(load, server, client,
                      {.capacity = 600, .ttl_us = 0});
    return gen.run();
  };

  const LoadReport one = run_with_workers(1);
  EXPECT_EQ(one.sessions_attempted, 1'000u);
  EXPECT_EQ(one.sessions_completed + one.sessions_failed,
            one.sessions_attempted);
  EXPECT_GT(one.sessions_completed, 990u);  // 5% loss, retries absorb it
  EXPECT_EQ(one.echo_mismatches, 0u);
  EXPECT_GT(one.server.resumed_handshakes, 0u);

  const LoadReport three = run_with_workers(3);
  EXPECT_EQ(one.fleet_digest, three.fleet_digest);
  EXPECT_EQ(one.sessions_completed, three.sessions_completed);
  EXPECT_EQ(one.server.bytes_sealed, three.server.bytes_sealed);
  EXPECT_EQ(one.server.handshake_latencies_us,
            three.server.handshake_latencies_us);
  EXPECT_EQ(one.sim_duration_s, three.sim_duration_s);
}

}  // namespace
}  // namespace mapsec::server
