// Public-key offload engine tests: modeled-lane scheduling, thread-pool
// lifecycle (drain and shutdown under TSan), stalled-worker stealing,
// and the determinism contract — the fleet transcript digest must be
// byte-identical for ANY offload worker count, including inline mode.
#include <gtest/gtest.h>

#include <vector>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/engine/offload_engine.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"

namespace mapsec::server {
namespace {

using crypto::Bytes;
using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

/// Shared PKI: one CA, one server identity (RSA-512 for speed).
class ServerOffloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x0FF1);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("OffloadRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    return cfg;
  }

  static ClientConfig client_config() {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    return cfg;
  }

  static LoadConfig load_config(std::size_t clients) {
    LoadConfig cfg;
    cfg.num_clients = clients;
    cfg.appliance = platform::Processor::strongarm_sa1100();
    return cfg;
  }

  static protocol::PkJob sign_job(std::uint8_t tag) {
    protocol::PkJob job;
    job.kind = protocol::PkJob::Kind::kRsaSign;
    job.private_key = &server_key_->priv;
    job.input = Bytes(32, tag);
    return job;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* ServerOffloadTest::ca_key_ = nullptr;
crypto::RsaKeyPair* ServerOffloadTest::server_key_ = nullptr;
protocol::CertificateAuthority* ServerOffloadTest::ca_ = nullptr;
protocol::Certificate* ServerOffloadTest::server_cert_ = nullptr;

// ------------------------------------------------- OffloadEngine directly

TEST_F(ServerOffloadTest, PoolDrainsAllSubmittedJobs) {
  net::EventQueue queue;
  engine::OffloadEngine engine(queue, 4);
  const protocol::PkResult expected = protocol::run_pk_job(sign_job(7));

  int completions = 0;
  for (int i = 0; i < 16; ++i) {
    engine.submit(sign_job(7), [&](const protocol::PkResult& r) {
      ++completions;
      EXPECT_EQ(r.signature, expected.signature);
    });
  }
  EXPECT_EQ(engine.in_flight(), 16u);
  queue.run_all();
  EXPECT_EQ(completions, 16);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(engine.stats().submitted, 16u);
  EXPECT_EQ(engine.stats().completed, 16u);
}

// Destroying the engine with jobs still queued must stop the workers
// cleanly (no deadlock, no use-after-free of the work queue) — the
// completion events are simply never run because the EventQueue is
// dropped without draining. TSan covers the join ordering.
TEST_F(ServerOffloadTest, ShutdownWithQueuedJobsDoesNotDeadlock) {
  net::EventQueue queue;
  {
    engine::OffloadEngine engine(queue, 2);
    for (int i = 0; i < 32; ++i)
      engine.submit(sign_job(9), [](const protocol::PkResult&) {});
    // Engine destructor runs here with most jobs still queued.
  }
  SUCCEED();
}

TEST_F(ServerOffloadTest, ZeroWorkersRejected) {
  net::EventQueue queue;
  EXPECT_THROW(engine::OffloadEngine(queue, 0), std::invalid_argument);
}

// The modeled lane schedule is a pure function of the submission
// sequence: with one lane every job queues behind the previous one; with
// enough lanes none waits.
TEST_F(ServerOffloadTest, LaneModelAccountsQueueing) {
  engine::OffloadCosts costs;
  costs.rsa_sign_us = 1'000;
  {
    net::EventQueue queue;
    engine::OffloadEngine one(queue, 1, costs);
    for (int i = 0; i < 4; ++i)
      one.submit(sign_job(3), [](const protocol::PkResult&) {});
    queue.run_all();
    // Jobs 2..4 waited 1, 2 and 3 ms for the single lane.
    EXPECT_EQ(one.stats().queue_wait_us, 6'000u);
    EXPECT_EQ(one.stats().lane_busy_us, 4'000u);
    EXPECT_EQ(queue.now(), 4'000u);
  }
  {
    net::EventQueue queue;
    engine::OffloadEngine four(queue, 4, costs);
    for (int i = 0; i < 4; ++i)
      four.submit(sign_job(3), [](const protocol::PkResult&) {});
    queue.run_all();
    EXPECT_EQ(four.stats().queue_wait_us, 0u);
    EXPECT_EQ(queue.now(), 1'000u);
  }
}

// A stalled worker must degrade gracefully: the completion event waits
// out the grace period, then recomputes the job inline (bit-identical —
// PkResults are pure functions of the job) and counts a steal.
TEST_F(ServerOffloadTest, StalledWorkersAreStolenNotDeadlocked) {
  net::EventQueue queue;
  engine::OffloadEngine engine(queue, 2, {}, /*steal_timeout_ms=*/25);
  engine.inject_worker_stall(0, 400'000'000);  // 400 ms per job
  engine.inject_worker_stall(1, 400'000'000);
  const protocol::PkResult expected = protocol::run_pk_job(sign_job(5));

  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    engine.submit(sign_job(5), [&](const protocol::PkResult& r) {
      ++completions;
      EXPECT_EQ(r.signature, expected.signature);
    });
  }
  queue.run_all();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(engine.stats().completed, 3u);
  EXPECT_GE(engine.stats().stolen, 1u);
}

// ----------------------------------------------------- batched windows

// The batched lane model, priced by hand: one idle lane dispatches the
// first job alone (batching only materialises under queueing), then the
// four jobs that queued behind it drain as one window costing
// cost + 3 * 0.3 * cost.
TEST_F(ServerOffloadTest, BatchWindowDrainsQueuedJobs) {
  engine::OffloadCosts costs;
  costs.rsa_sign_us = 1'000;
  costs.batch_marginal = 0.3;
  net::EventQueue queue;
  engine::OffloadEngine engine(queue, 1, costs, 250, /*batch_width=*/4);
  EXPECT_EQ(engine.batch_width(), 4u);
  const protocol::PkResult expected = protocol::run_pk_job(sign_job(6));

  std::vector<net::SimTime> done_at;
  for (int i = 0; i < 5; ++i) {
    engine.submit(sign_job(6), [&, i](const protocol::PkResult& r) {
      EXPECT_EQ(r.signature, expected.signature) << "job " << i;
      done_at.push_back(queue.now());
    });
  }
  queue.run_all();
  // Job 0 alone at t=1000; jobs 1..4 share the window closing at
  // 1000 + (1000 + 3 * 300) = 2900.
  ASSERT_EQ(done_at.size(), 5u);
  EXPECT_EQ(done_at[0], 1'000u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(done_at[i], 2'900u) << "job " << i;
  EXPECT_EQ(engine.stats().batches, 2u);
  EXPECT_EQ(engine.stats().batched_jobs, 4u);
  EXPECT_EQ(engine.stats().max_batch_fill, 4u);
  EXPECT_EQ(engine.stats().lane_busy_us, 2'900u);
  EXPECT_EQ(engine.stats().queue_wait_us, 4'000u);  // 4 jobs x 1 ms
  EXPECT_EQ(engine.stats().completed, 5u);
}

// Width 1 must reproduce the unbatched engine's schedule exactly — same
// completion instants, no windows with fill >= 2.
TEST_F(ServerOffloadTest, WidthOneReproducesUnbatchedSchedule) {
  engine::OffloadCosts costs;
  costs.rsa_sign_us = 1'000;
  net::EventQueue queue;
  engine::OffloadEngine engine(queue, 1, costs, 250, /*batch_width=*/1);
  for (int i = 0; i < 4; ++i)
    engine.submit(sign_job(3), [](const protocol::PkResult&) {});
  queue.run_all();
  EXPECT_EQ(queue.now(), 4'000u);
  EXPECT_EQ(engine.stats().queue_wait_us, 6'000u);
  EXPECT_EQ(engine.stats().batches, 4u);
  EXPECT_EQ(engine.stats().batched_jobs, 0u);
  EXPECT_EQ(engine.stats().max_batch_fill, 1u);
}

// A stall that hits a multi-job window exercises the whole-window steal:
// the event-loop thread recomputes every job of the window inline, and
// all results stay bit-identical.
TEST_F(ServerOffloadTest, StalledBatchIsStolenWholeWindow) {
  net::EventQueue queue;
  engine::OffloadEngine engine(queue, 1, {}, /*steal_timeout_ms=*/25,
                               /*batch_width=*/4);
  engine.inject_worker_stall(0, 400'000'000);  // 400 ms per window
  const protocol::PkResult expected = protocol::run_pk_job(sign_job(5));

  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    engine.submit(sign_job(5), [&](const protocol::PkResult& r) {
      ++completions;
      EXPECT_EQ(r.signature, expected.signature);
    });
  }
  queue.run_all();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(engine.stats().completed, 5u);
  EXPECT_EQ(engine.stats().batched_jobs, 4u);  // jobs 1..4 shared a window
  EXPECT_GE(engine.stats().stolen, 4u);  // at least the window was stolen
}

// --------------------------------------------- fleet-level determinism

// The offload determinism contract: for any worker count — and for
// inline mode — the honest-fleet transcript digest is byte-identical;
// only simulated timing (and therefore rates) may change.
TEST_F(ServerOffloadTest, FleetDigestIdenticalAcrossWorkerCounts) {
  Bytes digest;
  for (std::size_t workers : {0u, 1u, 4u}) {
    ServerConfig server = server_config();
    server.offload_workers = workers;
    LoadGenerator gen(load_config(30), server, client_config(), {});
    const LoadReport r = gen.run();
    EXPECT_EQ(r.sessions_completed, 30u) << workers << " workers";
    EXPECT_EQ(r.echo_mismatches, 0u);
    if (digest.empty()) {
      digest = r.fleet_digest;
    } else {
      EXPECT_EQ(r.fleet_digest, digest) << workers << " workers";
    }
    if (workers > 0) {
      // One RSA ClientKeyExchange decrypt per full handshake, all
      // completed, none dropped or stolen on the healthy path.
      EXPECT_EQ(r.server.offload_submitted, 30u);
      EXPECT_EQ(r.server.offload_completed, 30u);
      EXPECT_EQ(r.server.offload_stolen, 0u);
      EXPECT_GT(r.server.offload_lane_busy_us, 0u);
    } else {
      EXPECT_EQ(r.server.offload_submitted, 0u);
    }
  }
}

// The batched determinism contract: batching moves completion instants
// (lane windows finish earlier in aggregate) but never the bytes — the
// honest-fleet transcript digest is identical for every batch width.
// One lane with ~1 ms arrivals against a 4 ms service time guarantees
// queueing, so widths >= 2 genuinely form multi-job windows.
TEST_F(ServerOffloadTest, FleetDigestIdenticalAcrossBatchWidths) {
  Bytes digest;
  for (std::size_t width : {1u, 2u, 4u, 8u}) {
    ServerConfig server = server_config();
    server.offload_workers = 1;
    server.offload_batch_width = width;
    LoadGenerator gen(load_config(30), server, client_config(), {});
    const LoadReport r = gen.run();
    EXPECT_EQ(r.sessions_completed, 30u) << "width " << width;
    EXPECT_EQ(r.echo_mismatches, 0u) << "width " << width;
    EXPECT_EQ(r.server.offload_completed, 30u) << "width " << width;
    EXPECT_EQ(r.server.offload_stolen, 0u) << "width " << width;
    if (width == 1) {
      EXPECT_EQ(r.server.offload_batched_jobs, 0u);
    } else {
      EXPECT_GT(r.server.offload_batched_jobs, 0u) << "width " << width;
      EXPECT_LE(r.server.offload_max_batch_fill, width) << "width " << width;
      EXPECT_GE(r.server.offload_max_batch_fill, 2u) << "width " << width;
    }
    if (digest.empty()) {
      digest = r.fleet_digest;
    } else {
      EXPECT_EQ(r.fleet_digest, digest) << "width " << width;
    }
  }
}

// Resumption composes with offload: abbreviated handshakes never touch
// the accelerator, so lane demand tracks FULL handshakes only.
TEST_F(ServerOffloadTest, ResumedHandshakesSkipTheAccelerator) {
  ServerConfig server = server_config();
  server.offload_workers = 2;
  ClientConfig client = client_config();
  client.sessions = 3;  // one full + two resumed per client
  LoadGenerator gen(load_config(10), server, client,
                    {.capacity = 64, .ttl_us = 0});
  const LoadReport r = gen.run();
  EXPECT_EQ(r.sessions_completed, 30u);
  EXPECT_EQ(r.server.full_handshakes, 10u);
  EXPECT_EQ(r.server.resumed_handshakes, 20u);
  EXPECT_EQ(r.server.offload_submitted, r.server.full_handshakes);
  EXPECT_EQ(r.server.offload_completed, r.server.offload_submitted);
}

// Offload composes with the admission valve: suspended handshakes count
// toward the handshake queue, so a flood of concurrent full handshakes
// still trips the bound instead of growing unbounded deferred state.
TEST_F(ServerOffloadTest, SuspendedHandshakesCountTowardAdmission) {
  ServerConfig server = server_config();
  server.offload_workers = 1;
  server.max_handshake_queue = 4;
  LoadConfig load = load_config(24);
  load.mean_interarrival_us = 10;  // near-simultaneous arrivals
  ClientConfig client = client_config();
  client.retry_budget = 6;
  LoadGenerator gen(load, server, client, {});
  const LoadReport r = gen.run();
  EXPECT_GT(r.server.refused_connections, 0u);
  EXPECT_EQ(r.sessions_completed, 24u);  // retries land once lanes drain
}

}  // namespace
}  // namespace mapsec::server
