// Server-level stateless-ticket tests: ticket-mode resumption through the
// full event-driven stack (LoadGenerator fleets), key rotation under
// traffic, degraded-mode interplay, and the cache-vs-ticket determinism
// witness (identical fleet digests).
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::server {
namespace {

using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

class TicketModeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x5E53);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("TicketRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config(bool tickets) {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    cfg.ticket.enabled = tickets;
    return cfg;
  }

  static ClientConfig client_config(bool tickets) {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    cfg.use_session_tickets = tickets;
    return cfg;
  }

  static LoadConfig load_config(std::size_t clients) {
    LoadConfig cfg;
    cfg.num_clients = clients;
    cfg.appliance = platform::Processor::strongarm_sa1100();
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* TicketModeTest::ca_key_ = nullptr;
crypto::RsaKeyPair* TicketModeTest::server_key_ = nullptr;
protocol::CertificateAuthority* TicketModeTest::ca_ = nullptr;
protocol::Certificate* TicketModeTest::server_cert_ = nullptr;

TEST_F(TicketModeTest, SecondSessionResumesStatelesslyWithZeroCacheBytes) {
  ClientConfig client = client_config(/*tickets=*/true);
  client.sessions = 2;
  // capacity 0: the server has NO session cache storage at all — every
  // resumption must come from the ticket path.
  LoadGenerator gen(load_config(4), server_config(/*tickets=*/true),
                    client, {.capacity = 0, .ttl_us = 0});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 8u);
  EXPECT_EQ(report.server.full_handshakes, 4u);
  EXPECT_EQ(report.server.resumed_handshakes, 4u);
  EXPECT_EQ(report.server.ticket_resumptions, 4u);
  // Every handshake re-issues (first + resumed): 8 seals.
  EXPECT_EQ(report.server.tickets_issued, 8u);
  EXPECT_EQ(report.server.ticket_open_failures, 0u);
  EXPECT_EQ(report.cache.insertions, 0u);
  EXPECT_EQ(report.cache_state_bytes, 0u);
  // Server resumption state is the key ring: O(depth), a few hundred
  // bytes regardless of fleet size.
  EXPECT_GT(report.ticket_state_bytes, 0u);
  EXPECT_LT(report.ticket_state_bytes, 1'024u);
  // The ticket-tier pricing carries the state comparison.
  EXPECT_GT(report.ticket_gap.ticket_open_mips, 0.0);
  EXPECT_EQ(report.ticket_gap.server_state_bytes,
            static_cast<double>(report.ticket_state_bytes));
}

TEST_F(TicketModeTest, FleetDigestIdenticalCacheVsTicket) {
  auto run = [&](bool tickets) {
    ClientConfig client = client_config(tickets);
    client.sessions = 2;
    client.payloads_per_session = 3;
    LoadConfig load = load_config(16);
    load.seed = 0x71C7;
    LoadGenerator gen(load, server_config(tickets), client,
                      {.capacity = tickets ? 0u : 64u, .ttl_us = 0});
    return gen.run();
  };

  const LoadReport cached = run(false);
  const LoadReport ticketed = run(true);
  // Same fleet, same payload streams: the transcript digest is a pure
  // function of the echoed bytes, so HOW resumption happened (cache
  // lookup vs ticket decrypt) must not show up in it.
  EXPECT_EQ(cached.fleet_digest, ticketed.fleet_digest);
  EXPECT_EQ(cached.sessions_completed, ticketed.sessions_completed);
  EXPECT_EQ(cached.server.bytes_sealed, ticketed.server.bytes_sealed);
  EXPECT_EQ(cached.server.resumed_handshakes,
            ticketed.server.resumed_handshakes);
  EXPECT_EQ(cached.server.ticket_resumptions, 0u);
  EXPECT_EQ(ticketed.server.ticket_resumptions,
            ticketed.server.resumed_handshakes);
  // The state bill is where the two modes differ.
  EXPECT_GT(cached.cache_state_bytes, ticketed.ticket_state_bytes);
}

TEST_F(TicketModeTest, IntervalRotationUnderTrafficStrandsNobody) {
  ClientConfig client = client_config(/*tickets=*/true);
  client.sessions = 3;
  ServerConfig server = server_config(/*tickets=*/true);
  // Rotate roughly every 50 simulated ms — many rotations over the run,
  // but the 3-deep window keeps just-issued tickets decryptable.
  server.ticket.rotation_interval_us = 50'000;
  server.ticket.decrypt_window = 3;

  LoadConfig load = load_config(24);
  load.mean_interarrival_us = 20'000;
  LoadGenerator gen(load, server, client, {.capacity = 0, .ttl_us = 0});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 72u);
  EXPECT_GT(report.server.ticket_key_rotations, 0u);
  // Rotation must never strand an honest client: a stale ticket falls
  // back to a full handshake (which re-issues), never a failure.
  EXPECT_EQ(report.sessions_failed, 0u);
  EXPECT_GT(report.server.ticket_resumptions, 0u);
  // State stays O(window) no matter how many rotations happened.
  EXPECT_LT(report.ticket_state_bytes, 1'024u);
}

TEST_F(TicketModeTest, TicketlessClientsUnaffectedByTicketMode) {
  // Clients that never ask for tickets against a ticket-enabled server:
  // plain session-id resumption through the cache, as before.
  ClientConfig client = client_config(/*tickets=*/false);
  client.sessions = 2;
  LoadGenerator gen(load_config(3), server_config(/*tickets=*/true),
                    client, {.capacity = 64, .ttl_us = 0});
  const LoadReport report = gen.run();

  EXPECT_EQ(report.sessions_completed, 6u);
  EXPECT_EQ(report.server.resumed_handshakes, 3u);
  EXPECT_EQ(report.server.ticket_resumptions, 0u);
  EXPECT_EQ(report.server.tickets_issued, 0u);
  EXPECT_EQ(report.cache.hits, 3u);
}

TEST_F(TicketModeTest, DegradedModeShedsFullButServesTicketHolders) {
  // Tight degraded watermarks + a burst of arrivals: ticket-bearing
  // second sessions keep resuming while fresh full handshakes are shed.
  ClientConfig client = client_config(/*tickets=*/true);
  client.sessions = 2;
  client.retry_budget = 6;
  ServerConfig server = server_config(/*tickets=*/true);
  server.degraded_high_watermark = 2;
  server.degraded_low_watermark = 1;

  LoadConfig load = load_config(12);
  load.mean_interarrival_us = 200;  // burst
  LoadGenerator gen(load, server, client, {.capacity = 0, .ttl_us = 0});
  const LoadReport report = gen.run();

  // The run saw degraded stretches, and ticket resumption kept working.
  EXPECT_GT(report.server.degraded_transitions, 0u);
  EXPECT_GT(report.server.ticket_resumptions, 0u);
  // Whatever was shed failed cleanly and within budget.
  EXPECT_EQ(report.sessions_completed + report.sessions_failed,
            report.sessions_attempted);
}

}  // namespace
}  // namespace mapsec::server
