// Supervised shard failure & recovery: crash/hang/drain injection through
// the chaos campaign, ticket-based zero-state failover (no honest session
// lost, reconnects resume without a public-key op), deterministic rejoin
// (the crashed run's fleet digest is byte-identical to a rerun AND to the
// undisturbed run — payloads are pure functions of (seed, session, index)
// and each index is digested exactly once), and the conservation of the
// per-shard books across a world's death and warm rejoin.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mapsec/analysis/stats.hpp"
#include "mapsec/chaos/campaign.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/platform/gap.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/platform/workload.hpp"
#include "mapsec/server/supervisor.hpp"

namespace mapsec::server {
namespace {

using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

/// Same seed-splitting mix the load generator and campaign use, so the
/// direct supervised world below speaks their dialect.
constexpr std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  return seed ^ (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
}

class FailoverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x5E53);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("FailRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    cfg.ticket.enabled = true;
    return cfg;
  }

  static ClientConfig client_config() {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    cfg.use_session_tickets = true;
    cfg.sessions = 3;
    cfg.retry_budget = 6;  // room for the failover reconnect attempt
    return cfg;
  }

  /// A supervised campaign: ticket-mode fleet, spread arrivals so the
  /// crash lands mid-flood with sessions in flight on the victim.
  static chaos::CampaignConfig campaign(std::size_t shards) {
    chaos::CampaignConfig cfg;
    cfg.shards = shards;
    cfg.honest_clients = 24;
    cfg.mean_interarrival_us = 4'000;
    cfg.server = server_config();
    cfg.client = client_config();
    cfg.cache.capacity = 0;  // stateless: nothing for a crash to lose
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* FailoverTest::ca_key_ = nullptr;
crypto::RsaKeyPair* FailoverTest::server_key_ = nullptr;
protocol::CertificateAuthority* FailoverTest::ca_ = nullptr;
protocol::Certificate* FailoverTest::server_cert_ = nullptr;

// ------------------------------------------------- crash: zero loss

TEST_F(FailoverTest, CrashMidFloodLosesNoHonestSessions) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.faults.push_back(chaos::ShardCrash{
      .at_us = 120'000, .shard = 1, .repair_us = 300'000});
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();

  EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
  EXPECT_EQ(r.shard_crashes, 1u);
  EXPECT_EQ(r.shard_rejoins, 1u);
  EXPECT_GT(r.clients_migrated, 0u);
  EXPECT_EQ(r.sessions_failed, 0u);
  EXPECT_EQ(r.sessions_completed, r.sessions_attempted);
  EXPECT_EQ(r.echo_mismatches, 0u);
  // Someone was mid-session on the victim, and every such reconnect made
  // it back (the blackout samples are the SLO input).
  EXPECT_GT(r.client_reconnects, 0u);
  EXPECT_LE(r.failover_resumes, r.client_reconnects);
  EXPECT_GT(r.blackout_p99_ms, 0.0);
  EXPECT_EQ(r.missed_heartbeats, 0u);
}

TEST_F(FailoverTest, CrashWithoutRepairStaysDown) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.faults.push_back(chaos::ShardCrash{
      .at_us = 120'000, .shard = 2, .repair_us = 0});
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();

  EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
  EXPECT_EQ(r.shard_crashes, 1u);
  EXPECT_EQ(r.shard_rejoins, 0u);
  EXPECT_EQ(r.sessions_failed, 0u);  // survivors carry the victim's keys
  EXPECT_EQ(r.sessions_completed, r.sessions_attempted);
}

// ------------------------------------- determinism: the digest headline

TEST_F(FailoverTest, CrashRecoveryTranscriptIsDeterministic) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.faults.push_back(chaos::ShardCrash{
      .at_us = 120'000, .shard = 1, .repair_us = 300'000});
  const chaos::CampaignReport a = chaos::CampaignRunner(cfg).run();
  const chaos::CampaignReport b = chaos::CampaignRunner(cfg).run();

  ASSERT_TRUE(a.invariants_ok()) << a.invariant_failures;
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.client_reconnects, b.client_reconnects);
  EXPECT_EQ(a.sessions_completed, b.sessions_completed);
  EXPECT_EQ(a.connections_killed, b.connections_killed);
}

TEST_F(FailoverTest, CrashedRunDigestMatchesUndisturbedRun) {
  // Payload purity + digest-once: a session interrupted by a crash and
  // resumed on a survivor folds exactly the bytes an undisturbed run
  // would have — so the crashed fleet's digest EQUALS the no-crash
  // digest, and is invariant across surviving-shard counts too.
  const chaos::CampaignReport calm =
      chaos::CampaignRunner(campaign(4)).run();
  ASSERT_TRUE(calm.invariants_ok()) << calm.invariant_failures;
  ASSERT_EQ(calm.sessions_failed, 0u);

  for (const std::size_t shards : {2u, 4u}) {
    chaos::CampaignConfig cfg = campaign(shards);
    cfg.faults.push_back(chaos::ShardCrash{
        .at_us = 120'000, .shard = 1, .repair_us = 300'000});
    const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();
    ASSERT_TRUE(r.invariants_ok())
        << shards << " shards: " << r.invariant_failures;
    EXPECT_EQ(r.sessions_failed, 0u) << shards << " shards";
    EXPECT_EQ(r.fleet_digest, calm.fleet_digest) << shards << " shards";
  }
}

// ----------------------------------------------------- hang: watchdog

TEST_F(FailoverTest, HangIsDetectedAndEscalatedToKill) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.watchdog_wall_ms = 50;  // keep the one real wall-clock wait short
  cfg.faults.push_back(chaos::ShardHang{
      .at_us = 120'000, .shard = 1, .repair_us = 300'000});
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();

  EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
  EXPECT_EQ(r.shard_hangs_detected, 1u);
  EXPECT_EQ(r.shard_crashes, 0u);  // escalation is its own verb
  EXPECT_EQ(r.shard_rejoins, 1u);
  EXPECT_EQ(r.sessions_failed, 0u);
  EXPECT_EQ(r.sessions_completed, r.sessions_attempted);
}

TEST_F(FailoverTest, HangEscalationIsDeterministic) {
  chaos::CampaignConfig cfg = campaign(2);
  cfg.watchdog_wall_ms = 50;
  cfg.faults.push_back(chaos::ShardHang{
      .at_us = 100'000, .shard = 0, .repair_us = 200'000});
  const chaos::CampaignReport a = chaos::CampaignRunner(cfg).run();
  const chaos::CampaignReport b = chaos::CampaignRunner(cfg).run();
  ASSERT_TRUE(a.invariants_ok()) << a.invariant_failures;
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.shard_hangs_detected, b.shard_hangs_detected);
  EXPECT_EQ(a.connections_killed, b.connections_killed);
}

// ----------------------------------------------------- graceful drain

TEST_F(FailoverTest, GracefulDrainKillsNothing) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.faults.push_back(chaos::ShardCrash{.at_us = 120'000,
                                         .shard = 1,
                                         .repair_us = 300'000,
                                         .graceful = true,
                                         .drain_deadline_us = 60'000'000});
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();

  EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
  EXPECT_EQ(r.shard_drains, 1u);
  EXPECT_EQ(r.shard_crashes, 0u);
  EXPECT_EQ(r.shard_rejoins, 1u);
  // The deadline was generous: every open connection finished in place,
  // so nothing was ever hard-killed.
  EXPECT_EQ(r.connections_killed, 0u);
  EXPECT_EQ(r.sessions_failed, 0u);
  EXPECT_EQ(r.sessions_completed, r.sessions_attempted);
}

// ---------------------------------------- shard-scoped stall satellites

TEST_F(FailoverTest, ShardScopedStallsAreOutputInvariant) {
  const chaos::CampaignReport calm =
      chaos::CampaignRunner(campaign(2)).run();
  ASSERT_TRUE(calm.invariants_ok()) << calm.invariant_failures;

  chaos::CampaignConfig cfg = campaign(2);
  cfg.faults.push_back(chaos::ShardWorkerStall{
      .at_us = 50'000, .shard = 0, .worker = 0, .stall_ns = 100'000});
  cfg.faults.push_back(chaos::ShardOffloadStall{
      .at_us = 50'000, .shard = 1, .all_workers = true});
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();

  EXPECT_TRUE(r.invariants_ok()) << r.invariant_failures;
  // Stalls cost host time, never simulated outcomes.
  EXPECT_EQ(r.fleet_digest, calm.fleet_digest);
  EXPECT_EQ(r.sessions_completed, calm.sessions_completed);
}

// ---------------------------------------------- fault-plan validation

TEST_F(FailoverTest, GlobalFaultsRejectedWithScopedAlternative) {
  chaos::CampaignConfig cfg = campaign(2);
  cfg.faults.push_back(chaos::WorkerStall{.at_us = 1'000});
  try {
    chaos::CampaignRunner(cfg).run();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must point at the shard-scoped replacement.
    EXPECT_NE(std::string(e.what()).find("ShardWorkerStall"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FailoverTest, ProcessGlobalFaultsStillRejected) {
  for (const chaos::Fault fault :
       {chaos::Fault{chaos::DispatchFailure{.at_us = 1'000}},
        chaos::Fault{chaos::RngExhaustion{.at_us = 1'000}}}) {
    chaos::CampaignConfig cfg = campaign(2);
    cfg.faults.push_back(fault);
    EXPECT_THROW(chaos::CampaignRunner(cfg).run(), std::invalid_argument);
  }
}

TEST_F(FailoverTest, ShardFaultsRejectedOutsideShardedCampaigns) {
  chaos::CampaignConfig cfg = campaign(0);
  cfg.shards = 0;
  cfg.faults.push_back(chaos::ShardCrash{.at_us = 1'000, .shard = 0});
  EXPECT_THROW(chaos::CampaignRunner(cfg).run(), std::invalid_argument);

  chaos::CampaignConfig oob = campaign(2);
  oob.faults.push_back(chaos::ShardCrash{.at_us = 1'000, .shard = 7});
  EXPECT_THROW(chaos::CampaignRunner(oob).run(), std::invalid_argument);
}

// ------------------------- routing: only the victim's keys ever move

TEST_F(FailoverTest, RendezvousMovesOnlyTheDeadShardsKeys) {
  const std::size_t shards = 4;
  std::vector<bool> all(shards, true);
  std::vector<bool> one_down(shards, true);
  one_down[2] = false;
  for (std::uint32_t key = 0; key < 512; ++key) {
    const std::size_t before = shard_for_live(key, shards, all);
    const std::size_t after = shard_for_live(key, shards, one_down);
    EXPECT_LT(after, shards);
    EXPECT_TRUE(one_down[after]);
    if (before != 2)
      EXPECT_EQ(after, before) << "key " << key << " moved needlessly";
  }
  // Nothing routable: falls back to the stable hash (callers treat the
  // dial as unanswered).
  std::vector<bool> none(shards, false);
  for (std::uint32_t key = 0; key < 32; ++key)
    EXPECT_EQ(shard_for_live(key, shards, none), shard_for(key, shards));
}

// ------------------- dead-shard books: breakdown + histogram merge

TEST_F(FailoverTest, DeadShardBreakdownStillConserves) {
  chaos::CampaignConfig cfg = campaign(4);
  cfg.faults.push_back(chaos::ShardCrash{
      .at_us = 120'000, .shard = 1, .repair_us = 300'000});
  // The campaign's own judge runs tier.conserved(), which now requires
  // every retired world's books to balance and the fleet totals to equal
  // retired + live sums. A crash mid-flood is exactly the case that used
  // to lose connections from the books.
  const chaos::CampaignReport r = chaos::CampaignRunner(cfg).run();
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.connections_killed, 0u);
  // The killed connections are in the fleet's failed column (buried with
  // the retired world), not vanished.
  EXPECT_GE(r.server.failed_connections, r.connections_killed);
  EXPECT_EQ(r.server.connections_accepted,
            r.server.graceful_closes + r.server.idle_closes +
                r.server.failed_connections + r.server.refused_connections);
}

TEST_F(FailoverTest, RetiredHistogramsMergeExactly) {
  // Direct supervised world with real traffic: analysis::merge over the
  // per-shard breakdown histograms must count every handshake the fleet
  // ever completed — including those of the world that died mid-run and
  // was buried into its slot's retired books.
  constexpr std::uint64_t kSeed = 0xFA110E4;
  constexpr std::size_t kClients = 16;
  constexpr std::size_t kShards = 2;

  // Channels before the tier, as in ShardedLoadGenerator: server links
  // must detach from still-live channels at teardown.
  std::vector<std::vector<std::unique_ptr<net::DuplexChannel>>> channels(
      kShards);

  ShardedServerConfig scfg;
  scfg.shards = kShards;
  scfg.server = server_config();
  ShardSupervisor tier(scfg);
  tier.rotate_ticket_keys(10'000);
  tier.schedule_crash(60'000, 0, 200'000);

  std::vector<std::unique_ptr<crypto::HmacDrbg>> engine_rngs;
  std::vector<std::unique_ptr<engine::ProtocolEngine>> engines;
  for (std::size_t s = 0; s < kShards; ++s) {
    engine_rngs.push_back(
        std::make_unique<crypto::HmacDrbg>(mix(kSeed, 0xE17 + s)));
    engines.push_back(std::make_unique<engine::ProtocolEngine>(
        scfg.server.engine_profile, engine_rngs.back().get()));
    engines.back()->load_program("ccmp-in", engine::ccmp_inbound_program());
  }

  const ClientConfig ccfg = client_config();
  const net::ChannelConfig channel_cfg;
  std::vector<std::unique_ptr<SessionClient>> clients;
  std::vector<std::uint32_t> attempts(kClients, 0);
  net::SimTime arrival = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    const auto key = static_cast<std::uint32_t>(i);
    const std::size_t s = shard_for_live(key, kShards, tier.routable());
    auto client = std::make_unique<SessionClient>(
        tier.queue(s), ccfg, key, *engines[s], mix(kSeed, 0xC11E57 + i));
    client->set_connect([&tier, &channels, &attempts, &ccfg, channel_cfg,
                         key, i](SessionClient&) {
      // Route by the CURRENT binding: after a failover this client's
      // world (and its channels) live on the survivor's queue.
      const std::size_t shard = tier.shard_of(key);
      net::EventQueue& queue = tier.queue(shard);
      const std::uint32_t wire_id = make_wire_id(key, attempts[i]++);
      auto channel = std::make_unique<net::DuplexChannel>(
          queue, channel_cfg, channel_cfg, mix(kSeed, 0xC4A17 + wire_id));
      SecureSessionServer::AcceptOptions opts;
      opts.wire_id = wire_id;
      opts.rng_seed = mix(mix(kSeed, 0x5E4), wire_id);
      tier.accept(key, channel->b_to_a(), channel->a_to_b(), opts);
      auto link = std::make_unique<net::ReliableLink>(
          queue, channel->a_to_b(), channel->b_to_a(), ccfg.link);
      channels[shard].push_back(std::move(channel));
      return link;
    });
    tier.bind_client(key, client.get());
    client->schedule_start(arrival);
    arrival += 3'000;
    clients.push_back(std::move(client));
  }

  (void)tier.run();

  ASSERT_TRUE(tier.conserved());
  for (std::size_t i = 0; i < clients.size(); ++i)
    for (const SessionRecord& record : clients[i]->sessions())
      EXPECT_TRUE(record.completed) << "client " << i;

  const ServerStats fleet = tier.fleet_stats();
  analysis::LatencyHistogram merged(scfg.histogram_bucket_us,
                                    scfg.histogram_buckets);
  std::size_t recorded = 0;
  ServerStats summed;
  for (const ShardBreakdown& b : tier.breakdown()) {
    analysis::merge(merged, b.handshake_histogram);
    recorded += b.server.handshake_latencies_us.size();
    accumulate_stats(summed, b.server);
  }
  // Exact aggregation: merged bucket mass == every latency the fleet
  // (live + retired worlds) ever recorded == the fleet-stats view.
  EXPECT_GT(merged.count(), 0u);
  EXPECT_EQ(merged.count(), recorded);
  EXPECT_EQ(recorded, fleet.handshake_latencies_us.size());
  EXPECT_EQ(summed.connections_accepted, fleet.connections_accepted);
  EXPECT_EQ(summed.failed_connections, fleet.failed_connections);

  // The rotation (barrier before the crash) reached both live worlds and
  // was replayed into the rejoined one — ring epochs stay in lockstep.
  EXPECT_EQ(fleet.ticket_key_rotations, 3u);  // 2 live + 1 replayed
  const ShardSupervisor::FailoverStats& fs = tier.failover_stats();
  EXPECT_EQ(fs.crashes, 1u);
  EXPECT_EQ(fs.rejoins, 1u);
  EXPECT_EQ(fs.control_replayed, 1u);
  EXPECT_GT(fs.heartbeats_seen, 0u);
  EXPECT_EQ(fs.missed_heartbeats, 0u);
}

// ----------------------------------------------- failover gap pricing

TEST_F(FailoverTest, FailoverGapPricesTheCrash) {
  const platform::WorkloadModel model =
      platform::WorkloadModel::paper_calibrated();
  const platform::Processor proc = platform::Processor::strongarm_sa1100();
  platform::ServedLoad load;
  load.full_handshakes_per_s = 40;
  load.resumed_handshakes_per_s = 120;
  load.bulk_mbps = 2.0;
  load.avg_session_kb = 4.0;
  load.sessions_per_s = 160;

  const platform::FailoverGapReport r = platform::serving_gap_failover(
      model, proc, load, /*shards=*/4, /*slice_us=*/1'000,
      /*reconnect_sessions=*/150, /*blackout_s=*/0.25);
  EXPECT_DOUBLE_EQ(r.surviving_shards, 3.0);
  // Losing a core makes the survivors' life strictly harder.
  EXPECT_GT(r.degraded_required_mips, r.steady.per_shard_required_mips);
  EXPECT_GT(r.burst_mips, 0.0);
  EXPECT_GT(r.crash_energy_mj, 0.0);
  // The whole point of stateless tickets: the crash bill is orders of
  // magnitude below the full-handshake counterfactual.
  EXPECT_GT(r.crash_energy_full_mj, r.crash_energy_mj);
  EXPECT_GT(r.ticket_saving_ratio, 10.0);
}

}  // namespace
}  // namespace mapsec::server
