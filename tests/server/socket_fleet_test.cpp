// Socket-bearer fleet tests: the same seeded client fleet is driven once
// through the sim LoadGenerator (loss-free channels) and once over real
// loopback TCP, and every session outcome — handshake mix, completion
// counts, echoes, fleet transcript digest — must be identical. Plus the
// chaos hooks (hard resets, paused accepts) against live shards.
#include <gtest/gtest.h>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/socket_fleet.hpp"

namespace mapsec::server {
namespace {

using crypto::Bytes;
using protocol::CipherSuite;

constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

#define REQUIRE_SOCKETS()                                          \
  do {                                                             \
    if (!net::sockets_available())                                 \
      GTEST_SKIP() << "loopback TCP unavailable in this sandbox";  \
  } while (0)

class SocketFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::HmacDrbg rng(0x5E53);
    ca_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    server_key_ = new crypto::RsaKeyPair(crypto::rsa_generate(rng, 512));
    ca_ = new protocol::CertificateAuthority("SocketRoot", *ca_key_, 0,
                                             kNow * 2);
    server_cert_ = new protocol::Certificate(
        ca_->issue("server.test", server_key_->pub, 0, kNow * 2));
  }
  static void TearDownTestSuite() {
    delete server_cert_;
    delete ca_;
    delete server_key_;
    delete ca_key_;
  }

  static ServerConfig server_config() {
    ServerConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.cert_chain = {*server_cert_};
    cfg.handshake.private_key = &server_key_->priv;
    return cfg;
  }

  static ClientConfig client_config() {
    ClientConfig cfg;
    cfg.handshake.now = kNow;
    cfg.handshake.trusted_roots = {ca_->root()};
    cfg.handshake.offered_suites = {CipherSuite::kRsaAes128CbcSha};
    return cfg;
  }

  static crypto::RsaKeyPair* ca_key_;
  static crypto::RsaKeyPair* server_key_;
  static protocol::CertificateAuthority* ca_;
  static protocol::Certificate* server_cert_;
};

crypto::RsaKeyPair* SocketFleetTest::ca_key_ = nullptr;
crypto::RsaKeyPair* SocketFleetTest::server_key_ = nullptr;
protocol::CertificateAuthority* SocketFleetTest::ca_ = nullptr;
protocol::Certificate* SocketFleetTest::server_cert_ = nullptr;

// The exit gate of the bearer backend: for the same seed, a socket-fleet
// run and a sim run must land on identical session outcomes — the bearer
// swap changes transport timing, never protocol behaviour.
TEST_F(SocketFleetTest, SocketOutcomesMatchSimRunForSameSeed) {
  REQUIRE_SOCKETS();
  constexpr std::size_t kClients = 24;
  constexpr std::uint64_t kSeed = 0x50CCE7;

  ClientConfig client = client_config();
  client.sessions = 2;  // second session resumes through the cache

  BoundedSessionCache::Config cache;
  cache.capacity = 64;  // no evictions: resumption mix stays loss-free
  cache.ttl_us = 0;

  // Reference run: sim bearer, loss-free channels, one event queue.
  LoadConfig sim_load;
  sim_load.num_clients = kClients;
  sim_load.seed = kSeed;
  sim_load.appliance = platform::Processor::strongarm_sa1100();
  LoadGenerator gen(sim_load, server_config(), client, cache);
  const LoadReport sim = gen.run();
  ASSERT_EQ(sim.sessions_completed, kClients * 2);

  // Wall-clock run: two shard threads over loopback TCP, clients routed
  // by shard_for(gid) so resumption lands on the shard that cached it.
  // The huge clock origin runs the whole fleet at the far end of the
  // monotonic timeline, proving the timeout arithmetic can't wrap.
  SocketFleetConfig fleet_cfg;
  fleet_cfg.shards = 2;
  fleet_cfg.seed = kSeed;
  fleet_cfg.reserve_slabs_per_shard = 128;
  fleet_cfg.clock_origin_us = net::SimTime{1} << 60;
  SocketServerFleet fleet(fleet_cfg, server_config(), cache);
  ASSERT_TRUE(fleet.ok());
  fleet.start();

  SocketLoadConfig socket_load;
  socket_load.num_clients = kClients;
  socket_load.seed = kSeed;
  socket_load.reserve_slabs = 128;
  socket_load.clock_origin_us = net::SimTime{1} << 60;
  SocketClientFleet clients(socket_load, client, server_config(),
                            fleet.ports());
  const SocketClientReport socket = clients.run();
  const SocketServerFleet::Report servers = fleet.stop();

  ASSERT_TRUE(socket.all_finished) << "fleet blew the wall budget";

  // ---- outcome equality ------------------------------------------------
  EXPECT_EQ(socket.sessions_attempted, sim.sessions_attempted);
  EXPECT_EQ(socket.sessions_completed, sim.sessions_completed);
  EXPECT_EQ(socket.sessions_failed, sim.sessions_failed);
  EXPECT_EQ(socket.echo_mismatches, 0u);
  EXPECT_EQ(socket.connection_attempts, sim.connection_attempts);
  EXPECT_EQ(socket.fleet_digest, sim.fleet_digest)
      << "transcripts diverged between bearers";

  EXPECT_EQ(servers.server.handshakes_completed,
            sim.server.handshakes_completed);
  EXPECT_EQ(servers.server.full_handshakes, sim.server.full_handshakes);
  EXPECT_EQ(servers.server.resumed_handshakes,
            sim.server.resumed_handshakes);
  EXPECT_EQ(servers.server.bytes_opened, sim.server.bytes_opened);
  EXPECT_EQ(servers.server.bytes_sealed, sim.server.bytes_sealed);

  // ---- bearer-side books -----------------------------------------------
  EXPECT_TRUE(servers.conserved);
  EXPECT_EQ(servers.accepted, socket.connection_attempts);
  EXPECT_TRUE(servers.zero_steady_state_alloc)
      << "server record path allocated past its pre-reserve";
  EXPECT_EQ(socket.arena.allocations, socket.arena.reserved)
      << "client record path allocated past its pre-reserve";
  EXPECT_EQ(socket.bearer_errors, 0u);
  EXPECT_GT(socket.sockets.frames_sent, 0u);
  // Both halves of the conversation agree on the wire volume.
  EXPECT_EQ(socket.sockets.bytes_sent, servers.sockets.bytes_received);
  EXPECT_EQ(socket.sockets.bytes_received, servers.sockets.bytes_sent);
}

// Hard-RST chaos: every live connection on the shard dies, the server
// books the failures, and the conservation identity still holds.
TEST_F(SocketFleetTest, InjectedResetsAreContainedAndConserved) {
  REQUIRE_SOCKETS();
  SocketFleetConfig fleet_cfg;
  fleet_cfg.shards = 1;
  SocketServerFleet fleet(fleet_cfg, server_config(), {});
  ASSERT_TRUE(fleet.ok());
  fleet.start();

  // Park three raw connections on the shard (no handshake traffic —
  // they are mid-"handshake" victims from the server's point of view).
  net::MonotonicClock clock;
  net::Reactor reactor(clock);
  net::BufferArena arena;
  net::SocketConfig socket_cfg;
  std::vector<std::unique_ptr<net::SocketEndpoint>> conns;
  std::size_t dead = 0;
  for (int i = 0; i < 3; ++i) {
    auto ep = net::connect_endpoint(reactor, arena, socket_cfg,
                                    fleet.ports()[0]);
    ep->rx().set_receiver([](crypto::ConstBytes) {});
    ep->set_on_error([&dead](const std::string&) { ++dead; });
    conns.push_back(std::move(ep));
  }
  ASSERT_TRUE(reactor.run_until(
      [&fleet] { return fleet.accepted_on(0) == 3; }, 5'000'000));

  EXPECT_EQ(fleet.reset_open_sockets(0), 3u);
  ASSERT_TRUE(
      reactor.run_until([&dead] { return dead == 3; }, 5'000'000));
  for (const auto& ep : conns) EXPECT_FALSE(ep->open());

  const SocketServerFleet::Report report = fleet.stop();
  EXPECT_EQ(report.server.connections_accepted, 3u);
  EXPECT_TRUE(report.conserved)
      << "reset storm broke the conservation books";
}

// Accept-queue overflow chaos: while accepts are paused the application
// layer admits nobody; resuming drains the kernel backlog.
TEST_F(SocketFleetTest, PausedAcceptsHoldTheDoorThenDrain) {
  REQUIRE_SOCKETS();
  SocketFleetConfig fleet_cfg;
  fleet_cfg.shards = 1;
  SocketServerFleet fleet(fleet_cfg, server_config(), {});
  ASSERT_TRUE(fleet.ok());
  fleet.start();
  fleet.pause_accepts(0, true);

  net::MonotonicClock clock;
  net::Reactor reactor(clock);
  net::BufferArena arena;
  net::SocketConfig socket_cfg;
  auto a = net::connect_endpoint(reactor, arena, socket_cfg,
                                 fleet.ports()[0]);
  auto b = net::connect_endpoint(reactor, arena, socket_cfg,
                                 fleet.ports()[0]);
  reactor.run_until([] { return false; }, 200'000);  // give it real time
  EXPECT_EQ(fleet.accepted_on(0), 0u);

  fleet.pause_accepts(0, false);
  ASSERT_TRUE(reactor.run_until(
      [&fleet] { return fleet.accepted_on(0) == 2; }, 5'000'000));
  fleet.stop();
}

}  // namespace
}  // namespace mapsec::server
