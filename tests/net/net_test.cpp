// mapsec::net tests: event-queue determinism, channel impairments, and
// the ARQ link's exactly-once delivery under loss/duplication/reorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/net/shard_exec.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {
namespace {

using crypto::Bytes;

// ---------------------------------------------------------------- clock

TEST(EventQueueTest, RunsEventsInTimeOrderWithFifoTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(200, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(100, [&] { order.push_back(2); });  // same instant: FIFO
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 200u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(50, [&] { ++fired; });
  q.schedule_at(60, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> at;
  q.schedule_at(10, [&] {
    at.push_back(q.now());
    q.schedule_in(5, [&] { at.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(at, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(100, [&] { ++fired; });
  q.schedule_at(900, [&] { ++fired; });
  EXPECT_EQ(q.run_until(500), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 500u);  // clock reaches the deadline regardless
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunAllThrowsOnEventStorm) {
  EventQueue q;
  std::function<void()> storm = [&] { q.schedule_in(1, storm); };
  q.schedule_at(0, storm);
  EXPECT_THROW(q.run_all(/*max_events=*/100), std::runtime_error);
}

// -------------------------------------------------------------- channel

TEST(ChannelTest, PerfectChannelDeliversInOrderAfterLatency) {
  EventQueue q;
  crypto::HmacDrbg rng(1);
  ChannelConfig cfg;
  cfg.latency_us = 2'000;
  LossyChannel ch(q, cfg, rng);

  std::vector<std::pair<SimTime, Bytes>> got;
  ch.set_receiver([&](crypto::ConstBytes f) {
    got.emplace_back(q.now(), Bytes(f.begin(), f.end()));
  });
  ch.send(Bytes{1});
  ch.send(Bytes{2});
  q.run_all();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 2'000u);
  EXPECT_EQ(got[0].second, Bytes{1});
  EXPECT_EQ(got[1].second, Bytes{2});
  EXPECT_EQ(ch.stats().frames_delivered, 2u);
}

TEST(ChannelTest, LossDropsTheConfiguredFraction) {
  EventQueue q;
  crypto::HmacDrbg rng(7);
  ChannelConfig cfg;
  cfg.loss_rate = 0.5;
  LossyChannel ch(q, cfg, rng);
  ch.set_receiver([](crypto::ConstBytes) {});
  for (int i = 0; i < 400; ++i) ch.send(Bytes{static_cast<uint8_t>(i)});
  q.run_all();

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.frames_sent, 400u);
  EXPECT_EQ(s.frames_delivered + s.dropped_loss, 400u);
  // Seeded, so the count is fixed; it must be in the statistical ballpark.
  EXPECT_GT(s.dropped_loss, 150u);
  EXPECT_LT(s.dropped_loss, 250u);
}

TEST(ChannelTest, OversizeFramesAreDropped) {
  EventQueue q;
  crypto::HmacDrbg rng(3);
  ChannelConfig cfg;
  cfg.mtu = 16;
  LossyChannel ch(q, cfg, rng);
  int delivered = 0;
  ch.set_receiver([&](crypto::ConstBytes) { ++delivered; });
  ch.send(Bytes(17, 0xAA));
  q.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().dropped_oversize, 1u);
}

TEST(ChannelTest, DuplicationDeliversTwice) {
  EventQueue q;
  crypto::HmacDrbg rng(11);
  ChannelConfig cfg;
  cfg.dup_rate = 1.0;
  LossyChannel ch(q, cfg, rng);
  int delivered = 0;
  ch.set_receiver([&](crypto::ConstBytes) { ++delivered; });
  ch.send(Bytes{9});
  q.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(ch.stats().duplicated, 1u);
}

TEST(ChannelTest, BandwidthCapSerializesBackToBack) {
  EventQueue q;
  crypto::HmacDrbg rng(5);
  ChannelConfig cfg;
  cfg.latency_us = 1'000;
  cfg.bytes_per_sec = 1'000;  // 100 bytes -> 100 ms on the wire
  LossyChannel ch(q, cfg, rng);
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](crypto::ConstBytes) { arrivals.push_back(q.now()); });
  ch.send(Bytes(100, 1));
  ch.send(Bytes(100, 2));
  q.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 101'000u);   // tx time + latency
  EXPECT_EQ(arrivals[1], 201'000u);   // queued behind the first frame
}

TEST(ChannelTest, SameSeedSameWeather) {
  auto transcript = [](std::uint64_t seed) {
    EventQueue q;
    ChannelConfig cfg;
    cfg.loss_rate = 0.2;
    cfg.dup_rate = 0.1;
    cfg.reorder_rate = 0.3;
    cfg.jitter_us = 700;
    DuplexChannel duplex(q, cfg, cfg, seed);
    std::vector<std::pair<SimTime, Bytes>> got;
    duplex.a_to_b().set_receiver([&](crypto::ConstBytes f) {
      got.emplace_back(q.now(), Bytes(f.begin(), f.end()));
    });
    for (int i = 0; i < 50; ++i)
      duplex.a_to_b().send(Bytes{static_cast<uint8_t>(i)});
    q.run_all();
    return got;
  };
  EXPECT_EQ(transcript(42), transcript(42));
  EXPECT_NE(transcript(42), transcript(43));
}

// ----------------------------------------------------------------- link

struct LinkWorld {
  EventQueue queue;
  DuplexChannel duplex;
  ReliableLink a;  // "a" side sends via a_to_b
  ReliableLink b;

  LinkWorld(const ChannelConfig& cfg, std::uint64_t seed,
            LinkConfig link = {})
      : duplex(queue, cfg, cfg, seed),
        a(queue, duplex.a_to_b(), duplex.b_to_a(), link),
        b(queue, duplex.b_to_a(), duplex.a_to_b(), link) {}
};

TEST(LinkTest, DeliversMessagesOverPerfectChannel) {
  LinkWorld w(ChannelConfig{}, 1);
  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  w.a.send_message(Bytes{1, 2, 3});
  w.a.send_message(Bytes{4});
  w.queue.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Bytes{1, 2, 3}));
  EXPECT_EQ(got[1], Bytes{4});
  EXPECT_TRUE(w.a.idle());
  EXPECT_EQ(w.a.stats().retransmits, 0u);
}

TEST(LinkTest, FragmentsAndReassemblesLargeMessages) {
  LinkConfig link;
  link.segment_payload = 100;
  LinkWorld w(ChannelConfig{}, 2, link);
  Bytes big(5'000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<uint8_t>(i * 31);
  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  w.a.send_message(big);
  w.queue.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
  EXPECT_GE(w.a.stats().segments_sent, 50u);
}

TEST(LinkTest, ExactlyOnceInOrderUnderImpairments) {
  ChannelConfig cfg;
  cfg.loss_rate = 0.2;
  cfg.dup_rate = 0.1;
  cfg.reorder_rate = 0.25;
  cfg.jitter_us = 2'000;
  LinkWorld w(cfg, 1234);

  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  std::vector<Bytes> sent;
  for (int i = 0; i < 30; ++i) {
    Bytes msg(40 + i, static_cast<uint8_t>(i));
    w.a.send_message(msg);
    sent.push_back(std::move(msg));
  }
  w.queue.run_all();

  EXPECT_EQ(got, sent);  // in order, exactly once, byte-exact
  EXPECT_FALSE(w.a.dead());
  EXPECT_GT(w.a.stats().retransmits, 0u);  // loss made it work for this
}

TEST(LinkTest, RetryBudgetExhaustionFiresErrorOnce) {
  ChannelConfig black_hole;
  black_hole.loss_rate = 1.0;
  LinkConfig link;
  link.max_retries = 3;
  link.initial_rto_us = 10'000;
  LinkWorld w(black_hole, 9, link);

  int errors = 0;
  std::string reason;
  w.a.set_on_error([&](const std::string& r) {
    ++errors;
    reason = r;
  });
  EXPECT_TRUE(w.a.send_message(Bytes{1, 2, 3}));
  w.queue.run_all();

  EXPECT_EQ(errors, 1);
  EXPECT_TRUE(w.a.dead());
  EXPECT_FALSE(reason.empty());
  EXPECT_FALSE(w.a.send_message(Bytes{4}));  // dead link discards
}

TEST(ChannelTest, GilbertElliottBurstsDropInRuns) {
  EventQueue q;
  crypto::HmacDrbg rng(11);
  ChannelConfig cfg;
  cfg.ge_enabled = true;
  cfg.ge_p_good_to_bad = 0.1;
  cfg.ge_p_bad_to_good = 0.3;
  cfg.ge_loss_bad = 1.0;  // every bad-state frame dies: clean run lengths
  LossyChannel ch(q, cfg, rng);

  std::vector<bool> outcome;  // true = delivered, per frame in order
  int next = 0;
  ch.set_receiver([&](crypto::ConstBytes f) {
    while (next < f[0]) {
      outcome.push_back(false);
      ++next;
    }
    outcome.push_back(true);
    ++next;
  });
  for (int i = 0; i < 200; ++i) ch.send(Bytes{static_cast<uint8_t>(i)});
  q.run_all();
  while (next < 200) {
    outcome.push_back(false);
    ++next;
  }

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.dropped_loss, 0u);  // independent loss is off
  EXPECT_GT(s.dropped_burst, 10u);
  EXPECT_LT(s.dropped_burst, 120u);
  // Bursts: at least one run of >= 2 consecutive drops (p_bad_to_good
  // 0.3 makes multi-frame fades overwhelmingly likely in 200 frames).
  int run = 0, longest = 0;
  for (const bool delivered : outcome) {
    run = delivered ? 0 : run + 1;
    longest = std::max(longest, run);
  }
  EXPECT_GE(longest, 2);
}

TEST(ChannelTest, GilbertElliottDisabledConsumesNoRngDraws) {
  // The GE chain must not consume rng draws while disabled: a config
  // predating the feature sees the identical weather no matter what the
  // (ignored) GE knobs say.
  auto transcript = [](double ge_loss_bad) {
    EventQueue q;
    crypto::HmacDrbg rng(21);
    ChannelConfig cfg;
    cfg.loss_rate = 0.3;
    cfg.dup_rate = 0.2;
    cfg.ge_enabled = false;
    cfg.ge_loss_bad = ge_loss_bad;  // must be inert while disabled
    LossyChannel ch(q, cfg, rng);
    std::vector<int> got;
    ch.set_receiver([&](crypto::ConstBytes f) { got.push_back(f[0]); });
    for (int i = 0; i < 100; ++i) ch.send(Bytes{static_cast<uint8_t>(i)});
    q.run_all();
    return got;
  };
  EXPECT_EQ(transcript(0.0), transcript(1.0));

  // And flipping it on DOES change the weather (draws are interleaved).
  auto with_ge = [] {
    EventQueue q;
    crypto::HmacDrbg rng(21);
    ChannelConfig cfg;
    cfg.loss_rate = 0.3;
    cfg.dup_rate = 0.2;
    cfg.ge_enabled = true;
    cfg.ge_loss_bad = 1.0;
    LossyChannel ch(q, cfg, rng);
    std::vector<int> got;
    ch.set_receiver([&](crypto::ConstBytes f) { got.push_back(f[0]); });
    for (int i = 0; i < 100; ++i) ch.send(Bytes{static_cast<uint8_t>(i)});
    q.run_all();
    return got;
  };
  EXPECT_NE(transcript(0.0), with_ge());
}

TEST(LinkTest, HighRetryBudgetDoesNotOverflowTheBackoffShift) {
  // Regression: rto doubling used to be an unguarded shift-like doubling;
  // with a huge retry budget over a black-hole channel it must saturate
  // at max_rto_us and fail after exactly max_retries + 1 transmissions.
  ChannelConfig black_hole;
  black_hole.loss_rate = 1.0;
  LinkConfig link;
  link.max_retries = 80;  // enough to overflow 64-bit rto if unclamped
  link.initial_rto_us = 1'000;
  link.max_rto_us = 50'000;
  LinkWorld w(black_hole, 31, link);

  int errors = 0;
  w.a.set_on_error([&](const std::string&) { ++errors; });
  w.a.send_message(Bytes{1});
  w.queue.run_all();

  EXPECT_EQ(errors, 1);
  EXPECT_EQ(w.a.stats().retransmits, 80u);
  // Time to failure is the geometric ramp capped at max_rto: strictly
  // less than (retries + 1) * max_rto, far below any overflowed wait.
  EXPECT_LT(w.queue.now(), 81u * 50'000u);
  EXPECT_GT(w.queue.now(), 75u * 50'000u / 2u);
}

TEST(LinkTest, TotalBackoffCeilingBoundsTimeToFailure) {
  ChannelConfig black_hole;
  black_hole.loss_rate = 1.0;
  LinkConfig link;
  link.max_retries = 1'000'000;  // effectively infinite
  link.initial_rto_us = 10'000;
  link.max_rto_us = 100'000;
  link.total_backoff_ceiling_us = 400'000;
  LinkWorld w(black_hole, 32, link);

  int errors = 0;
  std::string reason;
  w.a.set_on_error([&](const std::string& r) {
    ++errors;
    reason = r;
  });
  w.a.send_message(Bytes{1});
  w.queue.run_all();

  EXPECT_EQ(errors, 1);
  EXPECT_NE(reason.find("backoff ceiling"), std::string::npos);
  // Cumulative waits stop within one max_rto past the ceiling.
  EXPECT_LE(w.queue.now(), 400'000u + 100'000u);
}

TEST(LinkTest, InboundMessagesBeyondTheBoundKillTheLinkCleanly) {
  LinkConfig link;
  link.max_message_size = 1'000;
  LinkWorld w(ChannelConfig{}, 33, link);

  int errors = 0;
  std::string reason;
  int delivered = 0;
  w.b.set_on_message([&](crypto::ConstBytes) { ++delivered; });
  w.b.set_on_error([&](const std::string& r) {
    ++errors;
    reason = r;
  });
  w.a.send_message(Bytes(900, 0xAB));    // under the bound: fine
  w.a.send_message(Bytes(1'500, 0xCD));  // over: receiver must refuse
  w.queue.run_all();

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(errors, 1);
  EXPECT_NE(reason.find("exceeds bound"), std::string::npos);
  EXPECT_TRUE(w.b.dead());
}

TEST(LinkTest, ShutdownSilencesTheLink) {
  LinkWorld w(ChannelConfig{}, 17);
  int delivered = 0;
  w.b.set_on_message([&](crypto::ConstBytes) { ++delivered; });
  w.a.send_message(Bytes{1});
  w.queue.run_all();
  EXPECT_EQ(delivered, 1);

  w.b.shutdown();
  w.b.shutdown();  // idempotent
  w.a.send_message(Bytes{2});
  w.queue.run_all();          // frames land on a detached receiver
  EXPECT_EQ(delivered, 1);    // nothing more delivered
}

// --------------------------------------------------------------------
// Shard-death primitives: EventQueue::clear (a killed shard's timers and
// in-flight deliveries die with the world, the clock does not), HangLatch
// (transition-only release, so a watchdog that fires repeatedly never
// double-reports), and the ShardExecutor watchdog (a latched shard thread
// is released, reported once, and can never wedge destruction).

TEST(SimClockTest, ClearDropsPendingEventsButKeepsTheClock) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  q.run_until(10);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.now(), 10u);

  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run_all(), 0u);
  EXPECT_EQ(ran, 1);           // the 20us event died with the world
  EXPECT_EQ(q.now(), 10u);     // time is not rolled back by a kill

  // The cleared queue accepts a fresh world (the rejoin path).
  q.schedule_at(30, [&] { ++ran; });
  q.run_all();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 30u);
}

TEST(HangLatchTest, ReleaseReportsAnEngagedLatchExactlyOnce) {
  HangLatch latch;
  EXPECT_FALSE(latch.engaged());
  // Not engaged: a non-forced release is a no-op (a slow-but-healthy
  // shard whose latch event has not run must not be reported hung).
  EXPECT_FALSE(latch.release(false));

  std::thread t([&] { latch.wait(); });
  while (!latch.engaged()) std::this_thread::yield();
  EXPECT_TRUE(latch.release(false));   // THIS call opened it: report
  EXPECT_FALSE(latch.release(false));  // transition-only: never twice
  EXPECT_FALSE(latch.release(true));
  t.join();
}

TEST(HangLatchTest, ForcedReleaseOpensAnUnengagedLatch) {
  HangLatch latch;
  EXPECT_FALSE(latch.release(true));  // nothing was stuck: not reported
  // A thread reaching the latch after the forced release sails through —
  // the shutdown path can never wedge a late worker.
  std::thread t([&] { latch.wait(); });
  t.join();
}

TEST(ShardExecutorTest, WatchdogReleasesAndReportsAHungShard) {
  EventQueue q0, q1;
  auto latch = std::make_shared<HangLatch>();
  int after = 0;
  q0.schedule_at(5, [latch] { latch->wait(); });  // parks shard 0's thread
  q0.schedule_at(7, [&] { ++after; });
  q1.schedule_at(5, [&] { ++after; });

  ShardExecutor exec({&q0, &q1});
  exec.set_watchdog(std::chrono::milliseconds(20),
                    [latch](bool force) -> std::vector<std::size_t> {
                      if (latch->release(force)) return {0};
                      return {};
                    });
  exec.run_slice(10);
  ASSERT_EQ(exec.last_stragglers().size(), 1u);
  EXPECT_EQ(exec.last_stragglers()[0], 0u);
  // The slice still completed: both worlds reached the deadline and the
  // post-hang event ran (the supervisor, not the executor, decides what
  // the hang means).
  EXPECT_EQ(q0.now(), 10u);
  EXPECT_EQ(q1.now(), 10u);
  EXPECT_EQ(after, 2);

  // A healthy follow-up slice reports nothing.
  q0.schedule_at(15, [&] { ++after; });
  exec.run_slice(20);
  EXPECT_TRUE(exec.last_stragglers().empty());
  EXPECT_EQ(after, 3);
}

TEST(ShardExecutorTest, DestructorForcesOpenAnUnreachedLatch) {
  // The latch's event never runs (it is scheduled beyond every slice), so
  // only the destructor's unstick(true) stands between a armed latch and
  // a deadlocked join. The test passes by terminating.
  EventQueue q;
  auto latch = std::make_shared<HangLatch>();
  q.schedule_at(100, [latch] { latch->wait(); });
  {
    ShardExecutor exec({&q});
    exec.set_watchdog(std::chrono::milliseconds(20),
                      [latch](bool force) -> std::vector<std::size_t> {
                        if (latch->release(force)) return {0};
                        return {};
                      });
    exec.run_slice(10);  // latch event still pending at 100us
    EXPECT_TRUE(exec.last_stragglers().empty());
  }
  SUCCEED();
}

}  // namespace
}  // namespace mapsec::net
