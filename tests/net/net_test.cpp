// mapsec::net tests: event-queue determinism, channel impairments, and
// the ARQ link's exactly-once delivery under loss/duplication/reorder.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {
namespace {

using crypto::Bytes;

// ---------------------------------------------------------------- clock

TEST(EventQueueTest, RunsEventsInTimeOrderWithFifoTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(200, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(100, [&] { order.push_back(2); });  // same instant: FIFO
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 200u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(50, [&] { ++fired; });
  q.schedule_at(60, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> at;
  q.schedule_at(10, [&] {
    at.push_back(q.now());
    q.schedule_in(5, [&] { at.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(at, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(100, [&] { ++fired; });
  q.schedule_at(900, [&] { ++fired; });
  EXPECT_EQ(q.run_until(500), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 500u);  // clock reaches the deadline regardless
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunAllThrowsOnEventStorm) {
  EventQueue q;
  std::function<void()> storm = [&] { q.schedule_in(1, storm); };
  q.schedule_at(0, storm);
  EXPECT_THROW(q.run_all(/*max_events=*/100), std::runtime_error);
}

// -------------------------------------------------------------- channel

TEST(ChannelTest, PerfectChannelDeliversInOrderAfterLatency) {
  EventQueue q;
  crypto::HmacDrbg rng(1);
  ChannelConfig cfg;
  cfg.latency_us = 2'000;
  LossyChannel ch(q, cfg, rng);

  std::vector<std::pair<SimTime, Bytes>> got;
  ch.set_receiver([&](crypto::ConstBytes f) {
    got.emplace_back(q.now(), Bytes(f.begin(), f.end()));
  });
  ch.send(Bytes{1});
  ch.send(Bytes{2});
  q.run_all();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 2'000u);
  EXPECT_EQ(got[0].second, Bytes{1});
  EXPECT_EQ(got[1].second, Bytes{2});
  EXPECT_EQ(ch.stats().frames_delivered, 2u);
}

TEST(ChannelTest, LossDropsTheConfiguredFraction) {
  EventQueue q;
  crypto::HmacDrbg rng(7);
  ChannelConfig cfg;
  cfg.loss_rate = 0.5;
  LossyChannel ch(q, cfg, rng);
  ch.set_receiver([](crypto::ConstBytes) {});
  for (int i = 0; i < 400; ++i) ch.send(Bytes{static_cast<uint8_t>(i)});
  q.run_all();

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.frames_sent, 400u);
  EXPECT_EQ(s.frames_delivered + s.dropped_loss, 400u);
  // Seeded, so the count is fixed; it must be in the statistical ballpark.
  EXPECT_GT(s.dropped_loss, 150u);
  EXPECT_LT(s.dropped_loss, 250u);
}

TEST(ChannelTest, OversizeFramesAreDropped) {
  EventQueue q;
  crypto::HmacDrbg rng(3);
  ChannelConfig cfg;
  cfg.mtu = 16;
  LossyChannel ch(q, cfg, rng);
  int delivered = 0;
  ch.set_receiver([&](crypto::ConstBytes) { ++delivered; });
  ch.send(Bytes(17, 0xAA));
  q.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().dropped_oversize, 1u);
}

TEST(ChannelTest, DuplicationDeliversTwice) {
  EventQueue q;
  crypto::HmacDrbg rng(11);
  ChannelConfig cfg;
  cfg.dup_rate = 1.0;
  LossyChannel ch(q, cfg, rng);
  int delivered = 0;
  ch.set_receiver([&](crypto::ConstBytes) { ++delivered; });
  ch.send(Bytes{9});
  q.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(ch.stats().duplicated, 1u);
}

TEST(ChannelTest, BandwidthCapSerializesBackToBack) {
  EventQueue q;
  crypto::HmacDrbg rng(5);
  ChannelConfig cfg;
  cfg.latency_us = 1'000;
  cfg.bytes_per_sec = 1'000;  // 100 bytes -> 100 ms on the wire
  LossyChannel ch(q, cfg, rng);
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](crypto::ConstBytes) { arrivals.push_back(q.now()); });
  ch.send(Bytes(100, 1));
  ch.send(Bytes(100, 2));
  q.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 101'000u);   // tx time + latency
  EXPECT_EQ(arrivals[1], 201'000u);   // queued behind the first frame
}

TEST(ChannelTest, SameSeedSameWeather) {
  auto transcript = [](std::uint64_t seed) {
    EventQueue q;
    ChannelConfig cfg;
    cfg.loss_rate = 0.2;
    cfg.dup_rate = 0.1;
    cfg.reorder_rate = 0.3;
    cfg.jitter_us = 700;
    DuplexChannel duplex(q, cfg, cfg, seed);
    std::vector<std::pair<SimTime, Bytes>> got;
    duplex.a_to_b().set_receiver([&](crypto::ConstBytes f) {
      got.emplace_back(q.now(), Bytes(f.begin(), f.end()));
    });
    for (int i = 0; i < 50; ++i)
      duplex.a_to_b().send(Bytes{static_cast<uint8_t>(i)});
    q.run_all();
    return got;
  };
  EXPECT_EQ(transcript(42), transcript(42));
  EXPECT_NE(transcript(42), transcript(43));
}

// ----------------------------------------------------------------- link

struct LinkWorld {
  EventQueue queue;
  DuplexChannel duplex;
  ReliableLink a;  // "a" side sends via a_to_b
  ReliableLink b;

  LinkWorld(const ChannelConfig& cfg, std::uint64_t seed,
            LinkConfig link = {})
      : duplex(queue, cfg, cfg, seed),
        a(queue, duplex.a_to_b(), duplex.b_to_a(), link),
        b(queue, duplex.b_to_a(), duplex.a_to_b(), link) {}
};

TEST(LinkTest, DeliversMessagesOverPerfectChannel) {
  LinkWorld w(ChannelConfig{}, 1);
  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  w.a.send_message(Bytes{1, 2, 3});
  w.a.send_message(Bytes{4});
  w.queue.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Bytes{1, 2, 3}));
  EXPECT_EQ(got[1], Bytes{4});
  EXPECT_TRUE(w.a.idle());
  EXPECT_EQ(w.a.stats().retransmits, 0u);
}

TEST(LinkTest, FragmentsAndReassemblesLargeMessages) {
  LinkConfig link;
  link.segment_payload = 100;
  LinkWorld w(ChannelConfig{}, 2, link);
  Bytes big(5'000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<uint8_t>(i * 31);
  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  w.a.send_message(big);
  w.queue.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
  EXPECT_GE(w.a.stats().segments_sent, 50u);
}

TEST(LinkTest, ExactlyOnceInOrderUnderImpairments) {
  ChannelConfig cfg;
  cfg.loss_rate = 0.2;
  cfg.dup_rate = 0.1;
  cfg.reorder_rate = 0.25;
  cfg.jitter_us = 2'000;
  LinkWorld w(cfg, 1234);

  std::vector<Bytes> got;
  w.b.set_on_message(
      [&](crypto::ConstBytes m) { got.emplace_back(m.begin(), m.end()); });
  std::vector<Bytes> sent;
  for (int i = 0; i < 30; ++i) {
    Bytes msg(40 + i, static_cast<uint8_t>(i));
    w.a.send_message(msg);
    sent.push_back(std::move(msg));
  }
  w.queue.run_all();

  EXPECT_EQ(got, sent);  // in order, exactly once, byte-exact
  EXPECT_FALSE(w.a.dead());
  EXPECT_GT(w.a.stats().retransmits, 0u);  // loss made it work for this
}

TEST(LinkTest, RetryBudgetExhaustionFiresErrorOnce) {
  ChannelConfig black_hole;
  black_hole.loss_rate = 1.0;
  LinkConfig link;
  link.max_retries = 3;
  link.initial_rto_us = 10'000;
  LinkWorld w(black_hole, 9, link);

  int errors = 0;
  std::string reason;
  w.a.set_on_error([&](const std::string& r) {
    ++errors;
    reason = r;
  });
  EXPECT_TRUE(w.a.send_message(Bytes{1, 2, 3}));
  w.queue.run_all();

  EXPECT_EQ(errors, 1);
  EXPECT_TRUE(w.a.dead());
  EXPECT_FALSE(reason.empty());
  EXPECT_FALSE(w.a.send_message(Bytes{4}));  // dead link discards
}

TEST(LinkTest, ShutdownSilencesTheLink) {
  LinkWorld w(ChannelConfig{}, 17);
  int delivered = 0;
  w.b.set_on_message([&](crypto::ConstBytes) { ++delivered; });
  w.a.send_message(Bytes{1});
  w.queue.run_all();
  EXPECT_EQ(delivered, 1);

  w.b.shutdown();
  w.b.shutdown();  // idempotent
  w.a.send_message(Bytes{2});
  w.queue.run_all();          // frames land on a detached receiver
  EXPECT_EQ(delivered, 1);    // nothing more delivered
}

}  // namespace
}  // namespace mapsec::net
