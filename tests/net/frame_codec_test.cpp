// FrameCodec framing fuzz, Clock saturation, and buffer-arena units —
// the shared substrate both bearers stand on.
#include <gtest/gtest.h>

#include <cstring>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/net/buffer_arena.hpp"
#include "mapsec/net/clock.hpp"
#include "mapsec/net/frame_codec.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace {

using mapsec::crypto::Bytes;
using mapsec::crypto::ConstBytes;
using mapsec::net::BufferArena;
using mapsec::net::EventQueue;
using mapsec::net::FrameCodec;
using mapsec::net::IoSlice;
using mapsec::net::MonotonicClock;
using mapsec::net::SimClockView;
using mapsec::net::SimTime;
using mapsec::net::SlabQueue;
using mapsec::net::kTimeCeiling;
using mapsec::net::sat_add_time;

// ---- FrameCodec -----------------------------------------------------------

TEST(FrameCodec, RoundTripsHeaderAndFrame) {
  Bytes out;
  Bytes payload{1, 2, 3, 4, 5};
  FrameCodec::append_frame(out, payload);
  ASSERT_EQ(out.size(), FrameCodec::kHeaderBytes + payload.size());
  FrameCodec::Head head = FrameCodec::inspect(out.data(), out.size(), 0);
  EXPECT_EQ(head.status, FrameCodec::Status::kFrame);
  EXPECT_EQ(head.payload_len, payload.size());
  EXPECT_EQ(0, std::memcmp(out.data() + FrameCodec::kHeaderBytes,
                           payload.data(), payload.size()));
}

TEST(FrameCodec, EmptyPayloadIsAValidFrame) {
  Bytes out;
  FrameCodec::append_frame(out, {});
  FrameCodec::Head head = FrameCodec::inspect(out.data(), out.size(), 16);
  EXPECT_EQ(head.status, FrameCodec::Status::kFrame);
  EXPECT_EQ(head.payload_len, 0u);
}

// Torn reads: present the stream truncated at EVERY byte boundary; the
// codec must answer kNeedMore for every proper prefix and kFrame only at
// (and beyond) the full length. This is exactly the sequence of states a
// TCP receiver walks through as bytes trickle in.
TEST(FrameCodec, TornReadAtEveryByteBoundary) {
  Bytes stream;
  Bytes payload(37);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  FrameCodec::append_frame(stream, payload);
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameCodec::Head head = FrameCodec::inspect(stream.data(), cut, 1 << 10);
    EXPECT_EQ(head.status, FrameCodec::Status::kNeedMore)
        << "cut at " << cut;
    if (cut >= FrameCodec::kHeaderBytes) {
      EXPECT_EQ(head.payload_len, payload.size()) << "cut at " << cut;
    }
  }
  FrameCodec::Head full =
      FrameCodec::inspect(stream.data(), stream.size(), 1 << 10);
  EXPECT_EQ(full.status, FrameCodec::Status::kFrame);
}

TEST(FrameCodec, OversizeLengthIsTerminalNotAnAllocation) {
  std::uint8_t header[FrameCodec::kHeaderBytes];
  FrameCodec::encode_header(0xFFFFFFFFu, header);
  FrameCodec::Head head =
      FrameCodec::inspect(header, sizeof(header), 1 << 20);
  EXPECT_EQ(head.status, FrameCodec::Status::kOversize);
  EXPECT_EQ(head.payload_len, 0xFFFFFFFFu);
  // One past the bound is already out.
  FrameCodec::encode_header((1u << 20) + 1, header);
  EXPECT_EQ(FrameCodec::inspect(header, sizeof(header), 1 << 20).status,
            FrameCodec::Status::kOversize);
  // At the bound is in.
  FrameCodec::encode_header(1u << 20, header);
  EXPECT_EQ(FrameCodec::inspect(header, sizeof(header), 1 << 20).status,
            FrameCodec::Status::kNeedMore);
}

TEST(FrameCodec, ZeroMaxMeansUnbounded) {
  std::uint8_t header[FrameCodec::kHeaderBytes];
  FrameCodec::encode_header(0xFFFFFFFFu, header);
  EXPECT_EQ(FrameCodec::inspect(header, sizeof(header), 0).status,
            FrameCodec::Status::kNeedMore);
}

// Garbage prefixes drawn from a seeded rng: every verdict must be one of
// the three states, oversize must fire exactly when the announced length
// exceeds the bound, and no verdict may claim a frame longer than the
// bytes on hand. (Recovery from garbage is connection death by design —
// the codec's job is to classify it safely, never to resync.)
TEST(FrameCodec, GarbagePrefixFuzz) {
  mapsec::crypto::HmacDrbg rng(0xF4A2);
  constexpr std::size_t kMax = 4096;
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t buf[64];
    const std::size_t size = rng.next_u32() % sizeof(buf);
    for (std::size_t i = 0; i < size; ++i)
      buf[i] = static_cast<std::uint8_t>(rng.next_u32());
    FrameCodec::Head head = FrameCodec::inspect(buf, size, kMax);
    if (size < FrameCodec::kHeaderBytes) {
      EXPECT_EQ(head.status, FrameCodec::Status::kNeedMore);
      continue;
    }
    const std::uint32_t announced = (std::uint32_t(buf[0]) << 24) |
                                    (std::uint32_t(buf[1]) << 16) |
                                    (std::uint32_t(buf[2]) << 8) |
                                    std::uint32_t(buf[3]);
    if (announced > kMax) {
      EXPECT_EQ(head.status, FrameCodec::Status::kOversize);
    } else if (size - FrameCodec::kHeaderBytes >= announced) {
      EXPECT_EQ(head.status, FrameCodec::Status::kFrame);
    } else {
      EXPECT_EQ(head.status, FrameCodec::Status::kNeedMore);
    }
  }
}

// The link adopted the codec: its wire format must be unchanged — a
// 4-byte big-endian length prefix, exactly what the manual framing wrote
// before. Oversize via the link still kills it cleanly.
TEST(FrameCodec, LinkFramingUnchangedAndOversizeKillsLink) {
  Bytes framed;
  Bytes msg{0xAA, 0xBB};
  FrameCodec::append_frame(framed, msg);
  const std::uint8_t expect[] = {0, 0, 0, 2, 0xAA, 0xBB};
  ASSERT_EQ(framed.size(), sizeof(expect));
  EXPECT_EQ(0, std::memcmp(framed.data(), expect, sizeof(expect)));
}

// ---- saturating time arithmetic ------------------------------------------

TEST(ClockSaturation, SatAddClampsAtCeiling) {
  EXPECT_EQ(sat_add_time(10, 32), 42u);
  EXPECT_EQ(sat_add_time(kTimeCeiling, 1), kTimeCeiling);
  EXPECT_EQ(sat_add_time(kTimeCeiling - 1, 1), kTimeCeiling);
  EXPECT_EQ(sat_add_time(kTimeCeiling - 1, kTimeCeiling), kTimeCeiling);
  EXPECT_EQ(sat_add_time(1, kTimeCeiling), kTimeCeiling);
  // The sentinel above the ceiling is unreachable by addition.
  EXPECT_LT(sat_add_time(kTimeCeiling, kTimeCeiling),
            EventQueue::kNoEvent);
}

TEST(ClockSaturation, ScheduleInNearCeilingDoesNotWrap) {
  EventQueue queue;
  queue.run_until(kTimeCeiling - 5);
  int fired = 0;
  // Would wrap to a small time without saturation and either fire at the
  // wrong instant or corrupt the sentinel; saturated it lands on the
  // ceiling.
  queue.schedule_in(1'000'000, [&fired] { ++fired; });
  EXPECT_EQ(queue.next_time(), kTimeCeiling);
  queue.run_until(kTimeCeiling);
  EXPECT_EQ(fired, 1);
}

TEST(ClockSaturation, MonotonicClockHugeOriginSaturates) {
  MonotonicClock clock(kTimeCeiling);
  EXPECT_EQ(clock.now_us(), kTimeCeiling);
  // Above-ceiling origins clamp instead of wrapping into the sentinel.
  MonotonicClock wild(~SimTime{0});
  EXPECT_EQ(wild.now_us(), kTimeCeiling);
}

TEST(ClockSaturation, MonotonicClockAdvancesWithRealTime) {
  MonotonicClock clock(1'000);
  const SimTime a = clock.now_us();
  EXPECT_GE(a, 1'000u);
  SimTime b = a;
  // CLOCK_MONOTONIC must tick within a bounded spin.
  for (int i = 0; i < 1'000'000 && b <= a; ++i) b = clock.now_us();
  EXPECT_GT(b, a);
}

TEST(ClockSaturation, SimClockViewTracksQueue) {
  EventQueue queue;
  SimClockView view(queue);
  EXPECT_EQ(view.now_us(), 0u);
  queue.run_until(777);
  EXPECT_EQ(view.now_us(), 777u);
}

// ReliableLink timeout machinery at the far end of the timeline: a link
// whose queue sits near the ceiling must fail its retry budget cleanly
// (saturated timers still fire) instead of wrapping a timer into the
// past or past the sentinel.
TEST(ClockSaturation, LinkRetryBudgetNearTimeCeiling) {
  EventQueue queue;
  queue.run_until(kTimeCeiling - 10);  // deep end of the timeline
  mapsec::crypto::HmacDrbg rng(1);
  mapsec::net::ChannelConfig drop_all;
  drop_all.loss_rate = 1.0;  // bearer eats every frame: RTOs must fire
  mapsec::net::LossyChannel tx(queue, drop_all, rng);
  mapsec::net::LossyChannel rx(queue, {}, rng);
  mapsec::net::LinkConfig cfg;
  cfg.max_retries = 3;
  mapsec::net::ReliableLink link(queue, tx, rx, cfg);
  std::string error;
  link.set_on_error([&error](const std::string& reason) { error = reason; });
  Bytes msg{1, 2, 3};
  ASSERT_TRUE(link.send_message(msg));
  queue.run_all(1'000'000);
  EXPECT_TRUE(link.dead());
  EXPECT_NE(error.find("retry budget"), std::string::npos) << error;
  EXPECT_LE(queue.now(), kTimeCeiling);
}

// ---- BufferArena / SlabQueue ---------------------------------------------

TEST(BufferArena, RecyclesInsteadOfGrowing) {
  BufferArena arena(64);
  std::uint8_t* a = arena.acquire();
  arena.recycle(a);
  std::uint8_t* b = arena.acquire();
  EXPECT_EQ(a, b);  // free list served it
  arena.recycle(b);
  EXPECT_EQ(arena.stats().allocations, 1u);
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().recycles, 2u);
  EXPECT_EQ(arena.stats().in_use, 0u);
  EXPECT_EQ(arena.stats().peak_in_use, 1u);
}

TEST(BufferArena, ReserveThenSteadyStateAllocatesNothing) {
  BufferArena arena(32);
  arena.reserve(8);
  EXPECT_EQ(arena.stats().allocations, 8u);
  SlabQueue q(arena);
  Bytes chunk(100, 0x5A);
  for (int round = 0; round < 50; ++round) {
    q.append(chunk);
    std::uint8_t sink[100];
    EXPECT_EQ(q.peek(sink, sizeof(sink)), sizeof(sink));
    q.consume(chunk.size());
  }
  q.release();
  // The pool never grew past the reserve: the witness the socket fleet's
  // zero-steady-state-allocation gate is built on.
  EXPECT_EQ(arena.stats().allocations, 8u);
  EXPECT_EQ(arena.stats().in_use, 0u);
}

TEST(SlabQueue, FifoAcrossSlabBoundaries) {
  BufferArena arena(16);  // tiny slabs force boundary crossings
  SlabQueue q(arena);
  Bytes data(100);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  q.append(data);
  EXPECT_EQ(q.size(), data.size());
  // view() must reassemble ranges that straddle slabs.
  std::uint8_t scratch[100];
  const std::uint8_t* p = q.view(10, 40, scratch);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(p[i], 10 + i);
  // Consume in awkward amounts; remaining head must track.
  q.consume(7);
  std::uint8_t head;
  ASSERT_EQ(q.peek(&head, 1), 1u);
  EXPECT_EQ(head, 7);
  q.consume(50);
  ASSERT_EQ(q.peek(&head, 1), 1u);
  EXPECT_EQ(head, 57);
  q.consume(q.size());
  EXPECT_TRUE(q.empty());
  q.release();
  EXPECT_EQ(arena.stats().in_use, 0u);
}

TEST(SlabQueue, WritableCommitMirrorsScatterRead) {
  BufferArena arena(16);
  SlabQueue q(arena);
  // Partially fill the tail so writable() exposes two regions.
  Bytes pre(10, 0x11);
  q.append(pre);
  IoSlice regions[2];
  std::size_t count = q.writable(regions);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(regions[0].len, 6u);   // tail free space
  EXPECT_EQ(regions[1].len, 16u);  // staged spare
  // Simulate a readv landing 14 bytes across both regions.
  for (std::size_t i = 0; i < 6; ++i) regions[0].data[i] = 0x22;
  for (std::size_t i = 0; i < 8; ++i) regions[1].data[i] = 0x33;
  q.commit(14);
  EXPECT_EQ(q.size(), 24u);
  std::uint8_t out[24];
  ASSERT_EQ(q.peek(out, sizeof(out)), sizeof(out));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], 0x11);
  for (std::size_t i = 10; i < 16; ++i) EXPECT_EQ(out[i], 0x22);
  for (std::size_t i = 16; i < 24; ++i) EXPECT_EQ(out[i], 0x33);
}

TEST(SlabQueue, GatherExposesAllRegionsInOrder) {
  BufferArena arena(8);
  SlabQueue q(arena);
  Bytes data(20);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i + 1);
  q.append(data);
  q.consume(3);  // partial head
  IoSlice slices[8];
  std::size_t count = q.gather(slices, 8);
  ASSERT_EQ(count, 3u);
  Bytes reassembled;
  for (std::size_t i = 0; i < count; ++i)
    reassembled.insert(reassembled.end(), slices[i].data,
                       slices[i].data + slices[i].len);
  ASSERT_EQ(reassembled.size(), 17u);
  for (std::size_t i = 0; i < reassembled.size(); ++i)
    EXPECT_EQ(reassembled[i], i + 4);
}

TEST(SlabQueue, ReleaseReturnsEverySlab) {
  BufferArena arena(16);
  {
    SlabQueue q(arena);
    q.append(Bytes(100, 1));
    IoSlice regions[2];
    q.writable(regions);  // stages a spare too
    EXPECT_GT(arena.stats().in_use, 0u);
  }  // destructor releases
  EXPECT_EQ(arena.stats().in_use, 0u);
  EXPECT_EQ(arena.stats().acquires, arena.stats().recycles);
}

}  // namespace
