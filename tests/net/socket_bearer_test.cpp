// Real-socket bearer tests: loopback echo, writev coalescing, partial-
// write backpressure, hard-reset containment, arena recycling, paused
// accepts. Every test runtime-probes loopback TCP and skips visibly when
// the sandbox has no network stack.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mapsec/net/link.hpp"
#include "mapsec/net/socket_bearer.hpp"

namespace mapsec::net {
namespace {

using mapsec::crypto::Bytes;
using mapsec::crypto::ConstBytes;

#define REQUIRE_SOCKETS()                                          \
  do {                                                             \
    if (!sockets_available())                                      \
      GTEST_SKIP() << "loopback TCP unavailable in this sandbox";  \
  } while (0)

/// One reactor, one arena, one listener; accepted endpoints echo every
/// frame straight back. The standard rig for the tests below.
struct EchoRig {
  MonotonicClock clock;
  Reactor reactor{clock};
  BufferArena arena;
  SocketConfig config;
  std::unique_ptr<SocketListener> listener;
  std::vector<std::unique_ptr<SocketEndpoint>> accepted;
  bool echo = true;

  explicit EchoRig(SocketConfig cfg = {}) : config(cfg) {
    listener = std::make_unique<SocketListener>(reactor, arena, config, 0);
    listener->set_on_accept([this](std::unique_ptr<SocketEndpoint> ep) {
      SocketEndpoint* raw = ep.get();
      if (echo) {
        raw->rx().set_receiver(
            [raw](ConstBytes frame) { raw->tx().send(frame); });
      }
      accepted.push_back(std::move(ep));
    });
  }
};

Bytes patterned(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(seed + i * 13);
  return out;
}

TEST(SocketBearer, LoopbackEchoAcrossSlabBoundaries) {
  REQUIRE_SOCKETS();
  EchoRig rig;
  ASSERT_TRUE(rig.listener->ok());
  auto client = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                 rig.listener->port());
  ASSERT_NE(client, nullptr);

  // Sizes chosen to cross every framing regime: empty, sub-slab,
  // exactly-one-slab, and a multi-slab frame that must reassemble
  // through the scratch path.
  std::vector<Bytes> sent = {patterned(0, 1), patterned(100, 2),
                             patterned(16 * 1024, 3),
                             patterned(100 * 1024, 4)};
  std::vector<Bytes> got;
  client->rx().set_receiver([&got](ConstBytes frame) {
    got.emplace_back(frame.begin(), frame.end());
  });
  for (const Bytes& msg : sent) client->tx().send(msg);

  ASSERT_TRUE(rig.reactor.run_until(
      [&got, &sent] { return got.size() == sent.size(); }, 5'000'000));
  for (std::size_t i = 0; i < sent.size(); ++i)
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;

  // All four frames were queued in one turn: the deferred flush must
  // have coalesced them into fewer writev calls than frames.
  EXPECT_EQ(client->stats().frames_sent, sent.size());
  EXPECT_LT(client->stats().writev_calls + client->stats().partial_writes,
            sent.size() + client->stats().eagain_writes + 2);
}

TEST(SocketBearer, VectoredFlushCoalescesQueuedRecords) {
  REQUIRE_SOCKETS();
  EchoRig rig;
  auto client = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                 rig.listener->port());
  std::size_t got = 0;
  client->rx().set_receiver([&got](ConstBytes) { ++got; });
  // Wait for the connect to complete first so the measurement isn't
  // polluted by the queued-while-connecting flush.
  ASSERT_TRUE(rig.reactor.run_until(
      [&rig] { return !rig.accepted.empty(); }, 5'000'000));

  const std::uint64_t writev_before = client->stats().writev_calls;
  for (int i = 0; i < 10; ++i) client->tx().send(patterned(64, i));
  ASSERT_TRUE(
      rig.reactor.run_until([&got] { return got == 10; }, 5'000'000));
  // Ten records, one reactor-turn flush: a single gather submission
  // (10 * 68 bytes fits any socket buffer).
  EXPECT_EQ(client->stats().writev_calls - writev_before, 1u);
}

TEST(SocketBearer, PartialWriteBackpressureDeliversEverythingIntact) {
  REQUIRE_SOCKETS();
  SocketConfig cfg;
  // Shrink the kernel buffers so a 2 MiB burst must ride EPOLLOUT
  // re-arms: every 128 KiB gather lands a ~16 KiB partial write. (Some
  // sandboxed TCP stacks wedge outright at certain other small sizes —
  // a raw epoll writer stalls with 4 KiB or 32 KiB buffers here — so
  // this size is chosen as one such stacks also handle correctly.)
  cfg.sndbuf_bytes = 16 * 1024;
  cfg.rcvbuf_bytes = 16 * 1024;
  cfg.max_tx_slabs = 1024;
  EchoRig rig(cfg);
  rig.echo = false;  // server side consumes instead of echoing
  auto client = connect_endpoint(rig.reactor, rig.arena, rig.config = cfg,
                                 rig.listener->port());

  std::size_t received_bytes = 0;
  Bytes big = patterned(512 * 1024, 7);
  // Receiver attaches only after the burst is queued, so the peer's
  // inbound backlog plus the tiny buffers force EAGAIN/partial writes.
  for (int i = 0; i < 4; ++i) client->tx().send(big);

  ASSERT_TRUE(rig.reactor.run_until(
      [&rig] { return !rig.accepted.empty(); }, 5'000'000));
  SocketEndpoint* server_ep = rig.accepted.front().get();
  std::size_t frames = 0;
  Bytes last;
  server_ep->rx().set_receiver(
      [&received_bytes, &frames, &last](ConstBytes frame) {
        received_bytes += frame.size();
        ++frames;
        last.assign(frame.begin(), frame.end());
      });
  ASSERT_TRUE(rig.reactor.run_until(
      [&frames] { return frames == 4; }, 10'000'000));
  EXPECT_EQ(received_bytes, 4 * big.size());
  EXPECT_EQ(last, big);  // byte-exact through every partial-write seam
  EXPECT_GT(client->stats().partial_writes + client->stats().eagain_writes,
            0u)
      << "tiny SO_SNDBUF should have forced at least one short write";
}

TEST(SocketBearer, PeerResetContainsToOneConnection) {
  REQUIRE_SOCKETS();
  EchoRig rig;
  auto victim = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                 rig.listener->port());
  auto bystander = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                    rig.listener->port());
  std::string victim_error;
  victim->rx().set_receiver([](ConstBytes) {});
  victim->rx().set_on_channel_error(
      [&victim_error](const std::string& reason) { victim_error = reason; });
  Bytes echoed;
  bystander->rx().set_receiver([&echoed](ConstBytes frame) {
    echoed.assign(frame.begin(), frame.end());
  });
  ASSERT_TRUE(rig.reactor.run_until(
      [&rig] { return rig.accepted.size() == 2; }, 5'000'000));

  // Hard-RST the victim from the server side mid-life.
  rig.accepted.front()->reset();
  EXPECT_FALSE(rig.accepted.front()->open());

  // The bystander's session must be untouched by its neighbour's death.
  Bytes probe = patterned(2000, 9);
  bystander->tx().send(probe);
  ASSERT_TRUE(rig.reactor.run_until(
      [&echoed, &probe] { return echoed == probe; }, 5'000'000));
  ASSERT_TRUE(rig.reactor.run_until(
      [&victim] { return !victim->open(); }, 5'000'000));
  EXPECT_FALSE(victim_error.empty());

  // Pool hygiene: the victim's slabs went back to the arena, not into
  // limbo — every acquire is either recycled or held by a live queue.
  const BufferArena::Stats& s = rig.arena.stats();
  EXPECT_EQ(s.acquires, s.recycles + s.in_use);
}

TEST(SocketBearer, BearerResetFailsReliableLinkImmediately) {
  REQUIRE_SOCKETS();
  EchoRig rig;
  rig.echo = false;
  auto client = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                 rig.listener->port());
  // RTO budget worth ~seconds of wall clock: if the link waits out the
  // retries the run_until below times out; the bearer error must kill
  // it straight away instead.
  LinkConfig link_cfg;
  link_cfg.initial_rto_us = 400'000;
  link_cfg.max_retries = 20;
  ReliableLink link(rig.reactor.queue(), client->tx(), client->rx(),
                    link_cfg);
  std::string link_error;
  link.set_on_error(
      [&link_error](const std::string& reason) { link_error = reason; });
  link.send_message(patterned(100, 3));
  ASSERT_TRUE(rig.reactor.run_until(
      [&rig] { return !rig.accepted.empty(); }, 5'000'000));
  rig.accepted.front()->reset();
  ASSERT_TRUE(rig.reactor.run_until([&link] { return link.dead(); },
                                    2'000'000));
  EXPECT_NE(link_error.find("bearer:"), std::string::npos) << link_error;
}

TEST(SocketBearer, ArenaSteadyStateAcrossConnectionChurn) {
  REQUIRE_SOCKETS();
  EchoRig rig;
  rig.arena.reserve(16);
  const std::uint64_t reserved = rig.arena.stats().allocations;
  // Sequential connect → echo → close cycles: each connection borrows
  // slabs and returns them, so the pool never grows past the reserve.
  for (int round = 0; round < 10; ++round) {
    auto client = connect_endpoint(rig.reactor, rig.arena, rig.config,
                                   rig.listener->port());
    Bytes got;
    client->rx().set_receiver([&got](ConstBytes frame) {
      got.assign(frame.begin(), frame.end());
    });
    Bytes msg = patterned(3000, static_cast<std::uint8_t>(round));
    client->tx().send(msg);
    ASSERT_TRUE(rig.reactor.run_until(
        [&got, &msg] { return got == msg; }, 5'000'000));
    client->close_quiet();
    // Let the server observe the close and clean up before the next
    // round, so churn really exercises recycle, not accumulation.
    rig.reactor.run_until(
        [&rig, round] {
          return !rig.accepted[static_cast<std::size_t>(round)]->open();
        },
        5'000'000);
  }
  EXPECT_EQ(rig.arena.stats().allocations, reserved)
      << "record path must not allocate past the pre-reserve";
  EXPECT_GT(rig.arena.stats().recycles, 0u);
}

TEST(SocketBearer, PausedListenerAcceptsNothingUntilResumed) {
  REQUIRE_SOCKETS();
  SocketConfig cfg;
  cfg.listen_backlog = 1;
  EchoRig rig(cfg);
  rig.listener->set_paused(true);

  auto a = connect_endpoint(rig.reactor, rig.arena, rig.config,
                            rig.listener->port());
  auto b = connect_endpoint(rig.reactor, rig.arena, rig.config,
                            rig.listener->port());
  // Give the reactor real time: nothing may be accepted while paused —
  // the kernel queue absorbs (or refuses) the SYNs, the application
  // layer never sees them. This is the accept-queue-overflow fault.
  rig.reactor.run_until([] { return false; }, 200'000);
  EXPECT_EQ(rig.listener->accepted(), 0u);
  EXPECT_TRUE(rig.accepted.empty());

  rig.listener->set_paused(false);
  ASSERT_TRUE(rig.reactor.run_until(
      [&rig] { return rig.accepted.size() == 2; }, 5'000'000));
  EXPECT_EQ(rig.listener->accepted(), 2u);
}

TEST(SocketBearer, OversizeInboundFrameKillsConnectionCleanly) {
  REQUIRE_SOCKETS();
  SocketConfig small;
  small.max_frame_bytes = 1024;
  MonotonicClock clock;
  Reactor reactor(clock);
  BufferArena arena;
  SocketListener listener(reactor, arena, small, 0);
  std::unique_ptr<SocketEndpoint> server_ep;
  std::string server_error;
  listener.set_on_accept([&](std::unique_ptr<SocketEndpoint> ep) {
    ep->rx().set_receiver([](ConstBytes) {});
    ep->rx().set_on_channel_error(
        [&server_error](const std::string& reason) { server_error = reason; });
    server_ep = std::move(ep);
  });
  // The attacker's side is unbounded, so it happily sends a frame the
  // server's bound rejects from the 4-byte prefix alone.
  SocketConfig unbounded;
  auto attacker = connect_endpoint(reactor, arena, unbounded,
                                   listener.port());
  attacker->tx().send(patterned(4096, 1));
  ASSERT_TRUE(reactor.run_until(
      [&server_ep] { return server_ep && !server_ep->open(); }, 5'000'000));
  EXPECT_NE(server_error.find("exceeds bound"), std::string::npos)
      << server_error;
  EXPECT_EQ(arena.stats().acquires,
            arena.stats().recycles + arena.stats().in_use);
}

}  // namespace
}  // namespace mapsec::net
