// Experiment E14 — the programmable security protocol engine (Section
// 4.2.3, MOSES [66-68]): modelled throughput of the same protocol
// programs on the hardware engine versus a software interpretation on an
// embedded core, across packet sizes.
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/protocol/esp.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::engine;

  crypto::HmacDrbg rng(0xE14);
  ProtocolEngine hw(EngineProfile{}, &rng);
  crypto::HmacDrbg rng2(0xE15);
  ProtocolEngine sw(EngineProfile::software_baseline(), &rng2);
  for (auto* e : {&hw, &sw}) {
    e->load_program("esp-in", esp_inbound_program());
    e->load_program("esp-out", esp_outbound_program());
    e->load_program("wep-like-in", wep_inbound_like_program());
  }

  EngineSa sa;
  sa.spi = 0x1001;
  sa.cipher = protocol::BulkCipher::kDes3;
  sa.enc_key = rng.bytes(24);
  sa.mac_key = rng.bytes(20);

  protocol::EspSa psa;
  psa.spi = sa.spi;
  psa.cipher = sa.cipher;
  psa.enc_key = sa.enc_key;
  psa.mac_key = sa.mac_key;
  protocol::EspSender sender(psa, &rng);

  std::puts("Programmable security protocol engine (MOSES-class model, "
            "100 MHz)\nvs software interpretation (200 MHz embedded "
            "core), ESP inbound processing\n");
  analysis::Table t({"packet bytes", "engine Mbps", "software Mbps",
                     "speedup"});
  for (const std::size_t size : {64u, 256u, 512u, 1024u, 1400u}) {
    const crypto::Bytes packet = sender.protect(crypto::Bytes(size, 0x5A));
    EngineSa sa_hw = sa, sa_sw = sa;
    const double hw_mbps = hw.throughput_mbps("esp-in", sa_hw, packet);
    const double sw_mbps = sw.throughput_mbps("esp-in", sa_sw, packet);
    t.add_row({std::to_string(size), analysis::fmt(hw_mbps, 1),
               analysis::fmt(sw_mbps, 1),
               analysis::fmt(hw_mbps / sw_mbps, 1) + "x"});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nResident protocol programs: %zu (ESP in/out + WEP-shaped "
              "inbound);\nadding a revised standard is a load_program() "
              "call — the Section 3.1\nflexibility requirement met in a "
              "post-fabrication engine.\n",
              hw.program_count());
  return 0;
}
