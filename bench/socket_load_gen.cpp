// Multi-process socket load generator — the client half of E26.
//
// bench_server_load (the parent) hosts the SocketServerFleet and spawns
// one of these per client block; each process drives its block of
// SessionClients over real loopback TCP from its own reactor thread and
// reports the outcome as key=value lines on stdout. Seeds and shard
// routing derive from GLOBAL client ids, so the union of the children's
// fleets is exactly the sim LoadGenerator's fleet for the same seed —
// the parent concatenates the children's per-client digest blocks in
// process order and refolds the global fleet digest.
//
// Usage:
//   bench_socket_load_gen --probe
//       exit 0 if loopback TCP works here, 2 if not (visible CI SKIP)
//   bench_socket_load_gen --ports=P1,P2,.. --clients=N [--first=I]
//       [--seed=S] [--sessions=K] [--interarrival-us=U] [--budget-us=B]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mapsec/server/socket_fleet.hpp"
#include "server_pki.hpp"

using namespace mapsec;

namespace {

std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    ports.push_back(static_cast<std::uint16_t>(
        std::strtoul(csv.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return ports;
}

std::string to_hex(const crypto::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  server::SocketLoadConfig load;
  load.num_clients = 0;
  int sessions = 2;
  std::vector<std::uint16_t> ports;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--probe") {
      return net::sockets_available() ? 0 : 2;
    } else if (arg.rfind("--ports=", 0) == 0) {
      ports = parse_ports(value());
    } else if (arg.rfind("--clients=", 0) == 0) {
      load.num_clients = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--first=", 0) == 0) {
      load.first_client_id = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      load.seed = std::strtoull(value().c_str(), nullptr, 0);
    } else if (arg.rfind("--sessions=", 0) == 0) {
      sessions = std::atoi(value().c_str());
    } else if (arg.rfind("--interarrival-us=", 0) == 0) {
      load.mean_interarrival_us =
          std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--budget-us=", 0) == 0) {
      load.wall_budget_us = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (ports.empty() || load.num_clients == 0) {
    std::fprintf(stderr,
                 "usage: bench_socket_load_gen --probe | "
                 "--ports=P1,P2 --clients=N [--first=I] [--seed=S] "
                 "[--sessions=K] [--interarrival-us=U] [--budget-us=B]\n");
    return 1;
  }
  if (!net::sockets_available()) {
    std::fprintf(stderr, "loopback TCP unavailable\n");
    return 2;
  }

  const bench::Pki pki = bench::Pki::make();
  server::ClientConfig client = bench::pki_client_config(pki);
  client.sessions = sessions;
  load.reserve_slabs = 4 * load.num_clients + 32;

  server::SocketClientFleet fleet(load, client,
                                  bench::pki_server_config(pki), ports);
  const server::SocketClientReport r = fleet.run();

  std::string digests;
  for (const crypto::Bytes& d : r.client_digests) digests += to_hex(d);
  std::printf("sessions_attempted=%zu\n", r.sessions_attempted);
  std::printf("sessions_completed=%zu\n", r.sessions_completed);
  std::printf("sessions_failed=%zu\n", r.sessions_failed);
  std::printf("echo_mismatches=%zu\n", r.echo_mismatches);
  std::printf("connection_attempts=%zu\n", r.connection_attempts);
  std::printf("bearer_errors=%" PRIu64 "\n", r.bearer_errors);
  std::printf("all_finished=%d\n", r.all_finished ? 1 : 0);
  std::printf("wall_s=%.6f\n", r.wall_s);
  std::printf("frames_sent=%" PRIu64 "\n", r.sockets.frames_sent);
  std::printf("frames_received=%" PRIu64 "\n", r.sockets.frames_received);
  std::printf("bytes_sent=%" PRIu64 "\n", r.sockets.bytes_sent);
  std::printf("bytes_received=%" PRIu64 "\n", r.sockets.bytes_received);
  std::printf("writev_calls=%" PRIu64 "\n", r.sockets.writev_calls);
  std::printf("readv_calls=%" PRIu64 "\n", r.sockets.readv_calls);
  std::printf("partial_writes=%" PRIu64 "\n", r.sockets.partial_writes);
  std::printf("arena_allocations=%" PRIu64 "\n", r.arena.allocations);
  std::printf("arena_reserved=%zu\n", r.arena.reserved);
  std::printf("arena_peak_in_use=%zu\n", r.arena.peak_in_use);
  std::printf("digests=%s\n", digests.c_str());
  return r.all_finished && r.echo_mismatches == 0 ? 0 : 1;
}
