// Experiment E1 — Figure 2: evolution of security protocols.
#include <cstdio>

#include "mapsec/analysis/report.hpp"

int main() {
  std::fputs(mapsec::analysis::figure2_report().c_str(), stdout);
  return 0;
}
