// Experiment E5 — Figure 4: battery-life impact of security processing,
// plus an ablation over the crypto energy overhead (what cheaper crypto —
// e.g. offload to an accelerator, Section 4.2 — buys back).
#include <cstdio>

#include "mapsec/analysis/report.hpp"
#include "mapsec/analysis/table.hpp"
#include "mapsec/platform/energy.hpp"

int main() {
  using namespace mapsec;
  std::fputs(analysis::figure4_report().c_str(), stdout);

  std::puts("\nAblation: transactions/charge vs crypto energy overhead");
  analysis::Table t({"crypto overhead (mJ/KB)", "txns/charge",
                     "fraction of unencrypted"});
  auto energy = platform::EnergyModel::paper_sensor_node();
  const double plain =
      platform::transactions_per_charge(energy, 26.0, 1.0, false);
  for (const double overhead : {0.0, 4.2, 10.0, 21.0, 42.0, 84.0}) {
    energy.crypto_mj_per_kb = overhead;
    const double secure =
        platform::transactions_per_charge(energy, 26.0, 1.0, true);
    t.add_row({analysis::fmt(overhead, 1), analysis::fmt_eng(secure, 1),
               analysis::fmt(secure / plain, 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\n(42 mJ/KB is the paper's software RSA; ~4.2 mJ/KB models a "
            "10x-efficient crypto accelerator, Section 4.2.2)");
  return 0;
}
