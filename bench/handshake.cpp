// Experiment E8 — handshake latency / cost sweep across cipher suites and
// RSA key sizes, full vs resumed. The per-handshake RSA op counts and
// wire-byte totals are the inputs the Figure 3 latency axis prices.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_main.hpp"
#include "mapsec/analysis/table.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace {

using namespace mapsec;
using namespace mapsec::protocol;

constexpr std::uint64_t kNow = 1'050'000'000;

struct Pki {
  crypto::RsaKeyPair ca_key;
  crypto::RsaKeyPair server_key;
  std::unique_ptr<CertificateAuthority> ca;
  Certificate server_cert;
};

const Pki& pki(std::size_t bits) {
  static std::map<std::size_t, Pki> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    crypto::HmacDrbg rng(0xBEEF + bits);
    Pki p{crypto::rsa_generate(rng, bits), crypto::rsa_generate(rng, bits),
          nullptr, {}};
    p.ca = std::make_unique<CertificateAuthority>("BenchRoot", p.ca_key, 0,
                                                  kNow * 2);
    p.server_cert =
        p.ca->issue("server.bench", p.server_key.pub, 0, kNow * 2);
    it = cache.emplace(bits, std::move(p)).first;
  }
  return it->second;
}

HandshakeConfig client_cfg(const Pki& p, crypto::Rng& rng) {
  HandshakeConfig cfg;
  cfg.rng = &rng;
  cfg.now = kNow;
  cfg.trusted_roots = {p.ca->root()};
  return cfg;
}

HandshakeConfig server_cfg(const Pki& p, crypto::Rng& rng) {
  HandshakeConfig cfg;
  cfg.rng = &rng;
  cfg.now = kNow;
  cfg.cert_chain = {p.server_cert};
  cfg.private_key = &p.server_key.priv;
  return cfg;
}

void BM_FullHandshake(benchmark::State& state, CipherSuite suite,
                      std::size_t rsa_bits) {
  const Pki& p = pki(rsa_bits);
  crypto::HmacDrbg crng(1), srng(2);
  for (auto _ : state) {
    HandshakeConfig cc = client_cfg(p, crng);
    cc.offered_suites = {suite};
    TlsClient client(cc);
    TlsServer server(server_cfg(p, srng));
    run_handshake(client, server);
    benchmark::DoNotOptimize(client.established());
  }
}

void BM_ResumedHandshake(benchmark::State& state) {
  const Pki& p = pki(1024);
  crypto::HmacDrbg crng(3), srng(4);
  SessionCache cache;
  TlsClient first(client_cfg(p, crng));
  TlsServer first_server(server_cfg(p, srng), &cache);
  run_handshake(first, first_server);
  const crypto::Bytes sid = first.summary().session_id;
  const crypto::Bytes master = first.master_secret();
  const CipherSuite suite = first.summary().suite;
  for (auto _ : state) {
    TlsClient client(client_cfg(p, crng));
    client.set_resume_session(sid, master, suite);
    TlsServer server(server_cfg(p, srng), &cache);
    run_handshake(client, server);
    benchmark::DoNotOptimize(client.established());
  }
}

void BM_ApplicationData(benchmark::State& state, CipherSuite suite) {
  const Pki& p = pki(512);
  crypto::HmacDrbg crng(5), srng(6), drng(7);
  HandshakeConfig cc = client_cfg(p, crng);
  cc.offered_suites = {suite};
  TlsClient client(cc);
  TlsServer server(server_cfg(p, srng));
  run_handshake(client, server);
  const crypto::Bytes payload = drng.bytes(4096);
  for (auto _ : state) {
    const auto got = server.recv_data(client.send_data(payload));
    benchmark::DoNotOptimize(got.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void register_benchmarks() {
  for (const CipherSuite suite : all_suites()) {
    benchmark::RegisterBenchmark(
        ("BM_FullHandshake/" + suite_info(suite).name).c_str(),
        [suite](benchmark::State& s) { BM_FullHandshake(s, suite, 1024); })
        ->Unit(benchmark::kMillisecond);
  }
  for (const std::size_t bits : {512u, 1024u, 2048u}) {
    benchmark::RegisterBenchmark(
        ("BM_FullHandshake/RSA-" + std::to_string(bits)).c_str(),
        [bits](benchmark::State& s) {
          BM_FullHandshake(s, CipherSuite::kRsa3DesEdeCbcSha, bits);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("BM_ResumedHandshake", BM_ResumedHandshake)
      ->Unit(benchmark::kMillisecond);
  for (const CipherSuite suite :
       {CipherSuite::kRsa3DesEdeCbcSha, CipherSuite::kRsaAes128CbcSha,
        CipherSuite::kRsaRc4128Md5}) {
    benchmark::RegisterBenchmark(
        ("BM_ApplicationData/" + suite_info(suite).name).c_str(),
        [suite](benchmark::State& s) { BM_ApplicationData(s, suite); });
  }
}

// Structural summary table (wire bytes + RSA op counts) printed before the
// throughput numbers.
void print_summary() {
  std::puts("Handshake cost structure (full vs resumed, RSA-1024):\n");
  const Pki& p = pki(1024);
  crypto::HmacDrbg crng(8), srng(9);
  SessionCache cache;

  TlsClient full(client_cfg(p, crng));
  TlsServer full_server(server_cfg(p, srng), &cache);
  run_handshake(full, full_server);

  TlsClient resumed(client_cfg(p, crng));
  resumed.set_resume_session(full.summary().session_id,
                             full.master_secret(), full.summary().suite);
  TlsServer resumed_server(server_cfg(p, srng), &cache);
  run_handshake(resumed, resumed_server);

  analysis::Table t({"handshake", "client wire bytes", "server wire bytes",
                     "client RSA pub ops", "server RSA priv ops"});
  const auto row = [&](const char* name, const TlsClient& c,
                       const TlsServer& s) {
    t.add_row({name, std::to_string(c.summary().bytes_sent),
               std::to_string(s.summary().bytes_sent),
               std::to_string(c.summary().rsa_public_ops),
               std::to_string(s.summary().rsa_private_ops)});
  };
  row("full", full, full_server);
  row("resumed", resumed, resumed_server);
  std::fputs(t.render().c_str(), stdout);
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  mapsec::bench::release_guard();
  benchmark::AddCustomContext("mapsec_build_type",
                              mapsec::bench::build_type());
  benchmark::AddCustomContext(
      "crypto_dispatch",
      mapsec::crypto::dispatch::capabilities_summary());
  print_summary();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
