// Experiment E18 — secure-session serving rates under load.
//
// Drives the mapsec::server stack with seeded client fleets over lossy
// simulated bearers and reports the rates the paper's Figure 3 argument
// is about: handshakes/sec, protected record-layer throughput — then
// prices the measured load against an appliance-class processor via
// platform::serving_gap, both as-is and with the crypto::dispatch ISA
// tier applied (E19's gap-ratio improvement). A worker sweep re-runs the
// bulk-heavy scenario across PacketPipeline worker counts and checks the
// fleet transcript digest is bit-identical.
//
// E21 rides on the same binary: a public-key offload sweep re-runs the
// full-handshake fleet with the server's RSA ops on modeled accelerator
// lanes (engine::OffloadEngine, 1/2/4 lanes vs inline), asserting the
// fleet digest stays byte-identical for any lane count while the
// full-handshake rate scales with lanes; plus a session-cache index
// micro-benchmark (hashed vs ordered tree at 10k entries).
//
// E23 rides along too: a cache-vs-stateless-ticket pairing — identical
// fleets resuming through the bounded cache vs encrypted session tickets
// with the cache disabled — gating that the ticket path serves the same
// throughput (±10%) with a byte-identical fleet digest while server
// resumption state drops from O(cached users) to O(key ring).
//
// Metric provenance: every per-second rate is reported INSIDE its
// scenario block. Rates from different scenarios are not comparable —
// each scenario has its own offered load and sim duration, so an earlier
// revision's top-level "full 608/s vs resumed 88/s" pairing read as
// "resumption is slower" when it only meant scenario 2 offered fewer
// handshakes per second. The apples-to-apples cost comparison is the
// full-vs-resumed handshake latency split within ONE run.
//
// E24 rides along as well: a sharded serving-tier sweep re-runs a
// core-bound fleet (the modeled host core prices session processing in
// simulated microseconds) across 1/2/4/8 shards — independent event
// loops on real threads joined by the epoch-barrier merge — gating a
// >= 3x aggregate handshake-rate gain from 1 to 4 shards with a
// byte-identical fleet digest at every count, plus a 10k-concurrent
// lingering-session soak on 8 shards.
//
// E25 closes the file: availability SLOs for supervised shard failure.
// A 150-client x 4-session ticket-mode fleet on 4 shards loses one shard
// to a hard crash mid-flood; the supervisor kills the world, remaps the
// victims by rendezvous hashing and rejoins the shard warm. Gates: ZERO
// honest sessions lost, every failover reconnect resumes by ticket (no
// pk op for the survivor), p99 client blackout under budget, and the
// crashed run's fleet digest byte-identical to both a rerun AND the
// undisturbed run. The crash's energy bill is priced two ways through
// platform::serving_gap_failover — as ticket resumptions vs the
// full-RSA counterfactual — which is the battery argument for stateless
// failover at appliance scale.
//
// E26 closes the file at wall-clock speed: the real-socket bearer. A
// 2-shard SocketServerFleet listens on loopback TCP while two
// bench_socket_load_gen child processes drive the same seeded client
// fleet the sim reference ran — same seeds, same arrival stream, same
// shard routing — over real sockets. Gates: session outcomes (handshake
// mix, completion counts, echoes, refolded fleet digest, conservation
// books) byte-identical to the sim run, and the pooled record path
// allocating nothing past its pre-reserve. Wall-clock handshakes/s and
// record-Mbit/s are reported as informational (_wall-suffixed) rates
// next to the sim-modeled ones. Skipped visibly when the sandbox has no
// loopback TCP.
//
// Usage: bench_server_load [json-output-path]
//   Writes BENCH_server.json (default: ./BENCH_server.json).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_guard.hpp"
#include "server_pki.hpp"
#include "mapsec/analysis/csv.hpp"
#include "mapsec/analysis/table.hpp"
#include "mapsec/chaos/campaign.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/sharded_server.hpp"
#include "mapsec/server/socket_fleet.hpp"

using namespace mapsec;

namespace {

using bench::Pki;

server::ServerConfig server_config(const Pki& pki) {
  return bench::pki_server_config(pki);
}

server::ClientConfig client_config(const Pki& pki) {
  return bench::pki_client_config(pki);
}

server::LoadConfig load_config(std::size_t clients) {
  server::LoadConfig cfg;
  cfg.num_clients = clients;
  cfg.channel.loss_rate = 0.02;
  cfg.channel.reorder_rate = 0.05;
  cfg.appliance = platform::Processor::strongarm_sa1100();
  return cfg;
}

struct Timed {
  server::LoadReport report;
  double wall_ms = 0;
};

Timed run(server::LoadGenerator gen) {
  const auto t0 = std::chrono::steady_clock::now();
  Timed out{gen.run(), 0};
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

std::string hex_prefix(const crypto::Bytes& digest, std::size_t n = 8) {
  std::string s;
  char buf[3];
  for (std::size_t i = 0; i < n && i < digest.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", digest[i]);
    s += buf;
  }
  return s;
}

platform::ServedLoad served_load(const server::LoadReport& r) {
  platform::ServedLoad served;
  served.full_handshakes_per_s = r.full_handshakes_per_s;
  served.resumed_handshakes_per_s = r.resumed_handshakes_per_s;
  served.bulk_mbps = r.record_mbps;
  served.sessions_per_s = r.sessions_per_s;
  served.avg_session_kb =
      r.sessions_completed > 0
          ? (static_cast<double>(r.server.bytes_opened +
                                 r.server.bytes_sealed) /
             1024.0 / static_cast<double>(r.sessions_completed))
          : 0;
  return served;
}

/// Re-price one report's served load with the ISA-dispatch tier applied
/// (the accelerated appliance variant of E19).
platform::ServingGapReport accelerated_gap(const server::LoadReport& r,
                                           const platform::Processor& proc) {
  return platform::serving_gap(platform::WorkloadModel::paper_calibrated(),
                               platform::AccelProfile::isa_dispatch(), proc,
                               served_load(r));
}

void print_scenario(const char* name, const Timed& t,
                    const platform::ServingGapReport& accel) {
  const server::LoadReport& r = t.report;
  analysis::Table tab({"metric", "value"});
  tab.add_row({"sessions completed / attempted",
               std::to_string(r.sessions_completed) + " / " +
                   std::to_string(r.sessions_attempted)});
  tab.add_row({"handshakes/s served (full + resumed, sim)",
               analysis::fmt(r.full_handshakes_per_s, 1) + " + " +
                   analysis::fmt(r.resumed_handshakes_per_s, 1)});
  tab.add_row({"record throughput (Mbit/s sim)",
               analysis::fmt(r.record_mbps, 3)});
  tab.add_row({"full handshake p50 / p99 (ms sim)",
               analysis::fmt(r.full_handshake_p50_ms, 1) + " / " +
                   analysis::fmt(r.full_handshake_p99_ms, 1)});
  if (r.server.resumed_handshakes > 0) {
    tab.add_row({"resumed handshake p50 / p99 (ms sim)",
                 analysis::fmt(r.resumed_handshake_p50_ms, 1) + " / " +
                     analysis::fmt(r.resumed_handshake_p99_ms, 1)});
    if (r.resumed_handshake_p50_ms > 0) {
      tab.add_row({"resumption latency advantage (p50)",
                   analysis::fmt(r.full_handshake_p50_ms /
                                     r.resumed_handshake_p50_ms,
                                 2) +
                       "x"});
    }
  }
  tab.add_row({"cache hit rate", analysis::fmt(r.cache_hit_rate, 3)});
  tab.add_row({"required MIPS (StrongARM has " +
                   analysis::fmt(r.gap.available_mips, 0) + ")",
               analysis::fmt(r.gap.required_mips, 1)});
  tab.add_row({"gap ratio (software)", analysis::fmt(r.gap.gap_ratio, 2)});
  tab.add_row({"gap ratio (ISA dispatch)",
               analysis::fmt(accel.gap_ratio, 2)});
  tab.add_row({"sessions per 26 KJ charge",
               analysis::fmt(r.gap.sessions_per_charge, 0) + " sw / " +
                   analysis::fmt(accel.sessions_per_charge, 0) + " accel"});
  tab.add_row({"wall clock (ms)", analysis::fmt(t.wall_ms, 0)});
  std::printf("\n-- %s --\n%s", name, tab.render().c_str());
}

/// One scenario's JSON block: rates stay inside the scenario they were
/// measured in.
void write_scenario_json(FILE* f, const char* key, const Timed& t,
                         const platform::ServingGapReport& accel,
                         bool trailing_comma) {
  const server::LoadReport& r = t.report;
  std::fprintf(
      f,
      "    \"%s\": {\n"
      "      \"full_handshakes_per_s\": %.3f,\n"
      "      \"resumed_handshakes_per_s\": %.3f,\n"
      "      \"record_mbps\": %.3f,\n"
      "      \"full_handshake_p50_ms\": %.3f,\n"
      "      \"full_handshake_p99_ms\": %.3f,\n"
      "      \"resumed_handshake_p50_ms\": %.3f,\n"
      "      \"resumed_handshake_p99_ms\": %.3f,\n"
      "      \"cache_hit_rate\": %.4f,\n"
      "      \"gap_ratio\": %.3f,\n"
      "      \"gap_ratio_isa_dispatch\": %.3f,\n"
      "      \"sessions_per_charge\": %.1f,\n"
      "      \"sessions_per_charge_isa_dispatch\": %.1f\n"
      "    }%s\n",
      key, r.full_handshakes_per_s, r.resumed_handshakes_per_s,
      r.record_mbps, r.full_handshake_p50_ms, r.full_handshake_p99_ms,
      r.resumed_handshake_p50_ms, r.resumed_handshake_p99_ms,
      r.cache_hit_rate, r.gap.gap_ratio, accel.gap_ratio,
      r.gap.sessions_per_charge, accel.sessions_per_charge,
      trailing_comma ? "," : "");
}

// ---- scenario 4: handshake flood (Section 3.3 battery-exhaustion DoS) --

/// One chaos campaign: the scenario-1 honest fleet plus a 200-connection
/// full-handshake flood that drives each probe through the
/// ClientKeyExchange, so every admitted attack connection costs the
/// server an RSA private operation. `defended` toggles the admission
/// valve and the degraded (resumption-only) watermarks; undefended is
/// the pre-hardening server that performs every handshake it is offered.
chaos::CampaignConfig flood_campaign(const Pki& pki, bool defended,
                                     bool flood) {
  chaos::CampaignConfig cfg;
  cfg.seed = 0xF100D;
  cfg.honest_clients = 12;
  cfg.mean_interarrival_us = 3'000;
  cfg.server = server_config(pki);
  cfg.client = client_config(pki);
  cfg.client.retry_budget = 8;
  cfg.client.retry_backoff_us = 100'000;
  cfg.client.max_retry_backoff_us = 1'000'000;
  cfg.cache.capacity = 256;
  cfg.cache.ttl_us = 0;
  if (defended) {
    cfg.server.max_handshake_queue = 8;
    cfg.server.degraded_high_watermark = 5;
    cfg.server.degraded_low_watermark = 2;
  }
  // Flood concurrency == attacker count (each attacker walks its
  // connections sequentially), so 40 attackers keep ~40 handshakes in
  // flight — far past the defended server's 8-deep admission queue.
  if (flood)
    cfg.faults.push_back(chaos::HandshakeFlood{
        .at_us = 5'000,
        .attackers = 40,
        .connections_each = 5,
        .interarrival_us = 1'000,
        .reach_key_exchange = true,
    });
  return cfg;
}

struct FloodOutcome {
  chaos::CampaignReport report;
  /// Handshake energy beyond the flood-free baseline run — the bill the
  /// attacker ran up, priced per byte the attacker had to transmit.
  double attack_energy_mj = 0;
  double attack_mj_per_byte = 0;
  double degraded_time_share = 0;
};

FloodOutcome run_flood(const chaos::CampaignConfig& cfg,
                       double baseline_energy_mj) {
  FloodOutcome out;
  out.report = chaos::CampaignRunner(cfg).run();
  out.attack_energy_mj =
      std::max(0.0, out.report.handshake_energy_mj - baseline_energy_mj);
  if (out.report.attack_bytes > 0)
    out.attack_mj_per_byte =
        out.attack_energy_mj / static_cast<double>(out.report.attack_bytes);
  if (out.report.sim_duration_s > 0)
    out.degraded_time_share = out.report.degraded_time_us /
                              (out.report.sim_duration_s * 1e6);
  return out;
}

// ---- scenario 10 (E26): real-socket bearer at wall-clock speed ---------

/// Parsed key=value output of one bench_socket_load_gen child process.
struct ChildOutcome {
  std::map<std::string, std::string> kv;
  bool ok = false;

  std::uint64_t num(const char* key) const {
    auto it = kv.find(key);
    return it == kv.end() ? 0
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double real(const char* key) const {
    auto it = kv.find(key);
    return it == kv.end() ? 0.0 : std::atof(it->second.c_str());
  }
};

/// Directory holding this binary — bench_socket_load_gen lives next to
/// it in the build tree.
std::string self_dir() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

/// Drain one child's stdout into key=value pairs; ok iff it exited 0.
ChildOutcome read_child(FILE* pipe) {
  ChildOutcome out;
  if (!pipe) return out;
  char line[16384];
  while (std::fgets(line, sizeof line, pipe)) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
      s.pop_back();
    std::size_t eq = s.find('=');
    if (eq != std::string::npos) out.kv[s.substr(0, eq)] = s.substr(eq + 1);
  }
  out.ok = pclose(pipe) == 0;
  return out;
}

/// Decode the children's concatenated per-client digest hex back into
/// 32-byte lanes (process order = global client order).
std::vector<crypto::Bytes> decode_digests(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<crypto::Bytes> lanes;
  for (std::size_t i = 0; i + 64 <= hex.size(); i += 64) {
    crypto::Bytes d(32);
    for (std::size_t j = 0; j < 32; ++j) {
      int hi = nibble(hex[i + 2 * j]), lo = nibble(hex[i + 2 * j + 1]);
      if (hi < 0 || lo < 0) return {};
      d[j] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    lanes.push_back(std::move(d));
  }
  return lanes;
}

/// Everything the E26 gates and JSON block need to survive scope exit.
struct SocketWallclock {
  bool skipped = true;
  bool outcome_equal = false;
  bool digest_match = false;
  bool conserved = false;
  bool zero_alloc = false;
  bool children_ok = false;
  std::size_t echo_mismatches = 0;
  std::uint64_t bearer_errors = 0;
  std::uint64_t accepted = 0;
  double wall_s = 0;
  double full_per_s_wall = 0;
  double resumed_per_s_wall = 0;
  double record_mbps_wall = 0;
  double wall_over_modeled_full = 0;
  double wall_over_modeled_record = 0;

  bool ok() const {
    return skipped || (outcome_equal && digest_match && conserved &&
                       zero_alloc && children_ok && echo_mismatches == 0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  mapsec::bench::release_guard();
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_server.json";
  const Pki pki = Pki::make();

  std::puts("E18: secure-session serving rates (simulated bearers, "
            "RSA-512 identities,\n2% loss / 5% reorder, StrongARM "
            "SA-1100 pricing)");
  std::printf("crypto dispatch: %s\n",
              engine::PacketPipeline::crypto_backend().c_str());

  // Scenario 1: every session pays the full RSA handshake.
  server::ClientConfig full_client = client_config(pki);
  full_client.sessions = 1;
  const Timed full = run(server::LoadGenerator(
      load_config(200), server_config(pki), full_client, {}));
  const platform::ServingGapReport full_accel =
      accelerated_gap(full.report, platform::Processor::strongarm_sa1100());
  print_scenario("full handshakes (200 clients x 1 session)", full,
                 full_accel);

  // Scenario 2: three of four sessions resume through the bounded cache.
  // The full-vs-resumed comparison lives HERE, inside one run: both
  // handshake kinds face the same arrival process and channel.
  server::ClientConfig resumed_client = client_config(pki);
  resumed_client.sessions = 4;
  const Timed resumed = run(server::LoadGenerator(
      load_config(150), server_config(pki), resumed_client, {}));
  const platform::ServingGapReport resumed_accel = accelerated_gap(
      resumed.report, platform::Processor::strongarm_sa1100());
  print_scenario("resumption-heavy (150 clients x 4 sessions)", resumed,
                 resumed_accel);

  // Scenario 3: bulk-heavy worker sweep — the record path shards through
  // the PacketPipeline by connection; the transcript digest must not
  // depend on the worker count.
  std::puts("\n-- record path vs PacketPipeline workers (100 clients x "
            "8 x 512 B) --");
  analysis::Table sweep({"workers", "record Mbit/s (sim)", "wall ms",
                         "fleet digest"});
  std::vector<std::vector<std::string>> sweep_csv;
  double bulk_mbps = 0;
  std::string digest0;
  bool digests_match = true;
  for (std::size_t workers : {1u, 2u, 4u}) {
    server::ClientConfig bulk_client = client_config(pki);
    bulk_client.payloads_per_session = 8;
    bulk_client.payload_bytes = 512;
    server::ServerConfig bulk_server = server_config(pki);
    bulk_server.pipeline_workers = workers;
    const Timed t = run(server::LoadGenerator(
        load_config(100), bulk_server, bulk_client, {}));
    const std::string digest = hex_prefix(t.report.fleet_digest);
    if (digest0.empty()) digest0 = digest;
    digests_match = digests_match && digest == digest0;
    bulk_mbps = t.report.record_mbps;
    sweep.add_row({std::to_string(workers),
                   analysis::fmt(t.report.record_mbps, 3),
                   analysis::fmt(t.wall_ms, 0), digest});
    sweep_csv.push_back({std::to_string(workers),
                         analysis::fmt(t.report.record_mbps, 3), digest});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::printf("digests %s across worker counts\n",
              digests_match ? "IDENTICAL" : "DIVERGED");
  std::printf("\nCSV:\n%s",
              analysis::to_csv({"workers", "record_mbps", "fleet_digest"},
                               sweep_csv)
                  .c_str());

  // Scenario 5 (E21): public-key offload sweep. The same full-handshake
  // fleet with the server's RSA private ops on modeled accelerator lanes
  // (4 ms/op, the OffloadCosts default): handshakes suspend at each
  // private-key op and resume via EventQueue completion events, so the
  // event loop never blocks on bignum math. Loss-free bearers so every
  // session completes even at 1-lane saturation; the fleet digest must
  // then be byte-identical for ANY lane count — and for inline mode —
  // per the offload determinism contract.
  std::puts("\n-- E21: public-key offload (200 clients x 1 full handshake, "
            "loss-free bearer,\n   modeled RSA lane = 4 ms/op) --");
  struct OffRow {
    std::size_t workers = 0;
    double hs_per_s = 0;
    double mbps = 0;
    double lane_util = 0;
  };
  analysis::Table off_tab({"lanes", "full hs/s (sim)", "record Mbit/s",
                           "lane util", "peak depth", "wall ms",
                           "fleet digest"});
  std::vector<OffRow> off_rows;
  std::string off_digest0;
  bool off_digests_match = true;
  for (std::size_t workers : {0u, 1u, 2u, 4u}) {
    server::LoadConfig off_load = load_config(200);
    off_load.channel = {};  // loss-free
    server::ClientConfig off_client = client_config(pki);
    off_client.sessions = 1;
    off_client.payloads_per_session = 4;
    off_client.payload_bytes = 256;
    server::ServerConfig off_server = server_config(pki);
    off_server.offload_workers = workers;
    const Timed t = run(server::LoadGenerator(off_load, off_server,
                                              off_client, {}));
    const std::string digest = hex_prefix(t.report.fleet_digest);
    if (off_digest0.empty()) off_digest0 = digest;
    off_digests_match = off_digests_match && digest == off_digest0;
    OffRow row;
    row.workers = workers;
    row.hs_per_s = t.report.full_handshakes_per_s;
    row.mbps = t.report.record_mbps;
    if (workers > 0) {
      // Offload-tier pricing: the host plane sheds the handshake MIPS
      // term entirely; feasibility moves to lane occupancy.
      const platform::OffloadGapReport og = platform::serving_gap_offloaded(
          platform::WorkloadModel::paper_calibrated(),
          platform::Processor::strongarm_sa1100(), served_load(t.report),
          workers, off_server.offload_costs.rsa_decrypt_us / 1e6);
      row.lane_util = og.lane_utilisation;
    }
    off_rows.push_back(row);
    off_tab.add_row(
        {workers == 0 ? "inline" : std::to_string(workers),
         analysis::fmt(row.hs_per_s, 1), analysis::fmt(row.mbps, 3),
         workers == 0 ? "-" : analysis::fmt(row.lane_util, 2),
         std::to_string(t.report.server.offload_peak_depth),
         analysis::fmt(t.wall_ms, 0), digest});
  }
  std::fputs(off_tab.render().c_str(), stdout);
  const double off_scaling =
      off_rows[1].hs_per_s > 0 ? off_rows[3].hs_per_s / off_rows[1].hs_per_s
                               : 0.0;
  const bool offload_ok = off_digests_match && off_scaling >= 2.0 &&
                          off_rows[3].mbps >= off_rows[1].mbps;
  std::printf("digests %s across lane counts (incl. inline); 1->4 lane "
              "handshake scaling %.2fx, record path %.3f -> %.3f Mbit/s\n",
              off_digests_match ? "IDENTICAL" : "DIVERGED", off_scaling,
              off_rows[1].mbps, off_rows[3].mbps);

  // Scenario 6 (E22): batched offload sweep. The same offload fleet on
  // saturated lanes, with each lane draining up to `width` queued jobs
  // per service window (cost(j0) + 0.3 * cost(rest), the BatchModExp ILP
  // model). At width 4 a full window serves 4 ops in 1.9 op-slots —
  // 2.105x the per-op rate — so on a lane-bound fleet the served
  // handshake rate must at least double vs width 1, with the fleet
  // digest byte-identical for every (lanes, width) cell.
  std::puts("\n-- E22: batched offload sweep (same fleet, lanes x batch "
            "width,\n   window cost = op + 0.3/extra op) --");
  struct BatchRow {
    std::size_t lanes = 0;
    std::size_t width = 0;
    double hs_per_s = 0;
    double mbps = 0;
    double util = 0;
    std::uint64_t batched_jobs = 0;
    std::size_t max_fill = 0;
  };
  analysis::Table bat_tab({"lanes", "width", "full hs/s (sim)",
                           "record Mbit/s", "modeled util", "batched jobs",
                           "max fill", "wall ms", "fleet digest"});
  std::vector<BatchRow> bat_rows;
  std::string bat_digest0;
  bool bat_digests_match = true;
  for (std::size_t lanes : {1u, 2u}) {
    for (std::size_t width : {1u, 2u, 4u, 8u}) {
      // 400 clients at 0.5 ms mean arrivals: the lane-bound phase is long
      // enough that the arrival ramp and the last session's record tail
      // (both fixed costs) cannot dilute the window-pricing ratio below
      // the 2x gate.
      server::LoadConfig bat_load = load_config(400);
      bat_load.channel = {};  // loss-free
      bat_load.mean_interarrival_us = 500;
      server::ClientConfig bat_client = client_config(pki);
      bat_client.sessions = 1;
      bat_client.payloads_per_session = 4;
      bat_client.payload_bytes = 256;
      server::ServerConfig bat_server = server_config(pki);
      bat_server.offload_workers = lanes;
      bat_server.offload_batch_width = width;
      const Timed t = run(server::LoadGenerator(bat_load, bat_server,
                                                bat_client, {}));
      const std::string digest = hex_prefix(t.report.fleet_digest);
      if (bat_digest0.empty()) bat_digest0 = digest;
      bat_digests_match = bat_digests_match && digest == bat_digest0;
      const platform::BatchedGapReport bg = platform::serving_gap_batched(
          platform::WorkloadModel::paper_calibrated(),
          platform::Processor::strongarm_sa1100(), served_load(t.report),
          lanes, bat_server.offload_costs.rsa_decrypt_us / 1e6, width,
          bat_server.offload_costs.batch_marginal);
      BatchRow row;
      row.lanes = lanes;
      row.width = width;
      row.hs_per_s = t.report.full_handshakes_per_s;
      row.mbps = t.report.record_mbps;
      row.util = bg.batched_utilisation;
      row.batched_jobs = t.report.server.offload_batched_jobs;
      row.max_fill = t.report.server.offload_max_batch_fill;
      bat_rows.push_back(row);
      bat_tab.add_row({std::to_string(lanes), std::to_string(width),
                       analysis::fmt(row.hs_per_s, 1),
                       analysis::fmt(row.mbps, 3), analysis::fmt(row.util, 2),
                       std::to_string(row.batched_jobs),
                       std::to_string(row.max_fill),
                       analysis::fmt(t.wall_ms, 0), digest});
    }
  }
  std::fputs(bat_tab.render().c_str(), stdout);
  // Rows 0..3 are the 1-lane sweep: widths 1, 2, 4, 8.
  const double batch_scaling =
      bat_rows[0].hs_per_s > 0 ? bat_rows[2].hs_per_s / bat_rows[0].hs_per_s
                               : 0.0;
  const bool batched_ok = bat_digests_match && batch_scaling >= 2.0 &&
                          bat_rows[2].mbps >= bat_rows[0].mbps &&
                          bat_rows[2].batched_jobs > 0;
  std::printf("digests %s across lanes x widths; 1-lane width 1->4 "
              "handshake scaling %.2fx (gate >= 2x), record path "
              "%.3f -> %.3f Mbit/s\n",
              bat_digests_match ? "IDENTICAL" : "DIVERGED", batch_scaling,
              bat_rows[0].mbps, bat_rows[2].mbps);

  // Scenario 4: handshake flood, undefended vs defended. The flood-free
  // baseline run prices the honest fleet's handshake energy; the two
  // flood runs differ only in the admission valve + degraded watermarks,
  // so the energy delta is the attacker's battery bill (Section 3.3).
  const double baseline_energy_mj =
      chaos::CampaignRunner(flood_campaign(pki, false, false))
          .run()
          .handshake_energy_mj;
  const FloodOutcome undefended =
      run_flood(flood_campaign(pki, false, true), baseline_energy_mj);
  const FloodOutcome defended =
      run_flood(flood_campaign(pki, true, true), baseline_energy_mj);

  std::puts("\n-- handshake flood: 40 attackers x 5 connections through "
            "the ClientKeyExchange\n   (12 honest clients riding along; "
            "energy beyond the flood-free baseline) --");
  analysis::Table flood_tab({"metric", "undefended", "defended"});
  auto flood_row = [&](const char* name, auto get, int digits) {
    flood_tab.add_row({name, analysis::fmt(get(undefended), digits),
                       analysis::fmt(get(defended), digits)});
  };
  flood_row("attack connections refused (shed)",
            [](const FloodOutcome& o) {
              return static_cast<double>(o.report.attack_refused);
            },
            0);
  flood_row("full handshakes shed while degraded",
            [](const FloodOutcome& o) {
              return static_cast<double>(o.report.server.degraded_refusals);
            },
            0);
  flood_row("RSA private ops performed",
            [](const FloodOutcome& o) {
              return static_cast<double>(
                  o.report.server.handshake_rsa_private_ops);
            },
            0);
  flood_row("degraded-mode time share",
            [](const FloodOutcome& o) { return o.degraded_time_share; }, 3);
  flood_row("attack-induced energy (mJ)",
            [](const FloodOutcome& o) { return o.attack_energy_mj; }, 1);
  flood_row("mJ per attack byte",
            [](const FloodOutcome& o) { return o.attack_mj_per_byte; }, 4);
  flood_row("honest sessions completed",
            [](const FloodOutcome& o) {
              return static_cast<double>(o.report.sessions_completed);
            },
            0);
  std::fputs(flood_tab.render().c_str(), stdout);
  const bool defense_holds =
      defended.attack_energy_mj < undefended.attack_energy_mj &&
      defended.report.attack_refused > 0 &&
      defended.report.sessions_completed ==
          defended.report.sessions_attempted;
  std::printf("defense %s: %.1f mJ -> %.1f mJ attack bill (%.1fx cheaper), "
              "honest fleet %zu/%zu\n",
              defense_holds ? "HOLDS" : "BROKEN",
              undefended.attack_energy_mj, defended.attack_energy_mj,
              defended.attack_energy_mj > 0
                  ? undefended.attack_energy_mj / defended.attack_energy_mj
                  : 0.0,
              defended.report.sessions_completed,
              defended.report.sessions_attempted);

  // Session-cache index micro-benchmark: the hashed index
  // (BoundedSessionCache, FNV-1a + unordered_map) vs the ordered tree it
  // replaced, at the 10k-entry scale a busy server holds. Uniformly
  // random 16-byte ids are the worst case for a tree (every probe is
  // O(log n) full byte-compares) and the design case for hashing.
  double cache_ns_hashed = 0;
  double cache_ns_tree = 0;
  {
    constexpr std::size_t kEntries = 10'000;
    constexpr std::size_t kLookups = 1'000'000;
    net::EventQueue cache_clock;
    server::BoundedSessionCache hashed(cache_clock,
                                       {.capacity = kEntries, .ttl_us = 0});
    std::map<crypto::Bytes, protocol::SessionCache::Entry> tree;
    crypto::HmacDrbg cache_rng(0x5E55CACE);
    std::vector<crypto::Bytes> ids;
    ids.reserve(kEntries);
    for (std::size_t i = 0; i < kEntries; ++i) {
      crypto::Bytes id = cache_rng.bytes(16);
      protocol::SessionCache::Entry e;
      e.master_secret = cache_rng.bytes(48);
      hashed.store(id, e);
      tree.emplace(id, std::move(e));
      ids.push_back(std::move(id));
    }
    std::size_t found = 0;  // 48271 is coprime to 10'000: full cycle
    const auto c0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kLookups; ++i)
      found += hashed.lookup(ids[(i * 48271u) % kEntries]) != nullptr;
    const auto c1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kLookups; ++i)
      found += tree.find(ids[(i * 48271u) % kEntries]) != tree.end();
    const auto c2 = std::chrono::steady_clock::now();
    cache_ns_hashed =
        std::chrono::duration<double, std::nano>(c1 - c0).count() / kLookups;
    cache_ns_tree =
        std::chrono::duration<double, std::nano>(c2 - c1).count() / kLookups;
    std::printf("\n-- session-cache index: %zu lookups over %zu entries --\n"
                "hashed %.0f ns/lookup vs ordered tree %.0f ns/lookup "
                "(%.1fx); %zu found\n",
                kLookups, kEntries, cache_ns_hashed, cache_ns_tree,
                cache_ns_hashed > 0 ? cache_ns_tree / cache_ns_hashed : 0.0,
                found);
  }

  // Scenario 7 (E23): cache vs stateless tickets. Two identical fleets —
  // one resuming through the bounded cache, one through encrypted session
  // tickets with the cache disabled outright (capacity 0) — must serve
  // the same load at the same rate (droop gate ±10%) with a byte-
  // identical fleet digest, while the server-side resumption state
  // diverges: O(cached users) vs O(key ring). The 10k/100k/1M rows
  // extrapolate the measured per-user cache footprint; the ticket column
  // is the measured ring and does not move with the user count, so the
  // ticket-tier sessions-per-charge figure is flat across scales by
  // construction (the charge pays only the per-session CCM open/seal).
  std::puts("\n-- E23: bounded cache vs stateless tickets "
            "(150 clients x 4 sessions) --");
  auto ticket_fleet = [&](bool tickets) {
    server::ClientConfig c = client_config(pki);
    c.sessions = 4;
    c.use_session_tickets = tickets;
    server::ServerConfig s = server_config(pki);
    s.ticket.enabled = tickets;
    server::BoundedSessionCache::Config cache_cfg{};
    if (tickets) cache_cfg.capacity = 0;
    return run(server::LoadGenerator(load_config(150), s, c, cache_cfg));
  };
  const Timed tk_cache = ticket_fleet(false);
  const Timed tk_ticket = ticket_fleet(true);
  const server::LoadReport& rc = tk_cache.report;
  const server::LoadReport& rt = tk_ticket.report;
  const double ticket_droop =
      rc.sessions_per_s > 0
          ? (rc.sessions_per_s - rt.sessions_per_s) / rc.sessions_per_s
          : 0.0;
  const double charge_drift =
      rc.gap.sessions_per_charge > 0
          ? std::abs(rt.ticket_gap.host.sessions_per_charge -
                     rc.gap.sessions_per_charge) /
                rc.gap.sessions_per_charge
          : 0.0;
  const double per_user_bytes =
      static_cast<double>(rc.cache_state_bytes) / 150.0;
  const bool ticket_digests_match = rc.fleet_digest == rt.fleet_digest;

  analysis::Table tk_tab({"metric", "cache", "ticket"});
  tk_tab.add_row({"sessions/s (sim)", analysis::fmt(rc.sessions_per_s, 1),
                  analysis::fmt(rt.sessions_per_s, 1)});
  tk_tab.add_row({"resumed handshakes",
                  std::to_string(rc.server.resumed_handshakes),
                  std::to_string(rt.server.resumed_handshakes) + " (" +
                      std::to_string(rt.server.ticket_resumptions) +
                      " via ticket)"});
  tk_tab.add_row({"resumed handshake p50 (ms sim)",
                  analysis::fmt(rc.resumed_handshake_p50_ms, 1),
                  analysis::fmt(rt.resumed_handshake_p50_ms, 1)});
  tk_tab.add_row(
      {"sessions per 26 KJ charge",
       analysis::fmt(rc.gap.sessions_per_charge, 0),
       analysis::fmt(rt.ticket_gap.host.sessions_per_charge, 0)});
  tk_tab.add_row({"resumption state (bytes, measured)",
                  std::to_string(rc.cache_state_bytes),
                  std::to_string(rt.ticket_state_bytes)});
  tk_tab.add_row({"fleet digest", hex_prefix(rc.fleet_digest),
                  hex_prefix(rt.fleet_digest)});
  std::fputs(tk_tab.render().c_str(), stdout);

  analysis::Table scale_tab({"users", "cache state (modeled)",
                             "ticket state", "state ratio"});
  for (const double users : {1e4, 1e5, 1e6}) {
    const double cache_bytes = per_user_bytes * users;
    scale_tab.add_row(
        {analysis::fmt(users, 0), analysis::fmt(cache_bytes, 0),
         std::to_string(rt.ticket_state_bytes),
         analysis::fmt(
             cache_bytes / static_cast<double>(rt.ticket_state_bytes), 0) +
             "x"});
  }
  std::fputs(scale_tab.render().c_str(), stdout);
  const bool ticket_ok = ticket_droop <= 0.10 && charge_drift <= 0.10 &&
                         ticket_digests_match &&
                         rt.server.ticket_resumptions > 0 &&
                         rt.cache_state_bytes == 0 &&
                         rt.ticket_state_bytes < 10'000;
  std::printf("ticket path %s: throughput droop %.1f%% (gate <= 10%%), "
              "charge drift %.1f%%, digests %s, state %.0f B/user -> "
              "%zu B total\n",
              ticket_ok ? "HOLDS" : "DROOPED", ticket_droop * 100,
              charge_drift * 100,
              ticket_digests_match ? "IDENTICAL" : "DIVERGED",
              per_user_bytes, rt.ticket_state_bytes);

  // Scenario 8 (E24): sharded serving tier. The modeled host core makes
  // session processing cost simulated time (800 us per RSA op, 50 us per
  // flight, 20 us per appdata KiB), so ONE event loop is core-bound under
  // this fleet; sharding the tier across N loops (= N modeled cores,
  // each driven by a real thread under the epoch-barrier merge) must
  // scale the aggregate handshake rate >= 3x from 1 to 4 shards while
  // the fleet transcript digest stays byte-identical for {1, 2, 4, 8}.
  std::puts("\n-- E24: sharded serving tier (600 clients, core-bound: "
            "800 us/pk op + 50 us/flight,\n   slice 1 ms; digest must be "
            "byte-identical across shard counts) --");
  struct ShardRow {
    std::size_t shards = 0;
    double hs_per_s = 0;
    double mbps = 0;
    double p99_ms = 0;
    double hist_p99_ms = 0;
    std::uint64_t epochs = 0;
    bool conserved = false;
  };
  analysis::Table sh_tab({"shards", "agg full hs/s (sim)", "record Mbit/s",
                          "hs p99 ms (sim)", "epochs", "wall ms",
                          "fleet digest"});
  std::vector<ShardRow> sh_rows;
  std::string sh_digest0;
  bool sh_digests_match = true;
  bool sh_conserved = true;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    server::ShardedLoadConfig sh_load;
    sh_load.base = load_config(600);
    sh_load.base.channel = {};  // loss-free: same sessions at any speed
    sh_load.base.mean_interarrival_us = 200;
    sh_load.base.poisson_arrivals = false;
    sh_load.shards = shards;
    sh_load.slice_us = 1'000;
    server::ClientConfig sh_client = client_config(pki);
    sh_client.sessions = 1;
    sh_client.payloads_per_session = 2;
    sh_client.payload_bytes = 256;
    sh_client.think_time_us = 0;
    server::ServerConfig sh_server = server_config(pki);
    sh_server.core.us_per_pk_op = 800.0;
    sh_server.core.us_per_flight = 50.0;
    sh_server.core.us_per_appdata_kb = 20.0;
    const auto t0 = std::chrono::steady_clock::now();
    server::ShardedLoadGenerator gen(sh_load, sh_server, sh_client,
                                     {.capacity = 1'024});
    const server::ShardedLoadReport r = gen.run();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    const std::string digest = hex_prefix(r.fleet.fleet_digest);
    if (sh_digest0.empty()) sh_digest0 = digest;
    sh_digests_match = sh_digests_match && digest == sh_digest0;
    sh_conserved = sh_conserved && r.conserved;
    ShardRow row;
    row.shards = shards;
    row.hs_per_s = r.fleet.full_handshakes_per_s;
    row.mbps = r.fleet.record_mbps;
    row.p99_ms = r.fleet.handshake_p99_ms;
    row.hist_p99_ms = r.handshake_hist_p99_ms;
    row.epochs = r.epochs;
    row.conserved = r.conserved;
    sh_rows.push_back(row);
    sh_tab.add_row({std::to_string(shards), analysis::fmt(row.hs_per_s, 1),
                    analysis::fmt(row.mbps, 3), analysis::fmt(row.p99_ms, 1),
                    std::to_string(row.epochs), analysis::fmt(wall_ms, 0),
                    digest});
  }
  std::fputs(sh_tab.render().c_str(), stdout);
  // Rows are shards {1, 2, 4, 8}: the 1->4 aggregate-rate gate.
  const double shard_scaling =
      sh_rows[0].hs_per_s > 0 ? sh_rows[2].hs_per_s / sh_rows[0].hs_per_s
                              : 0.0;
  std::printf("digests %s across shard counts; 1->4 shard aggregate "
              "handshake scaling %.2fx (gate >= 3x); merged-histogram "
              "p99 %.1f ms vs sample p99 %.1f ms\n",
              sh_digests_match ? "IDENTICAL" : "DIVERGED", shard_scaling,
              sh_rows[2].hist_p99_ms, sh_rows[2].p99_ms);

  // E24 soak: 10'000 concurrent sessions on 8 shards. Lingering clients
  // (handshake, then silence) pile up until the server's idle reaper
  // closes them, so the barrier-observed fleet peak must reach the full
  // 10k while per-shard sums still conserve against the fleet totals.
  std::puts("\n-- E24 soak: 10k concurrent lingering sessions on 8 shards "
            "--");
  server::ShardedLoadConfig soak_load;
  soak_load.base = load_config(10'000);
  soak_load.base.channel = {};
  soak_load.base.mean_interarrival_us = 100;
  soak_load.base.poisson_arrivals = false;
  soak_load.shards = 8;
  soak_load.slice_us = 1'000;
  server::ClientConfig soak_client = client_config(pki);
  soak_client.linger = true;
  server::ShardedLoadGenerator soak_gen(soak_load, server_config(pki),
                                        soak_client, {.capacity = 16'384});
  const auto soak_t0 = std::chrono::steady_clock::now();
  const server::ShardedLoadReport soak = soak_gen.run();
  const double soak_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - soak_t0)
          .count();
  std::printf("peak open connections %zu (gate >= 10000), handshakes "
              "completed %llu, idle closes %llu,\nper-shard sums %s fleet "
              "totals, %llu epochs, wall %.0f ms\n",
              soak.peak_open_connections,
              static_cast<unsigned long long>(
                  soak.fleet.server.handshakes_completed),
              static_cast<unsigned long long>(soak.fleet.server.idle_closes),
              soak.conserved ? "MATCH" : "DIVERGE",
              static_cast<unsigned long long>(soak.epochs), soak_wall_ms);
  const bool sharded_ok = sh_digests_match && sh_conserved &&
                          shard_scaling >= 3.0 &&
                          soak.peak_open_connections >= 10'000 &&
                          soak.conserved &&
                          soak.fleet.server.handshakes_completed >= 10'000;

  // Scenario 9 (E25): supervised shard failure at fleet scale. The crash
  // lands after every client's first session has completed (arrivals span
  // ~300 ms of sim time), so each victim holds a session ticket — the
  // zero-state failover path: reconnect to the rendezvous survivor,
  // resume by ticket, zero server cache bytes and zero pk ops.
  std::puts("\n-- E25: supervised failover (150 clients x 4 sessions on 4 "
            "shards, tickets on;\n   shard 1 hard-crashed mid-flood, warm "
            "rejoin after 500 ms) --");
  constexpr double kBlackoutBudgetMs = 250.0;
  auto failover_campaign = [&](bool crash) {
    chaos::CampaignConfig cfg;
    cfg.seed = 0xE25;
    cfg.shards = 4;
    cfg.honest_clients = 150;
    cfg.mean_interarrival_us = 2'000;
    cfg.server = server_config(pki);
    cfg.server.ticket.enabled = true;
    cfg.client = client_config(pki);
    cfg.client.sessions = 4;
    cfg.client.use_session_tickets = true;
    cfg.client.retry_budget = 6;
    cfg.cache.capacity = 0;  // stateless: nothing for the crash to lose
    if (crash)
      cfg.faults.push_back(chaos::ShardCrash{
          .at_us = 400'000, .shard = 1, .repair_us = 500'000});
    return cfg;
  };
  const auto fo_t0 = std::chrono::steady_clock::now();
  const chaos::CampaignReport fo_calm =
      chaos::CampaignRunner(failover_campaign(false)).run();
  const chaos::CampaignReport fo =
      chaos::CampaignRunner(failover_campaign(true)).run();
  const chaos::CampaignReport fo_rerun =
      chaos::CampaignRunner(failover_campaign(true)).run();
  const double fo_wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - fo_t0)
                                .count();
  const bool fo_digest_rerun = fo.fleet_digest == fo_rerun.fleet_digest;
  const bool fo_digest_calm = fo.fleet_digest == fo_calm.fleet_digest;

  // Price the outage against the calm run's served rates on the
  // appliance-class core.
  platform::ServedLoad fo_load;
  if (fo_calm.sim_duration_s > 0) {
    const double dur = fo_calm.sim_duration_s;
    const auto& ss = fo_calm.server;
    fo_load.full_handshakes_per_s =
        static_cast<double>(ss.full_handshakes) / dur;
    fo_load.resumed_handshakes_per_s =
        static_cast<double>(ss.resumed_handshakes) / dur;
    fo_load.bulk_mbps = static_cast<double>(ss.bytes_opened +
                                            ss.bytes_sealed) *
                        8.0 / dur / 1e6;
    fo_load.sessions_per_s =
        static_cast<double>(fo_calm.sessions_completed) / dur;
    fo_load.avg_session_kb =
        fo_calm.sessions_completed > 0
            ? static_cast<double>(ss.bytes_opened + ss.bytes_sealed) /
                  1024.0 / static_cast<double>(fo_calm.sessions_completed)
            : 0;
  }
  const platform::FailoverGapReport fo_gap = platform::serving_gap_failover(
      platform::WorkloadModel::paper_calibrated(),
      platform::Processor::strongarm_sa1100(), fo_load, /*shards=*/4,
      /*slice_us=*/1'000.0,
      static_cast<double>(fo.client_reconnects),
      std::max(fo.blackout_p99_ms, 1.0) / 1000.0);

  analysis::Table fo_tab({"metric", "value"});
  fo_tab.add_row({"honest sessions lost (gate == 0)",
                  std::to_string(fo.sessions_failed)});
  fo_tab.add_row(
      {"sessions completed / attempted",
       std::to_string(fo.sessions_completed) + " / " +
           std::to_string(fo.sessions_attempted)});
  fo_tab.add_row({"connections killed by the crash",
                  std::to_string(fo.connections_killed)});
  fo_tab.add_row({"clients migrated / reconnects / ticket resumes",
                  std::to_string(fo.clients_migrated) + " / " +
                      std::to_string(fo.client_reconnects) + " / " +
                      std::to_string(fo.failover_resumes)});
  fo_tab.add_row({"client blackout p50 / p99 ms (budget " +
                      analysis::fmt(kBlackoutBudgetMs, 0) + ")",
                  analysis::fmt(fo.blackout_p50_ms, 1) + " / " +
                      analysis::fmt(fo.blackout_p99_ms, 1)});
  fo_tab.add_row({"digest vs rerun / vs undisturbed",
                  std::string(fo_digest_rerun ? "IDENTICAL" : "DIVERGED") +
                      " / " +
                      (fo_digest_calm ? "IDENTICAL" : "DIVERGED")});
  fo_tab.add_row({"degraded survivor demand (MIPS)",
                  analysis::fmt(fo_gap.degraded_required_mips, 1) +
                      " (steady per-shard " +
                      analysis::fmt(fo_gap.steady.per_shard_required_mips,
                                    1) +
                      ")"});
  fo_tab.add_row({"crash energy, tickets vs full RSA (mJ)",
                  analysis::fmt(fo_gap.crash_energy_mj, 2) + " vs " +
                      analysis::fmt(fo_gap.crash_energy_full_mj, 2)});
  fo_tab.add_row({"ticket failover saving",
                  analysis::fmt(fo_gap.ticket_saving_ratio, 1) + "x"});
  fo_tab.add_row({"wall clock, 3 campaigns (ms)",
                  analysis::fmt(fo_wall_ms, 0)});
  std::fputs(fo_tab.render().c_str(), stdout);

  const bool failover_ok =
      fo.invariants_ok() && fo_calm.invariants_ok() &&
      fo.sessions_failed == 0 &&
      fo.sessions_completed == fo.sessions_attempted &&
      fo.shard_crashes == 1 && fo.shard_rejoins == 1 &&
      fo.client_reconnects > 0 &&
      fo.failover_resumes == fo.client_reconnects &&
      fo.blackout_p99_ms <= kBlackoutBudgetMs && fo_digest_rerun &&
      fo_digest_calm && fo_gap.ticket_saving_ratio > 1.0;
  std::printf("failover SLO %s: %zu reconnects all resumed by ticket, "
              "0 sessions lost, digests %s\n",
              failover_ok ? "HOLDS" : "BROKEN", fo.client_reconnects,
              fo_digest_rerun && fo_digest_calm ? "pinned" : "DIVERGED");
  if (!fo.invariants_ok())
    std::printf("campaign invariants: %s\n", fo.invariant_failures.c_str());

  // Scenario 10 (E26): the real-socket bearer at wall-clock speed. The
  // sim reference run (loss-free channels) fixes what the session
  // outcomes MUST be; a 2-shard loopback fleet plus two child processes
  // then reproduce them over real TCP. Rates here are wall-clock and
  // host-dependent — informational by naming convention (_wall suffix) —
  // while the outcome equality, conservation and zero-allocation gates
  // are structural.
  std::puts("\n-- E26: real-socket bearer (2 shards on loopback TCP, "
            "2 processes x 30 clients\n   x 2 sessions, outcomes vs the "
            "sim run for the same seed) --");
  constexpr std::size_t kSocketClients = 60;
  constexpr std::uint64_t kSocketSeed = 0xE26;
  SocketWallclock sw;
  if (!net::sockets_available()) {
    std::puts("SKIP: loopback TCP unavailable in this sandbox — outcome "
              "gates pass vacuously");
  } else {
    server::ClientConfig socket_client = client_config(pki);
    socket_client.sessions = 2;
    server::BoundedSessionCache::Config socket_cache;
    socket_cache.capacity = 128;  // >= clients: loss-free resumption mix
    socket_cache.ttl_us = 0;
    server::LoadConfig ref_load;
    ref_load.num_clients = kSocketClients;
    ref_load.seed = kSocketSeed;
    ref_load.appliance = platform::Processor::strongarm_sa1100();
    const Timed sock_ref = run(server::LoadGenerator(
        ref_load, server_config(pki), socket_client, socket_cache));
    const server::LoadReport& ref = sock_ref.report;

    server::SocketFleetConfig fleet_cfg;
    fleet_cfg.shards = 2;
    fleet_cfg.seed = kSocketSeed;
    fleet_cfg.reserve_slabs_per_shard = 256;
    server::SocketServerFleet fleet(fleet_cfg, server_config(pki),
                                    socket_cache);
    if (!fleet.ok()) {
      std::puts("SKIP: could not bind loopback listeners");
    } else {
      fleet.start();
      std::string csv;
      for (std::uint16_t port : fleet.ports()) {
        if (!csv.empty()) csv += ',';
        csv += std::to_string(port);
      }
      const std::string base =
          self_dir() + "/bench_socket_load_gen --ports=" + csv +
          " --seed=" + std::to_string(kSocketSeed) +
          " --sessions=2 --clients=" + std::to_string(kSocketClients / 2);
      FILE* pa = popen((base + " --first=0").c_str(), "r");
      FILE* pb =
          popen((base + " --first=" + std::to_string(kSocketClients / 2))
                    .c_str(),
                "r");
      const ChildOutcome ca = read_child(pa);
      const ChildOutcome cb = read_child(pb);
      const server::SocketServerFleet::Report servers = fleet.stop();

      const std::size_t attempted =
          ca.num("sessions_attempted") + cb.num("sessions_attempted");
      const std::size_t completed =
          ca.num("sessions_completed") + cb.num("sessions_completed");
      const std::size_t failed =
          ca.num("sessions_failed") + cb.num("sessions_failed");
      sw.echo_mismatches =
          ca.num("echo_mismatches") + cb.num("echo_mismatches");
      sw.bearer_errors = ca.num("bearer_errors") + cb.num("bearer_errors");
      sw.children_ok = ca.ok && cb.ok;
      sw.accepted = servers.accepted;
      sw.conserved = servers.conserved;
      sw.zero_alloc =
          servers.zero_steady_state_alloc &&
          ca.num("arena_allocations") == ca.num("arena_reserved") &&
          cb.num("arena_allocations") == cb.num("arena_reserved");
      sw.outcome_equal =
          attempted == ref.sessions_attempted &&
          completed == ref.sessions_completed &&
          failed == ref.sessions_failed &&
          servers.server.full_handshakes == ref.server.full_handshakes &&
          servers.server.resumed_handshakes ==
              ref.server.resumed_handshakes &&
          servers.server.bytes_opened == ref.server.bytes_opened &&
          servers.server.bytes_sealed == ref.server.bytes_sealed;

      // Refold the global fleet digest from the children's per-client
      // digest blocks (process order = global client-id order).
      std::vector<crypto::Bytes> lane_bytes = decode_digests(
          ca.kv.count("digests") ? ca.kv.at("digests") : std::string());
      std::vector<crypto::Bytes> lanes_b = decode_digests(
          cb.kv.count("digests") ? cb.kv.at("digests") : std::string());
      lane_bytes.insert(lane_bytes.end(), lanes_b.begin(), lanes_b.end());
      std::vector<crypto::ConstBytes> lanes;
      lanes.reserve(lane_bytes.size());
      for (const crypto::Bytes& d : lane_bytes) lanes.emplace_back(d);
      sw.digest_match = lane_bytes.size() == kSocketClients &&
                        server::fold_fleet_digest(lanes) == ref.fleet_digest;

      sw.wall_s = std::max(ca.real("wall_s"), cb.real("wall_s"));
      if (sw.wall_s > 0) {
        sw.full_per_s_wall =
            static_cast<double>(servers.server.full_handshakes) / sw.wall_s;
        sw.resumed_per_s_wall =
            static_cast<double>(servers.server.resumed_handshakes) /
            sw.wall_s;
        sw.record_mbps_wall =
            static_cast<double>(servers.server.bytes_opened +
                                servers.server.bytes_sealed) *
            8.0 / sw.wall_s / 1e6;
      }
      if (ref.full_handshakes_per_s > 0)
        sw.wall_over_modeled_full =
            sw.full_per_s_wall / ref.full_handshakes_per_s;
      if (ref.record_mbps > 0)
        sw.wall_over_modeled_record = sw.record_mbps_wall / ref.record_mbps;
      sw.skipped = false;

      analysis::Table st(
          {"metric", "sim-modeled (SA-1100)", "wall-clock", "wall/modeled"});
      st.add_row({"full handshakes /s",
                  analysis::fmt(ref.full_handshakes_per_s, 1),
                  analysis::fmt(sw.full_per_s_wall, 1),
                  analysis::fmt(sw.wall_over_modeled_full, 1) + "x"});
      st.add_row(
          {"resumed handshakes /s",
           analysis::fmt(ref.resumed_handshakes_per_s, 1),
           analysis::fmt(sw.resumed_per_s_wall, 1),
           ref.resumed_handshakes_per_s > 0
               ? analysis::fmt(sw.resumed_per_s_wall /
                                   ref.resumed_handshakes_per_s,
                               1) +
                     "x"
               : std::string("-")});
      st.add_row({"record Mbit/s", analysis::fmt(ref.record_mbps, 2),
                  analysis::fmt(sw.record_mbps_wall, 2),
                  analysis::fmt(sw.wall_over_modeled_record, 1) + "x"});
      st.add_row({"sessions completed",
                  std::to_string(ref.sessions_completed),
                  std::to_string(completed),
                  sw.outcome_equal ? "EQUAL" : "DIVERGED"});
      st.add_row({"fleet digest", hex_prefix(ref.fleet_digest),
                  sw.digest_match ? hex_prefix(ref.fleet_digest)
                                  : std::string("DIVERGED"),
                  sw.digest_match ? "IDENTICAL" : "DIVERGED"});
      std::fputs(st.render().c_str(), stdout);
      std::printf(
          "socket bearer %s: outcomes %s, digest %s, conserved %s, "
          "zero-alloc %s, %" PRIu64 " bearer errors, wall %.2f s\n",
          sw.ok() ? "MATCHES SIM" : "BROKEN",
          sw.outcome_equal ? "equal" : "DIVERGED",
          sw.digest_match ? "identical" : "DIVERGED",
          sw.conserved ? "yes" : "NO", sw.zero_alloc ? "yes" : "NO",
          sw.bearer_errors, sw.wall_s);
    }
  }
  const bool socket_ok = sw.ok();

  // Machine-readable baseline.
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"experiment\": \"E18-E26\",\n"
               "  \"mapsec_build_type\": \"%s\",\n"
               "  \"crypto_dispatch\": \"%s\",\n"
               "  \"scenarios\": {\n",
               mapsec::bench::build_type(),
               full.report.crypto_backend.c_str());
  write_scenario_json(f, "full_only", full, full_accel, true);
  write_scenario_json(f, "resumption_heavy", resumed, resumed_accel, false);
  // The flood block carries no *_per_s/_mbps fields on purpose: these are
  // robustness metrics, not throughput, so ci/bench_compare.py skips them
  // and adding fields here can never break a baseline comparison.
  auto write_flood = [f](const char* key, const FloodOutcome& o,
                         bool trailing_comma) {
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"attack_connections\": %llu,\n"
        "      \"attack_bytes\": %llu,\n"
        "      \"attack_refused\": %llu,\n"
        "      \"degraded_refusals\": %llu,\n"
        "      \"rsa_private_ops\": %llu,\n"
        "      \"degraded_time_share\": %.4f,\n"
        "      \"attack_energy_mj\": %.2f,\n"
        "      \"attack_mj_per_byte\": %.5f,\n"
        "      \"honest_sessions_completed\": %zu,\n"
        "      \"honest_sessions_attempted\": %zu\n"
        "    }%s\n",
        key,
        static_cast<unsigned long long>(o.report.attack_connections),
        static_cast<unsigned long long>(o.report.attack_bytes),
        static_cast<unsigned long long>(o.report.attack_refused),
        static_cast<unsigned long long>(o.report.server.degraded_refusals),
        static_cast<unsigned long long>(
            o.report.server.handshake_rsa_private_ops),
        o.degraded_time_share, o.attack_energy_mj, o.attack_mj_per_byte,
        o.report.sessions_completed, o.report.sessions_attempted,
        trailing_comma ? "," : "");
  };
  std::fprintf(f,
               "  },\n"
               "  \"flood\": {\n"
               "    \"baseline_handshake_energy_mj\": %.2f,\n",
               baseline_energy_mj);
  write_flood("undefended", undefended, true);
  write_flood("defended", defended, false);
  std::fprintf(f,
               "  },\n"
               "  \"offload_sweep\": {\n");
  const char* off_keys[] = {"inline_pk", "lanes_1", "lanes_2", "lanes_4"};
  for (std::size_t i = 0; i < off_rows.size(); ++i) {
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"full_handshakes_per_s\": %.3f,\n"
                 "      \"record_mbps\": %.3f,\n"
                 "      \"lane_utilisation\": %.3f\n"
                 "    }%s\n",
                 off_keys[i], off_rows[i].hs_per_s, off_rows[i].mbps,
                 off_rows[i].lane_util,
                 i + 1 < off_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n"
               "  \"batched_offload_sweep\": {\n");
  for (std::size_t i = 0; i < bat_rows.size(); ++i) {
    std::fprintf(f,
                 "    \"lanes_%zu_width_%zu\": {\n"
                 "      \"full_handshakes_per_s\": %.3f,\n"
                 "      \"record_mbps\": %.3f,\n"
                 "      \"batched_utilisation\": %.3f\n"
                 "    }%s\n",
                 bat_rows[i].lanes, bat_rows[i].width, bat_rows[i].hs_per_s,
                 bat_rows[i].mbps, bat_rows[i].util,
                 i + 1 < bat_rows.size() ? "," : "");
  }
  // The ticket_scale block follows the report convention: the two
  // comparable rates carry _per_s suffixes; droop, state-bytes and
  // extrapolation fields carry none, so bench_compare.py skips them.
  std::fprintf(
      f,
      "  },\n"
      "  \"ticket_scale\": {\n"
      "    \"cache_sessions_per_s\": %.3f,\n"
      "    \"ticket_sessions_per_s\": %.3f,\n"
      "    \"cache_record_mbps\": %.3f,\n"
      "    \"ticket_record_mbps\": %.3f,\n"
      "    \"throughput_droop\": %.4f,\n"
      "    \"cache_sessions_per_charge\": %.1f,\n"
      "    \"ticket_sessions_per_charge\": %.1f,\n"
      "    \"cache_state_bytes_per_user\": %.1f,\n"
      "    \"ticket_state_bytes\": %zu,\n"
      "    \"cache_state_bytes_10k_users\": %.0f,\n"
      "    \"cache_state_bytes_100k_users\": %.0f,\n"
      "    \"cache_state_bytes_1m_users\": %.0f,\n"
      "    \"ticket_resumptions\": %llu,\n"
      "    \"digests_match\": %s\n"
      "  },\n",
      rc.sessions_per_s, rt.sessions_per_s, rc.record_mbps, rt.record_mbps,
      ticket_droop, rc.gap.sessions_per_charge,
      rt.ticket_gap.host.sessions_per_charge, per_user_bytes,
      rt.ticket_state_bytes, per_user_bytes * 1e4, per_user_bytes * 1e5,
      per_user_bytes * 1e6,
      static_cast<unsigned long long>(rt.server.ticket_resumptions),
      ticket_digests_match ? "true" : "false");
  // Shard sweep: the per-count aggregate rates carry comparable
  // suffixes; scaling, digest and soak fields carry none.
  std::fprintf(f, "  \"shard_sweep\": {\n");
  for (std::size_t i = 0; i < sh_rows.size(); ++i) {
    std::fprintf(f,
                 "    \"shards_%zu\": {\n"
                 "      \"full_handshakes_per_s\": %.3f,\n"
                 "      \"record_mbps\": %.3f,\n"
                 "      \"handshake_p99_ms\": %.3f,\n"
                 "      \"merge_epochs\": %llu\n"
                 "    },\n",
                 sh_rows[i].shards, sh_rows[i].hs_per_s, sh_rows[i].mbps,
                 sh_rows[i].p99_ms,
                 static_cast<unsigned long long>(sh_rows[i].epochs));
  }
  std::fprintf(f,
               "    \"scaling_1_to_4\": %.2f,\n"
               "    \"digests_match\": %s,\n"
               "    \"soak_peak_open_connections\": %zu,\n"
               "    \"soak_conserved\": %s\n"
               "  },\n",
               shard_scaling, sh_digests_match ? "true" : "false",
               soak.peak_open_connections, soak.conserved ? "true" : "false");
  // Failover SLOs are structural gates (absolute, not baseline-compared):
  // no field carries a _per_s/_mbps suffix, so bench_compare.py's rate
  // comparison skips the block and check_failover_slo enforces it.
  std::fprintf(
      f,
      "  \"failover_slo\": {\n"
      "    \"shards\": 4,\n"
      "    \"fleet_clients\": 150,\n"
      "    \"sessions_each\": 4,\n"
      "    \"sessions_lost\": %zu,\n"
      "    \"sessions_completed\": %zu,\n"
      "    \"sessions_attempted\": %zu,\n"
      "    \"connections_killed\": %llu,\n"
      "    \"clients_migrated\": %llu,\n"
      "    \"client_reconnects\": %zu,\n"
      "    \"failover_resumes\": %zu,\n"
      "    \"blackout_p50_ms\": %.3f,\n"
      "    \"blackout_p99_ms\": %.3f,\n"
      "    \"blackout_budget_ms\": %.1f,\n"
      "    \"digest_match_rerun\": %s,\n"
      "    \"digest_match_undisturbed\": %s,\n"
      "    \"missed_heartbeats\": %llu,\n"
      "    \"degraded_required_mips\": %.2f,\n"
      "    \"crash_energy_mj\": %.3f,\n"
      "    \"crash_energy_full_mj\": %.3f,\n"
      "    \"ticket_saving_ratio\": %.2f\n"
      "  },\n",
      fo.sessions_failed, fo.sessions_completed, fo.sessions_attempted,
      static_cast<unsigned long long>(fo.connections_killed),
      static_cast<unsigned long long>(fo.clients_migrated),
      fo.client_reconnects, fo.failover_resumes, fo.blackout_p50_ms,
      fo.blackout_p99_ms, kBlackoutBudgetMs,
      fo_digest_rerun ? "true" : "false",
      fo_digest_calm ? "true" : "false",
      static_cast<unsigned long long>(fo.missed_heartbeats),
      fo_gap.degraded_required_mips, fo_gap.crash_energy_mj,
      fo_gap.crash_energy_full_mj, fo_gap.ticket_saving_ratio);
  // Socket wall-clock block: the rates carry _wall-suffixed names (NOT
  // _per_s/_mbps), so bench_compare.py never baseline-compares them —
  // they are host-dependent by nature. check_socket_wallclock instead
  // structurally asserts the outcome-equality/conservation gates.
  if (sw.skipped) {
    std::fprintf(f,
                 "  \"socket_wallclock\": {\n"
                 "    \"skipped\": true\n"
                 "  },\n");
  } else {
    std::fprintf(
        f,
        "  \"socket_wallclock\": {\n"
        "    \"skipped\": false,\n"
        "    \"shards\": 2,\n"
        "    \"fleet_clients\": %zu,\n"
        "    \"sessions_each\": 2,\n"
        "    \"processes\": 2,\n"
        "    \"outcome_equal\": %s,\n"
        "    \"digest_match\": %s,\n"
        "    \"conserved\": %s,\n"
        "    \"zero_steady_state_alloc\": %s,\n"
        "    \"echo_mismatches\": %llu,\n"
        "    \"bearer_errors\": %llu,\n"
        "    \"accepted\": %llu,\n"
        "    \"wall_s\": %.4f,\n"
        "    \"full_handshakes_wall\": %.3f,\n"
        "    \"resumed_handshakes_wall\": %.3f,\n"
        "    \"record_mbit_wall\": %.3f,\n"
        "    \"wall_over_modeled_full\": %.3f,\n"
        "    \"wall_over_modeled_record\": %.3f\n"
        "  },\n",
        kSocketClients, sw.outcome_equal ? "true" : "false",
        sw.digest_match ? "true" : "false", sw.conserved ? "true" : "false",
        sw.zero_alloc ? "true" : "false",
        static_cast<unsigned long long>(sw.echo_mismatches),
        static_cast<unsigned long long>(sw.bearer_errors),
        static_cast<unsigned long long>(sw.accepted), sw.wall_s,
        sw.full_per_s_wall, sw.resumed_per_s_wall, sw.record_mbps_wall,
        sw.wall_over_modeled_full, sw.wall_over_modeled_record);
  }
  // The ns/lookup figures are wall-clock (machine-dependent) and carry
  // no _per_s/_mbps suffix, so bench_compare.py ignores them by
  // construction.
  std::fprintf(f,
               "  \"offload_digests_match\": %s,\n"
               "  \"offload_scaling_1_to_4\": %.2f,\n"
               "  \"batched_digests_match\": %s,\n"
               "  \"batched_scaling_width_1_to_4\": %.2f,\n"
               "  \"session_cache_hashed_ns_per_lookup\": %.1f,\n"
               "  \"session_cache_tree_ns_per_lookup\": %.1f,\n"
               "  \"bulk_record_mbps\": %.3f,\n"
               "  \"worker_sweep_digests_match\": %s,\n"
               "  \"flood_defense_holds\": %s,\n"
               "  \"sharded_ok\": %s,\n"
               "  \"failover_ok\": %s,\n"
               "  \"socket_ok\": %s\n"
               "}\n",
               off_digests_match ? "true" : "false", off_scaling,
               bat_digests_match ? "true" : "false", batch_scaling,
               cache_ns_hashed, cache_ns_tree, bulk_mbps,
               digests_match ? "true" : "false",
               defense_holds ? "true" : "false",
               sharded_ok ? "true" : "false",
               failover_ok ? "true" : "false", socket_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return digests_match && defense_holds && offload_ok && batched_ok &&
                 ticket_ok && sharded_ok && failover_ok && socket_ok
             ? 0
             : 1;
}
