// Experiment E7 — host-measured throughput of every crypto primitive the
// Section 3.2 workload model prices, plus the RSA private-op strategy
// ablation (plain vs CRT vs blinded — the CRT speedup is also the fault-
// attack surface of E11).
//
// E19 rides on the same binary: the *Scalar twins pin crypto::dispatch to
// the portable kernels, so accelerated-vs-scalar speedups of the
// ISA-dispatched primitives (AES/CCM, SHA, CRC-32, Montgomery modexp)
// fall out of one JSON report.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"
#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/crc32.hpp"
#include "mapsec/crypto/crypto.hpp"
#include "mapsec/crypto/dispatch.hpp"
#include "mapsec/crypto/mont_cache.hpp"

namespace {

using namespace mapsec::crypto;

/// Pins the benchmark body to the scalar backend; destructor restores
/// auto-dispatch for subsequent benchmarks.
struct ForceScalar {
  ForceScalar() { dispatch::force_scalar(true); }
  ~ForceScalar() { dispatch::force_scalar(false); }
};

Bytes test_data(std::size_t n) {
  HmacDrbg rng(42);
  return rng.bytes(n);
}

template <typename C>
void bulk_cipher_bench(benchmark::State& state, std::size_t key_len) {
  HmacDrbg rng(1);
  const C cipher(rng.bytes(key_len));
  Bytes buf = test_data(4096);
  Bytes out(buf.size());
  for (auto _ : state) {
    for (std::size_t off = 0; off < buf.size(); off += C::kBlockSize)
      cipher.encrypt_block(buf.data() + off, out.data() + off);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void BM_Des(benchmark::State& state) { bulk_cipher_bench<Des>(state, 8); }
void BM_Des3(benchmark::State& state) { bulk_cipher_bench<Des3>(state, 24); }
void BM_Aes128(benchmark::State& state) { bulk_cipher_bench<Aes>(state, 16); }
void BM_Rc2(benchmark::State& state) { bulk_cipher_bench<Rc2>(state, 16); }

void BM_Aes128Scalar(benchmark::State& state) {
  ForceScalar scalar;
  bulk_cipher_bench<Aes>(state, 16);
}

// The CCMP/ESP bulk path: CTR keystream + CBC-MAC over a 4 KiB payload.
void ccm_seal_bench(benchmark::State& state) {
  HmacDrbg rng(12);
  const BlockCipherAdapter<Aes> cipher{Aes(rng.bytes(16))};
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  const Bytes aad = rng.bytes(32);
  const Bytes payload = test_data(4096);
  for (auto _ : state) {
    Bytes sealed = ccm_seal(cipher, nonce, aad, payload);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void BM_AesCcmSeal(benchmark::State& state) { ccm_seal_bench(state); }
void BM_AesCcmSealScalar(benchmark::State& state) {
  ForceScalar scalar;
  ccm_seal_bench(state);
}

void ccm_open_bench(benchmark::State& state) {
  HmacDrbg rng(13);
  const BlockCipherAdapter<Aes> cipher{Aes(rng.bytes(16))};
  const Bytes nonce = rng.bytes(kCcmNonceLen);
  const Bytes aad = rng.bytes(32);
  const Bytes sealed = ccm_seal(cipher, nonce, aad, test_data(4096));
  for (auto _ : state) {
    auto opened = ccm_open(cipher, nonce, aad, sealed);
    benchmark::DoNotOptimize(opened->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sealed.size() - 8));
}

void BM_AesCcmOpen(benchmark::State& state) { ccm_open_bench(state); }
void BM_AesCcmOpenScalar(benchmark::State& state) {
  ForceScalar scalar;
  ccm_open_bench(state);
}

void BM_Rc4(benchmark::State& state) {
  HmacDrbg rng(2);
  Rc4 rc4(rng.bytes(16));
  Bytes buf = test_data(4096);
  for (auto _ : state) {
    Bytes out = rc4.process(buf);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

template <typename H>
void hash_bench(benchmark::State& state) {
  Bytes buf = test_data(4096);
  for (auto _ : state) {
    Bytes digest = H::hash(buf);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void BM_Sha1(benchmark::State& state) { hash_bench<Sha1>(state); }
void BM_Md5(benchmark::State& state) { hash_bench<Md5>(state); }
void BM_Sha256(benchmark::State& state) { hash_bench<Sha256>(state); }

void BM_Sha1Scalar(benchmark::State& state) {
  ForceScalar scalar;
  hash_bench<Sha1>(state);
}
void BM_Sha256Scalar(benchmark::State& state) {
  ForceScalar scalar;
  hash_bench<Sha256>(state);
}

void crc32_bench(benchmark::State& state) {
  Bytes buf = test_data(4096);
  for (auto _ : state) {
    std::uint32_t c = crc32(buf);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void BM_Crc32(benchmark::State& state) { crc32_bench(state); }
void BM_Crc32Scalar(benchmark::State& state) {
  ForceScalar scalar;
  crc32_bench(state);
}

void BM_HmacSha1(benchmark::State& state) {
  HmacDrbg rng(3);
  const Bytes key = rng.bytes(20);
  Bytes buf = test_data(4096);
  for (auto _ : state) {
    Bytes tag = HmacSha1::mac(key, buf);
    benchmark::DoNotOptimize(tag.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

const RsaKeyPair& key512() {
  static const RsaKeyPair kp = [] {
    HmacDrbg rng(0xBE5C);
    return rsa_generate(rng, 512);
  }();
  return kp;
}

const RsaKeyPair& key1024() {
  static const RsaKeyPair kp = [] {
    HmacDrbg rng(0xBE5D);
    return rsa_generate(rng, 1024);
  }();
  return kp;
}

void BM_Rsa1024PrivatePlain(benchmark::State& state) {
  HmacDrbg rng(4);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  for (auto _ : state) {
    BigInt m = rsa_private_op(key1024().priv, c);
    benchmark::DoNotOptimize(&m);
  }
}

void BM_Rsa1024PrivateCrt(benchmark::State& state) {
  HmacDrbg rng(5);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  for (auto _ : state) {
    BigInt m = rsa_private_op_crt(key1024().priv, c);
    benchmark::DoNotOptimize(&m);
  }
}

void BM_Rsa1024PrivateCrtScalar(benchmark::State& state) {
  ForceScalar scalar;
  HmacDrbg rng(5);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  for (auto _ : state) {
    BigInt m = rsa_private_op_crt(key1024().priv, c);
    benchmark::DoNotOptimize(&m);
  }
}

// E21's per-key Montgomery-context caching: the same CRT op with both
// prime contexts (R^2 mod p/q, p'/q') cached across iterations, the way a
// server reuses them across every handshake under one key. The delta
// against BM_Rsa1024PrivateCrt is pure context-construction cost.
void BM_Rsa1024PrivateCrtCached(benchmark::State& state) {
  HmacDrbg rng(5);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  MontCache cache;
  for (auto _ : state) {
    BigInt m = rsa_private_op_crt(key1024().priv, c, nullptr, &cache);
    benchmark::DoNotOptimize(&m);
  }
}

// E22's batched data plane: `width` independent CRT private ops drained
// through one rsa_private_op_crt_batch call — all 2*width CIOS streams
// interleave in a single crypto::BatchModExp. Throughput is reported
// per op (items/s), so the win over BM_Rsa1024PrivateCrtCached is the
// multi-exponentiation ILP gain at equal work.
void rsa_crt_batched_bench(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  HmacDrbg rng(5);
  std::vector<BigInt> cts;
  for (std::size_t i = 0; i < width; ++i)
    cts.push_back(BigInt::random_below(rng, key1024().pub.n));
  std::vector<RsaPrivateBatchOp> ops(width);
  for (std::size_t i = 0; i < width; ++i)
    ops[i] = {&key1024().priv, cts[i], nullptr};
  MontCache cache;
  for (auto _ : state) {
    std::vector<BigInt> ms = rsa_private_op_crt_batch(ops, &cache);
    benchmark::DoNotOptimize(ms.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}

void BM_Rsa1024PrivateCrtBatched(benchmark::State& state) {
  rsa_crt_batched_bench(state);
}
void BM_Rsa1024PrivateCrtBatchedScalar(benchmark::State& state) {
  ForceScalar scalar;
  rsa_crt_batched_bench(state);
}

// Multi-buffer SHA-256: eight 4 KiB lanes hashed through one
// sha256_many sweep (the AVX2 kernel runs all eight message schedules in
// one pass). Bytes/s compares directly against BM_Sha256.
void sha256_mb_bench(benchmark::State& state) {
  std::vector<Bytes> msgs;
  for (int i = 0; i < 8; ++i) msgs.push_back(test_data(4096 + i));
  const std::vector<ConstBytes> views(msgs.begin(), msgs.end());
  std::size_t total = 0;
  for (const Bytes& m : msgs) total += m.size();
  for (auto _ : state) {
    std::vector<Bytes> digests = sha256_many(views);
    benchmark::DoNotOptimize(digests.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}

void BM_Sha256Multibuf8(benchmark::State& state) { sha256_mb_bench(state); }
void BM_Sha256Multibuf8Scalar(benchmark::State& state) {
  ForceScalar scalar;
  sha256_mb_bench(state);
}

// Multi-buffer CCM: eight 4 KiB records from different "connections"
// (distinct keys and nonces) sealed through one ccm_seal_batch — the
// CBC-MAC chains and CTR streams interleave across records. Bytes/s
// compares against BM_AesCcmSeal.
void ccm_seal_batch_bench(benchmark::State& state) {
  HmacDrbg rng(14);
  std::vector<BlockCipherAdapter<Aes>> ciphers;
  std::vector<Bytes> nonces, aads, payloads;
  ciphers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    ciphers.push_back(BlockCipherAdapter<Aes>{Aes(rng.bytes(16))});
    nonces.push_back(rng.bytes(kCcmNonceLen));
    aads.push_back(rng.bytes(32));
    payloads.push_back(test_data(4096));
  }
  std::vector<CcmSealOp> ops(8);
  for (std::size_t i = 0; i < 8; ++i)
    ops[i] = {&ciphers[i], nonces[i], aads[i], payloads[i], 8};
  for (auto _ : state) {
    std::vector<Bytes> sealed = ccm_seal_batch(ops);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * 4096));
}

void BM_AesCcmSealBatch8(benchmark::State& state) {
  ccm_seal_batch_bench(state);
}
void BM_AesCcmSealBatch8Scalar(benchmark::State& state) {
  ForceScalar scalar;
  ccm_seal_batch_bench(state);
}

void BM_Rsa1024PrivateBlinded(benchmark::State& state) {
  HmacDrbg rng(6);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  for (auto _ : state) {
    BigInt m = rsa_private_op_blinded(key1024().priv, c, rng);
    benchmark::DoNotOptimize(&m);
  }
}

void BM_Rsa1024PrivateLadder(benchmark::State& state) {
  HmacDrbg rng(7);
  const BigInt c = BigInt::random_below(rng, key1024().pub.n);
  const Montgomery mont(key1024().priv.n);
  for (auto _ : state) {
    BigInt m = mont.exp_ladder(c, key1024().priv.d);
    benchmark::DoNotOptimize(&m);
  }
}

void BM_Rsa1024Public(benchmark::State& state) {
  HmacDrbg rng(8);
  const BigInt m = BigInt::random_below(rng, key1024().pub.n);
  for (auto _ : state) {
    BigInt c = rsa_public_op(key1024().pub, m);
    benchmark::DoNotOptimize(&c);
  }
}

void BM_Rsa512PrivateCrt(benchmark::State& state) {
  HmacDrbg rng(9);
  const BigInt c = BigInt::random_below(rng, key512().pub.n);
  for (auto _ : state) {
    BigInt m = rsa_private_op_crt(key512().priv, c);
    benchmark::DoNotOptimize(&m);
  }
}

void BM_Dh1024SharedSecret(benchmark::State& state) {
  HmacDrbg rng(10);
  const DhGroup group = DhGroup::oakley_group2();
  const DhKeyPair alice = dh_generate(group, rng);
  const DhKeyPair bob = dh_generate(group, rng);
  for (auto _ : state) {
    BigInt s = dh_shared_secret(group, alice.private_key, bob.public_key);
    benchmark::DoNotOptimize(&s);
  }
}

void BM_Rsa512KeyGen(benchmark::State& state) {
  HmacDrbg rng(11);
  for (auto _ : state) {
    RsaKeyPair kp = rsa_generate(rng, 512);
    benchmark::DoNotOptimize(&kp);
  }
}

BENCHMARK(BM_Des);
BENCHMARK(BM_Des3);
BENCHMARK(BM_Aes128);
BENCHMARK(BM_Aes128Scalar);
BENCHMARK(BM_AesCcmSeal);
BENCHMARK(BM_AesCcmSealScalar);
BENCHMARK(BM_AesCcmOpen);
BENCHMARK(BM_AesCcmOpenScalar);
BENCHMARK(BM_Rc2);
BENCHMARK(BM_Rc4);
BENCHMARK(BM_Sha1);
BENCHMARK(BM_Sha1Scalar);
BENCHMARK(BM_Md5);
BENCHMARK(BM_Sha256);
BENCHMARK(BM_Sha256Scalar);
BENCHMARK(BM_Sha256Multibuf8);
BENCHMARK(BM_Sha256Multibuf8Scalar);
BENCHMARK(BM_AesCcmSealBatch8);
BENCHMARK(BM_AesCcmSealBatch8Scalar);
BENCHMARK(BM_Crc32);
BENCHMARK(BM_Crc32Scalar);
BENCHMARK(BM_HmacSha1);
BENCHMARK(BM_Rsa1024PrivatePlain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateCrt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateCrtScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateCrtCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateCrtBatched)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateCrtBatchedScalar)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateBlinded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024PrivateLadder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa1024Public)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa512PrivateCrt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dh1024SharedSecret)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rsa512KeyGen)->Unit(benchmark::kMillisecond);

}  // namespace

MAPSEC_BENCHMARK_MAIN()
