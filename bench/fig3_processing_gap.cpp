// Experiments E2-E4 — Figure 3 and the Section 3.2 in-text anchors: the
// wireless security processing gap — plus the gap-trend projection
// (Section 3.2's "threaten to further widen" argument).
#include <cstdio>
#include <cstring>

#include "mapsec/analysis/csv.hpp"
#include "mapsec/analysis/report.hpp"
#include "mapsec/analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace mapsec;
  // --csv: emit the raw series for external plotting instead of tables.
  if (argc > 1 && std::strcmp(argv[1], "--csv") == 0) {
    const platform::GapAnalysis gap(
        platform::WorkloadModel::paper_calibrated());
    std::fputs(analysis::gap_surface_csv(
                   gap.surface(platform::GapAnalysis::default_latencies(),
                               platform::GapAnalysis::default_rates()))
                   .c_str(),
               stdout);
    std::puts("");
    std::fputs(analysis::gap_trend_csv(platform::project_gap_trend(
                   gap, platform::Processor::strongarm_sa1100(), 2.0, 2003,
                   7))
                   .c_str(),
               stdout);
    return 0;
  }
  std::fputs(analysis::figure3_report().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(analysis::section32_anchor_report().c_str(), stdout);

  std::puts("\nGap trend projection (1 s latency, 2 Mbps base, StrongARM "
            "base;\nprocessor +35%/yr vs data rate +60%/yr and crypto "
            "strength +10%/yr):");
  const platform::GapAnalysis gap(
      platform::WorkloadModel::paper_calibrated());
  analysis::Table t({"year", "available MIPS", "required MIPS",
                     "gap ratio"});
  for (const auto& p : platform::project_gap_trend(
           gap, platform::Processor::strongarm_sa1100(), 2.0, 2003, 7)) {
    t.add_row({std::to_string(p.year), analysis::fmt(p.available_mips, 0),
               analysis::fmt(p.required_mips, 0),
               analysis::fmt(p.gap_ratio, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\n(gap ratio > 1: the operating point is infeasible; the "
            "ratio growing\nyear over year is the paper's widening-gap "
            "claim.)");
  return 0;
}
