// Experiment E13 — secure-platform costs: boot-chain verification,
// seal/unseal, monitor calls (with the world-switch overhead model), and
// the biometric FAR/FRR threshold sweep from Section 4.1's end-user
// authentication discussion.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_main.hpp"
#include "mapsec/analysis/table.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/secureplat/keystore.hpp"
#include "mapsec/secureplat/secure_boot.hpp"
#include "mapsec/secureplat/secure_world.hpp"
#include "mapsec/secureplat/user_auth.hpp"

namespace {

using namespace mapsec;
using namespace mapsec::secureplat;

const crypto::RsaKeyPair& root_key() {
  static const crypto::RsaKeyPair kp = [] {
    crypto::HmacDrbg rng(0xB00);
    return crypto::rsa_generate(rng, 1024);
  }();
  return kp;
}

void BM_BootChainVerify(benchmark::State& state) {
  const std::size_t image_kb = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng(1);
  const std::vector<BootImage> chain = {
      make_boot_image("loader", rng.bytes(image_kb * 1024), 1,
                      root_key().priv),
      make_boot_image("kernel", rng.bytes(image_kb * 1024 * 4), 1,
                      root_key().priv),
  };
  for (auto _ : state) {
    BootRom rom(root_key().pub);
    const BootReport report = rom.boot(chain);
    benchmark::DoNotOptimize(report.booted);
  }
}

void BM_KeyStoreSeal(benchmark::State& state) {
  crypto::HmacDrbg rng(2);
  KeyStore store(rng.bytes(32), &rng);
  const crypto::Bytes secret = rng.bytes(64);
  int i = 0;
  for (auto _ : state) {
    SealedBlob blob = store.seal("k" + std::to_string(i++ % 16), secret);
    benchmark::DoNotOptimize(blob.tag.data());
  }
}

void BM_KeyStoreUnseal(benchmark::State& state) {
  crypto::HmacDrbg rng(3);
  KeyStore store(rng.bytes(32), &rng);
  const SealedBlob blob = store.seal("k", rng.bytes(64));
  crypto::Bytes out;
  for (auto _ : state) {
    const UnsealStatus status = store.unseal(blob, out);
    benchmark::DoNotOptimize(status);
  }
}

void BM_MonitorCallMac(benchmark::State& state) {
  crypto::HmacDrbg rng(4);
  PartitionedMemory memory;
  memory.add_region("secure_ram", 4096, true);
  SecureWorld tee(&memory, &rng);
  tee.call(MonitorCall::kGenerateKey, "k");
  const crypto::Bytes msg = rng.bytes(256);
  for (auto _ : state) {
    const MonitorResult r = tee.call(MonitorCall::kMac, "k", msg);
    benchmark::DoNotOptimize(r.ok);
  }
}

void BM_PinVerify(benchmark::State& state) {
  crypto::HmacDrbg rng(5);
  PinAuthenticator auth(crypto::to_bytes("1234"), &rng, 1000000);
  const crypto::Bytes pin = crypto::to_bytes("1234");
  for (auto _ : state) {
    const AuthResult r = auth.verify(pin);
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_BootChainVerify)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KeyStoreSeal);
BENCHMARK(BM_KeyStoreUnseal);
BENCHMARK(BM_MonitorCallMac);
BENCHMARK(BM_PinVerify);

void print_biometric_sweep() {
  std::puts("Biometric matcher threshold sweep (16-dim templates, genuine "
            "noise sigma=0.05):\n");
  crypto::HmacDrbg rng(6);
  const auto tpl = BiometricMatcher::enroll(rng, 16);
  analysis::Table t({"threshold", "FAR", "FRR"});
  for (const double threshold : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2}) {
    BiometricMatcher matcher(tpl, threshold);
    const auto rates = matcher.estimate_rates(rng, 2000, 0.05);
    t.add_row({analysis::fmt(threshold, 2),
               analysis::fmt(rates.far * 100, 2) + "%",
               analysis::fmt(rates.frr * 100, 2) + "%"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("");
}

void print_world_switch_note() {
  crypto::HmacDrbg rng(7);
  PartitionedMemory memory;
  memory.add_region("secure_ram", 4096, true);
  SecureWorld tee(&memory, &rng);
  tee.call(MonitorCall::kGenerateKey, "k");
  for (int i = 0; i < 100; ++i)
    tee.call(MonitorCall::kMac, "k", crypto::to_bytes("m"));
  std::printf("World-switch accounting: %llu switches for 101 monitor "
              "calls (model: %.0f cycles each)\n\n",
              static_cast<unsigned long long>(tee.world_switches()),
              SecureWorld::kWorldSwitchCycles);
}

}  // namespace

int main(int argc, char** argv) {
  mapsec::bench::release_guard();
  benchmark::AddCustomContext("mapsec_build_type",
                              mapsec::bench::build_type());
  benchmark::AddCustomContext(
      "crypto_dispatch",
      mapsec::crypto::dispatch::capabilities_summary());
  print_biometric_sweep();
  print_world_switch_note();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
