// Experiment E9 — timing-attack success versus sample count, and the
// countermeasure ablation (Montgomery ladder, blinding). Reproduces the
// Section 3.4 claim that implementations leak through timing and that
// constant-sequence / blinded implementations do not.
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/attack/spa.hpp"
#include "mapsec/attack/timing.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::attack;

  crypto::HmacDrbg key_rng(0x7171);
  const crypto::RsaKeyPair key = crypto::rsa_generate(key_rng, 96);
  const std::size_t bits = key.priv.d.bit_length();

  std::puts("Timing attack on RSA private exponentiation (96-bit modulus "
            "for tractability; the attack is per-bit, so scaling is "
            "linear in key size)\n");

  analysis::Table t({"implementation", "samples", "correct bits",
                     "key recovered"});
  const auto run = [&](const char* name, ExpStrategy strategy,
                       std::size_t samples, std::uint64_t seed) {
    TimingModel model;
    model.noise_stddev = 30.0;
    TimingOracle oracle(key.priv, model, strategy, seed);
    crypto::HmacDrbg rng(seed + 1);
    const auto result = timing_attack(oracle, rng, samples, bits);
    t.add_row({name, std::to_string(samples),
               analysis::fmt(result.correct_bit_fraction * 100, 1) + "%",
               result.verified ? "YES" : "no"});
  };

  for (const std::size_t samples : {250u, 1000u, 4000u, 8000u})
    run("square-and-multiply", ExpStrategy::kSquareAndMultiply, samples,
        samples);
  run("montgomery-ladder", ExpStrategy::kMontgomeryLadder, 8000, 77);
  run("blinded", ExpStrategy::kBlinded, 8000, 99);

  std::fputs(t.render().c_str(), stdout);
  std::puts("\nExpected shape: success probability grows with samples for "
            "the leaky implementation; the ladder and blinding hold the "
            "attacker at chance level.");

  // SPA: the single-trace variant.
  std::puts("\nSimple power analysis (operation-sequence trace, ONE "
            "execution observed):");
  analysis::Table spa_table({"implementation", "traces", "key recovered"});
  crypto::HmacDrbg mrng(5);
  const crypto::BigInt m =
      crypto::BigInt::random_below(mrng, key.pub.n);
  {
    SpaOracle oracle(key.priv, SpaOracle::Strategy::kSquareAndMultiply);
    const auto r = spa_attack(key.pub, m, oracle.sign(m));
    spa_table.add_row({"square-and-multiply", "1",
                       r.verified ? "YES" : "no"});
  }
  {
    SpaOracle oracle(key.priv, SpaOracle::Strategy::kMontgomeryLadder);
    const auto r = spa_attack(key.pub, m, oracle.sign(m));
    spa_table.add_row({"montgomery-ladder", "1", r.verified ? "YES" : "no"});
  }
  std::fputs(spa_table.render().c_str(), stdout);
  std::puts("\nSPA reads the key off a single unprotected trace; the "
            "ladder's constant\noperation sequence leaves nothing to "
            "read — the reason constrained\ndevices pay its ~25% "
            "performance cost.");
  return 0;
}
