// Shared bench PKI: one deterministic RSA-512 certificate world used by
// bench_server_load (the in-process scenarios AND the E26 socket-fleet
// parent) and bench_socket_load_gen (the child processes). Parent and
// children never exchange key material — both derive the identical CA /
// server identity from the same seeded rng, so a child's trusted root
// verifies the parent fleet's certificate chain by construction.
#pragma once

#include <utility>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/server/client.hpp"
#include "mapsec/server/server.hpp"

namespace mapsec::bench {

constexpr std::uint64_t kPkiNow = 1'050'000'000;  // ~2003

struct Pki {
  crypto::RsaKeyPair ca_key;
  crypto::RsaKeyPair server_key;
  protocol::CertificateAuthority ca;
  protocol::Certificate server_cert;

  // RSA-512 identities: the relative full-vs-resumed shape is what the
  // serving benches are after, and short keys keep the harness
  // re-runnable in seconds.
  static Pki make() {
    crypto::HmacDrbg rng(0xE18);
    crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng, 512);
    crypto::RsaKeyPair server_key = crypto::rsa_generate(rng, 512);
    protocol::CertificateAuthority ca("BenchRoot", ca_key, 0, kPkiNow * 2);
    protocol::Certificate cert =
        ca.issue("server.bench", server_key.pub, 0, kPkiNow * 2);
    return Pki{std::move(ca_key), std::move(server_key), std::move(ca),
               std::move(cert)};
  }
};

inline server::ServerConfig pki_server_config(const Pki& pki) {
  server::ServerConfig cfg;
  cfg.handshake.now = kPkiNow;
  cfg.handshake.cert_chain = {pki.server_cert};
  cfg.handshake.private_key = &pki.server_key.priv;
  return cfg;
}

inline server::ClientConfig pki_client_config(const Pki& pki) {
  server::ClientConfig cfg;
  cfg.handshake.now = kPkiNow;
  cfg.handshake.trusted_roots = {pki.ca.root()};
  cfg.handshake.offered_suites = {protocol::CipherSuite::kRsaAes128CbcSha};
  return cfg;
}

}  // namespace mapsec::bench
