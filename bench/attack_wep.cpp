// Experiment E12 — WEP insecurity: keystream-reuse decryption and FMS
// weak-IV key recovery versus captured traffic volume. Reproduces the
// basis of the paper's Section 2 statement that deployed wireless link
// security "can be easily broken or compromised".
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/attack/wep_attack.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::attack;
  using protocol::WepFrame;

  crypto::HmacDrbg key_rng(0xE1);
  std::puts("WEP attacks\n");

  // --- keystream reuse -------------------------------------------------
  {
    const crypto::Bytes key = key_rng.bytes(13);
    const std::array<std::uint8_t, 3> iv{1, 2, 3};
    const crypto::Bytes known = crypto::to_bytes(
        "BEACON broadcast frame with entirely predictable contents");
    const crypto::Bytes secret =
        crypto::to_bytes("username=alice&password=hunter2&account=42");
    const WepFrame f1 = protocol::wep_encapsulate(key, iv, known);
    const WepFrame f2 = protocol::wep_encapsulate(key, iv, secret);
    const crypto::Bytes rec = keystream_reuse_decrypt(f1, known, f2);
    const std::size_t match =
        static_cast<std::size_t>(std::distance(
            secret.begin(),
            std::mismatch(secret.begin(), secret.end(), rec.begin()).first));
    std::printf("Keystream reuse (one IV collision): recovered %zu/%zu "
                "bytes of the secret frame\n\n",
                match, secret.size());
  }

  // --- FMS key recovery -------------------------------------------------
  std::puts("FMS weak-IV key recovery (first plaintext byte = SNAP 0xAA):");
  analysis::Table t(
      {"key size", "weak IVs per key byte", "frames observed", "recovered"});
  for (const std::size_t key_len : {5u, 13u}) {
    const crypto::Bytes key = key_rng.bytes(key_len);
    for (const int ivs_per_byte : {32, 96, 256}) {
      FmsAttack attack(key_len);
      WepFrame check;
      crypto::Bytes payload = crypto::to_bytes("Xpayload-data-here");
      payload[0] = kSnapHeaderByte;
      bool first = true;
      for (std::size_t b = 0; b < key_len; ++b) {
        for (int x = 0; x < ivs_per_byte; ++x) {
          const WepFrame frame = protocol::wep_encapsulate(
              key,
              {static_cast<std::uint8_t>(b + 3), 255,
               static_cast<std::uint8_t>(x)},
              payload);
          if (first) {
            check = frame;
            first = false;
          }
          attack.observe(frame);
        }
      }
      const auto recovered = attack.try_recover(check);
      t.add_row({std::to_string(key_len * 8 + 24) + "-bit",
                 std::to_string(ivs_per_byte),
                 std::to_string(attack.frames_observed()),
                 recovered && *recovered == key ? "KEY RECOVERED" : "no"});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nExpected shape: recovery succeeds once enough weak IVs per "
            "key byte\nare seen (each resolved weak IV votes for the right "
            "byte with ~5%\nprobability; a couple hundred per byte makes "
            "the vote decisive),\nindependent of key length — the FMS "
            "result that made 104-bit WEP no\nsafer than 40-bit.");
  return 0;
}
