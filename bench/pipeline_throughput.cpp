// Packet throughput of the multi-threaded pipeline, 1 vs N workers, on
// the ESP-inbound (3DES-CBC + HMAC-SHA1) and CCMP (AES-CCM) data paths.
// Reported items/sec are packets; bytes/sec count wire bytes.
//
// Per-SA ordering makes the parallelism deterministic, so the inbound
// batches are reusable across benchmark iterations by resetting the
// anti-replay windows between runs (the only state a repeated batch
// disturbs).
#include <benchmark/benchmark.h>

#include "bench_main.hpp"
#include "mapsec/engine/packet_pipeline.hpp"

namespace {

using mapsec::crypto::Bytes;
using namespace mapsec::engine;

constexpr std::size_t kNumSas = 8;
constexpr std::size_t kPacketsPerSa = 32;
constexpr std::size_t kPayloadBytes = 512;

Bytes header_for(std::uint32_t spi, std::uint32_t seq) {
  Bytes h(8);
  mapsec::crypto::store_be32(h.data(), spi);
  mapsec::crypto::store_be32(h.data() + 4, seq);
  return h;
}

std::unique_ptr<PacketPipeline> make_pipeline(std::size_t workers,
                                              bool ccmp) {
  auto p = std::make_unique<PacketPipeline>(EngineProfile{}, workers, 0xBE);
  p->load_program("in", ccmp ? ccmp_inbound_program() : esp_inbound_program());
  p->load_program("out",
                  ccmp ? ccmp_outbound_program() : esp_outbound_program());
  mapsec::crypto::HmacDrbg keys(0x9999);
  for (std::uint32_t id = 0; id < kNumSas; ++id) {
    EngineSa sa;
    sa.spi = 0x2000 + id;
    sa.cipher = ccmp ? mapsec::protocol::BulkCipher::kAes128
                     : mapsec::protocol::BulkCipher::kDes3;
    sa.enc_key = keys.bytes(ccmp ? 16 : 24);
    sa.mac_key = keys.bytes(20);
    p->add_sa(id, sa);
  }
  return p;
}

/// Seal a batch outbound once, return it re-framed as inbound jobs.
std::vector<PipelineJob> make_inbound_batch(PacketPipeline& p, bool ccmp) {
  std::vector<PipelineJob> out;
  for (std::size_t seq = 1; seq <= kPacketsPerSa; ++seq) {
    for (std::uint32_t id = 0; id < kNumSas; ++id) {
      PipelineJob j;
      j.sa_id = id;
      j.program = "out";
      j.packet = header_for(0x2000 + id, static_cast<std::uint32_t>(seq));
      const Bytes body(kPayloadBytes,
                       static_cast<std::uint8_t>(id * 31 + seq));
      j.packet.insert(j.packet.end(), body.begin(), body.end());
      out.push_back(std::move(j));
    }
  }
  const auto sealed = p.run_batch(out);
  std::vector<PipelineJob> in;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    if (!sealed[i].accepted)
      throw std::runtime_error("outbound batch failed: " +
                               sealed[i].drop_reason);
    PipelineJob j;
    j.sa_id = out[i].sa_id;
    j.program = "in";
    j.packet = sealed[i].header;
    j.packet.insert(j.packet.end(), sealed[i].payload.begin(),
                    sealed[i].payload.end());
    in.push_back(std::move(j));
  }
  p.reset_replay();
  return in;
}

void run_inbound(benchmark::State& state, bool ccmp) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  auto p = make_pipeline(workers, ccmp);
  const auto batch = make_inbound_batch(*p, ccmp);
  std::size_t wire_bytes = 0;
  for (const auto& j : batch) wire_bytes += j.packet.size();

  for (auto _ : state) {
    state.PauseTiming();
    p->reset_replay();
    state.ResumeTiming();
    const auto results = p->run_batch(batch);
    for (const auto& r : results)
      if (!r.accepted) state.SkipWithError("inbound packet dropped");
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_bytes));
}

void BM_EspInboundPipeline(benchmark::State& state) {
  run_inbound(state, /*ccmp=*/false);
}
BENCHMARK(BM_EspInboundPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_CcmpInboundPipeline(benchmark::State& state) {
  run_inbound(state, /*ccmp=*/true);
}
BENCHMARK(BM_CcmpInboundPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_CcmpOutboundPipeline(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  auto p = make_pipeline(workers, /*ccmp=*/true);
  std::vector<PipelineJob> batch;
  for (std::size_t seq = 1; seq <= kPacketsPerSa; ++seq) {
    for (std::uint32_t id = 0; id < kNumSas; ++id) {
      PipelineJob j;
      j.sa_id = id;
      j.program = "out";
      j.packet = header_for(0x2000 + id, static_cast<std::uint32_t>(seq));
      j.packet.resize(8 + kPayloadBytes, 0x5A);
      batch.push_back(std::move(j));
    }
  }
  std::size_t wire_bytes = 0;
  for (const auto& j : batch) wire_bytes += j.packet.size();

  for (auto _ : state) {
    const auto results = p->run_batch(batch);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_bytes));
}
BENCHMARK(BM_CcmpOutboundPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

MAPSEC_BENCHMARK_MAIN()
