// Shared main() for the google-benchmark harnesses.
//
// Two jobs:
//
//  * Refuse to record numbers from a debug tree. The committed
//    BENCH_*.json baselines are throughput claims; an -O0/assert build
//    understates them severalfold and poisons any later comparison. A
//    debug build exits with an error unless MAPSEC_BENCH_ALLOW_DEBUG=1
//    is set, and even then the run is loudly tagged.
//  * Stamp every JSON report with the build type and the active
//    crypto::dispatch backend summary, so a baseline file says which
//    hardware kernels produced it (context keys "mapsec_build_type" and
//    "crypto_dispatch").
#pragma once

#include <benchmark/benchmark.h>

#include "bench_guard.hpp"
#include "mapsec/crypto/dispatch.hpp"

#define MAPSEC_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                      \
    ::mapsec::bench::release_guard();                                    \
    ::benchmark::AddCustomContext("mapsec_build_type",                   \
                                  ::mapsec::bench::build_type());        \
    ::benchmark::AddCustomContext(                                       \
        "build_type_note",                                               \
        "mapsec_build_type is authoritative for this tree; "             \
        "library_build_type describes the system google-benchmark "      \
        "library only");                                                 \
    ::benchmark::AddCustomContext(                                       \
        "crypto_dispatch",                                               \
        ::mapsec::crypto::dispatch::capabilities_summary());             \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    return 0;                                                            \
  }
