// Experiment E6 — Section 4.2 acceleration tiers, plus the DESIGN.md
// ablation: how the crypto-accelerator-vs-protocol-engine gap grows with
// the protocol-processing share of the workload (the Section 4.2.3
// "holistic view" argument).
#include <cstdio>

#include "mapsec/analysis/report.hpp"
#include "mapsec/analysis/table.hpp"
#include "mapsec/platform/accelerator.hpp"

int main() {
  using namespace mapsec;
  using platform::AccelProfile;
  using platform::Primitive;

  std::fputs(analysis::accel_tier_report().c_str(), stdout);

  std::puts("\nAblation: protocol-engine advantage vs per-byte protocol "
            "overhead (RC4+MD5, accelerated ciphers)");
  analysis::Table t({"protocol instr/B", "accelerator Mbps", "engine Mbps",
                     "engine/accelerator"});
  const auto host = platform::Processor::strongarm_sa1100();
  for (const double overhead : {0.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    auto model = platform::WorkloadModel::paper_calibrated();
    model.set_protocol_instr_per_byte(overhead);
    const platform::SecurityPlatform accel(
        host, AccelProfile::crypto_accelerator(), model);
    const platform::SecurityPlatform engine(
        host, AccelProfile::protocol_engine(), model);
    const double ra = accel.achievable_mbps(Primitive::kRc4, Primitive::kMd5);
    const double re = engine.achievable_mbps(Primitive::kRc4, Primitive::kMd5);
    t.add_row({analysis::fmt(overhead, 0), analysis::fmt(ra, 1),
               analysis::fmt(re, 1), analysis::fmt(re / ra, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}
