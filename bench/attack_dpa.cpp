// Experiment E10 — DPA key recovery versus trace count and noise, and the
// masking countermeasure ablation.
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/attack/dpa.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::attack;

  crypto::HmacDrbg key_rng(0xD0A);
  const crypto::Bytes key = key_rng.bytes(8);

  std::puts("Differential power analysis of DES round 1 "
            "(Hamming-weight leakage model)\n");

  analysis::Table t({"implementation", "noise stddev", "traces",
                     "S-boxes correct", "full 56-bit key"});
  const auto run = [&](const char* name, bool masked, double noise,
                       std::size_t traces, std::uint64_t seed) {
    PowerModel model;
    model.noise_stddev = noise;
    DesPowerOracle oracle(key, model, masked, seed);
    crypto::HmacDrbg rng(seed + 1);
    const auto result = dpa_attack(oracle, rng, traces);
    t.add_row({name, analysis::fmt(noise, 1), std::to_string(traces),
               std::to_string(result.correct_chunks) + "/8",
               result.full_key_recovered ? "RECOVERED" : "no"});
  };

  for (const std::size_t traces : {50u, 150u, 500u, 2000u})
    run("unmasked", false, 0.5, traces, traces);
  for (const std::size_t traces : {2000u, 8000u})
    run("unmasked", false, 2.0, traces, traces + 1);
  run("masked", true, 0.5, 2000, 31337);
  run("masked", true, 0.5, 8000, 31338);

  std::fputs(t.render().c_str(), stdout);
  std::puts("\nExpected shape: recovery succeeds from a few hundred traces "
            "at SNR ~2 and from a few thousand at SNR ~0.5; first-order "
            "masking holds every S-box at chance level.");
  return 0;
}
