// Experiment E11 — RSA-CRT fault attack (Boneh-DeMillo-Lipton): success
// rate across fault positions/messages, and the verify-before-release
// countermeasure. Also reports the CRT vs plain cost ratio that motivates
// CRT in the first place (the DESIGN.md ablation).
#include <chrono>
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/attack/fault.hpp"
#include "mapsec/crypto/modexp.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::attack;
  using crypto::BigInt;

  crypto::HmacDrbg key_rng(0xFA);
  const crypto::RsaKeyPair key = crypto::rsa_generate(key_rng, 512);
  FaultySigner signer(key.priv);
  crypto::HmacDrbg rng(1);

  std::puts("RSA-CRT fault attack (single bit flip in one "
            "half-exponentiation)\n");

  // Success rate over many random (message, target, bit) combinations.
  int attacks = 0, successes = 0, protected_leaks = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt m = BigInt::random_below(rng, key.pub.n);
    const FaultTarget target =
        (trial % 2 == 0) ? FaultTarget::kExpModP : FaultTarget::kExpModQ;
    const std::size_t bit = rng.below(250);
    ++attacks;
    if (bdl_factor(key.pub, m, signer.sign_faulty(m, target, bit)).success)
      ++successes;
    if (bdl_factor(key.pub, m, signer.sign_protected(m, target, bit)).success)
      ++protected_leaks;
  }

  analysis::Table t({"implementation", "faulty signatures", "factored n"});
  t.add_row({"CRT, unprotected", std::to_string(attacks),
             std::to_string(successes)});
  t.add_row({"CRT + verify-before-release", std::to_string(attacks),
             std::to_string(protected_leaks)});
  std::fputs(t.render().c_str(), stdout);

  // Why devices use CRT anyway: measured speed ratio.
  const BigInt m = BigInt::random_below(rng, key.pub.n);
  const auto time_of = [&](auto&& f) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) f();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() /
           20.0;
  };
  const double t_plain =
      time_of([&] { (void)crypto::rsa_private_op(key.priv, m); });
  const double t_crt =
      time_of([&] { (void)crypto::rsa_private_op_crt(key.priv, m); });
  const double t_checked = time_of(
      [&] { (void)crypto::rsa_private_op_crt_checked(key.priv, m); });

  std::puts("\nCRT ablation (RSA-512 private op, host-measured):");
  analysis::Table perf({"strategy", "time (ms)", "vs plain"});
  perf.add_row({"plain", analysis::fmt(t_plain * 1e3, 2), "1.00"});
  perf.add_row({"CRT", analysis::fmt(t_crt * 1e3, 2),
                analysis::fmt(t_plain / t_crt, 2) + "x"});
  perf.add_row({"CRT + verify", analysis::fmt(t_checked * 1e3, 2),
                analysis::fmt(t_plain / t_checked, 2) + "x"});
  std::fputs(perf.render().c_str(), stdout);
  std::puts("\nExpected shape: every unprotected faulty signature factors "
            "the modulus; the checked variant leaks nothing and keeps most "
            "of the CRT speedup.");
  return 0;
}
