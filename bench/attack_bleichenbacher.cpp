// Experiment E15 — Bleichenbacher padding-oracle attack: oracle queries
// needed to recover a premaster secret, by oracle strictness. The
// protocol-level implementation attack of Section 3.4's software-attack
// class, mounted against this library's own PKCS#1 decryption.
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/attack/bleichenbacher.hpp"
#include "mapsec/crypto/rng.hpp"

int main() {
  using namespace mapsec;
  using namespace mapsec::attack;

  std::puts("Bleichenbacher attack on RSA PKCS#1 v1.5 key transport\n"
            "(256-bit modulus for harness speed; query counts scale "
            "roughly linearly\nwith modulus bits)\n");

  analysis::Table t({"oracle", "trial", "oracle queries", "recovered"});
  crypto::HmacDrbg key_rng(0xB1EE);
  const crypto::RsaKeyPair key = crypto::rsa_generate(key_rng, 256);

  const auto run = [&](const char* name, PaddingOracle::Strictness s,
                       int trial) {
    crypto::HmacDrbg rng(static_cast<std::uint64_t>(trial) * 31 + 7);
    const crypto::Bytes secret = crypto::to_bytes("sess-key");
    const crypto::Bytes ct =
        crypto::rsa_encrypt_pkcs1(key.pub, secret, rng);
    PaddingOracle oracle(key.priv, s);
    const auto result = bleichenbacher_attack(key.pub, ct, oracle, 30'000'000);
    t.add_row({name, std::to_string(trial),
               std::to_string(result.oracle_queries),
               result.success && result.recovered_message == secret
                   ? "yes"
                   : "NO"});
  };

  for (int trial = 0; trial < 3; ++trial)
    run("prefix-only (00 02)", PaddingOracle::Strictness::kPrefixOnly, trial);
  run("full PKCS#1 check", PaddingOracle::Strictness::kFull, 0);

  std::fputs(t.render().c_str(), stdout);
  std::puts("\nExpected shape: thousands to tens of thousands of queries "
            "against a\nlenient oracle, substantially more against a "
            "strict one — either way,\none recorded handshake falls to a "
            "server that leaks a single padding\nbit. The countermeasure "
            "is rsa_decrypt_pkcs1's contract: indistinguishable\nfailures "
            "(and premaster-substitution at the protocol layer).");
  return 0;
}
