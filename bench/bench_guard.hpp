// Build-type guard for benchmark harnesses (no google-benchmark
// dependency — also usable from the plain table-printing executables).
//
// The committed BENCH_*.json baselines are throughput claims; an
// -O0/assert build understates them severalfold and poisons any later
// comparison, so recording from a debug tree is refused unless
// MAPSEC_BENCH_ALLOW_DEBUG=1 is set — and even then the run is loudly
// tagged.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mapsec::bench {

/// THE authoritative build type of the mapsec tree being measured,
/// reported as "mapsec_build_type" in every baseline. google-benchmark
/// reports additionally carry a "library_build_type" key emitted by the
/// benchmark LIBRARY itself — that describes how the system-installed
/// libbenchmark was compiled (often "debug" from a distro package) and
/// says nothing about this tree's optimisation level. Comparisons and
/// the release_guard() below key off mapsec_build_type only.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

inline void release_guard() {
#ifndef NDEBUG
  if (std::getenv("MAPSEC_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(
        stderr,
        "refusing to benchmark a debug build: numbers from an unoptimised "
        "tree are not comparable to the committed baselines.\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release, or set "
        "MAPSEC_BENCH_ALLOW_DEBUG=1 to run anyway (tagged as debug).\n");
    std::exit(1);
  }
  std::fprintf(stderr,
               "WARNING: benchmarking a DEBUG build "
               "(MAPSEC_BENCH_ALLOW_DEBUG set); results are tagged "
               "mapsec_build_type=debug and must not be committed.\n");
#endif
}

}  // namespace mapsec::bench
