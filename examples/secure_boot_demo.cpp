// Secure-platform walkthrough: the Section 4.1 layered architecture on a
// simulated handset — secure boot (with a tamper and a rollback attempt),
// sealed key storage, the trusted/normal world split, and end-user
// authentication (PIN + biometric).
//
// Build & run:  ./examples/secure_boot_demo
#include <cstdio>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/secureplat/keystore.hpp"
#include "mapsec/secureplat/secure_boot.hpp"
#include "mapsec/secureplat/secure_world.hpp"
#include "mapsec/secureplat/user_auth.hpp"

using namespace mapsec;
using namespace mapsec::secureplat;

namespace {

void print_report(const char* label, const BootReport& report) {
  std::printf("%s: %s\n", label, report.booted ? "BOOTED" : "HALTED");
  for (const auto& stage : report.stages)
    std::printf("  %-8s v%u  %s\n", stage.image_name.c_str(), stage.version,
                boot_stage_status_name(stage.status).c_str());
}

}  // namespace

int main() {
  crypto::HmacDrbg rng(0xB01DFACE);

  // --- factory: the OEM signs the firmware chain -------------------------
  const crypto::RsaKeyPair oem = crypto::rsa_generate(rng, 1024);
  const std::vector<BootImage> firmware_v2 = {
      make_boot_image("loader", crypto::to_bytes("loader v2"), 2, oem.priv),
      make_boot_image("kernel", crypto::to_bytes("kernel v2"), 2, oem.priv),
      make_boot_image("apps", crypto::to_bytes("app bundle v2"), 2, oem.priv),
  };

  BootRom rom(oem.pub);
  print_report("clean boot", rom.boot(firmware_v2));

  // --- attack 1: patched kernel ------------------------------------------
  auto tampered = firmware_v2;
  tampered[1].payload = crypto::to_bytes("kernel v2 + rootkit");
  print_report("\ntampered kernel", rom.boot(tampered));

  // --- attack 2: rollback to a vulnerable release -------------------------
  const std::vector<BootImage> firmware_v1 = {
      make_boot_image("loader", crypto::to_bytes("loader v1"), 1, oem.priv),
      make_boot_image("kernel", crypto::to_bytes("kernel v1 (CVE!)"), 1,
                      oem.priv),
      make_boot_image("apps", crypto::to_bytes("app bundle v1"), 1, oem.priv),
  };
  print_report("\nrollback to v1", rom.boot(firmware_v1));

  // --- sealed storage -------------------------------------------------------
  std::puts("\nsealed key store:");
  KeyStore store(rng.bytes(32), &rng);
  const SealedBlob old_blob = store.seal("sim-pin", crypto::to_bytes("0000"));
  const SealedBlob blob = store.seal("sim-pin", crypto::to_bytes("4711"));
  crypto::Bytes out;
  std::printf("  unseal fresh blob: %s\n",
              store.unseal(blob, out) == UnsealStatus::kOk ? "ok" : "FAIL");
  std::printf("  replay stale flash image: %s\n",
              store.unseal(old_blob, out) == UnsealStatus::kRollback
                  ? "rollback detected"
                  : "MISSED");

  // --- trusted world ---------------------------------------------------------
  std::puts("\ntrusted execution world:");
  PartitionedMemory memory;
  memory.add_region("secure_ram", 4096, /*secure=*/true);
  memory.add_region("dram", 65536, /*secure=*/false);
  SecureWorld tee(&memory, &rng);
  tee.call(MonitorCall::kGenerateKey, "payment-key");
  const auto mac = tee.call(MonitorCall::kMac, "payment-key",
                            crypto::to_bytes("PAY 12.50 EUR to kiosk-7"));
  std::printf("  transaction MAC via monitor call: %s...\n",
              crypto::to_hex(mac.data).substr(0, 16).c_str());
  const auto leak = tee.call(MonitorCall::kGetKey, "payment-key");
  std::printf("  normal world asks for the key itself: %s\n",
              leak.ok ? "LEAKED" : ("refused (" + leak.error + ")").c_str());
  memory.read(World::kNormal, "secure_ram", 0, 16);
  std::printf("  normal-world read of secure RAM: %zu bus fault(s) logged\n",
              memory.faults().size());

  // --- user authentication ---------------------------------------------------
  std::puts("\nuser authentication:");
  PinAuthenticator pin(crypto::to_bytes("4711"), &rng, 3);
  pin.verify(crypto::to_bytes("1234"));
  pin.verify(crypto::to_bytes("1111"));
  std::printf("  two wrong PINs: %d attempt(s) left\n",
              pin.remaining_attempts());
  std::printf("  correct PIN: %s\n",
              pin.verify(crypto::to_bytes("4711")) == AuthResult::kGranted
                  ? "granted"
                  : "denied");

  const auto fingerprint = BiometricMatcher::enroll(rng, 16);
  BiometricMatcher matcher(fingerprint, 0.3);
  std::printf("  genuine fingerprint: %s, impostor: %s\n",
              matcher.match(matcher.sample_genuine(rng, 0.03)) ? "accepted"
                                                               : "rejected",
              matcher.match(matcher.sample_impostor(rng)) ? "ACCEPTED"
                                                          : "rejected");
  return 0;
}
