// A secure-session server, end to end, on either bearer.
//
// Default mode walks the whole mapsec::server story on the simulated
// lossy bearer: a fleet of appliance clients arrives over a 5%-loss,
// reordering channel; each one completes a TLS handshake (resuming when
// it can), echoes application data through the AES-CCM bulk path, and
// closes gracefully — or gives up cleanly after its retry budget. The
// run ends by pricing the measured serving load against the paper's
// StrongARM SA-1100 appliance processor: Figure 3's gap, measured
// instead of asserted.
//
// `--listen [--shards N] [--seconds S]` instead serves the same stack
// over real loopback TCP (net::SocketBearer): it prints the listener
// ports and waits, so an external load generator can hammer it at
// wall-clock speed, e.g.
//
//   ./build/examples/session_server --listen --shards 2 &
//   ./build/bench/bench_socket_load_gen --ports=P1,P2 --clients=50
//
// (the example uses the shared bench PKI, so the load generator's
// clients trust its certificate chain by construction).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/socket_fleet.hpp"
#include "server_pki.hpp"

using namespace mapsec;

namespace {

int run_listen(std::size_t shards, unsigned seconds) {
  if (!net::sockets_available()) {
    std::fprintf(stderr, "loopback TCP unavailable in this sandbox\n");
    return 2;
  }
  const bench::Pki pki = bench::Pki::make();
  server::SocketFleetConfig cfg;
  cfg.shards = shards;
  cfg.reserve_slabs_per_shard = 256;
  server::SocketServerFleet fleet(cfg, bench::pki_server_config(pki),
                                  {.capacity = 256, .ttl_us = 0});
  if (!fleet.ok()) {
    std::fprintf(stderr, "could not bind loopback listeners\n");
    return 1;
  }
  std::string csv;
  for (std::uint16_t port : fleet.ports()) {
    if (!csv.empty()) csv += ',';
    csv += std::to_string(port);
  }
  fleet.start();
  std::printf("listening on 127.0.0.1 ports %s (%zu shard%s, %u s)\n",
              csv.c_str(), shards, shards == 1 ? "" : "s", seconds);
  std::printf("drive it with: bench_socket_load_gen --ports=%s "
              "--clients=50\n", csv.c_str());
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const server::SocketServerFleet::Report r = fleet.stop();
  std::printf("served %llu connections: %llu full + %llu resumed "
              "handshakes, %llu bulk echoes\n",
              static_cast<unsigned long long>(r.accepted),
              static_cast<unsigned long long>(r.server.full_handshakes),
              static_cast<unsigned long long>(r.server.resumed_handshakes),
              static_cast<unsigned long long>(r.server.bulk_messages));
  std::printf("books %s, arena %llu allocations for %zu reserved slabs "
              "(peak %zu in use)\n",
              r.conserved ? "conserved" : "NOT CONSERVED",
              static_cast<unsigned long long>(r.arena.allocations),
              r.arena.reserved, r.arena.peak_in_use);
  return r.conserved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool listen = false;
  std::size_t shards = 2;
  unsigned seconds = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0) {
      listen = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: session_server [--listen [--shards N] "
                   "[--seconds S]]\n");
      return 1;
    }
  }
  if (listen) return run_listen(shards == 0 ? 1 : shards, seconds);

  constexpr std::uint64_t kNow = 1'050'000'000;  // ~2003

  // A tiny PKI: one root, one server identity (RSA-512 for demo speed).
  crypto::HmacDrbg pki_rng(0xDE50);
  crypto::RsaKeyPair ca_key = crypto::rsa_generate(pki_rng, 512);
  crypto::RsaKeyPair server_key = crypto::rsa_generate(pki_rng, 512);
  protocol::CertificateAuthority ca("DemoRoot", ca_key, 0, kNow * 2);
  const protocol::Certificate server_cert =
      ca.issue("shop.example", server_key.pub, 0, kNow * 2);

  server::ServerConfig server_cfg;
  server_cfg.handshake.now = kNow;
  server_cfg.handshake.cert_chain = {server_cert};
  server_cfg.handshake.private_key = &server_key.priv;
  server_cfg.pipeline_workers = 2;

  server::ClientConfig client_cfg;
  client_cfg.handshake.now = kNow;
  client_cfg.handshake.trusted_roots = {ca.root()};
  client_cfg.sessions = 2;  // the second resumes through the cache

  server::LoadConfig load_cfg;
  load_cfg.num_clients = 25;
  load_cfg.channel.loss_rate = 0.05;
  load_cfg.channel.reorder_rate = 0.10;
  load_cfg.appliance = platform::Processor::strongarm_sa1100();

  server::LoadGenerator gen(load_cfg, server_cfg, client_cfg,
                            {.capacity = 64, .ttl_us = 60'000'000});
  const server::LoadReport r = gen.run();

  std::printf("sessions: %zu completed, %zu failed (of %zu)\n",
              r.sessions_completed, r.sessions_failed,
              r.sessions_attempted);
  std::printf("handshakes: %llu full, %llu resumed (cache hit rate "
              "%.0f%%)\n",
              static_cast<unsigned long long>(r.server.full_handshakes),
              static_cast<unsigned long long>(r.server.resumed_handshakes),
              100 * r.cache_hit_rate);
  std::printf("handshake latency: p50 %.0f ms, p99 %.0f ms (sim)\n",
              r.handshake_p50_ms, r.handshake_p99_ms);
  std::printf("record layer: %.3f Mbit/s protected, %llu echoes, "
              "0x%02x%02x... fleet digest\n",
              r.record_mbps,
              static_cast<unsigned long long>(r.server.bulk_messages),
              r.fleet_digest[0], r.fleet_digest[1]);
  std::printf("\npriced against %s:\n",
              load_cfg.appliance.name.c_str());
  std::printf("  required %.1f MIPS vs %.0f available -> gap ratio "
              "%.2f\n",
              r.gap.required_mips, r.gap.available_mips, r.gap.gap_ratio);
  std::printf("  %.1f mJ per session -> %.0f sessions per 26 KJ "
              "charge\n",
              r.gap.session_mj, r.gap.sessions_per_charge);
  return r.sessions_failed == 0 ? 0 : 1;
}
