// End-to-end m-commerce purchase — the scenario the paper's introduction
// is motivated by ("personal trusted devices that pack our identity and
// purchasing power"). Combines every layer of the stack:
//
//   secure boot -> user authentication -> sealed credential retrieval ->
//   TLS session to the merchant -> purchase -> signed receipt
//   (non-repudiation via an RSA signature, computed in the secure world's
//   stead by the device key).
//
// Build & run:  ./examples/mcommerce_flow
#include <cstdio>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/secureplat/keystore.hpp"
#include "mapsec/secureplat/secure_boot.hpp"
#include "mapsec/secureplat/user_auth.hpp"

using namespace mapsec;
using namespace mapsec::protocol;
using namespace mapsec::secureplat;

int main() {
  const std::uint64_t now = 1'050'000'000;
  crypto::HmacDrbg rng(0xC0FFEE);

  // --- step 0: the device boots its verified firmware ---------------------
  const crypto::RsaKeyPair oem = crypto::rsa_generate(rng, 1024);
  BootRom rom(oem.pub);
  const BootReport boot = rom.boot({
      make_boot_image("loader", crypto::to_bytes("loader"), 1, oem.priv),
      make_boot_image("kernel", crypto::to_bytes("kernel"), 1, oem.priv),
      make_boot_image("wallet", crypto::to_bytes("wallet app"), 1, oem.priv),
  });
  std::printf("[boot]    %s\n", boot.booted ? "verified firmware chain" : "HALT");
  if (!boot.booted) return 1;

  // --- step 1: the user unlocks the device --------------------------------
  PinAuthenticator pin(crypto::to_bytes("4711"), &rng);
  if (pin.verify(crypto::to_bytes("4711")) != AuthResult::kGranted) return 1;
  std::puts("[auth]    PIN accepted");

  // --- step 2: unseal the user's payment credential ------------------------
  KeyStore store(rng.bytes(32), &rng);
  const crypto::RsaKeyPair device_key = crypto::rsa_generate(rng, 1024);
  const SealedBlob sealed_card =
      store.seal("card", crypto::to_bytes("PAN=5105105105105100"));
  crypto::Bytes card;
  if (store.unseal(sealed_card, card) != UnsealStatus::kOk) return 1;
  std::puts("[vault]   payment credential unsealed");

  // --- step 3: TLS session to the merchant ---------------------------------
  const crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng, 1024);
  const crypto::RsaKeyPair merchant_key = crypto::rsa_generate(rng, 1024);
  CertificateAuthority ca("Payment Scheme Root", ca_key, 0, now * 2);
  const Certificate merchant_cert =
      ca.issue("merchant.example", merchant_key.pub, 0, now * 2);

  crypto::HmacDrbg crng(1), srng(2);
  HandshakeConfig ccfg;
  ccfg.rng = &crng;
  ccfg.now = now;
  ccfg.trusted_roots = {ca.root()};
  HandshakeConfig scfg;
  scfg.rng = &srng;
  scfg.now = now;
  scfg.cert_chain = {merchant_cert};
  scfg.private_key = &merchant_key.priv;

  TlsClient phone(ccfg);
  TlsServer merchant(scfg);
  run_handshake(phone, merchant);
  std::printf("[tls]     session up (%s)\n",
              suite_info(phone.summary().suite).name.c_str());

  // --- step 4: purchase over the protected channel --------------------------
  const crypto::Bytes order = crypto::cat(
      crypto::to_bytes("PURCHASE item=coffee amount=2.50 card="), card);
  const auto at_merchant = merchant.recv_data(phone.send_data(order));
  std::printf("[order]   merchant received %zu protected bytes\n",
              at_merchant[0].size());

  // --- step 5: non-repudiation — the device signs the receipt ----------------
  // (Section 2: an application-level mechanism "to provide additional
  // functionality, such as non-repudiation, that is not provided in the
  // transport-layer security protocol".)
  const crypto::Bytes receipt =
      crypto::to_bytes("RECEIPT merchant.example coffee 2.50 EUR ts=1050000000");
  const crypto::Bytes signature =
      crypto::rsa_sign_sha1(device_key.priv, receipt);
  const bool verified =
      crypto::rsa_verify_sha1(device_key.pub, receipt, signature);
  std::printf("[receipt] device-signed, merchant verification: %s\n",
              verified ? "ok" : "FAILED");

  std::puts("\npurchase complete — every layer of Figure 5 exercised.");
  return 0;
}
