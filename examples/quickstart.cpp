// Quickstart: establish a secure session between a mobile appliance and a
// server over the mapsec TLS-style stack, exchange application data, then
// reconnect with the abbreviated (resumed) handshake a constrained device
// prefers.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/handshake.hpp"

using namespace mapsec;
using namespace mapsec::protocol;

int main() {
  const std::uint64_t now = 1'050'000'000;  // the paper's era, 2003

  // --- one-time provisioning: a CA and a server identity ---------------
  crypto::HmacDrbg rng(2003);
  const crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng, 1024);
  const crypto::RsaKeyPair server_key = crypto::rsa_generate(rng, 1024);
  CertificateAuthority ca("MapSec Demo Root", ca_key, 0, now * 2);
  const Certificate server_cert =
      ca.issue("bank.example", server_key.pub, 0, now * 2);

  // --- endpoint configuration ------------------------------------------
  crypto::HmacDrbg client_rng(1), server_rng(2);
  HandshakeConfig client_cfg;
  client_cfg.rng = &client_rng;
  client_cfg.now = now;
  client_cfg.trusted_roots = {ca.root()};

  HandshakeConfig server_cfg;
  server_cfg.rng = &server_rng;
  server_cfg.now = now;
  server_cfg.cert_chain = {server_cert};
  server_cfg.private_key = &server_key.priv;

  // --- full handshake ----------------------------------------------------
  SessionCache cache;
  TlsClient client(client_cfg);
  TlsServer server(server_cfg, &cache);
  run_handshake(client, server);

  std::printf("handshake complete: suite=%s resumed=%s\n",
              suite_info(client.summary().suite).name.c_str(),
              client.summary().resumed ? "yes" : "no");
  std::printf("  client sent %zu wire bytes, server performed %d RSA "
              "private op(s)\n",
              client.summary().bytes_sent,
              server.summary().rsa_private_ops);

  // --- application data ---------------------------------------------------
  const auto request = crypto::to_bytes("BALANCE-QUERY account=42");
  const auto received = server.recv_data(client.send_data(request));
  std::printf("server received: %s\n",
              std::string(received[0].begin(), received[0].end()).c_str());
  const auto reply = crypto::to_bytes("BALANCE 1017.35 EUR");
  const auto got = client.recv_data(server.send_data(reply));
  std::printf("client received: %s\n",
              std::string(got[0].begin(), got[0].end()).c_str());

  // --- resumed handshake (no RSA: the battery-friendly reconnect) --------
  TlsClient client2(client_cfg);
  client2.set_resume_session(client.summary().session_id,
                             client.master_secret(),
                             client.summary().suite);
  TlsServer server2(server_cfg, &cache);
  run_handshake(client2, server2);
  std::printf("reconnect: resumed=%s, RSA ops on server=%d, wire bytes "
              "%zu (vs %zu full)\n",
              client2.summary().resumed ? "yes" : "no",
              server2.summary().rsa_private_ops,
              client2.summary().bytes_sent, client.summary().bytes_sent);
  return 0;
}
