// Wireless security, before and after — the trajectory the paper maps in
// Sections 2 and 3.1, executed:
//
//   1. GSM bearer encryption protects one hop and nothing more.
//   2. WEP: the 802.11 link layer falls to keystream reuse and FMS.
//   3. CCMP (the 802.11i enhancement): the same attacks bounce off.
//   4. End-to-end TLS on top: even the operator's gateway sees nothing.
//
// Build & run:  ./examples/wireless_evolution
#include <algorithm>
#include <cstdio>

#include "mapsec/attack/wep_attack.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/bearer.hpp"
#include "mapsec/protocol/ccmp.hpp"
#include "mapsec/protocol/handshake.hpp"

using namespace mapsec;
using namespace mapsec::protocol;

int main() {
  crypto::HmacDrbg rng(0x2003);
  const crypto::Bytes secret = crypto::to_bytes("user-login+password!");

  // --- 1. GSM bearer -----------------------------------------------------
  std::puts("[1] GSM bearer (A5/1, network-access domain only)");
  GsmLink gsm(rng.bytes(8));
  const auto trace =
      bearer_path_transfer(gsm, secret, GsmCipherMode::kA51);
  std::printf("    radio eavesdropper sees plaintext: %s\n",
              trace.over_the_air == secret ? "YES" : "no");
  std::printf("    base station/operator sees plaintext: %s\n",
              trace.at_base_station == secret ? "YES (protection ends here)"
                                              : "no");

  // --- 2. WEP falls -------------------------------------------------------
  std::puts("\n[2] 802.11 WEP");
  const crypto::Bytes wep_key = rng.bytes(5);
  {
    const auto f1 = wep_encapsulate(wep_key, {1, 1, 1},
                                    crypto::to_bytes("known beacon text!!!"));
    const auto f2 = wep_encapsulate(wep_key, {1, 1, 1}, secret);
    const auto recovered = attack::keystream_reuse_decrypt(
        f1, crypto::to_bytes("known beacon text!!!"), f2);
    std::printf("    IV collision recovers the secret: %s\n",
                std::equal(secret.begin(), secret.end(), recovered.begin())
                    ? "YES"
                    : "no");

    attack::FmsAttack fms(5);
    WepFrame check;
    crypto::Bytes snap = crypto::to_bytes("Xpayload");
    snap[0] = attack::kSnapHeaderByte;
    bool first = true;
    for (std::size_t b = 0; b < 5; ++b)
      for (int x = 0; x < 256; ++x) {
        const auto f = wep_encapsulate(
            wep_key,
            {static_cast<std::uint8_t>(b + 3), 255,
             static_cast<std::uint8_t>(x)},
            snap);
        if (first) {
          check = f;
          first = false;
        }
        fms.observe(f);
      }
    const auto k = fms.try_recover(check);
    std::printf("    FMS recovers the WEP key itself: %s\n",
                k && *k == wep_key ? "YES" : "no");
  }

  // --- 3. CCMP holds --------------------------------------------------------
  std::puts("\n[3] 802.11i CCMP (AES-CCM, per-frame PN)");
  {
    CcmpSender tx(rng.bytes(16));
    const auto f1 = tx.protect(crypto::to_bytes("hdr"), secret);
    const auto f2 = tx.protect(crypto::to_bytes("hdr"), secret);
    // Keystream reuse impossible: same plaintext, distinct PN/ciphertext.
    std::printf("    two frames of the same plaintext share keystream: %s\n",
                f1.body == f2.body ? "YES" : "no (PN never repeats)");
    std::printf("    first keystream byte exposed to FMS-style KSA bias: "
                "no (AES-CCM, no RC4 KSA)\n");
  }

  // --- 4. end-to-end TLS ------------------------------------------------------
  std::puts("\n[4] End-to-end TLS over the bearer (WAP 2.0 direction)");
  {
    const std::uint64_t now = 1'050'000'000;
    const crypto::RsaKeyPair ca_key = crypto::rsa_generate(rng, 1024);
    const crypto::RsaKeyPair srv_key = crypto::rsa_generate(rng, 1024);
    CertificateAuthority ca("Root", ca_key, 0, now * 2);
    const Certificate cert = ca.issue("server", srv_key.pub, 0, now * 2);

    crypto::HmacDrbg crng(1), srng(2);
    HandshakeConfig ccfg;
    ccfg.rng = &crng;
    ccfg.now = now;
    ccfg.trusted_roots = {ca.root()};
    HandshakeConfig scfg;
    scfg.rng = &srng;
    scfg.now = now;
    scfg.cert_chain = {cert};
    scfg.private_key = &srv_key.priv;
    TlsClient client(ccfg);
    TlsServer server(scfg);
    run_handshake(client, server);

    // The TLS record rides the GSM bearer; the base station now sees
    // only TLS ciphertext.
    const crypto::Bytes tls_record = client.send_data(secret);
    const auto hop = bearer_path_transfer(gsm, tls_record,
                                          GsmCipherMode::kA51);
    const bool gateway_sees_secret =
        std::search(hop.at_base_station.begin(), hop.at_base_station.end(),
                    secret.begin(), secret.end()) !=
        hop.at_base_station.end();
    std::printf("    operator/gateway can read the payload: %s\n",
                gateway_sees_secret ? "YES" : "no (end-to-end protected)");
    const auto delivered = server.recv_data(hop.delivered_to_server);
    std::printf("    server recovers the payload: %s\n",
                delivered.size() == 1 && delivered[0] == secret ? "yes"
                                                                : "NO");
  }

  std::puts("\nbearer -> broken link layer -> fixed link layer -> "
            "end-to-end: Section 2's argument, executed.");
  return 0;
}
