// Attack lab: the Section 3.4 threat catalogue, live. Mounts each
// implementation attack against the library's own crypto and shows the
// countermeasure shutting it down.
//
// Build & run:  ./examples/attack_lab
#include <cstdio>

#include "mapsec/attack/bleichenbacher.hpp"
#include "mapsec/attack/cbc_iv.hpp"
#include "mapsec/attack/dpa.hpp"
#include "mapsec/attack/fault.hpp"
#include "mapsec/attack/timing.hpp"
#include "mapsec/attack/wep_attack.hpp"
#include "mapsec/crypto/rng.hpp"

using namespace mapsec;
using namespace mapsec::attack;

int main() {
  crypto::HmacDrbg rng(0xA77AC);

  // --- 1. timing attack ---------------------------------------------------
  std::puts("[1] Timing attack on RSA (square-and-multiply victim)");
  {
    crypto::HmacDrbg krng(1);
    const crypto::RsaKeyPair key = crypto::rsa_generate(krng, 96);
    TimingModel model;
    TimingOracle leaky(key.priv, model, ExpStrategy::kSquareAndMultiply, 2);
    auto result = timing_attack(leaky, rng, 6000, key.priv.d.bit_length());
    std::printf("    leaky implementation:   %5.1f%% of key bits, key %s\n",
                result.correct_bit_fraction * 100,
                result.verified ? "RECOVERED" : "safe");
    TimingOracle hardened(key.priv, model, ExpStrategy::kMontgomeryLadder, 3);
    result = timing_attack(hardened, rng, 6000, key.priv.d.bit_length());
    std::printf("    Montgomery ladder:      %5.1f%% of key bits, key %s\n",
                result.correct_bit_fraction * 100,
                result.verified ? "RECOVERED" : "safe");
  }

  // --- 2. differential power analysis ------------------------------------
  std::puts("\n[2] DPA on DES round 1 (Hamming-weight power traces)");
  {
    crypto::HmacDrbg krng(4);
    const crypto::Bytes key = krng.bytes(8);
    PowerModel model;
    DesPowerOracle plain(key, model, /*masked=*/false, 5);
    auto result = dpa_attack(plain, rng, 800);
    std::printf("    unmasked S-boxes: %d/8 subkey chunks, 56-bit key %s\n",
                result.correct_chunks,
                result.full_key_recovered ? "RECOVERED" : "safe");
    DesPowerOracle masked(key, model, /*masked=*/true, 6);
    result = dpa_attack(masked, rng, 800);
    std::printf("    masked S-boxes:   %d/8 subkey chunks, 56-bit key %s\n",
                result.correct_chunks,
                result.full_key_recovered ? "RECOVERED" : "safe");
  }

  // --- 3. fault attack on RSA-CRT ------------------------------------------
  std::puts("\n[3] Fault attack on RSA-CRT signatures (Boneh-DeMillo-Lipton)");
  {
    crypto::HmacDrbg krng(7);
    const crypto::RsaKeyPair key = crypto::rsa_generate(krng, 512);
    FaultySigner signer(key.priv);
    const crypto::BigInt m = crypto::BigInt::random_below(rng, key.pub.n);
    const auto broken =
        bdl_factor(key.pub, m, signer.sign_faulty(m, FaultTarget::kExpModP, 42));
    std::printf("    one glitched signature: modulus %s\n",
                broken.success ? "FACTORED" : "safe");
    if (broken.success)
      std::printf("      p = %s...\n", broken.factor.to_hex().substr(0, 24).c_str());
    const auto checked = bdl_factor(
        key.pub, m, signer.sign_protected(m, FaultTarget::kExpModP, 42));
    std::printf("    with verify-before-release: modulus %s\n",
                checked.success ? "FACTORED" : "safe");
  }

  // --- 4. WEP ------------------------------------------------------------------
  std::puts("\n[4] WEP: keystream reuse + FMS weak-IV key recovery");
  {
    crypto::HmacDrbg krng(8);
    const crypto::Bytes key = krng.bytes(5);
    const auto f1 = protocol::wep_encapsulate(
        key, {9, 9, 9}, crypto::to_bytes("known broadcast text"));
    const auto f2 = protocol::wep_encapsulate(
        key, {9, 9, 9}, crypto::to_bytes("secret login packet!"));
    const auto recovered = keystream_reuse_decrypt(
        f1, crypto::to_bytes("known broadcast text"), f2);
    std::printf("    IV collision: \"%s\"\n",
                std::string(recovered.begin(), recovered.end()).c_str());

    FmsAttack fms(5);
    protocol::WepFrame check;
    crypto::Bytes payload = crypto::to_bytes("Xframe");
    payload[0] = kSnapHeaderByte;
    bool first = true;
    for (std::size_t b = 0; b < 5; ++b) {
      for (int x = 0; x < 256; ++x) {
        const auto frame = protocol::wep_encapsulate(
            key,
            {static_cast<std::uint8_t>(b + 3), 255,
             static_cast<std::uint8_t>(x)},
            payload);
        if (first) {
          check = frame;
          first = false;
        }
        fms.observe(frame);
      }
    }
    const auto k = fms.try_recover(check);
    std::printf("    FMS from %zu frames: key %s\n", fms.frames_observed(),
                k && *k == key
                    ? ("RECOVERED (" + crypto::to_hex(*k) + ")").c_str()
                    : "safe");
  }

  // --- 5. protocol-level attacks ---------------------------------------------
  std::puts("\n[5] Protocol-level: chained-IV CBC + Bleichenbacher oracle");
  {
    // SSL 3.0-style chained IVs: a 10^4-entry PIN dictionary falls.
    CbcChannelOracle legacy(rng.bytes(16),
                            CbcChannelOracle::IvMode::kChained, &rng);
    const auto iv = *legacy.predict_next_iv();
    const auto ct = legacy.transmit_secret(pin_block(4711));
    const auto hit = cbc_iv_dictionary_attack(legacy, iv, ct,
                                              pin_candidate_blocks());
    std::printf("    chained IVs: PIN %s after %zu guesses\n",
                hit.recovered ? "RECOVERED" : "safe", hit.guesses_tried);
    CbcChannelOracle fixed(rng.bytes(16),
                           CbcChannelOracle::IvMode::kUnpredictable, &rng);
    const auto ct2 = fixed.transmit_secret(pin_block(4711));
    const auto miss = cbc_iv_dictionary_attack(
        fixed, fixed.last_record_iv(), ct2, pin_candidate_blocks());
    std::printf("    per-record IVs (TLS 1.1 fix): PIN %s\n",
                miss.recovered ? "RECOVERED" : "safe");

    // Bleichenbacher: one leaky padding bit per query.
    crypto::HmacDrbg krng(9);
    const crypto::RsaKeyPair key = crypto::rsa_generate(krng, 256);
    const crypto::Bytes pm = crypto::to_bytes("premaster");
    const crypto::Bytes c = crypto::rsa_encrypt_pkcs1(key.pub, pm, rng);
    PaddingOracle oracle(key.priv, PaddingOracle::Strictness::kPrefixOnly);
    const auto bb = bleichenbacher_attack(key.pub, c, oracle);
    std::printf("    padding oracle: premaster %s after %llu queries\n",
                bb.success ? "RECOVERED" : "safe",
                static_cast<unsigned long long>(bb.oracle_queries));
  }
  return 0;
}
