// Battery planner: the Section 3.2/3.3 models applied to a product
// question — "this handset must sustain N secure transactions per day and
// a given secure data rate; which processor + acceleration tier survives
// on this battery, and for how long?"
//
// Build & run:  ./examples/battery_planner
#include <cstdio>

#include "mapsec/analysis/table.hpp"
#include "mapsec/platform/accelerator.hpp"
#include "mapsec/platform/energy.hpp"
#include "mapsec/platform/gap.hpp"

using namespace mapsec;
using namespace mapsec::platform;

int main() {
  // Product requirements of a hypothetical 2003 m-commerce handset.
  constexpr double kSecureMbps = 2.0;        // WLAN browsing, protected
  constexpr double kHandshakesPerDay = 200;  // connections
  constexpr double kSecureMbPerDay = 50.0;   // bulk data
  constexpr double kBatteryKj = 10.0;        // handset battery (~2.8 Wh)

  auto model = WorkloadModel::paper_calibrated();
  model.set_protocol_instr_per_byte(25.0);

  std::puts("Battery & capability planning for a secure handset");
  std::printf("  requirement: %.1f Mbps secure data, %.0f handshakes/day, "
              "%.0f MB/day, %.0f KJ battery\n\n",
              kSecureMbps, kHandshakesPerDay, kSecureMbPerDay, kBatteryKj);

  analysis::Table t({"processor", "tier", "3DES+SHA1 Mbps", "meets rate",
                     "security mJ/day", "days of security budget"});
  for (const Processor& proc :
       {Processor::arm7(), Processor::strongarm_sa1100()}) {
    for (const AccelProfile& tier : AccelProfile::all_tiers()) {
      const SecurityPlatform plat(proc, tier, model);
      const double rate =
          plat.achievable_mbps(Primitive::kDes3, Primitive::kSha1);
      const double mj_per_day =
          kHandshakesPerDay * plat.pk_energy_mj(Primitive::kRsa1024Private) +
          plat.bulk_energy_mj(Primitive::kDes3, Primitive::kSha1,
                              kSecureMbPerDay * 1e6);
      const double days = kBatteryKj * 1e6 / mj_per_day;
      t.add_row({proc.name, accel_tier_name(tier.tier),
                 analysis::fmt(rate, 2), rate >= kSecureMbps ? "yes" : "no",
                 analysis::fmt(mj_per_day, 0), analysis::fmt(days, 1)});
    }
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("\n(\"days of security budget\" = how long the battery lasts if "
            "spent only on security processing; the real budget is what is "
            "left after radio + application load — the paper's battery "
            "gap.)");
  return 0;
}
