#include "mapsec/chaos/wire_mutator.hpp"

#include <algorithm>

namespace mapsec::chaos {

namespace {

/// TLS record header: type(1) version(2) length(2). The session layer
/// prepends one kind byte, so record offsets start at 1.
constexpr std::size_t kKindSize = 1;
constexpr std::size_t kRecordHeader = 5;

}  // namespace

crypto::Bytes WireMutator::next() {
  const auto strategy = static_cast<Strategy>(
      rng_.below(static_cast<std::uint64_t>(Strategy::kCount)));
  static const crypto::Bytes kNoSpecimen;
  const crypto::Bytes& specimen =
      corpus_.empty() ? kNoSpecimen : corpus_[rng_.below(corpus_.size())];
  crypto::Bytes out = mutate(specimen, strategy);
  if (out == specimen && !out.empty()) {
    // Never emit a valid frame: force at least one flipped bit.
    out[rng_.below(out.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.below(8));
  }
  return out;
}

crypto::Bytes WireMutator::mutate(const crypto::Bytes& specimen,
                                  Strategy strategy) {
  switch (strategy) {
    case Strategy::kTruncate: {
      if (specimen.size() < 2) return specimen;
      const std::size_t cut = 1 + rng_.below(specimen.size() - 1);
      return crypto::Bytes(specimen.begin(),
                           specimen.begin() + static_cast<long>(cut));
    }
    case Strategy::kBitFlip: {
      if (specimen.empty()) return specimen;
      crypto::Bytes out = specimen;
      const std::size_t flips = 1 + rng_.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        out[rng_.below(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.below(8));
      return out;
    }
    case Strategy::kKindSwap: {
      if (specimen.empty()) return specimen;
      crypto::Bytes out = specimen;
      // Half the time a plausible kind (0x10..0x15), half anything.
      out[0] = rng_.below(2) == 0
                   ? static_cast<std::uint8_t>(0x10 + rng_.below(6))
                   : static_cast<std::uint8_t>(rng_.below(256));
      return out;
    }
    case Strategy::kRecordLength: {
      if (specimen.size() < kKindSize + kRecordHeader) return specimen;
      crypto::Bytes out = specimen;
      // Length field is bytes [4,5) of the record; lie big, small or
      // maximal.
      const std::size_t off = kKindSize + 3;
      switch (rng_.below(3)) {
        case 0:  // huge: claims more payload than the frame carries
          out[off] = 0xFF;
          out[off + 1] = 0xFF;
          break;
        case 1:  // short: record ends mid-payload
          out[off] = 0;
          out[off + 1] = static_cast<std::uint8_t>(rng_.below(4));
          break;
        default:  // off-by-some
          out[off + 1] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
          break;
      }
      return out;
    }
    case Strategy::kSplice: {
      if (corpus_.size() < 2 || specimen.empty()) return specimen;
      const crypto::Bytes& other = corpus_[rng_.below(corpus_.size())];
      if (other.empty()) return specimen;
      const std::size_t head = 1 + rng_.below(specimen.size());
      const std::size_t tail_at = rng_.below(other.size());
      crypto::Bytes out(specimen.begin(),
                        specimen.begin() + static_cast<long>(head));
      out.insert(out.end(), other.begin() + static_cast<long>(tail_at),
                 other.end());
      return out;
    }
    case Strategy::kGrow: {
      crypto::Bytes out = specimen;
      const crypto::Bytes extra = rng_.bytes(1 + rng_.below(512));
      out.insert(out.end(), extra.begin(), extra.end());
      return out;
    }
    case Strategy::kGarbage:
      return rng_.bytes(rng_.below(256));
    case Strategy::kEmpty:
      return rng_.below(2) == 0
                 ? crypto::Bytes{}
                 : crypto::Bytes{static_cast<std::uint8_t>(rng_.below(256))};
    case Strategy::kCount:
      break;
  }
  return specimen;
}

}  // namespace mapsec::chaos
