#include "mapsec/chaos/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapsec/chaos/adversary.hpp"
#include "mapsec/chaos/exhaustible_rng.hpp"
#include "mapsec/crypto/dispatch.hpp"
#include "mapsec/crypto/sha256.hpp"
#include "mapsec/server/sharded_server.hpp"
#include "mapsec/server/supervisor.hpp"

namespace mapsec::chaos {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  return seed ^ (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
}

net::SimTime exponential_us(crypto::Rng& rng, double mean_us) {
  const double u =
      (static_cast<double>(rng.next_u32()) + 1.0) / 4294967297.0;
  return static_cast<net::SimTime>(-mean_us * std::log(u));
}

/// Faults flip process-global dispatch state; restore it however the
/// run ends.
struct DispatchGuard {
  bool prev = crypto::dispatch::scalar_forced();
  ~DispatchGuard() { crypto::dispatch::force_scalar(prev); }
};

/// The bearer's current fault state, composed over the base config.
/// Blackouts nest (depth counter) so overlapping plans recover exactly
/// when the last outage lifts.
struct Weather {
  int blackout_depth = 0;
  bool collapsed = false;
  double collapse_bytes_per_sec = 0;
  bool burst = false;
  double ge_p_good_to_bad = 0.05;
  double ge_p_bad_to_good = 0.30;
  double ge_loss_bad = 0.9;
};

/// Memory peaks may legitimately overshoot their configured cap by the
/// final message/batch that tripped the limit; anything past this slop
/// is an unbounded-growth bug.
constexpr std::uint64_t kMemorySlop = 32 * 1024;

}  // namespace

CampaignReport CampaignRunner::run() {
  if (config_.shards > 0) return run_sharded();

  for (const Fault& fault : config_.faults) {
    if (std::get_if<ShardCrash>(&fault) != nullptr ||
        std::get_if<ShardHang>(&fault) != nullptr ||
        std::get_if<ShardWorkerStall>(&fault) != nullptr ||
        std::get_if<ShardOffloadStall>(&fault) != nullptr)
      throw std::invalid_argument(
          "chaos: Shard* lifecycle faults need a sharded campaign "
          "(CampaignConfig::shards >= 1)");
  }

  DispatchGuard dispatch_guard;

  // Declaration order doubles as lifetime order (see LoadGenerator):
  // channels outlive server and clients, everything outlives the queue's
  // drained events.
  net::EventQueue queue;
  server::BoundedSessionCache cache(queue, config_.cache);
  std::vector<std::unique_ptr<net::DuplexChannel>> channels;

  // The server's entropy source is exhaustible — the RngExhaustion fault
  // drains it live; until then it behaves exactly like a seeded DRBG.
  ExhaustibleRng server_rng(mix(config_.seed, 0x5E4));
  server::ServerConfig server_config = config_.server;
  server_config.handshake.rng = &server_rng;
  server::SecureSessionServer server(queue, server_config, &cache);

  crypto::HmacDrbg client_engine_rng(mix(config_.seed, 0xE17));
  engine::ProtocolEngine client_engine(config_.server.engine_profile,
                                       &client_engine_rng);
  client_engine.load_program("ccmp-in", engine::ccmp_inbound_program());

  // ---- bearer weather -------------------------------------------------
  Weather weather;
  std::vector<net::LossyChannel*> live_channels;

  auto apply_weather = [&](net::LossyChannel& ch) {
    net::ChannelConfig& cfg = ch.mutable_config();
    const net::ChannelConfig& base = config_.channel;
    cfg.loss_rate = weather.blackout_depth > 0 ? 1.0 : base.loss_rate;
    cfg.bytes_per_sec = weather.collapsed ? weather.collapse_bytes_per_sec
                                          : base.bytes_per_sec;
    cfg.ge_enabled = base.ge_enabled || weather.burst;
    if (weather.burst) {
      cfg.ge_p_good_to_bad = weather.ge_p_good_to_bad;
      cfg.ge_p_bad_to_good = weather.ge_p_bad_to_good;
      cfg.ge_loss_bad = weather.ge_loss_bad;
    } else {
      cfg.ge_p_good_to_bad = base.ge_p_good_to_bad;
      cfg.ge_p_bad_to_good = base.ge_p_bad_to_good;
      cfg.ge_loss_bad = base.ge_loss_bad;
    }
  };
  auto reapply_all = [&] {
    for (net::LossyChannel* ch : live_channels) apply_weather(*ch);
  };

  // ---- shared connect path -------------------------------------------
  // Fresh duplex channel per attempt (stale frames can never cross
  // connections), registered with the weather so faults scheduled later
  // reach channels created earlier and vice versa.
  std::uint64_t connect_counter = 0;
  auto make_link = [&](const net::LinkConfig& link_cfg) {
    auto channel = std::make_unique<net::DuplexChannel>(
        queue, config_.channel, config_.channel,
        mix(config_.seed, 0xC4A17 + connect_counter));
    ++connect_counter;
    apply_weather(channel->a_to_b());
    apply_weather(channel->b_to_a());
    server.accept(channel->b_to_a(), channel->a_to_b());
    auto link = std::make_unique<net::ReliableLink>(
        queue, channel->a_to_b(), channel->b_to_a(), link_cfg);
    live_channels.push_back(&channel->a_to_b());
    live_channels.push_back(&channel->b_to_a());
    channels.push_back(std::move(channel));
    return link;
  };

  // ---- honest fleet ---------------------------------------------------
  std::vector<std::unique_ptr<server::SessionClient>> clients;
  clients.reserve(config_.honest_clients);
  crypto::HmacDrbg arrival_rng(mix(config_.seed, 0xA881));
  net::SimTime arrival = 0;
  for (std::size_t i = 0; i < config_.honest_clients; ++i) {
    auto client = std::make_unique<server::SessionClient>(
        queue, config_.client, static_cast<std::uint32_t>(i), client_engine,
        mix(config_.seed, 0xC11E57 + i));
    client->set_connect(
        [&, link_cfg = config_.client.link](server::SessionClient&) {
          return make_link(link_cfg);
        });
    queue.schedule_at(arrival, [c = client.get()] { c->start(); });
    arrival +=
        config_.poisson_arrivals
            ? exponential_us(arrival_rng,
                             static_cast<double>(config_.mean_interarrival_us))
            : config_.mean_interarrival_us;
    clients.push_back(std::move(client));
  }

  // ---- fault plan -----------------------------------------------------
  std::vector<std::unique_ptr<FloodClient>> floods;
  std::vector<std::unique_ptr<MalformedClient>> vandals;
  std::uint64_t fault_index = 0;

  for (const Fault& fault : config_.faults) {
    const std::uint64_t fseed = mix(config_.seed, 0xFA017 + fault_index);
    ++fault_index;

    if (const auto* f = std::get_if<Blackout>(&fault)) {
      queue.schedule_at(f->at_us, [&] {
        ++weather.blackout_depth;
        reapply_all();
      });
      queue.schedule_at(f->at_us + f->duration_us, [&] {
        --weather.blackout_depth;
        reapply_all();
      });
    } else if (const auto* f = std::get_if<BearerFlap>(&fault)) {
      for (int i = 0; i < f->flaps; ++i) {
        const net::SimTime start =
            f->at_us + static_cast<net::SimTime>(i) * f->period_us;
        queue.schedule_at(start, [&] {
          ++weather.blackout_depth;
          reapply_all();
        });
        queue.schedule_at(start + f->outage_us, [&] {
          --weather.blackout_depth;
          reapply_all();
        });
      }
    } else if (const auto* f = std::get_if<BurstLoss>(&fault)) {
      queue.schedule_at(f->at_us, [&, p = *f] {
        weather.burst = true;
        weather.ge_p_good_to_bad = p.p_good_to_bad;
        weather.ge_p_bad_to_good = p.p_bad_to_good;
        weather.ge_loss_bad = p.loss_bad;
        reapply_all();
      });
      if (f->duration_us != 0)
        queue.schedule_at(f->at_us + f->duration_us, [&] {
          weather.burst = false;
          reapply_all();
        });
    } else if (const auto* f = std::get_if<BandwidthCollapse>(&fault)) {
      queue.schedule_at(f->at_us, [&, bps = f->bytes_per_sec] {
        weather.collapsed = true;
        weather.collapse_bytes_per_sec = bps;
        reapply_all();
      });
      if (f->duration_us != 0)
        queue.schedule_at(f->at_us + f->duration_us, [&] {
          weather.collapsed = false;
          reapply_all();
        });
    } else if (const auto* f = std::get_if<DispatchFailure>(&fault)) {
      queue.schedule_at(f->at_us,
                        [] { crypto::dispatch::force_scalar(true); });
      if (f->duration_us != 0)
        queue.schedule_at(f->at_us + f->duration_us,
                          [prev = dispatch_guard.prev] {
                            crypto::dispatch::force_scalar(prev);
                          });
    } else if (const auto* f = std::get_if<RngExhaustion>(&fault)) {
      queue.schedule_at(f->at_us, [&] { server_rng.exhaust(); });
      queue.schedule_at(f->at_us + f->duration_us,
                        [&] { server_rng.refill(); });
    } else if (const auto* f = std::get_if<WorkerStall>(&fault)) {
      queue.schedule_at(f->at_us, [&, w = *f] {
        server.pipeline_for_chaos().inject_worker_stall(w.worker, w.stall_ns);
      });
      if (f->duration_us != 0)
        queue.schedule_at(f->at_us + f->duration_us, [&, w = *f] {
          server.pipeline_for_chaos().inject_worker_stall(w.worker, 0);
        });
    } else if (const auto* f = std::get_if<OffloadStall>(&fault)) {
      const auto stall_set = [&](const OffloadStall& w, std::uint64_t ns) {
        engine::OffloadEngine* off = server.offload_for_chaos();
        if (off == nullptr) return;  // inline pk mode: nothing to stall
        if (w.all_workers) {
          for (std::size_t i = 0; i < off->num_workers(); ++i)
            off->inject_worker_stall(i, ns);
        } else {
          off->inject_worker_stall(w.worker, ns);
        }
      };
      queue.schedule_at(f->at_us,
                        [&, stall_set, w = *f] { stall_set(w, w.stall_ns); });
      if (f->duration_us != 0)
        queue.schedule_at(f->at_us + f->duration_us,
                          [&, stall_set, w = *f] { stall_set(w, 0); });
    } else if (const auto* f = std::get_if<HandshakeFlood>(&fault)) {
      for (int a = 0; a < f->attackers; ++a) {
        FloodConfig fc;
        fc.handshake = config_.client.handshake;
        fc.link = config_.client.link;
        fc.connections = f->connections_each;
        fc.interarrival_us = f->interarrival_us;
        fc.reach_key_exchange = f->reach_key_exchange;
        auto attacker = std::make_unique<FloodClient>(
            queue, std::move(fc),
            static_cast<std::uint32_t>(0xF000 + floods.size()),
            mix(fseed, 0xDD05 + a));
        attacker->set_connect(
            [&, link_cfg = config_.client.link](FloodClient&) {
              return make_link(link_cfg);
            });
        queue.schedule_at(f->at_us, [p = attacker.get()] { p->start(); });
        floods.push_back(std::move(attacker));
      }
    } else if (const auto* f = std::get_if<MalformedTraffic>(&fault)) {
      for (int c = 0; c < f->clients; ++c) {
        MalformedConfig mc;
        mc.link = config_.client.link;
        mc.connections = f->connections_each;
        mc.messages_per_connection = f->messages_per_connection;
        mc.interarrival_us = f->interarrival_us;
        mc.message_gap_us = f->message_gap_us;
        auto vandal = std::make_unique<MalformedClient>(
            queue, std::move(mc),
            static_cast<std::uint32_t>(0xBAD0 + vandals.size()),
            make_seeded_mutator(mix(fseed, 0x3AD + c),
                                config_.client.handshake));
        vandal->set_connect(
            [&, link_cfg = config_.client.link](MalformedClient&) {
              return make_link(link_cfg);
            });
        queue.schedule_at(f->at_us, [p = vandal.get()] { p->start(); });
        vandals.push_back(std::move(vandal));
      }
    } else if (const auto* f = std::get_if<TicketKeyRotation>(&fault)) {
      for (int r = 0; r < f->rotations; ++r) {
        const net::SimTime when =
            f->at_us + static_cast<net::SimTime>(r) * f->period_us;
        queue.schedule_at(when, [&] { server.rotate_ticket_key(); });
      }
    }
  }

  // ---- run ------------------------------------------------------------
  const std::size_t executed = queue.run_all(config_.max_events);

  // ---- judge ----------------------------------------------------------
  CampaignReport report;
  report.server = server.stats();
  report.drained = executed < config_.max_events;
  report.open_at_end = server.open_connections();
  report.conserved = server.stats_conserved();
  report.degraded_time_us = server.degraded_time_us();
  report.degraded_transitions = report.server.degraded_transitions;
  report.sim_duration_s = static_cast<double>(queue.now()) / 1e6;

  crypto::Bytes digest_stream;
  for (const auto& client : clients) {
    for (const server::SessionRecord& record : client->sessions()) {
      ++report.sessions_attempted;
      if (record.completed) ++report.sessions_completed;
      if (record.failed) ++report.sessions_failed;
      if (!record.echo_ok) ++report.echo_mismatches;
      report.honest_refused_attempts +=
          static_cast<std::size_t>(record.refused_attempts);
    }
    digest_stream.insert(digest_stream.end(),
                         client->transcript_digest().begin(),
                         client->transcript_digest().end());
  }
  report.fleet_digest = crypto::Sha256::hash(digest_stream);

  for (const auto& flood : floods) {
    report.attack_connections += flood->stats().connections_opened;
    report.attack_refused += flood->stats().refused;
    report.attack_bytes += flood->stats().bytes_sent;
  }
  for (const auto& vandal : vandals) {
    report.attack_connections += vandal->stats().connections_opened;
    report.malformed_messages += vandal->stats().messages_sent;
    report.attack_bytes += vandal->stats().bytes_sent;
  }

  report.handshake_energy_mj =
      static_cast<double>(report.server.handshake_bytes_rx) / 1024.0 *
          config_.energy.rx_mj_per_kb +
      static_cast<double>(report.server.handshake_bytes_tx) / 1024.0 *
          config_.energy.tx_mj_per_kb +
      static_cast<double>(report.server.handshake_rsa_private_ops) *
          config_.rsa_mj_per_op;
  if (report.attack_bytes > 0)
    report.mj_per_attack_byte =
        report.handshake_energy_mj /
        static_cast<double>(report.attack_bytes);

  // ---- invariants -----------------------------------------------------
  auto flag = [&](const char* what) {
    if (!report.invariant_failures.empty())
      report.invariant_failures += "; ";
    report.invariant_failures += what;
  };
  if (!report.drained) flag("event budget exhausted (possible livelock)");
  if (report.open_at_end != 0) flag("connections left open after drain");
  if (!report.conserved) flag("connection accounting not conserved");
  if (report.echo_mismatches != 0) flag("surviving session echo mismatch");
  if (config_.server.max_pending_echo_bytes != 0 &&
      report.server.peak_pending_echo_bytes >
          config_.server.max_pending_echo_bytes + kMemorySlop)
    flag("pending-echo memory exceeded its bound");
  if (config_.server.max_deferred_appdata_bytes != 0 &&
      report.server.peak_deferred_bytes >
          config_.server.max_deferred_appdata_bytes + kMemorySlop)
    flag("deferred-appdata memory exceeded its bound");

  return report;
}

CampaignReport CampaignRunner::run_sharded() {
  const std::size_t num_shards = config_.shards;

  // Reject faults that cannot be delivered correctly across
  // concurrently-running shards BEFORE building any world. Stalls have
  // shard-scoped replacements; the process-global pair has none.
  for (const Fault& fault : config_.faults) {
    if (std::get_if<DispatchFailure>(&fault) != nullptr ||
        std::get_if<RngExhaustion>(&fault) != nullptr)
      throw std::invalid_argument(
          "chaos: DispatchFailure/RngExhaustion flip process-global state "
          "(crypto dispatch, the one exhaustible rng) and cannot be "
          "delivered at a deterministic simulated instant across "
          "concurrently-running shards");
    if (std::get_if<WorkerStall>(&fault) != nullptr ||
        std::get_if<OffloadStall>(&fault) != nullptr)
      throw std::invalid_argument(
          "chaos: WorkerStall/OffloadStall address a worker index with no "
          "owning shard; use ShardWorkerStall/ShardOffloadStall, which "
          "ride one shard's own queue");
    if (const auto* f = std::get_if<ShardCrash>(&fault)) {
      if (f->shard >= num_shards)
        throw std::invalid_argument("chaos: ShardCrash.shard out of range");
    } else if (const auto* f = std::get_if<ShardHang>(&fault)) {
      if (f->shard >= num_shards)
        throw std::invalid_argument("chaos: ShardHang.shard out of range");
    } else if (const auto* f = std::get_if<ShardWorkerStall>(&fault)) {
      if (f->shard >= num_shards)
        throw std::invalid_argument(
            "chaos: ShardWorkerStall.shard out of range");
    } else if (const auto* f = std::get_if<ShardOffloadStall>(&fault)) {
      if (f->shard >= num_shards)
        throw std::invalid_argument(
            "chaos: ShardOffloadStall.shard out of range");
    }
  }

  // Per-shard worlds, declared before the tier (lifetime order: channels
  // outlive servers). Each shard's thread only ever touches index s of
  // these — the same disjoint-world contract ShardExecutor enforces for
  // the queues. Honest attempt ordinals live in a per-key vector (each
  // element touched only by the thread currently running that client's
  // world) so a failover migration continues the count instead of
  // restarting it; attack keys never migrate, so per-shard maps suffice.
  std::vector<std::vector<std::unique_ptr<net::DuplexChannel>>> channels(
      num_shards);
  std::vector<Weather> weather(num_shards);
  std::vector<std::vector<net::LossyChannel*>> live_channels(num_shards);
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> attempts(
      num_shards);
  std::vector<std::uint32_t> honest_attempts(config_.honest_clients, 0);

  server::ShardedServerConfig scfg;
  scfg.shards = num_shards;
  scfg.slice_us = config_.slice_us;
  scfg.server = config_.server;
  scfg.cache = config_.cache;
  server::ShardSupervisor tier(scfg);
  tier.set_watchdog_wall_ms(config_.watchdog_wall_ms);

  std::vector<std::unique_ptr<crypto::HmacDrbg>> engine_rngs;
  std::vector<std::unique_ptr<engine::ProtocolEngine>> engines;
  for (std::size_t s = 0; s < num_shards; ++s) {
    engine_rngs.push_back(
        std::make_unique<crypto::HmacDrbg>(mix(config_.seed, 0xE17 + s)));
    engines.push_back(std::make_unique<engine::ProtocolEngine>(
        config_.server.engine_profile, engine_rngs.back().get()));
    engines.back()->load_program("ccmp-in", engine::ccmp_inbound_program());
  }

  auto apply_weather = [this](const Weather& w, net::LossyChannel& ch) {
    net::ChannelConfig& cfg = ch.mutable_config();
    const net::ChannelConfig& base = config_.channel;
    cfg.loss_rate = w.blackout_depth > 0 ? 1.0 : base.loss_rate;
    cfg.bytes_per_sec =
        w.collapsed ? w.collapse_bytes_per_sec : base.bytes_per_sec;
    cfg.ge_enabled = base.ge_enabled || w.burst;
    if (w.burst) {
      cfg.ge_p_good_to_bad = w.ge_p_good_to_bad;
      cfg.ge_p_bad_to_good = w.ge_p_bad_to_good;
      cfg.ge_loss_bad = w.ge_loss_bad;
    } else {
      cfg.ge_p_good_to_bad = base.ge_p_good_to_bad;
      cfg.ge_p_bad_to_good = base.ge_p_bad_to_good;
      cfg.ge_loss_bad = base.ge_loss_bad;
    }
  };
  auto reapply_shard = [&](std::size_t s) {
    for (net::LossyChannel* ch : live_channels[s])
      apply_weather(weather[s], *ch);
  };

  // Shared connect path, parameterised by connection key: the channel,
  // link, accept and bookkeeping all live on the key's shard. The wire
  // identity is (key, per-key attempt ordinal) — independent of shard
  // count AND of placement, so every on-the-wire byte is too (which is
  // why a failed-over client's transcript matches an undisturbed run's).
  // A dead shard simply never answers: the dial still burns the attempt
  // (bound clients are always routed to a live shard, so only attack
  // keys whose stable home is down ever hit this).
  auto make_link = [&](std::uint32_t conn_key,
                       const net::LinkConfig& link_cfg) {
    const std::size_t s = tier.shard_of(conn_key);
    net::EventQueue& queue = tier.queue(s);
    const std::uint32_t attempt =
        conn_key < honest_attempts.size() ? honest_attempts[conn_key]++
                                          : attempts[s][conn_key]++;
    const std::uint32_t wire_id = server::make_wire_id(conn_key, attempt);
    auto channel = std::make_unique<net::DuplexChannel>(
        queue, config_.channel, config_.channel,
        mix(config_.seed, 0xC4A17 + wire_id));
    apply_weather(weather[s], channel->a_to_b());
    apply_weather(weather[s], channel->b_to_a());
    if (tier.shard_alive(s)) {
      server::SecureSessionServer::AcceptOptions opts;
      opts.wire_id = wire_id;
      opts.rng_seed = mix(mix(config_.seed, 0x5E4), wire_id);
      tier.accept(conn_key, channel->b_to_a(), channel->a_to_b(), opts);
    }
    auto link = std::make_unique<net::ReliableLink>(
        queue, channel->a_to_b(), channel->b_to_a(), link_cfg);
    live_channels[s].push_back(&channel->a_to_b());
    live_channels[s].push_back(&channel->b_to_a());
    channels[s].push_back(std::move(channel));
    return link;
  };

  // ---- honest fleet ---------------------------------------------------
  // Honest clients BIND: the supervisor routes them by rendezvous over
  // the live shards and migrates them (with their queue rebinding and
  // ticket-first reconnect) when their shard dies. Client seeds and
  // arrival times are placement-independent, so the fleet digest is too.
  std::vector<std::unique_ptr<server::SessionClient>> clients;
  clients.reserve(config_.honest_clients);
  crypto::HmacDrbg arrival_rng(mix(config_.seed, 0xA881));
  net::SimTime arrival = 0;
  for (std::size_t i = 0; i < config_.honest_clients; ++i) {
    const auto key = static_cast<std::uint32_t>(i);
    const std::size_t s =
        server::shard_for_live(key, num_shards, tier.routable());
    auto client = std::make_unique<server::SessionClient>(
        tier.queue(s), config_.client, key, *engines[s],
        mix(config_.seed, 0xC11E57 + i));
    client->set_connect(
        [&make_link, key, link_cfg = config_.client.link](
            server::SessionClient&) { return make_link(key, link_cfg); });
    tier.bind_client(key, client.get());
    client->schedule_start(arrival);
    arrival +=
        config_.poisson_arrivals
            ? exponential_us(arrival_rng,
                             static_cast<double>(config_.mean_interarrival_us))
            : config_.mean_interarrival_us;
    clients.push_back(std::move(client));
  }

  // ---- fault plan -----------------------------------------------------
  // Bearer weather is shard-local state flipped by identical events
  // scheduled on EVERY shard's queue at the same simulated times, so each
  // shard's bearer degrades and recovers in lockstep without any
  // cross-thread traffic. The flips are kept as a PLAN (not just queue
  // events): a hard-killed shard loses its scheduled flips with the rest
  // of its world, so the rejoin hook below replays the past ones into a
  // fresh Weather and re-schedules the future ones.
  std::vector<std::unique_ptr<FloodClient>> floods;
  std::vector<std::unique_ptr<MalformedClient>> vandals;
  std::uint64_t fault_index = 0;
  std::uint64_t planned_crashes = 0;
  std::uint64_t planned_drains = 0;
  std::uint64_t planned_hangs = 0;
  std::uint64_t planned_rejoins = 0;

  struct WeatherFlip {
    net::SimTime at = 0;
    std::function<void(Weather&)> fn;
  };
  std::vector<WeatherFlip> weather_plan;
  auto weather_event = [&](net::SimTime at, std::function<void(Weather&)> fn) {
    weather_plan.push_back({at, std::move(fn)});
  };

  for (const Fault& fault : config_.faults) {
    const std::uint64_t fseed = mix(config_.seed, 0xFA017 + fault_index);
    ++fault_index;

    if (const auto* f = std::get_if<Blackout>(&fault)) {
      weather_event(f->at_us, [](Weather& w) { ++w.blackout_depth; });
      weather_event(f->at_us + f->duration_us,
                    [](Weather& w) { --w.blackout_depth; });
    } else if (const auto* f = std::get_if<BearerFlap>(&fault)) {
      for (int i = 0; i < f->flaps; ++i) {
        const net::SimTime start =
            f->at_us + static_cast<net::SimTime>(i) * f->period_us;
        weather_event(start, [](Weather& w) { ++w.blackout_depth; });
        weather_event(start + f->outage_us,
                      [](Weather& w) { --w.blackout_depth; });
      }
    } else if (const auto* f = std::get_if<BurstLoss>(&fault)) {
      weather_event(f->at_us, [p = *f](Weather& w) {
        w.burst = true;
        w.ge_p_good_to_bad = p.p_good_to_bad;
        w.ge_p_bad_to_good = p.p_bad_to_good;
        w.ge_loss_bad = p.loss_bad;
      });
      if (f->duration_us != 0)
        weather_event(f->at_us + f->duration_us,
                      [](Weather& w) { w.burst = false; });
    } else if (const auto* f = std::get_if<BandwidthCollapse>(&fault)) {
      weather_event(f->at_us, [bps = f->bytes_per_sec](Weather& w) {
        w.collapsed = true;
        w.collapse_bytes_per_sec = bps;
      });
      if (f->duration_us != 0)
        weather_event(f->at_us + f->duration_us,
                      [](Weather& w) { w.collapsed = false; });
    } else if (const auto* f = std::get_if<ShardCrash>(&fault)) {
      const net::SimTime repair =
          f->repair_us == 0 ? server::ShardSupervisor::kNoRepair
                            : f->repair_us;
      if (f->graceful) {
        ++planned_drains;
        tier.schedule_drain(f->at_us, f->shard, f->drain_deadline_us, repair);
      } else {
        ++planned_crashes;
        tier.schedule_crash(f->at_us, f->shard, repair);
      }
      if (f->repair_us != 0) ++planned_rejoins;
    } else if (const auto* f = std::get_if<ShardHang>(&fault)) {
      const net::SimTime repair =
          f->repair_us == 0 ? server::ShardSupervisor::kNoRepair
                            : f->repair_us;
      ++planned_hangs;
      tier.schedule_hang(f->at_us, f->shard, repair);
      if (f->repair_us != 0) ++planned_rejoins;
    } else if (const auto* f = std::get_if<ShardWorkerStall>(&fault)) {
      // Rides the target shard's own queue: lands at a deterministic
      // simulated instant and is executed by the one thread that owns
      // that pipeline. Dies with the shard if it crashes first; a
      // rejoined shard's fresh pipeline starts unstalled.
      tier.queue(f->shard).schedule_at(f->at_us, [&tier, w = *f] {
        tier.server(w.shard).pipeline_for_chaos().inject_worker_stall(
            w.worker, w.stall_ns);
      });
      if (f->duration_us != 0)
        tier.queue(f->shard).schedule_at(
            f->at_us + f->duration_us, [&tier, w = *f] {
              tier.server(w.shard).pipeline_for_chaos().inject_worker_stall(
                  w.worker, 0);
            });
    } else if (const auto* f = std::get_if<ShardOffloadStall>(&fault)) {
      const auto stall_set = [&tier](const ShardOffloadStall& w,
                                     std::uint64_t ns) {
        engine::OffloadEngine* off = tier.server(w.shard).offload_for_chaos();
        if (off == nullptr) return;  // inline pk mode: nothing to stall
        if (w.all_workers) {
          for (std::size_t i = 0; i < off->num_workers(); ++i)
            off->inject_worker_stall(i, ns);
        } else {
          off->inject_worker_stall(w.worker, ns);
        }
      };
      tier.queue(f->shard).schedule_at(
          f->at_us, [stall_set, w = *f] { stall_set(w, w.stall_ns); });
      if (f->duration_us != 0)
        tier.queue(f->shard).schedule_at(
            f->at_us + f->duration_us,
            [stall_set, w = *f] { stall_set(w, 0); });
    } else if (const auto* f = std::get_if<HandshakeFlood>(&fault)) {
      for (int a = 0; a < f->attackers; ++a) {
        FloodConfig fc;
        fc.handshake = config_.client.handshake;
        fc.link = config_.client.link;
        fc.connections = f->connections_each;
        fc.interarrival_us = f->interarrival_us;
        fc.reach_key_exchange = f->reach_key_exchange;
        const auto key = static_cast<std::uint32_t>(0xF000 + floods.size());
        auto attacker = std::make_unique<FloodClient>(
            tier.queue(tier.shard_of(key)), std::move(fc), key,
            mix(fseed, 0xDD05 + a));
        attacker->set_connect(
            [&make_link, key, link_cfg = config_.client.link](FloodClient&) {
              return make_link(key, link_cfg);
            });
        tier.queue(tier.shard_of(key))
            .schedule_at(f->at_us, [p = attacker.get()] { p->start(); });
        floods.push_back(std::move(attacker));
      }
    } else if (const auto* f = std::get_if<MalformedTraffic>(&fault)) {
      for (int c = 0; c < f->clients; ++c) {
        MalformedConfig mc;
        mc.link = config_.client.link;
        mc.connections = f->connections_each;
        mc.messages_per_connection = f->messages_per_connection;
        mc.interarrival_us = f->interarrival_us;
        mc.message_gap_us = f->message_gap_us;
        const auto key = static_cast<std::uint32_t>(0xBAD0 + vandals.size());
        auto vandal = std::make_unique<MalformedClient>(
            tier.queue(tier.shard_of(key)), std::move(mc), key,
            make_seeded_mutator(mix(fseed, 0x3AD + c),
                                config_.client.handshake));
        vandal->set_connect(
            [&make_link, key,
             link_cfg = config_.client.link](MalformedClient&) {
              return make_link(key, link_cfg);
            });
        tier.queue(tier.shard_of(key))
            .schedule_at(f->at_us, [p = vandal.get()] { p->start(); });
        vandals.push_back(std::move(vandal));
      }
    } else if (const auto* f = std::get_if<TicketKeyRotation>(&fault)) {
      // Through the epoch-barrier control channel: every shard rotates at
      // the same barrier, in deterministic order against other control
      // messages, so ticket epochs stay in lockstep fleet-wide. A shard
      // that was dead for a rotation replays it from the recorded control
      // history at rejoin, keeping every ring in epoch lockstep.
      for (int r = 0; r < f->rotations; ++r)
        tier.rotate_ticket_keys(f->at_us +
                                static_cast<net::SimTime>(r) * f->period_us);
    }
  }

  // Schedule the weather plan in time order on every shard (stable, so
  // same-instant flips keep plan order), and arm the rejoin hook that
  // rebuilds a returning shard's weather world: past flips replayed into
  // a fresh Weather, future flips re-scheduled on the (cleared) queue.
  std::stable_sort(
      weather_plan.begin(), weather_plan.end(),
      [](const WeatherFlip& a, const WeatherFlip& b) { return a.at < b.at; });
  for (std::size_t s = 0; s < num_shards; ++s)
    for (const WeatherFlip& flip : weather_plan)
      tier.queue(s).schedule_at(flip.at, [&, s, fn = flip.fn] {
        fn(weather[s]);
        reapply_shard(s);
      });
  tier.set_on_rejoin([&](std::size_t s) {
    const net::SimTime now = tier.queue(s).now();
    weather[s] = Weather{};
    for (const WeatherFlip& flip : weather_plan) {
      if (flip.at <= now) {
        flip.fn(weather[s]);
      } else {
        tier.queue(s).schedule_at(flip.at, [&, s, fn = flip.fn] {
          fn(weather[s]);
          reapply_shard(s);
        });
      }
    }
    reapply_shard(s);
  });

  // ---- run ------------------------------------------------------------
  const server::ShardedServer::RunStats rs = tier.run(config_.max_events);

  // ---- judge ----------------------------------------------------------
  CampaignReport report;
  report.server = tier.fleet_stats();
  report.drained = rs.drained;
  report.open_at_end = tier.open_connections();
  report.conserved = tier.conserved();
  report.degraded_time_us = rs.degraded_time_us;
  report.degraded_transitions = rs.degraded_transitions;
  net::SimTime end = 0;
  for (std::size_t s = 0; s < num_shards; ++s)
    end = std::max(end, tier.queue(s).now());
  report.sim_duration_s = static_cast<double>(end) / 1e6;

  crypto::Bytes digest_stream;
  std::vector<net::SimTime> blackouts;
  for (const auto& client : clients) {
    for (const server::SessionRecord& record : client->sessions()) {
      ++report.sessions_attempted;
      if (record.completed) ++report.sessions_completed;
      if (record.failed) ++report.sessions_failed;
      if (!record.echo_ok) ++report.echo_mismatches;
      report.honest_refused_attempts +=
          static_cast<std::size_t>(record.refused_attempts);
    }
    report.client_reconnects += static_cast<std::size_t>(client->reconnects());
    report.failover_resumes +=
        static_cast<std::size_t>(client->failover_resumes());
    blackouts.insert(blackouts.end(), client->failover_blackouts_us().begin(),
                     client->failover_blackouts_us().end());
    digest_stream.insert(digest_stream.end(),
                         client->transcript_digest().begin(),
                         client->transcript_digest().end());
  }
  report.fleet_digest = crypto::Sha256::hash(digest_stream);

  const server::ShardSupervisor::FailoverStats& fs = tier.failover_stats();
  report.shard_crashes = fs.crashes;
  report.shard_hangs_detected = fs.hangs_detected;
  report.shard_drains = fs.drains;
  report.shard_rejoins = fs.rejoins;
  report.clients_migrated = fs.clients_migrated;
  report.connections_killed = fs.connections_killed;
  report.missed_heartbeats = fs.missed_heartbeats;
  if (!blackouts.empty()) {
    std::sort(blackouts.begin(), blackouts.end());
    const auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(blackouts.size() - 1) + 0.5);
      return static_cast<double>(blackouts[idx]) / 1000.0;
    };
    report.blackout_p50_ms = pct(0.50);
    report.blackout_p99_ms = pct(0.99);
  }

  for (const auto& flood : floods) {
    report.attack_connections += flood->stats().connections_opened;
    report.attack_refused += flood->stats().refused;
    report.attack_bytes += flood->stats().bytes_sent;
  }
  for (const auto& vandal : vandals) {
    report.attack_connections += vandal->stats().connections_opened;
    report.malformed_messages += vandal->stats().messages_sent;
    report.attack_bytes += vandal->stats().bytes_sent;
  }

  report.handshake_energy_mj =
      static_cast<double>(report.server.handshake_bytes_rx) / 1024.0 *
          config_.energy.rx_mj_per_kb +
      static_cast<double>(report.server.handshake_bytes_tx) / 1024.0 *
          config_.energy.tx_mj_per_kb +
      static_cast<double>(report.server.handshake_rsa_private_ops) *
          config_.rsa_mj_per_op;
  if (report.attack_bytes > 0)
    report.mj_per_attack_byte =
        report.handshake_energy_mj /
        static_cast<double>(report.attack_bytes);

  auto flag = [&](const char* what) {
    if (!report.invariant_failures.empty())
      report.invariant_failures += "; ";
    report.invariant_failures += what;
  };
  if (!report.drained) flag("event budget exhausted (possible livelock)");
  if (report.open_at_end != 0) flag("connections left open after drain");
  if (!report.conserved) flag("connection accounting not conserved");
  if (report.echo_mismatches != 0) flag("surviving session echo mismatch");
  if (config_.server.max_pending_echo_bytes != 0 &&
      report.server.peak_pending_echo_bytes >
          config_.server.max_pending_echo_bytes + kMemorySlop)
    flag("pending-echo memory exceeded its bound");
  if (config_.server.max_deferred_appdata_bytes != 0 &&
      report.server.peak_deferred_bytes >
          config_.server.max_deferred_appdata_bytes + kMemorySlop)
    flag("deferred-appdata memory exceeded its bound");
  if (report.shard_hangs_detected < planned_hangs)
    flag("injected shard hang was not detected");
  if (report.shard_crashes < planned_crashes)
    flag("scheduled shard crash did not execute");
  if (report.shard_drains < planned_drains)
    flag("scheduled shard drain did not execute");
  if (report.shard_rejoins < planned_rejoins)
    flag("killed shard failed to rejoin");
  if (report.missed_heartbeats != 0)
    flag("live shard missed a barrier heartbeat");

  return report;
}

}  // namespace mapsec::chaos
