#include "mapsec/chaos/adversary.hpp"

#include <utility>

#include "mapsec/server/wire.hpp"

namespace mapsec::chaos {

// ---------------------------------------------------------------------------
// FloodClient

FloodClient::FloodClient(net::EventQueue& queue, FloodConfig config,
                         std::uint32_t id, std::uint64_t seed)
    : queue_(queue), config_(std::move(config)), id_(id), rng_(seed) {}

void FloodClient::start() { open_connection(); }

void FloodClient::send_raw(crypto::Bytes msg) {
  stats_.bytes_sent += msg.size();
  link_->send_message(msg);
}

void FloodClient::open_connection() {
  if (opened_ >= config_.connections) {
    finished_ = true;
    return;
  }
  ++epoch_;
  ++opened_;
  ++stats_.connections_opened;

  if (link_) link_->shutdown();
  link_ = connect_(*this);
  link_->set_on_message([this](crypto::ConstBytes msg) { on_message(msg); });
  // A dead link (server shed us without a kRefused, blackout, ...) just
  // means this probe is spent; the timer moves us along.
  link_->set_on_error([this](const std::string&) { abandon(); });

  protocol::HandshakeConfig cfg = config_.handshake;
  cfg.rng = &rng_;
  tls_ = std::make_unique<protocol::TlsClient>(cfg);

  const std::uint64_t epoch = epoch_;
  attempt_timer_ =
      queue_.schedule_in(config_.attempt_timeout_us, [this, epoch] {
        if (epoch != epoch_) return;
        attempt_timer_ = 0;
        abandon();
      });

  const protocol::HandshakeStep step = protocol::step_handshake(*tls_, {});
  ++stats_.hellos_sent;
  send_raw(server::make_msg(server::MsgKind::kHandshake, step.output));
}

void FloodClient::on_message(crypto::ConstBytes msg) {
  if (finished_ || msg.empty()) return;
  const auto kind = static_cast<server::MsgKind>(msg[0]);
  if (kind == server::MsgKind::kRefused) {
    ++stats_.refused;
    abandon();
    return;
  }
  if (kind != server::MsgKind::kHandshake) return;
  if (!config_.reach_key_exchange) {
    // The server already paid for its certificate flight; done here.
    abandon();
    return;
  }
  try {
    const protocol::HandshakeStep step =
        protocol::step_handshake(*tls_, msg.subspan(1));
    if (!step.output.empty()) {
      // This flight carries the ClientKeyExchange — the message that
      // forces the server's RSA private operation. Send it, then walk
      // away without finishing the session.
      ++stats_.key_exchanges_sent;
      send_raw(server::make_msg(server::MsgKind::kHandshake, step.output));
    }
  } catch (const protocol::HandshakeError&) {
    // Server alerts/garbage don't matter to an attacker.
  }
  abandon();
}

void FloodClient::abandon() {
  if (attempt_timer_) {
    queue_.cancel(attempt_timer_);
    attempt_timer_ = 0;
  }
  ++epoch_;  // invalidates this attempt's timer and stray callbacks
  link_->shutdown();
  if (opened_ >= config_.connections) {
    finished_ = true;
    return;
  }
  const std::uint64_t epoch = epoch_;
  queue_.schedule_in(config_.interarrival_us, [this, epoch] {
    if (epoch == epoch_ && !finished_) open_connection();
  });
}

// ---------------------------------------------------------------------------
// MalformedClient

MalformedClient::MalformedClient(net::EventQueue& queue,
                                 MalformedConfig config, std::uint32_t id,
                                 WireMutator mutator)
    : queue_(queue),
      config_(std::move(config)),
      id_(id),
      mutator_(std::move(mutator)) {}

void MalformedClient::start() { open_connection(); }

void MalformedClient::open_connection() {
  if (opened_ >= config_.connections) {
    finished_ = true;
    return;
  }
  ++epoch_;
  ++opened_;
  ++stats_.connections_opened;
  sent_this_connection_ = 0;

  if (link_) link_->shutdown();
  link_ = connect_(*this);
  link_->set_on_message([](crypto::ConstBytes) {});  // replies are noise
  const std::uint64_t open_epoch = epoch_;
  link_->set_on_error([this, open_epoch](const std::string&) {
    // Server (rightly) killed the connection; move to the next one.
    if (open_epoch != epoch_ || finished_) return;
    ++epoch_;
    queue_.schedule_in(config_.interarrival_us,
                       [this] { if (!finished_) open_connection(); });
  });
  send_next();
}

void MalformedClient::send_next() {
  if (sent_this_connection_ >= config_.messages_per_connection) {
    ++epoch_;
    link_->shutdown();
    if (opened_ >= config_.connections) {
      finished_ = true;
      return;
    }
    queue_.schedule_in(config_.interarrival_us,
                       [this] { if (!finished_) open_connection(); });
    return;
  }
  const crypto::Bytes msg = mutator_.next();
  ++sent_this_connection_;
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.size();
  link_->send_message(msg);
  const std::uint64_t epoch = epoch_;
  queue_.schedule_in(config_.message_gap_us, [this, epoch] {
    if (epoch == epoch_ && !finished_) send_next();
  });
}

// ---------------------------------------------------------------------------

WireMutator make_seeded_mutator(std::uint64_t seed,
                                const protocol::HandshakeConfig& handshake) {
  WireMutator mutator(seed);

  // A genuine ClientHello flight: mutations of it reach the deepest
  // parsing (record layer, then handshake codec) before dying.
  crypto::HmacDrbg hello_rng(seed ^ 0xC11E5711u);
  protocol::HandshakeConfig cfg = handshake;
  cfg.rng = &hello_rng;
  protocol::TlsClient probe(cfg);
  const protocol::HandshakeStep step = protocol::step_handshake(probe, {});
  mutator.add_specimen(
      server::make_msg(server::MsgKind::kHandshake, step.output));

  // Application-data-shaped record: valid header, undecryptable payload.
  crypto::HmacDrbg body_rng(seed ^ 0xA99DA7Au);
  crypto::Bytes record = body_rng.bytes(48);
  record[0] = 23;  // application_data
  record[1] = 3;
  record[2] = 1;
  record[3] = 0;
  record[4] = 43;  // length of the remaining 43 bytes
  mutator.add_specimen(server::make_msg(server::MsgKind::kAppData, record));

  // Bulk frame: spi|seq header plus ciphertext-shaped tail.
  crypto::Bytes bulk = body_rng.bytes(32);
  mutator.add_specimen(server::make_msg(server::MsgKind::kBulk, bulk));

  // Control frames.
  mutator.add_specimen(server::make_msg(server::MsgKind::kClose, {}));
  mutator.add_specimen(server::make_msg(server::MsgKind::kCloseAck, {}));

  return mutator;
}

}  // namespace mapsec::chaos
