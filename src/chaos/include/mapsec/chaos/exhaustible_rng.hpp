// An entropy source that can run dry on command.
//
// Figure 6 of the paper puts a hardware RNG at the root of the secure
// platform; a real TRNG block can stall (health-test trip, clock gate,
// fault injection) and everything above it must cope. ExhaustibleRng
// wraps a deterministic HmacDrbg with a byte budget: once spent, fill()
// throws RngExhaustedError until refill(). Chaos campaigns exhaust the
// server's handshake rng mid-run and assert the failure stays contained
// to the connections that asked for randomness.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "mapsec/crypto/rng.hpp"

namespace mapsec::chaos {

class RngExhaustedError : public std::runtime_error {
 public:
  RngExhaustedError() : std::runtime_error("rng: entropy pool exhausted") {}
};

class ExhaustibleRng final : public crypto::Rng {
 public:
  static constexpr std::uint64_t kUnlimited =
      std::numeric_limits<std::uint64_t>::max();

  explicit ExhaustibleRng(std::uint64_t seed,
                          std::uint64_t budget_bytes = kUnlimited)
      : inner_(seed), budget_(budget_bytes) {}

  void fill(std::span<std::uint8_t> out) override {
    if (budget_ != kUnlimited) {
      if (out.size() > budget_) {
        budget_ = 0;
        throw RngExhaustedError();
      }
      budget_ -= out.size();
    }
    inner_.fill(out);
  }

  /// The pool runs dry immediately; fill() throws until refill().
  void exhaust() { budget_ = 0; }

  void refill(std::uint64_t budget_bytes = kUnlimited) {
    budget_ = budget_bytes;
  }

  bool exhausted() const { return budget_ == 0; }
  std::uint64_t remaining() const { return budget_; }

 private:
  crypto::HmacDrbg inner_;
  std::uint64_t budget_;
};

}  // namespace mapsec::chaos
