// Adversarial clients — the traffic-layer fault injectors.
//
// Two attacker models from the paper's Section 3.3/3.4 threat analysis:
//
//   FloodClient     — battery-exhaustion DoS. Opens connection after
//                     connection, drives each just deep enough into the
//                     handshake to make the server burn energy
//                     (certificate flights, and with reach_key_exchange
//                     the RSA private op), then abandons it. Never
//                     completes a session; the cost asymmetry IS the
//                     attack.
//   MalformedClient — protocol fuzzing over the live transport: sends
//                     WireMutator output (truncated records, corrupted
//                     lengths, spliced frames) and abandons. The server
//                     must shed each such connection cleanly.
//
// Both are event-driven peers on the campaign's queue, seeded like
// SessionClient, so campaigns that include attacks remain bit-exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mapsec/chaos/wire_mutator.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace mapsec::chaos {

struct FloodConfig {
  /// Trust anchors etc. for a syntactically genuine handshake; `rng` is
  /// ignored (each attacker owns a seeded rng).
  protocol::HandshakeConfig handshake;
  net::LinkConfig link;

  int connections = 8;
  net::SimTime interarrival_us = 10'000;
  /// false: abandon right after the ClientHello (cheap probe).
  /// true: answer the server's flight so the ClientKeyExchange lands and
  /// the server performs its RSA private operation before the abandon.
  bool reach_key_exchange = true;
  /// Give up on an unresponsive (or refusing) server after this long.
  net::SimTime attempt_timeout_us = 2'000'000;
};

struct FloodStats {
  std::uint64_t connections_opened = 0;
  std::uint64_t refused = 0;             // server answered kRefused
  std::uint64_t hellos_sent = 0;
  std::uint64_t key_exchanges_sent = 0;
  std::uint64_t bytes_sent = 0;          // attack bytes at the message layer
};

class FloodClient {
 public:
  using ConnectFn =
      std::function<std::unique_ptr<net::ReliableLink>(FloodClient&)>;

  FloodClient(net::EventQueue& queue, FloodConfig config, std::uint32_t id,
              std::uint64_t seed);

  void set_connect(ConnectFn fn) { connect_ = std::move(fn); }

  /// Open the first connection at the current simulated time.
  void start();

  std::uint32_t id() const { return id_; }
  bool finished() const { return finished_; }
  const FloodStats& stats() const { return stats_; }

 private:
  void open_connection();
  void on_message(crypto::ConstBytes msg);
  void abandon();
  void send_raw(crypto::Bytes msg);

  net::EventQueue& queue_;
  FloodConfig config_;
  std::uint32_t id_;
  crypto::HmacDrbg rng_;

  ConnectFn connect_;
  std::unique_ptr<net::ReliableLink> link_;
  std::unique_ptr<protocol::TlsClient> tls_;
  std::uint64_t epoch_ = 0;
  net::EventId attempt_timer_ = 0;
  int opened_ = 0;
  bool finished_ = false;
  FloodStats stats_;
};

struct MalformedConfig {
  net::LinkConfig link;
  int connections = 4;
  int messages_per_connection = 3;
  net::SimTime interarrival_us = 20'000;
  net::SimTime message_gap_us = 2'000;
};

struct MalformedStats {
  std::uint64_t connections_opened = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class MalformedClient {
 public:
  using ConnectFn =
      std::function<std::unique_ptr<net::ReliableLink>(MalformedClient&)>;

  /// The mutator arrives pre-seeded with a specimen corpus (see
  /// make_default_corpus) and is owned by the client.
  MalformedClient(net::EventQueue& queue, MalformedConfig config,
                  std::uint32_t id, WireMutator mutator);

  void set_connect(ConnectFn fn) { connect_ = std::move(fn); }
  void start();

  std::uint32_t id() const { return id_; }
  bool finished() const { return finished_; }
  const MalformedStats& stats() const { return stats_; }

 private:
  void open_connection();
  void send_next();

  net::EventQueue& queue_;
  MalformedConfig config_;
  std::uint32_t id_;
  WireMutator mutator_;

  ConnectFn connect_;
  std::unique_ptr<net::ReliableLink> link_;
  std::uint64_t epoch_ = 0;
  int opened_ = 0;
  int sent_this_connection_ = 0;
  bool finished_ = false;
  MalformedStats stats_;
};

/// A specimen corpus covering the session layer's surface: a genuine
/// ClientHello flight (generated from `handshake` with a seeded rng), an
/// application-data-shaped record, a bulk frame, close and refusal
/// frames. `handshake` needs no credentials — only what a TlsClient needs
/// to emit its first flight.
WireMutator make_seeded_mutator(std::uint64_t seed,
                                const protocol::HandshakeConfig& handshake);

}  // namespace mapsec::chaos
