// Structure-aware wire-frame mutation.
//
// The session layer's attack surface is `kind(1) | body` messages whose
// bodies are TLS records (`type(1) | version(2) | length(2) | payload`)
// or bulk headers (`spi(4) | seq(4) | ciphertext`). Purely random bytes
// mostly die in the first length check; the interesting crashes live one
// layer deeper. The mutator therefore starts from a corpus of VALID
// specimens and applies protocol-shaped damage: truncations, record
// length lies, kind swaps, splices, bit flips, oversize growth — plus a
// ration of raw garbage so the outermost parser is covered too.
//
// Fully deterministic: (seed, corpus order) -> the same mutation stream,
// which is what lets the fuzz corpus be replayed under ASan/UBSan/TSan
// and lets chaos campaigns include adversarial traffic without losing
// bit-reproducibility.
#pragma once

#include <cstdint>
#include <vector>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::chaos {

class WireMutator {
 public:
  explicit WireMutator(std::uint64_t seed) : rng_(seed) {}

  /// Add a valid message (`kind | body`) to the corpus. Mutations are
  /// drawn from specimens in insertion order under rng control.
  void add_specimen(crypto::Bytes msg) {
    corpus_.push_back(std::move(msg));
  }

  std::size_t corpus_size() const { return corpus_.size(); }

  /// Produce the next malformed frame. Never returns a byte-for-byte
  /// copy of a specimen (a final bit flip is forced if a mutation lands
  /// on the identity), so every output exercises an error path.
  crypto::Bytes next();

 private:
  enum class Strategy {
    kTruncate,       // cut the frame at a random point
    kBitFlip,        // flip 1-8 random bits
    kKindSwap,       // rewrite the kind byte (valid or invalid kinds)
    kRecordLength,   // lie in a TLS record length field
    kSplice,         // head of one specimen + tail of another
    kGrow,           // append random bytes (oversize / trailing junk)
    kGarbage,        // fresh random bytes, random length
    kEmpty,          // zero-length or single-byte frame
    kCount,
  };

  crypto::Bytes mutate(const crypto::Bytes& specimen, Strategy strategy);

  crypto::HmacDrbg rng_;
  std::vector<crypto::Bytes> corpus_;
};

}  // namespace mapsec::chaos
