// Fault catalogue for deterministic chaos campaigns.
//
// Each fault is a plain value naming WHAT breaks and WHEN (in simulated
// microseconds on the campaign's EventQueue). The CampaignRunner turns a
// FaultPlan into scheduled events on the same queue that drives the
// server, clients and channels, so an entire campaign — including every
// injected failure — is a pure function of its seed and plan. The classes
// map onto the paper's threat surface: bearer outages and fades
// (Section 2's hostile links), crypto-engine failure and entropy
// starvation (Section 4's hardware assists), processing stalls
// (Section 3's MIPS gap), and battery-exhaustion denial of service
// (Section 3.3 / 3.4).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "mapsec/net/sim_clock.hpp"

namespace mapsec::chaos {

/// Total bearer outage: every frame on every registered channel is lost
/// for the duration. Overlapping blackouts nest (the bearer recovers when
/// the last one lifts).
struct Blackout {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;
};

/// Repeated short outages — the bearer "flapping" between cells or
/// interfaces: `flaps` outages of `outage_us` each, starting every
/// `period_us` from `at_us`.
struct BearerFlap {
  net::SimTime at_us = 0;
  int flaps = 3;
  net::SimTime period_us = 500'000;
  net::SimTime outage_us = 100'000;
};

/// Gilbert-Elliott burst loss switched on for a window (0 duration =
/// rest of the run): models fade/interference bursts rather than
/// independent drops.
struct BurstLoss {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.30;
  double loss_bad = 0.9;
};

/// Serialization rate collapses to an absolute floor (works whether the
/// base config was rate-limited or unlimited), then recovers.
struct BandwidthCollapse {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;
  double bytes_per_sec = 2'000;  // ~GSM CSD class
};

/// The accelerated crypto backend "fails" mid-run: dispatch is pinned to
/// the scalar path (crypto::dispatch::force_scalar), recovering after
/// `duration_us` (0 = rest of the run). Kernels are bit-identical, so
/// this must be output-invariant — only costs change.
struct DispatchFailure {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;
};

/// The server's handshake entropy source runs dry: every fill() throws
/// until the pool is refilled after `duration_us`. Connections that ask
/// for randomness meanwhile must fail alone (poisoned-connection
/// containment), never take down the event loop.
struct RngExhaustion {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 1'000'000;
};

/// One pipeline worker goes slow (wall-clock stall per batch). The batch
/// barrier absorbs it: simulated-time outcomes and bytes must be
/// identical, only host latency changes.
struct WorkerStall {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;  // 0 = rest of the run
  std::size_t worker = 0;
  std::uint64_t stall_ns = 200'000;
};

/// One (or all) public-key offload workers go slow: a wall-clock stall
/// per job, injected into the server's OffloadEngine. The completion
/// event's steal path must absorb it — after the grace period the job is
/// recomputed inline, bit-identically — so simulated outcomes are
/// unchanged; only host latency and the `stolen` counter move. A no-op
/// when the server runs public-key operations inline (no engine).
struct OffloadStall {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;  // 0 = rest of the run
  std::size_t worker = 0;
  bool all_workers = false;
  std::uint64_t stall_ns = 400'000'000;  // well past the steal timeout
};

/// Full-handshake flood (battery-exhaustion DoS): `attackers` adversarial
/// clients each opening `connections_each` connections, every one forcing
/// the server through handshake work and then abandoning the session.
/// `reach_key_exchange` decides how deep each probe goes: just the
/// ClientHello (cheap for the attacker, costs the server a certificate
/// flight) or through the ClientKeyExchange (costs the server the RSA
/// private operation — the paper's 42 mJ/KB worst case).
struct HandshakeFlood {
  net::SimTime at_us = 0;
  int attackers = 4;
  int connections_each = 8;
  net::SimTime interarrival_us = 10'000;
  bool reach_key_exchange = true;
};

/// Adversarial clients speaking garbage: structure-aware mutations of
/// valid wire frames (truncated records, corrupt lengths, wrong kinds,
/// random splices). Every such connection must die cleanly by
/// fail_connection — never UB, never the event loop.
struct MalformedTraffic {
  net::SimTime at_us = 0;
  int clients = 2;
  int connections_each = 4;
  int messages_per_connection = 3;
  net::SimTime interarrival_us = 20'000;
  net::SimTime message_gap_us = 2'000;
};

/// One serving shard dies (sharded campaigns only). `graceful` drains the
/// shard first — unroute, let open connections finish, hard-kill whatever
/// remains at the drain deadline; otherwise it is a hard crash at the
/// first epoch barrier >= at_us: every open connection on the victim
/// fails, its world's schedule dies, and bound honest clients remap to
/// survivors (rendezvous hashing: only the victim's keys move) where they
/// resume with their session ticket. After `repair_us` the shard rejoins
/// warm (replica ticket ring, replayed control history, rebuilt bearer
/// weather). 0 = never rejoins.
struct ShardCrash {
  net::SimTime at_us = 0;
  std::size_t shard = 0;
  net::SimTime repair_us = 2'000'000;
  bool graceful = false;
  net::SimTime drain_deadline_us = 1'000'000;
};

/// One serving shard's thread wedges mid-slice (sharded campaigns only):
/// a net::HangLatch parks it at `at_us`; the executor's wall-clock
/// watchdog releases and reports it, and the supervisor escalates to a
/// hard-kill with the same failover/rejoin semantics as ShardCrash.
struct ShardHang {
  net::SimTime at_us = 0;
  std::size_t shard = 0;
  net::SimTime repair_us = 2'000'000;
};

/// WorkerStall scoped to ONE shard's pipeline (sharded campaigns): the
/// stall event rides the shard's own queue, so it lands at a
/// deterministic simulated instant without touching any other shard's
/// world. Dies with the shard if it crashes first; a rejoined shard's
/// fresh pipeline starts unstalled.
struct ShardWorkerStall {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;  // 0 = rest of the run
  std::size_t shard = 0;
  std::size_t worker = 0;
  std::uint64_t stall_ns = 200'000;
};

/// OffloadStall scoped to ONE shard's OffloadEngine (sharded campaigns),
/// same delivery contract as ShardWorkerStall. A no-op when the server
/// runs public-key operations inline.
struct ShardOffloadStall {
  net::SimTime at_us = 0;
  net::SimTime duration_us = 0;  // 0 = rest of the run
  std::size_t shard = 0;
  std::size_t worker = 0;
  bool all_workers = false;
  std::uint64_t stall_ns = 400'000'000;
};

/// Forced ticket sealing-key rotations (operational key roll, or the
/// panic response to suspected key compromise): `rotations` immediate
/// rotations at `at_us`, then one per `period_us` (0 = all at once).
/// Against a correctly windowed TicketKeyRing an honest client holding a
/// recent ticket keeps resuming (or falls back to a full handshake and
/// gets a fresh ticket) — the campaign's judge asserts zero honest-client
/// failures under mid-flood rotation.
struct TicketKeyRotation {
  net::SimTime at_us = 0;
  int rotations = 1;
  net::SimTime period_us = 0;
};

using Fault =
    std::variant<Blackout, BearerFlap, BurstLoss, BandwidthCollapse,
                 DispatchFailure, RngExhaustion, WorkerStall, OffloadStall,
                 ShardCrash, ShardHang, ShardWorkerStall, ShardOffloadStall,
                 HandshakeFlood, MalformedTraffic, TicketKeyRotation>;

using FaultPlan = std::vector<Fault>;

}  // namespace mapsec::chaos
