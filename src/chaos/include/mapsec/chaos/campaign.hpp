// Deterministic chaos campaigns: a full serving world (hardened
// SecureSessionServer + honest client fleet on lossy bearers) plus a
// FaultPlan scheduled on the SAME EventQueue, run to quiescence, then
// judged against the survival invariants:
//
//   * the event loop survives every fault (no crash, no deadlock — a
//     poisoned connection fails alone),
//   * every surviving session's echo stream is byte-exact,
//   * connection accounting conserves:
//       accepted == graceful + idle + failed + refused + open,
//   * all connections are closed once the queue drains,
//   * per-connection memory stayed within its configured bounds,
//   * the same seed gives a bit-identical outcome for ANY
//     PacketPipeline worker count (fleet_digest is the witness).
//
// Attack cost is priced through platform::EnergyModel plus the paper's
// RSA figure (42 mJ/KB on a 128-byte RSA-1024 block ≈ 5.25 mJ/op), so a
// handshake flood's battery bill — the Section 3.3 DoS — comes out in
// millijoules per attack byte.
#pragma once

#include <cstdint>
#include <string>

#include "mapsec/chaos/faults.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/platform/energy.hpp"
#include "mapsec/server/client.hpp"
#include "mapsec/server/server.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::chaos {

struct CampaignConfig {
  std::uint64_t seed = 0xC405C0DE;

  /// 0 = the classic single-event-loop world. >= 1 targets a supervised
  /// sharded serving tier (server::ShardSupervisor): honest clients bind
  /// for failover-aware routing (attackers keep the stable hash home — a
  /// dead shard just doesn't answer their dial), bearer weather is
  /// scheduled identically on every shard's queue (and rebuilt when a
  /// crashed shard rejoins), TicketKeyRotation goes through the tier's
  /// epoch-barrier control channel, and the Shard* lifecycle faults
  /// (ShardCrash/ShardHang/ShardWorkerStall/ShardOffloadStall) become
  /// available. Faults that flip process-global state (DispatchFailure,
  /// RngExhaustion) or stall by bare worker index across every shard
  /// (WorkerStall, OffloadStall) are rejected with std::invalid_argument.
  std::size_t shards = 0;
  net::SimTime slice_us = 1'000;
  /// Wall-clock budget per slice before the hang watchdog fires (only
  /// consulted when the plan contains a ShardHang).
  std::uint64_t watchdog_wall_ms = 250;

  // Honest fleet (same knobs as server::LoadGenerator).
  std::size_t honest_clients = 20;
  net::SimTime mean_interarrival_us = 2'000;
  bool poisson_arrivals = true;

  /// Fair-weather bearer; faults perturb it live.
  net::ChannelConfig channel;

  server::ServerConfig server;
  server::ClientConfig client;
  server::BoundedSessionCache::Config cache;

  FaultPlan faults;

  // Attack-energy pricing (paper Figure 4 constants by default).
  platform::EnergyModel energy = platform::EnergyModel::paper_sensor_node();
  /// 42 mJ/KB RSA overhead on one 128-byte RSA-1024 private operation.
  double rsa_mj_per_op = 5.25;

  std::size_t max_events = 200'000'000;  // runaway guard
};

struct CampaignReport {
  server::ServerStats server;

  bool drained = false;        // queue emptied within max_events
  std::size_t open_at_end = 0;
  bool conserved = false;      // ServerStats conservation invariant
  double degraded_time_us = 0;
  std::uint64_t degraded_transitions = 0;
  double sim_duration_s = 0;

  // Honest fleet outcome.
  std::size_t sessions_attempted = 0;
  std::size_t sessions_completed = 0;
  std::size_t sessions_failed = 0;   // gave up after the retry budget
  std::size_t echo_mismatches = 0;
  std::size_t honest_refused_attempts = 0;
  /// SHA-256 over honest clients' transcript digests, in client order —
  /// bit-identical across pipeline worker counts for the same seed.
  crypto::Bytes fleet_digest;

  // Failover outcome (all zero when the plan has no Shard* lifecycle
  // faults). Blackout percentiles are over per-reconnect samples: shard
  // death -> the victim's session re-established on a survivor.
  std::uint64_t shard_crashes = 0;
  std::uint64_t shard_hangs_detected = 0;
  std::uint64_t shard_drains = 0;
  std::uint64_t shard_rejoins = 0;
  std::uint64_t clients_migrated = 0;
  std::uint64_t connections_killed = 0;
  std::uint64_t missed_heartbeats = 0;
  std::size_t client_reconnects = 0;
  std::size_t failover_resumes = 0;  // reconnects that resumed (no full hs)
  double blackout_p50_ms = 0;
  double blackout_p99_ms = 0;

  // Attack-side accounting (zero when the plan has no traffic faults).
  std::uint64_t attack_connections = 0;
  std::uint64_t attack_refused = 0;
  std::uint64_t attack_bytes = 0;        // flood + malformed message bytes
  std::uint64_t malformed_messages = 0;

  /// Server-side handshake-layer energy over the WHOLE run (honest and
  /// attack handshakes both; difference two runs to isolate an attack):
  /// rx/tx bytes through the radio model plus RSA private ops.
  double handshake_energy_mj = 0;
  /// handshake_energy_mj per attack byte — the DoS cost asymmetry.
  /// Meaningful for attack-dominated runs; 0 when there was no attack.
  double mj_per_attack_byte = 0;

  /// Empty when every invariant held; otherwise a semicolon-joined list
  /// of what broke (the soak tests print it on failure).
  std::string invariant_failures;
  bool invariants_ok() const { return invariant_failures.empty(); }
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config)
      : config_(std::move(config)) {}

  /// Build the world, schedule the faults, run to quiescence, judge.
  /// Each call is an independent, fully-seeded run; process-global state
  /// touched by faults (crypto::dispatch) is saved and restored.
  CampaignReport run();

 private:
  CampaignReport run_sharded();

  CampaignConfig config_;
};

}  // namespace mapsec::chaos
