// Simulated clock and event queue — the time base of mapsec::net.
//
// The paper's serving-rate analysis (Figure 3) is about what a given MIPS
// budget can sustain *per unit time*; reproducing it under concurrent,
// lossy load needs a clock every component agrees on and that tests can
// drive deterministically. Real sockets and timers would make every run
// depend on host scheduling; instead the whole transport substrate runs on
// one discrete-event queue in simulated microseconds. Two runs with the
// same seeds execute the same events in the same order, bit for bit —
// which is what lets the soak tests assert that scaling the
// PacketPipeline's worker count changes nothing observable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

namespace mapsec::net {

/// Simulated time in microseconds since the start of the run.
using SimTime = std::uint64_t;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Largest schedulable instant. One below EventQueue::kNoEvent so a
/// saturated deadline can never collide with the empty-queue sentinel.
inline constexpr SimTime kTimeCeiling = ~SimTime{0} - 1;

/// `at + delay` clamped to kTimeCeiling. Timeout arithmetic must go
/// through this (or through EventQueue::schedule_in, which uses it): a
/// wall-clock Clock can sit at an arbitrarily large monotonic offset, and
/// a plain add would wrap a far-future deadline into the past — an idle
/// timer that fires instantly instead of never.
constexpr SimTime sat_add_time(SimTime at, SimTime delay) {
  if (at >= kTimeCeiling) return kTimeCeiling;
  return delay >= kTimeCeiling - at ? kTimeCeiling : at + delay;
}

/// Discrete-event queue with a monotonic simulated clock. Events at the
/// same instant run in scheduling order (FIFO), so execution is a pure
/// function of the schedule calls — no tie-breaking on addresses or
/// hashes that could vary between runs.
class EventQueue {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to `now()` if in the
  /// past and to kTimeCeiling above). Returns an id usable with cancel().
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` at now() + delay, saturating at kTimeCeiling.
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Remove a pending event. Returns false if it already ran or was
  /// cancelled.
  bool cancel(EventId id);

  /// Run the earliest pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool run_one();

  /// Run every event with time <= deadline; the clock ends at `deadline`
  /// even if fewer events existed. Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  /// Drain the queue (events may schedule more events). `max_events` is a
  /// runaway guard; hitting it throws std::runtime_error.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  std::size_t pending() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Drop every pending event without running it. The clock is untouched.
  /// Used when a shard's world is hard-killed: its timers, retransmits and
  /// in-flight deliveries die with it, and a later warm rejoin starts from
  /// an empty schedule at the fleet's current barrier time.
  void clear();

  /// Time of the earliest pending event, or `kNoEvent` when the queue is
  /// empty. Lets a slice scheduler (ShardExecutor) bound each slice by
  /// the next instant anything can actually happen, instead of spinning
  /// through empty slices.
  static constexpr SimTime kNoEvent = ~SimTime{0};
  SimTime next_time() const {
    return events_.empty() ? kNoEvent : events_.begin()->first.when;
  }

 private:
  struct Key {
    SimTime when;
    EventId id;  // insertion order breaks ties deterministically
    bool operator<(const Key& o) const {
      return when != o.when ? when < o.when : id < o.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::map<Key, std::function<void()>> events_;
  std::map<EventId, SimTime> index_;  // id -> scheduled time, for cancel()
};

}  // namespace mapsec::net
