// Per-shard epoll reactor: one thread, one epoll instance, one clock.
//
// The sim bearer runs the whole fleet off an EventQueue; the real bearer
// needs the same timeout machinery plus actual file descriptors. The
// reactor is the marriage: it owns an EventQueue driven by a wall Clock
// (MonotonicClock in production, so ReliableLink RTOs and server idle
// sweeps fire at real deadlines), a level-triggered epoll set for the
// sockets, and a deferred-flush list so every endpoint that queued bytes
// during a dispatch round gets exactly one writev at the end of the round
// — records produced by separate send() calls coalesce into one syscall.
//
// Threading: everything runs on the reactor's thread except post(),
// which is the one cross-thread entry point (mutex-guarded queue plus an
// eventfd wakeup). A fleet runs one reactor per shard thread; reactors
// share nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mapsec/net/clock.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {

/// An endpoint whose queued output the reactor flushes at the end of the
/// current dispatch round (see Reactor::defer_flush).
class Flushable {
 public:
  virtual ~Flushable() = default;
  virtual void flush_now() = 0;
};

class Reactor {
 public:
  /// `clock` supplies the timeline the reactor's EventQueue is advanced
  /// to on every turn; it must outlive the reactor.
  explicit Reactor(Clock& clock);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  EventQueue& queue() { return queue_; }
  Clock& clock() { return clock_; }

  /// Register interest in `fd`. `on_event` receives the epoll event mask
  /// (EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP bits). Level-triggered.
  void add_fd(int fd, std::uint32_t events,
              std::function<void(std::uint32_t)> on_event);
  void modify_fd(int fd, std::uint32_t events);
  /// Deregister `fd`. Safe from inside its own (or a sibling's) event
  /// callback: the entry is marked dead and skipped for the rest of the
  /// dispatch round. Does not close the fd.
  void remove_fd(int fd);

  /// Queue `target` for one flush_now() at the end of the current poll
  /// turn. Duplicates are the caller's problem (SocketEndpoint tracks an
  /// in-list flag); a target that dies mid-round must cancel_flush().
  void defer_flush(Flushable* target);
  void cancel_flush(Flushable* target);

  /// Thread-safe: enqueue `fn` to run on the reactor thread and wake it.
  void post(std::function<void()> fn);

  /// One turn: run posted fns, advance the EventQueue to the clock, wait
  /// for fd events at most `max_wait_us` (clamped to the next timer),
  /// dispatch them, advance again, then flush deferred endpoints.
  /// Returns the number of fd events dispatched.
  std::size_t poll(SimTime max_wait_us);

  /// Turn poll() until `done()` or `wall_budget_us` of clock time passes
  /// (0 = no budget). Returns true iff `done()` stopped it.
  bool run_until(const std::function<bool()>& done, SimTime wall_budget_us = 0);

 private:
  struct FdEntry {
    std::function<void(std::uint32_t)> on_event;
    bool alive = true;
  };

  void drain_posted();
  void flush_deferred();

  Clock& clock_;
  EventQueue queue_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; post() writes, reactor thread drains
  std::unordered_map<int, std::shared_ptr<FdEntry>> fds_;
  std::vector<Flushable*> deferred_;
  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace mapsec::net
