// Slice-barrier executor for N independent event queues.
//
// The sharded serving tier gives every shard its own EventQueue — a whole
// disjoint world of channels, links, sessions and timers — and drives all
// of them in lockstep: each call to run_slice() releases one worker thread
// per shard, each thread runs its own queue up to the shared deadline, and
// the call returns only when every shard has reached it. Between slices
// the shards are quiescent and the caller (the cross-shard merge) may read
// and mutate any shard's world from its own thread; during a slice each
// world is touched by exactly one thread. That ownership hand-off is the
// entire concurrency contract — no shared mutable state, no locks inside
// the simulation, and the per-shard event order (hence the fleet
// transcript) is a pure function of the schedules, never of host thread
// timing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {

class ShardExecutor {
 public:
  /// Takes non-owning pointers to the per-shard queues; they must outlive
  /// the executor. Spawns one persistent worker thread per queue.
  explicit ShardExecutor(std::vector<EventQueue*> queues);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Run every shard up to `deadline` (inclusive) and block until all have
  /// reached it. After return each shard's clock reads exactly `deadline`
  /// and the caller owns every world until the next call.
  void run_slice(SimTime deadline);

  /// Earliest pending event time across all shards, or EventQueue::kNoEvent
  /// when every queue is drained. Only valid between slices.
  SimTime next_event_time() const;

  /// Total events executed across all shards so far.
  std::size_t events_run() const { return events_run_; }

  std::size_t shards() const { return queues_.size(); }

 private:
  void worker(std::size_t shard);

  std::vector<EventQueue*> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_;
  SimTime deadline_ = 0;
  std::uint64_t generation_ = 0;  // bumped per slice; workers wait on it
  std::size_t running_ = 0;       // workers still inside the current slice
  bool stop_ = false;
  std::vector<std::size_t> slice_counts_;  // events run, per shard
  std::size_t events_run_ = 0;
};

}  // namespace mapsec::net
