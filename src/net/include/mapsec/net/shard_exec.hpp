// Slice-barrier executor for N independent event queues.
//
// The sharded serving tier gives every shard its own EventQueue — a whole
// disjoint world of channels, links, sessions and timers — and drives all
// of them in lockstep: each call to run_slice() releases one worker thread
// per shard, each thread runs its own queue up to the shared deadline, and
// the call returns only when every shard has reached it. Between slices
// the shards are quiescent and the caller (the cross-shard merge) may read
// and mutate any shard's world from its own thread; during a slice each
// world is touched by exactly one thread. That ownership hand-off is the
// entire concurrency contract — no shared mutable state, no locks inside
// the simulation, and the per-shard event order (hence the fleet
// transcript) is a pure function of the schedules, never of host thread
// timing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {

/// A rendezvous point a fault can park a shard thread on, mid-event. The
/// hang-injection protocol: a chaos fault schedules an event that calls
/// wait() — the shard thread blocks *inside* its slice, so the barrier in
/// run_slice() cannot complete until someone calls release(). That someone
/// is the executor's watchdog (see set_watchdog), which fires on wall
/// clock, releases engaged latches, and reports which shards were stuck so
/// the supervisor can hard-kill them with deterministic accounting.
///
/// release(false) only opens a latch a thread has actually engaged —
/// a latch whose event has not run yet stays armed, so a slow-but-healthy
/// shard can never be mistaken for a hung one. release(true) opens the
/// latch unconditionally (shutdown path: a latch whose event never runs
/// must not wedge a worker that reaches it later).
class HangLatch {
 public:
  /// Blocks the calling (shard) thread until release(). Call from inside
  /// a scheduled event only.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    engaged_ = true;
    cv_.wait(lock, [this] { return released_; });
  }

  /// Returns true when THIS call opened a latch a thread had engaged
  /// (transition-only, so a repeated watchdog firing never double-reports
  /// a shard). `force` opens the latch even if nothing is blocked on it.
  bool release(bool force) {
    std::lock_guard<std::mutex> lock(mu_);
    if (released_) return false;
    if (!engaged_ && !force) return false;
    released_ = true;
    cv_.notify_all();
    return engaged_;
  }

  bool engaged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return engaged_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool engaged_ = false;
  bool released_ = false;
};

class ShardExecutor {
 public:
  /// Takes non-owning pointers to the per-shard queues; they must outlive
  /// the executor. Spawns one persistent worker thread per queue.
  explicit ShardExecutor(std::vector<EventQueue*> queues);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Run every shard up to `deadline` (inclusive) and block until all have
  /// reached it. After return each shard's clock reads exactly `deadline`
  /// and the caller owns every world until the next call.
  void run_slice(SimTime deadline);

  /// Arm a wall-clock watchdog over run_slice. When a slice has not
  /// completed after `wall` of real time, `unstick(false)` is invoked
  /// (off-lock) and must release whatever is blocking shard threads
  /// (HangLatch::release), returning the shard indexes that were actually
  /// stuck. The slice then completes normally and the stuck set is
  /// reported via last_stragglers(). The stuck set is a property of the
  /// simulated schedule (which latches a fault engaged), never of host
  /// timing, so detection stays deterministic; the wall clock only bounds
  /// how long the coordinator waits. Destruction calls `unstick(true)`
  /// before joining so a latched thread can never deadlock shutdown.
  void set_watchdog(std::chrono::milliseconds wall,
                    std::function<std::vector<std::size_t>(bool force)> unstick);

  /// Shards the watchdog found hung during the most recent run_slice()
  /// (empty when the slice completed without intervention).
  const std::vector<std::size_t>& last_stragglers() const {
    return stragglers_;
  }

  /// Earliest pending event time across all shards, or EventQueue::kNoEvent
  /// when every queue is drained. Only valid between slices.
  SimTime next_event_time() const;

  /// Total events executed across all shards so far.
  std::size_t events_run() const { return events_run_; }

  std::size_t shards() const { return queues_.size(); }

 private:
  void worker(std::size_t shard);

  std::vector<EventQueue*> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_;
  SimTime deadline_ = 0;
  std::uint64_t generation_ = 0;  // bumped per slice; workers wait on it
  std::size_t running_ = 0;       // workers still inside the current slice
  bool stop_ = false;
  std::vector<std::size_t> slice_counts_;  // events run, per shard
  std::size_t events_run_ = 0;

  std::chrono::milliseconds watchdog_wall_{0};  // 0 = watchdog disarmed
  std::function<std::vector<std::size_t>(bool)> unstick_;
  std::vector<std::size_t> stragglers_;
};

}  // namespace mapsec::net
