// Pooled buffer slabs for the socket bearer's record path.
//
// The OMA DRM embedded study in PAPERS.md makes the uncomfortable point
// that once the crypto kernels are paid for, protocol-stack overhead —
// allocation, copying, syscalls — is what dominates an appliance-class
// port. The real-socket bearer is therefore built against this arena: a
// fixed-size slab recycler whose steady state allocates nothing. Every
// per-connection rx/tx byte queue (SlabQueue) borrows slabs, readv
// scatters straight into them, writev gathers straight out of them, and
// a closed connection returns its slabs to the free list for the next
// one. The Stats counters are the audit trail: `allocations` only moves
// when the free list was empty — which, by construction, is exactly when
// `in_use` reaches a new peak — so a fleet that pre-reserves its working
// set and finishes with `allocations == reserved` has provably served
// all traffic without a single record-path allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::net {

/// A writable or readable span of one slab — iovec without <sys/uio.h>.
struct IoSlice {
  std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

class BufferArena {
 public:
  struct Stats {
    std::uint64_t allocations = 0;  // slabs malloc'd (free list was empty)
    std::uint64_t acquires = 0;     // slab checkouts (hits + allocations)
    std::uint64_t recycles = 0;     // slabs returned to the free list
    std::size_t in_use = 0;         // currently checked out
    std::size_t peak_in_use = 0;    // high-water mark of in_use
  };

  explicit BufferArena(std::size_t slab_bytes = 16 * 1024);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  std::uint8_t* acquire();
  void recycle(std::uint8_t* slab);

  /// Pre-warm the free list to at least `slabs` slabs. A fleet reserves
  /// its expected working set up front, then gates `allocations` staying
  /// equal to the reserve: proof the traffic never grew the pool.
  void reserve(std::size_t slabs);

  std::size_t slab_bytes() const { return slab_bytes_; }
  std::size_t free_slabs() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> owned_;
  std::vector<std::uint8_t*> free_;
  Stats stats_;
};

/// Byte FIFO over arena slabs with scatter/gather views. The socket
/// bearer keeps one per direction per connection: readv() lands bytes in
/// the regions writable() exposes (tail free space plus one staged spare
/// slab — genuine scatter once the tail is partially filled), writev()
/// drains the regions gather() exposes. All slabs go back to the arena
/// on release() or destruction. Only the front/back slabs are partial;
/// every interior slab is full.
class SlabQueue {
 public:
  explicit SlabQueue(BufferArena& arena)
      : arena_(arena), slab_bytes_(arena.slab_bytes()) {}
  ~SlabQueue() { release(); }

  SlabQueue(const SlabQueue&) = delete;
  SlabQueue& operator=(const SlabQueue&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slabs currently borrowed from the arena (incl. the staged spare).
  std::size_t slabs_held() const { return slabs_.size() + (spare_ ? 1 : 0); }

  /// Copy `data` onto the tail.
  void append(crypto::ConstBytes data);

  /// Expose up to two writable regions for a scatter read: the tail
  /// slab's free space (when partial) and a staged spare slab. Returns
  /// the region count (>= 1). Call commit(n) with the bytes actually
  /// written; no other mutation may intervene.
  std::size_t writable(IoSlice out[2]);
  void commit(std::size_t n);

  /// Copy up to `n` head bytes into `dst` without consuming. Returns the
  /// number copied.
  std::size_t peek(std::uint8_t* dst, std::size_t n) const;

  /// Contiguous view of `n` bytes starting `offset` into the queue.
  /// Returns an in-slab pointer when the range does not cross a slab
  /// boundary, otherwise copies into `scratch` (caller-supplied, >= n
  /// bytes) and returns that. Valid until the next mutation.
  const std::uint8_t* view(std::size_t offset, std::size_t n,
                           std::uint8_t* scratch) const;

  /// Drop `n` head bytes, recycling emptied slabs.
  void consume(std::size_t n);

  /// Expose up to `max` head regions for a gather write. Returns the
  /// region count.
  std::size_t gather(IoSlice* out, std::size_t max) const;

  /// Recycle every slab (including the spare); the queue ends empty.
  void release();

 private:
  // Bytes the front slab holds: up to tail_ when it is also the back.
  std::size_t front_end() const {
    return slabs_.size() == 1 ? tail_ : slab_bytes_;
  }

  BufferArena& arena_;
  std::size_t slab_bytes_;
  std::vector<std::uint8_t*> slabs_;  // FIFO: front = oldest
  std::size_t head_ = 0;  // consumed bytes of slabs_.front()
  std::size_t tail_ = 0;  // used bytes of slabs_.back()
  std::uint8_t* spare_ = nullptr;  // staged readv target, not yet in FIFO
  std::size_t size_ = 0;
};

}  // namespace mapsec::net
