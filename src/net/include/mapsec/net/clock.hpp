// Time sources for the two bearers.
//
// Every timeout in mapsec::net and mapsec::server is SimTime microseconds
// on an EventQueue. On the simulated bearer the queue advances itself; on
// the real-socket bearer something must tell it what time it is. Clock is
// that something: an injected monotonic microsecond source the Reactor
// samples each iteration to run due timers (EventQueue::run_until) and to
// bound its epoll_wait by the next deadline. SimClockView adapts a queue
// back to the interface so timeout machinery written against Clock drives
// either world; MonotonicClock is CLOCK_MONOTONIC rebased to a caller-
// chosen origin — tests set origins near kTimeCeiling to prove the
// timeout arithmetic saturates instead of wrapping.
#pragma once

#include <cstdint>

#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds. Never decreases; never exceeds kTimeCeiling.
  virtual SimTime now_us() const = 0;
};

/// The simulated bearer's time: whatever the event queue says.
class SimClockView final : public Clock {
 public:
  explicit SimClockView(const EventQueue& queue) : queue_(queue) {}
  SimTime now_us() const override { return queue_.now(); }

 private:
  const EventQueue& queue_;
};

/// CLOCK_MONOTONIC in microseconds, rebased so that construction time
/// reads as `origin_us`. The default origin 0 gives a run-relative clock
/// (an EventQueue driven by it starts near 0, like a sim run); a large
/// origin exercises the far-offset arithmetic paths.
class MonotonicClock final : public Clock {
 public:
  explicit MonotonicClock(SimTime origin_us = 0);
  SimTime now_us() const override;

 private:
  std::uint64_t base_raw_us_;  // raw monotonic reading at construction
  SimTime origin_us_;
};

}  // namespace mapsec::net
