// Reliable, message-oriented ARQ link over a pair of lossy channels.
//
// The handshake endpoints in mapsec::protocol are flight-oriented: each
// process() call consumes one complete flight of records. A bearer that
// loses, duplicates and reorders frames therefore needs a thin reliability
// layer underneath — exactly the arrangement the paper's protocol stacks
// assume (WTLS over WDP gets this from the transport; TLS gets it from
// TCP). This link provides it: messages are length-prefixed, fragmented
// into sequenced segments no larger than the channel MTU, delivered
// in order exactly once, with cumulative acks, per-segment retransmission
// timers, exponential backoff, and a bounded retry budget. When the
// budget is exhausted the link declares itself dead and reports the error
// once — the clean-failure path the session layer's retry logic builds on.
//
// Frame formats (big-endian):
//   DATA: 0x01 | seq(4) | payload
//   ACK:  0x02 | next_needed(4)      (cumulative)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "mapsec/net/channel.hpp"

namespace mapsec::net {

struct LinkConfig {
  std::size_t segment_payload = 512;  // max payload bytes per DATA frame
  std::size_t window = 16;            // max unacked segments in flight
  SimTime initial_rto_us = 50'000;    // first retransmission timeout
  SimTime max_rto_us = 800'000;       // per-retransmission backoff ceiling
  int max_retries = 8;  // retransmissions per segment before giving up

  /// Clamp on one segment's CUMULATIVE backoff: once the sum of its
  /// waits exceeds this the link fails cleanly, even when max_retries is
  /// huge (bounds time-to-failure during blackouts). 0 = no ceiling.
  SimTime total_backoff_ceiling_us = 0;

  /// Largest inbound message the reassembly stream will buffer. A peer
  /// announcing a bigger length prefix (malicious or corrupted) kills
  /// the link via on_error instead of growing memory. 0 = unlimited.
  std::size_t max_message_size = 1 << 20;
};

struct LinkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicate_segments = 0;  // received and discarded
  std::uint64_t acks_sent = 0;
};

class ReliableLink {
 public:
  /// `tx` carries this side's DATA and ACK frames; `rx` delivers the
  /// peer's. Installs itself as `rx`'s receiver and error subscriber (a
  /// bearer-reported death — socket reset, peer EOF — fails the link
  /// immediately instead of burning the retry budget against a dead
  /// transport). All referenced objects must outlive the link; call
  /// shutdown() before destroying a link that may still have frames in
  /// flight on `rx`.
  ReliableLink(EventQueue& queue, Channel& tx, Channel& rx,
               LinkConfig config);
  ~ReliableLink();

  ReliableLink(const ReliableLink&) = delete;
  ReliableLink& operator=(const ReliableLink&) = delete;

  /// Complete messages from the peer, in order, exactly once.
  void set_on_message(std::function<void(crypto::ConstBytes)> fn) {
    on_message_ = std::move(fn);
  }

  /// Called once, when the retry budget of any segment is exhausted.
  void set_on_error(std::function<void(const std::string&)> fn) {
    on_error_ = std::move(fn);
  }

  /// Queue a message for reliable delivery. Returns false if the link is
  /// dead (message discarded).
  bool send_message(crypto::ConstBytes message);

  /// Nothing queued or in flight on the send side.
  bool idle() const { return unsent_.empty() && inflight_.empty(); }
  bool dead() const { return dead_; }

  /// Cancel all timers, drop queued data and detach from the rx channel.
  /// Does not fire on_error. Safe to call repeatedly.
  void shutdown();

  const LinkStats& stats() const { return stats_; }

 private:
  struct Inflight {
    crypto::Bytes frame;  // complete DATA frame, ready to retransmit
    int retries = 0;
    SimTime rto;
    SimTime backoff_spent = 0;  // cumulative waits, for the ceiling check
    EventId timer = 0;
  };

  void on_frame(crypto::ConstBytes frame);
  void on_data(std::uint32_t seq, crypto::ConstBytes payload);
  void on_ack(std::uint32_t next_needed);
  void fill_window();
  void arm_timer(std::uint32_t seq);
  void handle_timeout(std::uint32_t seq);
  void deliver_ready();
  void fail(const std::string& reason);

  EventQueue& queue_;
  Channel& tx_;
  Channel& rx_;
  LinkConfig config_;

  // Send side.
  std::deque<crypto::Bytes> unsent_;  // segments not yet transmitted
  std::map<std::uint32_t, Inflight> inflight_;
  std::uint32_t send_base_ = 0;  // oldest unacked seq
  std::uint32_t next_seq_ = 0;   // next seq to assign

  // Receive side.
  std::uint32_t recv_next_ = 0;  // next in-order seq expected
  std::map<std::uint32_t, crypto::Bytes> out_of_order_;
  crypto::Bytes rx_stream_;  // reassembled, not yet parsed into messages

  bool dead_ = false;
  std::function<void(crypto::ConstBytes)> on_message_;
  std::function<void(const std::string&)> on_error_;
  LinkStats stats_;
};

}  // namespace mapsec::net
