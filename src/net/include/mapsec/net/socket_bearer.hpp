// Real-socket bearer: nonblocking loopback TCP under the session stack.
//
// Everything above the Channel seam — ReliableLink, the handshake state
// machines, SecureSessionServer, the chaos campaigns — was built against
// simulated bearers. This file supplies the other implementation of the
// same seam: a SocketEndpoint wraps one connected TCP fd and exposes two
// Channel facades (tx/rx) that frame records with FrameCodec, queue bytes
// in arena-backed SlabQueues, and move them with vectored syscalls —
// writev gathers every record queued during a reactor round into one
// submission, readv scatters into pooled slabs. A SocketListener accepts
// on 127.0.0.1 and hands fresh endpoints to the shard that owns the
// reactor. Steady state allocates nothing on the record path: all byte
// storage is borrowed from the shard's BufferArena and recycled on
// connection close.
//
// Fault hooks for chaos campaigns: reset() arms SO_LINGER{0} and closes,
// so the peer sees a hard RST mid-whatever; SocketListener::set_paused()
// stops servicing accepts so the kernel backlog overflows like a stalled
// appliance. Both map the campaigns' simulated bearer faults onto the
// real transport.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/net/buffer_arena.hpp"
#include "mapsec/net/channel.hpp"
#include "mapsec/net/reactor.hpp"

namespace mapsec::net {

struct SocketConfig {
  /// Largest frame payload accepted or sent; mirrors ReliableLink's
  /// max_message_size so an oversize length prefix dies at the bearer
  /// before any buffer is sized by it.
  std::size_t max_frame_bytes = 1 << 20;
  std::size_t max_tx_slabs = 256;  // per-connection queued-output bound
  std::size_t max_rx_slabs = 256;  // per-connection inbound backlog bound
  int listen_backlog = 64;
  bool reuseport = false;
  bool nodelay = true;
  int sndbuf_bytes = 0;  // 0 = kernel default (tests shrink for backpressure)
  int rcvbuf_bytes = 0;
};

struct SocketStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t readv_calls = 0;
  std::uint64_t partial_writes = 0;  // writev moved some but not all bytes
  std::uint64_t eagain_writes = 0;   // writev found the socket full
  std::uint64_t failures = 0;        // terminal errors (reset, oversize, ...)

  SocketStats& operator+=(const SocketStats& o) {
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    writev_calls += o.writev_calls;
    readv_calls += o.readv_calls;
    partial_writes += o.partial_writes;
    eagain_writes += o.eagain_writes;
    failures += o.failures;
    return *this;
  }
};

/// True iff this host can bind/connect loopback TCP (probed once).
/// Tests and CI stages gate on it so sandboxes without network stacks
/// skip visibly instead of failing.
bool sockets_available();

/// One connected TCP socket presented as a pair of Channel halves.
/// Single-threaded: all methods (and the fd callbacks) run on the owning
/// reactor's thread.
class SocketEndpoint final : public Flushable {
 public:
  /// Wrap an already-connected (or connect-in-progress) nonblocking fd.
  SocketEndpoint(Reactor& reactor, BufferArena& arena, int fd,
                 const SocketConfig& config, bool connecting = false);
  ~SocketEndpoint() override;

  SocketEndpoint(const SocketEndpoint&) = delete;
  SocketEndpoint& operator=(const SocketEndpoint&) = delete;

  /// Outbound half: send() frames onto the socket.
  Channel& tx() { return tx_half_; }
  /// Inbound half: set_receiver() gets each decoded frame.
  Channel& rx() { return rx_half_; }

  bool open() const { return open_; }
  const SocketStats& stats() const { return stats_; }

  /// Endpoint-level death notification (in addition to any Channel-half
  /// subscribers) — the fleet uses it to prune and account. Runs with
  /// the endpoint still on the stack: mark for pruning, never delete
  /// the endpoint from inside the callback.
  void set_on_error(std::function<void(const std::string&)> on_error) {
    on_error_ = std::move(on_error);
  }

  /// Close without notifying anyone (orderly local teardown).
  void close_quiet();

  /// Chaos hook: SO_LINGER{0} + close, so the peer takes a hard RST.
  /// Local subscribers are notified with an "injected reset" failure.
  void reset();

  void flush_now() override;

 private:
  class Half final : public Channel {
   public:
    explicit Half(SocketEndpoint* owner) : owner_(owner) {}
    void set_receiver(
        std::function<void(crypto::ConstBytes)> on_frame) override {
      owner_->set_receiver(std::move(on_frame));
    }
    void send(crypto::ConstBytes frame) override {
      owner_->send_frame(frame);
    }
    void set_on_channel_error(
        std::function<void(const std::string&)> on_error) override {
      on_channel_error_ = std::move(on_error);
    }

   private:
    friend class SocketEndpoint;
    SocketEndpoint* owner_;
    std::function<void(const std::string&)> on_channel_error_;
  };

  void set_receiver(std::function<void(crypto::ConstBytes)> on_frame);
  void send_frame(crypto::ConstBytes payload);
  void on_event(std::uint32_t mask);
  void finish_connect(std::uint32_t mask);
  void handle_readable();
  void parse_frames();
  void update_interest();
  void fail(const std::string& reason);
  void teardown();

  Reactor& reactor_;
  SocketConfig config_;
  int fd_;
  Half tx_half_{this};
  Half rx_half_{this};
  SlabQueue rx_q_;
  SlabQueue tx_q_;
  crypto::Bytes scratch_;  // frame reassembly across slab boundaries
  std::function<void(crypto::ConstBytes)> receiver_;
  std::function<void(const std::string&)> on_error_;
  SocketStats stats_;
  bool open_ = true;
  bool connecting_;
  bool want_write_ = false;   // EPOLLOUT armed (backpressure)
  bool in_flush_list_ = false;
  bool reads_paused_ = false;  // receiver detached and backlog at watermark
  bool parsing_ = false;
  bool failing_ = false;
};

/// Accepting socket on 127.0.0.1:<port>. Each accepted connection is
/// wrapped in a SocketEndpoint and handed to the on_accept callback on
/// the reactor thread.
class SocketListener {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port()).
  SocketListener(Reactor& reactor, BufferArena& arena,
                 const SocketConfig& config, std::uint16_t port);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  std::uint64_t accepted() const { return accepted_; }

  void set_on_accept(
      std::function<void(std::unique_ptr<SocketEndpoint>)> on_accept) {
    on_accept_ = std::move(on_accept);
  }

  /// Chaos hook: while paused the reactor ignores the listen fd, the
  /// kernel backlog fills, and further SYNs overflow the accept queue.
  void set_paused(bool paused);
  bool paused() const { return paused_; }

 private:
  void handle_acceptable();

  Reactor& reactor_;
  BufferArena& arena_;
  SocketConfig config_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t accepted_ = 0;
  bool paused_ = false;
  std::function<void(std::unique_ptr<SocketEndpoint>)> on_accept_;
};

/// Begin a nonblocking connect to 127.0.0.1:`port`. The endpoint flushes
/// queued frames once the connect completes; a refused/failed connect
/// surfaces through the endpoint's error callbacks. Returns nullptr only
/// if a socket cannot be created at all.
std::unique_ptr<SocketEndpoint> connect_endpoint(Reactor& reactor,
                                                 BufferArena& arena,
                                                 const SocketConfig& config,
                                                 std::uint16_t port);

}  // namespace mapsec::net
