// Length-prefixed record framing, shared by both bearers.
//
// One message = a 4-byte big-endian payload length followed by the
// payload. ReliableLink uses it to cut messages out of its reassembled
// segment stream (the sim bearer), SocketEndpoint to cut frames out of a
// TCP byte stream (the real bearer) — same codec, so a transcript is
// framed identically on either transport. The format carries no sync
// marker on purpose: both carriers are reliable ordered byte streams, so
// a bad length prefix means the stream itself is corrupt (or hostile) and
// the only safe recovery is to kill the connection. inspect() therefore
// classifies, it never resynchronizes: an announced length above the
// caller's bound is kOversize — a terminal verdict the caller turns into
// a clean link/connection failure with bounded memory, never an
// allocation sized by the attacker's prefix.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::net {

class FrameCodec {
 public:
  static constexpr std::size_t kHeaderBytes = 4;

  enum class Status {
    kNeedMore,  // header or payload still incomplete — keep reading
    kFrame,     // a complete frame is at the head of the stream
    kOversize,  // announced length exceeds the bound — kill the stream
  };

  struct Head {
    Status status = Status::kNeedMore;
    /// Announced payload length; valid once >= kHeaderBytes were seen
    /// (i.e. for kFrame, kOversize, and payload-incomplete kNeedMore).
    std::uint32_t payload_len = 0;
  };

  /// Classify the head of a byte stream. `max_payload` bounds the
  /// announced length (0 = unbounded). Pure: consuming the frame's
  /// kHeaderBytes + payload_len bytes is the caller's move.
  static Head inspect(const std::uint8_t* data, std::size_t size,
                      std::size_t max_payload);

  /// Write the 4-byte header for a payload of `len` bytes.
  static void encode_header(std::uint32_t len, std::uint8_t out[kHeaderBytes]);

  /// Append header + payload to `out`.
  static void append_frame(crypto::Bytes& out, crypto::ConstBytes payload);
};

}  // namespace mapsec::net
