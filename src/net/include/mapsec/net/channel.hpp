// Lossy in-memory channels — the bearer model under the session server.
//
// Section 2 of the paper grounds every protocol decision in the bearers
// mobile appliances actually get: narrowband, high-latency, lossy links
// (GSM SMS/CSD, GPRS, 802.11 at range). This models that class of link as
// a unidirectional frame pipe with seeded, configurable impairments:
// random loss, duplication, reordering, propagation latency with jitter,
// and a serialization bandwidth cap. All randomness comes from an
// injected Rng, and all timing from the shared EventQueue, so a channel's
// behaviour is a pure function of (config, seed, traffic).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace mapsec::net {

struct ChannelConfig {
  double loss_rate = 0;     // P(frame silently dropped)
  double dup_rate = 0;      // P(frame delivered twice)
  double reorder_rate = 0;  // P(frame held back so later frames overtake it)
  SimTime latency_us = 1'000;       // propagation delay
  SimTime jitter_us = 0;            // extra uniform [0, jitter_us)
  SimTime reorder_extra_us = 5'000;  // hold-back applied to reordered frames
  double bytes_per_sec = 0;          // serialization rate; 0 = unlimited
  std::size_t mtu = 1024;            // frames larger than this are dropped

  // Gilbert-Elliott burst loss: a two-state Markov chain advanced once
  // per frame, layered on top of the independent loss_rate above. Bad
  // states model the fade/interference bursts real bearers exhibit
  // (and chaos campaigns inject); disabled by default so the rng draw
  // sequence of existing configurations is unchanged.
  bool ge_enabled = false;
  double ge_p_good_to_bad = 0.05;  // P(good -> bad) per frame
  double ge_p_bad_to_good = 0.30;  // P(bad -> good) per frame
  double ge_loss_good = 0.0;       // P(drop | good state)
  double ge_loss_bad = 0.8;        // P(drop | bad state)
};

struct ChannelStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_burst = 0;  // Gilbert-Elliott bad-state drops
  std::uint64_t dropped_oversize = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

/// Abstract unidirectional frame bearer — the seam between the session
/// stack and its transport. ReliableLink and SecureSessionServer speak
/// only this interface, so the same protocol code runs over a simulated
/// LossyChannel or a real TCP connection (SocketEndpoint's half-channel
/// facades) without knowing which.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Install the receiver for inbound frames. Replacing it detaches the
  /// previous one; nullptr detaches.
  virtual void set_receiver(std::function<void(crypto::ConstBytes)> on_frame) = 0;

  /// Offer a frame to the channel. Delivery is asynchronous and, for
  /// lossy bearers, not guaranteed.
  virtual void send(crypto::ConstBytes frame) = 0;

  /// Bearer death notification (peer reset, syscall failure). The
  /// simulated bearer never errors, hence the empty default; the socket
  /// bearer reports through this so a ReliableLink fails immediately
  /// instead of waiting out its retry budget against a dead socket.
  virtual void set_on_channel_error(
      std::function<void(const std::string&)> on_error) {
    (void)on_error;
  }
};

/// One direction of a link. Frames pushed with send() arrive (or not) at
/// the receiver callback after the configured impairments. The queue and
/// rng must outlive the channel, and the channel must outlive any frames
/// still in flight (in practice: keep channels alive until the event
/// queue drains).
class LossyChannel final : public Channel {
 public:
  LossyChannel(EventQueue& queue, ChannelConfig config, crypto::Rng& rng)
      : queue_(queue), config_(config), rng_(rng) {}

  LossyChannel(const LossyChannel&) = delete;
  LossyChannel& operator=(const LossyChannel&) = delete;

  /// Install the receiver. Replacing it detaches the previous one; frames
  /// already in flight deliver to whichever receiver is installed when
  /// they land.
  void set_receiver(std::function<void(crypto::ConstBytes)> on_frame) override {
    on_frame_ = std::move(on_frame);
  }

  /// Offer a frame to the channel. Loss/duplication/reordering and delay
  /// are decided immediately (one rng draw sequence per send), delivery
  /// happens via the event queue.
  void send(crypto::ConstBytes frame) override;

  const ChannelStats& stats() const { return stats_; }
  const ChannelConfig& config() const { return config_; }

  /// Live-mutable impairments. Frames already in flight keep the timing
  /// they were scheduled with; frames sent after a change see the new
  /// weather. This is the hook chaos campaigns use for blackouts, bearer
  /// flaps and bandwidth collapse — changes are only deterministic if the
  /// caller makes them from the same EventQueue the channel runs on.
  ChannelConfig& mutable_config() { return config_; }

 private:
  bool chance(double p);
  void schedule_delivery(crypto::Bytes frame, SimTime at);

  EventQueue& queue_;
  ChannelConfig config_;
  crypto::Rng& rng_;
  std::function<void(crypto::ConstBytes)> on_frame_;
  SimTime link_free_at_ = 0;  // serialization: when the link next idles
  bool ge_bad_ = false;       // Gilbert-Elliott state (starts good)
  ChannelStats stats_;
};

/// A bidirectional link: two independently-impaired directions sharing
/// one rng (the connection's "weather"), seeded per connection so runs
/// are reproducible regardless of how connections interleave.
class DuplexChannel {
 public:
  DuplexChannel(EventQueue& queue, const ChannelConfig& a_to_b,
                const ChannelConfig& b_to_a, std::uint64_t seed)
      : rng_(seed),
        a_to_b_(queue, a_to_b, rng_),
        b_to_a_(queue, b_to_a, rng_) {}

  LossyChannel& a_to_b() { return a_to_b_; }
  LossyChannel& b_to_a() { return b_to_a_; }

 private:
  crypto::HmacDrbg rng_;
  LossyChannel a_to_b_;
  LossyChannel b_to_a_;
};

}  // namespace mapsec::net
