#include "mapsec/net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>

namespace mapsec::net {

Reactor::Reactor(Clock& clock) : clock_(clock) {
  // Seed the EventQueue's origin so relative timers land on the same
  // timeline now_us() reports.
  queue_.run_until(clock_.now_us());
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void Reactor::add_fd(int fd, std::uint32_t events,
                     std::function<void(std::uint32_t)> on_event) {
  auto entry = std::make_shared<FdEntry>();
  entry->on_event = std::move(on_event);
  fds_[fd] = std::move(entry);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void Reactor::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void Reactor::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second->alive = false;  // events already harvested this round skip it
  fds_.erase(it);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void Reactor::defer_flush(Flushable* target) { deferred_.push_back(target); }

void Reactor::cancel_flush(Flushable* target) {
  deferred_.erase(std::remove(deferred_.begin(), deferred_.end(), target),
                  deferred_.end());
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void Reactor::flush_deferred() {
  // Endpoints may re-defer while flushing (partial write re-arms); take
  // the list by value so re-entries land in the next round's list.
  std::vector<Flushable*> batch;
  batch.swap(deferred_);
  for (Flushable* f : batch) f->flush_now();
}

std::size_t Reactor::poll(SimTime max_wait_us) {
  drain_posted();
  queue_.run_until(clock_.now_us());
  flush_deferred();

  // Sleep no further than the next timer deadline.
  SimTime wait_us = max_wait_us;
  SimTime next = queue_.next_time();
  if (next != EventQueue::kNoEvent) {
    SimTime now = clock_.now_us();
    SimTime until_timer = next > now ? next - now : 0;
    wait_us = std::min(wait_us, until_timer);
  }
  int timeout_ms = static_cast<int>(
      std::min<SimTime>((wait_us + 999) / 1000, 60'000));

  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  std::size_t dispatched = 0;
  if (n > 0) {
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      // Hold a ref: the callback may remove_fd(fd) (or a sibling's may),
      // which only marks the entry dead.
      std::shared_ptr<FdEntry> entry = it->second;
      if (!entry->alive) continue;
      entry->on_event(events[i].events);
      ++dispatched;
    }
  }

  drain_posted();
  queue_.run_until(clock_.now_us());
  flush_deferred();
  return dispatched;
}

bool Reactor::run_until(const std::function<bool()>& done,
                        SimTime wall_budget_us) {
  SimTime deadline =
      wall_budget_us == 0 ? EventQueue::kNoEvent : sat_add_time(clock_.now_us(), wall_budget_us);
  for (;;) {
    if (done()) return true;
    SimTime now = clock_.now_us();
    if (deadline != EventQueue::kNoEvent && now >= deadline) return false;
    SimTime wait = 10'000;  // 10 ms cap keeps done()/budget checks timely
    if (deadline != EventQueue::kNoEvent && deadline - now < wait) wait = deadline - now;
    poll(wait);
  }
}

}  // namespace mapsec::net
