#include "mapsec/net/shard_exec.hpp"

namespace mapsec::net {

ShardExecutor::ShardExecutor(std::vector<EventQueue*> queues)
    : queues_(std::move(queues)), slice_counts_(queues_.size(), 0) {
  threads_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i)
    threads_.emplace_back([this, i] { worker(i); });
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // A shard thread parked on a HangLatch mid-slice would never observe
  // stop_; open every latch unconditionally so join() is bounded by real
  // work, not by a fault that was injected and never repaired.
  if (unstick_) unstick_(/*force=*/true);
  for (auto& t : threads_) t.join();
}

void ShardExecutor::set_watchdog(
    std::chrono::milliseconds wall,
    std::function<std::vector<std::size_t>(bool force)> unstick) {
  watchdog_wall_ = wall;
  unstick_ = std::move(unstick);
}

void ShardExecutor::run_slice(SimTime deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  stragglers_.clear();
  deadline_ = deadline;
  running_ = queues_.size();
  ++generation_;  // releases the workers; the mutex publishes the worlds
  cv_.notify_all();
  const auto done = [this] { return running_ == 0; };
  if (watchdog_wall_.count() > 0 && unstick_) {
    // Wall-clock bounded wait: when the barrier stalls past the budget,
    // ask the unstick hook to open any engaged hang latches. Only latches
    // a thread actually reached are opened (release(false)), so which
    // shards land in stragglers_ is decided by the simulated schedule —
    // a slow healthy shard just earns another wait round. The loop keeps
    // waiting until the barrier completes; liveness is restored by the
    // unstick call, determinism by the latch engagement rule.
    while (!cv_.wait_for(lock, watchdog_wall_, done)) {
      lock.unlock();
      std::vector<std::size_t> stuck = unstick_(/*force=*/false);
      lock.lock();
      for (std::size_t s : stuck) stragglers_.push_back(s);
    }
  } else {
    cv_.wait(lock, done);
  }
  // The same mutex acquisition that observed running_ == 0 also
  // establishes happens-before with every worker's writes: the caller now
  // owns all shard worlds until the next run_slice().
  for (std::size_t i = 0; i < queues_.size(); ++i)
    events_run_ += slice_counts_[i];
}

SimTime ShardExecutor::next_event_time() const {
  SimTime next = EventQueue::kNoEvent;
  for (const EventQueue* q : queues_)
    if (q->next_time() < next) next = q->next_time();
  return next;
}

void ShardExecutor::worker(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime deadline;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      deadline = deadline_;
    }
    // Exclusive ownership of this shard's world for the whole slice.
    const std::size_t count = queues_[shard]->run_until(deadline);
    {
      std::lock_guard<std::mutex> lock(mu_);
      slice_counts_[shard] = count;
      if (--running_ == 0) cv_.notify_all();
    }
  }
}

}  // namespace mapsec::net
