#include "mapsec/net/channel.hpp"

#include <algorithm>
#include <utility>

namespace mapsec::net {

bool LossyChannel::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  // 32-bit draw keeps the rng consumption per decision fixed.
  return rng_.next_u32() < static_cast<std::uint32_t>(p * 4294967296.0);
}

void LossyChannel::send(crypto::ConstBytes frame) {
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (frame.size() > config_.mtu) {
    ++stats_.dropped_oversize;
    return;
  }

  // Serialization: frames occupy the link back to back at bytes_per_sec.
  SimTime departure = std::max(queue_.now(), link_free_at_);
  if (config_.bytes_per_sec > 0) {
    const SimTime tx_us = static_cast<SimTime>(
        frame.size() * 1e6 / config_.bytes_per_sec);
    departure += tx_us;
    link_free_at_ = departure;
  }

  // Impairment decisions draw from the rng in a fixed order per frame so
  // the consumption pattern (and thus every later draw) is reproducible.
  // The Gilbert-Elliott chain advances first (state transition, then the
  // state-conditioned loss draw); it consumes rng only when enabled, so
  // configurations without burst loss keep their historical draw stream.
  bool burst_lost = false;
  if (config_.ge_enabled) {
    ge_bad_ = ge_bad_ ? !chance(config_.ge_p_bad_to_good)
                      : chance(config_.ge_p_good_to_bad);
    burst_lost =
        chance(ge_bad_ ? config_.ge_loss_bad : config_.ge_loss_good);
  }
  const bool lost = chance(config_.loss_rate);
  const bool duplicated = chance(config_.dup_rate);
  const bool reordered = chance(config_.reorder_rate);
  const SimTime jitter =
      config_.jitter_us > 0 ? rng_.below(config_.jitter_us) : 0;

  if (lost || burst_lost) {
    lost ? ++stats_.dropped_loss : ++stats_.dropped_burst;
    return;
  }

  SimTime arrival = departure + config_.latency_us + jitter;
  if (reordered) {
    ++stats_.reordered;
    arrival += config_.reorder_extra_us;
  }

  crypto::Bytes copy(frame.begin(), frame.end());
  if (duplicated) {
    ++stats_.duplicated;
    schedule_delivery(copy, arrival + 1);
  }
  schedule_delivery(std::move(copy), arrival);
}

void LossyChannel::schedule_delivery(crypto::Bytes frame, SimTime at) {
  queue_.schedule_at(at, [this, frame = std::move(frame)]() {
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.size();
    if (on_frame_) on_frame_(frame);
  });
}

}  // namespace mapsec::net
