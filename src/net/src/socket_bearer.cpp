#include "mapsec/net/socket_bearer.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mapsec/net/frame_codec.hpp"

namespace mapsec::net {

namespace {

constexpr std::size_t kMaxIov = 8;

std::string errno_string(int err) {
  char buf[128];
  // GNU strerror_r returns the message pointer (possibly not buf).
  return std::string(strerror_r(err, buf, sizeof(buf)));
}

int make_tcp_socket() {
  return socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void apply_socket_options(int fd, const SocketConfig& config) {
  if (config.nodelay) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (config.sndbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf_bytes,
               sizeof(config.sndbuf_bytes));
  }
  if (config.rcvbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config.rcvbuf_bytes,
               sizeof(config.rcvbuf_bytes));
  }
}

bool probe_loopback_sockets() {
  int lfd = make_tcp_socket();
  if (lfd < 0) return false;
  sockaddr_in addr = loopback_addr(0);
  bool ok = false;
  int cfd = -1;
  int afd = -1;
  do {
    if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) break;
    if (listen(lfd, 1) != 0) break;
    socklen_t len = sizeof(addr);
    if (getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) break;
    cfd = make_tcp_socket();
    if (cfd < 0) break;
    int rc = connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) break;
    // Loopback connects complete by the time accept() is retried a few
    // times; poll briefly rather than pulling in a full event loop.
    for (int i = 0; i < 100 && afd < 0; ++i) {
      afd = accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (afd < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
      if (afd < 0) usleep(1000);
    }
    ok = afd >= 0;
  } while (false);
  if (afd >= 0) close(afd);
  if (cfd >= 0) close(cfd);
  close(lfd);
  return ok;
}

}  // namespace

bool sockets_available() {
  static const bool available = probe_loopback_sockets();
  return available;
}

SocketEndpoint::SocketEndpoint(Reactor& reactor, BufferArena& arena, int fd,
                               const SocketConfig& config, bool connecting)
    : reactor_(reactor),
      config_(config),
      fd_(fd),
      rx_q_(arena),
      tx_q_(arena),
      connecting_(connecting) {
  reactor_.add_fd(fd_, connecting_ ? EPOLLOUT : EPOLLIN,
                  [this](std::uint32_t mask) { on_event(mask); });
}

SocketEndpoint::~SocketEndpoint() { close_quiet(); }

void SocketEndpoint::close_quiet() {
  if (!open_) return;
  open_ = false;
  teardown();
}

void SocketEndpoint::reset() {
  if (!open_) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  fail("connection reset (injected)");
}

void SocketEndpoint::teardown() {
  reactor_.remove_fd(fd_);
  if (in_flush_list_) {
    reactor_.cancel_flush(this);
    in_flush_list_ = false;
  }
  close(fd_);
  fd_ = -1;
  rx_q_.release();
  tx_q_.release();
  receiver_ = nullptr;
}

void SocketEndpoint::fail(const std::string& reason) {
  if (failing_ || !open_) return;
  failing_ = true;
  open_ = false;
  ++stats_.failures;
  teardown();
  // Notify after teardown so subscribers observe a dead endpoint. The
  // call stack may still return through this object, so subscribers must
  // not destroy it synchronously — owners mark the endpoint for pruning
  // and reap it between reactor turns.
  auto tx_err = std::move(tx_half_.on_channel_error_);
  auto rx_err = std::move(rx_half_.on_channel_error_);
  auto own_err = std::move(on_error_);
  if (tx_err) tx_err(reason);
  if (rx_err) rx_err(reason);
  if (own_err) own_err(reason);
}

void SocketEndpoint::set_receiver(
    std::function<void(crypto::ConstBytes)> on_frame) {
  receiver_ = std::move(on_frame);
  if (!open_) return;
  if (receiver_) {
    if (reads_paused_) {
      reads_paused_ = false;
      update_interest();
    }
    if (!parsing_) parse_frames();
  }
}

void SocketEndpoint::send_frame(crypto::ConstBytes payload) {
  if (!open_) return;
  if (payload.size() > config_.max_frame_bytes) {
    fail("outbound frame length " + std::to_string(payload.size()) +
         " exceeds bound");
    return;
  }
  std::uint8_t header[FrameCodec::kHeaderBytes];
  FrameCodec::encode_header(static_cast<std::uint32_t>(payload.size()),
                            header);
  tx_q_.append({header, FrameCodec::kHeaderBytes});
  tx_q_.append(payload);
  ++stats_.frames_sent;
  if (tx_q_.slabs_held() > config_.max_tx_slabs) {
    fail("tx backlog overflow");
    return;
  }
  if (!in_flush_list_ && !connecting_ && !want_write_) {
    in_flush_list_ = true;
    reactor_.defer_flush(this);
  }
}

void SocketEndpoint::flush_now() {
  in_flush_list_ = false;
  if (!open_ || connecting_) return;
  while (!tx_q_.empty()) {
    IoSlice slices[kMaxIov];
    std::size_t count = tx_q_.gather(slices, kMaxIov);
    iovec iov[kMaxIov];
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      iov[i].iov_base = slices[i].data;
      iov[i].iov_len = slices[i].len;
      total += slices[i].len;
    }
    ssize_t n = writev(fd_, iov, static_cast<int>(count));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ++stats_.eagain_writes;
        if (!want_write_) {
          want_write_ = true;
          update_interest();
        }
        return;
      }
      fail("writev: " + errno_string(errno));
      return;
    }
    ++stats_.writev_calls;
    stats_.bytes_sent += static_cast<std::uint64_t>(n);
    tx_q_.consume(static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < total) {
      ++stats_.partial_writes;
      if (!want_write_) {
        want_write_ = true;
        update_interest();
      }
      return;
    }
  }
  if (want_write_) {
    want_write_ = false;
    update_interest();
  }
}

void SocketEndpoint::update_interest() {
  std::uint32_t events = 0;
  if (connecting_) {
    events = EPOLLOUT;
  } else {
    if (!reads_paused_) events |= EPOLLIN;
    if (want_write_) events |= EPOLLOUT;
  }
  reactor_.modify_fd(fd_, events);
}

void SocketEndpoint::on_event(std::uint32_t mask) {
  if (!open_) return;
  if (connecting_) {
    finish_connect(mask);
    return;
  }
  if (mask & EPOLLIN) handle_readable();
  if (!open_) return;
  if (mask & EPOLLOUT) flush_now();
  if (!open_) return;
  if (mask & (EPOLLERR | EPOLLHUP)) {
    // Drained what EPOLLIN offered; a lingering ERR/HUP means the peer is
    // gone. A detached receiver treats it as an orderly end of life.
    if (receiver_) {
      fail("peer hung up");
    } else {
      close_quiet();
    }
  }
}

void SocketEndpoint::finish_connect(std::uint32_t mask) {
  if ((mask & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0) {
    fail("connect: " + errno_string(err));
    return;
  }
  connecting_ = false;
  update_interest();
  if (!tx_q_.empty()) flush_now();
}

void SocketEndpoint::handle_readable() {
  for (;;) {
    if (reads_paused_) return;
    IoSlice regions[2];
    std::size_t count = rx_q_.writable(regions);
    iovec iov[2];
    for (std::size_t i = 0; i < count; ++i) {
      iov[i].iov_base = regions[i].data;
      iov[i].iov_len = regions[i].len;
    }
    ssize_t n = readv(fd_, iov, static_cast<int>(count));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail("readv: " + errno_string(errno));
      return;
    }
    if (n == 0) {
      // EOF. With a receiver attached this is a failure the protocol
      // must hear about; detached (link already shut down) it is just
      // the connection winding down.
      if (receiver_) {
        fail("peer closed connection");
      } else {
        close_quiet();
      }
      return;
    }
    ++stats_.readv_calls;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    rx_q_.commit(static_cast<std::size_t>(n));
    parse_frames();
    if (!open_) return;
  }
}

void SocketEndpoint::parse_frames() {
  parsing_ = true;
  while (open_ && receiver_) {
    std::uint8_t header[FrameCodec::kHeaderBytes];
    if (rx_q_.peek(header, FrameCodec::kHeaderBytes) <
        FrameCodec::kHeaderBytes) {
      break;
    }
    FrameCodec::Head head = FrameCodec::inspect(
        header, FrameCodec::kHeaderBytes, config_.max_frame_bytes);
    if (head.status == FrameCodec::Status::kOversize) {
      parsing_ = false;
      fail("inbound frame length " + std::to_string(head.payload_len) +
           " exceeds bound");
      return;
    }
    std::size_t total = FrameCodec::kHeaderBytes + head.payload_len;
    if (rx_q_.size() < total) break;
    if (scratch_.size() < head.payload_len) scratch_.resize(head.payload_len);
    const std::uint8_t* frame = rx_q_.view(FrameCodec::kHeaderBytes,
                                           head.payload_len, scratch_.data());
    ++stats_.frames_received;
    receiver_(crypto::ConstBytes(frame, head.payload_len));
    if (!open_) {
      parsing_ = false;
      return;
    }
    rx_q_.consume(total);
  }
  parsing_ = false;
  if (open_ && !receiver_ && rx_q_.slabs_held() >= config_.max_rx_slabs &&
      !reads_paused_) {
    // Nobody is decoding; stop pulling bytes so the backlog stays bounded
    // (TCP flow control pushes back on the peer).
    reads_paused_ = true;
    update_interest();
  }
}

SocketListener::SocketListener(Reactor& reactor, BufferArena& arena,
                               const SocketConfig& config, std::uint16_t port)
    : reactor_(reactor), arena_(arena), config_(config) {
  int fd = make_tcp_socket();
  if (fd < 0) return;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.reuseport) {
    setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  sockaddr_in addr = loopback_addr(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, config_.listen_backlog) != 0) {
    close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  reactor_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) { handle_acceptable(); });
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    reactor_.remove_fd(fd_);
    close(fd_);
  }
}

void SocketListener::set_paused(bool paused) {
  if (fd_ < 0 || paused == paused_) return;
  paused_ = paused;
  reactor_.modify_fd(fd_, paused_ ? 0u : static_cast<std::uint32_t>(EPOLLIN));
}

void SocketListener::handle_acceptable() {
  for (;;) {
    int fd = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: epoll will re-report
    }
    ++accepted_;
    apply_socket_options(fd, config_);
    auto endpoint =
        std::make_unique<SocketEndpoint>(reactor_, arena_, fd, config_);
    if (on_accept_) {
      on_accept_(std::move(endpoint));
    }
    // No handler installed: endpoint destructs, connection closes.
  }
}

std::unique_ptr<SocketEndpoint> connect_endpoint(Reactor& reactor,
                                                 BufferArena& arena,
                                                 const SocketConfig& config,
                                                 std::uint16_t port) {
  int fd = make_tcp_socket();
  if (fd < 0) return nullptr;
  apply_socket_options(fd, config);
  sockaddr_in addr = loopback_addr(port);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  bool pending = rc != 0 && errno == EINPROGRESS;
  if (rc != 0 && !pending) {
    // Immediate refusal still yields an endpoint so the failure flows
    // through the normal error path once the reactor sees the fd.
    pending = true;
  }
  return std::make_unique<SocketEndpoint>(reactor, arena, fd, config,
                                          pending);
}

}  // namespace mapsec::net
