#include "mapsec/net/clock.hpp"

#include <ctime>

namespace mapsec::net {

namespace {
std::uint64_t raw_monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000ull;
}
}  // namespace

MonotonicClock::MonotonicClock(SimTime origin_us)
    : base_raw_us_(raw_monotonic_us()),
      origin_us_(origin_us > kTimeCeiling ? kTimeCeiling : origin_us) {}

SimTime MonotonicClock::now_us() const {
  return sat_add_time(origin_us_, raw_monotonic_us() - base_raw_us_);
}

}  // namespace mapsec::net
