#include "mapsec/net/link.hpp"

#include <algorithm>
#include <utility>

#include "mapsec/net/frame_codec.hpp"

namespace mapsec::net {

namespace {
constexpr std::uint8_t kData = 0x01;
constexpr std::uint8_t kAck = 0x02;
constexpr std::size_t kDataHeader = 5;  // kind(1) | seq(4)
}  // namespace

ReliableLink::ReliableLink(EventQueue& queue, Channel& tx, Channel& rx,
                           LinkConfig config)
    : queue_(queue), tx_(tx), rx_(rx), config_(config) {
  rx_.set_receiver([this](crypto::ConstBytes frame) { on_frame(frame); });
  rx_.set_on_channel_error(
      [this](const std::string& reason) { fail("bearer: " + reason); });
}

ReliableLink::~ReliableLink() { shutdown(); }

void ReliableLink::shutdown() {
  for (auto& [seq, seg] : inflight_)
    if (seg.timer) queue_.cancel(seg.timer);
  inflight_.clear();
  unsent_.clear();
  out_of_order_.clear();
  if (!dead_) {
    rx_.set_receiver(nullptr);
    rx_.set_on_channel_error(nullptr);
  }
  dead_ = true;
}

bool ReliableLink::send_message(crypto::ConstBytes message) {
  if (dead_) return false;
  ++stats_.messages_sent;
  // Length-prefix the message into the segment stream.
  crypto::Bytes framed;
  framed.reserve(FrameCodec::kHeaderBytes + message.size());
  FrameCodec::append_frame(framed, message);

  // Pack into segments, topping up the last pending segment so small
  // messages (acks of the application protocol, close frames) coalesce.
  std::size_t offset = 0;
  if (!unsent_.empty() &&
      unsent_.back().size() < config_.segment_payload) {
    const std::size_t room = config_.segment_payload - unsent_.back().size();
    const std::size_t take = std::min(room, framed.size());
    unsent_.back().insert(unsent_.back().end(), framed.begin(),
                          framed.begin() + take);
    offset = take;
  }
  while (offset < framed.size()) {
    const std::size_t take =
        std::min(config_.segment_payload, framed.size() - offset);
    unsent_.emplace_back(framed.begin() + offset,
                         framed.begin() + offset + take);
    offset += take;
  }
  fill_window();
  return true;
}

void ReliableLink::fill_window() {
  while (!unsent_.empty() && inflight_.size() < config_.window) {
    const std::uint32_t seq = next_seq_++;
    crypto::Bytes frame(kDataHeader + unsent_.front().size());
    frame[0] = kData;
    crypto::store_be32(frame.data() + 1, seq);
    std::copy(unsent_.front().begin(), unsent_.front().end(),
              frame.begin() + kDataHeader);
    unsent_.pop_front();

    Inflight seg;
    seg.frame = frame;
    seg.rto = config_.initial_rto_us;
    inflight_.emplace(seq, std::move(seg));
    ++stats_.segments_sent;
    tx_.send(frame);
    arm_timer(seq);
  }
}

void ReliableLink::arm_timer(std::uint32_t seq) {
  Inflight& seg = inflight_.at(seq);
  seg.timer = queue_.schedule_in(seg.rto, [this, seq] {
    handle_timeout(seq);
  });
}

void ReliableLink::handle_timeout(std::uint32_t seq) {
  const auto it = inflight_.find(seq);
  if (dead_ || it == inflight_.end()) return;  // acked meanwhile
  Inflight& seg = it->second;
  seg.timer = 0;
  seg.backoff_spent += seg.rto;
  if (++seg.retries > config_.max_retries) {
    fail("retry budget exhausted (seq " + std::to_string(seq) + ")");
    return;
  }
  if (config_.total_backoff_ceiling_us != 0 &&
      seg.backoff_spent >= config_.total_backoff_ceiling_us) {
    fail("backoff ceiling exceeded (seq " + std::to_string(seq) + ")");
    return;
  }
  ++stats_.retransmits;
  // Overflow-safe doubling: with a large max_rto_us and a big retry
  // budget, rto * 2 would eventually wrap; compare against half the
  // ceiling instead of multiplying first.
  seg.rto = seg.rto >= config_.max_rto_us / 2 ? config_.max_rto_us
                                              : seg.rto * 2;
  tx_.send(seg.frame);
  arm_timer(seq);
}

void ReliableLink::on_frame(crypto::ConstBytes frame) {
  if (dead_ || frame.empty()) return;
  switch (frame[0]) {
    case kData:
      if (frame.size() >= kDataHeader)
        on_data(crypto::load_be32(frame.data() + 1),
                frame.subspan(kDataHeader));
      break;
    case kAck:
      if (frame.size() >= 5) on_ack(crypto::load_be32(frame.data() + 1));
      break;
    default:
      break;  // unknown frame kind: ignore
  }
}

void ReliableLink::on_data(std::uint32_t seq, crypto::ConstBytes payload) {
  if (seq < recv_next_ || out_of_order_.count(seq)) {
    ++stats_.duplicate_segments;
  } else if (seq < recv_next_ + 4 * config_.window) {
    out_of_order_.emplace(seq,
                          crypto::Bytes(payload.begin(), payload.end()));
    // Drain whatever is now contiguous into the reassembly stream.
    auto it = out_of_order_.find(recv_next_);
    while (it != out_of_order_.end()) {
      rx_stream_.insert(rx_stream_.end(), it->second.begin(),
                        it->second.end());
      out_of_order_.erase(it);
      it = out_of_order_.find(++recv_next_);
    }
  }
  // Ack everything received so far — including duplicates, since a
  // duplicate usually means our previous ack was lost.
  crypto::Bytes ack(5);
  ack[0] = kAck;
  crypto::store_be32(ack.data() + 1, recv_next_);
  ++stats_.acks_sent;
  tx_.send(ack);
  deliver_ready();
}

void ReliableLink::deliver_ready() {
  for (;;) {
    const FrameCodec::Head head = FrameCodec::inspect(
        rx_stream_.data(), rx_stream_.size(), config_.max_message_size);
    if (head.status == FrameCodec::Status::kOversize) {
      fail("inbound message length " + std::to_string(head.payload_len) +
           " exceeds bound");
      return;
    }
    if (head.status != FrameCodec::Status::kFrame) return;
    const std::size_t len = head.payload_len;
    crypto::Bytes message(rx_stream_.begin() + FrameCodec::kHeaderBytes,
                          rx_stream_.begin() + FrameCodec::kHeaderBytes + len);
    rx_stream_.erase(rx_stream_.begin(),
                     rx_stream_.begin() + FrameCodec::kHeaderBytes + len);
    ++stats_.messages_delivered;
    if (on_message_) on_message_(message);
    if (dead_) return;  // handler may have shut us down
  }
}

void ReliableLink::on_ack(std::uint32_t next_needed) {
  if (next_needed <= send_base_) return;  // stale cumulative ack
  for (std::uint32_t seq = send_base_; seq < next_needed; ++seq) {
    const auto it = inflight_.find(seq);
    if (it != inflight_.end()) {
      if (it->second.timer) queue_.cancel(it->second.timer);
      inflight_.erase(it);
    }
  }
  send_base_ = next_needed;
  fill_window();
}

void ReliableLink::fail(const std::string& reason) {
  shutdown();
  if (on_error_) on_error_(reason);
}

}  // namespace mapsec::net
