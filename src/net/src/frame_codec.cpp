#include "mapsec/net/frame_codec.hpp"

namespace mapsec::net {

FrameCodec::Head FrameCodec::inspect(const std::uint8_t* data,
                                     std::size_t size,
                                     std::size_t max_payload) {
  Head head;
  if (size < kHeaderBytes) return head;  // kNeedMore, length unknown
  head.payload_len = crypto::load_be32(data);
  if (max_payload != 0 && head.payload_len > max_payload) {
    head.status = Status::kOversize;
    return head;
  }
  head.status = size - kHeaderBytes >= head.payload_len ? Status::kFrame
                                                        : Status::kNeedMore;
  return head;
}

void FrameCodec::encode_header(std::uint32_t len,
                               std::uint8_t out[kHeaderBytes]) {
  crypto::store_be32(out, len);
}

void FrameCodec::append_frame(crypto::Bytes& out, crypto::ConstBytes payload) {
  std::uint8_t header[kHeaderBytes];
  crypto::store_be32(header, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), header, header + kHeaderBytes);
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace mapsec::net
