#include "mapsec/net/buffer_arena.hpp"

#include <cassert>
#include <cstring>

namespace mapsec::net {

BufferArena::BufferArena(std::size_t slab_bytes)
    : slab_bytes_(slab_bytes == 0 ? 1 : slab_bytes) {}

std::uint8_t* BufferArena::acquire() {
  std::uint8_t* slab;
  if (free_.empty()) {
    owned_.push_back(std::make_unique<std::uint8_t[]>(slab_bytes_));
    slab = owned_.back().get();
    ++stats_.allocations;
  } else {
    slab = free_.back();
    free_.pop_back();
  }
  ++stats_.acquires;
  ++stats_.in_use;
  if (stats_.in_use > stats_.peak_in_use) stats_.peak_in_use = stats_.in_use;
  return slab;
}

void BufferArena::recycle(std::uint8_t* slab) {
  if (slab == nullptr) return;
  assert(stats_.in_use > 0);
  free_.push_back(slab);
  ++stats_.recycles;
  --stats_.in_use;
}

void BufferArena::reserve(std::size_t slabs) {
  while (free_.size() < slabs) {
    owned_.push_back(std::make_unique<std::uint8_t[]>(slab_bytes_));
    free_.push_back(owned_.back().get());
    ++stats_.allocations;
  }
}

void SlabQueue::append(crypto::ConstBytes data) {
  const std::uint8_t* src = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    if (slabs_.empty() || tail_ == slab_bytes_) {
      // Promote the staged spare rather than hitting the arena when one
      // is on hand (keeps writable()/append interleaving allocation-flat).
      if (spare_ != nullptr) {
        slabs_.push_back(spare_);
        spare_ = nullptr;
      } else {
        slabs_.push_back(arena_.acquire());
      }
      tail_ = 0;
    }
    std::size_t n = slab_bytes_ - tail_;
    if (n > remaining) n = remaining;
    std::memcpy(slabs_.back() + tail_, src, n);
    tail_ += n;
    size_ += n;
    src += n;
    remaining -= n;
  }
}

std::size_t SlabQueue::writable(IoSlice out[2]) {
  if (slabs_.empty() || tail_ == slab_bytes_) {
    // No partial tail: stage one fresh slab and expose it whole.
    if (spare_ == nullptr) spare_ = arena_.acquire();
    out[0] = {spare_, slab_bytes_};
    return 1;
  }
  out[0] = {slabs_.back() + tail_, slab_bytes_ - tail_};
  if (spare_ == nullptr) spare_ = arena_.acquire();
  out[1] = {spare_, slab_bytes_};
  return 2;
}

void SlabQueue::commit(std::size_t n) {
  if (n == 0) return;
  std::size_t tail_room =
      (slabs_.empty() || tail_ == slab_bytes_) ? 0 : slab_bytes_ - tail_;
  if (tail_room > n) tail_room = n;
  tail_ += tail_room;
  size_ += tail_room;
  n -= tail_room;
  if (n > 0) {
    // Overflow landed in the spare; it becomes the new back slab.
    assert(spare_ != nullptr && n <= slab_bytes_);
    slabs_.push_back(spare_);
    spare_ = nullptr;
    tail_ = n;
    size_ += n;
  }
}

std::size_t SlabQueue::peek(std::uint8_t* dst, std::size_t n) const {
  if (n > size_) n = size_;
  std::size_t copied = 0;
  std::size_t slab_idx = 0;
  std::size_t offset = head_;
  while (copied < n) {
    std::size_t end = slab_idx + 1 == slabs_.size() ? tail_ : slab_bytes_;
    std::size_t take = end - offset;
    if (take > n - copied) take = n - copied;
    std::memcpy(dst + copied, slabs_[slab_idx] + offset, take);
    copied += take;
    ++slab_idx;
    offset = 0;
  }
  return copied;
}

const std::uint8_t* SlabQueue::view(std::size_t offset, std::size_t n,
                                    std::uint8_t* scratch) const {
  assert(offset + n <= size_);
  if (n == 0) return scratch;
  std::size_t abs = head_ + offset;
  std::size_t slab_idx = abs / slab_bytes_;
  std::size_t in_slab = abs % slab_bytes_;
  if (in_slab + n <= slab_bytes_) return slabs_[slab_idx] + in_slab;
  // Crosses a slab boundary: assemble in the caller's scratch.
  std::size_t copied = 0;
  while (copied < n) {
    std::size_t take = slab_bytes_ - in_slab;
    if (take > n - copied) take = n - copied;
    std::memcpy(scratch + copied, slabs_[slab_idx] + in_slab, take);
    copied += take;
    ++slab_idx;
    in_slab = 0;
  }
  return scratch;
}

void SlabQueue::consume(std::size_t n) {
  assert(n <= size_);
  size_ -= n;
  while (n > 0) {
    std::size_t avail = front_end() - head_;
    if (n < avail) {
      head_ += n;
      return;
    }
    n -= avail;
    arena_.recycle(slabs_.front());
    slabs_.erase(slabs_.begin());
    head_ = 0;
    if (slabs_.empty()) tail_ = 0;
  }
  // Fully drained a slab with nothing left over: if the queue emptied,
  // the loop above already recycled everything.
}

std::size_t SlabQueue::gather(IoSlice* out, std::size_t max) const {
  std::size_t count = 0;
  std::size_t offset = head_;
  for (std::size_t i = 0; i < slabs_.size() && count < max; ++i) {
    std::size_t end = i + 1 == slabs_.size() ? tail_ : slab_bytes_;
    if (end > offset) {
      out[count++] = {slabs_[i] + offset, end - offset};
    }
    offset = 0;
  }
  return count;
}

void SlabQueue::release() {
  for (std::uint8_t* slab : slabs_) arena_.recycle(slab);
  slabs_.clear();
  if (spare_ != nullptr) {
    arena_.recycle(spare_);
    spare_ = nullptr;
  }
  head_ = tail_ = size_ = 0;
}

}  // namespace mapsec::net
