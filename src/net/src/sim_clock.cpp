#include "mapsec/net/sim_clock.hpp"

#include <stdexcept>
#include <utility>

namespace mapsec::net {

EventId EventQueue::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  if (when > kTimeCeiling) when = kTimeCeiling;  // keep kNoEvent unreachable
  const EventId id = next_id_++;
  events_.emplace(Key{when, id}, std::move(fn));
  index_.emplace(id, when);
  return id;
}

EventId EventQueue::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(sat_add_time(now_, delay), std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  events_.erase(Key{it->second, id});
  index_.erase(it);
  return true;
}

bool EventQueue::run_one() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.when;
  index_.erase(it->first.id);
  // Move the handler out before erasing: it may schedule (or cancel)
  // further events, invalidating `it`.
  std::function<void()> fn = std::move(it->second);
  events_.erase(it);
  fn();
  return true;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!events_.empty() && events_.begin()->first.when <= deadline) {
    run_one();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void EventQueue::clear() {
  events_.clear();
  index_.clear();
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (run_one()) {
    if (++count > max_events)
      throw std::runtime_error("EventQueue::run_all: event storm");
  }
  return count;
}

}  // namespace mapsec::net
