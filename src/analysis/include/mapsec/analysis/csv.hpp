// CSV export of the experiment data series, so the figures can be
// re-plotted outside the ASCII harness (gnuplot/matplotlib).
#pragma once

#include <string>
#include <vector>

#include "mapsec/platform/gap.hpp"

namespace mapsec::analysis {

/// Generic CSV assembly with correct quoting of commas/quotes.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Figure 3 surface: latency_s,mbps,handshake_mips,bulk_mips,required_mips.
std::string gap_surface_csv(const std::vector<platform::GapPoint>& points);

/// Gap trend: year,available_mips,required_mips,gap_ratio.
std::string gap_trend_csv(const std::vector<platform::GapTrendPoint>& trend);

}  // namespace mapsec::analysis
