// Sample-statistics helpers for the experiment harnesses: percentiles
// and distribution summaries (handshake-latency histograms, throughput
// spreads). Shared here so every bench reports the same definitions.
#pragma once

#include <cstddef>
#include <vector>

namespace mapsec::analysis {

/// q-quantile (q in [0, 1]) with linear interpolation between order
/// statistics. Returns 0 for an empty sample. The input is copied and
/// sorted internally.
double percentile(std::vector<double> values, double q);

/// Five-number-ish summary of a sample.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

SampleSummary summarize(const std::vector<double>& values);

}  // namespace mapsec::analysis
