// Sample-statistics helpers for the experiment harnesses: percentiles
// and distribution summaries (handshake-latency histograms, throughput
// spreads). Shared here so every bench reports the same definitions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mapsec::analysis {

/// q-quantile (q in [0, 1]) with linear interpolation between order
/// statistics. Returns 0 for an empty sample. The input is copied and
/// sorted internally.
double percentile(std::vector<double> values, double q);

/// Five-number-ish summary of a sample.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

SampleSummary summarize(const std::vector<double>& values);

/// Fixed-layout latency histogram: `buckets` linear bins of `bucket_width`
/// starting at zero, plus one overflow bin. Two histograms with the same
/// layout merge by adding counts — exact aggregation, unlike combining
/// per-shard percentile scalars (a p99-of-p99s is not the fleet p99).
/// Each shard of the serving tier records into its own histogram on its
/// own thread; the merge step sums them at the epoch barrier and fleet
/// percentiles are read off the merged counts.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double bucket_width_us = 250.0,
                            std::size_t buckets = 4096);

  void record(double value_us);

  std::size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double bucket_width() const { return width_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t overflow() const { return counts_.back(); }

  /// q-quantile (q in [0, 1]) read off the bucket counts: the q·count-th
  /// sample located by cumulative mass, uniformly interpolated inside its
  /// bucket and clamped to the exact [min, max] the histogram tracked.
  /// Within one bucket width of the sorted-sample percentile() above.
  double percentile(double q) const;

  /// Add `other`'s counts into `dst`. Layouts (width, bucket count) must
  /// match; throws std::invalid_argument otherwise.
  friend void merge(LatencyHistogram& dst, const LatencyHistogram& other);

 private:
  double width_;
  std::vector<std::uint64_t> counts_;  // last bin = overflow
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

void merge(LatencyHistogram& dst, const LatencyHistogram& other);

/// Fleet percentile over per-shard histograms: merge-then-read, without
/// mutating the inputs. All histograms must share one layout.
double merged_percentile(const std::vector<LatencyHistogram>& shards,
                         double q);

}  // namespace mapsec::analysis
