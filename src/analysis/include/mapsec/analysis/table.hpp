// ASCII table/series rendering shared by the experiment harnesses, so
// every bench prints its figure/table in a uniform, diffable format.
#pragma once

#include <string>
#include <vector>

namespace mapsec::analysis {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and right-aligned numeric-looking cells.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision number formatting for table cells.
std::string fmt(double value, int precision = 2);

/// Format with engineering suffix (k/M/G) for large magnitudes.
std::string fmt_eng(double value, int precision = 1);

}  // namespace mapsec::analysis
