// Experiment report generators: one function per paper figure / in-text
// claim, each returning the printable reproduction. Bench binaries print
// these; tests assert on their structure.
#pragma once

#include <string>

#include "mapsec/platform/gap.hpp"

namespace mapsec::analysis {

/// Figure 2: evolution of security protocols (wired and wireless).
std::string figure2_report();

/// Figure 3: the wireless security processing gap. Required MIPS over
/// (connection latency x data rate), with per-processor feasibility
/// against the paper's catalogue.
std::string figure3_report(const platform::GapAnalysis& gap);
std::string figure3_report();  // with the paper-calibrated model

/// Section 3.2 in-text anchors: the 651.3 MIPS claim and the 235-MIPS
/// handshake feasibility claim.
std::string section32_anchor_report();

/// Figure 4: battery-life impact of security processing on the sensor
/// node (transactions per charge, plain vs secure).
std::string figure4_report();

/// Section 4.2: acceleration-tier comparison (achievable rate, handshake
/// latency, energy per MB) on the StrongARM host.
std::string accel_tier_report();

}  // namespace mapsec::analysis
