#include "mapsec/analysis/report.hpp"

#include <sstream>

#include "mapsec/analysis/table.hpp"
#include "mapsec/platform/accelerator.hpp"
#include "mapsec/platform/energy.hpp"
#include "mapsec/protocol/evolution.hpp"

namespace mapsec::analysis {

using platform::GapAnalysis;
using platform::Primitive;
using platform::Processor;
using platform::WorkloadModel;

std::string figure2_report() {
  std::ostringstream out;
  out << "Figure 2: Evolution of security protocols\n\n";
  Table t({"family", "domain", "date", "version", "change"});
  for (const auto& m : protocol::protocol_evolution()) {
    t.add_row({m.family,
               m.domain == protocol::ProtocolDomain::kWired ? "wired"
                                                            : "wireless",
               std::to_string(m.year) + "-" +
                   (m.month < 10 ? "0" : "") + std::to_string(m.month),
               m.version, m.change});
  }
  out << t.render() << '\n';

  Table rate({"family", "revisions/year"});
  for (const auto& fam : protocol::protocol_families())
    rate.add_row({fam, fmt(protocol::revisions_per_year(fam), 2)});
  out << "Revision rate (the Section 3.1 evolution pressure):\n"
      << rate.render();
  return out.str();
}

std::string figure3_report(const GapAnalysis& gap) {
  std::ostringstream out;
  out << "Figure 3: The wireless security processing gap\n"
      << "Protocol: RSA-1024 connection set-up + 3DES encryption + SHA-1 "
         "integrity\n\n";

  const auto latencies = GapAnalysis::default_latencies();
  const auto rates = GapAnalysis::default_rates();
  const auto points = gap.surface(latencies, rates);

  Table t({"latency(s)", "rate(Mbps)", "handshake(MIPS)", "bulk(MIPS)",
           "required(MIPS)"});
  for (const auto& p : points)
    t.add_row({fmt(p.latency_s, 2), fmt(p.mbps, 2), fmt(p.handshake_mips, 1),
               fmt(p.bulk_mips, 1), fmt(p.required_mips, 1)});
  out << t.render() << '\n';

  out << "Processor planes (feasible operating points / total, and max "
         "secure rate at 1 s latency):\n";
  Table planes({"processor", "MIPS", "feasible", "max Mbps @1s"});
  for (const auto& proc : Processor::catalogue()) {
    const auto summary = gap.summarise(proc, points);
    planes.add_row({proc.name, fmt(proc.mips, 1),
                    std::to_string(summary.feasible_points) + "/" +
                        std::to_string(summary.total_points),
                    fmt(summary.max_mbps_at_1s, 2)});
  }
  out << planes.render();
  return out.str();
}

std::string figure3_report() {
  return figure3_report(GapAnalysis(WorkloadModel::paper_calibrated()));
}

std::string section32_anchor_report() {
  const auto model = WorkloadModel::paper_calibrated();
  std::ostringstream out;
  out << "Section 3.2 in-text anchors\n\n";

  const double mips_10mbps =
      model.bulk_mips(Primitive::kDes3, Primitive::kSha1, 10.0);
  out << "  3DES + SHA-1 at 10 Mbps requires " << fmt(mips_10mbps, 1)
      << " MIPS  (paper: 651.3 MIPS)\n\n";

  out << "  RSA-1024 connection set-up on the 235-MIPS StrongARM "
         "SA-1100:\n";
  Table t({"target latency (s)", "required MIPS", "feasible on 235 MIPS"});
  for (const double latency : {0.1, 0.5, 1.0}) {
    const double req =
        model.handshake_mips(Primitive::kRsa1024Private, latency);
    t.add_row({fmt(latency, 1), fmt(req, 1), req <= 235.0 ? "yes" : "no"});
  }
  std::ostringstream all;
  all << out.str() << t.render()
      << "  (paper: feasible at 0.5 s and 1 s, not at 0.1 s)\n";
  return all.str();
}

std::string figure4_report() {
  const auto energy = platform::EnergyModel::paper_sensor_node();
  constexpr double kBatteryKj = 26.0;
  std::ostringstream out;
  out << "Figure 4: Impact of security processing on battery life\n"
      << "Sensor node (DragonBall MC68328, 10 Kbps, 26 KJ battery), "
         "1 KB transactions\n\n";
  Table t({"mode", "energy/txn (mJ)", "transactions/charge"});
  const double plain = platform::transactions_per_charge(
      energy, kBatteryKj, 1.0, /*secure=*/false);
  const double secure = platform::transactions_per_charge(
      energy, kBatteryKj, 1.0, /*secure=*/true);
  t.add_row({"unencrypted", fmt(energy.transaction_mj(1.0, false), 1),
             fmt_eng(plain, 1)});
  t.add_row({"secure (RSA, +42 mJ/KB)", fmt(energy.transaction_mj(1.0, true), 1),
             fmt_eng(secure, 1)});
  out << t.render() << "\n  secure/unencrypted ratio: "
      << fmt(secure / plain, 3)
      << "  (paper: \"less than half\")\n";
  return out.str();
}

std::string accel_tier_report() {
  auto model = WorkloadModel::paper_calibrated();
  model.set_protocol_instr_per_byte(25.0);
  const Processor host = Processor::strongarm_sa1100();
  std::ostringstream out;
  out << "Section 4.2: acceleration tiers on " << host.name << "\n\n";
  Table t({"tier", "3DES+SHA1 Mbps", "RSA-1024 latency (ms)",
           "energy/MB (mJ)"});
  for (const auto& profile : platform::AccelProfile::all_tiers()) {
    const platform::SecurityPlatform plat(host, profile, model);
    t.add_row({platform::accel_tier_name(profile.tier),
               fmt(plat.achievable_mbps(Primitive::kDes3, Primitive::kSha1), 2),
               fmt(plat.handshake_latency_s(Primitive::kRsa1024Private) * 1e3, 1),
               fmt(plat.bulk_energy_mj(Primitive::kDes3, Primitive::kSha1,
                                       1e6), 1)});
  }
  out << t.render();
  return out.str();
}

}  // namespace mapsec::analysis
