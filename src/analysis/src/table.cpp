#include "mapsec/analysis/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mapsec::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'x' && c != '%' &&
        c != 'k' && c != 'M' && c != 'G')
      return false;
  }
  return true;
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  ";
      const bool right = looks_numeric(row[c]);
      const std::size_t pad = widths[c] - row[c].size();
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_eng(double value, int precision) {
  const double a = std::fabs(value);
  if (a >= 1e9) return fmt(value / 1e9, precision) + "G";
  if (a >= 1e6) return fmt(value / 1e6, precision) + "M";
  if (a >= 1e3) return fmt(value / 1e3, precision) + "k";
  return fmt(value, precision);
}

}  // namespace mapsec::analysis
