#include "mapsec/analysis/csv.hpp"

#include <sstream>

#include "mapsec/analysis/table.hpp"

namespace mapsec::analysis {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void emit_row(std::ostringstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out << ',';
    out << escape(row[i]);
  }
  out << '\n';
}

}  // namespace

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream out;
  emit_row(out, header);
  for (const auto& row : rows) emit_row(out, row);
  return out.str();
}

std::string gap_surface_csv(const std::vector<platform::GapPoint>& points) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    rows.push_back({fmt(p.latency_s, 3), fmt(p.mbps, 3),
                    fmt(p.handshake_mips, 3), fmt(p.bulk_mips, 3),
                    fmt(p.required_mips, 3)});
  }
  return to_csv(
      {"latency_s", "mbps", "handshake_mips", "bulk_mips", "required_mips"},
      rows);
}

std::string gap_trend_csv(
    const std::vector<platform::GapTrendPoint>& trend) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(trend.size());
  for (const auto& p : trend) {
    rows.push_back({std::to_string(p.year), fmt(p.available_mips, 2),
                    fmt(p.required_mips, 2), fmt(p.gap_ratio, 4)});
  }
  return to_csv({"year", "available_mips", "required_mips", "gap_ratio"},
                rows);
}

}  // namespace mapsec::analysis
