#include "mapsec/analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapsec::analysis {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[lo + 1] * frac;
}

SampleSummary summarize(const std::vector<double>& values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

LatencyHistogram::LatencyHistogram(double bucket_width_us,
                                   std::size_t buckets)
    : width_(bucket_width_us > 0 ? bucket_width_us : 1.0),
      counts_(buckets > 0 ? buckets + 1 : 2, 0) {}

void LatencyHistogram::record(double value_us) {
  if (value_us < 0) value_us = 0;
  std::size_t bin = static_cast<std::size_t>(value_us / width_);
  if (bin >= counts_.size() - 1) bin = counts_.size() - 1;  // overflow
  ++counts_[bin];
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  sum_ += value_us;
  ++count_;
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      // The overflow bin has no upper edge to interpolate toward; the
      // tracked max is the only honest answer there.
      if (i == counts_.size() - 1) return max_;
      const double frac =
          (target - cum) / static_cast<double>(counts_[i]);
      const double lower = static_cast<double>(i) * width_;
      return std::clamp(lower + frac * width_, min_, max_);
    }
    cum = next;
  }
  return max_;
}

void merge(LatencyHistogram& dst, const LatencyHistogram& other) {
  if (dst.width_ != other.width_ || dst.counts_.size() != other.counts_.size())
    throw std::invalid_argument("LatencyHistogram merge: layout mismatch");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < dst.counts_.size(); ++i)
    dst.counts_[i] += other.counts_[i];
  if (dst.count_ == 0) {
    dst.min_ = other.min_;
    dst.max_ = other.max_;
  } else {
    dst.min_ = std::min(dst.min_, other.min_);
    dst.max_ = std::max(dst.max_, other.max_);
  }
  dst.sum_ += other.sum_;
  dst.count_ += other.count_;
}

double merged_percentile(const std::vector<LatencyHistogram>& shards,
                         double q) {
  if (shards.empty()) return 0;
  LatencyHistogram all(shards.front().bucket_width(),
                       shards.front().buckets() - 1);
  for (const auto& h : shards) merge(all, h);
  return all.percentile(q);
}

}  // namespace mapsec::analysis
