#include "mapsec/analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mapsec::analysis {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[lo + 1] * frac;
}

SampleSummary summarize(const std::vector<double>& values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

}  // namespace mapsec::analysis
