#include "mapsec/engine/packet_pipeline.hpp"

#include <chrono>
#include <stdexcept>

#include "mapsec/crypto/dispatch.hpp"

namespace mapsec::engine {

std::string PacketPipeline::crypto_backend() {
  return crypto::dispatch::capabilities_summary();
}

PacketPipeline::PacketPipeline(EngineProfile profile, std::size_t num_workers,
                               std::uint64_t rng_seed)
    : engine_(profile, &engine_rng_),
      engine_rng_(rng_seed),
      rng_seed_(rng_seed),
      stats_(num_workers == 0 ? 1 : num_workers) {
  if (num_workers == 0) num_workers = 1;
  stall_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) stall_ns_[i] = 0;
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void PacketPipeline::inject_worker_stall(std::size_t index,
                                         std::uint64_t ns_per_batch) {
  if (index < workers_.size())
    stall_ns_[index].store(ns_per_batch, std::memory_order_relaxed);
}

PacketPipeline::~PacketPipeline() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void PacketPipeline::load_program(const std::string& name, Program program) {
  engine_.load_program(name, std::move(program));
}

void PacketPipeline::add_sa(std::uint32_t sa_id, EngineSa sa) {
  sas_.emplace(sa_id,
               SaState{std::move(sa), crypto::HmacDrbg(rng_seed_ ^ sa_id)});
}

const EngineSa& PacketPipeline::sa(std::uint32_t sa_id) const {
  const auto it = sas_.find(sa_id);
  if (it == sas_.end())
    throw std::invalid_argument("PacketPipeline: unknown SA");
  return it->second.sa;
}

void PacketPipeline::reset_replay() {
  for (auto& [id, state] : sas_) {
    state.sa.highest_seq = 0;
    state.sa.window = 0;
  }
}

std::vector<PipelineResult> PacketPipeline::run_batch(
    const std::vector<PipelineJob>& jobs) {
  std::vector<PipelineResult> results(jobs.size());
  {
    std::lock_guard lock(mu_);
    jobs_ = &jobs;
    results_ = &results;
    workers_remaining_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [this] { return workers_remaining_ == 0; });
    jobs_ = nullptr;
    results_ = nullptr;
  }
  return results;
}

void PacketPipeline::worker_main(std::size_t index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::vector<PipelineJob>* jobs = nullptr;
    std::vector<PipelineResult>* results = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      jobs = jobs_;
      results = results_;
    }

    // Injected stall (chaos campaigns): wall-clock latency only — the
    // batch barrier below absorbs it, results stay byte-identical.
    const std::uint64_t stall =
        stall_ns_[index].load(std::memory_order_relaxed);
    if (stall > 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));

    // Walk the whole batch in order, claiming this worker's SAs. The scan
    // is what preserves per-SA arrival order; jobs for other workers cost
    // one modulo each. Claims gather into maximal same-program runs that
    // execute through the engine's batched path (run_many), which keeps
    // index order for rng draws and replay updates — results are
    // byte-identical to the per-job loop for any run boundaries.
    const auto start = std::chrono::steady_clock::now();
    WorkerStats& st = stats_[index];
    std::vector<std::size_t> run_idx;
    std::vector<EngineSa*> run_sas;
    std::vector<crypto::ConstBytes> run_pkts;
    std::vector<crypto::Rng*> run_rngs;
    const std::string* run_prog = nullptr;
    const auto flush = [&] {
      if (run_idx.empty()) return;
      std::vector<ProtocolEngine::Result> rs =
          engine_.run_many(*run_prog, run_sas, run_pkts, run_rngs);
      for (std::size_t k = 0; k < run_idx.size(); ++k) {
        PipelineResult& out = (*results)[run_idx[k]];
        out.accepted = rs[k].accepted;
        out.header = std::move(rs[k].header);
        out.payload = std::move(rs[k].payload);
        out.drop_reason = std::move(rs[k].drop_reason);
        out.engine_cycles = rs[k].cycles;
        st.engine_cycles += rs[k].cycles;
        ++st.packets;
      }
      run_idx.clear();
      run_sas.clear();
      run_pkts.clear();
      run_rngs.clear();
      run_prog = nullptr;
    };
    for (std::size_t i = 0; i < jobs->size(); ++i) {
      const PipelineJob& job = (*jobs)[i];
      if (job.sa_id % workers_.size() != index) continue;
      PipelineResult& out = (*results)[i];
      const auto it = sas_.find(job.sa_id);
      if (it == sas_.end()) {
        out.drop_reason = "unknown SA";
        continue;
      }
      SaState& state = it->second;
      // Jobs the batched path cannot express keep the original per-job
      // exception containment: unknown programs (run_many faults the
      // whole run) and oversized packets (the CCM length check throws
      // per lane).
      if (!engine_.has_program(job.program) || job.packet.size() > 0xFFFF) {
        flush();
        try {
          auto r = engine_.run(job.program, state.sa, job.packet, state.rng);
          out.accepted = r.accepted;
          out.header = std::move(r.header);
          out.payload = std::move(r.payload);
          out.drop_reason = std::move(r.drop_reason);
          out.engine_cycles = r.cycles;
          st.engine_cycles += r.cycles;
        } catch (const std::exception& e) {
          out.drop_reason = e.what();
        }
        ++st.packets;
        continue;
      }
      if (run_prog != nullptr && *run_prog != job.program) flush();
      run_prog = &job.program;
      run_idx.push_back(i);
      run_sas.push_back(&state.sa);
      run_pkts.push_back(job.packet);
      run_rngs.push_back(&state.rng);
    }
    flush();
    ++st.batches;
    st.busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    {
      std::lock_guard lock(mu_);
      --workers_remaining_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace mapsec::engine
