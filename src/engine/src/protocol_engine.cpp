#include "mapsec/engine/protocol_engine.hpp"

#include <array>
#include <stdexcept>

#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/hmac.hpp"

namespace mapsec::engine {

std::string opcode_name(OpCode op) {
  switch (op) {
    case OpCode::kCheckMinLength: return "CHECK_MIN_LENGTH";
    case OpCode::kParseHeader: return "PARSE_HEADER";
    case OpCode::kCheckSpi: return "CHECK_SPI";
    case OpCode::kCheckReplay: return "CHECK_REPLAY";
    case OpCode::kVerifyMac: return "VERIFY_MAC";
    case OpCode::kComputeMac: return "COMPUTE_MAC";
    case OpCode::kDecryptCbc: return "DECRYPT_CBC";
    case OpCode::kEncryptCbc: return "ENCRYPT_CBC";
    case OpCode::kSealCcm: return "SEAL_CCM";
    case OpCode::kOpenCcm: return "OPEN_CCM";
    case OpCode::kAccept: return "ACCEPT";
    case OpCode::kDrop: return "DROP";
  }
  return "?";
}

EngineProfile EngineProfile::software_baseline() {
  EngineProfile p;
  // An embedded core interpreting the same semantics: tens of cycles per
  // byte for ciphers (3DES-class), several for MAC, and per-instruction
  // dispatch overhead.
  p.cycles_per_instruction = 40;
  p.parse_cycles_per_byte = 2.0;
  p.cipher_cycles_per_byte = 110.0;
  p.mac_cycles_per_byte = 21.0;
  p.clock_mhz = 200.0;
  return p;
}

ProtocolEngine::ProtocolEngine(EngineProfile profile, crypto::Rng* rng)
    : profile_(profile), rng_(rng) {
  if (rng_ == nullptr)
    throw std::invalid_argument("ProtocolEngine: rng required");
}

void ProtocolEngine::load_program(const std::string& name, Program program) {
  programs_[name] = std::move(program);
}

bool ProtocolEngine::has_program(const std::string& name) const {
  return programs_.count(name) != 0;
}

namespace {

std::uint32_t read_be32(const crypto::Bytes& b, std::size_t off) {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | b[off + 3];
}

// Per-SA cached cipher/MAC contexts: the key schedule and the HMAC
// ipad/opad absorption run once per key, not once per packet. The cache
// keys on the actual key material so rekeying an SA in place works.
const crypto::BlockCipher& sa_cipher(const EngineSa& sa) {
  if (!sa.rt_cipher || sa.rt_cipher_kind != sa.cipher ||
      sa.rt_cipher_key != sa.enc_key) {
    sa.rt_cipher = protocol::make_suite_cipher(sa.cipher, sa.enc_key);
    sa.rt_cipher_kind = sa.cipher;
    sa.rt_cipher_key = sa.enc_key;
  }
  return *sa.rt_cipher;
}

const crypto::HmacSha1& sa_mac(const EngineSa& sa) {
  if (!sa.rt_mac || sa.rt_mac_key != sa.mac_key) {
    sa.rt_mac = std::make_shared<const crypto::HmacSha1>(sa.mac_key);
    sa.rt_mac_key = sa.mac_key;
  }
  return *sa.rt_mac;
}

bool replay_check_and_update(EngineSa& sa, std::uint32_t seq) {
  if (seq == 0) return false;
  if (seq > sa.highest_seq) {
    const std::uint32_t shift = seq - sa.highest_seq;
    sa.window = shift >= 64 ? 0 : sa.window << shift;
    sa.window |= 1;
    sa.highest_seq = seq;
    return true;
  }
  const std::uint32_t offset = sa.highest_seq - seq;
  if (offset >= 64) return false;
  const std::uint64_t bit = 1ull << offset;
  if (sa.window & bit) return false;
  sa.window |= bit;
  return true;
}

}  // namespace

ProtocolEngine::Result ProtocolEngine::run(const std::string& program_name,
                                           EngineSa& sa,
                                           crypto::ConstBytes packet) {
  return run(program_name, sa, packet, *rng_);
}

ProtocolEngine::Result ProtocolEngine::run(const std::string& program_name,
                                           EngineSa& sa,
                                           crypto::ConstBytes packet,
                                           crypto::Rng& rng) const {
  const auto prog = programs_.find(program_name);
  if (prog == programs_.end())
    throw std::invalid_argument("ProtocolEngine: unknown program " +
                                program_name);

  Result r;
  crypto::Bytes header;
  crypto::Bytes payload(packet.begin(), packet.end());

  const auto drop = [&](const std::string& why) {
    r.accepted = false;
    r.drop_reason = why;
    return r;
  };

  for (const Instruction& ins : prog->second) {
    r.cycles += profile_.cycles_per_instruction;
    switch (ins.op) {
      case OpCode::kCheckMinLength:
        if (header.size() + payload.size() < ins.operand)
          return drop("short packet");
        break;

      case OpCode::kParseHeader: {
        if (payload.size() < ins.operand) return drop("truncated header");
        r.cycles += profile_.parse_cycles_per_byte * ins.operand;
        header.assign(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(ins.operand));
        payload.erase(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(ins.operand));
        break;
      }

      case OpCode::kCheckSpi:
        if (header.size() < ins.operand + 4) return drop("no SPI field");
        if (read_be32(header, ins.operand) != sa.spi)
          return drop("SPI mismatch");
        break;

      case OpCode::kCheckReplay:
        if (header.size() < ins.operand + 4) return drop("no seq field");
        if (!replay_check_and_update(sa, read_be32(header, ins.operand)))
          return drop("replay");
        break;

      case OpCode::kVerifyMac: {
        const std::size_t tag_len = ins.operand;
        if (payload.size() < tag_len) return drop("short for MAC");
        const std::size_t body = payload.size() - tag_len;
        r.cycles += profile_.mac_cycles_per_byte *
                    static_cast<double>(header.size() + body);
        crypto::HmacSha1 h = sa_mac(sa);  // copy of the keyed state
        h.update(header);
        h.update(crypto::ConstBytes{payload.data(), body});
        std::array<std::uint8_t, crypto::HmacSha1::kDigestSize> tag;
        h.finish_into(tag.data());
        if (!crypto::ct_equal(
                crypto::ConstBytes{tag.data(), tag_len},
                crypto::ConstBytes{payload.data() + body, tag_len}))
          return drop("MAC failure");
        payload.resize(body);
        break;
      }

      case OpCode::kComputeMac: {
        const std::size_t tag_len = ins.operand;
        r.cycles += profile_.mac_cycles_per_byte *
                    static_cast<double>(header.size() + payload.size());
        crypto::HmacSha1 h = sa_mac(sa);
        h.update(header);
        h.update(payload);
        std::array<std::uint8_t, crypto::HmacSha1::kDigestSize> tag;
        h.finish_into(tag.data());
        payload.insert(payload.end(), tag.data(), tag.data() + tag_len);
        break;
      }

      case OpCode::kDecryptCbc: {
        const auto& cipher = sa_cipher(sa);
        const std::size_t bs = cipher.block_size();
        if (payload.size() < 2 * bs) return drop("short ciphertext");
        r.cycles += profile_.cipher_cycles_per_byte *
                    static_cast<double>(payload.size() - bs);
        std::size_t len = 0;
        try {
          len = crypto::cbc_decrypt_in_place(
              cipher, crypto::ConstBytes{payload.data(), bs},
              std::span{payload.data() + bs, payload.size() - bs});
        } catch (const std::runtime_error&) {
          return drop("bad padding");
        }
        payload.erase(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(bs));
        payload.resize(len);
        break;
      }

      case OpCode::kEncryptCbc: {
        const auto& cipher = sa_cipher(sa);
        const std::size_t bs = cipher.block_size();
        r.cycles += profile_.cipher_cycles_per_byte *
                    static_cast<double>(payload.size() + bs);
        crypto::Bytes out(bs + crypto::cbc_padded_len(payload.size(), bs));
        rng.fill(std::span{out.data(), bs});
        crypto::cbc_encrypt_into(cipher, crypto::ConstBytes{out.data(), bs},
                                 payload,
                                 std::span{out.data() + bs, out.size() - bs});
        payload = std::move(out);
        break;
      }

      case OpCode::kSealCcm: {
        const auto& cipher = sa_cipher(sa);
        if (cipher.block_size() != 16) return drop("CCM needs AES");
        // CTR pass plus CBC-MAC pass, both through the cipher unit.
        r.cycles += 2 * profile_.cipher_cycles_per_byte *
                    static_cast<double>(payload.size() + header.size());
        crypto::Bytes out(crypto::kCcmNonceLen);
        rng.fill(out);
        crypto::Bytes sealed = crypto::ccm_seal(
            cipher, out, header, payload, ins.operand);
        out.insert(out.end(), sealed.begin(), sealed.end());
        payload = std::move(out);
        break;
      }

      case OpCode::kOpenCcm: {
        const auto& cipher = sa_cipher(sa);
        if (cipher.block_size() != 16) return drop("CCM needs AES");
        if (payload.size() < crypto::kCcmNonceLen + ins.operand)
          return drop("short for CCM");
        r.cycles += 2 * profile_.cipher_cycles_per_byte *
                    static_cast<double>(payload.size() + header.size());
        const crypto::ConstBytes view(payload);
        auto opened = crypto::ccm_open(
            cipher, view.subspan(0, crypto::kCcmNonceLen), header,
            view.subspan(crypto::kCcmNonceLen), ins.operand);
        if (!opened) return drop("CCM auth failure");
        payload = std::move(*opened);
        break;
      }

      case OpCode::kAccept:
        r.accepted = true;
        r.header = std::move(header);
        r.payload = std::move(payload);
        return r;

      case OpCode::kDrop:
        return drop("program drop");
    }
  }
  return drop("program fell off the end");
}

namespace {

bool shape_is(const Program& p, std::initializer_list<OpCode> ops) {
  if (p.size() != ops.size()) return false;
  std::size_t i = 0;
  for (OpCode op : ops)
    if (p[i++].op != op) return false;
  return true;
}

std::uint32_t read_be32_span(crypto::ConstBytes b, std::size_t off) {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | b[off + 3];
}

}  // namespace

std::vector<ProtocolEngine::Result> ProtocolEngine::run_many(
    const std::string& program_name, const std::vector<EngineSa*>& sas,
    const std::vector<crypto::ConstBytes>& packets,
    const std::vector<crypto::Rng*>& rngs) const {
  const auto prog = programs_.find(program_name);
  if (prog == programs_.end())
    throw std::invalid_argument("ProtocolEngine: unknown program " +
                                program_name);
  const Program& program = prog->second;
  const std::size_t n = packets.size();
  std::vector<Result> results(n);

  // Only the CCMP shapes have a batched interpretation; anything else
  // runs the VM per packet (bit-identical by definition).
  const bool ccmp_out = shape_is(
      program, {OpCode::kParseHeader, OpCode::kSealCcm, OpCode::kAccept});
  const bool ccmp_in = shape_is(
      program, {OpCode::kCheckMinLength, OpCode::kParseHeader,
                OpCode::kCheckSpi, OpCode::kOpenCcm, OpCode::kCheckReplay,
                OpCode::kAccept});
  if (!ccmp_out && !ccmp_in) {
    for (std::size_t i = 0; i < n; ++i)
      results[i] = run(program_name, *sas[i], packets[i], *rngs[i]);
    return results;
  }

  // The staged interpreter below replays run()'s per-instruction
  // semantics — the same cycle charges, the same drop points and
  // reasons, rng draws in index order, replay-window updates in index
  // order — with one difference: every packet's CCM transform is
  // deferred into a single multi-buffer batch. The transforms neither
  // read nor write SA state, so the reordering is unobservable.
  const double cpi = profile_.cycles_per_instruction;

  if (ccmp_out) {
    const std::uint32_t hdr_len = program[0].operand;
    const std::size_t tag_len = program[1].operand;
    struct OutLane {
      std::size_t idx;
      crypto::Bytes header;
      crypto::Bytes nonce;
      crypto::ConstBytes body;
    };
    std::vector<OutLane> lanes;
    for (std::size_t i = 0; i < n; ++i) {
      Result& r = results[i];
      r.cycles += cpi;  // kParseHeader
      if (packets[i].size() < hdr_len) {
        r.drop_reason = "truncated header";
        continue;
      }
      r.cycles += profile_.parse_cycles_per_byte * hdr_len;
      r.cycles += cpi;  // kSealCcm
      const auto& cipher = sa_cipher(*sas[i]);
      if (cipher.block_size() != 16) {
        r.drop_reason = "CCM needs AES";
        continue;
      }
      const std::size_t body_len = packets[i].size() - hdr_len;
      r.cycles += 2 * profile_.cipher_cycles_per_byte *
                  static_cast<double>(body_len + hdr_len);
      OutLane lane;
      lane.idx = i;
      lane.header.assign(packets[i].begin(), packets[i].begin() + hdr_len);
      lane.nonce.resize(crypto::kCcmNonceLen);
      rngs[i]->fill(lane.nonce);
      lane.body = packets[i].subspan(hdr_len);
      lanes.push_back(std::move(lane));
    }
    // Ops reference lane storage, so build them only once `lanes` is
    // fully grown.
    std::vector<crypto::CcmSealOp> ops;
    ops.reserve(lanes.size());
    for (const OutLane& lane : lanes)
      ops.push_back({&sa_cipher(*sas[lane.idx]), lane.nonce, lane.header,
                     lane.body, tag_len});
    std::vector<crypto::Bytes> sealed = crypto::ccm_seal_batch(ops);
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      Result& r = results[lanes[k].idx];
      r.cycles += cpi;  // kAccept
      r.accepted = true;
      crypto::Bytes out = std::move(lanes[k].nonce);
      out.insert(out.end(), sealed[k].begin(), sealed[k].end());
      r.header = std::move(lanes[k].header);
      r.payload = std::move(out);
    }
    return results;
  }

  const std::uint32_t min_len = program[0].operand;
  const std::uint32_t hdr_len = program[1].operand;
  const std::uint32_t spi_off = program[2].operand;
  const std::size_t tag_len = program[3].operand;
  const std::uint32_t seq_off = program[4].operand;
  struct InLane {
    std::size_t idx;
    crypto::Bytes header;
  };
  std::vector<InLane> lanes;
  for (std::size_t i = 0; i < n; ++i) {
    Result& r = results[i];
    r.cycles += cpi;  // kCheckMinLength
    if (packets[i].size() < min_len) {
      r.drop_reason = "short packet";
      continue;
    }
    r.cycles += cpi;  // kParseHeader
    if (packets[i].size() < hdr_len) {
      r.drop_reason = "truncated header";
      continue;
    }
    r.cycles += profile_.parse_cycles_per_byte * hdr_len;
    r.cycles += cpi;  // kCheckSpi
    if (hdr_len < spi_off + 4) {
      r.drop_reason = "no SPI field";
      continue;
    }
    if (read_be32_span(packets[i], spi_off) != sas[i]->spi) {
      r.drop_reason = "SPI mismatch";
      continue;
    }
    r.cycles += cpi;  // kOpenCcm
    const auto& cipher = sa_cipher(*sas[i]);
    if (cipher.block_size() != 16) {
      r.drop_reason = "CCM needs AES";
      continue;
    }
    const std::size_t body_len = packets[i].size() - hdr_len;
    if (body_len < crypto::kCcmNonceLen + tag_len) {
      r.drop_reason = "short for CCM";
      continue;
    }
    r.cycles += 2 * profile_.cipher_cycles_per_byte *
                static_cast<double>(body_len + hdr_len);
    lanes.push_back(
        {i, crypto::Bytes(packets[i].begin(), packets[i].begin() + hdr_len)});
  }
  std::vector<crypto::CcmOpenOp> ops;
  ops.reserve(lanes.size());
  for (const InLane& lane : lanes)
    ops.push_back({&sa_cipher(*sas[lane.idx]),
                   packets[lane.idx].subspan(hdr_len, crypto::kCcmNonceLen),
                   lane.header,
                   packets[lane.idx].subspan(hdr_len + crypto::kCcmNonceLen),
                   tag_len});
  std::vector<std::optional<crypto::Bytes>> opened =
      crypto::ccm_open_batch(ops);
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    Result& r = results[lanes[k].idx];
    if (!opened[k]) {
      r.drop_reason = "CCM auth failure";
      continue;
    }
    r.cycles += cpi;  // kCheckReplay
    if (hdr_len < seq_off + 4) {
      r.drop_reason = "no seq field";
      continue;
    }
    if (!replay_check_and_update(*sas[lanes[k].idx],
                                 read_be32_span(lanes[k].header, seq_off))) {
      r.drop_reason = "replay";
      continue;
    }
    r.cycles += cpi;  // kAccept
    r.accepted = true;
    r.header = std::move(lanes[k].header);
    r.payload = std::move(*opened[k]);
  }
  return results;
}

double ProtocolEngine::throughput_mbps(const std::string& program_name,
                                       EngineSa& sa,
                                       crypto::ConstBytes sample_packet) {
  EngineSa scratch = sa;  // do not disturb live replay state
  const Result r = run(program_name, scratch, sample_packet);
  if (r.cycles <= 0) return 0;
  const double packets_per_s = profile_.clock_mhz * 1e6 / r.cycles;
  return packets_per_s * static_cast<double>(sample_packet.size()) * 8.0 /
         1e6;
}

Program esp_inbound_program() {
  // spi(4) | seq(4) | iv | ciphertext | icv(12), as protocol::EspSender
  // emits.
  return {
      {OpCode::kCheckMinLength, 8 + 8 + 8 + 12},
      {OpCode::kParseHeader, 8},
      {OpCode::kCheckSpi, 0},
      {OpCode::kVerifyMac, 12},
      {OpCode::kCheckReplay, 4},
      {OpCode::kDecryptCbc, 0},
      {OpCode::kAccept, 0},
  };
}

Program esp_outbound_program() {
  return {
      {OpCode::kParseHeader, 8},  // caller pre-builds spi|seq header
      {OpCode::kEncryptCbc, 0},
      {OpCode::kComputeMac, 12},
      {OpCode::kAccept, 0},
  };
}

Program ccmp_inbound_program() {
  // spi(4) | seq(4) | nonce(13) | ciphertext+tag(8). The header doubles
  // as the AAD; replay state only advances once the tag has verified.
  return {
      {OpCode::kCheckMinLength, 8 + 13 + 8},
      {OpCode::kParseHeader, 8},
      {OpCode::kCheckSpi, 0},
      {OpCode::kOpenCcm, 8},
      {OpCode::kCheckReplay, 4},
      {OpCode::kAccept, 0},
  };
}

Program ccmp_outbound_program() {
  return {
      {OpCode::kParseHeader, 8},  // caller pre-builds spi|seq header
      {OpCode::kSealCcm, 8},
      {OpCode::kAccept, 0},
  };
}

Program wep_inbound_like_program() {
  // A WEP-shaped program: 4-byte header (IV|keyid), no replay protection
  // (WEP has none), "ICV" as a keyed 4-byte tag. Expressing it in the
  // same ISA is the flexibility point; the engine's MAC unit is keyed, so
  // this variant is not CRC-forgeable like real WEP.
  return {
      {OpCode::kParseHeader, 4},
      {OpCode::kVerifyMac, 4},
      {OpCode::kDecryptCbc, 0},
      {OpCode::kAccept, 0},
  };
}

}  // namespace mapsec::engine
