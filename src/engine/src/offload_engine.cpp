#include "mapsec/engine/offload_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace mapsec::engine {

OffloadEngine::OffloadEngine(net::EventQueue& queue, std::size_t num_workers,
                             OffloadCosts costs,
                             std::uint64_t steal_timeout_ms,
                             std::size_t batch_width)
    : queue_(queue),
      costs_(costs),
      steal_timeout_ms_(steal_timeout_ms),
      batch_width_(std::max<std::size_t>(1, batch_width)) {
  if (num_workers == 0)
    throw std::invalid_argument("OffloadEngine: need at least one worker");
  lane_free_.assign(num_workers, 0);
  forming_.resize(num_workers);
  stall_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) stall_ns_[i] = 0;
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

OffloadEngine::~OffloadEngine() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void OffloadEngine::submit(protocol::PkJob job, Completion done) {
  const net::SimTime now = queue_.now();

  // Lane assignment is part of the *model*: earliest-free lane, ties to
  // the lowest index — a pure function of the submission sequence, which
  // is what keeps the completion-event schedule deterministic. A forming
  // window leaves lane_free_ at its start instant, so the argmin keeps
  // feeding the same window until it fills.
  std::size_t lane = 0;
  for (std::size_t i = 1; i < lane_free_.size(); ++i)
    if (lane_free_[i] < lane_free_[lane]) lane = i;
  const net::SimTime start = std::max(now, lane_free_[lane]);

  stats_.submitted += 1;
  stats_.queue_wait_us += start - now;
  in_flight_ += 1;
  stats_.peak_depth = std::max(stats_.peak_depth, in_flight_);

  if (forming_[lane] == nullptr) {
    auto f = std::make_unique<Forming>();
    f->start = start;
    f->seq = ++forming_seq_;
    forming_[lane] = std::move(f);
    if (start > now) {
      // The lane is busy: hold the window open for late joiners until
      // the lane frees. The close event is a no-op if the window already
      // filled (seq mismatch after close_batch resets the slot).
      const std::uint64_t seq = forming_[lane]->seq;
      queue_.schedule_at(start, [this, lane, seq] {
        if (forming_[lane] != nullptr && forming_[lane]->seq == seq)
          close_batch(lane);
      });
    }
  }
  Forming& f = *forming_[lane];
  f.jobs.push_back(std::move(job));
  f.dones.push_back(std::move(done));
  // An idle lane starts its window immediately — batching only
  // materializes under queueing, so width 1 and an unloaded server both
  // reproduce the unbatched engine event-for-event.
  if (f.jobs.size() >= batch_width_ || f.start <= now) close_batch(lane);
}

void OffloadEngine::close_batch(std::size_t lane) {
  std::unique_ptr<Forming> f = std::move(forming_[lane]);
  const net::SimTime start = f->start;

  // Window price: the first job at full service cost, every extra stream
  // at the marginal fraction (the interleaved kernel's ILP win).
  std::uint64_t cost = costs_.cost_us(f->jobs[0].kind);
  for (std::size_t j = 1; j < f->jobs.size(); ++j)
    cost += static_cast<std::uint64_t>(
        static_cast<double>(costs_.cost_us(f->jobs[j].kind)) *
            costs_.batch_marginal +
        0.5);
  const net::SimTime done_at = start + cost;
  lane_free_[lane] = done_at;

  stats_.lane_busy_us += cost;
  stats_.batches += 1;
  if (f->jobs.size() >= 2) stats_.batched_jobs += f->jobs.size();
  stats_.max_batch_fill = std::max(stats_.max_batch_fill, f->jobs.size());

  auto pending = std::make_shared<Pending>();
  pending->jobs = std::move(f->jobs);
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_q_.push_back(pending);
  }
  work_cv_.notify_one();

  queue_.schedule_at(
      done_at, [this, pending, dones = std::move(f->dones)]() {
        // The modeled accelerator is done; collect the wall-clock result.
        // A healthy worker finished long ago (or finishes within the
        // grace period). If it is stalled, steal the whole window: PkJobs
        // are pure functions, so recomputing the batch inline is
        // bit-identical and only costs wall-clock time.
        std::vector<protocol::PkResult> results;
        bool have = false;
        {
          std::unique_lock<std::mutex> lock(pending->mu);
          if (pending->cv.wait_for(
                  lock, std::chrono::milliseconds(steal_timeout_ms_),
                  [&] { return pending->ready; })) {
            results = pending->results;
            have = true;
          }
        }
        if (!have) {
          std::vector<const protocol::PkJob*> ptrs;
          ptrs.reserve(pending->jobs.size());
          for (const protocol::PkJob& j : pending->jobs) ptrs.push_back(&j);
          results = protocol::run_pk_jobs(ptrs, &steal_cache_);
          stats_.stolen += pending->jobs.size();
        }
        stats_.completed += results.size();
        in_flight_ -= results.size();
        // Per-job callbacks fire in submission order at the window's
        // single completion instant.
        for (std::size_t i = 0; i < results.size(); ++i) dones[i](results[i]);
      });
}

void OffloadEngine::inject_worker_stall(std::size_t index,
                                        std::uint64_t ns_per_job) {
  if (index < workers_.size())
    stall_ns_[index].store(ns_per_job, std::memory_order_relaxed);
}

void OffloadEngine::worker_main(std::size_t index) {
  crypto::MontCache cache;  // per-lane Montgomery contexts, R^2 paid once
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !work_q_.empty(); });
      if (stopping_) return;
      pending = std::move(work_q_.front());
      work_q_.pop_front();
    }
    const std::uint64_t stall =
        stall_ns_[index].load(std::memory_order_relaxed);
    if (stall != 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    std::vector<const protocol::PkJob*> ptrs;
    ptrs.reserve(pending->jobs.size());
    for (const protocol::PkJob& j : pending->jobs) ptrs.push_back(&j);
    std::vector<protocol::PkResult> results =
        protocol::run_pk_jobs(ptrs, &cache);
    {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->results = std::move(results);
      pending->ready = true;
    }
    pending->cv.notify_all();
  }
}

}  // namespace mapsec::engine
