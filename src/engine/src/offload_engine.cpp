#include "mapsec/engine/offload_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mapsec::engine {

OffloadEngine::OffloadEngine(net::EventQueue& queue, std::size_t num_workers,
                             OffloadCosts costs,
                             std::uint64_t steal_timeout_ms)
    : queue_(queue), costs_(costs), steal_timeout_ms_(steal_timeout_ms) {
  if (num_workers == 0)
    throw std::invalid_argument("OffloadEngine: need at least one worker");
  lane_free_.assign(num_workers, 0);
  stall_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) stall_ns_[i] = 0;
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

OffloadEngine::~OffloadEngine() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void OffloadEngine::submit(protocol::PkJob job, Completion done) {
  const net::SimTime now = queue_.now();

  // Lane assignment is part of the *model*: earliest-free lane, ties to
  // the lowest index — a pure function of the submission sequence, which
  // is what keeps the completion-event schedule deterministic.
  std::size_t lane = 0;
  for (std::size_t i = 1; i < lane_free_.size(); ++i)
    if (lane_free_[i] < lane_free_[lane]) lane = i;
  const net::SimTime start = std::max(now, lane_free_[lane]);
  const std::uint64_t cost = costs_.cost_us(job.kind);
  const net::SimTime done_at = start + cost;
  lane_free_[lane] = done_at;

  stats_.submitted += 1;
  stats_.queue_wait_us += start - now;
  stats_.lane_busy_us += cost;
  in_flight_ += 1;
  stats_.peak_depth = std::max(stats_.peak_depth, in_flight_);

  auto pending = std::make_shared<Pending>();
  pending->job = std::move(job);
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_q_.push_back(pending);
  }
  work_cv_.notify_one();

  queue_.schedule_at(
      done_at, [this, pending, done = std::move(done)]() {
        // The modeled accelerator is done; collect the wall-clock result.
        // A healthy worker finished long ago (or finishes within the
        // grace period). If it is stalled, steal the job: PkResults are
        // pure functions of the job, so recomputing inline is
        // bit-identical and only costs wall-clock time.
        protocol::PkResult result;
        bool have = false;
        {
          std::unique_lock<std::mutex> lock(pending->mu);
          if (pending->cv.wait_for(
                  lock, std::chrono::milliseconds(steal_timeout_ms_),
                  [&] { return pending->ready; })) {
            result = pending->result;
            have = true;
          }
        }
        if (!have) {
          result = protocol::run_pk_job(pending->job, &steal_cache_);
          stats_.stolen += 1;
        }
        stats_.completed += 1;
        in_flight_ -= 1;
        done(result);
      });
}

void OffloadEngine::inject_worker_stall(std::size_t index,
                                        std::uint64_t ns_per_job) {
  if (index < workers_.size())
    stall_ns_[index].store(ns_per_job, std::memory_order_relaxed);
}

void OffloadEngine::worker_main(std::size_t index) {
  crypto::MontCache cache;  // per-lane Montgomery contexts, R^2 paid once
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !work_q_.empty(); });
      if (stopping_) return;
      pending = std::move(work_q_.front());
      work_q_.pop_front();
    }
    const std::uint64_t stall =
        stall_ns_[index].load(std::memory_order_relaxed);
    if (stall != 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    protocol::PkResult result = protocol::run_pk_job(pending->job, &cache);
    {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->result = std::move(result);
      pending->ready = true;
    }
    pending->cv.notify_all();
  }
}

}  // namespace mapsec::engine
