// Asynchronous public-key offload engine — the paper's crypto accelerator
// as a service.
//
// Section 4's architectural remedy for the security processing gap is to
// move public-key math off the host CPU onto dedicated hardware. This
// module models that accelerator for the simulated server: a connection
// that reaches a private-key operation suspends its handshake
// (protocol::PkJob), submits the job here, and the completion posts back
// into the net::EventQueue at the accelerator's *modeled* finish time —
// the event loop never blocks on bignum math, so the record path keeps
// streaming through handshake bursts.
//
// Two clocks, one contract:
//
//   * SIMULATED time: the engine models `num_workers` accelerator lanes.
//     A job submitted at sim time T starts on the lane that frees
//     earliest (ties -> lowest lane), runs for the configured service
//     cost of its kind, and its completion event fires at exactly
//     start + cost. Lane choice and event ordering are pure functions of
//     the submission sequence, so a run's event schedule is
//     deterministic for a given worker count.
//   * WALL-CLOCK time: a real std::thread pool computes the results in
//     parallel with the event loop. The completion event *waits* for the
//     worker's result; if a worker stalls past `steal_timeout_ms` (chaos
//     injection, scheduler pathology), the event-loop thread steals the
//     job and recomputes it inline. PkJobs are pure functions, so the
//     stolen result is bit-identical and simulated behaviour is entirely
//     unaffected — graceful degradation instead of deadlock.
//
// Each worker thread owns a crypto::MontCache, so every lane pays the
// per-key Montgomery setup (R^2 mod n, n') once and reuses it across
// every handshake under the same server key.
//
// Batched data plane (batch_width > 1): when jobs queue up behind a busy
// lane, the lane drains up to `batch_width` of them in one service
// window and executes the window through protocol::run_pk_jobs — every
// job's CRT exponentiations interleave in one crypto::BatchModExp. The
// model prices the window at cost(first) + batch_marginal * cost(rest),
// so batching only changes *when* completions fire, never what they
// contain: an idle lane still dispatches a single job immediately (the
// window only fills under queueing), per-job callbacks run in submission
// order at the window's completion instant, and results are bit-identical
// to width 1 — the honest-fleet transcript digest does not move for any
// batch width.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mapsec/crypto/mont_cache.hpp"
#include "mapsec/net/sim_clock.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace mapsec::engine {

/// Modeled accelerator service time per job kind, in simulated
/// microseconds. Defaults approximate a mid-1990s crypto accelerator an
/// order of magnitude faster than the paper's host-side RSA figures.
struct OffloadCosts {
  std::uint64_t rsa_decrypt_us = 4'000;  // ClientKeyExchange premaster
  std::uint64_t rsa_sign_us = 4'000;     // DHE ServerKeyExchange signature
  std::uint64_t rsa_verify_us = 400;     // CertificateVerify (public op)

  /// Marginal service-time fraction of each job drained into a lane's
  /// window after the first: a batch of k jobs costs
  /// cost(j0) + batch_marginal * (cost(j1) + ... + cost(j{k-1})). The
  /// sub-unit factor models the interleaved multi-exponentiation's ILP
  /// win (crypto::BatchModExp): the lane's multiplier ports that a single
  /// carry chain leaves idle absorb the extra streams almost for free.
  double batch_marginal = 0.3;

  std::uint64_t cost_us(protocol::PkJob::Kind kind) const {
    switch (kind) {
      case protocol::PkJob::Kind::kRsaDecrypt: return rsa_decrypt_us;
      case protocol::PkJob::Kind::kRsaSign: return rsa_sign_us;
      case protocol::PkJob::Kind::kRsaVerify: return rsa_verify_us;
    }
    return rsa_decrypt_us;
  }
};

/// Accounting, updated only from the event-loop thread.
struct OffloadStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t stolen = 0;  // recomputed inline after a wall-clock stall
  std::size_t peak_depth = 0;         // max jobs in flight simultaneously
  std::uint64_t queue_wait_us = 0;    // modeled wait for a free lane, total
  std::uint64_t lane_busy_us = 0;     // modeled lane service time, total
  std::uint64_t batches = 0;          // lane service windows dispatched
  std::uint64_t batched_jobs = 0;     // jobs that shared a window (fill >= 2)
  std::size_t max_batch_fill = 0;     // largest window fill observed
};

class OffloadEngine {
 public:
  using Completion = std::function<void(const protocol::PkResult&)>;

  /// Spawns `num_workers` wall-clock worker threads modeling the same
  /// number of accelerator lanes. All submit()/event activity must come
  /// from the single thread driving `queue`. `batch_width` (clamped to
  /// >= 1) caps how many queued jobs one lane drains per service window;
  /// width 1 reproduces the unbatched engine event-for-event.
  OffloadEngine(net::EventQueue& queue, std::size_t num_workers,
                OffloadCosts costs = {}, std::uint64_t steal_timeout_ms = 250,
                std::size_t batch_width = 1);
  ~OffloadEngine();

  OffloadEngine(const OffloadEngine&) = delete;
  OffloadEngine& operator=(const OffloadEngine&) = delete;

  /// Submit a job at the current simulated time. `done` fires as an
  /// EventQueue event at the modeled completion instant (never inline).
  void submit(protocol::PkJob job, Completion done);

  std::size_t num_workers() const { return workers_.size(); }
  std::size_t batch_width() const { return batch_width_; }
  std::size_t in_flight() const { return in_flight_; }
  const OffloadStats& stats() const { return stats_; }

  /// Chaos hook: park worker `index` for `ns_per_job` wall-clock
  /// nanoseconds before each job it picks up (0 clears). Safe to call
  /// from any thread; out-of-range indices are ignored. A parked worker
  /// only ever delays wall-clock completion — the steal path keeps
  /// simulated results and ordering bit-identical.
  void inject_worker_stall(std::size_t index, std::uint64_t ns_per_job);

 private:
  /// One dispatched lane window (1..batch_width jobs) — the unit of work
  /// shared between the event loop and the pool. Workers execute the
  /// whole window through protocol::run_pk_jobs, so the jobs' private
  /// operations interleave through one multi-exponentiation.
  struct Pending {
    std::vector<protocol::PkJob> jobs;
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;                        // guarded by mu
    std::vector<protocol::PkResult> results;   // guarded by mu
  };

  /// A lane's open window: jobs that joined the queue while the lane is
  /// busy, waiting either for the lane to free (the close event at
  /// `start`) or for the window to fill to batch_width. Only exists
  /// while the lane is busy — an idle lane dispatches immediately.
  struct Forming {
    net::SimTime start = 0;      // == lane_free_[lane] while forming
    std::uint64_t seq = 0;       // guards the close event against reuse
    std::vector<protocol::PkJob> jobs;
    std::vector<Completion> dones;  // parallel to jobs, submission order
  };

  void close_batch(std::size_t lane);
  void worker_main(std::size_t index);

  net::EventQueue& queue_;
  OffloadCosts costs_;
  std::uint64_t steal_timeout_ms_;
  std::size_t batch_width_;
  std::vector<net::SimTime> lane_free_;  // modeled lanes
  std::vector<std::unique_ptr<Forming>> forming_;  // open window per lane
  std::uint64_t forming_seq_ = 0;
  OffloadStats stats_;
  std::size_t in_flight_ = 0;
  crypto::MontCache steal_cache_;  // event-loop thread only

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Pending>> work_q_;
  bool stopping_ = false;
  std::unique_ptr<std::atomic<std::uint64_t>[]> stall_ns_;  // per worker
  std::vector<std::thread> workers_;
};

}  // namespace mapsec::engine
