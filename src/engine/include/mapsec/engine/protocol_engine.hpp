// A programmable security protocol engine, modelled on MOSES (the
// wireless security processing platform of the paper's references
// [66-68], discussed in Section 4.2.3).
//
// The argument being reproduced: cryptographic accelerators speed up the
// ciphers but leave per-packet *protocol* processing (header parsing, SA
// lookup, replay windows, padding) on the host CPU; a protocol engine
// absorbs the whole packet path, and a *programmable* one keeps the
// flexibility that Section 3.1 demands — a new protocol is a new program,
// not new silicon.
//
// The engine here is a small packet VM:
//   * a security-protocol instruction set (parse, SPI check, anti-replay,
//     MAC verify/compute, CBC encrypt/decrypt, accept/drop),
//   * security associations as the register state programs run against,
//   * a per-instruction + per-byte cycle cost model with hardware cipher
//     and MAC units (this is what makes it an *engine* rather than an
//     interpreter).
//
// tests/engine_test.cpp shows an ESP-inbound program matching the
// hand-written protocol::EspReceiver semantics decision-for-decision, and
// a WEP program and a CCMP-like program running on the same engine — the
// flexibility claim, executed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapsec/crypto/hmac.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/suites.hpp"

namespace mapsec::engine {

/// The security-protocol instruction set.
enum class OpCode : std::uint8_t {
  kCheckMinLength,  // operand: drop unless packet length >= operand
  kParseHeader,     // operand: split off the first `operand` bytes as header
  kCheckSpi,        // operand: header offset of a be32 SPI; match the SA
  kCheckReplay,     // operand: header offset of a be32 sequence number
  kVerifyMac,       // operand: tag length; HMAC-SHA1 over header||payload
  kComputeMac,      // operand: tag length; appends the tag
  kDecryptCbc,      // payload = IV || ciphertext -> plaintext
  kEncryptCbc,      // payload -> IV || ciphertext (fresh random IV)
  kSealCcm,         // operand: tag length; payload -> nonce || AES-CCM
                    // ciphertext+tag, header as AAD (requires kAes128)
  kOpenCcm,         // operand: tag length; payload = nonce || sealed ->
                    // plaintext, header as AAD; drop on auth failure
  kAccept,          // terminate: packet accepted
  kDrop,            // terminate: packet dropped
};

std::string opcode_name(OpCode op);

struct Instruction {
  OpCode op;
  std::uint32_t operand = 0;
};

/// A protocol program. Executes top to bottom until kAccept/kDrop or a
/// failed check (which drops implicitly).
using Program = std::vector<Instruction>;

/// Register state a program runs against (one per peer/flow).
struct EngineSa {
  std::uint32_t spi = 0;
  protocol::BulkCipher cipher = protocol::BulkCipher::kDes3;
  crypto::Bytes enc_key;
  crypto::Bytes mac_key;
  // Anti-replay window state (64 entries).
  std::uint32_t highest_seq = 0;
  std::uint64_t window = 0;

  // Cached execution resources, built lazily by the engine on first use.
  // Key scheduling and HMAC ipad/opad absorption are per-SA work, not
  // per-packet work; the engine rebuilds these only when the keys change.
  // Copying an SA shares the (immutable-once-built) cache. Like the
  // replay window, these make a live SA single-threaded: process all of
  // one SA's packets on one thread (what PacketPipeline's SA-affine
  // sharding guarantees).
  mutable std::shared_ptr<const crypto::BlockCipher> rt_cipher;
  mutable crypto::Bytes rt_cipher_key;
  mutable protocol::BulkCipher rt_cipher_kind = protocol::BulkCipher::kDes3;
  mutable std::shared_ptr<const crypto::HmacSha1> rt_mac;
  mutable crypto::Bytes rt_mac_key;
};

/// Cycle cost parameters. Defaults model a MOSES-class engine: cheap
/// wide-datapath parsing, hardware cipher/MAC units at a few cycles/byte.
struct EngineProfile {
  double cycles_per_instruction = 4;
  double parse_cycles_per_byte = 0.25;
  double cipher_cycles_per_byte = 2.0;
  double mac_cycles_per_byte = 1.5;
  double clock_mhz = 100.0;

  /// A software baseline on an embedded core, for the Section 4.2.3
  /// comparison: same instruction semantics, every byte through the ALU.
  static EngineProfile software_baseline();
};

class ProtocolEngine {
 public:
  explicit ProtocolEngine(EngineProfile profile, crypto::Rng* rng);

  /// Register a program under a name.
  void load_program(const std::string& name, Program program);

  bool has_program(const std::string& name) const;
  std::size_t program_count() const { return programs_.size(); }

  struct Result {
    bool accepted = false;
    crypto::Bytes header;     // parsed header (on accept)
    crypto::Bytes payload;    // transformed payload (on accept)
    double cycles = 0;        // simulated execution cost
    std::string drop_reason;  // set when !accepted
  };

  /// Run a program over a packet against an SA. The SA's replay state
  /// advances on successful kCheckReplay.
  Result run(const std::string& program_name, EngineSa& sa,
             crypto::ConstBytes packet);

  /// Same, drawing IVs/nonces from `rng` instead of the engine's own
  /// source. Program lookup is read-only, so concurrent calls are safe as
  /// long as each SA (and each rng) is confined to one thread — the
  /// contract PacketPipeline's SA-affine sharding provides.
  Result run(const std::string& program_name, EngineSa& sa,
             crypto::ConstBytes packet, crypto::Rng& rng) const;

  /// Run one program over many packets, batching the record transforms:
  /// for the CCMP-shaped programs the AES-CCM seals/opens of all packets
  /// interleave through the multi-buffer kernels (crypto::ccm_seal_batch /
  /// ccm_open_batch); other programs fall back to a sequential loop.
  /// results[i], cycle accounting, per-rng draw order, and SA replay-state
  /// evolution are identical to calling
  ///   run(program_name, *sas[i], packets[i], *rngs[i])
  /// in index order — packets may share SAs and rngs. The thread-
  /// confinement contract is the same as run()'s.
  std::vector<Result> run_many(const std::string& program_name,
                               const std::vector<EngineSa*>& sas,
                               const std::vector<crypto::ConstBytes>& packets,
                               const std::vector<crypto::Rng*>& rngs) const;

  /// Throughput estimate (Mbps) for a program processing `packet_bytes`
  /// packets back to back, from the cost model.
  double throughput_mbps(const std::string& program_name, EngineSa& sa,
                         crypto::ConstBytes sample_packet);

  const EngineProfile& profile() const { return profile_; }

 private:
  EngineProfile profile_;
  crypto::Rng* rng_;
  std::map<std::string, Program> programs_;
};

/// Canonical programs (each also a worked example of the ISA).
Program esp_inbound_program();
Program esp_outbound_program();
Program wep_inbound_like_program();

/// CCMP-shaped programs (802.11i AES-CCM data path): spi|seq header as
/// AAD, AES-CCM sealed payload. The SA must use kAes128. Inbound checks
/// replay only after the tag verifies (forgeries cannot advance the
/// window).
Program ccmp_inbound_program();
Program ccmp_outbound_program();

}  // namespace mapsec::engine
