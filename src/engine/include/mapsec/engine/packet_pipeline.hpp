// Multi-threaded packet pipeline over the protocol engine.
//
// Section 4.2.3's throughput argument, taken one level up: once the
// per-packet protocol path is programmable (ProtocolEngine) and the
// crypto inner loops are allocation-free, the remaining lever on a
// multi-core appliance is running independent flows in parallel. The
// pipeline shards packets across a persistent worker pool by security
// association: worker = sa_id % num_workers. SA affinity gives two
// properties for free:
//
//   * per-SA packet order is preserved, so anti-replay windows and
//     sequence state evolve exactly as they would single-threaded;
//   * each SA's cached cipher/MAC contexts and its IV/nonce generator are
//     touched by exactly one thread — no locks on the data path.
//
// Consequently accept/drop decisions, output bytes and final replay state
// are identical for any worker count (tests/engine/pipeline_test.cpp
// asserts this), which is what makes the parallelism deployable in a
// security protocol: scaling out must not change the protocol's observable
// behaviour.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mapsec/engine/protocol_engine.hpp"

namespace mapsec::engine {

/// One packet's worth of work: which SA it belongs to, which program to
/// run, and the wire bytes.
struct PipelineJob {
  std::uint32_t sa_id = 0;
  std::string program;
  crypto::Bytes packet;
};

/// Outcome of one job, in the batch's original order.
struct PipelineResult {
  bool accepted = false;
  crypto::Bytes header;   // parsed header (on accept)
  crypto::Bytes payload;  // transformed payload (on accept)
  std::string drop_reason;
  double engine_cycles = 0;  // simulated cost from the engine's model
};

/// Per-worker counters (throughput accounting for the benchmark).
struct WorkerStats {
  std::uint64_t packets = 0;
  std::uint64_t batches = 0;
  double engine_cycles = 0;   // simulated engine cycles executed
  std::uint64_t busy_ns = 0;  // wall-clock time spent processing
};

class PacketPipeline {
 public:
  /// Spawns `num_workers` persistent threads. `rng_seed` roots the per-SA
  /// deterministic IV/nonce generators (seed ^ sa_id), so a pipeline's
  /// outputs depend on (seed, SAs, jobs) but not on the worker count.
  PacketPipeline(EngineProfile profile, std::size_t num_workers,
                 std::uint64_t rng_seed = 0x9A9A5EED);
  ~PacketPipeline();

  PacketPipeline(const PacketPipeline&) = delete;
  PacketPipeline& operator=(const PacketPipeline&) = delete;

  /// Register a program on the shared engine. Not safe concurrently with
  /// run_batch().
  void load_program(const std::string& name, Program program);

  /// Register an SA under `sa_id`. Not safe concurrently with run_batch().
  void add_sa(std::uint32_t sa_id, EngineSa sa);

  /// Access a registered SA (e.g. to inspect replay state after a batch).
  const EngineSa& sa(std::uint32_t sa_id) const;

  /// Zero the replay windows of all registered SAs (benchmarks re-run the
  /// same inbound batch; live use never needs this).
  void reset_replay();

  /// Process a batch. Blocks until every job has completed; results are
  /// in job order. Jobs for the same SA execute in batch order on the
  /// same worker.
  std::vector<PipelineResult> run_batch(const std::vector<PipelineJob>& jobs);

  std::size_t num_workers() const { return workers_.size(); }
  const std::vector<WorkerStats>& stats() const { return stats_; }

  /// Which crypto backend the workers' inner loops dispatch to (the
  /// crypto::dispatch capabilities summary, e.g. "aes=aesni sha1=sha-ni
  /// ..."). Identical for every worker — dispatch is process-global —
  /// and reported so throughput numbers carry their hardware context.
  static std::string crypto_backend();

  /// Chaos hook: make worker `index` sleep `ns_per_batch` wall-clock
  /// nanoseconds at the start of every batch (0 clears it). A stalled
  /// worker slows the batch barrier down but MUST NOT change any result
  /// byte — the chaos soak asserts that. Safe to call while batches run
  /// (the value is atomic); out-of-range indices are ignored.
  void inject_worker_stall(std::size_t index, std::uint64_t ns_per_batch);

 private:
  struct SaState {
    EngineSa sa;
    crypto::HmacDrbg rng;
  };

  void worker_main(std::size_t index);

  ProtocolEngine engine_;
  crypto::HmacDrbg engine_rng_;  // only feeds the rng-less run() overload
  std::uint64_t rng_seed_;
  std::map<std::uint32_t, SaState> sas_;

  // Batch handoff state, guarded by mu_. Workers wake on a new epoch,
  // process their share of the current batch, and the last one out
  // signals completion.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;
  std::size_t workers_remaining_ = 0;
  const std::vector<PipelineJob>* jobs_ = nullptr;
  std::vector<PipelineResult>* results_ = nullptr;

  std::vector<WorkerStats> stats_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> stall_ns_;  // per worker
  std::vector<std::thread> workers_;
};

}  // namespace mapsec::engine
