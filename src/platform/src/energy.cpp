#include "mapsec/platform/energy.hpp"

#include <cmath>
#include <stdexcept>

namespace mapsec::platform {

EnergyModel EnergyModel::paper_sensor_node() {
  EnergyModel m;
  m.tx_mj_per_kb = 21.5;
  m.rx_mj_per_kb = 14.3;
  m.crypto_mj_per_kb = 42.0;
  return m;
}

Battery::Battery(double capacity_kj)
    : capacity_mj_(capacity_kj * 1e6), remaining_mj_(capacity_mj_) {
  if (capacity_kj <= 0)
    throw std::invalid_argument("Battery: capacity must be positive");
}

bool Battery::consume_mj(double mj) {
  if (mj < 0) throw std::invalid_argument("Battery: negative draw");
  if (mj > remaining_mj_) {
    remaining_mj_ = 0;
    return false;
  }
  remaining_mj_ -= mj;
  return true;
}

double transactions_per_charge(const EnergyModel& energy, double battery_kj,
                               double kb, bool secure) {
  const double per_txn = energy.transaction_mj(kb, secure);
  if (per_txn <= 0)
    throw std::invalid_argument("transactions_per_charge: zero-cost txn");
  return battery_kj * 1e6 / per_txn;
}

RateCapacityBattery::RateCapacityBattery(double capacity_kj,
                                         double ref_power_mw, double peukert)
    : capacity_mj_(capacity_kj * 1e6),
      ref_power_mw_(ref_power_mw),
      peukert_(peukert) {
  if (capacity_kj <= 0 || ref_power_mw <= 0 || peukert < 1.0)
    throw std::invalid_argument("RateCapacityBattery: bad parameters");
}

double RateCapacityBattery::effective_capacity_mj(double power_mw) const {
  if (power_mw <= 0)
    throw std::invalid_argument("effective_capacity_mj: power must be > 0");
  // Peukert, expressed in power: C_eff = C_rated * (P_ref / P)^(k-1).
  // Draws below the reference rate are capped at the rated capacity (no
  // free energy from trickle discharge).
  const double ratio = ref_power_mw_ / power_mw;
  const double factor =
      ratio >= 1.0 ? 1.0 : std::pow(ratio, peukert_ - 1.0);
  return capacity_mj_ * factor;
}

double RateCapacityBattery::lifetime_hours(double power_mw) const {
  return effective_capacity_mj(power_mw) / power_mw / 3600.0;
}

double RateCapacityBattery::lifetime_hours_duty_cycle(double peak_mw,
                                                      double idle_mw,
                                                      double duty) const {
  if (duty < 0 || duty > 1)
    throw std::invalid_argument("duty must be in [0,1]");
  // Rate-weighted consumption: each watt-second drawn at power P consumes
  // 1 / C_eff(P) of the battery. Average the consumption rate over the
  // duty cycle and invert.
  const double peak_frac =
      peak_mw > 0 ? duty * peak_mw / effective_capacity_mj(peak_mw) : 0.0;
  const double idle_frac =
      idle_mw > 0
          ? (1.0 - duty) * idle_mw / effective_capacity_mj(idle_mw)
          : 0.0;
  const double per_second = peak_frac + idle_frac;
  if (per_second <= 0)
    throw std::invalid_argument("duty cycle draws no power");
  return 1.0 / per_second / 3600.0;
}

}  // namespace mapsec::platform
