#include "mapsec/platform/workload.hpp"

#include <stdexcept>

namespace mapsec::platform {

std::string primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kDes: return "DES";
    case Primitive::kDes3: return "3DES";
    case Primitive::kAes128: return "AES-128";
    case Primitive::kRc4: return "RC4";
    case Primitive::kRc2: return "RC2";
    case Primitive::kSha1: return "SHA-1";
    case Primitive::kMd5: return "MD5";
    case Primitive::kSha256: return "SHA-256";
    case Primitive::kRsa512Private: return "RSA-512-priv";
    case Primitive::kRsa1024Private: return "RSA-1024-priv";
    case Primitive::kRsa2048Private: return "RSA-2048-priv";
    case Primitive::kRsa1024Public: return "RSA-1024-pub";
    case Primitive::kDh1024: return "DH-1024";
  }
  return "?";
}

bool is_bulk_primitive(Primitive p) {
  switch (p) {
    case Primitive::kDes:
    case Primitive::kDes3:
    case Primitive::kAes128:
    case Primitive::kRc4:
    case Primitive::kRc2:
    case Primitive::kSha1:
    case Primitive::kMd5:
    case Primitive::kSha256:
      return true;
    default:
      return false;
  }
}

WorkloadModel WorkloadModel::paper_calibrated() {
  WorkloadModel m;
  // Bulk costs in instructions/byte on a 32-bit embedded core.
  // Anchor: 3DES (437.04) + SHA-1 (84.0) = 521.04 instr/byte
  //   -> at 10 Mbps (1.25e6 B/s): 651.3 MIPS, the paper's Section 3.2
  //      figure. DES is one third of 3DES by construction.
  m.per_byte_[Primitive::kDes] = 145.68;
  m.per_byte_[Primitive::kDes3] = 437.04;
  m.per_byte_[Primitive::kSha1] = 84.0;
  // Relative costs of the remaining bulk primitives follow their measured
  // cycles/byte ratios on word-oriented cores (AES and RC4 dramatically
  // cheaper than 3DES — part of why TLS moved to AES, Figure 2).
  m.per_byte_[Primitive::kAes128] = 30.0;
  m.per_byte_[Primitive::kRc4] = 10.0;
  m.per_byte_[Primitive::kRc2] = 120.0;
  m.per_byte_[Primitive::kMd5] = 45.0;
  m.per_byte_[Primitive::kSha256] = 120.0;

  // Handshake costs in instructions/operation.
  // Anchor: an RSA-1024 connection set-up of 56e6 instructions is feasible
  // on the 235-MIPS SA-1100 at 0.5 s (112 MIPS) and 1 s (56 MIPS) target
  // latency, but not at 0.1 s (560 MIPS) — the Section 3.2 claim.
  m.per_op_[Primitive::kRsa1024Private] = 56e6;
  // Cubic scaling in the modulus size for private ops (CRT on both sides).
  m.per_op_[Primitive::kRsa512Private] = 7e6;
  m.per_op_[Primitive::kRsa2048Private] = 448e6;
  // e = 65537: ~17 multiplies versus ~1530 for the private exponent.
  m.per_op_[Primitive::kRsa1024Public] = 1.5e6;
  // Full-width exponent, no CRT.
  m.per_op_[Primitive::kDh1024] = 200e6;
  return m;
}

double WorkloadModel::instr_per_byte(Primitive p) const {
  const auto it = per_byte_.find(p);
  if (it == per_byte_.end())
    throw std::invalid_argument("WorkloadModel: no per-byte cost for " +
                                primitive_name(p));
  return it->second;
}

double WorkloadModel::instr_per_op(Primitive p) const {
  const auto it = per_op_.find(p);
  if (it == per_op_.end())
    throw std::invalid_argument("WorkloadModel: no per-op cost for " +
                                primitive_name(p));
  return it->second;
}

double WorkloadModel::bulk_mips(Primitive cipher, Primitive mac,
                                double mbps) const {
  const double bytes_per_s = mbps * 1e6 / 8.0;
  const double instr_per_b = instr_per_byte(cipher) + instr_per_byte(mac) +
                             protocol_instr_per_byte_;
  return bytes_per_s * instr_per_b / 1e6;
}

double WorkloadModel::handshake_mips(Primitive pk_op, double latency_s) const {
  if (latency_s <= 0)
    throw std::invalid_argument("handshake_mips: latency must be > 0");
  return instr_per_op(pk_op) / latency_s / 1e6;
}

double WorkloadModel::required_mips(double latency_s, double mbps) const {
  return handshake_mips(Primitive::kRsa1024Private, latency_s) +
         bulk_mips(Primitive::kDes3, Primitive::kSha1, mbps);
}

}  // namespace mapsec::platform
