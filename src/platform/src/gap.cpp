#include "mapsec/platform/gap.hpp"

#include <cmath>

namespace mapsec::platform {

GapAnalysis::GapAnalysis(WorkloadModel model) : model_(std::move(model)) {}

std::vector<GapPoint> GapAnalysis::surface(
    const std::vector<double>& latencies_s,
    const std::vector<double>& rates_mbps) const {
  std::vector<GapPoint> out;
  out.reserve(latencies_s.size() * rates_mbps.size());
  for (const double latency : latencies_s) {
    for (const double rate : rates_mbps) {
      GapPoint p;
      p.latency_s = latency;
      p.mbps = rate;
      p.handshake_mips =
          model_.handshake_mips(Primitive::kRsa1024Private, latency);
      p.bulk_mips = model_.bulk_mips(Primitive::kDes3, Primitive::kSha1, rate);
      p.required_mips = p.handshake_mips + p.bulk_mips;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<double> GapAnalysis::default_latencies() {
  return {0.1, 0.5, 1.0};
}

std::vector<double> GapAnalysis::default_rates() {
  return {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0};
}

PlaneSummary GapAnalysis::summarise(
    const Processor& proc, const std::vector<GapPoint>& points) const {
  PlaneSummary s;
  s.processor = proc;
  s.total_points = points.size();
  for (const auto& p : points)
    if (feasible(proc, p)) ++s.feasible_points;
  s.max_mbps_at_1s = max_rate_mbps(proc, 1.0);
  return s;
}

std::vector<GapTrendPoint> project_gap_trend(
    const GapAnalysis& gap, const Processor& base_processor,
    double base_mbps, int base_year, int years,
    const GapTrendAssumptions& assumptions) {
  std::vector<GapTrendPoint> out;
  out.reserve(static_cast<std::size_t>(years) + 1);
  double mips = base_processor.mips;
  double mbps = base_mbps;
  double strength = 1.0;
  for (int y = 0; y <= years; ++y) {
    GapTrendPoint p;
    p.year = base_year + y;
    p.available_mips = mips;
    // Stronger crypto multiplies the whole per-byte and per-op cost.
    p.required_mips = gap.model().required_mips(1.0, mbps) * strength;
    p.gap_ratio = p.required_mips / p.available_mips;
    out.push_back(p);
    mips *= assumptions.processor_growth;
    mbps *= assumptions.data_rate_growth;
    strength *= assumptions.crypto_strength_growth;
  }
  return out;
}

ServingGapReport serving_gap(const WorkloadModel& model,
                             const Processor& proc, const ServedLoad& load,
                             double battery_kj, Primitive pk,
                             Primitive cipher, Primitive mac) {
  ServingGapReport report;
  // Handshake side: each full handshake spends one private-key op;
  // resumed handshakes skip it (their symmetric cost is folded into the
  // bulk term, which measures all protected bytes).
  report.handshake_mips =
      load.full_handshakes_per_s * model.instr_per_op(pk) / 1e6;
  report.bulk_mips = load.bulk_mbps > 0
                         ? model.bulk_mips(cipher, mac, load.bulk_mbps)
                         : 0.0;
  report.required_mips = report.handshake_mips + report.bulk_mips;
  report.available_mips = proc.mips;
  report.gap_ratio =
      proc.mips > 0 ? report.required_mips / proc.mips : 0.0;

  // Battery tie-in (Figure 4's arithmetic over the same load): the
  // processing instructions of one average session, priced through the
  // processor's energy-per-instruction rating.
  const double session_share =
      load.sessions_per_s > 0
          ? load.full_handshakes_per_s / load.sessions_per_s
          : 1.0;
  const double bulk_instr_per_kb =
      model.instr_per_byte(cipher) * 1024.0 +
      model.instr_per_byte(mac) * 1024.0;
  const double session_instr =
      session_share * model.instr_per_op(pk) +
      load.avg_session_kb * bulk_instr_per_kb;
  report.session_mj = proc.millijoules_for(session_instr);
  report.sessions_per_charge =
      report.session_mj > 0 ? battery_kj * 1e6 / report.session_mj : 0.0;
  return report;
}

ServingGapReport serving_gap(const WorkloadModel& model,
                             const AccelProfile& accel, const Processor& proc,
                             const ServedLoad& load, double battery_kj,
                             Primitive pk, Primitive cipher, Primitive mac) {
  // MIPS side: price against the accelerated cost table.
  ServingGapReport report = serving_gap(accelerated_model(model, accel), proc,
                                        load, battery_kj, pk, cipher, mac);

  // Energy side: the tier's energy_efficiency is defined against the host
  // running the UNaccelerated workload, so recompute the session bill
  // from the base model rather than double-counting the instruction
  // reduction already applied above.
  const double session_share =
      load.sessions_per_s > 0
          ? load.full_handshakes_per_s / load.sessions_per_s
          : 1.0;
  const double bulk_instr_per_kb = model.instr_per_byte(cipher) * 1024.0 +
                                   model.instr_per_byte(mac) * 1024.0;
  const double session_instr = session_share * model.instr_per_op(pk) +
                               load.avg_session_kb * bulk_instr_per_kb;
  const double efficiency =
      accel.energy_efficiency > 0 ? accel.energy_efficiency : 1.0;
  report.session_mj = proc.millijoules_for(session_instr) / efficiency;
  report.sessions_per_charge =
      report.session_mj > 0 ? battery_kj * 1e6 / report.session_mj : 0.0;
  return report;
}

OffloadGapReport serving_gap_offloaded(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t lanes, double lane_op_s, double accel_energy_efficiency,
    double battery_kj, Primitive pk, Primitive cipher, Primitive mac) {
  OffloadGapReport report;

  // Host plane: the same load with the full-handshake pk ops removed —
  // they run on the accelerator lanes, not the host. The base pricing
  // then also excludes the pk term from the session energy bill (its
  // session_share collapses to zero), which is re-added below at the
  // accelerator's efficiency.
  ServedLoad host_load = load;
  host_load.full_handshakes_per_s = 0;
  report.host =
      serving_gap(model, proc, host_load, battery_kj, pk, cipher, mac);

  // Lane occupancy: the accelerator as a fixed-rate server.
  report.pk_ops_per_s = load.full_handshakes_per_s;
  report.lane_service_s = lane_op_s;
  report.lanes = static_cast<double>(lanes);
  const double demand_lane_s = load.full_handshakes_per_s * lane_op_s;
  report.lane_utilisation = lanes > 0 ? demand_lane_s / report.lanes : 0.0;
  report.min_lanes = std::ceil(demand_lane_s);

  // Energy: the offloaded pk op still costs energy, just 1/efficiency of
  // the host bill — added back into the per-session figure.
  const double session_share =
      load.sessions_per_s > 0
          ? load.full_handshakes_per_s / load.sessions_per_s
          : 1.0;
  const double efficiency =
      accel_energy_efficiency > 0 ? accel_energy_efficiency : 1.0;
  report.host.session_mj +=
      session_share * proc.millijoules_for(model.instr_per_op(pk)) /
      efficiency;
  report.host.sessions_per_charge =
      report.host.session_mj > 0 ? battery_kj * 1e6 / report.host.session_mj
                                 : 0.0;
  return report;
}

BatchedGapReport serving_gap_batched(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t lanes, double lane_op_s, std::size_t batch_width,
    double batch_marginal, double accel_energy_efficiency, double battery_kj,
    Primitive pk, Primitive cipher, Primitive mac) {
  BatchedGapReport report;
  report.offload =
      serving_gap_offloaded(model, proc, load, lanes, lane_op_s,
                            accel_energy_efficiency, battery_kj, pk, cipher,
                            mac);
  const double width =
      static_cast<double>(batch_width == 0 ? 1 : batch_width);
  report.batch_width = width;
  report.batch_marginal = batch_marginal;
  // A full window of W jobs occupies the lane for
  // lane_op_s * (1 + (W - 1) * m) seconds — W ops for barely more than
  // one op's slot when m is small.
  report.effective_op_s =
      lane_op_s * (1.0 + (width - 1.0) * batch_marginal) / width;
  const double demand_lane_s =
      load.full_handshakes_per_s * report.effective_op_s;
  report.batched_utilisation =
      lanes > 0 ? demand_lane_s / static_cast<double>(lanes) : 0.0;
  report.throughput_gain =
      report.effective_op_s > 0 ? lane_op_s / report.effective_op_s : 1.0;
  report.min_lanes = std::ceil(demand_lane_s);
  return report;
}

TicketGapReport serving_gap_ticket(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    double ring_state_bytes, double cache_state_bytes,
    double ticket_wire_bytes, double battery_kj, Primitive pk,
    Primitive cipher, Primitive mac) {
  TicketGapReport report;
  report.host = serving_gap(model, proc, load, battery_kj, pk, cipher, mac);

  // CCM over the blob is two AES passes (CBC-MAC, then CTR); an open and
  // a seal cost the same. Each resumed handshake opens the offered
  // ticket; each full handshake seals a replacement NewSessionTicket
  // (resumptions re-seal too, but that open+seal pair is what the
  // resumed row already carries — price seals on the full rate and opens
  // plus re-seals on the resumed rate).
  const double ccm_instr =
      2.0 * model.instr_per_byte(Primitive::kAes128) * ticket_wire_bytes;
  report.ticket_open_mips =
      load.resumed_handshakes_per_s * 2.0 * ccm_instr / 1e6;
  report.ticket_seal_mips = load.full_handshakes_per_s * ccm_instr / 1e6;
  report.host.required_mips +=
      report.ticket_open_mips + report.ticket_seal_mips;
  report.host.gap_ratio = proc.mips > 0
                              ? report.host.required_mips / proc.mips
                              : 0.0;

  report.server_state_bytes = ring_state_bytes;
  report.cache_state_bytes = cache_state_bytes;
  report.state_ratio = ring_state_bytes > 0
                           ? cache_state_bytes / ring_state_bytes
                           : 0.0;
  return report;
}

ShardedGapReport serving_gap_sharded(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t shards, double slice_us, double merge_instr_per_slice,
    double battery_kj, Primitive pk, Primitive cipher, Primitive mac) {
  ShardedGapReport report;
  report.fleet =
      serving_gap(model, proc, load, battery_kj, pk, cipher, mac);
  report.shards = static_cast<double>(shards == 0 ? 1 : shards);

  // Barrier tax: every core re-freezes the fleet snapshot once per slice
  // regardless of how many shards share the tier.
  const double slices_per_s = slice_us > 0 ? 1e6 / slice_us : 0.0;
  report.merge_overhead_mips =
      slices_per_s * merge_instr_per_slice / 1e6;

  report.per_shard_required_mips =
      report.fleet.required_mips / report.shards +
      report.merge_overhead_mips;
  report.shard_utilisation =
      proc.mips > 0 ? report.per_shard_required_mips / proc.mips : 0.0;

  const double headroom = proc.mips - report.merge_overhead_mips;
  report.min_shards =
      headroom > 0 ? std::ceil(report.fleet.required_mips / headroom) : 0.0;
  if (report.min_shards < 1 && headroom > 0) report.min_shards = 1;
  return report;
}

FailoverGapReport serving_gap_failover(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t shards, double slice_us, double reconnect_sessions,
    double blackout_s, double ticket_open_instr,
    double merge_instr_per_slice, double battery_kj, Primitive pk,
    Primitive cipher, Primitive mac) {
  FailoverGapReport report;
  report.steady =
      serving_gap_sharded(model, proc, load, shards, slice_us,
                          merge_instr_per_slice, battery_kj, pk, cipher, mac);
  report.surviving_shards =
      shards > 1 ? static_cast<double>(shards - 1) : 1.0;
  report.blackout_s = blackout_s;
  report.reconnect_sessions = reconnect_sessions;

  // The whole resumption burst, expressed as sustained MIPS over the
  // blackout window it lands in.
  const double burst_instr = reconnect_sessions * ticket_open_instr;
  report.burst_mips =
      blackout_s > 0 ? burst_instr / blackout_s / 1e6 : 0.0;

  report.degraded_required_mips =
      report.steady.fleet.required_mips / report.surviving_shards +
      report.steady.merge_overhead_mips +
      report.burst_mips / report.surviving_shards;
  report.degraded_utilisation =
      proc.mips > 0 ? report.degraded_required_mips / proc.mips : 0.0;

  // Energy bill of the crash itself: every victim session re-establishes
  // once. Tickets make each re-establishment symmetric-only; the
  // counterfactual (no resumption state survives the crash) pays the
  // full private-key operation per session — the paper's 42 mJ/KB worst
  // case, at fleet scale.
  report.crash_energy_mj = proc.millijoules_for(burst_instr);
  report.crash_energy_full_mj = proc.millijoules_for(
      reconnect_sessions * model.instr_per_op(pk));
  report.ticket_saving_ratio =
      report.crash_energy_mj > 0
          ? report.crash_energy_full_mj / report.crash_energy_mj
          : 0.0;
  return report;
}

double GapAnalysis::max_rate_mbps(const Processor& proc,
                                  double latency_s) const {
  const double handshake =
      model_.handshake_mips(Primitive::kRsa1024Private, latency_s);
  const double headroom_mips = proc.mips - handshake;
  if (headroom_mips <= 0) return 0;
  // Invert bulk_mips: rate such that bulk requirement == headroom.
  const double per_mbps =
      model_.bulk_mips(Primitive::kDes3, Primitive::kSha1, 1.0);
  return headroom_mips / per_mbps;
}

}  // namespace mapsec::platform
