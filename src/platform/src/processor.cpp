#include "mapsec/platform/processor.hpp"

namespace mapsec::platform {

// Energy-per-instruction figures are derived from typical published power
// draws of each part at its rated MIPS (P4 ~60 W, SA-1110 ~0.4 W active,
// ARM7 ~25 mW, 68EC000 ~20 mW); the battery analysis only needs the right
// order of magnitude and the right *ordering* across parts.

Processor Processor::pentium4() { return {"Pentium4-2.6GHz", 2890.0, 20.8}; }

Processor Processor::strongarm_sa1100() {
  return {"StrongARM-SA1100-206MHz", 235.0, 1.7};
}

Processor Processor::arm7() { return {"ARM7-35MHz", 17.5, 1.4}; }

Processor Processor::dragonball() {
  return {"DragonBall-68EC000", 2.7, 7.4};
}

Processor Processor::embedded300() { return {"Embedded-300MIPS", 300.0, 1.5}; }

std::vector<Processor> Processor::catalogue() {
  return {dragonball(), arm7(), strongarm_sa1100(), embedded300(), pentium4()};
}

}  // namespace mapsec::platform
