#include "mapsec/platform/accelerator.hpp"

namespace mapsec::platform {

std::string accel_tier_name(AccelTier tier) {
  switch (tier) {
    case AccelTier::kSoftware: return "software";
    case AccelTier::kIsaExtension: return "ISA-extension";
    case AccelTier::kDspOffload: return "DSP-offload";
    case AccelTier::kCryptoAccelerator: return "crypto-accelerator";
    case AccelTier::kProtocolEngine: return "protocol-engine";
  }
  return "?";
}

AccelProfile AccelProfile::software() { return {AccelTier::kSoftware, 1, 1, 1, 0.0, 1}; }

AccelProfile AccelProfile::isa_extension() {
  // Bit-permutation instructions help DES-class kernels most (Lee et al.
  // [55], Burke et al. [56] report 2-4x on symmetric kernels); modest gain
  // on hashes; multiply-accumulate extensions give ~2x on bignum kernels
  // (SmartMIPS [57]).
  return {AccelTier::kIsaExtension, 3.0, 1.5, 2.0, 0.0, 1.2};
}

AccelProfile AccelProfile::dsp_offload() {
  // Section 4.1's dual-core pattern (TI OMAP1510): "a low-power DSP in a
  // dual-core processor ... accelerates critical and performance
  // intensive crypto operations, freeing up much-needed headroom on the
  // main applications processor." A programmable DSP lands between ISA
  // extensions and fixed-function accelerators on both axes.
  return {AccelTier::kDspOffload, 5.0, 4.0, 6.0, 0.0, 3.0};
}

AccelProfile AccelProfile::crypto_accelerator() {
  // Dedicated cipher/hash/modexp engines: one to two orders of magnitude
  // on the crypto kernels and ~10x energy efficiency, but the protocol
  // processing stays on the host.
  return {AccelTier::kCryptoAccelerator, 20.0, 15.0, 25.0, 0.0, 10.0};
}

AccelProfile AccelProfile::protocol_engine() {
  // MOSES-style engines [66-68]: crypto acceleration plus offload of ~90%
  // of the per-packet protocol component.
  return {AccelTier::kProtocolEngine, 25.0, 20.0, 30.0, 0.9, 12.0};
}

std::vector<AccelProfile> AccelProfile::all_tiers() {
  return {software(), isa_extension(), dsp_offload(), crypto_accelerator(),
          protocol_engine()};
}

AccelProfile AccelProfile::isa_dispatch(double symmetric, double hash,
                                        double pubkey) {
  // Same-silicon ISA dispatch: the bulk kernels execute fewer
  // instructions, so energy per protected byte falls with the bulk
  // speedups (the handshake's modexp gain is small and rare per session).
  const double energy = (symmetric + hash) / 2.0;
  return {AccelTier::kIsaExtension, symmetric, hash, pubkey, 0.0, energy};
}

double accel_speedup_for(const AccelProfile& accel, Primitive p) {
  switch (p) {
    case Primitive::kDes:
    case Primitive::kDes3:
    case Primitive::kAes128:
    case Primitive::kRc4:
    case Primitive::kRc2:
      return accel.symmetric_speedup;
    case Primitive::kSha1:
    case Primitive::kMd5:
    case Primitive::kSha256:
      return accel.hash_speedup;
    default:
      return accel.pubkey_speedup;
  }
}

WorkloadModel accelerated_model(const WorkloadModel& model,
                                const AccelProfile& accel) {
  static constexpr Primitive kAll[] = {
      Primitive::kDes,           Primitive::kDes3,
      Primitive::kAes128,        Primitive::kRc4,
      Primitive::kRc2,           Primitive::kSha1,
      Primitive::kMd5,           Primitive::kSha256,
      Primitive::kRsa512Private, Primitive::kRsa1024Private,
      Primitive::kRsa2048Private, Primitive::kRsa1024Public,
      Primitive::kDh1024};
  WorkloadModel out = model;
  for (const Primitive p : kAll) {
    if (is_bulk_primitive(p)) {
      out.set_instr_per_byte(p,
                             model.instr_per_byte(p) / accel_speedup_for(accel, p));
    } else {
      out.set_instr_per_op(p,
                           model.instr_per_op(p) / accel_speedup_for(accel, p));
    }
  }
  out.set_protocol_instr_per_byte(model.protocol_instr_per_byte() *
                                  (1.0 - accel.protocol_offload));
  return out;
}

SecurityPlatform::SecurityPlatform(Processor host, AccelProfile accel,
                                   WorkloadModel model)
    : host_(std::move(host)), accel_(accel), model_(std::move(model)) {}

double SecurityPlatform::speedup_for(Primitive p) const {
  return accel_speedup_for(accel_, p);
}

double SecurityPlatform::effective_instr_per_byte(Primitive p) const {
  return model_.instr_per_byte(p) / speedup_for(p);
}

double SecurityPlatform::effective_instr_per_op(Primitive p) const {
  return model_.instr_per_op(p) / speedup_for(p);
}

double SecurityPlatform::achievable_mbps(Primitive cipher, Primitive mac,
                                         double utilisation) const {
  const double instr_per_byte =
      effective_instr_per_byte(cipher) + effective_instr_per_byte(mac) +
      model_.protocol_instr_per_byte() * (1.0 - accel_.protocol_offload);
  const double bytes_per_s = host_.mips * 1e6 * utilisation / instr_per_byte;
  return bytes_per_s * 8.0 / 1e6;
}

double SecurityPlatform::handshake_latency_s(Primitive pk_op,
                                             double utilisation) const {
  return effective_instr_per_op(pk_op) / (host_.mips * 1e6 * utilisation);
}

double SecurityPlatform::bulk_energy_mj(Primitive cipher, Primitive mac,
                                        double bytes) const {
  // Crypto work runs at the tier's energy efficiency; residual protocol
  // work runs at host efficiency.
  const double crypto_instr =
      (model_.instr_per_byte(cipher) + model_.instr_per_byte(mac)) * bytes;
  const double protocol_instr = model_.protocol_instr_per_byte() *
                                (1.0 - accel_.protocol_offload) * bytes;
  return host_.millijoules_for(crypto_instr) / accel_.energy_efficiency +
         host_.millijoules_for(protocol_instr);
}

double SecurityPlatform::pk_energy_mj(Primitive pk_op) const {
  return host_.millijoules_for(model_.instr_per_op(pk_op)) /
         accel_.energy_efficiency;
}

}  // namespace mapsec::platform
