// Embedded processor models.
//
// Section 3.2 of the paper frames the whole gap analysis in MIPS ratings:
// a 2.6 GHz Pentium 4 at ~2890 MIPS versus the StrongARM SA-1100 at 235
// MIPS, ARM7/ARM9 cell-phone cores at 15-20 MIPS, and the Motorola
// 68EC000 DragonBall at ~2.7 MIPS. The Processor model captures exactly
// the quantities that analysis needs: an instruction rate and an energy
// cost per instruction (for the battery-gap analysis of Section 3.3).
#pragma once

#include <string>
#include <vector>

namespace mapsec::platform {

/// A processor characterised at the MIPS granularity of the paper's own
/// analysis. `mj_per_mi` is millijoules per million instructions,
/// i.e. nanojoules per instruction.
struct Processor {
  std::string name;
  double mips = 0;        // million instructions per second
  double mj_per_mi = 0;   // energy per million instructions (mJ)

  /// Seconds to execute `instructions`.
  double seconds_for(double instructions) const {
    return instructions / (mips * 1e6);
  }

  /// Millijoules to execute `instructions`.
  double millijoules_for(double instructions) const {
    return (instructions / 1e6) * mj_per_mi;
  }

  // -- The paper's catalogue (Section 3.2 and the Figure 3/4 case studies).

  /// 2.6 GHz Pentium 4 desktop reference, ~2890 MIPS.
  static Processor pentium4();
  /// Intel StrongARM SA-1100 at 206 MHz, 235 MIPS — the paper's
  /// "state-of-the-art PDA" processor.
  static Processor strongarm_sa1100();
  /// ARM7 cell-phone core: 15-20 MIPS at 30-40 MHz; modelled at 17.5.
  static Processor arm7();
  /// Motorola 68EC000 DragonBall (Palm OS), ~2.7 MIPS.
  static Processor dragonball();
  /// The generic "300 MIPS plane" drawn in Figure 3.
  static Processor embedded300();

  /// All catalogue entries, for sweeps.
  static std::vector<Processor> catalogue();
};

}  // namespace mapsec::platform
