// The wireless security processing gap (Figure 3).
//
// Figure 3 plots required MIPS as a surface over (connection latency, data
// rate) for the reference protocol (RSA-1024 set-up + 3DES/SHA bulk), with
// a processor's capability drawn as a horizontal plane. Operating points
// whose requirement rises above the plane are infeasible — that region is
// the gap. GapAnalysis produces the surface and per-processor feasibility
// classifications.
#pragma once

#include <vector>

#include "mapsec/platform/accelerator.hpp"
#include "mapsec/platform/processor.hpp"
#include "mapsec/platform/workload.hpp"

namespace mapsec::platform {

/// One point of the Figure 3 surface.
struct GapPoint {
  double latency_s = 0;
  double mbps = 0;
  double required_mips = 0;
  double handshake_mips = 0;
  double bulk_mips = 0;
};

/// Feasibility summary of one processor plane against a surface.
struct PlaneSummary {
  Processor processor;
  std::size_t feasible_points = 0;
  std::size_t total_points = 0;
  /// Max secure data rate (Mbps) at 1 s connection latency.
  double max_mbps_at_1s = 0;
};

class GapAnalysis {
 public:
  explicit GapAnalysis(WorkloadModel model);

  /// Evaluate the surface over a grid.
  std::vector<GapPoint> surface(const std::vector<double>& latencies_s,
                                const std::vector<double>& rates_mbps) const;

  /// The default Figure 3 grid: latency {0.1, 0.5, 1.0} s x rate
  /// {0.01 .. 60} Mbps (the paper quotes WLAN rates "2-60 Mbps").
  static std::vector<double> default_latencies();
  static std::vector<double> default_rates();

  /// Whether `proc` can sustain the operating point.
  bool feasible(const Processor& proc, const GapPoint& point) const {
    return point.required_mips <= proc.mips;
  }

  /// Classify a whole surface against one processor.
  PlaneSummary summarise(const Processor& proc,
                         const std::vector<GapPoint>& points) const;

  /// Largest bulk data rate (Mbps) `proc` sustains with connection latency
  /// `latency_s`, or 0 when even the handshake alone does not fit.
  double max_rate_mbps(const Processor& proc, double latency_s) const;

  const WorkloadModel& model() const { return model_; }

 private:
  WorkloadModel model_;
};

// ---- served-load accounting ----------------------------------------------

/// Observed serving rates from a session-server run (mapsec::server's
/// LoadGenerator) — the measured counterpart of the Figure 3 axes:
/// handshakes per second instead of connection latency, protected
/// megabits per second instead of a nominal data rate.
struct ServedLoad {
  double full_handshakes_per_s = 0;
  double resumed_handshakes_per_s = 0;
  double bulk_mbps = 0;           // protected record-layer throughput
  double avg_session_kb = 0;      // protected KB per served session
  double sessions_per_s = 0;
};

/// How a processor's MIPS and energy budget fare against a served load.
struct ServingGapReport {
  double handshake_mips = 0;  // RSA set-up cost of the handshake rate
  double bulk_mips = 0;       // bulk protection cost of the data rate
  double required_mips = 0;
  double available_mips = 0;
  double gap_ratio = 0;  // required / available; > 1 means infeasible
  double session_mj = 0;  // processing energy per average session
  double sessions_per_charge = 0;
};

/// Price a served load against `proc`, tying the measured serving rates
/// back to the Figure 3 gap (MIPS) and the Figure 4 battery argument
/// (sessions per `battery_kj` charge). Resumed handshakes are priced at
/// zero public-key cost — that saving is exactly why resumption matters
/// on an appliance budget.
ServingGapReport serving_gap(const WorkloadModel& model,
                             const Processor& proc, const ServedLoad& load,
                             double battery_kj = 26.0,
                             Primitive pk = Primitive::kRsa1024Private,
                             Primitive cipher = Primitive::kDes3,
                             Primitive mac = Primitive::kSha1);

/// The accelerated-appliance variant: the same served load priced on a
/// processor equipped with `accel` (e.g. AccelProfile::isa_dispatch()
/// calibrated from crypto::dispatch's measured kernels). MIPS demand is
/// computed from the accelerated cost table; session energy is the
/// unaccelerated instruction bill divided by the tier's energy
/// efficiency. The gap-ratio delta against the base overload is the
/// Figure 3 gap the acceleration closes.
ServingGapReport serving_gap(const WorkloadModel& model,
                             const AccelProfile& accel, const Processor& proc,
                             const ServedLoad& load, double battery_kj = 26.0,
                             Primitive pk = Primitive::kRsa1024Private,
                             Primitive cipher = Primitive::kDes3,
                             Primitive mac = Primitive::kSha1);

/// Offload-tier pricing — Section 4.2's crypto-accelerator argument made
/// concrete against a measured load. Full-handshake public-key operations
/// leave the host entirely (engine::OffloadEngine lanes), so the host
/// plane only carries the bulk/record work; each accelerator lane is a
/// fixed-rate server spending `lane_service_s` seconds per op. The host
/// gap therefore drops by exactly the handshake MIPS term, and the new
/// feasibility question becomes lane occupancy: `lane_utilisation` > 1
/// means the offered full-handshake rate outruns the accelerator and the
/// backlog grows without bound (the OffloadEngine's queue_wait_us stat is
/// the measured witness of the same quantity).
struct OffloadGapReport {
  /// Serving gap with the public-key work removed from the host plane.
  ServingGapReport host;
  double pk_ops_per_s = 0;      // offered full-handshake rate
  double lane_service_s = 0;    // modeled seconds per pk op on one lane
  double lanes = 0;
  double lane_utilisation = 0;  // pk_ops_per_s * lane_service_s / lanes
  double min_lanes = 0;         // smallest lane count with utilisation <= 1
};

/// Price a served load with public-key work offloaded to `lanes`
/// accelerator lanes of `lane_op_s` seconds per op (e.g.
/// engine::OffloadCosts::rsa_decrypt_us / 1e6). Offloaded pk energy is
/// billed at `accel_energy_efficiency` times the host's
/// joules-per-instruction (the paper's order-of-magnitude accelerator
/// efficiency claim; AccelProfile::crypto_accelerator().energy_efficiency
/// is the calibrated default).
OffloadGapReport serving_gap_offloaded(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t lanes, double lane_op_s, double accel_energy_efficiency = 10.0,
    double battery_kj = 26.0, Primitive pk = Primitive::kRsa1024Private,
    Primitive cipher = Primitive::kDes3, Primitive mac = Primitive::kSha1);

/// Batched-lane pricing — the batched data plane's model-level payoff.
/// With windows of up to `batch_width` jobs per lane service slot, a full
/// window costs lane_op_s * (1 + (batch_width - 1) * batch_marginal)
/// seconds (engine::OffloadCosts::batch_marginal), so the effective
/// per-op service time falls toward batch_marginal * lane_op_s and lane
/// utilisation drops by the same factor at an unchanged offered rate.
struct BatchedGapReport {
  OffloadGapReport offload;     // width-1 pricing, same lanes (baseline)
  double batch_width = 1;
  double batch_marginal = 0;
  double effective_op_s = 0;    // per-op lane seconds at full windows
  double batched_utilisation = 0;  // pk_ops_per_s * effective_op_s / lanes
  double throughput_gain = 1;   // lane_op_s / effective_op_s (>= 1)
  double min_lanes = 0;         // smallest lane count feasible at this width
};

/// Price a served load on lanes that drain `batch_width`-deep windows.
/// batch_width <= 1 collapses to serving_gap_offloaded exactly.
BatchedGapReport serving_gap_batched(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t lanes, double lane_op_s, std::size_t batch_width,
    double batch_marginal = 0.3, double accel_energy_efficiency = 10.0,
    double battery_kj = 26.0, Primitive pk = Primitive::kRsa1024Private,
    Primitive cipher = Primitive::kDes3, Primitive mac = Primitive::kSha1);

/// Stateless-ticket-tier pricing — the memory half of the serving story.
/// A session cache's resumption state grows O(cached users) (and its
/// eviction thrash converts would-be resumptions back into full RSA
/// handshakes); a ticket server pins only its key ring, O(ring depth),
/// and pays per resumption one extra AES-CCM ticket open (two AES passes
/// over the blob: CBC-MAC + CTR). This report prices that trade against
/// a served load so the bench can assert the flat-line: MIPS demand and
/// sessions-per-charge independent of the cached-user count.
struct TicketGapReport {
  /// Serving gap with the ticket-open cost added to the host plane.
  ServingGapReport host;
  double ticket_open_mips = 0;  ///< CCM opens for the resumed-handshake rate
  double ticket_seal_mips = 0;  ///< NewSessionTicket seals (per completion)
  double server_state_bytes = 0;  ///< key ring: O(depth)
  double cache_state_bytes = 0;   ///< cache equivalent: O(cached users)
  /// cache / ticket state; the ratio the 10k->1M sweep shows exploding.
  double state_ratio = 0;
};

/// Price a served load on a ticket-mode server. `ring_state_bytes` /
/// `cache_state_bytes` come from the run (TicketKeyRing::state_bytes(),
/// BoundedSessionCache::resumption_state_bytes() or its projection at
/// `cached_users`); `ticket_wire_bytes` is the sealed blob size. Resumed
/// handshakes are priced at the ticket-open cost instead of free; full
/// handshakes additionally seal a fresh ticket.
TicketGapReport serving_gap_ticket(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    double ring_state_bytes, double cache_state_bytes,
    double ticket_wire_bytes = 96.0, double battery_kj = 26.0,
    Primitive pk = Primitive::kRsa1024Private,
    Primitive cipher = Primitive::kDes3, Primitive mac = Primitive::kSha1);

/// Sharded-tier pricing — the serving-side answer to the same gap: when
/// one core cannot carry the fleet's session-layer demand, how many
/// shard cores close it? The fleet demand is the ordinary serving gap;
/// a uniform connection hash splits it across `shards` cores, and each
/// core additionally pays the epoch-barrier merge (one snapshot exchange
/// per slice, priced in instructions). min_shards inverts the model:
/// the smallest shard count whose per-core demand fits the processor —
/// the provisioning number E24 validates against the measured sweep.
struct ShardedGapReport {
  /// Fleet demand vs ONE core of `proc` (gap_ratio > 1 = one core short).
  ServingGapReport fleet;
  double shards = 1;
  double merge_overhead_mips = 0;     ///< per-core barrier cost
  double per_shard_required_mips = 0; ///< fleet/shards + merge overhead
  double shard_utilisation = 0;       ///< per-shard demand / core MIPS
  /// Smallest shard count with per-core demand <= one core's MIPS;
  /// 0 when the merge overhead alone exceeds the core (no count closes
  /// the gap).
  double min_shards = 0;
};

/// Price a served load on `shards` cores behind a uniform connection
/// hash with an epoch-barrier merge every `slice_us` simulated
/// microseconds costing `merge_instr_per_slice` instructions per core
/// per slice.
ShardedGapReport serving_gap_sharded(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t shards, double slice_us, double merge_instr_per_slice = 2000.0,
    double battery_kj = 26.0, Primitive pk = Primitive::kRsa1024Private,
    Primitive cipher = Primitive::kDes3, Primitive mac = Primitive::kSha1);

/// Failover pricing — what one shard's death costs the fleet, in the
/// paper's own currencies (MIPS and millijoules). During the repair
/// window the victim's 1/N of the fleet demand lands on the N-1
/// survivors, plus a resumption burst: every in-flight session of the
/// dead shard re-establishes on a survivor. With stateless tickets each
/// re-establishment is one AES-CCM ticket open (symmetric only); the
/// report also prices the counterfactual burst of FULL handshakes — the
/// ratio is the battery argument for ticket-based failover at appliance
/// scale.
struct FailoverGapReport {
  /// Steady-state sharded pricing (all shards serving).
  ShardedGapReport steady;
  double surviving_shards = 0;
  /// Per-survivor demand during the outage: fleet/(N-1) + merge tax +
  /// its share of the resumption burst.
  double degraded_required_mips = 0;
  double degraded_utilisation = 0;  ///< vs one core's MIPS
  double blackout_s = 0;            ///< client-observed re-establish window
  double reconnect_sessions = 0;    ///< victim sessions that must move
  double burst_mips = 0;            ///< whole resumption burst over blackout_s
  double crash_energy_mj = 0;       ///< burst as ticket resumptions
  double crash_energy_full_mj = 0;  ///< counterfactual: full RSA handshakes
  double ticket_saving_ratio = 0;   ///< full / ticket energy (>= 1)
};

/// Price a one-shard outage against a measured load. `reconnect_sessions`
/// and `blackout_s` come from the run (CampaignReport::client_reconnects,
/// blackout percentiles); `ticket_open_instr` is the symmetric cost of
/// one stateless resumption (two AES passes over the ticket blob plus the
/// abbreviated flight — calibrate from the measured kernels if desired).
FailoverGapReport serving_gap_failover(
    const WorkloadModel& model, const Processor& proc, const ServedLoad& load,
    std::size_t shards, double slice_us, double reconnect_sessions,
    double blackout_s, double ticket_open_instr = 6'000.0,
    double merge_instr_per_slice = 2000.0, double battery_kj = 26.0,
    Primitive pk = Primitive::kRsa1024Private,
    Primitive cipher = Primitive::kDes3, Primitive mac = Primitive::kSha1);

/// Projection of the gap over time — Section 3.2's closing argument:
/// "the increase in data rates ... and the use of stronger cryptographic
/// algorithms ... threaten to further widen the wireless security
/// processing gap" even as processors improve.
struct GapTrendAssumptions {
  double processor_growth = 1.35;   // embedded MIPS per year (Moore-ish)
  double data_rate_growth = 1.60;   // WLAN generation cadence
  double crypto_strength_growth = 1.10;  // instr/byte creep (longer keys,
                                         // stronger ciphers)
};

struct GapTrendPoint {
  int year = 0;
  double available_mips = 0;
  double required_mips = 0;
  /// required / available: > 1 means the gap is open.
  double gap_ratio = 0;
};

/// Project `years` years forward from a base processor and operating
/// point (1 s connection latency assumed).
std::vector<GapTrendPoint> project_gap_trend(
    const GapAnalysis& gap, const Processor& base_processor,
    double base_mbps, int base_year, int years,
    const GapTrendAssumptions& assumptions = {});

}  // namespace mapsec::platform
