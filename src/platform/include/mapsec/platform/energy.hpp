// Energy and battery models — the Section 3.3 analysis.
//
// The paper's Figure 4 case study (from the NAI Labs sensor-network report
// [36]): a DragonBall MC68328 sensor node at 10 Kbps spends 21.5 mJ/KB
// transmitting and 14.3 mJ/KB receiving; enabling the secure mode adds an
// RSA encryption overhead of 42 mJ/KB; the battery holds 26 KJ. The number
// of 1 KB transactions per charge drops to less than half.
#pragma once

#include <string>

namespace mapsec::platform {

/// Energy cost per kilobyte for the communication + security pipeline.
struct EnergyModel {
  double tx_mj_per_kb = 0;        // radio transmit
  double rx_mj_per_kb = 0;        // radio receive
  double crypto_mj_per_kb = 0;    // security processing overhead

  /// The paper's Figure 4 constants.
  static EnergyModel paper_sensor_node();

  /// Energy (mJ) for one transaction that transmits and receives
  /// `kb` kilobytes each way, optionally in secure mode.
  double transaction_mj(double kb, bool secure) const {
    const double base = (tx_mj_per_kb + rx_mj_per_kb) * kb;
    return secure ? base + crypto_mj_per_kb * kb : base;
  }
};

/// A battery with fixed capacity, tracking consumption.
class Battery {
 public:
  /// `capacity_kj` in kilojoules (the paper's node: 26 KJ).
  explicit Battery(double capacity_kj);

  double capacity_mj() const { return capacity_mj_; }
  double remaining_mj() const { return remaining_mj_; }
  bool depleted() const { return remaining_mj_ <= 0; }

  /// Draw `mj` millijoules; returns false (and drains to zero) if the
  /// charge is insufficient.
  bool consume_mj(double mj);

  /// Fraction of charge remaining in [0, 1].
  double state_of_charge() const { return remaining_mj_ / capacity_mj_; }

  void recharge() { remaining_mj_ = capacity_mj_; }

 private:
  double capacity_mj_;
  double remaining_mj_;
};

/// How many transactions of `kb` kilobytes a full battery sustains.
/// (Closed form; `Battery` exists for step-by-step simulation.)
double transactions_per_charge(const EnergyModel& energy, double battery_kj,
                               double kb, bool secure);

/// Rate-dependent battery model (the "battery-driven system design"
/// direction of the paper's reference [37]): real cells deliver less
/// charge at higher discharge rates (Peukert's law). The joule-counting
/// `Battery` above is the ideal-cell limit; this model captures why
/// *when* and *how fast* security processing draws power matters, not
/// just how much.
class RateCapacityBattery {
 public:
  /// `capacity_kj` is the rated capacity at the reference draw
  /// `ref_power_mw`; `peukert` >= 1 is the rate-sensitivity exponent
  /// (1 = ideal cell; ~1.1-1.3 for small Li/alkaline cells).
  RateCapacityBattery(double capacity_kj, double ref_power_mw,
                      double peukert = 1.2);

  /// Deliverable energy (mJ) when drained at a constant `power_mw`.
  double effective_capacity_mj(double power_mw) const;

  /// Runtime (hours) at constant `power_mw`.
  double lifetime_hours(double power_mw) const;

  /// Runtime (hours) for a duty-cycled load: `peak_mw` for fraction
  /// `duty` of the time, `idle_mw` otherwise. Approximated by rate-
  /// weighted capacity consumption — bursty high-power crypto costs more
  /// battery than the same joules drawn smoothly, which is exactly the
  /// argument for low-power crypto offload engines (Section 4.2).
  double lifetime_hours_duty_cycle(double peak_mw, double idle_mw,
                                   double duty) const;

 private:
  double capacity_mj_;
  double ref_power_mw_;
  double peukert_;
};

}  // namespace mapsec::platform
