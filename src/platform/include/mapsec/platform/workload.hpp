// Security-processing workload model.
//
// This reproduces the cost model behind Figure 3 and the in-text claims of
// Section 3.2. The paper's reference protocol is "RSA based connection
// set-up, 3DES-based data encryption and SHA-based integrity"; its anchor
// data point is that 3DES + SHA bulk processing at 10 Mbps costs 651.3
// MIPS. We express every primitive as instructions/byte (bulk) or
// instructions/operation (handshake) and derive required MIPS for any
// (data rate, connection latency) operating point.
//
// The per-primitive constants are calibrated so that the paper's published
// anchors are met exactly:
//   * 3DES + SHA-1 at 10 Mbps  -> 651.3 MIPS   (Section 3.2)
//   * RSA-1024 handshake on 235 MIPS: feasible at 0.5 s and 1 s latency,
//     infeasible at 0.1 s                      (Section 3.2)
#pragma once

#include <map>
#include <string>

namespace mapsec::platform {

/// Crypto primitives the workload model can price.
enum class Primitive {
  kDes,
  kDes3,
  kAes128,
  kRc4,
  kRc2,
  kSha1,
  kMd5,
  kSha256,
  kRsa512Private,
  kRsa1024Private,
  kRsa2048Private,
  kRsa1024Public,
  kDh1024,
};

/// Human-readable primitive name.
std::string primitive_name(Primitive p);

/// True for bulk (per-byte) primitives, false for per-operation ones.
bool is_bulk_primitive(Primitive p);

/// Cost table mapping primitives to instruction counts.
class WorkloadModel {
 public:
  /// The calibrated default (see file comment).
  static WorkloadModel paper_calibrated();

  /// Instructions per byte for a bulk primitive.
  double instr_per_byte(Primitive p) const;

  /// Instructions per operation for a public-key primitive.
  double instr_per_op(Primitive p) const;

  /// Override a cost (e.g. from host-measured calibration).
  void set_instr_per_byte(Primitive p, double v) { per_byte_[p] = v; }
  void set_instr_per_op(Primitive p, double v) { per_op_[p] = v; }

  // ---- derived quantities (the Figure 3 axes) ----

  /// MIPS required to run `cipher`+`mac` bulk protection at `mbps`.
  /// Includes the per-packet protocol-processing overhead.
  double bulk_mips(Primitive cipher, Primitive mac, double mbps) const;

  /// MIPS required to complete one handshake (dominated by `pk_op`)
  /// within `latency_s` seconds.
  double handshake_mips(Primitive pk_op, double latency_s) const;

  /// Total security-processing requirement for the paper's reference
  /// protocol at an operating point: handshake within `latency_s`, then
  /// bulk at `mbps`. This is the Figure 3 surface.
  double required_mips(double latency_s, double mbps) const;

  /// Per-byte protocol processing (header parsing, SA lookup, padding —
  /// the component Section 4.2.3's protocol engines offload).
  double protocol_instr_per_byte() const { return protocol_instr_per_byte_; }
  void set_protocol_instr_per_byte(double v) { protocol_instr_per_byte_ = v; }

 private:
  std::map<Primitive, double> per_byte_;
  std::map<Primitive, double> per_op_;
  double protocol_instr_per_byte_ = 0;
};

}  // namespace mapsec::platform
