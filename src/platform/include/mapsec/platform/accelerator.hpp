// Security-processing acceleration tiers (Section 4.2).
//
// The paper surveys four ways to close the processing gap, each trading
// flexibility for efficiency:
//
//   software          — everything on the host core (the Section 3.2 base)
//   ISA extension     — SmartMIPS / SecurCore-style instructions: speeds
//                       up the bit-level cipher kernels a few-fold
//   crypto accelerator— dedicated DES/AES/SHA/RSA engines (Discretix,
//                       Safenet): order-of-magnitude faster and far more
//                       energy-efficient, but only for the cipher work
//   protocol engine   — MOSES-style programmable engines that also absorb
//                       the per-packet protocol processing (Section 4.2.3:
//                       "a holistic view of the entire security processing
//                       workload")
//
// The tier model applies literature-calibrated speedup and energy factors
// per primitive class, preserving the paper's qualitative ranking and
// rough factors rather than any one vendor's datasheet.
#pragma once

#include <string>
#include <vector>

#include "mapsec/platform/processor.hpp"
#include "mapsec/platform/workload.hpp"

namespace mapsec::platform {

enum class AccelTier {
  kSoftware,
  kIsaExtension,
  kDspOffload,  // OMAP-style dual-core: crypto on a low-power DSP (§4.1)
  kCryptoAccelerator,
  kProtocolEngine,
};

std::string accel_tier_name(AccelTier tier);

/// Speedup / energy-efficiency factors for one tier.
struct AccelProfile {
  AccelTier tier = AccelTier::kSoftware;
  double symmetric_speedup = 1.0;  // block/stream ciphers
  double hash_speedup = 1.0;       // SHA/MD5
  double pubkey_speedup = 1.0;     // RSA/DH
  double protocol_offload = 0.0;   // fraction of protocol processing removed
  double energy_efficiency = 1.0;  // accelerated work costs 1/this energy

  static AccelProfile software();
  static AccelProfile isa_extension();
  static AccelProfile dsp_offload();
  static AccelProfile crypto_accelerator();
  static AccelProfile protocol_engine();
  static std::vector<AccelProfile> all_tiers();

  /// The tier this repository implements: runtime-dispatched host-ISA
  /// kernels (crypto::dispatch — AES-NI, SHA-NI, PCLMUL, BMI2 CIOS).
  /// Defaults are round numbers in line with the bench/bench_crypto
  /// scalar-vs-accelerated measurements; callers with fresh measurements
  /// (e.g. bench_server_load) pass them in. Same-silicon acceleration:
  /// fewer instructions per byte is also the energy saving, so the
  /// energy efficiency tracks the bulk speedups rather than being an
  /// independent accelerator property.
  static AccelProfile isa_dispatch(double symmetric = 6.0, double hash = 4.0,
                                   double pubkey = 1.1);
};

/// Speedup `accel` applies to one primitive (symmetric / hash / pubkey
/// class factor).
double accel_speedup_for(const AccelProfile& accel, Primitive p);

/// The cost table an appliance running `accel` effectively sees: every
/// per-byte and per-op cost divided by its class speedup, and the
/// per-packet protocol component scaled by the offload fraction. The
/// result plugs into GapAnalysis / serving_gap unchanged — acceleration
/// moves the Figure 3 surface down instead of moving the processor plane
/// up.
WorkloadModel accelerated_model(const WorkloadModel& model,
                                const AccelProfile& accel);

/// A platform = host processor + acceleration tier + workload cost table.
class SecurityPlatform {
 public:
  SecurityPlatform(Processor host, AccelProfile accel, WorkloadModel model);

  const Processor& host() const { return host_; }
  const AccelProfile& accel() const { return accel_; }

  /// Effective instructions/byte for a bulk primitive after acceleration.
  double effective_instr_per_byte(Primitive p) const;

  /// Effective instructions for one public-key operation.
  double effective_instr_per_op(Primitive p) const;

  /// Achievable secure data rate (Mbps) for a cipher+MAC combination,
  /// assuming the host dedicates `utilisation` of its MIPS to security.
  double achievable_mbps(Primitive cipher, Primitive mac,
                         double utilisation = 1.0) const;

  /// Handshake latency (s) for one public-key op at `utilisation`.
  double handshake_latency_s(Primitive pk_op, double utilisation = 1.0) const;

  /// Energy (mJ) to protect `bytes` of data with cipher+MAC.
  double bulk_energy_mj(Primitive cipher, Primitive mac, double bytes) const;

  /// Energy (mJ) for one public-key operation.
  double pk_energy_mj(Primitive pk_op) const;

 private:
  double speedup_for(Primitive p) const;

  Processor host_;
  AccelProfile accel_;
  WorkloadModel model_;
};

}  // namespace mapsec::platform
