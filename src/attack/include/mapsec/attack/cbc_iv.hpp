// Predictable-IV CBC attack (the SSL 3.0 / TLS 1.0 chained-IV weakness,
// later weaponised as BEAST; fixed by TLS 1.1's explicit IVs).
//
// SSL 3.0 reused the last ciphertext block of record N as the CBC IV of
// record N+1 — public information, known to the attacker *before* the
// next record is formed. An attacker who can inject chosen plaintext into
// the channel (a script in the browser, a malicious app on the handset —
// Section 3.4's software-attack setting) can confirm guesses of a
// previously transmitted secret block:
//
//   observed once:  C_s = E(IV_s ^ P_secret)        (IV_s public)
//   inject:         P_a = Guess ^ IV_s ^ IV_now     (IV_now = last block)
//   device sends:   E(IV_now ^ P_a) = E(IV_s ^ Guess)
//   equal to C_s  <=>  Guess == P_secret.
//
// Against a low-entropy secret (a PIN, a short password) this is a
// practical dictionary attack. mapsec's own record layer derives each IV
// from the sequence number precisely to close this channel; the
// `IvMode::kUnpredictable` oracle shows the same attack failing.
#pragma once

#include <cstdint>
#include <optional>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::attack {

/// A CBC record channel the adversary can inject plaintext into.
class CbcChannelOracle {
 public:
  enum class IvMode {
    kChained,        // SSL 3.0 behaviour: IV = last ciphertext block
    kUnpredictable,  // per-record random IV (the TLS 1.1 fix)
  };

  CbcChannelOracle(crypto::Bytes key16, IvMode mode, crypto::Rng* rng);

  /// Encrypt one attacker-supplied 16-byte block on the channel.
  crypto::Bytes send_block(crypto::ConstBytes block16);

  /// The device transmits its secret 16-byte block (e.g. the PIN record).
  /// Returns the ciphertext the eavesdropper captures.
  crypto::Bytes transmit_secret(crypto::ConstBytes secret16);

  /// The IV that will protect the *next* record. Under kChained this is
  /// real knowledge (it is the last ciphertext block, public); under
  /// kUnpredictable the oracle refuses (nullopt) — the attacker cannot
  /// know a random future IV.
  std::optional<crypto::Bytes> predict_next_iv() const;

  /// IV that protected the most recent record (public either way —
  /// chained IVs are prior ciphertext; explicit IVs travel in clear).
  const crypto::Bytes& last_record_iv() const { return last_iv_used_; }

 private:
  crypto::Bytes encrypt_block_with_iv(crypto::ConstBytes iv,
                                      crypto::ConstBytes block);

  crypto::Aes aes_;
  IvMode mode_;
  crypto::Rng* rng_;
  crypto::Bytes chain_;         // last ciphertext block
  crypto::Bytes last_iv_used_;  // IV of the most recent record
};

struct CbcIvAttackResult {
  bool recovered = false;
  crypto::Bytes secret;        // the confirmed guess
  std::size_t guesses_tried = 0;
};

/// Dictionary attack: confirm which of `candidates` the device sent as
/// its secret block. `secret_iv` is the (public) IV that protected the
/// secret record and `secret_ct` its ciphertext.
CbcIvAttackResult cbc_iv_dictionary_attack(
    CbcChannelOracle& oracle, crypto::ConstBytes secret_iv,
    crypto::ConstBytes secret_ct,
    const std::vector<crypto::Bytes>& candidates);

/// Convenience: candidate blocks for all 4-digit PINs in the fixed
/// "PIN=dddd" record format the demo uses.
std::vector<crypto::Bytes> pin_candidate_blocks();

/// The block encoding of one PIN in that format.
crypto::Bytes pin_block(int pin);

}  // namespace mapsec::attack
