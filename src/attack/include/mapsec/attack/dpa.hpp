// Differential power analysis of DES (Kocher, Jaffe, Jun [44]).
//
// Section 3.4: "The most common form of this attack involves analyzing the
// power consumption of the system." The victim here is the library's own
// DES: the oracle encrypts chosen plaintexts and emits one simulated power
// sample per round-1 S-box — the Hamming weight of that S-box's 4-bit
// output plus Gaussian noise, the standard CMOS leakage model. The
// attacker recovers the 48-bit round-1 subkey six bits at a time by
// difference-of-means over the selection bit, then brute-forces the eight
// key bits PC-2 discards against a known plaintext/ciphertext pair —
// a complete DES key recovery.
//
// The masked oracle XORs a fresh random mask into the leaked intermediate
// (first-order Boolean masking of the S-box output); the first-order
// attack then finds nothing, demonstrating the countermeasure.
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/attack/noise.hpp"
#include "mapsec/crypto/des.hpp"

namespace mapsec::attack {

struct PowerModel {
  double scale = 1.0;          // power units per Hamming-weight unit
  double noise_stddev = 0.5;   // measurement noise
};

/// The victim device: DES with per-S-box round-1 power leakage.
class DesPowerOracle {
 public:
  DesPowerOracle(crypto::Bytes key8, PowerModel model, bool masked,
                 std::uint64_t seed);

  struct Trace {
    crypto::Bytes plaintext;
    crypto::Bytes ciphertext;
    std::array<double, 8> samples;  // one per round-1 S-box
  };

  /// Encrypt one block, emitting the power trace.
  Trace encrypt(crypto::ConstBytes plaintext);

  /// Ground truth for harness metrics.
  std::array<std::uint8_t, 8> true_round1_chunks() const;
  const crypto::Bytes& true_key() const { return key_; }

 private:
  crypto::Bytes key_;
  crypto::Des des_;
  std::uint64_t round1_subkey_;
  PowerModel model_;
  bool masked_;
  crypto::HmacDrbg rng_;
  GaussianNoise noise_;
};

struct DpaResult {
  std::array<std::uint8_t, 8> recovered_chunks{};  // 6-bit guesses per S-box
  int correct_chunks = 0;       // vs. ground truth
  bool full_key_recovered = false;
  crypto::Bytes recovered_key;  // 8 bytes with parity, when recovered
  std::size_t traces_used = 0;
};

/// Mount the attack with `num_traces` random plaintexts.
DpaResult dpa_attack(DesPowerOracle& oracle, crypto::Rng& rng,
                     std::size_t num_traces);

}  // namespace mapsec::attack
