// Measurement-noise utilities shared by the side-channel simulations.
#pragma once

#include "mapsec/crypto/rng.hpp"

namespace mapsec::attack {

/// Gaussian sampler (Box-Muller over a crypto::Rng). Deterministic given
/// the Rng state, so attack experiments are reproducible.
class GaussianNoise {
 public:
  explicit GaussianNoise(crypto::Rng* rng) : rng_(rng) {}

  /// One sample from N(0, stddev^2).
  double sample(double stddev);

 private:
  crypto::Rng* rng_;
  bool have_spare_ = false;
  double spare_ = 0;
};

}  // namespace mapsec::attack
