// Attacks on the WEP encapsulation (the published breaks the paper cites:
// Walker [21], Borisov-Goldberg-Wagner [22], and the Fluhrer-Mantin-Shamir
// weak-IV key recovery that made WEP cracking practical).
//
// Two attacks against protocol::wep:
//
//   * Keystream reuse: two frames under the same IV share an RC4
//     keystream; known plaintext of one frame decrypts the other
//     (c1 ^ c2 = p1 ^ p2). This is why a 24-bit IV space is fatal.
//
//   * FMS weak-IV attack: IVs of the form (B+3, 255, x) put the RC4 key
//     schedule into a "resolved" state from which the first keystream
//     byte leaks key byte B with probability ~5%. Voting over enough weak
//     IVs recovers the entire secret key, given only the (known) first
//     plaintext byte of each frame — 0xAA, the 802.2 SNAP header.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mapsec/protocol/wep.hpp"

namespace mapsec::attack {

/// 802.2 SNAP DSAP: the first plaintext byte of essentially every 802.11
/// data frame, giving the attacker one known keystream byte per frame.
constexpr std::uint8_t kSnapHeaderByte = 0xAA;

/// Keystream-reuse decryption: given a frame with fully known plaintext
/// and a target frame with the same IV, recover the target's plaintext
/// prefix (up to the known frame's length).
crypto::Bytes keystream_reuse_decrypt(const protocol::WepFrame& known_frame,
                                      crypto::ConstBytes known_plaintext,
                                      const protocol::WepFrame& target_frame);

/// Find the first IV collision in a frame sequence (indices into `frames`),
/// or nullopt.
std::optional<std::pair<std::size_t, std::size_t>> find_iv_collision(
    const std::vector<protocol::WepFrame>& frames);

/// Fluhrer-Mantin-Shamir key recovery.
class FmsAttack {
 public:
  /// `key_len` = 5 (WEP-40) or 13 (WEP-104).
  explicit FmsAttack(std::size_t key_len);

  /// Observe one frame; `first_plaintext_byte` is the attacker's known
  /// plaintext (SNAP header by default).
  void observe(const protocol::WepFrame& frame,
               std::uint8_t first_plaintext_byte = kSnapHeaderByte);

  /// Attempt key recovery from the votes accumulated so far. Verifies the
  /// candidate by decapsulating `check_frame` (any observed frame).
  std::optional<crypto::Bytes> try_recover(
      const protocol::WepFrame& check_frame,
      std::uint8_t first_plaintext_byte = kSnapHeaderByte) const;

  /// Number of usable (resolved) weak IVs seen for key byte `index`.
  std::size_t resolved_count(std::size_t index) const;

  std::size_t frames_observed() const { return frames_observed_; }

 private:
  struct Observation {
    std::array<std::uint8_t, 3> iv;
    std::uint8_t first_keystream_byte;
  };

  std::size_t key_len_;
  std::vector<Observation> observations_;
  std::size_t frames_observed_ = 0;
};

}  // namespace mapsec::attack
