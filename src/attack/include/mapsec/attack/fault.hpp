// Fault attack on RSA-CRT signatures (Boneh, DeMillo, Lipton [42]).
//
// Section 3.4's fault-induction class: "manipulate the environmental
// conditions of the system (voltage, clock, temperature, radiation ...) to
// generate faults and observe the related behavior." For RSA with CRT —
// the private-operation strategy every constrained device uses for its
// ~4x speedup — a single fault in one of the two half-exponentiations
// yields a signature s' that is correct mod one prime and wrong mod the
// other, so gcd(s'^e - m, n) reveals a prime factor of n. One faulty
// signature ends the key's life.
//
// The `sign_protected` path applies the verify-before-release
// countermeasure (recompute m = s^e and compare), which reduces the
// attack to a denial of service.
#pragma once

#include <cstdint>

#include "mapsec/crypto/rsa.hpp"

namespace mapsec::attack {

/// Where to inject the fault.
enum class FaultTarget { kExpModP, kExpModQ };

/// The victim: a CRT signer whose half-exponentiation results can be
/// corrupted by a (simulated) glitch.
class FaultySigner {
 public:
  explicit FaultySigner(crypto::RsaPrivateKey key);

  /// Fault-free CRT signature m^d mod n.
  crypto::BigInt sign(const crypto::BigInt& m) const;

  /// Signature computed with a single-bit fault flipped into the chosen
  /// half-exponentiation result before recombination.
  crypto::BigInt sign_faulty(const crypto::BigInt& m, FaultTarget target,
                             std::size_t bit_to_flip) const;

  /// Countermeasure path: same fault injected, but the device verifies
  /// s^e == m before releasing; on mismatch it recomputes without CRT.
  /// Returns the (always correct) signature.
  crypto::BigInt sign_protected(const crypto::BigInt& m, FaultTarget target,
                                std::size_t bit_to_flip) const;

  crypto::RsaPublicKey public_key() const { return key_.public_key(); }

  /// Ground truth for harness metrics.
  const crypto::BigInt& true_p() const { return key_.p; }
  const crypto::BigInt& true_q() const { return key_.q; }

 private:
  crypto::BigInt crt_combine(const crypto::BigInt& mp,
                             const crypto::BigInt& mq) const;

  crypto::RsaPrivateKey key_;
};

struct FaultAttackResult {
  bool success = false;
  crypto::BigInt factor;       // recovered prime factor of n
  crypto::BigInt cofactor;     // n / factor
};

/// The Boneh-DeMillo-Lipton computation: given the message and a faulty
/// signature, gcd(s'^e - m mod n, n) is a prime factor of n whenever the
/// fault hit exactly one CRT half.
FaultAttackResult bdl_factor(const crypto::RsaPublicKey& pub,
                             const crypto::BigInt& message,
                             const crypto::BigInt& faulty_signature);

}  // namespace mapsec::attack
