// Bleichenbacher's PKCS#1 v1.5 padding-oracle attack ("million message
// attack", CRYPTO '98).
//
// The paper's Section 3.4 software-attack taxonomy: privacy attacks that
// exploit "weaknesses in security schemes and the system implementation".
// This is the canonical instance against the very handshake Section 3.2
// prices: if a server's ClientKeyExchange processing reveals — through an
// error code, an alert, or a timing difference — whether the decrypted
// premaster was PKCS#1-conforming, an attacker holding one recorded
// ciphertext can recover the premaster secret (and thus the whole
// session) using only that one bit per query, no key compromise needed.
//
// The oracle here is configurable from "prefix only" (the sloppiest real
// implementations: checks just 00 02) to "full" (all of PKCS#1 v1.5);
// the attack works against both, the query count differing — which is
// itself the classic measurement. The countermeasure (what
// rsa_decrypt_pkcs1's callers must do, and TLS later mandated) is to
// never surface the distinction.
#pragma once

#include <cstdint>

#include "mapsec/crypto/rsa.hpp"

namespace mapsec::attack {

/// The vulnerable server: answers "was the decryption PKCS#1-conforming?"
class PaddingOracle {
 public:
  enum class Strictness {
    kPrefixOnly,  // checks 00 02 only (weakest, fastest to attack)
    kFull,        // checks padding length and zero separator too
  };

  PaddingOracle(crypto::RsaPrivateKey key, Strictness strictness);

  /// One decryption query. Counts against `queries()`.
  bool conforming(const crypto::BigInt& ciphertext);

  std::uint64_t queries() const { return queries_; }
  crypto::RsaPublicKey public_key() const { return key_.public_key(); }

 private:
  crypto::RsaPrivateKey key_;
  Strictness strictness_;
  std::uint64_t queries_ = 0;
};

struct BleichenbacherResult {
  bool success = false;
  crypto::Bytes recovered_message;  // the unpadded plaintext
  std::uint64_t oracle_queries = 0;
};

/// Recover the plaintext of `ciphertext` (a valid PKCS#1 v1.5 encryption
/// under the oracle's key) using at most `max_queries` oracle calls.
BleichenbacherResult bleichenbacher_attack(const crypto::RsaPublicKey& pub,
                                           crypto::ConstBytes ciphertext,
                                           PaddingOracle& oracle,
                                           std::uint64_t max_queries =
                                               5'000'000);

}  // namespace mapsec::attack
