// Simple power analysis of RSA exponentiation.
//
// Section 3.4 counts power analysis among the cheapest non-invasive
// attacks. SPA is its single-trace form: on real hardware a Montgomery
// square and a Montgomery multiply have visibly different current
// profiles, so ONE oscilloscope trace of an unprotected square-and-
// multiply exponentiation spells out the private exponent directly —
// "S S M S M S S S M ..." reads as the key's bits. No statistics needed,
// unlike the DPA/timing attacks.
//
// Against the Montgomery ladder the trace is a featureless "M S M S ..."
// regardless of the key: the attack returns nothing.
#pragma once

#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/rsa.hpp"

namespace mapsec::attack {

/// The victim: a signer whose per-operation power profile is observable.
class SpaOracle {
 public:
  enum class Strategy { kSquareAndMultiply, kMontgomeryLadder };

  SpaOracle(crypto::RsaPrivateKey key, Strategy strategy);

  struct Trace {
    crypto::BigInt signature;
    crypto::MontOpSequence ops;  // the power trace, already classified
  };

  Trace sign(const crypto::BigInt& m) const;

  crypto::RsaPublicKey public_key() const { return key_.public_key(); }
  const crypto::BigInt& true_d() const { return key_.d; }

 private:
  crypto::RsaPrivateKey key_;
  Strategy strategy_;
};

struct SpaResult {
  bool parsed = false;    // trace matched the square-and-multiply grammar
  bool verified = false;  // recovered exponent reproduces the signature
  crypto::BigInt recovered_d;
};

/// Read the private exponent off a single trace. `message` must be the
/// message whose trace is supplied (used only to verify the recovery).
SpaResult spa_attack(const crypto::RsaPublicKey& pub,
                     const crypto::BigInt& message,
                     const SpaOracle::Trace& trace);

}  // namespace mapsec::attack
