// Timing attack on RSA modular exponentiation (Kocher [47], refined by
// Dhem et al. against Montgomery implementations).
//
// Section 3.4: "the timing attack ... exploits the observation that the
// computations performed in some of the cryptographic algorithms often
// take different amounts of time on different inputs." Our victim is the
// library's own left-to-right square-and-multiply over Montgomery
// arithmetic: the conditional multiply and the data-dependent extra
// reduction of each Montgomery product make total signing time key- and
// message-dependent. The attacker recovers the private exponent bit by
// bit, MSB first, by simulating both hypotheses for each bit over a batch
// of observed (message, time) pairs and testing which hypothesis's
// predicted extra-reduction indicator actually correlates with time.
//
// The Montgomery-ladder and blinding countermeasures (available on the
// same oracle) defeat the attack, reproducing the paper's point that
// tamper resistance is an implementation property.
#pragma once

#include <cstdint>

#include "mapsec/attack/noise.hpp"
#include "mapsec/crypto/rsa.hpp"

namespace mapsec::attack {

/// Simulated cycle cost of one private-key operation, built from the
/// Montgomery operation counts the crypto library reports. A real
/// attacker gets these constants by profiling an identical device.
struct TimingModel {
  double base_cycles = 200.0;
  double cycles_per_op = 120.0;              // per Montgomery square/multiply
  double cycles_per_extra_reduction = 40.0;  // the leak
  double noise_stddev = 60.0;                // measurement noise
};

/// Implementation strategy of the victim device.
enum class ExpStrategy {
  kSquareAndMultiply,  // leaky
  kMontgomeryLadder,   // constant operation sequence
  kBlinded,            // square-and-multiply + message blinding
};

/// The victim: an RSA signer whose response time the adversary measures.
class TimingOracle {
 public:
  TimingOracle(crypto::RsaPrivateKey key, TimingModel model,
               ExpStrategy strategy, std::uint64_t noise_seed);

  struct Observation {
    crypto::BigInt signature;
    double time_cycles;
  };

  /// Raw private operation m^d mod n with simulated timing.
  Observation sign(const crypto::BigInt& m);

  crypto::RsaPublicKey public_key() const { return key_.public_key(); }
  const TimingModel& model() const { return model_; }

  /// Ground truth for experiment harnesses (a real attacker lacks this).
  const crypto::BigInt& true_d() const { return key_.d; }

 private:
  crypto::RsaPrivateKey key_;
  TimingModel model_;
  ExpStrategy strategy_;
  crypto::HmacDrbg noise_rng_;
  GaussianNoise noise_;
};

struct TimingAttackResult {
  crypto::BigInt recovered_d;
  bool verified = false;          // recovered_d reproduces a signature
  std::size_t samples_used = 0;
  std::size_t bits_attacked = 0;
  double correct_bit_fraction = 0;  // vs. ground truth (harness metric)
};

/// Mount the attack with `num_samples` chosen messages. `exponent_bits`
/// is the attacker's estimate of the private exponent's bit length
/// (obtainable in practice from the gross operation count in the timing).
TimingAttackResult timing_attack(TimingOracle& oracle, crypto::Rng& rng,
                                 std::size_t num_samples,
                                 std::size_t exponent_bits);

}  // namespace mapsec::attack
