#include "mapsec/attack/noise.hpp"

#include <cmath>

namespace mapsec::attack {

double GaussianNoise::sample(double stddev) {
  if (stddev <= 0) return 0;
  if (have_spare_) {
    have_spare_ = false;
    return spare_ * stddev;
  }
  // Box-Muller on uniforms in (0, 1].
  const double u1 =
      (static_cast<double>(rng_->next_u64() >> 11) + 1.0) / 9007199254740993.0;
  const double u2 =
      static_cast<double>(rng_->next_u64() >> 11) / 9007199254740992.0;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta) * stddev;
}

}  // namespace mapsec::attack
