#include "mapsec/attack/cbc_iv.hpp"

#include <cstdio>
#include <stdexcept>

namespace mapsec::attack {

CbcChannelOracle::CbcChannelOracle(crypto::Bytes key16, IvMode mode,
                                   crypto::Rng* rng)
    : aes_(key16), mode_(mode), rng_(rng) {
  if (key16.size() != 16)
    throw std::invalid_argument("CbcChannelOracle: AES-128 key expected");
  if (rng_ == nullptr)
    throw std::invalid_argument("CbcChannelOracle: rng required");
  chain_ = rng_->bytes(16);  // session-initial IV
}

crypto::Bytes CbcChannelOracle::encrypt_block_with_iv(
    crypto::ConstBytes iv, crypto::ConstBytes block) {
  crypto::Bytes x(16);
  for (int i = 0; i < 16; ++i) x[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(iv[static_cast<std::size_t>(i)] ^
                                block[static_cast<std::size_t>(i)]);
  crypto::Bytes out(16);
  aes_.encrypt_block(x.data(), out.data());
  last_iv_used_.assign(iv.begin(), iv.end());
  chain_ = out;  // last ciphertext block, either mode
  return out;
}

crypto::Bytes CbcChannelOracle::send_block(crypto::ConstBytes block16) {
  if (block16.size() != 16)
    throw std::invalid_argument("send_block: 16-byte blocks only");
  const crypto::Bytes iv =
      mode_ == IvMode::kChained ? chain_ : rng_->bytes(16);
  return encrypt_block_with_iv(iv, block16);
}

crypto::Bytes CbcChannelOracle::transmit_secret(crypto::ConstBytes secret16) {
  if (secret16.size() != 16)
    throw std::invalid_argument("transmit_secret: 16-byte blocks only");
  const crypto::Bytes iv =
      mode_ == IvMode::kChained ? chain_ : rng_->bytes(16);
  return encrypt_block_with_iv(iv, secret16);
}

std::optional<crypto::Bytes> CbcChannelOracle::predict_next_iv() const {
  if (mode_ == IvMode::kChained) return chain_;
  return std::nullopt;  // random per record: unknowable in advance
}

CbcIvAttackResult cbc_iv_dictionary_attack(
    CbcChannelOracle& oracle, crypto::ConstBytes secret_iv,
    crypto::ConstBytes secret_ct,
    const std::vector<crypto::Bytes>& candidates) {
  CbcIvAttackResult result;
  for (const crypto::Bytes& guess : candidates) {
    ++result.guesses_tried;
    const auto iv_now = oracle.predict_next_iv();
    if (!iv_now) return result;  // unpredictable IVs: attack impossible
    // P_a = Guess ^ IV_s ^ IV_now
    crypto::Bytes injected(16);
    for (int i = 0; i < 16; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      injected[idx] = static_cast<std::uint8_t>(
          guess[idx] ^ secret_iv[idx] ^ (*iv_now)[idx]);
    }
    const crypto::Bytes ct = oracle.send_block(injected);
    if (crypto::ct_equal(ct, secret_ct)) {
      result.recovered = true;
      result.secret = guess;
      return result;
    }
  }
  return result;
}

crypto::Bytes pin_block(int pin) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "PIN=%04d;pad=xxx", pin);
  return crypto::to_bytes(std::string_view(buf, 16));
}

std::vector<crypto::Bytes> pin_candidate_blocks() {
  std::vector<crypto::Bytes> out;
  out.reserve(10000);
  for (int pin = 0; pin < 10000; ++pin) out.push_back(pin_block(pin));
  return out;
}

}  // namespace mapsec::attack
