#include "mapsec/attack/bleichenbacher.hpp"

#include <utility>
#include <vector>

#include "mapsec/crypto/modexp.hpp"

namespace mapsec::attack {

using crypto::BigInt;

PaddingOracle::PaddingOracle(crypto::RsaPrivateKey key,
                             Strictness strictness)
    : key_(std::move(key)), strictness_(strictness) {}

bool PaddingOracle::conforming(const BigInt& ciphertext) {
  ++queries_;
  if (ciphertext >= key_.n) return false;
  const crypto::Bytes em =
      crypto::rsa_private_op_crt(key_, ciphertext)
          .to_bytes_be(key_.modulus_bytes());
  if (em[0] != 0x00 || em[1] != 0x02) return false;
  if (strictness_ == Strictness::kPrefixOnly) return true;
  // Full check: >= 8 nonzero padding bytes then a zero separator.
  for (std::size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) return i >= 10;
  }
  return false;
}

namespace {

BigInt ceil_div(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  if (!r.is_zero()) q += BigInt(1);
  return q;
}

BigInt floor_div(const BigInt& a, const BigInt& b) { return a / b; }

/// a - b clamped at zero (all quantities here are unsigned).
BigInt sub_clamped(const BigInt& a, const BigInt& b) {
  return a >= b ? a - b : BigInt(0);
}

struct Interval {
  BigInt a, b;
};

}  // namespace

BleichenbacherResult bleichenbacher_attack(const crypto::RsaPublicKey& pub,
                                           crypto::ConstBytes ciphertext,
                                           PaddingOracle& oracle,
                                           std::uint64_t max_queries) {
  BleichenbacherResult result;
  const std::size_t k = pub.modulus_bytes();
  const BigInt n = pub.n;
  const crypto::Montgomery mont(n);

  const BigInt B = BigInt(1) << (8 * (k - 2));
  const BigInt B2 = BigInt(2) * B;
  const BigInt B3 = BigInt(3) * B;

  const BigInt c0 = BigInt::from_bytes_be(ciphertext);
  const std::uint64_t base_queries = oracle.queries();
  const auto budget_left = [&] {
    return oracle.queries() - base_queries < max_queries;
  };
  // Query helper: is c0 * s^e conforming?
  const auto probe = [&](const BigInt& s) {
    const BigInt c = (c0 * mont.exp(s, pub.e)) % n;
    return oracle.conforming(c);
  };

  // The captured ciphertext is valid, so m0 is in [2B, 3B-1] already.
  std::vector<Interval> m = {{B2, B3 - BigInt(1)}};

  // Step 2a: smallest s1 >= n / 3B with a conforming product.
  BigInt s = ceil_div(n, B3);
  while (budget_left() && !probe(s)) s += BigInt(1);
  if (!budget_left()) {
    result.oracle_queries = oracle.queries() - base_queries;
    return result;
  }

  for (;;) {
    // Step 3: narrow the interval set with the found s.
    std::vector<Interval> next;
    for (const Interval& iv : m) {
      const BigInt r_low = ceil_div(
          sub_clamped(iv.a * s + BigInt(1), B3), n);
      const BigInt r_high = floor_div(sub_clamped(iv.b * s, B2), n);
      for (BigInt r = r_low; r <= r_high; r += BigInt(1)) {
        BigInt na = ceil_div(B2 + r * n, s);
        BigInt nb = floor_div(B3 - BigInt(1) + r * n, s);
        if (na < iv.a) na = iv.a;
        if (nb > iv.b) nb = iv.b;
        if (na <= nb) {
          // Merge adjacent/duplicate intervals.
          bool merged = false;
          for (auto& existing : next) {
            if (!(nb < existing.a || na > existing.b)) {
              if (na < existing.a) existing.a = na;
              if (nb > existing.b) existing.b = nb;
              merged = true;
              break;
            }
          }
          if (!merged) next.push_back({na, nb});
        }
      }
    }
    m = std::move(next);
    if (m.empty()) {
      // Should not happen for a genuine ciphertext; bail out cleanly.
      result.oracle_queries = oracle.queries() - base_queries;
      return result;
    }

    // Step 4: solved?
    if (m.size() == 1 && m[0].a == m[0].b) {
      const crypto::Bytes em = m[0].a.to_bytes_be(k);
      // Strip 00 02 | padding | 00 | message.
      std::size_t sep = 0;
      for (std::size_t i = 2; i < em.size(); ++i) {
        if (em[i] == 0x00) {
          sep = i;
          break;
        }
      }
      if (sep != 0) {
        result.success = true;
        result.recovered_message.assign(
            em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
      }
      result.oracle_queries = oracle.queries() - base_queries;
      return result;
    }

    // Step 2b / 2c: find the next s.
    if (m.size() > 1) {
      do {
        s += BigInt(1);
        if (!budget_left()) {
          result.oracle_queries = oracle.queries() - base_queries;
          return result;
        }
      } while (!probe(s));
    } else {
      const BigInt& a = m[0].a;
      const BigInt& b = m[0].b;
      BigInt r = ceil_div(BigInt(2) * sub_clamped(b * s, B2), n);
      bool found = false;
      while (!found) {
        const BigInt s_low = ceil_div(B2 + r * n, b);
        const BigInt s_high = floor_div(B3 + r * n, a);
        for (BigInt cand = s_low; cand <= s_high; cand += BigInt(1)) {
          if (!budget_left()) {
            result.oracle_queries = oracle.queries() - base_queries;
            return result;
          }
          if (probe(cand)) {
            s = cand;
            found = true;
            break;
          }
        }
        r += BigInt(1);
      }
    }
  }
}

}  // namespace mapsec::attack
