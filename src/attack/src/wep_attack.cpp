#include "mapsec/attack/wep_attack.hpp"

#include <algorithm>
#include <map>

namespace mapsec::attack {

using protocol::WepFrame;

crypto::Bytes keystream_reuse_decrypt(const WepFrame& known_frame,
                                      crypto::ConstBytes known_plaintext,
                                      const WepFrame& target_frame) {
  // keystream = known_ciphertext ^ known_plaintext;
  // target_plaintext = target_ciphertext ^ keystream.
  const std::size_t n = std::min({known_frame.body.size(),
                                  known_plaintext.size(),
                                  target_frame.body.size()});
  crypto::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(known_frame.body[i] ^
                                       known_plaintext[i] ^
                                       target_frame.body[i]);
  return out;
}

std::optional<std::pair<std::size_t, std::size_t>> find_iv_collision(
    const std::vector<WepFrame>& frames) {
  std::map<std::array<std::uint8_t, 3>, std::size_t> seen;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto [it, inserted] = seen.emplace(frames[i].iv, i);
    if (!inserted) return std::make_pair(it->second, i);
  }
  return std::nullopt;
}

FmsAttack::FmsAttack(std::size_t key_len) : key_len_(key_len) {
  if (key_len != 5 && key_len != 13)
    throw std::invalid_argument("FmsAttack: WEP key is 5 or 13 bytes");
}

void FmsAttack::observe(const WepFrame& frame,
                        std::uint8_t first_plaintext_byte) {
  ++frames_observed_;
  if (frame.body.empty()) return;
  observations_.push_back(
      {frame.iv,
       static_cast<std::uint8_t>(frame.body[0] ^ first_plaintext_byte)});
}

namespace {

/// Run the first `steps` iterations of the RC4 KSA with the 3-byte IV plus
/// the already-recovered secret prefix. Returns false if the needed key
/// bytes are not yet known.
struct PartialKsa {
  std::array<std::uint8_t, 256> s;
  std::uint8_t j = 0;
};

bool partial_ksa(const std::array<std::uint8_t, 3>& iv,
                 const std::vector<std::uint8_t>& secret_prefix,
                 std::size_t steps, PartialKsa& out) {
  for (int i = 0; i < 256; ++i)
    out.s[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  out.j = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    std::uint8_t key_byte;
    if (i < 3) {
      key_byte = iv[i];
    } else if (i - 3 < secret_prefix.size()) {
      key_byte = secret_prefix[i - 3];
    } else {
      return false;
    }
    out.j = static_cast<std::uint8_t>(out.j + out.s[i] + key_byte);
    std::swap(out.s[i], out.s[out.j]);
  }
  return true;
}

}  // namespace

std::size_t FmsAttack::resolved_count(std::size_t index) const {
  // A weak IV for byte `index` has the canonical FMS form
  // (index+3, 255, x); count those.
  std::size_t count = 0;
  for (const auto& obs : observations_)
    if (obs.iv[0] == index + 3 && obs.iv[1] == 255) ++count;
  return count;
}

std::optional<crypto::Bytes> FmsAttack::try_recover(
    const WepFrame& check_frame, std::uint8_t first_plaintext_byte) const {
  std::vector<std::uint8_t> secret;
  secret.reserve(key_len_);

  for (std::size_t b = 0; b < key_len_; ++b) {
    std::array<std::size_t, 256> votes{};
    const std::size_t step_count = b + 3;
    for (const auto& obs : observations_) {
      PartialKsa ksa;
      if (!partial_ksa(obs.iv, secret, step_count, ksa)) continue;
      // FMS "resolved condition": the first output byte will depend on
      // S[1] + S[S[1]] landing on position i = b+3.
      const std::uint8_t s1 = ksa.s[1];
      if (s1 >= step_count) continue;
      if (static_cast<std::size_t>(s1) + ksa.s[s1] != step_count) continue;
      // Invert the KSA step to vote for the key byte.
      // z = S[S[1] + S[S[1]]] after full KSA with probability ~e^-3;
      // key[b] = S^{-1}[z] - j - S[i].
      int z_pos = -1;
      for (int v = 0; v < 256; ++v) {
        if (ksa.s[static_cast<std::size_t>(v)] == obs.first_keystream_byte) {
          z_pos = v;
          break;
        }
      }
      if (z_pos < 0) continue;
      const std::uint8_t guess = static_cast<std::uint8_t>(
          z_pos - ksa.j - ksa.s[step_count]);
      ++votes[guess];
    }
    // Take the most-voted byte; bail out if we have no information.
    const auto best = std::max_element(votes.begin(), votes.end());
    if (*best == 0) return std::nullopt;
    secret.push_back(
        static_cast<std::uint8_t>(std::distance(votes.begin(), best)));
  }

  crypto::Bytes candidate(secret.begin(), secret.end());
  // Verify against a real frame before claiming success.
  const auto plain = protocol::wep_decapsulate(candidate, check_frame);
  if (!plain || plain->empty() || (*plain)[0] != first_plaintext_byte)
    return std::nullopt;
  return candidate;
}

}  // namespace mapsec::attack
