#include "mapsec/attack/spa.hpp"

namespace mapsec::attack {

using crypto::BigInt;
using crypto::MontOp;

SpaOracle::SpaOracle(crypto::RsaPrivateKey key, Strategy strategy)
    : key_(std::move(key)), strategy_(strategy) {}

SpaOracle::Trace SpaOracle::sign(const BigInt& m) const {
  Trace trace;
  const crypto::Montgomery mont(key_.n);
  if (strategy_ == Strategy::kSquareAndMultiply) {
    trace.signature = mont.exp(m, key_.d, nullptr, &trace.ops);
  } else {
    trace.signature = mont.exp_ladder(m, key_.d, nullptr, &trace.ops);
  }
  return trace;
}

SpaResult spa_attack(const crypto::RsaPublicKey& pub, const BigInt& message,
                     const SpaOracle::Trace& trace) {
  SpaResult result;
  // Parse the S(M?) grammar of left-to-right square-and-multiply:
  // the implicit leading 1-bit, then one square per bit, each followed by
  // a multiply exactly when that bit is 1.
  BigInt d = 1;
  std::size_t i = 0;
  while (i < trace.ops.size()) {
    if (trace.ops[i] != MontOp::kSquare) return result;  // not S&M: ladder
    ++i;
    const bool bit = i < trace.ops.size() && trace.ops[i] == MontOp::kMultiply;
    if (bit) ++i;
    d = (d << 1) + BigInt(bit ? 1 : 0);
  }
  result.parsed = true;
  result.recovered_d = d;
  result.verified =
      crypto::mod_exp(message, d, pub.n) == trace.signature;
  return result;
}

}  // namespace mapsec::attack
