#include "mapsec/attack/dpa.hpp"

#include <bit>
#include <cmath>
#include <vector>

namespace mapsec::attack {

namespace des = crypto::des_detail;

DesPowerOracle::DesPowerOracle(crypto::Bytes key8, PowerModel model,
                               bool masked, std::uint64_t seed)
    : key_(std::move(key8)),
      des_(key_),
      round1_subkey_(des::key_schedule(key_)[0]),
      model_(model),
      masked_(masked),
      rng_(seed),
      noise_(&rng_) {}

DesPowerOracle::Trace DesPowerOracle::encrypt(crypto::ConstBytes plaintext) {
  Trace trace;
  trace.plaintext.assign(plaintext.begin(), plaintext.end());
  trace.ciphertext.resize(8);
  des_.encrypt_block(plaintext.data(), trace.ciphertext.data());

  // Recompute the round-1 intermediates the hardware would expose.
  const std::uint64_t block = crypto::load_be64(plaintext.data());
  const std::uint64_t ip = des::initial_permutation(block);
  const std::uint32_t r0 = static_cast<std::uint32_t>(ip);
  const std::uint64_t x = des::expand(r0) ^ round1_subkey_;
  const auto sbox_out = des::sbox_outputs(x);

  for (int s = 0; s < 8; ++s) {
    std::uint8_t leaked = sbox_out[static_cast<std::size_t>(s)];
    if (masked_) {
      // First-order Boolean masking: the register holds value ^ mask with
      // a fresh uniform mask, so its Hamming weight is key-independent.
      std::uint8_t mask;
      rng_.fill({&mask, 1});
      leaked = static_cast<std::uint8_t>(leaked ^ (mask & 0xF));
    }
    trace.samples[static_cast<std::size_t>(s)] =
        model_.scale * static_cast<double>(std::popcount(leaked)) +
        noise_.sample(model_.noise_stddev);
  }
  return trace;
}

std::array<std::uint8_t, 8> DesPowerOracle::true_round1_chunks() const {
  return des::subkey_chunks(round1_subkey_);
}

DpaResult dpa_attack(DesPowerOracle& oracle, crypto::Rng& rng,
                     std::size_t num_traces) {
  // Collect traces for random plaintexts, precomputing each trace's
  // expanded round-1 input chunks (E(R0) per S-box).
  struct Sample {
    std::array<std::uint8_t, 8> er0_chunks;  // 6-bit E(R0) slice per S-box
    std::array<double, 8> power;
  };
  std::vector<Sample> samples;
  samples.reserve(num_traces);
  DesPowerOracle::Trace first_trace;

  for (std::size_t t = 0; t < num_traces; ++t) {
    const crypto::Bytes pt = rng.bytes(8);
    const auto trace = oracle.encrypt(pt);
    if (t == 0) first_trace = trace;
    const std::uint64_t ip =
        des::initial_permutation(crypto::load_be64(pt.data()));
    const std::uint64_t er0 =
        des::expand(static_cast<std::uint32_t>(ip));
    Sample s;
    for (int box = 0; box < 8; ++box)
      s.er0_chunks[static_cast<std::size_t>(box)] =
          static_cast<std::uint8_t>((er0 >> (42 - 6 * box)) & 0x3F);
    s.power = trace.samples;
    samples.push_back(s);
  }

  DpaResult result;
  result.traces_used = num_traces;

  // Per S-box: difference-of-means over each predicted output bit,
  // averaged across the four bits; the key guess with the largest mean
  // absolute separation wins.
  for (int box = 0; box < 8; ++box) {
    double best_score = -1;
    std::uint8_t best_guess = 0;
    for (int guess = 0; guess < 64; ++guess) {
      double score = 0;
      for (int bit = 0; bit < 4; ++bit) {
        double sum1 = 0, sum0 = 0;
        std::size_t n1 = 0, n0 = 0;
        for (const auto& s : samples) {
          const std::uint8_t out = des::sbox(
              box, static_cast<std::uint8_t>(
                       s.er0_chunks[static_cast<std::size_t>(box)] ^ guess));
          const double p = s.power[static_cast<std::size_t>(box)];
          if ((out >> bit) & 1) {
            sum1 += p;
            ++n1;
          } else {
            sum0 += p;
            ++n0;
          }
        }
        if (n1 > 0 && n0 > 0)
          score += std::abs(sum1 / static_cast<double>(n1) -
                            sum0 / static_cast<double>(n0));
      }
      if (score > best_score) {
        best_score = score;
        best_guess = static_cast<std::uint8_t>(guess);
      }
    }
    result.recovered_chunks[static_cast<std::size_t>(box)] = best_guess;
  }

  const auto truth = oracle.true_round1_chunks();
  for (int box = 0; box < 8; ++box)
    if (result.recovered_chunks[static_cast<std::size_t>(box)] ==
        truth[static_cast<std::size_t>(box)])
      ++result.correct_chunks;

  // Rebuild the 48-bit round-1 subkey and brute-force the 8 dropped bits
  // against the first known plaintext/ciphertext pair.
  std::uint64_t subkey = 0;
  for (int box = 0; box < 8; ++box)
    subkey |= std::uint64_t{
                  result.recovered_chunks[static_cast<std::size_t>(box)]}
              << (42 - 6 * box);
  for (int missing = 0; missing < 256; ++missing) {
    const crypto::Bytes candidate = des::key_from_round1_subkey(
        subkey, static_cast<std::uint8_t>(missing));
    crypto::Bytes ct(8);
    crypto::Des(candidate).encrypt_block(first_trace.plaintext.data(),
                                         ct.data());
    if (ct == first_trace.ciphertext) {
      result.full_key_recovered = true;
      result.recovered_key = candidate;
      break;
    }
  }
  return result;
}

}  // namespace mapsec::attack
