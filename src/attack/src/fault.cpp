#include "mapsec/attack/fault.hpp"

#include "mapsec/crypto/modexp.hpp"

namespace mapsec::attack {

using crypto::BigInt;
using crypto::Montgomery;

FaultySigner::FaultySigner(crypto::RsaPrivateKey key) : key_(std::move(key)) {}

BigInt FaultySigner::crt_combine(const BigInt& mp, const BigInt& mq) const {
  // Garner: m = mq + q * (qinv * (mp - mq) mod p)
  const BigInt diff =
      mp >= mq ? (mp - mq) % key_.p : key_.p - ((mq - mp) % key_.p);
  const BigInt h = (key_.qinv * diff) % key_.p;
  return mq + key_.q * h;
}

BigInt FaultySigner::sign(const BigInt& m) const {
  const BigInt mp = Montgomery(key_.p).exp(m % key_.p, key_.dp);
  const BigInt mq = Montgomery(key_.q).exp(m % key_.q, key_.dq);
  return crt_combine(mp, mq);
}

BigInt FaultySigner::sign_faulty(const BigInt& m, FaultTarget target,
                                 std::size_t bit_to_flip) const {
  BigInt mp = Montgomery(key_.p).exp(m % key_.p, key_.dp);
  BigInt mq = Montgomery(key_.q).exp(m % key_.q, key_.dq);
  // The glitch: one bit of one half-result flips in the output register.
  const BigInt flip = BigInt(1) << bit_to_flip;
  if (target == FaultTarget::kExpModP) {
    mp = mp.bit(bit_to_flip) ? mp - flip : (mp + flip) % key_.p;
  } else {
    mq = mq.bit(bit_to_flip) ? mq - flip : (mq + flip) % key_.q;
  }
  return crt_combine(mp, mq);
}

BigInt FaultySigner::sign_protected(const BigInt& m, FaultTarget target,
                                    std::size_t bit_to_flip) const {
  const BigInt s = sign_faulty(m, target, bit_to_flip);
  if (crypto::mod_exp(s, key_.e, key_.n) == m % key_.n) return s;
  // Fault detected: recompute without CRT (slow but fault-free here).
  return Montgomery(key_.n).exp(m % key_.n, key_.d);
}

FaultAttackResult bdl_factor(const crypto::RsaPublicKey& pub,
                             const BigInt& message,
                             const BigInt& faulty_signature) {
  FaultAttackResult result;
  // s'^e - m mod n is divisible by exactly the unfaulted prime.
  const BigInt se = crypto::mod_exp(faulty_signature, pub.e, pub.n);
  const BigInt m = message % pub.n;
  const BigInt diff = se >= m ? se - m : pub.n - (m - se);
  if (diff.is_zero()) return result;  // signature wasn't faulty after all
  const BigInt g = BigInt::gcd(diff, pub.n);
  if (g > BigInt(1) && g < pub.n) {
    result.success = true;
    result.factor = g;
    result.cofactor = pub.n / g;
  }
  return result;
}

}  // namespace mapsec::attack
