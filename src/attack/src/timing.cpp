#include "mapsec/attack/timing.hpp"

#include <vector>

#include "mapsec/crypto/modexp.hpp"

namespace mapsec::attack {

using crypto::BigInt;
using crypto::Montgomery;
using crypto::MontStats;

TimingOracle::TimingOracle(crypto::RsaPrivateKey key, TimingModel model,
                           ExpStrategy strategy, std::uint64_t noise_seed)
    : key_(std::move(key)),
      model_(model),
      strategy_(strategy),
      noise_rng_(noise_seed),
      noise_(&noise_rng_) {}

TimingOracle::Observation TimingOracle::sign(const BigInt& m) {
  MontStats stats;
  BigInt sig;
  switch (strategy_) {
    case ExpStrategy::kSquareAndMultiply:
      sig = Montgomery(key_.n).exp(m, key_.d, &stats);
      break;
    case ExpStrategy::kMontgomeryLadder:
      sig = Montgomery(key_.n).exp_ladder(m, key_.d, &stats);
      break;
    case ExpStrategy::kBlinded:
      sig = crypto::rsa_private_op_blinded(key_, m, noise_rng_, &stats);
      break;
  }
  const double t =
      model_.base_cycles +
      model_.cycles_per_op *
          static_cast<double>(stats.squares + stats.mults) +
      model_.cycles_per_extra_reduction *
          static_cast<double>(stats.extra_reductions) +
      noise_.sample(model_.noise_stddev);
  return {sig, t};
}

namespace {

/// Difference of means of `times` split by a boolean indicator. Returns 0
/// when either side is too small to be meaningful.
double separation(const std::vector<double>& times,
                  const std::vector<std::uint8_t>& indicator) {
  double sum1 = 0, sum0 = 0;
  std::size_t n1 = 0, n0 = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (indicator[i]) {
      sum1 += times[i];
      ++n1;
    } else {
      sum0 += times[i];
      ++n0;
    }
  }
  if (n1 < 8 || n0 < 8) return 0;
  return sum1 / static_cast<double>(n1) - sum0 / static_cast<double>(n0);
}

}  // namespace

TimingAttackResult timing_attack(TimingOracle& oracle, crypto::Rng& rng,
                                 std::size_t num_samples,
                                 std::size_t exponent_bits) {
  const crypto::RsaPublicKey pub = oracle.public_key();
  const Montgomery mont(pub.n);

  // Collect observations for chosen random messages.
  std::vector<BigInt> messages(num_samples);
  std::vector<BigInt> bm(num_samples);   // messages in Montgomery form
  std::vector<double> times(num_samples);
  std::vector<BigInt> sigs(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    messages[i] = BigInt::random_below(rng, pub.n);
    const auto obs = oracle.sign(messages[i]);
    times[i] = obs.time_cycles;
    sigs[i] = obs.signature;
    bm[i] = mont.to_mont(messages[i]);
  }

  // Attack state: the accumulator of the victim's exponentiation, per
  // message, replayed incrementally as bits are decided. After the MSB
  // (always 1) the accumulator is the message itself.
  std::vector<BigInt> acc = bm;
  BigInt recovered = 1;  // MSB

  // Progressive de-noising: as bits are decided, the attacker knows
  // exactly which extra reductions the victim's prefix performed and
  // subtracts their (calibrated) cost from each measurement, shrinking
  // the variance the remaining bits must fight.
  const double cpx = oracle.model().cycles_per_extra_reduction;
  std::vector<double> residual = times;

  std::vector<std::uint8_t> x1(num_samples), x0(num_samples);
  std::vector<BigInt> sq(num_samples), mul1(num_samples);
  std::vector<std::uint8_t> sq_xred(num_samples), mul_xred(num_samples);

  // Bits from exponent_bits-2 down to 1; bit 0 is forced odd at the end.
  for (std::size_t bit = exponent_bits - 1; bit-- > 1;) {
    for (std::size_t i = 0; i < num_samples; ++i) {
      // Common square at this iteration.
      MontStats ssq;
      sq[i] = mont.mul(acc[i], acc[i], &ssq);
      sq_xred[i] = ssq.extra_reductions ? 1 : 0;
      MontStats smul;
      mul1[i] = mont.mul(sq[i], bm[i], &smul);
      mul_xred[i] = smul.extra_reductions ? 1 : 0;
      // Discriminate on the *next* squaring, which executes
      // unconditionally and whose operand differs by hypothesis:
      // acc' = sq*bm (bit=1) or sq (bit=0). Using a squaring rather than
      // the multiply avoids the fixed-operand bias: the extra-reduction
      // probability of mul(x, bm) grows with the magnitude of bm for
      // every 1-bit of the key, so it correlates with total time no
      // matter what this bit is (Schindler's observation).
      MontStats s1;
      (void)mont.mul(mul1[i], mul1[i], &s1);
      x1[i] = s1.extra_reductions ? 1 : 0;
      MontStats s0;
      (void)mont.mul(sq[i], sq[i], &s0);
      x0[i] = s0.extra_reductions ? 1 : 0;
    }
    const double d1 = separation(residual, x1);
    const double d0 = separation(residual, x0);
    const bool bit_is_one = d1 > d0;
    recovered = (recovered << 1) + BigInt(bit_is_one ? 1 : 0);
    for (std::size_t i = 0; i < num_samples; ++i) {
      residual[i] -= cpx * sq_xred[i];
      if (bit_is_one) {
        acc[i] = mul1[i];
        residual[i] -= cpx * mul_xred[i];
      } else {
        acc[i] = sq[i];
      }
    }
  }
  // RSA private exponents are odd.
  recovered = (recovered << 1) + BigInt(1);

  TimingAttackResult result;
  result.recovered_d = recovered;
  result.samples_used = num_samples;
  result.bits_attacked = exponent_bits - 2;
  // Verify against an observed signature (public information only).
  result.verified =
      crypto::mod_exp(messages[0], recovered, pub.n) == sigs[0];

  const BigInt& truth = oracle.true_d();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < exponent_bits; ++i)
    if (recovered.bit(i) == truth.bit(i)) ++correct;
  result.correct_bit_fraction =
      static_cast<double>(correct) / static_cast<double>(exponent_bits);
  return result;
}

}  // namespace mapsec::attack
