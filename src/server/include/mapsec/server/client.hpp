// Client-side session driver: connect, handshake (with retry/backoff),
// send application data, verify the echoed bulk records byte-exactly,
// close gracefully.
//
// This is the handset side of the paper's serving story: a client on a
// lossy bearer that must establish a secure session within a latency
// budget, resume when it can (the abbreviated handshake that spares the
// RSA op), and give up cleanly after a bounded number of attempts. Each
// client is fully deterministic given its seed; a fleet of them is the
// LoadGenerator's workload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/server/wire.hpp"

namespace mapsec::server {

struct ClientConfig {
  /// Client credentials/trust anchors. `rng` is ignored — each client
  /// owns a seeded rng.
  protocol::HandshakeConfig handshake;
  net::LinkConfig link;

  net::SimTime handshake_timeout_us = 3'000'000;
  net::SimTime attempt_timeout_us = 30'000'000;  // whole-session deadline
  int retry_budget = 3;  // connection attempts per session before giving up
  net::SimTime retry_backoff_us = 200'000;  // doubles per failed attempt
  /// Ceiling on one retry wait — keeps large retry budgets from shifting
  /// the backoff into overflow (and the client from sulking for hours of
  /// simulated time). 0 = uncapped doubling.
  net::SimTime max_retry_backoff_us = 5'000'000;

  std::size_t payload_bytes = 256;
  int payloads_per_session = 4;
  net::SimTime think_time_us = 10'000;

  /// Sessions run back to back; the second and later ones request
  /// resumption with the previous session's ticket.
  int sessions = 1;

  /// Stateless resumption: request a NewSessionTicket on every handshake
  /// and offer the latest opaque blob (instead of the session id) on
  /// subsequent attempts. Against a server without ticket mode this
  /// degrades transparently to session-id resumption.
  bool use_session_tickets = false;

  /// Complete the handshake, then go silent without closing (exercises
  /// the server's idle timeout).
  bool linger = false;
};

/// Outcome of one session (one entry per session attempted).
struct SessionRecord {
  bool completed = false;
  bool failed = false;  // gave up after the retry budget
  bool resumed = false;
  bool ticket_resumed = false;  // resumed statelessly (ticket, not sid)
  bool echo_ok = true;
  int attempts = 0;
  int refused_attempts = 0;  // attempts shed by server admission control
  net::SimTime handshake_latency_us = 0;
  std::string fail_reason;
};

class SessionClient {
 public:
  /// Produce a fresh transport for one connection attempt: the
  /// environment builds a channel, has the server accept its side, and
  /// returns the client-side link (which the client then owns).
  using ConnectFn =
      std::function<std::unique_ptr<net::ReliableLink>(SessionClient&)>;

  /// `engine` opens the server's CCM bulk records (shared, read-only —
  /// each client keeps its own SA and rng). All references must outlive
  /// the client.
  SessionClient(net::EventQueue& queue, ClientConfig config,
                std::uint32_t id, const engine::ProtocolEngine& engine,
                std::uint64_t seed);

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  void set_connect(ConnectFn fn) { connect_ = std::move(fn); }
  void set_on_finished(std::function<void(SessionClient&)> fn) {
    on_finished_ = std::move(fn);
  }

  /// Begin the first session at the current simulated time.
  void start();

  std::uint32_t id() const { return id_; }
  bool finished() const { return finished_; }
  const std::vector<SessionRecord>& sessions() const { return records_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_echoed() const { return bytes_echoed_; }

  /// Running SHA-256 over every verified echoed payload, in arrival
  /// order — the soak tests compare this across PacketPipeline worker
  /// counts.
  const crypto::Bytes& transcript_digest() const { return digest_; }

 private:
  void start_session();
  void begin_attempt();
  void on_message(crypto::ConstBytes msg);
  void handle_handshake(crypto::ConstBytes body);
  void handle_bulk(crypto::ConstBytes body);
  void on_established();
  void send_next_payload();
  void maybe_close();
  void attempt_failed(const std::string& reason);
  void session_done();
  void finish_client();
  void cancel_timers();

  net::EventQueue& queue_;
  ClientConfig config_;
  std::uint32_t id_;
  const engine::ProtocolEngine& engine_;

  crypto::HmacDrbg rng_;          // handshake endpoint randomness
  crypto::HmacDrbg payload_rng_;  // application payload contents
  crypto::HmacDrbg engine_rng_;   // engine run() nonce source (unused by
                                  // the inbound program, required by API)

  ConnectFn connect_;
  std::function<void(SessionClient&)> on_finished_;

  // Current-session state.
  std::unique_ptr<net::ReliableLink> link_;
  std::unique_ptr<protocol::TlsClient> tls_;
  std::uint64_t epoch_ = 0;  // invalidates timers of torn-down attempts
  int session_index_ = 0;
  net::SimTime attempt_started_at_ = 0;
  net::EventId handshake_timer_ = 0;
  net::EventId attempt_timer_ = 0;
  std::vector<crypto::Bytes> sent_payloads_;
  int echoes_received_ = 0;
  bool all_sent_ = false;
  bool close_sent_ = false;
  engine::EngineSa bulk_sa_;
  bool bulk_active_ = false;

  struct Ticket {
    crypto::Bytes session_id;
    crypto::Bytes master_secret;
    protocol::CipherSuite suite;
    crypto::Bytes opaque;  // NewSessionTicket blob (empty: none issued)
  };
  std::optional<Ticket> ticket_;

  std::vector<SessionRecord> records_;
  bool finished_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_echoed_ = 0;
  crypto::Bytes digest_;
};

}  // namespace mapsec::server
