// Client-side session driver: connect, handshake (with retry/backoff),
// send application data, verify the echoed bulk records byte-exactly,
// close gracefully.
//
// This is the handset side of the paper's serving story: a client on a
// lossy bearer that must establish a secure session within a latency
// budget, resume when it can (the abbreviated handshake that spares the
// RSA op), and give up cleanly after a bounded number of attempts. Each
// client is fully deterministic given its seed; a fleet of them is the
// LoadGenerator's workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/server/wire.hpp"

namespace mapsec::server {

struct ClientConfig {
  /// Client credentials/trust anchors. `rng` is ignored — each client
  /// owns a seeded rng.
  protocol::HandshakeConfig handshake;
  net::LinkConfig link;

  net::SimTime handshake_timeout_us = 3'000'000;
  net::SimTime attempt_timeout_us = 30'000'000;  // whole-session deadline
  int retry_budget = 3;  // connection attempts per session before giving up
  net::SimTime retry_backoff_us = 200'000;  // doubles per failed attempt
  /// Ceiling on one retry wait — keeps large retry budgets from shifting
  /// the backoff into overflow (and the client from sulking for hours of
  /// simulated time). 0 = uncapped doubling.
  net::SimTime max_retry_backoff_us = 5'000'000;

  std::size_t payload_bytes = 256;
  int payloads_per_session = 4;
  net::SimTime think_time_us = 10'000;

  /// Sessions run back to back; the second and later ones request
  /// resumption with the previous session's ticket.
  int sessions = 1;

  /// Stateless resumption: request a NewSessionTicket on every handshake
  /// and offer the latest opaque blob (instead of the session id) on
  /// subsequent attempts. Against a server without ticket mode this
  /// degrades transparently to session-id resumption.
  bool use_session_tickets = false;

  /// Wait before the first reconnect attempt after the supervisor reports
  /// the client's shard dead (models failure detection plus rerouting to
  /// the failover shard). Subsequent failures of the reconnect itself pay
  /// the normal capped exponential backoff.
  net::SimTime failover_reconnect_delay_us = 50'000;

  /// Complete the handshake, then go silent without closing (exercises
  /// the server's idle timeout).
  bool linger = false;
};

/// Outcome of one session (one entry per session attempted).
struct SessionRecord {
  bool completed = false;
  bool failed = false;  // gave up after the retry budget
  bool resumed = false;
  bool ticket_resumed = false;  // resumed statelessly (ticket, not sid)
  bool echo_ok = true;
  int attempts = 0;
  int refused_attempts = 0;  // attempts shed by server admission control
  net::SimTime handshake_latency_us = 0;
  std::string fail_reason;
};

class SessionClient {
 public:
  /// Produce a fresh transport for one connection attempt: the
  /// environment builds a channel, has the server accept its side, and
  /// returns the client-side link (which the client then owns).
  using ConnectFn =
      std::function<std::unique_ptr<net::ReliableLink>(SessionClient&)>;

  /// `engine` opens the server's CCM bulk records (shared, read-only —
  /// each client keeps its own SA and rng). All references must outlive
  /// the client.
  SessionClient(net::EventQueue& queue, ClientConfig config,
                std::uint32_t id, const engine::ProtocolEngine& engine,
                std::uint64_t seed);

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  void set_connect(ConnectFn fn) { connect_ = std::move(fn); }
  void set_on_finished(std::function<void(SessionClient&)> fn) {
    on_finished_ = std::move(fn);
  }

  /// Begin the first session at the current simulated time.
  void start();

  /// Schedule start() at absolute simulated time `at` on the client's
  /// queue. Prefer this over scheduling start() by hand: a client whose
  /// shard dies before its arrival keeps the arrival — on_shard_failover
  /// re-arms it on the failover shard's queue.
  void schedule_start(net::SimTime at);

  /// Fleet-supervisor notification, between slices: this client's shard
  /// died (its queue may have been cleared) and the connect function now
  /// routes to a survivor. Rebinds the client to `new_queue`, tears down
  /// the dead transport, and — when a session was in flight — schedules a
  /// ticket-first reconnect after failover_reconnect_delay_us. The
  /// blackout window is measured from `outage_started_at` (the simulated
  /// instant the shard stopped serving) to re-establishment.
  void on_shard_failover(net::EventQueue& new_queue,
                         net::SimTime outage_started_at);

  std::uint32_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// No connection in flight: not yet started, waiting out the gap before
  /// the next session, or done. A graceful drain migrates idle clients
  /// immediately and lets busy ones finish where they are.
  bool idle() const {
    return finished_ || !started_ || awaiting_next_session_;
  }
  const std::vector<SessionRecord>& sessions() const { return records_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_echoed() const { return bytes_echoed_; }
  net::EventQueue& queue() const { return *queue_; }

  /// Failover telemetry: connections torn down by a shard death, sessions
  /// re-established via resumption after such a reconnect, and one
  /// blackout sample (outage start -> session re-established) per
  /// reconnect that made it back.
  int reconnects() const { return reconnects_; }
  int failover_resumes() const { return failover_resumes_; }
  const std::vector<net::SimTime>& failover_blackouts_us() const {
    return blackouts_us_;
  }

  /// Running SHA-256 over the first verified echo of every payload index,
  /// in index order per session — the soak tests compare this across
  /// PacketPipeline worker counts and shard topologies. Payload bytes are
  /// a pure function of (client seed, session, index) and each index is
  /// folded in at most once, so a session interrupted by a shard crash
  /// and resumed elsewhere contributes exactly the bytes an undisturbed
  /// run would have.
  const crypto::Bytes& transcript_digest() const { return digest_; }

 private:
  void start_session();
  void begin_attempt();
  void on_message(crypto::ConstBytes msg);
  void handle_handshake(crypto::ConstBytes body);
  void handle_bulk(crypto::ConstBytes body);
  void on_established();
  void send_next_payload();
  void maybe_close();
  void attempt_failed(const std::string& reason);
  void session_done();
  void schedule_next_session(net::SimTime at);
  void finish_client();
  void cancel_timers();
  crypto::Bytes make_payload(int session, int index) const;

  net::EventQueue* queue_;  // rebindable: failover moves the client
  ClientConfig config_;
  std::uint32_t id_;
  const engine::ProtocolEngine& engine_;

  crypto::HmacDrbg rng_;        // handshake endpoint randomness
  std::uint64_t payload_seed_;  // application payloads, derived per index
  crypto::HmacDrbg engine_rng_;  // engine run() nonce source (unused by
                                 // the inbound program, required by API)

  ConnectFn connect_;
  std::function<void(SessionClient&)> on_finished_;

  // Current-session state.
  std::unique_ptr<net::ReliableLink> link_;
  std::unique_ptr<protocol::TlsClient> tls_;
  // Invalidates timers of torn-down attempts. Atomic because after a
  // failover migration a cancelled timer's lambda can still fire on the
  // OLD shard's thread while the new shard runs the client; the stale
  // lambda reads only this field (its epoch mismatches, so the && chain
  // short-circuits before any other member) and no-ops. Every lambda
  // whose epoch CAN match lives on the client's currently-bound queue,
  // so all other state stays single-threaded.
  std::atomic<std::uint64_t> epoch_{0};
  int session_index_ = 0;
  net::SimTime attempt_started_at_ = 0;
  net::EventId handshake_timer_ = 0;
  net::EventId attempt_timer_ = 0;
  std::vector<crypto::Bytes> sent_payloads_;
  int echoes_received_ = 0;
  int digested_through_ = 0;  // payload indexes already folded into digest_
  bool all_sent_ = false;
  bool close_sent_ = false;
  engine::EngineSa bulk_sa_;
  bool bulk_active_ = false;

  // Arrival / inter-session state the failover path must re-arm when the
  // events carrying it die with a cleared shard queue.
  bool started_ = false;
  bool has_scheduled_start_ = false;
  net::SimTime start_at_ = 0;
  bool awaiting_next_session_ = false;
  net::SimTime next_session_at_ = 0;

  // Failover telemetry.
  bool in_failover_ = false;
  net::SimTime blackout_started_at_ = 0;
  int reconnects_ = 0;
  int failover_resumes_ = 0;
  std::vector<net::SimTime> blackouts_us_;

  struct Ticket {
    crypto::Bytes session_id;
    crypto::Bytes master_secret;
    protocol::CipherSuite suite;
    crypto::Bytes opaque;  // NewSessionTicket blob (empty: none issued)
  };
  std::optional<Ticket> ticket_;

  std::vector<SessionRecord> records_;
  bool finished_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_echoed_ = 0;
  crypto::Bytes digest_;
};

}  // namespace mapsec::server
