// Fleet supervisor: shard failure detection, zero-state failover, warm
// rejoin — the availability layer the paper's appliance argument needs.
//
// The sharded tier (PR 8) gave the serving fleet N independent worlds
// joined by an epoch-barrier merge; this layer makes a shard's DEATH one
// more deterministic event in that merge. The supervisor owns three
// lifecycle verbs, all of which execute on the coordinator thread at a
// slice barrier with every world quiescent:
//
//   * crash  — hard-kill: every open connection on the victim is failed
//     (conservation: the partial counters retire into the slot's books),
//     its event queue is cleared (timers, retransmits and in-flight
//     deliveries die with the world), and its clients are remapped to
//     survivors by rendezvous hashing (shard_for_live: only the victim's
//     keys move). Victims reconnect with their session ticket — the
//     stateless-resumption design from PR 7 is what makes failover cost
//     the survivor zero cache bytes and zero pk ops.
//   * hang   — a fault parks the shard's thread on a net::HangLatch
//     mid-slice; the executor's wall-clock watchdog releases it, reports
//     the shard, and the supervisor escalates to a hard-kill at that
//     (deterministic, simulated-time) barrier.
//   * drain  — graceful: the shard is unrouted, idle clients migrate at
//     once, busy ones finish in place; when the last connection closes
//     (or the drain deadline forces a hard-kill) the world retires.
//
// A killed shard rejoins warm after its repair window: a fresh server on
// the same queue, ticket key ring rebuilt as a replica (same seed, same
// birth time, recorded control history replayed in (due, seq) order —
// tickets sealed before the crash open after the rejoin), fleet admission
// snapshot re-installed, and the chaos layer's on_rejoin hook re-arms the
// weather. Every decision above is a function of simulated time and the
// seed; the wall-clock watchdog only bounds how long the coordinator
// waits, never what it decides. The whole crash -> reconnect -> resume ->
// rejoin cycle therefore replays byte-identically, which is what the
// failover campaign's digest gates pin.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mapsec/net/shard_exec.hpp"
#include "mapsec/server/sharded_server.hpp"

namespace mapsec::server {

class ShardSupervisor : public ShardedServer {
 public:
  /// Sentinel repair window: the shard stays down for the rest of the run.
  static constexpr net::SimTime kNoRepair = net::EventQueue::kNoEvent;

  explicit ShardSupervisor(ShardedServerConfig config);

  /// Register a client for supervised routing and failover. The client's
  /// world must live on `queue(shard_of(key))` — bind BEFORE scheduling
  /// its arrival, and use SessionClient::schedule_start so a pre-arrival
  /// shard death re-arms the arrival on the failover shard. Bound keys
  /// route by rendezvous over the live shards; unbound keys (attackers,
  /// ad-hoc connections) keep the stable shard_for home — dialing a dead
  /// shard is their problem, as it would be on a real network.
  void bind_client(std::uint32_t conn_key, SessionClient* client);

  std::size_t shard_of(std::uint32_t conn_key) const override;

  /// Lifecycle scheduling (call before run() or between slices). Each op
  /// executes at the first epoch barrier at or after `at`, in (at, call
  /// order). `repair_us` is the dead window between the kill (or drain
  /// completion) and the warm rejoin; kNoRepair means no rejoin.
  void schedule_crash(net::SimTime at, std::size_t shard,
                      net::SimTime repair_us);
  /// Parks the shard's thread on a HangLatch at simulated time `at`; the
  /// executor watchdog (set_watchdog_wall_ms) detects and the supervisor
  /// hard-kills the shard at the barrier that observes the hang.
  void schedule_hang(net::SimTime at, std::size_t shard,
                     net::SimTime repair_us);
  /// Graceful drain: unroute at `at`, migrate idle clients, let open
  /// connections finish; hard-kill whatever remains at `at + deadline_us`.
  void schedule_drain(net::SimTime at, std::size_t shard,
                      net::SimTime deadline_us, net::SimTime repair_us);

  /// Invoked on the coordinator right after shard `s` rejoins (fresh
  /// server installed, control history replayed) — the chaos layer uses
  /// it to rebuild the shard's weather world.
  void set_on_rejoin(std::function<void(std::size_t shard)> fn) {
    on_rejoin_ = std::move(fn);
  }

  /// Wall-clock budget per slice before the hang watchdog fires.
  void set_watchdog_wall_ms(std::uint64_t ms) { watchdog_wall_ms_ = ms; }

  bool shard_alive(std::size_t shard) const { return shards_[shard]->alive; }
  std::size_t live_shards() const;
  const std::vector<bool>& routable() const { return routable_; }

  struct FailoverStats {
    std::uint64_t crashes = 0;
    std::uint64_t hangs_detected = 0;
    std::uint64_t drains = 0;
    std::uint64_t drain_hard_kills = 0;  // drains that hit the deadline
    std::uint64_t rejoins = 0;
    std::uint64_t clients_migrated = 0;
    std::uint64_t connections_killed = 0;  // failed by hard-kills
    std::uint64_t control_replayed = 0;    // history ops replayed at rejoin
    std::uint64_t heartbeats_seen = 0;     // barrier heartbeat ticks
    std::uint64_t missed_heartbeats = 0;   // live shard failed to tick
    net::SimTime first_outage_at_us = net::EventQueue::kNoEvent;
    net::SimTime last_rejoin_at_us = 0;
  };
  const FailoverStats& failover_stats() const { return fstats_; }

 protected:
  void at_barrier(net::SimTime now, RunStats& rs,
                  net::ShardExecutor& exec) override;
  net::SimTime next_lifecycle_due() const override;
  void configure_executor(net::ShardExecutor& exec) override;

 private:
  struct LifecycleOp {
    enum class Kind { kCrash, kDrain, kDrainDeadline, kRejoin };
    net::SimTime due = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kCrash;
    std::size_t shard = 0;
    net::SimTime repair_us = kNoRepair;
    net::SimTime deadline_us = 0;
  };
  struct Binding {
    SessionClient* client = nullptr;
    std::size_t shard = 0;
  };
  struct Hang {
    std::size_t shard = 0;
    net::SimTime repair_us = kNoRepair;
    std::shared_ptr<net::HangLatch> latch;
    bool handled = false;
  };
  struct DrainState {
    bool active = false;
    net::SimTime repair_us = kNoRepair;
  };

  void push_op(LifecycleOp op);
  void kill_shard(std::size_t shard, net::SimTime now, const char* reason);
  void retire_world(std::size_t shard);
  void rejoin_shard(std::size_t shard, net::SimTime now);
  void migrate_clients(std::size_t shard, net::SimTime now, bool only_idle);
  void schedule_rejoin(std::size_t shard, net::SimTime now,
                       net::SimTime repair_us);
  void beat_hearts(net::SimTime now);

  std::vector<LifecycleOp> lifecycle_;  // sorted (due, seq)
  std::uint64_t lifecycle_seq_ = 0;
  std::map<std::uint32_t, Binding> bindings_;  // ordered: deterministic scan
  std::vector<Hang> hangs_;
  std::vector<DrainState> draining_;
  std::vector<bool> routable_;
  std::vector<std::uint64_t> heartbeats_expected_;
  std::uint64_t watchdog_wall_ms_ = 250;
  std::function<void(std::size_t)> on_rejoin_;
  FailoverStats fstats_;
};

}  // namespace mapsec::server
