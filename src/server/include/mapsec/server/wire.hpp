// Session-layer message framing shared by SecureSessionServer and
// SessionClient.
//
// Each ReliableLink message is `kind(1) | body`. Handshake flights and
// client application data ride the TLS record layer; the server's echo
// path returns data over the CCM bulk lane — the record-protection path
// that runs through the PacketPipeline (kParseHeader/kSealCcm programs),
// so bulk crypto shards across workers while staying bit-deterministic.
#pragma once

#include <cstdint>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/engine/protocol_engine.hpp"

namespace mapsec::server {

enum class MsgKind : std::uint8_t {
  kHandshake = 0x10,  // TLS handshake flight (records, possibly several)
  kAppData = 0x11,    // TLS application-data record(s), client -> server
  kBulk = 0x12,       // spi|seq header + CCM-sealed payload, server -> client
  kClose = 0x13,      // client requests graceful close
  kCloseAck = 0x14,   // server confirms close
  kRefused = 0x15,    // admission control shed the connection, server -> client
};

/// Prepend the kind byte.
crypto::Bytes make_msg(MsgKind kind, crypto::ConstBytes body);

/// Key material for the bulk lane, derived by both sides from the
/// negotiated master secret: PRF(master, "mapsec bulk keys", session_id)
/// -> AES-128 key (16) || HMAC key (20). Tied to the session, so a
/// resumed session re-derives the same keys but runs a fresh replay
/// window and a fresh (per-SA-seeded) nonce stream.
struct BulkKeys {
  crypto::Bytes enc_key;  // 16 bytes, AES-128
  crypto::Bytes mac_key;  // 20 bytes
};

BulkKeys derive_bulk_keys(crypto::ConstBytes master_secret,
                          crypto::ConstBytes session_id);

/// Engine SA for the bulk lane (AES-CCM, ccmp-* programs).
engine::EngineSa make_bulk_sa(std::uint32_t spi, const BulkKeys& keys);

/// spi(4) | seq(4), the header/AAD of ccmp_*_program packets.
crypto::Bytes bulk_header(std::uint32_t spi, std::uint32_t seq);

}  // namespace mapsec::server
