// Bounded session-resumption cache: LRU capacity + TTL expiry.
//
// Resumption is the paper's own remedy for the handshake half of the
// Figure 3 gap — an abbreviated handshake skips the RSA operation a
// MIPS-starved appliance cannot afford per connection. But a server
// "serving heavy traffic from millions of users" cannot keep every
// session forever: the cache must bound memory (LRU eviction) and bound
// the lifetime of resumable master secrets (TTL — a stolen device, the
// paper's Section 2 threat, should not be able to resume a week-old
// session). This cache plugs into TlsServer through the virtual
// protocol::SessionCache interface.
//
// Index structure: session ids are uniformly random 16-byte strings, so
// an ordered tree buys nothing and costs O(log n) full byte-compares per
// probe. The index is a hashed table instead (FNV-1a over the id,
// std::unordered_map), giving O(1) expected probes at the 10k-entry
// scale a busy server holds — bench/server_load.cpp measures the win.
// LRU/TTL semantics and Stats are unchanged from the tree version.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "mapsec/crypto/bytes.hpp"  // crypto::BytesHash
#include "mapsec/net/sim_clock.hpp"
#include "mapsec/protocol/handshake.hpp"

namespace mapsec::server {

class BoundedSessionCache final : public protocol::SessionCache {
 public:
  struct Config {
    std::size_t capacity = 1024;  // max live entries; 0 disables storage
    net::SimTime ttl_us = 0;      // entry lifetime; 0 = no expiry
  };

  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t lru_evictions = 0;
    std::uint64_t ttl_evictions = 0;
    /// Misses whose id WAS cached once but had been evicted (LRU or
    /// TTL): the thrash signal — each one is a client that pays a full
    /// RSA handshake because the cache threw its entry away, the
    /// scaling wall stateless tickets remove.
    std::uint64_t hit_after_evict_misses = 0;

    /// Member-wise sum, for aggregating per-shard cache partitions into
    /// one fleet view.
    Stats& operator+=(const Stats& o) {
      insertions += o.insertions;
      hits += o.hits;
      misses += o.misses;
      lru_evictions += o.lru_evictions;
      ttl_evictions += o.ttl_evictions;
      hit_after_evict_misses += o.hit_after_evict_misses;
      return *this;
    }
  };

  /// `clock` provides the TTL time base (not owned, must outlive the
  /// cache).
  BoundedSessionCache(const net::EventQueue& clock, Config config)
      : clock_(clock), config_(config) {}

  void store(const crypto::Bytes& session_id, Entry entry) override;

  /// TTL-expired entries are evicted on the read path; a hit refreshes
  /// recency but not the TTL deadline (absolute lifetime, so a secret
  /// cannot be kept resumable indefinitely by steady traffic).
  const Entry* lookup(const crypto::Bytes& session_id) override;

  std::size_t size() const override { return entries_.size(); }
  void clear() override;

  const Stats& stats() const { return stats_; }
  double hit_rate() const {
    const auto total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats_.hits) / total;
  }

  /// Bytes of resumption state the live entries pin (ids, master secret,
  /// node + LRU + index bookkeeping per entry, evicted-id hashes):
  /// O(cached users) — the quantity the ticket key ring's O(depth)
  /// state_bytes() is compared against. Strictly per-entry, never
  /// per-instance, so the sum over N shard partitions equals the single
  /// global cache they replace and empty partitions report 0.
  std::size_t resumption_state_bytes() const;

 private:
  struct Node {
    Entry entry;
    net::SimTime stored_at = 0;
    std::list<crypto::Bytes>::iterator lru_pos;  // into lru_, MRU at front
  };

  bool expired(const Node& node) const;
  void evict_lru();

  const net::EventQueue& clock_;
  Config config_;
  std::unordered_map<crypto::Bytes, Node, crypto::BytesHash> entries_;
  std::list<crypto::Bytes> lru_;  // most recently used first
  /// Hashes of evicted ids, kept to classify later misses as
  /// hit-after-evict. Hashes, not ids: 8 bytes per evicted session
  /// instead of a second copy of the id (a false positive needs an
  /// FNV-1a collision against a random 16-byte id — noise, not signal).
  std::unordered_set<std::uint64_t> evicted_ids_;
  Stats stats_;
};

}  // namespace mapsec::server
